#include "pegasus/statistics.hpp"

#include <map>

namespace sf::pegasus {

std::vector<GanttRow> collect_gantt(
    const condor::DagMan& dag, const std::vector<std::string>& node_names) {
  std::vector<GanttRow> rows;
  rows.reserve(node_names.size());
  for (const auto& name : node_names) {
    const condor::JobRecord* rec = dag.node_record(name);
    if (rec == nullptr) continue;
    GanttRow row;
    row.node = name;
    row.worker = rec->worker;
    row.submit = rec->submit_time;
    row.start = rec->start_time;
    row.end = rec->end_time;
    rows.push_back(std::move(row));
  }
  return rows;
}

void write_gantt_csv(const std::vector<GanttRow>& rows, std::ostream& os) {
  os << "node,worker,submit,start,end,queue_wait,exec_time\n";
  for (const auto& row : rows) {
    os << row.node << ',' << row.worker << ',' << row.submit << ','
       << row.start << ',' << row.end << ',' << row.queue_wait() << ','
       << row.exec_time() << '\n';
  }
}

std::vector<std::pair<std::string, double>> worker_busy_fractions(
    const std::vector<GanttRow>& rows, double makespan) {
  std::map<std::string, double> busy;
  for (const auto& row : rows) {
    if (row.start >= 0 && !row.worker.empty()) {
      busy[row.worker] += row.exec_time();
    }
  }
  std::vector<std::pair<std::string, double>> out;
  out.reserve(busy.size());
  for (const auto& [worker, seconds] : busy) {
    out.emplace_back(worker, makespan > 0 ? seconds / makespan : 0.0);
  }
  return out;
}

}  // namespace sf::pegasus
