#include "pegasus/abstract_workflow.hpp"

#include <algorithm>
#include <set>

namespace sf::pegasus {

std::vector<std::string> AbstractJob::inputs() const {
  std::vector<std::string> out;
  for (const auto& use : uses) {
    if (use.link == LinkType::kInput) out.push_back(use.lfn);
  }
  return out;
}

std::vector<std::string> AbstractJob::outputs() const {
  std::vector<std::string> out;
  for (const auto& use : uses) {
    if (use.link == LinkType::kOutput) out.push_back(use.lfn);
  }
  return out;
}

void AbstractWorkflow::declare_file(const std::string& lfn, double bytes) {
  files_[lfn] = bytes;
}

double AbstractWorkflow::file_bytes(const std::string& lfn) const {
  auto it = files_.find(lfn);
  if (it == files_.end()) {
    throw std::out_of_range("AbstractWorkflow: undeclared file " + lfn);
  }
  return it->second;
}

void AbstractWorkflow::add_job(AbstractJob job) {
  if (index_.contains(job.id)) {
    throw std::invalid_argument("AbstractWorkflow: duplicate job " + job.id);
  }
  for (const auto& use : job.uses) {
    if (!files_.contains(use.lfn)) {
      throw std::invalid_argument("AbstractWorkflow: undeclared file " +
                                  use.lfn + " used by " + job.id);
    }
    if (use.link == LinkType::kOutput) {
      auto [it, inserted] = producer_.emplace(use.lfn, job.id);
      if (!inserted) {
        throw std::invalid_argument("AbstractWorkflow: file " + use.lfn +
                                    " produced twice");
      }
    }
  }
  index_.emplace(job.id, jobs_.size());
  jobs_.push_back(std::move(job));
}

const AbstractJob& AbstractWorkflow::job(const std::string& id) const {
  auto it = index_.find(id);
  if (it == index_.end()) {
    throw std::out_of_range("AbstractWorkflow: no job " + id);
  }
  return jobs_[it->second];
}

std::string AbstractWorkflow::producer_of(const std::string& lfn) const {
  auto it = producer_.find(lfn);
  return it == producer_.end() ? std::string{} : it->second;
}

std::vector<std::string> AbstractWorkflow::initial_inputs() const {
  std::set<std::string> initial;
  for (const auto& j : jobs_) {
    for (const auto& lfn : j.inputs()) {
      if (!producer_.contains(lfn)) initial.insert(lfn);
    }
  }
  return {initial.begin(), initial.end()};
}

std::vector<std::string> AbstractWorkflow::final_outputs() const {
  std::set<std::string> consumed;
  for (const auto& j : jobs_) {
    for (const auto& lfn : j.inputs()) consumed.insert(lfn);
  }
  std::vector<std::string> out;
  for (const auto& [lfn, producer] : producer_) {
    if (!consumed.contains(lfn)) out.push_back(lfn);
  }
  return out;
}

std::vector<std::string> AbstractWorkflow::parents_of(
    const std::string& id) const {
  std::set<std::string> parents;
  for (const auto& lfn : job(id).inputs()) {
    const std::string producer = producer_of(lfn);
    if (!producer.empty()) parents.insert(producer);
  }
  return {parents.begin(), parents.end()};
}

}  // namespace sf::pegasus
