#include "pegasus/planner.hpp"

#include <algorithm>
#include <memory>
#include <set>
#include <stdexcept>
#include <utility>

namespace sf::pegasus {

const char* to_string(JobMode mode) {
  switch (mode) {
    case JobMode::kNative:
      return "native";
    case JobMode::kContainer:
      return "container";
    case JobMode::kServerless:
      return "serverless";
  }
  return "unknown";
}

// ---- DockerEnv ------------------------------------------------------------

DockerEnv::DockerEnv(cluster::Cluster& cluster, condor::CondorPool& pool,
                     container::RuntimeOverheads overheads) {
  for (const auto& name : pool.worker_names()) {
    cluster::Node& node = pool.startd(name).node();
    PerNode per;
    per.cache =
        std::make_unique<container::ImageCache>(node, cluster.network());
    per.runtime = std::make_unique<container::ContainerRuntime>(
        node, *per.cache, overheads);
    nodes_.emplace(name, std::move(per));
  }
}

container::ImageCache& DockerEnv::cache(const std::string& node) {
  return *nodes_.at(node).cache;
}

container::ContainerRuntime& DockerEnv::runtime(const std::string& node) {
  return *nodes_.at(node).runtime;
}

// ---- Plan ------------------------------------------------------------------

void Plan::load_into(condor::DagMan& dag) const {
  for (const auto& node : nodes) dag.add_node(node);
}

// ---- Executable builders ----------------------------------------------------

namespace {

/// Sequentially writes `outputs` into the job scratch, then done(true).
void write_outputs(condor::ExecContext& ctx,
                   std::vector<storage::FileRef> outputs,
                   std::function<void(bool)> done, std::size_t i = 0) {
  if (i >= outputs.size()) {
    done(true);
    return;
  }
  const storage::FileRef file = outputs[i];
  ctx.scratch->write(file, [&ctx, outputs = std::move(outputs),
                            done = std::move(done), i]() mutable {
    write_outputs(ctx, std::move(outputs), std::move(done), i + 1);
  });
}

/// Sequentially reads `inputs` from scratch (staged there, or produced by
/// an earlier task of the same clustered job), then `then(ok)`.
void read_inputs(condor::ExecContext& ctx, std::vector<std::string> inputs,
                 std::function<void(bool)> then, std::size_t i = 0) {
  if (i >= inputs.size()) {
    then(true);
    return;
  }
  const std::string lfn = inputs[i];
  ctx.scratch->read(lfn, [&ctx, inputs = std::move(inputs),
                          then = std::move(then),
                          i](bool found, storage::FileRef) mutable {
    if (!found) {
      then(false);
      return;
    }
    read_inputs(ctx, std::move(inputs), std::move(then), i + 1);
  });
}

/// Chains task executables sequentially, aborting on the first failure —
/// the body of a vertically clustered job.
condor::JobExecutable chain_executables(
    std::vector<condor::JobExecutable> execs) {
  if (execs.size() == 1) return std::move(execs.front());
  return [execs = std::move(execs)](condor::ExecContext& ctx,
                                    std::function<void(bool)> done) {
    // Weak self-reference: each task's completion callback carries the
    // strong ref, so the chain frees itself when the last task reports
    // (a direct self-capture would leak the chain and the captured
    // `done` on every clustered job).
    auto run = std::make_shared<std::function<void(std::size_t)>>();
    *run = [&ctx, &execs, done = std::move(done),
            weak = std::weak_ptr<std::function<void(std::size_t)>>(run)](
               std::size_t i) mutable {
      if (i >= execs.size()) {
        done(true);
        return;
      }
      const auto self = weak.lock();
      execs[i](ctx, [self, i, &done](bool ok) {
        if (!ok) {
          done(false);
          return;
        }
        (*self)(i + 1);
      });
    };
    (*run)(0);
  };
}

}  // namespace

// ---- Planner ----------------------------------------------------------------

Planner::Planner(const AbstractWorkflow& workflow,
                 const TransformationCatalog& transformations,
                 storage::ReplicaCatalog& replicas, condor::CondorPool& pool,
                 PlannerOptions options)
    : workflow_(workflow),
      transformations_(transformations),
      replicas_(replicas),
      pool_(pool),
      options_(std::move(options)) {}

JobMode Planner::mode_of(const AbstractJob& job) const {
  auto it = options_.mode_overrides.find(job.id);
  return it == options_.mode_overrides.end() ? options_.default_mode
                                             : it->second;
}

condor::JobSpec Planner::base_spec(const AbstractJob& job) const {
  const Transformation& t = transformations_.get(job.transformation);
  condor::JobSpec spec;
  spec.name = job.id;
  spec.request_cpus = 1;
  spec.request_memory = t.memory_bytes;
  for (const auto& lfn : job.inputs()) {
    spec.inputs.push_back({lfn, workflow_.file_bytes(lfn)});
  }
  spec.outputs = job.outputs();
  spec.submit_volume = &pool_.submit_staging();
  return spec;
}

condor::JobExecutable Planner::make_native(const AbstractJob& job,
                                           const Transformation& t) const {
  std::vector<std::string> inputs = job.inputs();
  std::vector<storage::FileRef> outputs;
  for (const auto& lfn : job.outputs()) {
    outputs.push_back({lfn, workflow_.file_bytes(lfn)});
  }
  const double work = t.startup_s + t.work_coreseconds;
  return [inputs, outputs, work](condor::ExecContext& ctx,
                                 std::function<void(bool)> done) {
    read_inputs(ctx, inputs, [&ctx, outputs, work,
                              done = std::move(done)](bool ok) mutable {
      if (!ok) {
        done(false);
        return;
      }
      // Native execution: a single-threaded process that contends freely
      // with whatever else runs on the node (no isolation).
      ctx.node->run_process(
          work,
          [&ctx, outputs, done = std::move(done)]() mutable {
            write_outputs(ctx, outputs, std::move(done));
          },
          /*max_cores=*/1.0);
    });
  };
}

condor::JobExecutable Planner::make_container(const AbstractJob& job,
                                              const Transformation& t) const {
  if (options_.docker == nullptr || options_.registry == nullptr) {
    throw std::invalid_argument(
        "Planner: container mode requires docker + registry options");
  }
  const auto manifest = options_.registry->manifest(t.container_image);
  if (!manifest) {
    throw std::invalid_argument("Planner: image not in registry: " +
                                t.container_image);
  }
  std::vector<std::string> inputs = job.inputs();
  std::vector<storage::FileRef> outputs;
  for (const auto& lfn : job.outputs()) {
    outputs.push_back({lfn, workflow_.file_bytes(lfn)});
  }
  DockerEnv* docker = options_.docker;
  container::Registry* registry = options_.registry;
  const container::Image image = *manifest;

  container::ContainerSpec cspec;
  cspec.name = job.id;
  cspec.image = image.name;
  cspec.cpu_limit = 1.0;  // strong isolation: a one-core cgroup per task
  cspec.memory_bytes = t.memory_bytes;
  cspec.boot_s = t.startup_s;
  const double work = t.work_coreseconds;

  return [inputs, outputs, docker, registry, image, cspec, work](
             condor::ExecContext& ctx, std::function<void(bool)> done) {
    read_inputs(ctx, inputs, [&ctx, outputs, docker, registry, image, cspec,
                              work, done = std::move(done)](bool ok) mutable {
      if (!ok) {
        done(false);
        return;
      }
      // `docker load` of the tarball pegasus-lite transferred with this
      // job: one extraction pass over the image bytes.
      auto& cache = docker->cache(ctx.node->name());
      auto& runtime = docker->runtime(ctx.node->name());
      ctx.node->disk_io(
          image.total_bytes(),
          [&ctx, &cache, &runtime, outputs, registry, image, cspec, work,
           done = std::move(done)]() mutable {
            cache.seed_image(image);
            runtime.run_task_once(
                cspec, work, *registry,
                [&ctx, outputs, done = std::move(done)](bool ran) mutable {
                  if (!ran) {
                    done(false);
                    return;
                  }
                  write_outputs(ctx, outputs, std::move(done));
                });
          });
    });
  };
}

// ---- Stage-in / stage-out ---------------------------------------------------

void Planner::add_stage_in(Plan& plan) const {
  const auto initial = workflow_.initial_inputs();
  if (initial.empty()) return;
  storage::ReplicaCatalog* replicas = &replicas_;
  storage::Volume* staging = &pool_.submit_staging();
  net::FlowNetwork* network = &pool_.cluster().network();
  catalog::CatalogClient* catalog = options_.catalog;

  condor::DagNode node;
  node.name = "stage_in_" + workflow_.name();
  node.retries = options_.dag_retries;
  node.job.name = node.name;
  node.job.submit_volume = staging;
  node.job.executable = [initial, replicas, staging, network, catalog](
                            condor::ExecContext&,
                            std::function<void(bool)> done) {
    // Weak self-reference; pending transfers hold the strong ref (a
    // direct self-capture is a shared_ptr cycle — the chain would leak).
    auto stage_next = std::make_shared<std::function<void(std::size_t)>>();
    auto done_ptr =
        std::make_shared<std::function<void(bool)>>(std::move(done));
    *stage_next = [initial, replicas, staging, network, catalog, done_ptr,
                   weak = std::weak_ptr<std::function<void(std::size_t)>>(
                       stage_next)](std::size_t i) {
      const auto self = weak.lock();
      if (i >= initial.size()) {
        (*done_ptr)(true);
        return;
      }
      const std::string lfn = initial[i];
      auto resolved = [self, done_ptr, staging, network, catalog, lfn, i](
                          bool ok, storage::Volume* source) {
        if (!ok || source == nullptr) {
          (*done_ptr)(false);
          return;
        }
        if (source == staging) {  // data already on the submit node
          (*self)(i + 1);
          return;
        }
        if (catalog != nullptr && !source->node().up()) {
          // A (possibly stale) catalog read steered us at a dead node.
          // Fail fast instead of wedging on a disk that will never answer,
          // and drop the entry so the DAG retry re-resolves.
          catalog->invalidate(lfn);
          (*done_ptr)(false);
          return;
        }
        storage::stage_file(*network, *source, *staging, lfn,
                            [self, done_ptr, i](bool staged) {
                              if (!staged) {
                                (*done_ptr)(false);
                              } else {
                                (*self)(i + 1);
                              }
                            });
      };
      if (catalog != nullptr) {
        catalog->lookup(lfn, std::move(resolved));
      } else {
        storage::Volume* source = replicas->primary(lfn);
        resolved(source != nullptr, source);
      }
    };
    (*stage_next)(0);
  };
  plan.nodes.push_back(std::move(node));
  ++plan.stage_in_jobs;
}

void Planner::add_stage_out(Plan& plan) const {
  const auto finals = workflow_.final_outputs();
  if (finals.empty()) return;
  storage::ReplicaCatalog* replicas = &replicas_;
  storage::Volume* staging = &pool_.submit_staging();
  catalog::CatalogClient* catalog = options_.catalog;

  condor::DagNode node;
  node.name = "stage_out_" + workflow_.name();
  node.retries = options_.dag_retries;
  node.job.name = node.name;
  node.job.submit_volume = staging;
  // Parents (the producers of final outputs) are filled in by plan().
  node.job.executable = [finals, replicas, staging, catalog](
                            condor::ExecContext&,
                            std::function<void(bool)> done) {
    for (const auto& lfn : finals) {
      if (!staging->contains(lfn)) {
        done(false);
        return;
      }
      if (catalog == nullptr) {
        replicas->register_replica(lfn, *staging);
      }
    }
    if (catalog == nullptr) {
      done(true);
      return;
    }
    // Write-through registration via the metadata tier. Best-effort: the
    // replica exists on staging regardless of whether the catalog heard
    // about it — a failed write-through (outage outlasting the retries)
    // only delays other consumers' visibility until they re-resolve after
    // the heal, so it must not fail the workflow.
    auto pending = std::make_shared<std::size_t>(finals.size());
    auto done_ptr =
        std::make_shared<std::function<void(bool)>>(std::move(done));
    for (const auto& lfn : finals) {
      catalog->register_replica(lfn, *staging, [pending, done_ptr](bool) {
        if (--*pending == 0) (*done_ptr)(true);
      });
    }
  };
  plan.nodes.push_back(std::move(node));
  ++plan.stage_out_jobs;
}

// ---- plan() ------------------------------------------------------------------

Plan Planner::plan() {
  Plan plan;

  // Mode + transformation validation happens as we touch each job.
  const auto& jobs = workflow_.jobs();

  // --- Vertical clustering: group consecutive same-mode chain segments.
  std::map<std::string, std::vector<std::string>> children;
  std::map<std::string, std::vector<std::string>> parents;
  for (const auto& j : jobs) {
    parents[j.id] = workflow_.parents_of(j.id);
    for (const auto& p : parents[j.id]) children[p].push_back(j.id);
  }
  auto chain_next = [&](const std::string& id) -> std::string {
    const auto& ch = children[id];
    if (ch.size() != 1) return {};
    const std::string& next = ch.front();
    if (parents[next].size() != 1) return {};
    if (mode_of(workflow_.job(next)) != mode_of(workflow_.job(id))) return {};
    return next;
  };
  auto has_chain_prev = [&](const std::string& id) {
    const auto& ps = parents[id];
    if (ps.size() != 1) return false;
    return chain_next(ps.front()) == id;
  };

  struct Group {
    std::string name;
    std::vector<std::string> members;  // topological order
  };
  std::vector<Group> groups;
  std::map<std::string, std::string> rep;  // job id → group name
  const int k = std::max(1, options_.cluster_size);
  for (const auto& j : jobs) {
    if (rep.contains(j.id) || (k > 1 && has_chain_prev(j.id))) continue;
    // Walk the chain from this head, splitting into groups of size k.
    std::string current = j.id;
    while (!current.empty()) {
      Group g;
      for (int n = 0; n < k && !current.empty(); ++n) {
        g.members.push_back(current);
        current = k > 1 ? chain_next(current) : std::string{};
      }
      g.name = g.members.size() == 1
                   ? g.members.front()
                   : "cluster_" + g.members.front() + "_" + g.members.back();
      for (const auto& m : g.members) rep[m] = g.name;
      if (g.members.size() > 1) plan.clustered_tasks += g.members.size();
      groups.push_back(std::move(g));
    }
  }

  // --- Stage-in first (so compute nodes can name it as a parent).
  const auto initial = workflow_.initial_inputs();
  const std::set<std::string> initial_set(initial.begin(), initial.end());
  add_stage_in(plan);
  const std::string stage_in_name =
      plan.stage_in_jobs > 0 ? "stage_in_" + workflow_.name() : "";

  // --- One executable node per group.
  for (const auto& g : groups) {
    const std::set<std::string> member_set(g.members.begin(),
                                           g.members.end());
    condor::DagNode node;
    node.name = g.name;
    node.retries = options_.dag_retries;
    node.job.name = g.name;
    node.job.submit_volume = &pool_.submit_staging();

    std::vector<condor::JobExecutable> execs;
    std::set<std::string> dag_parents;
    double max_memory = 0;
    std::set<std::string> external_inputs;
    std::set<std::string> external_outputs;

    for (const auto& member_id : g.members) {
      const AbstractJob& aj = workflow_.job(member_id);
      const Transformation& t = transformations_.get(aj.transformation);
      max_memory = std::max(max_memory, t.memory_bytes);
      const JobMode mode = mode_of(aj);

      for (const auto& lfn : aj.inputs()) {
        const std::string producer = workflow_.producer_of(lfn);
        if (producer.empty()) {
          external_inputs.insert(lfn);
          if (!stage_in_name.empty()) dag_parents.insert(stage_in_name);
        } else if (!member_set.contains(producer)) {
          external_inputs.insert(lfn);
          dag_parents.insert(rep.at(producer));
        }
      }
      for (const auto& lfn : aj.outputs()) {
        // Outputs leave the job unless consumed exclusively inside it.
        bool internal_only = true;
        bool consumed = false;
        for (const auto& other : jobs) {
          const auto ins = other.inputs();
          if (std::find(ins.begin(), ins.end(), lfn) != ins.end()) {
            consumed = true;
            if (!member_set.contains(other.id)) internal_only = false;
          }
        }
        if (!consumed || !internal_only) external_outputs.insert(lfn);
      }

      switch (mode) {
        case JobMode::kNative:
          execs.push_back(make_native(aj, t));
          break;
        case JobMode::kContainer: {
          execs.push_back(make_container(aj, t));
          // pegasus-lite ships the image tarball as a per-job input.
          const auto manifest =
              options_.registry->manifest(t.container_image);
          const std::string tar_lfn = "__image_" + t.container_image;
          pool_.submit_staging().put_instant(
              {tar_lfn, manifest->total_bytes()});
          external_inputs.insert(tar_lfn);
          break;
        }
        case JobMode::kServerless: {
          if (!options_.serverless_factory) {
            throw std::invalid_argument(
                "Planner: serverless mode requires a wrapper factory");
          }
          std::vector<storage::FileRef> ins;
          for (const auto& lfn : aj.inputs()) {
            ins.push_back({lfn, workflow_.file_bytes(lfn)});
          }
          std::vector<storage::FileRef> outs;
          for (const auto& lfn : aj.outputs()) {
            outs.push_back({lfn, workflow_.file_bytes(lfn)});
          }
          execs.push_back(options_.serverless_factory(aj, t, std::move(ins),
                                                      std::move(outs)));
          break;
        }
      }
    }

    node.job.request_cpus = 1;
    node.job.request_memory = std::max(max_memory, 512e6);
    for (const auto& lfn : external_inputs) {
      const double bytes = workflow_.has_file(lfn)
                               ? workflow_.file_bytes(lfn)
                               : pool_.submit_staging().stat(lfn)->bytes;
      node.job.inputs.push_back({lfn, bytes});
    }
    for (const auto& lfn : external_outputs) node.job.outputs.push_back(lfn);
    node.parents.assign(dag_parents.begin(), dag_parents.end());
    node.job.executable = chain_executables(std::move(execs));
    plan.nodes.push_back(std::move(node));
    ++plan.compute_jobs;
  }

  // --- Stage-out, depending on every producer of a final output.
  const auto finals = workflow_.final_outputs();
  if (!finals.empty()) {
    add_stage_out(plan);
    condor::DagNode& out_node = plan.nodes.back();
    std::set<std::string> producers;
    for (const auto& lfn : finals) {
      const std::string producer = workflow_.producer_of(lfn);
      if (!producer.empty()) producers.insert(rep.at(producer));
    }
    out_node.parents.assign(producers.begin(), producers.end());
  }

  return plan;
}

RunStatistics collect_statistics(const condor::DagMan& dag,
                                 const std::vector<std::string>& node_names) {
  RunStatistics stats;
  stats.makespan = dag.makespan();
  double wait = 0;
  double exec = 0;
  std::size_t counted = 0;
  for (const auto& name : node_names) {
    const condor::JobRecord* rec = dag.node_record(name);
    if (rec == nullptr || rec->start_time < 0) continue;
    wait += rec->start_time - rec->submit_time;
    exec += rec->end_time - rec->start_time;
    ++counted;
  }
  if (counted > 0) {
    stats.mean_queue_wait = wait / static_cast<double>(counted);
    stats.mean_exec_time = exec / static_cast<double>(counted);
  }
  stats.jobs = counted;
  return stats;
}

}  // namespace sf::pegasus
