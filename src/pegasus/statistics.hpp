#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "condor/dagman.hpp"

namespace sf::pegasus {

/// One row of a workflow execution timeline (pegasus-statistics /
/// pegasus-plots equivalent).
struct GanttRow {
  std::string node;
  std::string worker;
  double submit = 0;
  double start = -1;  ///< executable start (post stage-in); -1 = never ran
  double end = -1;

  [[nodiscard]] double queue_wait() const {
    return start < 0 ? 0 : start - submit;
  }
  [[nodiscard]] double exec_time() const {
    return start < 0 ? 0 : end - start;
  }
};

/// Extracts the per-node timeline of a finished DAG in `node_names` order.
std::vector<GanttRow> collect_gantt(const condor::DagMan& dag,
                                    const std::vector<std::string>& node_names);

/// CSV dump: node,worker,submit,start,end,queue_wait,exec_time — feed it
/// to any plotting tool to draw the workflow Gantt chart.
void write_gantt_csv(const std::vector<GanttRow>& rows, std::ostream& os);

/// Aggregate utilization: fraction of the makespan each worker spent
/// executing jobs (pairs of worker name → busy fraction).
std::vector<std::pair<std::string, double>> worker_busy_fractions(
    const std::vector<GanttRow>& rows, double makespan);

}  // namespace sf::pegasus
