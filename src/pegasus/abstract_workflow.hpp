#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace sf::pegasus {

/// Direction of a file use, as in the Pegasus workflow API.
enum class LinkType { kInput, kOutput };

struct Use {
  std::string lfn;
  LinkType link = LinkType::kInput;
};

/// One task of the abstract (site-independent) workflow: a reference to a
/// transformation plus its file uses. Dependencies are inferred from
/// producer→consumer file relationships, exactly as Pegasus does.
struct AbstractJob {
  std::string id;
  std::string transformation;
  std::vector<Use> uses;

  [[nodiscard]] std::vector<std::string> inputs() const;
  [[nodiscard]] std::vector<std::string> outputs() const;
};

/// A DAX: the abstract workflow the scientist writes, with declared file
/// sizes (needed up front for transfer planning).
class AbstractWorkflow {
 public:
  explicit AbstractWorkflow(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Declares a logical file and its expected size in bytes.
  void declare_file(const std::string& lfn, double bytes);

  [[nodiscard]] double file_bytes(const std::string& lfn) const;
  [[nodiscard]] bool has_file(const std::string& lfn) const {
    return files_.contains(lfn);
  }

  /// Adds a job. Every used lfn must have been declared. Throws on
  /// duplicate ids or two producers of the same file.
  void add_job(AbstractJob job);

  [[nodiscard]] const std::vector<AbstractJob>& jobs() const { return jobs_; }
  [[nodiscard]] const AbstractJob& job(const std::string& id) const;

  /// The job producing `lfn`, or "" for workflow-initial inputs.
  [[nodiscard]] std::string producer_of(const std::string& lfn) const;

  /// Files no job produces: must come from the replica catalog.
  [[nodiscard]] std::vector<std::string> initial_inputs() const;

  /// Files no job consumes: the workflow's final products.
  [[nodiscard]] std::vector<std::string> final_outputs() const;

  /// Parent job ids of `id`, inferred from file dependencies.
  [[nodiscard]] std::vector<std::string> parents_of(
      const std::string& id) const;

 private:
  std::string name_;
  std::vector<AbstractJob> jobs_;
  std::map<std::string, std::size_t> index_;    // id → jobs_ position
  std::map<std::string, double> files_;         // lfn → bytes
  std::map<std::string, std::string> producer_;  // lfn → job id
};

}  // namespace sf::pegasus
