#pragma once

#include <map>
#include <optional>
#include <stdexcept>
#include <string>

namespace sf::pegasus {

/// Transformation-catalog entry: the executable behind an abstract task,
/// with its cost model and (optionally) a container image requirement.
struct Transformation {
  std::string name;
  /// CPU cost of one invocation, in core-seconds (single-threaded).
  double work_coreseconds = 0.5;
  double memory_bytes = 512e6;
  /// Interpreter/startup time when launched as a fresh process — paid per
  /// native invocation and per fresh container, but not on warm reuse.
  double startup_s = 0.0;
  /// Image for containerized execution ("" = no container available).
  std::string container_image;
};

class TransformationCatalog {
 public:
  void add(Transformation t) { entries_[t.name] = std::move(t); }

  [[nodiscard]] const Transformation& get(const std::string& name) const {
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      throw std::out_of_range("TransformationCatalog: unknown " + name);
    }
    return it->second;
  }

  [[nodiscard]] bool has(const std::string& name) const {
    return entries_.contains(name);
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  std::map<std::string, Transformation> entries_;
};

}  // namespace sf::pegasus
