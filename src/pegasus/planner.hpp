#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.hpp"
#include "condor/dagman.hpp"
#include "condor/pool.hpp"
#include "container/image_cache.hpp"
#include "container/registry.hpp"
#include "container/runtime.hpp"
#include "pegasus/abstract_workflow.hpp"
#include "pegasus/catalogs.hpp"
#include "storage/replica_catalog.hpp"

namespace sf::pegasus {

/// Per-task execution environment (the paper's Setups 1-3).
enum class JobMode { kNative, kContainer, kServerless };

const char* to_string(JobMode mode);

/// Docker engines on the condor workers, used by containerized Pegasus
/// jobs (Setup 2). Separate from the Kubernetes kubelet runtimes —
/// pegasus-lite drives docker directly.
class DockerEnv {
 public:
  DockerEnv(cluster::Cluster& cluster, condor::CondorPool& pool,
            container::RuntimeOverheads overheads = {});

  [[nodiscard]] container::ImageCache& cache(const std::string& node);
  [[nodiscard]] container::ContainerRuntime& runtime(const std::string& node);

 private:
  struct PerNode {
    std::unique_ptr<container::ImageCache> cache;
    std::unique_ptr<container::ContainerRuntime> runtime;
  };
  std::map<std::string, PerNode> nodes_;
};

/// Factory for serverless-wrapper executables, supplied by the core
/// integration layer (keeps this WMS library independent of Knative).
/// Receives the task plus its staged input/output file sets and returns
/// the condor executable that invokes the function.
using ServerlessWrapperFactory = std::function<condor::JobExecutable(
    const AbstractJob& job, const Transformation& transformation,
    std::vector<storage::FileRef> inputs,
    std::vector<storage::FileRef> outputs)>;

/// Planner options (properties + site-catalog decisions).
struct PlannerOptions {
  JobMode default_mode = JobMode::kNative;
  /// Per-job overrides (the core layer's execution-mode mix).
  std::map<std::string, JobMode> mode_overrides;
  /// Vertical task clustering factor: chains of up to this many same-mode
  /// compute jobs merge into one condor job (1 = off).
  int cluster_size = 1;
  /// Registry that serves container tarballs for containerized jobs.
  container::Registry* registry = nullptr;
  /// Docker engines on the workers (required for container mode).
  DockerEnv* docker = nullptr;
  ServerlessWrapperFactory serverless_factory;
  int dag_retries = 0;
  /// Metadata-tier client. When set, stage-in resolves replica locations
  /// through the catalog service (TTL cache / retry / breaker / stale
  /// reads) instead of in-process pointer lookups, and stage-out
  /// registers outputs write-through. Null keeps the historical direct
  /// path, byte for byte.
  catalog::CatalogClient* catalog = nullptr;
};

/// The executable workflow the planner emits.
struct Plan {
  std::vector<condor::DagNode> nodes;
  std::size_t stage_in_jobs = 0;
  std::size_t compute_jobs = 0;
  std::size_t stage_out_jobs = 0;
  std::size_t clustered_tasks = 0;  ///< abstract tasks absorbed by clustering

  /// Loads every node into a DagMan instance.
  void load_into(condor::DagMan& dag) const;
};

/// The Pegasus mapper: turns an abstract workflow into an executable
/// condor DAG — inserting stage-in/stage-out jobs, wrapping tasks per
/// execution mode (native process, docker container with per-job image
/// transfer, or serverless wrapper), and optionally clustering chains.
class Planner {
 public:
  Planner(const AbstractWorkflow& workflow,
          const TransformationCatalog& transformations,
          storage::ReplicaCatalog& replicas, condor::CondorPool& pool,
          PlannerOptions options);

  /// Produces the executable workflow. Throws when a needed catalog entry
  /// (transformation, replica, image) is missing.
  [[nodiscard]] Plan plan();

 private:
  [[nodiscard]] JobMode mode_of(const AbstractJob& job) const;
  [[nodiscard]] condor::JobSpec base_spec(const AbstractJob& job) const;
  [[nodiscard]] condor::JobExecutable make_native(
      const AbstractJob& job, const Transformation& t) const;
  [[nodiscard]] condor::JobExecutable make_container(
      const AbstractJob& job, const Transformation& t) const;
  void add_stage_in(Plan& plan) const;
  void add_stage_out(Plan& plan) const;

  const AbstractWorkflow& workflow_;
  const TransformationCatalog& transformations_;
  storage::ReplicaCatalog& replicas_;
  condor::CondorPool& pool_;
  PlannerOptions options_;
};

/// Convenience: summary of a finished DAG run (pegasus-statistics).
struct RunStatistics {
  double makespan = 0;
  double mean_queue_wait = 0;   ///< submit → executable start
  double mean_exec_time = 0;    ///< executable start → end
  std::size_t jobs = 0;
};

RunStatistics collect_statistics(const condor::DagMan& dag,
                                 const std::vector<std::string>& node_names);

}  // namespace sf::pegasus
