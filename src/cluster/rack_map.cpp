#include "cluster/rack_map.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace sf::cluster {

RackMap::RackMap(std::vector<std::uint32_t> rack_of_node)
    : rack_of_(std::move(rack_of_node)) {
  if (rack_of_.empty()) return;
  const std::uint32_t max_rack =
      *std::max_element(rack_of_.begin(), rack_of_.end());
  members_.resize(max_rack + 1);
  for (std::uint32_t node = 0; node < rack_of_.size(); ++node) {
    members_[rack_of_[node]].push_back(node);
  }
  for (const auto& rack : members_) {
    if (rack.empty()) {
      throw std::invalid_argument("RackMap: rack ids must be dense");
    }
  }
}

RackMap RackMap::blocks(std::uint32_t node_count, std::uint32_t rack_count) {
  if (node_count == 0) return RackMap{};
  if (rack_count == 0 || rack_count > node_count) {
    throw std::invalid_argument("RackMap::blocks: bad rack count");
  }
  std::vector<std::uint32_t> assignment(node_count);
  // First `node_count % rack_count` racks get the extra node, so sizes
  // differ by at most one and the layout is a pure function of the counts.
  const std::uint32_t base = node_count / rack_count;
  const std::uint32_t extra = node_count % rack_count;
  std::uint32_t node = 0;
  for (std::uint32_t rack = 0; rack < rack_count; ++rack) {
    const std::uint32_t size = base + (rack < extra ? 1 : 0);
    for (std::uint32_t i = 0; i < size; ++i) assignment[node++] = rack;
  }
  return RackMap(std::move(assignment));
}

}  // namespace sf::cluster
