#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/node.hpp"
#include "net/flow_network.hpp"
#include "net/http.hpp"
#include "sim/simulation.hpp"

namespace sf::cluster {

/// A set of nodes sharing one flow network and one HTTP fabric.
///
/// `make_paper_testbed()` builds the paper's evaluation cluster: four VMs
/// with 8 cores / 32 GB each, where node 0 doubles as the HTCondor submit
/// node and the Kubernetes control plane.
class Cluster {
 public:
  explicit Cluster(sim::Simulation& sim)
      : sim_(sim), network_(sim), http_(sim, network_) {}

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  Node& add_node(NodeSpec spec);

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  Node& node(std::size_t i) { return *nodes_.at(i); }
  const Node& node(std::size_t i) const { return *nodes_.at(i); }

  /// Node lookup by name; throws when absent.
  Node& node_by_name(std::string_view name);

  /// Node lookup by network endpoint; throws when absent.
  Node& node_by_net_id(net::NodeId id);

  std::vector<Node*> nodes();

  sim::Simulation& sim() { return sim_; }
  net::FlowNetwork& network() { return network_; }
  net::HttpFabric& http() { return http_; }

 private:
  sim::Simulation& sim_;
  net::FlowNetwork network_;
  net::HttpFabric http_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

/// The paper's 4-VM testbed (Section V-A).
/// Node 0: submit node + control plane; nodes 1..3: workers.
std::unique_ptr<Cluster> make_paper_testbed(sim::Simulation& sim);

/// An arbitrary homogeneous cluster for scaling studies.
std::unique_ptr<Cluster> make_uniform_cluster(sim::Simulation& sim,
                                              std::size_t node_count,
                                              const NodeSpec& base);

}  // namespace sf::cluster
