#include "cluster/node.hpp"

#include <utility>

namespace sf::cluster {

Node::Node(sim::Simulation& sim, net::FlowNetwork& network, NodeSpec spec)
    : sim_(sim),
      spec_(std::move(spec)),
      net_id_(network.add_node(spec_.nic_bandwidth_Bps, spec_.nic_latency_s)),
      cpu_(sim, spec_.cores, spec_.name + ".cpu"),
      disk_(sim, spec_.disk_bandwidth_Bps, spec_.name + ".disk") {}

Node::ProcessId Node::run_process(double work, std::function<void()> on_done,
                                  double max_cores, double weight) {
  // Work landing on a dead node is silently lost: the continuation never
  // fires, exactly like a process launched on a crashed machine. Callers
  // that need progress guarantees own a recovery path (heartbeats, retries).
  if (!up_) return sim::PsResource::JobId{0};
  return cpu_.submit(work, std::move(on_done), max_cores, weight);
}

bool Node::kill_process(ProcessId id) { return cpu_.cancel(id); }

bool Node::set_process_cap(ProcessId id, double max_cores) {
  return cpu_.set_rate_cap(id, max_cores);
}

void Node::set_cpu_slowdown(double factor) {
  if (factor <= 0 || factor > 1.0) return;  // reject nonsense factors
  cpu_slowdown_ = factor;
  cpu_.set_capacity(spec_.cores * factor);
  sim_.trace().record(sim_.now(), "node", "cpu_slowdown",
                      {{"node", spec_.name}});
}

bool Node::allocate_memory(double bytes) {
  if (!up_) return false;
  if (memory_used_ + bytes > spec_.memory_bytes) {
    ++oom_events_;
    sim_.trace().record(sim_.now(), "node", "oom",
                        {{"node", spec_.name}});
    if (oom_handler_) oom_handler_(bytes);
    return false;
  }
  memory_used_ += bytes;
  return true;
}

void Node::release_memory(double bytes) {
  memory_used_ -= bytes;
  if (memory_used_ < 0) memory_used_ = 0;
}

void Node::disk_io(double bytes, std::function<void()> on_done) {
  if (!up_) return;  // I/O against a dead node is lost (see run_process)
  if (bytes <= 0) {
    sim_.call_in(0, std::move(on_done));
    return;
  }
  disk_.submit(bytes, std::move(on_done));
}

void Node::fail() {
  if (!up_) return;
  up_ = false;
  ++crash_count_;
  cpu_.cancel_all();
  disk_.cancel_all();
  sim_.trace().record(sim_.now(), "node", "crash", {{"node", spec_.name}});
  for (const auto& fn : fail_listeners_) fn();
}

void Node::recover() {
  if (up_) return;
  up_ = true;
  sim_.trace().record(sim_.now(), "node", "recover", {{"node", spec_.name}});
  for (const auto& fn : recover_listeners_) fn();
}

}  // namespace sf::cluster
