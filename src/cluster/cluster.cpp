#include "cluster/cluster.hpp"

#include <utility>

namespace sf::cluster {

Node& Cluster::add_node(NodeSpec spec) {
  if (spec.name.empty()) {
    spec.name = "node" + std::to_string(nodes_.size());
  }
  nodes_.push_back(std::make_unique<Node>(sim_, network_, std::move(spec)));
  return *nodes_.back();
}

Node& Cluster::node_by_name(std::string_view name) {
  for (auto& n : nodes_) {
    if (n->name() == name) return *n;
  }
  throw std::out_of_range("Cluster: no node named " + std::string(name));
}

Node& Cluster::node_by_net_id(net::NodeId id) {
  for (auto& n : nodes_) {
    if (n->net_id() == id) return *n;
  }
  throw std::out_of_range("Cluster: no node with that net id");
}

std::vector<Node*> Cluster::nodes() {
  std::vector<Node*> out;
  out.reserve(nodes_.size());
  for (auto& n : nodes_) out.push_back(n.get());
  return out;
}

std::unique_ptr<Cluster> Cluster_make(sim::Simulation& sim,
                                      std::size_t node_count,
                                      const NodeSpec& base) {
  auto cluster = std::make_unique<Cluster>(sim);
  for (std::size_t i = 0; i < node_count; ++i) {
    NodeSpec spec = base;
    spec.name = "node" + std::to_string(i);
    cluster->add_node(std::move(spec));
  }
  return cluster;
}

std::unique_ptr<Cluster> make_paper_testbed(sim::Simulation& sim) {
  return make_uniform_cluster(sim, 4, NodeSpec{});
}

std::unique_ptr<Cluster> make_uniform_cluster(sim::Simulation& sim,
                                              std::size_t node_count,
                                              const NodeSpec& base) {
  return Cluster_make(sim, node_count, base);
}

}  // namespace sf::cluster
