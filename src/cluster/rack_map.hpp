#pragma once

#include <cstdint>
#include <vector>

namespace sf::cluster {

/// Rack topology over a cluster's node indices: every node belongs to
/// exactly one rack, and a rack is the failure/partition domain for
/// correlated incidents (a PDU trip takes the whole rack down; a cut-set
/// partition isolates a rack from the rest of the fabric).
///
/// A RackMap is pure data — no simulation state — so it can be part of
/// the fault-plan determinism contract: same (seed, config, RackMap) ⇒
/// identical plan, and two maps compare equal iff they assign every node
/// identically.
class RackMap {
 public:
  /// Empty map (no nodes, no racks).
  RackMap() = default;

  /// Explicit assignment: `rack_of_node[i]` is node i's rack id. Rack ids
  /// must be dense, i.e. every id in [0, max+1) used by at least one node;
  /// throws otherwise.
  explicit RackMap(std::vector<std::uint32_t> rack_of_node);

  /// Contiguous near-equal blocks: `node_count` nodes split into
  /// `rack_count` racks of size ceil/floor(node_count / rack_count), rack 0
  /// first. This is the deterministic default topology the fault injector
  /// derives from `FaultConfig::racks` — node 0 (head) always lands in
  /// rack 0.
  static RackMap blocks(std::uint32_t node_count, std::uint32_t rack_count);

  [[nodiscard]] std::uint32_t node_count() const {
    return static_cast<std::uint32_t>(rack_of_.size());
  }
  [[nodiscard]] std::uint32_t rack_count() const {
    return static_cast<std::uint32_t>(members_.size());
  }
  [[nodiscard]] std::uint32_t rack_of(std::uint32_t node) const {
    return rack_of_.at(node);
  }
  /// Node indices in the rack, ascending.
  [[nodiscard]] const std::vector<std::uint32_t>& nodes_in(
      std::uint32_t rack) const {
    return members_.at(rack);
  }

  friend bool operator==(const RackMap&, const RackMap&) = default;

 private:
  std::vector<std::uint32_t> rack_of_;               // node -> rack
  std::vector<std::vector<std::uint32_t>> members_;  // rack -> nodes
};

}  // namespace sf::cluster
