#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/flow_network.hpp"
#include "sim/ps_resource.hpp"
#include "sim/simulation.hpp"

namespace sf::cluster {

/// Hardware description of one worker VM. Defaults mirror the paper's
/// testbed: 8 cores (Xeon Gold 6342 @ 2.80 GHz), 32 GB RAM.
struct NodeSpec {
  std::string name;
  double cores = 8;
  double memory_bytes = 32.0 * (1ull << 30);
  double nic_bandwidth_Bps = 1.25e9;  ///< 10 GbE
  double nic_latency_s = 100e-6;      ///< intra-cluster one-way
  double disk_bandwidth_Bps = 500e6;  ///< local SSD, shared read+write
};

/// One machine: a processor-sharing CPU (capacity = #cores), a local disk,
/// a memory account and a NIC endpoint on the flow network.
///
/// Processes request CPU work in core-seconds with a rate cap (a
/// single-threaded task caps at 1.0 core; a cgroup quota caps lower) and a
/// weight (cgroup cpu-shares). Native tasks contend freely; containerized
/// tasks get predictable-but-bounded shares — the mechanism behind the
/// paper's performance/isolation trade-off.
class Node {
 public:
  Node(sim::Simulation& sim, net::FlowNetwork& network, NodeSpec spec);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] const NodeSpec& spec() const { return spec_; }
  [[nodiscard]] sim::Simulation& sim() { return sim_; }
  [[nodiscard]] const std::string& name() const { return spec_.name; }
  [[nodiscard]] net::NodeId net_id() const { return net_id_; }

  // ---- CPU ----------------------------------------------------------

  using ProcessId = sim::PsResource::JobId;

  /// Runs `work` core-seconds of compute. `on_done` fires at completion.
  /// `max_cores` bounds parallel speedup (1.0 for single-threaded tasks,
  /// or a cgroup cpu quota); `weight` maps to cgroup cpu-shares.
  ProcessId run_process(double work, std::function<void()> on_done,
                        double max_cores = 1.0, double weight = 1.0);

  /// Kills a running process. Returns true iff it was running.
  bool kill_process(ProcessId id);

  /// Changes a process's CPU cap (dynamic cgroup update).
  bool set_process_cap(ProcessId id, double max_cores);

  [[nodiscard]] std::size_t running_processes() const {
    return cpu_.active_jobs();
  }
  [[nodiscard]] double cpu_utilization() const { return cpu_.utilization(); }
  sim::PsResource& cpu() { return cpu_; }

  /// Gray failure: pins the CPU at `factor` of its nominal capacity
  /// (0 < factor ≤ 1; 1.0 restores full speed). Running processes keep
  /// their work accounting and simply progress slower — the node looks
  /// healthy to heartbeats while everything on it straggles.
  void set_cpu_slowdown(double factor);
  [[nodiscard]] double cpu_slowdown() const { return cpu_slowdown_; }

  // ---- Memory -------------------------------------------------------

  /// Reserves memory. Returns false (and calls the OOM handler) when the
  /// node would be overcommitted — the paper's "VM crashed" failure mode
  /// when too many concurrent invocations land without HTCondor throttling.
  [[nodiscard]] bool allocate_memory(double bytes);
  void release_memory(double bytes);
  [[nodiscard]] double memory_used() const { return memory_used_; }
  [[nodiscard]] double memory_free() const {
    return spec_.memory_bytes - memory_used_;
  }
  void set_oom_handler(std::function<void(double requested)> handler) {
    oom_handler_ = std::move(handler);
  }
  [[nodiscard]] std::uint64_t oom_events() const { return oom_events_; }

  // ---- Disk ---------------------------------------------------------

  /// Reads or writes `bytes` on the local disk (shared PS bandwidth).
  void disk_io(double bytes, std::function<void()> on_done);
  sim::PsResource& disk() { return disk_; }

  // ---- Failure ------------------------------------------------------
  //
  // A crashed node loses all in-flight CPU and disk work (the completion
  // continuations never fire — recovery is owned by the layers above, via
  // the crash listeners), refuses new work, and keeps its memory ledger:
  // the owners of each allocation (container runtime, startd, ...) release
  // what they held from their own crash listeners, so the account balances
  // without double-frees.

  [[nodiscard]] bool up() const { return up_; }

  /// Crashes the node: cancels all CPU/disk jobs silently, marks the node
  /// down, then notifies crash listeners in registration order. No-op when
  /// already down.
  void fail();

  /// Reboots the node and notifies recover listeners in registration
  /// order. No-op when already up.
  void recover();

  /// Registers a callback fired (synchronously, registration order) when
  /// the node crashes / comes back. Listeners cannot be removed: they are
  /// wired once at assembly time and live as long as the node.
  void on_fail(std::function<void()> fn) {
    fail_listeners_.push_back(std::move(fn));
  }
  void on_recover(std::function<void()> fn) {
    recover_listeners_.push_back(std::move(fn));
  }

  [[nodiscard]] std::uint64_t crash_count() const { return crash_count_; }

 private:
  sim::Simulation& sim_;
  NodeSpec spec_;
  net::NodeId net_id_;
  sim::PsResource cpu_;
  sim::PsResource disk_;
  double cpu_slowdown_ = 1.0;
  double memory_used_ = 0;
  std::uint64_t oom_events_ = 0;
  std::function<void(double)> oom_handler_;
  bool up_ = true;
  std::uint64_t crash_count_ = 0;
  std::vector<std::function<void()>> fail_listeners_;
  std::vector<std::function<void()>> recover_listeners_;
};

}  // namespace sf::cluster
