#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "condor/pool.hpp"

namespace sf::condor {

/// One node of an executable workflow DAG.
struct DagNode {
  std::string name;
  JobSpec job;
  std::vector<std::string> parents;
  int retries = 0;  ///< automatic resubmissions on failure
};

/// DAGMan knobs.
struct DagConfig {
  /// DAGMan observes job completions by polling the user log; children
  /// become submittable only at the next scan boundary. This is a real
  /// per-hop latency of sequential Pegasus/condor workflows.
  double scan_interval_s = 5.0;
  /// Max jobs submitted to the schedd at once (0 = unlimited); the
  /// throttle the paper relied on to avoid overrunning the cluster.
  int max_jobs = 0;
  /// POST-script runtime charged after every node's job exits (Pegasus
  /// runs pegasus-exitcode per node); the node's completion is only
  /// observed at the scan boundary after the POST finishes. POSTs run
  /// concurrently across nodes, so this delays sequential hops without
  /// affecting parallel throughput.
  double post_script_s = 0.0;
};

/// Condor DAGMan: releases workflow nodes to the schedd as their parents
/// complete, with log-scan batching, retry handling and submission
/// throttling.
class DagMan {
 public:
  DagMan(CondorPool& pool, DagConfig config = {});

  DagMan(const DagMan&) = delete;
  DagMan& operator=(const DagMan&) = delete;

  /// Adds a node; all parents must be added before run(). Throws on
  /// duplicate names or (at run time) unknown parents / cycles.
  void add_node(DagNode node);

  /// Starts the DAG. `on_finish(success)` fires when every node completed
  /// or a node exhausted its retries. Makespan is measured from here.
  void run(std::function<void(bool success)> on_finish);

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t completed_nodes() const { return completed_; }
  [[nodiscard]] double start_time() const { return start_time_; }
  [[nodiscard]] double finish_time() const { return finish_time_; }
  [[nodiscard]] double makespan() const { return finish_time_ - start_time_; }
  [[nodiscard]] std::uint64_t total_retries() const { return retries_used_; }

  /// Per-node timing (valid after the node ran): submit/start/end from the
  /// last attempt's JobRecord.
  [[nodiscard]] const JobRecord* node_record(const std::string& name) const;

  /// How many DAG nodes sit in each lifecycle state right now.
  struct StateCounts {
    std::size_t waiting = 0;
    std::size_t ready = 0;
    std::size_t submitted = 0;
    std::size_t done = 0;
    std::size_t failed = 0;
  };
  [[nodiscard]] StateCounts state_counts() const;

  /// Conservation audit for the invariant registry (sf::check): every DAG
  /// task is in exactly one state, the per-state tallies agree with the
  /// counters and queues, and retry bookkeeping is sane (a kFailed node
  /// exhausted its budget; attempts never exceed retries + 1). Returns one
  /// message per violation. Pure read.
  [[nodiscard]] std::vector<std::string> self_check() const;

 private:
  enum class NodeState { kWaiting, kReady, kSubmitted, kDone, kFailed };
  struct Node {
    DagNode spec;
    NodeState state = NodeState::kWaiting;
    std::size_t unfinished_parents = 0;
    std::vector<std::string> children;
    int attempts = 0;
    JobId last_job = kNoJob;
  };

  void validate_and_link();
  void scan();
  void arm_scan();
  void submit_ready();
  void on_job_done(const std::string& node_name, const JobRecord& rec);
  void handle_node_exit(const std::string& node_name, const JobRecord& rec);
  void finish(bool success);

  CondorPool& pool_;
  DagConfig config_;
  std::map<std::string, Node> nodes_;
  std::vector<std::string> ready_;      // FIFO of submittable nodes
  std::vector<std::string> completed_events_;  // awaiting next scan
  bool running_ = false;
  bool scan_armed_ = false;
  bool failed_ = false;
  std::size_t completed_ = 0;
  std::size_t submitted_live_ = 0;
  double start_time_ = 0;
  double finish_time_ = 0;
  std::uint64_t retries_used_ = 0;
  std::function<void(bool)> on_finish_;
};

}  // namespace sf::condor
