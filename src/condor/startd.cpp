#include "condor/startd.hpp"

namespace sf::condor {

std::optional<SlotId> Startd::claim_slot(double cpus, double memory) {
  if (cpus > free_cpus_ || memory > free_memory_) return std::nullopt;
  free_cpus_ -= cpus;
  free_memory_ -= memory;
  const SlotId id = next_id_++;
  slots_.emplace(id, DynamicSlot{cpus, memory});
  return id;
}

void Startd::release_slot(SlotId id) {
  auto it = slots_.find(id);
  if (it == slots_.end()) return;
  free_cpus_ += it->second.cpus;
  free_memory_ += it->second.memory;
  slots_.erase(it);
}

}  // namespace sf::condor
