#include "condor/pool.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace sf::condor {

const char* to_string(JobState s) {
  switch (s) {
    case JobState::kIdle:
      return "Idle";
    case JobState::kRunning:
      return "Running";
    case JobState::kCompleted:
      return "Completed";
    case JobState::kFailed:
      return "Failed";
    case JobState::kRemoved:
      return "Removed";
  }
  return "Unknown";
}

CondorPool::CondorPool(cluster::Cluster& cluster, cluster::Node& submit_node,
                       std::vector<cluster::Node*> workers,
                       CondorConfig config)
    : cluster_(cluster),
      submit_(submit_node),
      staging_(submit_node, submit_node.name() + ".staging"),
      config_(config) {
  for (cluster::Node* w : workers) {
    startds_.emplace(w->name(), std::make_unique<Startd>(*w));
    worker_order_.push_back(w->name());
    // Startd death / restart: on crash the schedd requeues the node's
    // jobs via DAGMan's retry hook; on recovery the negotiator may carve
    // fresh claims there again.
    w->on_fail([this, name = w->name()] { handle_node_crash(name); });
    w->on_recover([this] {
      pump_dispatch();
      if (has_unmatched_idle()) kick_negotiator();
    });
  }
}

Startd& CondorPool::startd(const std::string& node_name) {
  auto it = startds_.find(node_name);
  if (it == startds_.end()) {
    throw std::out_of_range("CondorPool: no startd on " + node_name);
  }
  return *it->second;
}

void CondorPool::enqueue_idle(JobId id) {
  const int prio = jobs_.at(id).spec.priority;
  // First position whose job has strictly lower priority: equal-priority
  // jobs keep submission order, matching the old stable_sort exactly.
  const auto pos = std::upper_bound(
      idle_queue_.begin(), idle_queue_.end(), prio,
      [this](int p, JobId j) { return p > jobs_.at(j).spec.priority; });
  idle_queue_.insert(pos, id);
}

JobId CondorPool::submit(JobSpec spec) {
  const JobId id = next_job_++;
  JobRecord rec;
  rec.id = id;
  rec.spec = std::move(spec);
  rec.state = JobState::kIdle;
  rec.submit_time = sim().now();
  jobs_.emplace(id, std::move(rec));
  enqueue_idle(id);
  sim().trace().record(sim().now(), "condor", "submit",
                       {{"job", jobs_.at(id).spec.name}});
  pump_dispatch();
  if (has_unmatched_idle()) kick_negotiator();
  return id;
}

bool CondorPool::remove(JobId id) {
  auto it = jobs_.find(id);
  if (it == jobs_.end() || it->second.state != JobState::kIdle) return false;
  it->second.state = JobState::kRemoved;
  std::erase(idle_queue_, id);
  return true;
}

const JobRecord* CondorPool::job(JobId id) const {
  auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : &it->second;
}

std::size_t CondorPool::idle_jobs() const { return idle_queue_.size(); }
std::size_t CondorPool::running_jobs() const { return running_; }

bool CondorPool::reachable(const cluster::Node& node) const {
  return !cluster_.network().partitioned(submit_.net_id(), node.net_id());
}

bool CondorPool::claim_fits(const Claim& claim,
                            const JobRecord& rec) const {
  if (claim.busy || claim.cpus < rec.spec.request_cpus ||
      claim.memory < rec.spec.request_memory) {
    return false;
  }
  // A claim on a partitioned worker is held but unusable: activating it
  // would strand the shadow's stage-in against a dead link.
  if (!reachable(claim.startd->node())) return false;
  return !rec.spec.requirements || rec.spec.requirements(*claim.startd);
}

bool CondorPool::has_unmatched_idle() {
  // Greedy matching of idle jobs (priority order) against free claims,
  // stopping at the first job no free claim fits. Reservation uses the
  // per-claim stamp — no set insertions on this per-submit path.
  ++match_stamp_;
  for (const JobId jid : idle_queue_) {
    const JobRecord& rec = jobs_.at(jid);
    bool found = false;
    for (auto& [cid, claim] : claims_) {
      if (claim.reserved_stamp != match_stamp_ && claim_fits(claim, rec)) {
        claim.reserved_stamp = match_stamp_;
        found = true;
        break;
      }
    }
    if (!found) return true;
  }
  return false;
}

// ---- Negotiator ----------------------------------------------------------

void CondorPool::kick_negotiator() {
  if (negotiator_armed_) return;
  negotiator_armed_ = true;
  sim().call_in(config_.negotiation_interval_s, [this] { negotiate(); });
}

void CondorPool::negotiate() {
  negotiator_armed_ = false;
  ++cycles_;
  sim().trace().record(sim().now(), "condor", "negotiate",
                       {{"cycle", std::to_string(cycles_)}});
  // Grant one claim per unmatched idle job while resources last. Workers
  // are filled in round-robin order for spread (condor's default breadth-
  // first fill when slot weights are equal).
  // For each unmatched idle job (priority order), carve a claim on the
  // first machine that fits its shape and satisfies its requirements.
  ++match_stamp_;
  std::size_t cursor = 0;
  for (const JobId jid : idle_queue_) {
    const JobRecord& rec = jobs_.at(jid);
    bool has_claim = false;
    for (auto& [cid, claim] : claims_) {
      if (claim.reserved_stamp != match_stamp_ && claim_fits(claim, rec)) {
        claim.reserved_stamp = match_stamp_;
        has_claim = true;
        break;
      }
    }
    if (has_claim) continue;
    for (std::size_t i = 0; i < worker_order_.size(); ++i) {
      Startd& sd = *startds_.at(
          worker_order_[(cursor + i) % worker_order_.size()]);
      if (!sd.node().up()) continue;  // dead startds advertise nothing
      // Partitioned startds can't deliver their ClassAd to the collector.
      if (!reachable(sd.node())) continue;
      if (rec.spec.requirements && !rec.spec.requirements(sd)) continue;
      const auto slot =
          sd.claim_slot(rec.spec.request_cpus, rec.spec.request_memory);
      if (slot.has_value()) {
        Claim claim;
        claim.node_name = sd.node().name();
        claim.startd = &sd;
        claim.slot = *slot;
        claim.cpus = rec.spec.request_cpus;
        claim.memory = rec.spec.request_memory;
        claim.reserved_stamp = match_stamp_;
        const ClaimId cid = next_claim_++;
        claims_.emplace(cid, std::move(claim));
        cursor = (cursor + i + 1) % worker_order_.size();
        break;
      }
    }
  }
  pump_dispatch();
  if (has_unmatched_idle()) kick_negotiator();
}

// ---- Schedd dispatch ------------------------------------------------------

void CondorPool::pump_dispatch() {
  if (dispatch_busy_ || idle_queue_.empty()) return;
  if (config_.max_running_jobs > 0 &&
      running_ >= static_cast<std::size_t>(config_.max_running_jobs)) {
    return;
  }
  // Highest-priority idle job that has a free fitting claim (FIFO ties).
  JobId jid = kNoJob;
  ClaimId chosen = 0;
  for (const JobId candidate : idle_queue_) {
    const JobRecord& rec = jobs_.at(candidate);
    for (auto& [cid, claim] : claims_) {
      if (claim_fits(claim, rec)) {
        jid = candidate;
        chosen = cid;
        break;
      }
    }
    if (jid != kNoJob) break;
  }
  if (jid == kNoJob) {
    kick_negotiator();
    return;
  }
  std::erase(idle_queue_, jid);
  Claim& cl = claims_.at(chosen);
  cl.busy = true;
  cl.job = jid;
  jobs_.at(jid).state = JobState::kRunning;
  ++running_;
  dispatch_busy_ = true;
  const std::uint64_t epoch = jobs_.at(jid).attempt;
  // Serialized activation: the shadow-spawn pipeline.
  sim().call_in(config_.dispatch_interval_s, [this, jid, chosen, epoch] {
    dispatch_busy_ = false;
    if (attempt_live(jid, epoch)) start_job(jid, chosen, epoch);
    pump_dispatch();
  });
}

bool CondorPool::attempt_live(JobId id, std::uint64_t epoch) const {
  const auto it = jobs_.find(id);
  return it != jobs_.end() && it->second.attempt == epoch &&
         it->second.state == JobState::kRunning;
}

void CondorPool::start_job(JobId id, ClaimId claim_id, std::uint64_t epoch) {
  const Claim& claim = claims_.at(claim_id);
  JobRecord& rec = jobs_.at(id);
  rec.worker = claim.node_name;
  sim().trace().record(sim().now(), "condor", "job_start",
                       {{"job", rec.spec.name}, {"node", claim.node_name}});
  // Worker-side setup (starter + wrapper), then stage-in. Every
  // continuation from here on re-checks attempt_live: a node crash aborts
  // the attempt out from under these callbacks and erases the claim.
  sim().call_in(config_.job_setup_overhead_s, [this, id, claim_id, epoch] {
    if (!attempt_live(id, epoch)) return;
    Startd& sd = *startds_.at(claims_.at(claim_id).node_name);
    // Stage inputs sequentially, as pegasus-lite does. The chain body
    // holds only a weak self-reference — each pending transfer carries
    // the strong one — so the function doesn't keep itself alive forever
    // (a direct self-capture is a shared_ptr cycle; LeakSanitizer flags
    // it on every job).
    auto stage_next = std::make_shared<std::function<void(std::size_t)>>();
    *stage_next = [this, id, claim_id, epoch, &sd,
                   weak = std::weak_ptr<std::function<void(std::size_t)>>(
                       stage_next)](std::size_t i) {
      const auto self = weak.lock();
      const JobRecord& rr = jobs_.at(id);
      if (i >= rr.spec.inputs.size()) {
        run_executable(id, claim_id, epoch);
        return;
      }
      if (rr.spec.submit_volume == nullptr) {
        finish_job(id, claim_id, epoch, false);
        return;
      }
      storage::stage_file(cluster_.network(), *rr.spec.submit_volume,
                          sd.scratch(), rr.spec.inputs[i].lfn,
                          [this, id, claim_id, epoch, i, self](bool ok) {
                            if (!attempt_live(id, epoch)) return;
                            if (!ok) {
                              finish_job(id, claim_id, epoch, false);
                            } else {
                              (*self)(i + 1);
                            }
                          });
    };
    (*stage_next)(0);
  });
}

void CondorPool::run_executable(JobId id, ClaimId claim_id,
                                std::uint64_t epoch) {
  JobRecord& rec = jobs_.at(id);
  rec.start_time = sim().now();
  Startd& sd = *startds_.at(claims_.at(claim_id).node_name);
  auto ctx = std::make_shared<ExecContext>();
  ctx->sim = &sim();
  ctx->node = &sd.node();
  ctx->scratch = &sd.scratch();
  ctx->cpus = rec.spec.request_cpus;
  if (!rec.spec.executable) {
    finish_job(id, claim_id, epoch, false);
    return;
  }
  rec.spec.executable(*ctx, [this, id, claim_id, epoch, ctx](bool ok) {
    if (!attempt_live(id, epoch)) return;
    if (!ok) {
      finish_job(id, claim_id, epoch, false);
      return;
    }
    // Stage outputs back to the submit node sequentially (weak
    // self-reference: see the stage-in chain).
    Startd& sd2 = *startds_.at(claims_.at(claim_id).node_name);
    auto stage_next = std::make_shared<std::function<void(std::size_t)>>();
    *stage_next = [this, id, claim_id, epoch, &sd2,
                   weak = std::weak_ptr<std::function<void(std::size_t)>>(
                       stage_next)](std::size_t i) {
      const auto self = weak.lock();
      const JobRecord& rr = jobs_.at(id);
      if (i >= rr.spec.outputs.size()) {
        finish_job(id, claim_id, epoch, true);
        return;
      }
      if (rr.spec.submit_volume == nullptr) {
        finish_job(id, claim_id, epoch, false);
        return;
      }
      storage::stage_file(cluster_.network(), sd2.scratch(),
                          *rr.spec.submit_volume, rr.spec.outputs[i],
                          [this, id, claim_id, epoch, i, self](bool ok2) {
                            if (!attempt_live(id, epoch)) return;
                            if (!ok2) {
                              finish_job(id, claim_id, epoch, false);
                            } else {
                              (*self)(i + 1);
                            }
                          });
    };
    (*stage_next)(0);
  });
}

void CondorPool::finish_job(JobId id, ClaimId claim_id, std::uint64_t epoch,
                            bool ok) {
  if (!attempt_live(id, epoch)) return;
  JobRecord& rec = jobs_.at(id);
  rec.state = ok ? JobState::kCompleted : JobState::kFailed;
  rec.end_time = sim().now();
  --running_;
  (ok ? completed_ : failed_)++;
  sim().trace().record(sim().now(), "condor",
                       ok ? "job_complete" : "job_failed",
                       {{"job", rec.spec.name}});
  auto it = claims_.find(claim_id);
  if (it != claims_.end()) {
    it->second.busy = false;
    it->second.job = kNoJob;
    ++it->second.idle_epoch;
    arm_claim_timeout(claim_id);
  }
  // Copy the handler: pump/dispatch below must not race with reentrant
  // submits from the callback.
  if (rec.spec.on_done) {
    auto cb = rec.spec.on_done;
    cb(rec);
  }
  pump_dispatch();
}

void CondorPool::abort_job(JobId id) {
  JobRecord& rec = jobs_.at(id);
  if (rec.state != JobState::kRunning) return;
  rec.state = JobState::kFailed;
  rec.end_time = sim().now();
  // Invalidate every continuation the dead attempt still has in flight
  // (dispatch timers, stage callbacks, exec completions).
  ++rec.attempt;
  --running_;
  ++failed_;
  ++aborted_;
  sim().trace().record(sim().now(), "condor", "job_aborted",
                       {{"job", rec.spec.name}, {"node", rec.worker}});
  if (rec.spec.on_done) {
    auto cb = rec.spec.on_done;
    cb(rec);  // DAGMan's retry path resubmits as a fresh JobId
  }
}

void CondorPool::handle_node_crash(const std::string& node_name) {
  // Drop the node's claims and reset its startd BEFORE aborting victims:
  // abort_job fires on_done, whose resubmits must not match dead claims.
  std::vector<JobId> victims;
  for (auto it = claims_.begin(); it != claims_.end();) {
    if (it->second.node_name != node_name) {
      ++it;
      continue;
    }
    if (it->second.busy && it->second.job != kNoJob) {
      victims.push_back(it->second.job);
    }
    if (test_keep_claims_on_crash_) {
      ++it;  // planted bug: leak the dead node's claims (see pool.hpp)
    } else {
      it = claims_.erase(it);
    }
  }
  if (!test_keep_claims_on_crash_) startds_.at(node_name)->reset();
  sim().trace().record(sim().now(), "condor", "startd_death",
                       {{"node", node_name},
                        {"victims", std::to_string(victims.size())}});
  for (const JobId jid : victims) abort_job(jid);
  pump_dispatch();
  if (has_unmatched_idle()) kick_negotiator();
}

std::vector<std::string> CondorPool::self_check() const {
  std::vector<std::string> out;
  constexpr double kEps = 1e-9;

  // State tallies vs counters.
  std::size_t idle = 0;
  std::size_t running = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  for (const auto& [id, rec] : jobs_) {
    switch (rec.state) {
      case JobState::kIdle:
        ++idle;
        break;
      case JobState::kRunning:
        ++running;
        break;
      case JobState::kCompleted:
        ++completed;
        break;
      case JobState::kFailed:
        ++failed;
        break;
      case JobState::kRemoved:
        break;
    }
  }
  if (running != running_) {
    out.push_back("running tally " + std::to_string(running) +
                  " != counter " + std::to_string(running_));
  }
  if (completed != completed_) {
    out.push_back("completed tally " + std::to_string(completed) +
                  " != counter " + std::to_string(completed_));
  }
  if (failed != failed_) {
    out.push_back("failed tally " + std::to_string(failed) +
                  " != counter " + std::to_string(failed_));
  }
  if (idle != idle_queue_.size()) {
    out.push_back("idle tally " + std::to_string(idle) + " != queue size " +
                  std::to_string(idle_queue_.size()));
  }
  for (const JobId jid : idle_queue_) {
    const auto it = jobs_.find(jid);
    if (it == jobs_.end() || it->second.state != JobState::kIdle) {
      out.push_back("idle queue holds non-idle job " + std::to_string(jid));
    }
  }

  // Claims: live startds only, busy ⇔ running job, per-node accounting.
  std::map<std::string, double> node_cpus;
  std::map<std::string, double> node_memory;
  std::map<std::string, std::size_t> node_claims;
  for (const auto& [cid, claim] : claims_) {
    if (claim.startd == nullptr || !claim.startd->node().up()) {
      out.push_back("claim " + std::to_string(cid) + " on down node " +
                    claim.node_name);
      continue;
    }
    node_cpus[claim.node_name] += claim.cpus;
    node_memory[claim.node_name] += claim.memory;
    ++node_claims[claim.node_name];
    if (claim.busy) {
      const auto it = claim.job == kNoJob ? jobs_.end() : jobs_.find(claim.job);
      if (it == jobs_.end() || it->second.state != JobState::kRunning) {
        out.push_back("busy claim " + std::to_string(cid) + " on " +
                      claim.node_name + " has no running job");
      } else if (it->second.worker != claim.node_name &&
                 !it->second.worker.empty()) {
        out.push_back("claim " + std::to_string(cid) + " node " +
                      claim.node_name + " != job worker " + it->second.worker);
      }
    } else if (claim.job != kNoJob) {
      out.push_back("idle claim " + std::to_string(cid) +
                    " still references job " + std::to_string(claim.job));
    }
  }
  for (const auto& [name, sd] : startds_) {
    const cluster::NodeSpec& spec = sd->node().spec();
    if (sd->free_cpus() < -kEps || sd->free_memory() < -kEps) {
      out.push_back("startd " + name + " has negative free resources");
    }
    if (std::abs(sd->free_cpus() + sd->claimed_cpus() - spec.cores) > 1e-6) {
      out.push_back("startd " + name + " cpu accounting drifted: free " +
                    std::to_string(sd->free_cpus()) + " + claimed " +
                    std::to_string(sd->claimed_cpus()) + " != " +
                    std::to_string(spec.cores));
    }
    if (std::abs(sd->free_memory() + sd->claimed_memory() -
                 spec.memory_bytes) > 1.0) {
      out.push_back("startd " + name + " memory accounting drifted");
    }
    const auto it = node_claims.find(name);
    const std::size_t pool_claims = it == node_claims.end() ? 0 : it->second;
    if (pool_claims != sd->dynamic_slots()) {
      out.push_back("startd " + name + " has " +
                    std::to_string(sd->dynamic_slots()) +
                    " dynamic slots but the pool holds " +
                    std::to_string(pool_claims) + " claims there");
    }
    const auto cit = node_cpus.find(name);
    if (cit != node_cpus.end() && cit->second > spec.cores + 1e-6) {
      out.push_back("claims on " + name + " oversubscribe cpus: " +
                    std::to_string(cit->second));
    }
    const auto mit = node_memory.find(name);
    if (mit != node_memory.end() && mit->second > spec.memory_bytes + 1.0) {
      out.push_back("claims on " + name + " oversubscribe memory");
    }
  }
  return out;
}

void CondorPool::arm_claim_timeout(ClaimId claim_id) {
  const auto it = claims_.find(claim_id);
  if (it == claims_.end()) return;
  const std::uint64_t epoch = it->second.idle_epoch;
  sim().call_in(config_.claim_idle_timeout_s, [this, claim_id, epoch] {
    auto jt = claims_.find(claim_id);
    if (jt == claims_.end() || jt->second.busy ||
        jt->second.idle_epoch != epoch) {
      return;  // claim was reused or already gone
    }
    startds_.at(jt->second.node_name)->release_slot(jt->second.slot);
    claims_.erase(jt);
  });
}

}  // namespace sf::condor
