#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cluster/node.hpp"
#include "storage/volume.hpp"

namespace sf::condor {

using JobId = std::uint64_t;
inline constexpr JobId kNoJob = 0;

/// What a job's payload sees while running on a worker.
struct ExecContext {
  sim::Simulation* sim = nullptr;
  cluster::Node* node = nullptr;       ///< the matched worker
  storage::Volume* scratch = nullptr;  ///< worker-local scratch dir
  double cpus = 1;                     ///< slot size granted
};

/// A job's payload: invoked on the worker after stage-in; must call
/// `done(ok)` exactly once. Pegasus builds these for native, container and
/// serverless-wrapper tasks.
using JobExecutable =
    std::function<void(ExecContext&, std::function<void(bool ok)> done)>;

enum class JobState {
  kIdle,       ///< queued, waiting for a match
  kRunning,    ///< dispatched to a worker
  kCompleted,
  kFailed,
  kRemoved,
};

const char* to_string(JobState s);

struct JobRecord;

class Startd;

/// ClassAd-style requirements expression: true when the job may run on
/// the offered machine. Empty = matches everything.
using Requirements = std::function<bool(const Startd& startd)>;

/// Submission-time description of a job (a condor_submit file).
struct JobSpec {
  std::string name;
  JobExecutable executable;
  double request_cpus = 1;
  double request_memory = 512e6;
  /// Higher runs first among idle jobs (condor_prio); ties FIFO.
  int priority = 0;
  /// Machine constraint (ClassAd Requirements).
  Requirements requirements;
  /// Input files staged submit→worker before execution (file transfer).
  std::vector<storage::FileRef> inputs;
  /// Output logical names staged worker→submit afterwards.
  std::vector<std::string> outputs;
  /// Staging source/sink; usually the pool's submit-node staging volume.
  storage::Volume* submit_volume = nullptr;
  /// Fired on completion or failure (DAGMan hooks in here).
  std::function<void(const JobRecord&)> on_done;
};

/// Queue entry with lifecycle timestamps (condor_history).
struct JobRecord {
  JobId id = kNoJob;
  JobSpec spec;
  JobState state = JobState::kIdle;
  double submit_time = 0;
  double start_time = -1;  ///< executable began (after stage-in)
  double end_time = -1;
  std::string worker;  ///< node name it ran on
  /// Execution epoch: bumped whenever the schedd aborts the attempt (node
  /// crash). Every async continuation of the attempt carries the epoch it
  /// was created under and dies on mismatch — a crashed worker's late
  /// stage/exec callbacks cannot touch a job the schedd already failed.
  std::uint64_t attempt = 0;
};

/// Pool-wide tunables. Defaults approximate an HTCondor 23.x pool tuned
/// the way the paper's testbed behaves; the calibration profile overrides
/// them for the figure benches.
struct CondorConfig {
  /// Negotiator cycle period (matchmaking granularity).
  double negotiation_interval_s = 10.0;
  /// Serialized per-job activation at the schedd (shadow spawn rate) —
  /// the source of Figure 2's per-task slope.
  double dispatch_interval_s = 0.27;
  /// Per-job setup on the worker (starter + wrapper startup).
  double job_setup_overhead_s = 0.8;
  /// Claimed-but-idle slots are returned to the pool after this long.
  double claim_idle_timeout_s = 600.0;
  /// Max simultaneously running jobs (0 = unlimited) — the queue-throttle
  /// that kept the paper's VM from crashing.
  int max_running_jobs = 0;
};

}  // namespace sf::condor
