#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "condor/startd.hpp"
#include "condor/types.hpp"

namespace sf::condor {

/// A complete HTCondor pool: schedd (job queue + serialized dispatch),
/// negotiator (periodic matchmaking producing reusable claims), one
/// partitionable startd per worker, and the shadow/starter file-staging
/// path.
///
/// The performance-relevant behaviours are modelled explicitly:
///  * matchmaking happens in cycles (negotiation_interval_s),
///  * once a slot is claimed it is reused for subsequent jobs without
///    re-negotiation (claim reuse — what makes condor's sustained
///    throughput far better than its cycle period),
///  * job activations are serialized at the schedd
///    (dispatch_interval_s per job — Figure 2's slope),
///  * every job pays stage-in/stage-out transfers between the submit
///    node's staging volume and the worker scratch.
class CondorPool {
 public:
  CondorPool(cluster::Cluster& cluster, cluster::Node& submit_node,
             std::vector<cluster::Node*> workers, CondorConfig config = {});

  CondorPool(const CondorPool&) = delete;
  CondorPool& operator=(const CondorPool&) = delete;

  // ---- Schedd API ------------------------------------------------------

  JobId submit(JobSpec spec);

  /// Removes an idle job from the queue (condor_rm). Running jobs are not
  /// interruptible in this model; returns false for them.
  bool remove(JobId id);

  [[nodiscard]] const JobRecord* job(JobId id) const;

  [[nodiscard]] std::size_t idle_jobs() const;
  [[nodiscard]] std::size_t running_jobs() const;
  [[nodiscard]] std::uint64_t completed_jobs() const { return completed_; }
  [[nodiscard]] std::uint64_t failed_jobs() const { return failed_; }
  /// Running jobs failed by the schedd because their worker crashed
  /// (counted inside failed_jobs() as well).
  [[nodiscard]] std::uint64_t jobs_aborted() const { return aborted_; }
  [[nodiscard]] std::uint64_t negotiation_cycles() const { return cycles_; }
  [[nodiscard]] std::size_t active_claims() const { return claims_.size(); }

  /// Internal-consistency audit for the invariant registry (sf::check):
  /// state tallies match the counters, the idle queue holds exactly the
  /// idle jobs, every claim sits on a live reachable-shaped startd, busy
  /// claims point at running jobs, and per-node claimed resources agree
  /// with the startd's dynamic slots. Returns one message per violation
  /// (empty = clean). Pure read; never schedules or mutates.
  [[nodiscard]] std::vector<std::string> self_check() const;

  /// TEST-ONLY mutation hook: when set, handle_node_crash() keeps the dead
  /// node's claims (and skips the startd reset) while still aborting the
  /// victim jobs — a planted claim-release bug the invariant registry must
  /// catch (tests/check/mutation_test.cpp). Never set outside tests.
  void test_only_keep_claims_on_crash(bool keep) {
    test_keep_claims_on_crash_ = keep;
  }

  // ---- Topology --------------------------------------------------------

  [[nodiscard]] cluster::Node& submit_node() { return submit_; }
  [[nodiscard]] storage::Volume& submit_staging() { return staging_; }
  [[nodiscard]] Startd& startd(const std::string& node_name);
  [[nodiscard]] std::size_t worker_count() const { return startds_.size(); }
  [[nodiscard]] const std::vector<std::string>& worker_names() const {
    return worker_order_;
  }
  [[nodiscard]] const CondorConfig& config() const { return config_; }
  [[nodiscard]] sim::Simulation& sim() { return cluster_.sim(); }
  [[nodiscard]] cluster::Cluster& cluster() { return cluster_; }

 private:
  using ClaimId = std::uint64_t;
  struct Claim {
    std::string node_name;
    Startd* startd = nullptr;  ///< cached owner; avoids name lookups in
                               ///< the match loops
    SlotId slot = 0;
    double cpus = 0;
    double memory = 0;
    bool busy = false;
    /// Job currently activated on this claim (kNoJob when idle) — lets the
    /// crash handler find the victims bound to a dead node.
    JobId job = kNoJob;
    std::uint64_t idle_epoch = 0;
    /// Greedy-match scratch: the claim is reserved in the match pass whose
    /// stamp equals the pool's current one (no per-cycle set allocations).
    std::uint64_t reserved_stamp = 0;
  };

  void kick_negotiator();
  void negotiate();
  void pump_dispatch();
  void start_job(JobId id, ClaimId claim_id, std::uint64_t epoch);
  void run_executable(JobId id, ClaimId claim_id, std::uint64_t epoch);
  void finish_job(JobId id, ClaimId claim_id, std::uint64_t epoch, bool ok);
  void arm_claim_timeout(ClaimId claim_id);
  /// True while `id` is still the running attempt `epoch` — the guard every
  /// dispatched continuation passes before touching jobs_/claims_.
  [[nodiscard]] bool attempt_live(JobId id, std::uint64_t epoch) const;
  /// Fails a running job (worker died under it): bumps the attempt epoch so
  /// in-flight continuations die, updates counters, fires on_done so DAGMan
  /// can retry.
  void abort_job(JobId id);
  /// Startd death: drops the node's claims, resets its startd, aborts the
  /// jobs that were running there, and kicks scheduling for the requeues.
  void handle_node_crash(const std::string& node_name);
  /// True when at least one idle job cannot be greedily matched (priority
  /// order) against the free claims; early-exits on the first miss.
  [[nodiscard]] bool has_unmatched_idle();
  [[nodiscard]] bool claim_fits(const Claim& claim,
                                const JobRecord& rec) const;
  /// True while the schedd (submit node) can reach `node` over the flow
  /// network. A rack cut makes a healthy startd unmatchable and its idle
  /// claims unusable; the negotiator re-polls via kick_negotiator, so the
  /// pool picks the workers back up as soon as the cut heals.
  [[nodiscard]] bool reachable(const cluster::Node& node) const;
  /// Inserts into idle_queue_ keeping (priority desc, submission order).
  void enqueue_idle(JobId id);

  cluster::Cluster& cluster_;
  cluster::Node& submit_;
  storage::Volume staging_;
  CondorConfig config_;
  std::map<std::string, std::unique_ptr<Startd>> startds_;
  std::vector<std::string> worker_order_;  // negotiation fill order

  std::map<JobId, JobRecord> jobs_;
  /// Idle jobs, maintained in dispatch order (priority desc, FIFO within
  /// a priority) — the order the former copy+stable_sort produced on
  /// every negotiation/dispatch pass.
  std::vector<JobId> idle_queue_;
  std::map<ClaimId, Claim> claims_;
  std::uint64_t match_stamp_ = 0;
  JobId next_job_ = 1;
  ClaimId next_claim_ = 1;
  bool negotiator_armed_ = false;
  bool dispatch_busy_ = false;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t aborted_ = 0;
  std::uint64_t cycles_ = 0;
  std::size_t running_ = 0;
  bool test_keep_claims_on_crash_ = false;
};

}  // namespace sf::condor
