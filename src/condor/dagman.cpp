#include "condor/dagman.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace sf::condor {

DagMan::DagMan(CondorPool& pool, DagConfig config)
    : pool_(pool), config_(config) {}

void DagMan::add_node(DagNode node) {
  if (running_) {
    throw std::logic_error("DagMan: cannot add nodes while running");
  }
  if (nodes_.contains(node.name)) {
    throw std::invalid_argument("DagMan: duplicate node " + node.name);
  }
  Node n;
  n.spec = std::move(node);
  nodes_.emplace(n.spec.name, std::move(n));
}

void DagMan::validate_and_link() {
  for (auto& [name, node] : nodes_) {
    node.unfinished_parents = node.spec.parents.size();
    for (const auto& parent : node.spec.parents) {
      auto it = nodes_.find(parent);
      if (it == nodes_.end()) {
        throw std::invalid_argument("DagMan: unknown parent " + parent +
                                    " of " + name);
      }
      it->second.children.push_back(name);
    }
  }
  // Cycle check: Kahn's algorithm over parent counts.
  std::vector<std::string> frontier;
  std::map<std::string, std::size_t> degree;
  for (const auto& [name, node] : nodes_) {
    degree[name] = node.spec.parents.size();
    if (node.spec.parents.empty()) frontier.push_back(name);
  }
  std::size_t visited = 0;
  while (!frontier.empty()) {
    const std::string current = frontier.back();
    frontier.pop_back();
    ++visited;
    for (const auto& child : nodes_.at(current).children) {
      if (--degree.at(child) == 0) frontier.push_back(child);
    }
  }
  if (visited != nodes_.size()) {
    throw std::invalid_argument("DagMan: the DAG contains a cycle");
  }
}

void DagMan::run(std::function<void(bool)> on_finish) {
  if (running_) throw std::logic_error("DagMan: already running");
  if (nodes_.empty()) {
    pool_.sim().call_in(0, [cb = std::move(on_finish)] { cb(true); });
    return;
  }
  validate_and_link();
  running_ = true;
  failed_ = false;
  on_finish_ = std::move(on_finish);
  start_time_ = pool_.sim().now();
  for (auto& [name, node] : nodes_) {
    if (node.unfinished_parents == 0) {
      node.state = NodeState::kReady;
      ready_.push_back(name);
    }
  }
  submit_ready();  // roots go straight to the schedd
}

void DagMan::submit_ready() {
  while (!ready_.empty()) {
    if (config_.max_jobs > 0 &&
        submitted_live_ >= static_cast<std::size_t>(config_.max_jobs)) {
      return;  // throttled; resumes when something completes
    }
    const std::string name = ready_.front();
    ready_.erase(ready_.begin());
    Node& node = nodes_.at(name);
    node.state = NodeState::kSubmitted;
    ++node.attempts;
    ++submitted_live_;
    JobSpec spec = node.spec.job;
    spec.name = name;
    spec.on_done = [this, name](const JobRecord& rec) {
      on_job_done(name, rec);
    };
    node.last_job = pool_.submit(std::move(spec));
  }
}

void DagMan::on_job_done(const std::string& node_name,
                         const JobRecord& rec) {
  // The POST script (exitcode check) runs first; its runtime delays when
  // DAGMan can observe the node's outcome.
  if (config_.post_script_s > 0) {
    const JobState state = rec.state;
    pool_.sim().call_in(config_.post_script_s, [this, node_name, state] {
      JobRecord copy;
      copy.state = state;
      handle_node_exit(node_name, copy);
    });
    return;
  }
  handle_node_exit(node_name, rec);
}

void DagMan::handle_node_exit(const std::string& node_name,
                              const JobRecord& rec) {
  Node& node = nodes_.at(node_name);
  --submitted_live_;
  if (rec.state == JobState::kCompleted) {
    completed_events_.push_back(node_name);
    arm_scan();
    return;
  }
  // Failure path: retry or declare the DAG failed.
  if (node.attempts <= node.spec.retries) {
    ++retries_used_;
    node.state = NodeState::kReady;
    ready_.push_back(node_name);
    arm_scan();
    return;
  }
  node.state = NodeState::kFailed;
  finish(false);
}

void DagMan::arm_scan() {
  if (scan_armed_ || !running_) return;
  scan_armed_ = true;
  // Completions are observed at the next log-scan boundary relative to
  // the DAG start, the way dagman polls the user log.
  const double elapsed = pool_.sim().now() - start_time_;
  const double next_boundary =
      (std::floor(elapsed / config_.scan_interval_s) + 1.0) *
      config_.scan_interval_s;
  pool_.sim().call_in(next_boundary - elapsed, [this] { scan(); });
}

void DagMan::scan() {
  scan_armed_ = false;
  if (!running_) return;
  // Process completions observed in this scan.
  for (const auto& name : completed_events_) {
    Node& node = nodes_.at(name);
    node.state = NodeState::kDone;
    ++completed_;
    for (const auto& child_name : node.children) {
      Node& child = nodes_.at(child_name);
      if (--child.unfinished_parents == 0 &&
          child.state == NodeState::kWaiting) {
        child.state = NodeState::kReady;
        ready_.push_back(child_name);
      }
    }
  }
  completed_events_.clear();
  if (completed_ == nodes_.size()) {
    finish(true);
    return;
  }
  submit_ready();
}

void DagMan::finish(bool success) {
  if (!running_) return;
  running_ = false;
  failed_ = !success;
  finish_time_ = pool_.sim().now();
  if (on_finish_) {
    auto cb = std::move(on_finish_);
    on_finish_ = nullptr;
    cb(success);
  }
}

DagMan::StateCounts DagMan::state_counts() const {
  StateCounts c;
  for (const auto& [name, node] : nodes_) {
    switch (node.state) {
      case NodeState::kWaiting:
        ++c.waiting;
        break;
      case NodeState::kReady:
        ++c.ready;
        break;
      case NodeState::kSubmitted:
        ++c.submitted;
        break;
      case NodeState::kDone:
        ++c.done;
        break;
      case NodeState::kFailed:
        ++c.failed;
        break;
    }
  }
  return c;
}

std::vector<std::string> DagMan::self_check() const {
  std::vector<std::string> out;
  const StateCounts c = state_counts();
  if (c.waiting + c.ready + c.submitted + c.done + c.failed !=
      nodes_.size()) {
    out.push_back("state tallies do not cover every node");
  }
  if (c.done != completed_) {
    out.push_back("done tally " + std::to_string(c.done) +
                  " != completed counter " + std::to_string(completed_));
  }
  if (c.ready != ready_.size()) {
    out.push_back("ready tally " + std::to_string(c.ready) +
                  " != ready queue size " + std::to_string(ready_.size()));
  }
  // Post scripts and the log-scan lag keep finished nodes in kSubmitted for
  // a while, so submitted_live_ only lower-bounds the submitted tally.
  if (c.submitted < submitted_live_) {
    out.push_back("submitted tally " + std::to_string(c.submitted) +
                  " below live counter " + std::to_string(submitted_live_));
  }
  for (const auto& name : ready_) {
    const auto it = nodes_.find(name);
    if (it == nodes_.end() || it->second.state != NodeState::kReady) {
      out.push_back("ready queue holds non-ready node " + name);
    }
  }
  for (const auto& name : completed_events_) {
    const auto it = nodes_.find(name);
    if (it == nodes_.end() || it->second.state != NodeState::kSubmitted) {
      out.push_back("completion backlog holds non-submitted node " + name);
    }
  }
  for (const auto& [name, node] : nodes_) {
    if (node.attempts > node.spec.retries + 1) {
      out.push_back("node " + name + " ran " +
                    std::to_string(node.attempts) +
                    " attempts with a budget of " +
                    std::to_string(node.spec.retries + 1));
    }
    if (node.state == NodeState::kFailed &&
        node.attempts != node.spec.retries + 1) {
      out.push_back("node " + name + " failed without exhausting retries");
    }
    if (running_ && node.state == NodeState::kWaiting &&
        node.unfinished_parents == 0) {
      out.push_back("node " + name + " is waiting with no unfinished parents");
    }
  }
  if (failed_ && c.failed == 0 && !nodes_.empty()) {
    out.push_back("DAG marked failed but no node is");
  }
  return out;
}

const JobRecord* DagMan::node_record(const std::string& name) const {
  auto it = nodes_.find(name);
  if (it == nodes_.end() || it->second.last_job == kNoJob) return nullptr;
  return pool_.job(it->second.last_job);
}

}  // namespace sf::condor
