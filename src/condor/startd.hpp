#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "cluster/node.hpp"
#include "storage/volume.hpp"

namespace sf::condor {

using SlotId = std::uint64_t;

/// One worker's condor agent: a partitionable slot covering the node's
/// cores and memory, from which dynamic slots are carved per claim.
/// Also owns the node's job scratch volume.
class Startd {
 public:
  explicit Startd(cluster::Node& node)
      : node_(node),
        scratch_(node, node.name() + ".condor-scratch"),
        free_cpus_(node.spec().cores),
        free_memory_(node.spec().memory_bytes) {}

  Startd(const Startd&) = delete;
  Startd& operator=(const Startd&) = delete;

  [[nodiscard]] cluster::Node& node() { return node_; }
  [[nodiscard]] const cluster::Node& node() const { return node_; }
  [[nodiscard]] storage::Volume& scratch() { return scratch_; }

  /// Carves a dynamic slot; nullopt when resources do not fit.
  std::optional<SlotId> claim_slot(double cpus, double memory);

  /// Returns a dynamic slot's resources to the partitionable slot.
  void release_slot(SlotId id);

  /// Drops every dynamic slot and restores the full partitionable slot —
  /// what a startd restart after a node crash looks like to the pool. The
  /// object itself stays alive (continuations hold references to it).
  void reset() {
    slots_.clear();
    free_cpus_ = node_.spec().cores;
    free_memory_ = node_.spec().memory_bytes;
  }

  [[nodiscard]] double free_cpus() const { return free_cpus_; }
  [[nodiscard]] double free_memory() const { return free_memory_; }
  [[nodiscard]] std::size_t dynamic_slots() const { return slots_.size(); }

  /// Resources currently carved into dynamic slots. Conservation law
  /// (sf::check): free + claimed == the node's spec, always.
  [[nodiscard]] double claimed_cpus() const {
    double total = 0;
    for (const auto& [id, slot] : slots_) total += slot.cpus;
    return total;
  }
  [[nodiscard]] double claimed_memory() const {
    double total = 0;
    for (const auto& [id, slot] : slots_) total += slot.memory;
    return total;
  }

 private:
  struct DynamicSlot {
    double cpus = 0;
    double memory = 0;
  };

  cluster::Node& node_;
  storage::Volume scratch_;
  double free_cpus_;
  double free_memory_;
  std::map<SlotId, DynamicSlot> slots_;
  SlotId next_id_ = 1;
};

}  // namespace sf::condor
