#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.hpp"
#include "cluster/cluster.hpp"
#include "condor/dagman.hpp"
#include "condor/pool.hpp"
#include "container/registry.hpp"
#include "core/calibration.hpp"
#include "core/integration.hpp"
#include "k8s/kube_cluster.hpp"
#include "knative/serving.hpp"
#include "metrics/ternary.hpp"
#include "pegasus/planner.hpp"
#include "storage/object_store.hpp"
#include "storage/replica_catalog.hpp"
#include "storage/shared_fs.hpp"
#include "workload/generators.hpp"

namespace sf::core {

/// Options for assembling the simulated evaluation environment.
struct TestbedOptions {
  std::size_t node_count = 4;  ///< the paper's 4-VM cluster
  CalibrationProfile calibration{};
  DataStrategy strategy = DataStrategy::kPassByValue;
  /// Default provisioning for registered functions (paper: pre-staged,
  /// one warm pod per worker, one request per container at a time —
  /// the Figure 5/6 "serverless containers" configuration).
  ProvisioningPolicy provisioning = [] {
    ProvisioningPolicy p = ProvisioningPolicy::prestaged(3);
    p.container_concurrency = 1;
    return p;
  }();
  /// Pre-seed task images into every engine (the "containers distributed
  /// to workers before workflow execution" scenario). When false, images
  /// must travel from the registry.
  bool prestage_images = true;
  /// Automatic DAGMan resubmissions per workflow node (Pegasus `RETRY`).
  /// The retry budget that turns injected worker crashes into delays
  /// instead of failed workflows; 0 keeps the historical fail-fast
  /// behaviour.
  int dag_retries = 0;
  /// Wall on the run_workflows drive loop, in sim-seconds from the run's
  /// start (0 = unlimited, the historical behaviour). A workload that
  /// would spin forever — the hang class of bug the property fuzzer
  /// exists to catch — instead returns with RunResult::deadline_hit set.
  double run_deadline_s = 0;
  /// Metadata tier: when enabled, a CatalogService fronts the replica
  /// catalog from the head node and the planner resolves stage-in /
  /// stage-out through a shared CatalogClient (TTL cache, retry/backoff,
  /// circuit breaker, stale reads). Disabled keeps the historical direct
  /// in-process lookups, byte for byte.
  catalog::CatalogTierConfig catalog{};
};

/// The fully assembled evaluation environment of Section V: node0 hosts
/// the condor submit side, the Kubernetes control plane, the image
/// registry, the Knative ingress gateway and the storage services; nodes
/// 1..N-1 are both condor workers and Kubernetes workers.
///
/// This is the top-level object benches and examples drive.
class PaperTestbed {
 public:
  explicit PaperTestbed(std::uint64_t seed = 42, TestbedOptions options = {});

  PaperTestbed(const PaperTestbed&) = delete;
  PaperTestbed& operator=(const PaperTestbed&) = delete;

  sim::Simulation& sim() { return sim_; }
  cluster::Cluster& cluster() { return *cluster_; }
  container::Registry& registry() { return *registry_; }
  condor::CondorPool& condor() { return *condor_; }
  k8s::KubeCluster& kube() { return *kube_; }
  knative::KnativeServing& serving() { return *serving_; }
  pegasus::DockerEnv& docker() { return *docker_; }
  ServerlessIntegration& integration() { return *integration_; }
  storage::ReplicaCatalog& replicas() { return replicas_; }
  pegasus::TransformationCatalog& transformations() { return catalog_; }
  /// Metadata-tier handles; null unless options().catalog.enabled.
  catalog::CatalogService* catalog_service() { return catalog_service_.get(); }
  catalog::CatalogClient* catalog_client() { return catalog_client_.get(); }
  storage::SharedFileSystem& shared_fs() { return *shared_fs_; }
  storage::ObjectStore& object_store() { return *object_store_; }
  const CalibrationProfile& calibration() const {
    return options_.calibration;
  }
  const TestbedOptions& options() const { return options_; }

  /// Registers the matmul transformation's function with Knative (done
  /// before workflow execution, per the paper) and waits until warm pods
  /// (if any) are ready.
  void register_matmul_function();
  void register_matmul_function(const ProvisioningPolicy& policy);

  /// Outcome of one workflow-set run.
  struct RunResult {
    std::vector<double> makespans;  ///< per workflow, seconds
    double slowest = 0;             ///< the paper's headline metric
    bool all_succeeded = false;
    int finished = 0;  ///< DAGs that reported in (success or failure)
    /// True when the drive loop hit options().run_deadline_s with DAGs
    /// still outstanding — the workload hung.
    bool deadline_hit = false;
    std::map<pegasus::JobMode, int> mode_counts;
  };

  /// Plans and concurrently executes the given workflows with per-task
  /// execution modes, running the simulation until all complete.
  RunResult run_workflows(
      const std::vector<pegasus::AbstractWorkflow>& workflows,
      const std::map<std::string, pegasus::JobMode>& modes,
      int cluster_size = 1);

  /// The paper's Section V experiment: `n_workflows` concurrent 10-task
  /// chains with modes drawn randomly to realize `mix`.
  RunResult run_concurrent_mix(int n_workflows, int tasks_per_workflow,
                               const metrics::MixPoint& mix);

  // ---- Invariant checking (sf::check) -------------------------------

  /// DAGs of every run_workflows call on this testbed, kept alive so the
  /// invariant registry can audit live workflow state mid-run. (They used
  /// to die at the end of run_workflows; keeping them is safe — a
  /// finished DagMan holds no pending callbacks — and lets a deadline-hit
  /// run be inspected post mortem.)
  [[nodiscard]] const std::vector<std::unique_ptr<condor::DagMan>>&
  active_dags() const {
    return live_dags_;
  }

  /// Invariant-checker hook, fired once at the end of every run_workflows
  /// drive loop. Null by default: the only cost when checking is off is
  /// this one branch per run — the zero-overhead-when-off contract.
  void set_quiesce_probe(std::function<void()> probe) {
    quiesce_probe_ = std::move(probe);
  }

 private:
  TestbedOptions options_;
  sim::Simulation sim_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<container::Registry> registry_;
  std::unique_ptr<condor::CondorPool> condor_;
  std::unique_ptr<k8s::KubeCluster> kube_;
  std::unique_ptr<knative::KnativeServing> serving_;
  std::unique_ptr<pegasus::DockerEnv> docker_;
  std::unique_ptr<storage::SharedFileSystem> shared_fs_;
  std::unique_ptr<storage::ObjectStore> object_store_;
  std::unique_ptr<ServerlessIntegration> integration_;
  storage::ReplicaCatalog replicas_;
  pegasus::TransformationCatalog catalog_;
  std::unique_ptr<catalog::CatalogService> catalog_service_;
  std::unique_ptr<catalog::CatalogClient> catalog_client_;
  /// Distinguishes consecutive run_concurrent_mix() calls on this testbed
  /// (job names must be unique per sim). Per-instance so that identically
  /// seeded testbeds replay identical event streams.
  int run_counter_ = 0;
  std::vector<std::unique_ptr<condor::DagMan>> live_dags_;
  std::function<void()> quiesce_probe_;
};

}  // namespace sf::core
