#pragma once

#include <cstdint>

#include "core/integration.hpp"

namespace sf::core {

/// §IX-D future work, implemented: serverless redirection of tasks away
/// from over-utilized nodes at runtime.
///
/// Wraps every task in an *adaptive* executable: when the condor-matched
/// node's CPU utilization is below the threshold the task runs natively
/// (no overhead); when the node is busy, the task is redirected to the
/// pre-registered serverless function, letting Knative place it on a pod
/// with spare capacity. Combine with
/// `KnativeServing::set_load_balancing(kLeastLoaded)` so redirected work
/// also avoids busy pods.
class TaskRedirector {
 public:
  /// `utilization_threshold` is the busy fraction of the node's cores
  /// above which a task is redirected (0.75 = redirect when more than
  /// three quarters of the cores are already committed).
  TaskRedirector(ServerlessIntegration& integration,
                 double utilization_threshold = 0.75);

  TaskRedirector(const TaskRedirector&) = delete;
  TaskRedirector& operator=(const TaskRedirector&) = delete;

  /// Drop-in replacement for `ServerlessIntegration::wrapper_factory()`:
  /// give this to the planner (with the jobs marked kServerless) to get
  /// adaptive native-or-redirect behaviour per task.
  [[nodiscard]] pegasus::ServerlessWrapperFactory adaptive_factory();

  [[nodiscard]] double threshold() const { return threshold_; }
  [[nodiscard]] std::uint64_t redirected() const { return redirected_; }
  [[nodiscard]] std::uint64_t ran_native() const { return ran_native_; }

 private:
  ServerlessIntegration& integration_;
  double threshold_;
  std::uint64_t redirected_ = 0;
  std::uint64_t ran_native_ = 0;
};

}  // namespace sf::core
