#include "core/integration.hpp"

#include <memory>
#include <numeric>
#include <utility>

#include "container/image.hpp"

namespace sf::core {

namespace {

/// Control-message size for strategies that do not inline file bytes.
constexpr double kControlBytes = 1024;

double total_bytes(const std::vector<storage::FileRef>& files) {
  return std::accumulate(files.begin(), files.end(), 0.0,
                         [](double acc, const storage::FileRef& f) {
                           return acc + f.bytes;
                         });
}

/// Runs `step(i, next)` for i in [0, n), sequentially and asynchronously;
/// calls `done(ok)` at the end or at the first failure.
void for_each_async(
    std::size_t n,
    std::function<void(std::size_t, std::function<void(bool)>)> step,
    std::function<void(bool)> done) {
  if (n == 0) {
    done(true);
    return;
  }
  auto next = std::make_shared<std::function<void(std::size_t)>>();
  auto done_ptr = std::make_shared<std::function<void(bool)>>(std::move(done));
  auto step_ptr =
      std::make_shared<std::function<void(std::size_t, std::function<void(bool)>)>>(
          std::move(step));
  // Weak self-reference — each in-flight step callback carries the
  // strong ref, so the chain frees itself after the last step instead
  // of leaking as a shared_ptr cycle.
  *next = [n, done_ptr, step_ptr,
           weak = std::weak_ptr<std::function<void(std::size_t)>>(next)](
              std::size_t i) {
    if (i >= n) {
      (*done_ptr)(true);
      return;
    }
    const auto self = weak.lock();
    (*step_ptr)(i, [self, done_ptr, i](bool ok) {
      if (!ok) {
        (*done_ptr)(false);
        return;
      }
      (*self)(i + 1);
    });
  };
  (*next)(0);
}

}  // namespace

const char* to_string(DataStrategy strategy) {
  switch (strategy) {
    case DataStrategy::kPassByValue:
      return "pass-by-value";
    case DataStrategy::kSharedFs:
      return "shared-fs";
    case DataStrategy::kObjectStore:
      return "object-store";
  }
  return "unknown";
}

ServerlessIntegration::ServerlessIntegration(
    knative::KnativeServing& serving, container::Registry& registry,
    CalibrationProfile calibration, DataStrategy strategy,
    storage::SharedFileSystem* shared_fs, storage::ObjectStore* object_store)
    : serving_(serving),
      registry_(registry),
      calibration_(calibration),
      strategy_(strategy),
      shared_fs_(shared_fs),
      object_store_(object_store) {
  if (strategy_ == DataStrategy::kSharedFs && shared_fs_ == nullptr) {
    throw std::invalid_argument(
        "ServerlessIntegration: shared-fs strategy needs a filesystem");
  }
  if (strategy_ == DataStrategy::kObjectStore && object_store_ == nullptr) {
    throw std::invalid_argument(
        "ServerlessIntegration: object-store strategy needs a store");
  }
}

std::string ServerlessIntegration::service_name(
    const std::string& transformation) const {
  auto it = services_.find(transformation);
  if (it == services_.end()) {
    throw std::out_of_range("ServerlessIntegration: not registered: " +
                            transformation);
  }
  return it->second;
}

knative::FunctionHandler ServerlessIntegration::make_handler() {
  const DataStrategy strategy = strategy_;
  storage::SharedFileSystem* nfs = shared_fs_;
  storage::ObjectStore* minio = object_store_;
  const double codec_s_per_mb = calibration_.payload_codec_s_per_mb;
  return [strategy, nfs, minio, codec_s_per_mb](
             const net::HttpRequest& req, knative::FunctionContext& ctx,
             net::Responder respond) {
    // Copy: the request object does not outlive a deferred handler.
    const auto payload = std::any_cast<TaskPayload>(req.body);
    auto finish = [respond = std::move(respond), strategy,
                   output_bytes = payload.output_bytes](bool ok) mutable {
      net::HttpResponse resp;
      resp.status = ok ? 200 : 500;
      resp.body_bytes = strategy == DataStrategy::kPassByValue
                            ? output_bytes
                            : kControlBytes;
      respond(std::move(resp));
    };
    // Pass-by-value pays CPU to decode the request body and encode the
    // response (matrices as JSON in the paper's Flask wrapper).
    const double codec_s =
        strategy == DataStrategy::kPassByValue
            ? codec_s_per_mb * (req.body_bytes + payload.output_bytes) / 1e6
            : 0.0;
    auto compute_then_store = [&ctx, payload, strategy, nfs, minio,
                               codec_s](std::function<void(bool)> done) {
      ctx.exec(payload.work_coreseconds + codec_s,
               [&ctx, payload, strategy, nfs, minio,
                done = std::move(done)](bool ok) mutable {
        if (!ok) {
          done(false);
          return;
        }
        switch (strategy) {
          case DataStrategy::kPassByValue:
            done(true);  // outputs travel back in the response body
            return;
          case DataStrategy::kSharedFs:
            for_each_async(
                payload.outputs.size(),
                [&ctx, payload, nfs](std::size_t i,
                                     std::function<void(bool)> next) {
                  nfs->write(ctx.node, payload.outputs[i],
                             [next = std::move(next)] { next(true); });
                },
                std::move(done));
            return;
          case DataStrategy::kObjectStore:
            for_each_async(
                payload.outputs.size(),
                [&ctx, payload, minio](std::size_t i,
                                       std::function<void(bool)> next) {
                  minio->put(ctx.node, "workflow", payload.outputs[i].lfn,
                             payload.outputs[i].bytes, std::move(next));
                },
                std::move(done));
            return;
        }
        done(false);
      });
    };

    switch (strategy) {
      case DataStrategy::kPassByValue:
        compute_then_store(std::move(finish));
        return;
      case DataStrategy::kSharedFs:
        for_each_async(
            payload.inputs.size(),
            [&ctx, payload, nfs](std::size_t i,
                                 std::function<void(bool)> next) {
              nfs->read(ctx.node, payload.inputs[i].lfn,
                        [next = std::move(next)](bool found,
                                                 storage::FileRef) mutable {
                          next(found);
                        });
            },
            [compute_then_store, finish = std::move(finish)](bool ok) mutable {
              if (!ok) {
                finish(false);
                return;
              }
              compute_then_store(std::move(finish));
            });
        return;
      case DataStrategy::kObjectStore:
        for_each_async(
            payload.inputs.size(),
            [&ctx, payload, minio](std::size_t i,
                                   std::function<void(bool)> next) {
              minio->get(ctx.node, "workflow", payload.inputs[i].lfn,
                         [next = std::move(next)](bool ok, double) mutable {
                           next(ok);
                         });
            },
            [compute_then_store, finish = std::move(finish)](bool ok) mutable {
              if (!ok) {
                finish(false);
                return;
              }
              compute_then_store(std::move(finish));
            });
        return;
    }
  };
}

void ServerlessIntegration::register_transformation(
    const pegasus::Transformation& t, const ProvisioningPolicy& policy) {
  if (services_.contains(t.name)) return;
  // §IV-1: containerize the task behind a Flask HTTP event listener and
  // publish the image.
  const std::string image_name = "fn-" + t.name;
  registry_.push(container::make_task_image(image_name));

  knative::KnServiceSpec spec;
  spec.name = "fn-" + t.name;
  spec.container.name = spec.name;
  spec.container.image = image_name + ":latest";
  spec.container.cpu_limit = 1.0;  // single-threaded task
  // Guaranteed QoS: pods with resource requests receive a cgroup
  // cpu.weight well above best-effort co-tenant processes, so redirected
  // tasks keep their share on a noisy node (§IX-D relies on this).
  spec.container.cpu_shares = 8.0;
  spec.container.memory_bytes = t.memory_bytes;
  spec.container.boot_s = calibration_.flask_boot_s;
  spec.cpu_request = 0.5;
  spec.handler = make_handler();
  spec.annotations.min_scale = policy.min_scale;
  spec.annotations.initial_scale = policy.initial_scale;
  spec.annotations.max_scale = policy.max_scale;
  spec.annotations.container_concurrency = policy.container_concurrency;
  spec.annotations.target_concurrency = policy.target_concurrency;
  spec.annotations.request_timeout_s = policy.request_timeout_s;
  spec.annotations.route_timeout_s = policy.route_timeout_s;
  spec.annotations.outlier = policy.outlier;
  spec.annotations.admission = policy.admission;
  serving_.create_service(std::move(spec));
  services_.emplace(t.name, "fn-" + t.name);
}

std::map<std::string, pegasus::JobMode> ServerlessIntegration::auto_register(
    const pegasus::AbstractWorkflow& workflow,
    const pegasus::TransformationCatalog& catalog,
    const ProvisioningPolicy& policy) {
  std::map<std::string, pegasus::JobMode> modes;
  for (const auto& job : workflow.jobs()) {
    register_transformation(catalog.get(job.transformation), policy);
    modes[job.id] = pegasus::JobMode::kServerless;
  }
  return modes;
}

pegasus::ServerlessWrapperFactory ServerlessIntegration::wrapper_factory() {
  return [this](const pegasus::AbstractJob& job,
                const pegasus::Transformation& t,
                std::vector<storage::FileRef> inputs,
                std::vector<storage::FileRef> outputs)
             -> condor::JobExecutable {
    const std::string service = service_name(t.name);
    TaskPayload payload;
    payload.work_coreseconds = t.work_coreseconds;
    payload.output_bytes = total_bytes(outputs);
    payload.inputs = inputs;
    payload.outputs = outputs;
    const double request_bytes =
        strategy_ == DataStrategy::kPassByValue ? total_bytes(inputs)
                                                : kControlBytes;
    const DataStrategy strategy = strategy_;
    storage::SharedFileSystem* nfs = shared_fs_;
    storage::ObjectStore* minio = object_store_;
    (void)job;

    return [this, service, payload, request_bytes, strategy, nfs, minio](
               condor::ExecContext& ctx, std::function<void(bool)> done) {
      // The wrapper job reads its condor-staged inputs from scratch (the
      // paper's redundant data hop: submit → wrapper node → function).
      auto after_upload = [this, service, payload, request_bytes, strategy,
                           nfs, minio, &ctx,
                           done = std::move(done)](bool staged) mutable {
        if (!staged) {
          done(false);
          return;
        }
        net::HttpRequest req;
        req.path = "/invoke";
        req.body = payload;
        req.body_bytes = request_bytes;
        ++invocations_;
        serving_.invoke(
            ctx.node->net_id(), service, std::move(req),
            [this, payload, strategy, nfs, minio, &ctx,
             done = std::move(done)](net::HttpResponse resp) mutable {
              if (!resp.ok()) {
                ++failures_;
                done(false);
                return;
              }
              // Materialize outputs into scratch for condor stage-out;
              // `fetched` reports whether the strategy-specific download
              // step succeeded.
              std::function<void(bool)> write_all =
                  [&ctx, payload, done = std::move(done)](bool fetched) mutable {
                    if (!fetched) {
                      done(false);
                      return;
                    }
                    for_each_async(
                        payload.outputs.size(),
                        [&ctx, payload](std::size_t i,
                                        std::function<void(bool)> next) {
                          ctx.scratch->write(payload.outputs[i],
                                             [next = std::move(next)] {
                                               next(true);
                                             });
                        },
                        std::move(done));
                  };
              switch (strategy) {
                case DataStrategy::kPassByValue:
                  write_all(true);
                  return;
                case DataStrategy::kSharedFs:
                  // Pull outputs off the shared FS to this node first.
                  for_each_async(
                      payload.outputs.size(),
                      [&ctx, payload, nfs](std::size_t i,
                                           std::function<void(bool)> next) {
                        nfs->read(ctx.node->net_id(),
                                  payload.outputs[i].lfn,
                                  [next = std::move(next)](
                                      bool found, storage::FileRef) mutable {
                                    next(found);
                                  });
                      },
                      std::move(write_all));
                  return;
                case DataStrategy::kObjectStore:
                  for_each_async(
                      payload.outputs.size(),
                      [&ctx, payload, minio](std::size_t i,
                                             std::function<void(bool)> next) {
                        minio->get(ctx.node->net_id(), "workflow",
                                   payload.outputs[i].lfn,
                                   [next = std::move(next)](bool ok,
                                                            double) mutable {
                                     next(ok);
                                   });
                      },
                      std::move(write_all));
                  return;
              }
            });
      };

      // Strategy-specific upload step before invocation.
      switch (strategy) {
        case DataStrategy::kPassByValue: {
          // Read staged inputs from local disk to serialize into the
          // request body.
          std::vector<std::string> lfns;
          for (const auto& f : payload.inputs) lfns.push_back(f.lfn);
          for_each_async(
              lfns.size(),
              [&ctx, lfns](std::size_t i, std::function<void(bool)> next) {
                ctx.scratch->read(
                    lfns[i], [next = std::move(next)](
                                 bool found, storage::FileRef) mutable {
                      next(found);
                    });
              },
              std::move(after_upload));
          return;
        }
        case DataStrategy::kSharedFs:
          for_each_async(
              payload.inputs.size(),
              [&ctx, payload, nfs](std::size_t i,
                                   std::function<void(bool)> next) {
                nfs->write(ctx.node->net_id(), payload.inputs[i],
                           [next = std::move(next)] { next(true); });
              },
              std::move(after_upload));
          return;
        case DataStrategy::kObjectStore:
          for_each_async(
              payload.inputs.size(),
              [&ctx, payload, minio](std::size_t i,
                                     std::function<void(bool)> next) {
                minio->put(ctx.node->net_id(), "workflow",
                           payload.inputs[i].lfn, payload.inputs[i].bytes,
                           std::move(next));
              },
              std::move(after_upload));
          return;
      }
    };
  };
}

}  // namespace sf::core
