#include "core/testbed.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "container/image.hpp"

namespace sf::core {

PaperTestbed::PaperTestbed(std::uint64_t seed, TestbedOptions options)
    : options_(std::move(options)), sim_(seed) {
  if (options_.node_count < 2) {
    throw std::invalid_argument("PaperTestbed: need at least two nodes");
  }
  cluster_ = cluster::make_uniform_cluster(sim_, options_.node_count,
                                           cluster::NodeSpec{});
  cluster::Node& head = cluster_->node(0);
  registry_ = std::make_unique<container::Registry>(head);

  std::vector<cluster::Node*> workers;
  for (std::size_t i = 1; i < cluster_->size(); ++i) {
    workers.push_back(&cluster_->node(i));
  }
  condor_ = std::make_unique<condor::CondorPool>(
      *cluster_, head, workers, options_.calibration.condor);
  kube_ = std::make_unique<k8s::KubeCluster>(
      *cluster_, *registry_, workers, options_.calibration.kube_engine);
  serving_ = std::make_unique<knative::KnativeServing>(*kube_, head);
  docker_ = std::make_unique<pegasus::DockerEnv>(
      *cluster_, *condor_, options_.calibration.docker_engine);
  shared_fs_ = std::make_unique<storage::SharedFileSystem>(*cluster_, head);
  object_store_ = std::make_unique<storage::ObjectStore>(*cluster_, head);
  integration_ = std::make_unique<ServerlessIntegration>(
      *serving_, *registry_, options_.calibration, options_.strategy,
      shared_fs_.get(), object_store_.get());

  if (options_.catalog.enabled) {
    // The metadata tier lives with the other head-node services; the
    // shared client models the submit-side planner stub.
    catalog_service_ = std::make_unique<catalog::CatalogService>(
        sim_, cluster_->network(), head.net_id(), replicas_,
        options_.catalog.service);
    catalog_client_ = std::make_unique<catalog::CatalogClient>(
        sim_, *catalog_service_, head.net_id(), options_.catalog.client);
  }

  catalog_.add(options_.calibration.matmul_transformation());
  registry_->push(container::make_task_image("matmul"));
  if (options_.prestage_images) {
    kube_->seed_image_everywhere(container::make_task_image("fn-matmul"));
    // Note: registered only below; seeding layers is harmless either way.
  }
}

void PaperTestbed::register_matmul_function() {
  register_matmul_function(options_.provisioning);
}

void PaperTestbed::register_matmul_function(
    const ProvisioningPolicy& policy) {
  integration_->register_transformation(catalog_.get("matmul"), policy);
  if (options_.prestage_images) {
    kube_->seed_image_everywhere(container::make_task_image("fn-matmul"));
  }
  // Let warm pods come up before the experiment starts, as the paper does
  // ("deployed on Knative before workflow execution").
  if (policy.min_scale > 0) {
    const double deadline = sim_.now() + 120.0;
    while (serving_->ready_replicas("fn-matmul") < policy.min_scale &&
           sim_.has_pending_events() && sim_.next_event_time() <= deadline) {
      sim_.step();
    }
  }
}

PaperTestbed::RunResult PaperTestbed::run_workflows(
    const std::vector<pegasus::AbstractWorkflow>& workflows,
    const std::map<std::string, pegasus::JobMode>& modes, int cluster_size) {
  RunResult result;
  // Completion counters live on the heap: if the drive loop exits on the
  // run deadline with DAGs still outstanding, their on_finish callbacks
  // may fire during a later drive loop, long after this frame is gone.
  auto tally = std::make_shared<std::pair<int, int>>(0, 0);  // finished, ok
  const std::size_t first_dag = live_dags_.size();

  for (const auto& wf : workflows) {
    workload::seed_initial_inputs(wf, condor_->submit_staging(), replicas_);

    pegasus::PlannerOptions popts;
    popts.default_mode = pegasus::JobMode::kNative;
    popts.cluster_size = cluster_size;
    popts.dag_retries = options_.dag_retries;
    popts.registry = registry_.get();
    popts.docker = docker_.get();
    popts.serverless_factory = integration_->wrapper_factory();
    popts.catalog = catalog_client_.get();
    for (const auto& job : wf.jobs()) {
      auto it = modes.find(job.id);
      if (it != modes.end()) {
        popts.mode_overrides[job.id] = it->second;
        ++result.mode_counts[it->second];
      } else {
        ++result.mode_counts[pegasus::JobMode::kNative];
      }
    }

    pegasus::Planner planner(wf, catalog_, replicas_, *condor_, popts);
    condor::DagConfig dag_config;
    dag_config.scan_interval_s = options_.calibration.dag_scan_interval_s;
    dag_config.post_script_s = options_.calibration.dag_post_script_s;
    auto dag = std::make_unique<condor::DagMan>(*condor_, dag_config);
    planner.plan().load_into(*dag);
    live_dags_.push_back(std::move(dag));
  }

  // Start all workflows at the same instant (Figure 4's concurrent set).
  const int n_dags = static_cast<int>(live_dags_.size() - first_dag);
  for (std::size_t i = first_dag; i < live_dags_.size(); ++i) {
    live_dags_[i]->run([tally](bool ok) {
      ++tally->first;
      tally->second += ok ? 1 : 0;
    });
  }
  // Drive until every DAG reports in (autoscaler/claim timers may keep
  // the queue non-empty long after) — or, when a deadline is configured,
  // until the workload has provably hung.
  const double start = sim_.now();
  const double wall = options_.run_deadline_s > 0
                          ? start + options_.run_deadline_s
                          : std::numeric_limits<double>::infinity();
  while (tally->first < n_dags && sim_.has_pending_events() &&
         sim_.now() < wall) {
    sim_.step();
  }
  if (quiesce_probe_) quiesce_probe_();

  result.finished = tally->first;
  result.deadline_hit = tally->first < n_dags;
  result.all_succeeded =
      tally->first == n_dags && tally->second == tally->first;
  for (std::size_t i = first_dag; i < live_dags_.size(); ++i) {
    result.makespans.push_back(live_dags_[i]->makespan());
    result.slowest = std::max(result.slowest, live_dags_[i]->makespan());
  }
  return result;
}

PaperTestbed::RunResult PaperTestbed::run_concurrent_mix(
    int n_workflows, int tasks_per_workflow, const metrics::MixPoint& mix) {
  const std::string prefix = "run" + std::to_string(run_counter_++);
  std::vector<pegasus::AbstractWorkflow> workflows;
  workflows.reserve(n_workflows);
  for (int w = 0; w < n_workflows; ++w) {
    workflows.push_back(workload::make_matmul_chain(
        prefix + ".wf" + std::to_string(w), tasks_per_workflow,
        options_.calibration.matrix_bytes));
  }
  std::vector<const pegasus::AbstractWorkflow*> ptrs;
  for (const auto& wf : workflows) ptrs.push_back(&wf);
  const auto modes = workload::assign_modes(ptrs, mix, sim_.rng());
  return run_workflows(workflows, modes);
}

}  // namespace sf::core
