#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "core/calibration.hpp"
#include "core/integration.hpp"
#include "knative/eventing.hpp"
#include "pegasus/abstract_workflow.hpp"
#include "pegasus/catalogs.hpp"

namespace sf::core {

/// Fully event-driven ("dynamic") workflow execution — the end state the
/// paper's title points at, built on Knative Serving + Eventing.
///
/// Instead of DAGMan polling and condor matchmaking, the workflow is
/// orchestrated by functions: every task runs as a serverless invocation
/// that, on completion, publishes a `task.done` CloudEvent to the broker;
/// a trigger routes those events to an orchestrator function, which
/// releases the newly-ready children immediately. The per-hop latency is
/// therefore one event round-trip instead of the WMS's scan + matchmaking
/// stack — `bench/ablate_event_driven` quantifies the difference against
/// the Pegasus/HTCondor path on the same workflow.
///
/// Scope note (honest accounting): this path passes all data by value
/// through events and skips the submit-node staging a WMS provides, so it
/// measures orchestration latency, not a full feature-parity alternative.
class EventDrivenRunner {
 public:
  EventDrivenRunner(knative::KnativeServing& serving,
                    knative::Broker& broker, CalibrationProfile calibration);

  EventDrivenRunner(const EventDrivenRunner&) = delete;
  EventDrivenRunner& operator=(const EventDrivenRunner&) = delete;

  /// Deploys the task-executor and orchestrator functions and wires the
  /// broker trigger. Call once, before run().
  void setup(const ProvisioningPolicy& policy);

  /// Executes the workflow. `on_done(success, makespan_s)` fires when the
  /// last task completes (or a task ultimately fails).
  void run(const pegasus::AbstractWorkflow& workflow,
           const pegasus::TransformationCatalog& transformations,
           std::function<void(bool success, double makespan_s)> on_done);

  [[nodiscard]] bool is_set_up() const { return set_up_; }
  [[nodiscard]] std::uint64_t tasks_executed() const {
    return tasks_executed_;
  }

  /// Service names used by the runner (for tests / introspection).
  static constexpr const char* kTaskService = "edr-task";
  static constexpr const char* kOrchestratorService = "edr-orchestrator";

 private:
  struct TaskState {
    std::size_t unfinished_parents = 0;
    bool launched = false;
    bool done = false;
  };
  struct RunState {
    const pegasus::AbstractWorkflow* workflow = nullptr;
    const pegasus::TransformationCatalog* transformations = nullptr;
    std::map<std::string, TaskState> tasks;
    std::size_t remaining = 0;
    double started_at = 0;
    bool failed = false;
    std::function<void(bool, double)> on_done;
  };

  void launch_task(const std::string& job_id, net::NodeId from);
  void on_task_done(const std::string& job_id, bool ok,
                    net::NodeId orchestrator_node);
  void finish_if_complete();

  knative::KnativeServing& serving_;
  knative::Broker& broker_;
  CalibrationProfile calibration_;
  bool set_up_ = false;
  RunState run_;
  std::uint64_t tasks_executed_ = 0;
};

}  // namespace sf::core
