#include "core/event_driven.hpp"

#include <utility>

#include "container/image.hpp"

namespace sf::core {

namespace {

/// Invocation payload of the task-executor function.
struct EdrTask {
  std::string job_id;
  double work = 0;
  double input_bytes = 0;
  double output_bytes = 0;
};

constexpr const char* kDoneEvent = "dev.serverflow.task.done";

}  // namespace

EventDrivenRunner::EventDrivenRunner(knative::KnativeServing& serving,
                                     knative::Broker& broker,
                                     CalibrationProfile calibration)
    : serving_(serving), broker_(broker), calibration_(calibration) {}

void EventDrivenRunner::setup(const ProvisioningPolicy& policy) {
  if (set_up_) return;
  auto& registry = serving_.kube().registry();
  registry.push(container::make_task_image(kTaskService));
  registry.push(container::make_task_image(kOrchestratorService));
  serving_.kube().seed_image_everywhere(
      container::make_task_image(kTaskService));
  serving_.kube().seed_image_everywhere(
      container::make_task_image(kOrchestratorService));

  // --- Task executor: compute, publish task.done, respond. -----------
  knative::KnServiceSpec task_spec;
  task_spec.name = kTaskService;
  task_spec.container.name = kTaskService;
  task_spec.container.image = std::string(kTaskService) + ":latest";
  task_spec.container.cpu_limit = 1.0;
  task_spec.container.cpu_shares = 8.0;
  task_spec.container.memory_bytes = calibration_.task_memory_bytes;
  task_spec.container.boot_s = calibration_.flask_boot_s;
  task_spec.annotations.min_scale = policy.min_scale;
  task_spec.annotations.initial_scale = policy.initial_scale;
  task_spec.annotations.max_scale = policy.max_scale;
  task_spec.annotations.container_concurrency =
      policy.container_concurrency;
  task_spec.annotations.target_concurrency = policy.target_concurrency;
  task_spec.handler = [this](const net::HttpRequest& req,
                             knative::FunctionContext& ctx,
                             net::Responder respond) {
    const auto task = std::any_cast<EdrTask>(req.body);
    const double codec =
        calibration_.payload_codec_s_per_mb *
        (task.input_bytes + task.output_bytes) / 1e6;
    // Capture the node id by value: the completion may fire during an
    // abrupt pod teardown, after the proxy owning `ctx` started retiring.
    ctx.exec(task.work + codec, [this, task, node = ctx.node,
                                 respond = std::move(respond)](bool ok) mutable {
      // Publish completion before acknowledging, so orchestration
      // latency is part of the event path, not the response path.
      knative::CloudEvent event;
      event.type = kDoneEvent;
      event.source = std::string("serverflow/") + kTaskService;
      event.extensions["job"] = task.job_id;
      event.extensions["ok"] = ok ? "1" : "0";
      event.data_bytes = 256;
      broker_.publish(node, std::move(event), {});
      net::HttpResponse resp;
      resp.status = ok ? 200 : 500;
      resp.body_bytes = task.output_bytes;
      respond(std::move(resp));
    });
  };
  serving_.create_service(std::move(task_spec));

  // --- Orchestrator: consume task.done, release ready children. ------
  knative::KnServiceSpec orch_spec;
  orch_spec.name = kOrchestratorService;
  orch_spec.container.name = kOrchestratorService;
  orch_spec.container.image = std::string(kOrchestratorService) + ":latest";
  orch_spec.container.cpu_limit = 1.0;
  orch_spec.container.memory_bytes = 256e6;
  orch_spec.container.boot_s = calibration_.flask_boot_s;
  orch_spec.annotations.min_scale = 1;
  orch_spec.handler = [this](const net::HttpRequest& req,
                             knative::FunctionContext& ctx,
                             net::Responder respond) {
    const knative::CloudEvent& event = knative::event_from_request(req);
    const std::string job_id = event.extensions.at("job");
    const bool ok = event.extensions.at("ok") == "1";
    // Bookkeeping is a negligible-compute control action.
    ctx.exec(0.002, [this, job_id, ok, node = ctx.node,
                     respond = std::move(respond)](bool ran) mutable {
      net::HttpResponse resp;
      resp.status = ran ? 200 : 500;
      respond(std::move(resp));
      if (ran) on_task_done(job_id, ok, node);
    });
  };
  serving_.create_service(std::move(orch_spec));

  broker_.add_trigger("edr-orchestration", kDoneEvent,
                      kOrchestratorService);
  set_up_ = true;
}

void EventDrivenRunner::run(
    const pegasus::AbstractWorkflow& workflow,
    const pegasus::TransformationCatalog& transformations,
    std::function<void(bool, double)> on_done) {
  if (!set_up_) {
    throw std::logic_error("EventDrivenRunner: call setup() first");
  }
  if (run_.remaining > 0) {
    throw std::logic_error("EventDrivenRunner: a run is already active");
  }
  run_ = RunState{};
  run_.workflow = &workflow;
  run_.transformations = &transformations;
  run_.on_done = std::move(on_done);
  run_.started_at = serving_.kube().cluster().sim().now();
  run_.remaining = workflow.jobs().size();

  std::vector<std::string> roots;
  for (const auto& job : workflow.jobs()) {
    TaskState state;
    state.unfinished_parents = workflow.parents_of(job.id).size();
    if (state.unfinished_parents == 0) roots.push_back(job.id);
    run_.tasks.emplace(job.id, state);
  }
  const net::NodeId submit = broker_.ingress_net_id();
  for (const auto& root : roots) launch_task(root, submit);
}

void EventDrivenRunner::launch_task(const std::string& job_id,
                                    net::NodeId from) {
  TaskState& state = run_.tasks.at(job_id);
  if (state.launched) return;
  state.launched = true;

  const pegasus::AbstractJob& job = run_.workflow->job(job_id);
  const pegasus::Transformation& t =
      run_.transformations->get(job.transformation);
  EdrTask task;
  task.job_id = job_id;
  task.work = t.work_coreseconds;
  for (const auto& lfn : job.inputs()) {
    task.input_bytes += run_.workflow->file_bytes(lfn);
  }
  for (const auto& lfn : job.outputs()) {
    task.output_bytes += run_.workflow->file_bytes(lfn);
  }
  net::HttpRequest req;
  req.body_bytes = task.input_bytes + 256;
  req.body = std::move(task);
  ++tasks_executed_;
  // Fire and rely on the task.done event for progress; a failed HTTP
  // response (e.g. service gone) must still unblock the run.
  serving_.invoke(from, kTaskService, std::move(req),
                  [this, job_id](net::HttpResponse resp) {
                    if (!resp.ok()) {
                      on_task_done(job_id, false,
                                   broker_.ingress_net_id());
                    }
                  });
}

void EventDrivenRunner::on_task_done(const std::string& job_id, bool ok,
                                     net::NodeId orchestrator_node) {
  auto it = run_.tasks.find(job_id);
  if (it == run_.tasks.end() || it->second.done) return;
  it->second.done = true;
  --run_.remaining;
  if (!ok) run_.failed = true;

  if (ok) {
    // Release children whose parents are all complete.
    for (const auto& job : run_.workflow->jobs()) {
      const auto parents = run_.workflow->parents_of(job.id);
      bool is_child = false;
      for (const auto& parent : parents) {
        if (parent == job_id) {
          is_child = true;
          break;
        }
      }
      if (!is_child) continue;
      TaskState& child = run_.tasks.at(job.id);
      if (--child.unfinished_parents == 0 && !run_.failed) {
        launch_task(job.id, orchestrator_node);
      }
    }
  }
  finish_if_complete();
}

void EventDrivenRunner::finish_if_complete() {
  const bool all_done = run_.remaining == 0;
  const bool stuck = run_.failed;
  if (!all_done && !stuck) return;
  if (!run_.on_done) return;
  auto cb = std::move(run_.on_done);
  run_.on_done = nullptr;
  const double makespan =
      serving_.kube().cluster().sim().now() - run_.started_at;
  run_.remaining = 0;
  cb(all_done && !run_.failed, makespan);
}

}  // namespace sf::core
