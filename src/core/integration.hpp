#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/calibration.hpp"
#include "knative/serving.hpp"
#include "pegasus/planner.hpp"
#include "storage/object_store.hpp"
#include "storage/shared_fs.hpp"

namespace sf::core {

/// How task data reaches the serverless function (Section V-E): the
/// paper's default embeds file bytes in the invocation request/response
/// ("similar to pass by value"); the alternatives it names — a shared
/// filesystem or a Minio-like object store — are implemented for the
/// data-movement ablation.
enum class DataStrategy { kPassByValue, kSharedFs, kObjectStore };

const char* to_string(DataStrategy strategy);

/// What the wrapper POSTs to a function (typed in-memory body; the wire
/// cost is carried separately in HttpRequest::body_bytes).
struct TaskPayload {
  double work_coreseconds = 0;
  double output_bytes = 0;
  /// File references, used by the shared-fs / object-store strategies to
  /// fetch inputs and produce outputs.
  std::vector<storage::FileRef> inputs;
  std::vector<storage::FileRef> outputs;
};

/// Container pre-provisioning knobs — the paper's §IV-2 annotations.
struct ProvisioningPolicy {
  /// `autoscaling.knative.dev/min-scale`: workers that download the
  /// container and keep a pod warm ahead of time.
  int min_scale = 1;
  /// `autoscaling.knative.dev/initial-scale`: 0 defers the container
  /// download until a task is invoked; -1 = Knative default.
  int initial_scale = -1;
  int max_scale = 0;
  /// 1 = the paper's "one request per container at a time" isolation
  /// point; 0 = unlimited co-location.
  int container_concurrency = 0;
  double target_concurrency = 1.0;
  /// Per-request deadline enforced by each pod's queue-proxy (Knative's
  /// revision `timeoutSeconds`); 0 = none. Expired requests 504 and the
  /// router re-routes them — the recovery path for requests stuck behind
  /// a crashed or partitioned pod.
  double request_timeout_s = 0;
  /// Router-side per-attempt deadline (catches reply-path loss the
  /// queue-proxy deadline can't see); 0 = off.
  double route_timeout_s = 0;
  /// Passive outlier ejection over the function's backends (off by
  /// default — zero behavior change when disabled).
  knative::OutlierConfig outlier;
  /// Router token-bucket admission control (off by default).
  knative::AdmissionConfig admission;

  /// Pre-staged (paper Fig. 1/6 warm configuration).
  static ProvisioningPolicy prestaged(int replicas) {
    ProvisioningPolicy p;
    p.min_scale = replicas;
    p.initial_scale = replicas;
    return p;
  }
  /// Deferred download: nothing happens until the first invocation.
  static ProvisioningPolicy deferred() {
    ProvisioningPolicy p;
    p.min_scale = 0;
    p.initial_scale = 0;
    return p;
  }
};

/// The paper's contribution: the glue between Pegasus and Knative.
///
///  * `register_transformation` containerizes a transformation (Flask
///    HTTP event listener wrapping the task), pushes the image, and
///    creates the Knative service *before* workflow execution —
///    §IV-1/§IV-2.
///  * `wrapper_factory` produces the condor executables that replace
///    containerized jobs in the executable workflow: they read the staged
///    inputs, synchronously invoke the pre-registered function through
///    the gateway (inputs passed by value in the request), and write the
///    returned outputs for stage-out — §IV-3/§IV-4, including the
///    redundant submit → wrapper-node → function-node data movement the
///    paper calls out.
class ServerlessIntegration {
 public:
  ServerlessIntegration(knative::KnativeServing& serving,
                        container::Registry& registry,
                        CalibrationProfile calibration,
                        DataStrategy strategy = DataStrategy::kPassByValue,
                        storage::SharedFileSystem* shared_fs = nullptr,
                        storage::ObjectStore* object_store = nullptr);

  ServerlessIntegration(const ServerlessIntegration&) = delete;
  ServerlessIntegration& operator=(const ServerlessIntegration&) = delete;

  /// Containerizes and registers a transformation with Knative. Idempotent
  /// per transformation name.
  void register_transformation(const pegasus::Transformation& t,
                               const ProvisioningPolicy& policy);

  /// §IX-B future work, implemented: automated integration. Scans a
  /// workflow, registers every transformation it uses (idempotently) and
  /// returns the mode map that sends all of its tasks through the
  /// serverless path — no manual per-function registration or workflow
  /// rewriting required.
  std::map<std::string, pegasus::JobMode> auto_register(
      const pegasus::AbstractWorkflow& workflow,
      const pegasus::TransformationCatalog& catalog,
      const ProvisioningPolicy& policy);

  [[nodiscard]] bool is_registered(const std::string& transformation) const {
    return services_.contains(transformation);
  }
  [[nodiscard]] std::string service_name(
      const std::string& transformation) const;

  /// The factory handed to the Pegasus planner for serverless-mode jobs.
  [[nodiscard]] pegasus::ServerlessWrapperFactory wrapper_factory();

  [[nodiscard]] DataStrategy strategy() const { return strategy_; }
  [[nodiscard]] std::uint64_t invocations() const { return invocations_; }
  [[nodiscard]] std::uint64_t failures() const { return failures_; }

 private:
  [[nodiscard]] knative::FunctionHandler make_handler();

  knative::KnativeServing& serving_;
  container::Registry& registry_;
  CalibrationProfile calibration_;
  DataStrategy strategy_;
  storage::SharedFileSystem* shared_fs_;
  storage::ObjectStore* object_store_;
  std::map<std::string, std::string> services_;  // transformation → service
  std::uint64_t invocations_ = 0;
  std::uint64_t failures_ = 0;
};

}  // namespace sf::core
