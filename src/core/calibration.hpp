#pragma once

#include "condor/types.hpp"
#include "container/runtime.hpp"
#include "pegasus/catalogs.hpp"

namespace sf::core {

/// Every timing constant of the reproduction, in one place, each tied to
/// the paper anchor it is fitted against. The defaults are the calibrated
/// values used by the figure benches; tests construct variants freely.
///
/// Paper anchors (Section III + V + VI):
///  * Fig. 1: Knative cold start 1.48 s; at 160 sequential tasks Docker
///    ≈ 100 s vs Knative ≈ 78 s; per-task compute similar in both.
///  * Fig. 2: regression slopes native 0.28, Knative 0.30,
///    condor-container 0.96 s/task.
///  * Fig. 6: all-native average makespan ≈ 250 s for 10 concurrent
///    10-task workflows; all-Knative = 1.08 × native; all-container
///    slowest.
struct CalibrationProfile {
  // ---- Task (350×350 int matmul in Python/NumPy, incl. file I/O) ------
  /// Warm per-invocation cost. Fig. 1's Knative slope is
  /// matmul_work_s + HTTP overhead ≈ 0.455 s/task (paper ≈ 78/160 minus
  /// cold start).
  double matmul_work_s = 0.45;
  /// Interpreter + import cost paid by every fresh process: each Docker
  /// task and each containerized Pegasus task, but *not* warm Knative
  /// requests. Docker slope = work + startup + docker lifecycle
  /// = 0.45 + 0.065 + 0.11 ≈ 0.625 (paper: 100 s / 160 tasks).
  double python_startup_s = 0.065;
  /// Flask + NumPy app boot inside a Knative pod. Chosen so that
  /// scale-from-zero with a pre-staged image lands on the paper's 1.48 s
  /// cold start (boot + pod create/start + control-plane latencies).
  double flask_boot_s = 1.25;
  /// 350 × 350 × 4 B matrices.
  double matrix_bytes = 490000;
  double task_memory_bytes = 512e6;
  /// CPU cost of (de)serializing pass-by-value payloads inside the
  /// function (JSON over HTTP in Python). Only the integrated workflow
  /// path pays it — Fig. 1's motivation experiment kept data on the node
  /// and sent empty triggers. This is what lifts the all-Knative Fig. 6
  /// bar to ≈1.08× native and the Fig. 2 Knative slope to ≈0.30.
  double payload_codec_s_per_mb = 1.0;

  // ---- Docker CLI engine (the Fig. 1 baseline) ------------------------
  /// `docker run --rm` lifecycle: create+start+stop+rm ≈ 0.11 s.
  container::RuntimeOverheads docker_engine{0.035, 0.025, 0.02, 0.03};

  // ---- Kubernetes pod engine (Knative data plane) ---------------------
  /// containerd via kubelet: heavier create/start than raw docker CLI.
  container::RuntimeOverheads kube_engine{0.10, 0.06, 0.05, 0.06};

  // ---- HTCondor pool ---------------------------------------------------
  /// The decomposition that satisfies Fig. 2 and Fig. 6 simultaneously:
  ///  * slot occupancy per job = setup (5.9 s: shadow + starter +
  ///    pegasus-lite wrapper) + work ≈ 6.4 s → Fig. 2's parallel slope =
  ///    max(dispatch 0.27, slot / 24 workers ≈ 0.267) ≈ 0.28 s/task;
  ///  * sequential hop = POST script (12.4 s, runs per node, concurrent
  ///    across workflows) + DAGMan scan (1 s grid) + dispatch + slot
  ///    ≈ 21 s → 12 DAG nodes ≈ 250 s (Fig. 6's native bar).
  /// Claims are long-lived (600 s idle timeout), so matchmaking happens
  /// once per burst — negotiation contributes intercept, not slope.
  condor::CondorConfig condor{15.0, 0.27, 5.9, 600.0, 0};

  /// DAGMan log-scan period: sequential hops quantize to this.
  double dag_scan_interval_s = 1.0;
  /// pegasus-exitcode POST script per node (see condor comment above).
  double dag_post_script_s = 12.4;

  // ---- Documented paper targets (for EXPERIMENTS.md comparisons) ------
  double paper_cold_start_s = 1.48;
  double paper_docker_160_s = 100.0;
  double paper_knative_160_s = 78.0;
  double paper_native_slope = 0.28;
  double paper_knative_slope = 0.30;
  double paper_container_slope = 0.96;
  double paper_native_makespan_s = 250.0;
  double paper_knative_over_native = 1.08;

  /// The "matmul" transformation entry implied by this profile.
  [[nodiscard]] pegasus::Transformation matmul_transformation() const {
    pegasus::Transformation t;
    t.name = "matmul";
    t.work_coreseconds = matmul_work_s;
    t.startup_s = python_startup_s;
    t.memory_bytes = task_memory_bytes;
    t.container_image = "matmul:latest";
    return t;
  }
};

}  // namespace sf::core
