#include "core/redirect.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

namespace sf::core {

namespace {

/// Minimal native path: read staged inputs, burn the work single-threaded,
/// write the outputs — what pegasus-lite does without a container.
void run_native(condor::ExecContext& ctx,
                const std::vector<storage::FileRef>& inputs,
                const std::vector<storage::FileRef>& outputs, double work,
                std::function<void(bool)> done) {
  // Both chains hold only weak self-references — pending disk/process
  // continuations carry the strong refs — so the functions free
  // themselves when the last step fires instead of leaking as
  // shared_ptr cycles. read_next → write_next is one-directional and
  // may stay strong.
  auto write_next = std::make_shared<std::function<void(std::size_t)>>();
  auto done_ptr =
      std::make_shared<std::function<void(bool)>>(std::move(done));
  auto read_next = std::make_shared<std::function<void(std::size_t)>>();
  *write_next = [&ctx, outputs, done_ptr,
                 weak = std::weak_ptr<std::function<void(std::size_t)>>(
                     write_next)](std::size_t i) {
    if (i >= outputs.size()) {
      (*done_ptr)(true);
      return;
    }
    const auto self = weak.lock();
    ctx.scratch->write(outputs[i], [self, i] { (*self)(i + 1); });
  };
  *read_next = [&ctx, inputs, work, write_next, done_ptr,
                weak = std::weak_ptr<std::function<void(std::size_t)>>(
                    read_next)](std::size_t i) {
    if (i >= inputs.size()) {
      ctx.node->run_process(work, [write_next] { (*write_next)(0); },
                            /*max_cores=*/1.0);
      return;
    }
    const auto self = weak.lock();
    ctx.scratch->read(inputs[i].lfn, [self, done_ptr, i](
                                         bool found, storage::FileRef) {
      if (!found) {
        (*done_ptr)(false);
        return;
      }
      (*self)(i + 1);
    });
  };
  (*read_next)(0);
}

}  // namespace

TaskRedirector::TaskRedirector(ServerlessIntegration& integration,
                               double utilization_threshold)
    : integration_(integration), threshold_(utilization_threshold) {
  if (utilization_threshold <= 0 || utilization_threshold > 1) {
    throw std::invalid_argument(
        "TaskRedirector: threshold must be in (0, 1]");
  }
}

pegasus::ServerlessWrapperFactory TaskRedirector::adaptive_factory() {
  auto serverless_factory = integration_.wrapper_factory();
  return [this, serverless_factory](
             const pegasus::AbstractJob& job,
             const pegasus::Transformation& t,
             std::vector<storage::FileRef> inputs,
             std::vector<storage::FileRef> outputs)
             -> condor::JobExecutable {
    condor::JobExecutable serverless =
        serverless_factory(job, t, inputs, outputs);
    const double work = t.startup_s + t.work_coreseconds;
    return [this, serverless = std::move(serverless), inputs, outputs,
            work](condor::ExecContext& ctx,
                  std::function<void(bool)> done) {
      const double busy_fraction =
          ctx.node->cpu_utilization() / ctx.node->spec().cores;
      if (busy_fraction > threshold_) {
        ++redirected_;
        ctx.sim->trace().record(ctx.sim->now(), "redirect", "to_serverless",
                                {{"node", ctx.node->name()}});
        serverless(ctx, std::move(done));
      } else {
        ++ran_native_;
        run_native(ctx, inputs, outputs, work, std::move(done));
      }
    };
  };
}

}  // namespace sf::core
