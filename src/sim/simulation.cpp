#include "sim/simulation.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace sf::sim {

EventId Simulation::call_at(SimTime t, Callback fn) {
  if (t < now_ - kEpsilon) {
    throw std::invalid_argument("Simulation::call_at: time in the past");
  }
  return queue_.schedule(t < now_ ? now_ : t, std::move(fn));
}

EventId Simulation::call_in(SimTime delay, Callback fn) {
  if (delay < 0) {
    throw std::invalid_argument("Simulation::call_in: negative delay");
  }
  return queue_.schedule(now_ + delay, std::move(fn));
}

bool Simulation::step() {
  if (queue_.next_time() == kTimeInfinity) return false;
  auto fired = queue_.pop();
  assert(fired.time >= now_ - kEpsilon);
  now_ = fired.time > now_ ? fired.time : now_;
  ++processed_;
  fired.fn();
  return true;
}

std::size_t Simulation::run() {
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_ && step()) ++n;
  return n;
}

std::size_t Simulation::run_until(SimTime t) {
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_ && queue_.next_time() <= t && step()) ++n;
  if (!stopped_ && now_ < t) now_ = t;
  return n;
}

}  // namespace sf::sim
