#pragma once

#include <cassert>
#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace sf::sim {

/// Move-only `void()` callable with small-buffer optimisation.
///
/// The engine schedules millions of callbacks per run; almost all of them
/// capture a couple of pointers and an id. `std::function` heap-allocates
/// once the capture exceeds its (implementation-defined, often 16-byte)
/// inline buffer, which puts an allocator round-trip on the hottest path of
/// the simulator. InlineFunction stores any nothrow-movable callable of up
/// to kInlineSize bytes directly inside the object and only falls back to
/// the heap for oversized or throwing-move captures.
///
/// Unlike `std::function` it is move-only, so captured state (other
/// InlineFunctions, unique_ptrs) never needs to be copyable.
class InlineFunction {
 public:
  /// Inline capture budget: five pointers — enough for `this` + a handful
  /// of ids/doubles (and for a whole std::function, so wrapping one stays
  /// allocation-free), the common shape of every callback in the engine.
  /// 40 bytes keeps sizeof(InlineFunction) at exactly one cache line.
  static constexpr std::size_t kInlineSize = 40;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  InlineFunction() noexcept = default;
  InlineFunction(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                        !std::is_same_v<D, std::nullptr_t> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineFunction(F&& f) {  // NOLINT(runtime/explicit)
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      invoke_ = &inline_invoke<D>;
      // Trivially copyable, trivially destructible targets (the norm for
      // engine callbacks: `this` + a couple of ids) need no manager —
      // moves become a memcpy and destruction a no-op.
      if constexpr (!(std::is_trivially_copyable_v<D> &&
                      std::is_trivially_destructible_v<D>)) {
        manage_ = &inline_manage<D>;
      }
      inline_ = true;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      invoke_ = &heap_invoke<D>;
      manage_ = &heap_manage<D>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  void operator()() {
    assert(invoke_ && "InlineFunction: calling an empty callback");
    invoke_(buf_);
  }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  /// True when the target lives in the inline buffer (no heap allocation).
  [[nodiscard]] bool is_inline() const noexcept {
    return invoke_ != nullptr && inline_;
  }

 private:
  enum class Op { kMoveTo, kDestroy };

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineSize && alignof(D) <= kInlineAlign &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static void inline_invoke(void* buf) {
    (*std::launder(reinterpret_cast<D*>(buf)))();
  }

  template <typename D>
  static void inline_manage(Op op, void* self, void* other) noexcept {
    D* f = std::launder(reinterpret_cast<D*>(self));
    if (op == Op::kMoveTo) ::new (other) D(std::move(*f));
    f->~D();
  }

  template <typename D>
  static void heap_invoke(void* buf) {
    (**std::launder(reinterpret_cast<D**>(buf)))();
  }

  template <typename D>
  static void heap_manage(Op op, void* self, void* other) noexcept {
    D** slot = std::launder(reinterpret_cast<D**>(self));
    if (op == Op::kMoveTo) {
      ::new (other) D*(*slot);
    } else {
      delete *slot;
    }
  }

  void move_from(InlineFunction& other) noexcept {
    if (!other.invoke_) return;
    if (other.manage_ != nullptr) {
      other.manage_(Op::kMoveTo, other.buf_, buf_);
    } else {
      std::memcpy(buf_, other.buf_, kInlineSize);
    }
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    inline_ = other.inline_;
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  void reset() noexcept {
    if (manage_ != nullptr) {
      manage_(Op::kDestroy, buf_, nullptr);
      manage_ = nullptr;
    }
    invoke_ = nullptr;
  }

  alignas(kInlineAlign) unsigned char buf_[kInlineSize];
  void (*invoke_)(void*) = nullptr;
  void (*manage_)(Op, void*, void*) noexcept = nullptr;
  bool inline_ = false;  // rides in the tail padding: sizeof stays 64
};

static_assert(sizeof(InlineFunction) == 64,
              "InlineFunction should occupy exactly one cache line");

}  // namespace sf::sim
