#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace sf::sim {

/// Interned object-name handle: a dense uint32 standing in for a string
/// ("pod-fn-matmul-00001-3", "node-17", "knative") everywhere object names
/// used to be copied — watch events, trace records, store keys, endpoint
/// references. Comparing, hashing and copying an ObjectId is one word;
/// the side table recovers the spelling on the (cold) output path.
using ObjectId = std::uint32_t;

/// Id of the empty string — every Interner hands it out for "" and it is
/// the natural "no object" sentinel.
inline constexpr ObjectId kEmptyId = 0;

/// Append-only string intern table: name -> dense id, id -> name.
///
/// Determinism contract: ids are assigned in first-intern order, so the
/// same sequence of intern() calls yields the same ids forever. One
/// Interner belongs to ONE Simulation (it lives next to the RNG and the
/// trace recorder) — sweep points each own their simulation, so parallel
/// SweepRunner execution shares no intern state across threads and the
/// 1-vs-N-thread bit-identity contract holds without any locking. Ids
/// never leak into output: everything printed goes back through name(),
/// which is also why two runs that intern in different orders still
/// produce identical text.
///
/// Storage: spellings live in a deque (stable addresses — a string_view
/// returned by name() stays valid for the interner's lifetime), and the
/// lookup index keys string_views into that same storage, so each
/// distinct name is stored exactly once.
class Interner {
 public:
  Interner() {
    names_.emplace_back();  // id 0 = ""
    index_.emplace(std::string_view{names_.front()}, kEmptyId);
  }

  Interner(const Interner&) = delete;
  Interner& operator=(const Interner&) = delete;

  /// Id for `s`, assigning the next dense id on first sight.
  ObjectId intern(std::string_view s) {
    const auto it = index_.find(s);
    if (it != index_.end()) return it->second;
    const auto id = static_cast<ObjectId>(names_.size());
    names_.emplace_back(s);
    index_.emplace(std::string_view{names_.back()}, id);
    return id;
  }

  /// Round-trip: the spelling interned as `id`. The view stays valid for
  /// the interner's lifetime.
  [[nodiscard]] std::string_view name(ObjectId id) const {
    return names_[id];
  }

  /// Id of `s` if already interned, kEmptyId otherwise (kEmptyId is also
  /// the legitimate id of "" — use contains() when that matters).
  [[nodiscard]] ObjectId lookup(std::string_view s) const {
    const auto it = index_.find(s);
    return it == index_.end() ? kEmptyId : it->second;
  }

  [[nodiscard]] bool contains(std::string_view s) const {
    return index_.find(s) != index_.end();
  }

  /// Distinct names interned, including the built-in "".
  [[nodiscard]] std::size_t size() const { return names_.size(); }

 private:
  std::deque<std::string> names_;                    // id -> spelling
  std::unordered_map<std::string_view, ObjectId> index_;  // spelling -> id
};

}  // namespace sf::sim
