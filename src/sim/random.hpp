#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <random>
#include <vector>

namespace sf::sim {

/// Deterministic random source. All stochastic choices in a simulation draw
/// from one Rng owned by the Simulation, so a (seed, scenario) pair fully
/// determines every result.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) : engine_(seed) {}

  void reseed(std::uint64_t seed) { engine_.seed(seed); }

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) {
    assert(lo <= hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Exponential with the given mean (not rate).
  double exponential(double mean) {
    assert(mean > 0);
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Normal, truncated below at zero (durations must be non-negative).
  double normal_nonneg(double mean, double stddev) {
    const double v = std::normal_distribution<double>(mean, stddev)(engine_);
    return v < 0 ? 0 : v;
  }

  /// Bernoulli trial.
  bool chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Uniformly chosen index in [0, n).
  std::size_t index(std::size_t n) {
    assert(n > 0);
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[index(v.size())];
  }

  template <typename It>
  void shuffle(It first, It last) {
    std::shuffle(first, last, engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace sf::sim
