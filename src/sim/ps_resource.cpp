#include "sim/ps_resource.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>
#include <vector>

namespace sf::sim {

namespace {
constexpr double kDoneSlack = 1e-9;
// Jobs whose remaining time-to-finish is below this are complete: a
// smaller delay is not representable once the clock is large, and waiting
// for it would spin the event loop at a frozen timestamp.
constexpr double kTimeSlack = 1e-9;

bool job_done(double remaining, double rate) {
  return remaining <= kDoneSlack ||
         (rate > 0 && remaining <= rate * kTimeSlack);
}
}

PsResource::PsResource(Simulation& sim, double capacity, std::string name)
    : sim_(sim), capacity_(capacity), name_(std::move(name)) {
  if (capacity < 0) {
    throw std::invalid_argument("PsResource: negative capacity");
  }
  last_advance_ = sim_.now();
}

PsResource::JobId PsResource::submit(double work, Callback on_complete,
                                     double rate_cap, double weight) {
  if (rate_cap < 0) {
    throw std::invalid_argument("PsResource::submit: negative rate cap");
  }
  if (weight <= 0) {
    throw std::invalid_argument("PsResource::submit: non-positive weight");
  }
  advance();
  const JobId id = next_id_++;
  Job job;
  job.remaining = std::max(work, 0.0);
  job.weight = weight;
  job.cap = rate_cap;
  job.on_complete = std::move(on_complete);
  jobs_.emplace(id, std::move(job));
  rebalance();
  return id;
}

bool PsResource::cancel(JobId id) {
  advance();
  const bool erased = jobs_.erase(id) > 0;
  if (erased) rebalance();
  return erased;
}

bool PsResource::set_rate_cap(JobId id, double rate_cap) {
  if (rate_cap < 0) {
    throw std::invalid_argument("PsResource::set_rate_cap: negative cap");
  }
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  advance();
  it->second.cap = rate_cap;
  rebalance();
  return true;
}

void PsResource::set_capacity(double capacity) {
  if (capacity < 0) {
    throw std::invalid_argument("PsResource::set_capacity: negative");
  }
  advance();
  capacity_ = capacity;
  rebalance();
}

double PsResource::remaining(JobId id) {
  advance();
  auto it = jobs_.find(id);
  return it == jobs_.end() ? -1.0 : it->second.remaining;
}

double PsResource::current_rate(JobId id) {
  advance();
  auto it = jobs_.find(id);
  return it == jobs_.end() ? -1.0 : it->second.rate;
}

double PsResource::utilization() const {
  double total = 0;
  for (const auto& [id, job] : jobs_) total += job.rate;
  return total;
}

void PsResource::advance() {
  const SimTime now = sim_.now();
  const SimTime dt = now - last_advance_;
  if (dt <= 0) {
    last_advance_ = now;
    return;
  }
  for (auto& [id, job] : jobs_) {
    job.remaining = std::max(0.0, job.remaining - job.rate * dt);
  }
  last_advance_ = now;
}

void PsResource::rebalance() {
  if (completion_event_ != kNoEvent) {
    sim_.cancel(completion_event_);
    completion_event_ = kNoEvent;
  }
  if (jobs_.empty()) return;

  // Weighted water-filling: repeatedly grant capped jobs their cap and
  // fair-share the rest by weight.
  std::vector<std::pair<const JobId, Job>*> open;
  open.reserve(jobs_.size());
  for (auto& entry : jobs_) open.push_back(&entry);
  double cap_left = capacity_;
  while (!open.empty()) {
    double sum_w = 0;
    for (auto* e : open) sum_w += e->second.weight;
    const double lambda = cap_left / sum_w;
    bool any_capped = false;
    for (auto it = open.begin(); it != open.end();) {
      Job& job = (*it)->second;
      if (job.cap < lambda * job.weight) {
        job.rate = job.cap;
        cap_left -= job.cap;
        it = open.erase(it);
        any_capped = true;
      } else {
        ++it;
      }
    }
    if (!any_capped) {
      for (auto* e : open) e->second.rate = lambda * e->second.weight;
      break;
    }
  }

  // Schedule the earliest completion (or an immediate one for zero-work
  // jobs) as a single cancellable event.
  SimTime soonest = kTimeInfinity;
  for (const auto& [id, job] : jobs_) {
    if (job_done(job.remaining, job.rate)) {
      soonest = 0;
      break;
    }
    if (job.rate > 0) {
      soonest = std::min(soonest, job.remaining / job.rate);
    }
  }
  if (soonest < kTimeInfinity) {
    completion_event_ =
        sim_.call_in(soonest, [this] { fire_completions(); });
  }
}

void PsResource::fire_completions() {
  completion_event_ = kNoEvent;
  advance();
  std::vector<Callback> done;
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    if (job_done(it->second.remaining, it->second.rate)) {
      done.push_back(std::move(it->second.on_complete));
      it = jobs_.erase(it);
    } else {
      ++it;
    }
  }
  rebalance();
  for (auto& cb : done) {
    if (cb) cb();
  }
}

}  // namespace sf::sim
