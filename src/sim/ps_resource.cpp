#include "sim/ps_resource.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>
#include <vector>

namespace sf::sim {

namespace {
constexpr double kDoneSlack = 1e-9;
// Jobs whose remaining time-to-finish is below this are complete: a
// smaller delay is not representable once the clock is large, and waiting
// for it would spin the event loop at a frozen timestamp.
constexpr double kTimeSlack = 1e-9;

bool job_done(double remaining, double rate) {
  return remaining <= kDoneSlack ||
         (rate > 0 && remaining <= rate * kTimeSlack);
}
}

PsResource::PsResource(Simulation& sim, double capacity, std::string name)
    : sim_(sim), capacity_(capacity), name_(std::move(name)) {
  if (capacity < 0) {
    throw std::invalid_argument("PsResource: negative capacity");
  }
  last_advance_ = sim_.now();
}

PsResource::Job* PsResource::find(JobId id) {
  const auto slot = static_cast<std::uint32_t>(id & kSlotMask);
  if (slot >= slots_.size() || slots_[slot].id != id) return nullptr;
  return &slots_[slot];
}

PsResource::JobId PsResource::submit(double work, Callback on_complete,
                                     double rate_cap, double weight) {
  if (rate_cap < 0) {
    throw std::invalid_argument("PsResource::submit: negative rate cap");
  }
  if (weight <= 0) {
    throw std::invalid_argument("PsResource::submit: non-positive weight");
  }
  advance();
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    assert(slots_.size() <= kSlotMask && "PsResource: too many active jobs");
    slots_.emplace_back();
  }
  const JobId id = (++next_seq_ << kSlotBits) | slot;
  Job& job = slots_[slot];
  job.id = id;
  job.remaining = std::max(work, 0.0);
  job.weight = weight;
  job.cap = rate_cap;
  job.rate = 0;
  job.on_complete = std::move(on_complete);
  order_.push_back(slot);  // ids are monotonic: append keeps id order
  if (sum_w_valid_) sum_w_cache_ += weight;
  rates_dirty_ = true;
  rebalance();
  return id;
}

void PsResource::release_slot(std::uint32_t slot) {
  Job& job = slots_[slot];
  job.id = kNoJob;
  job.on_complete = nullptr;
  free_slots_.push_back(slot);
}

bool PsResource::cancel(JobId id) {
  Job* job = find(id);
  if (job == nullptr) return false;
  advance();
  const auto slot = static_cast<std::uint32_t>(id & kSlotMask);
  order_.erase(std::find(order_.begin(), order_.end(), slot));
  release_slot(slot);
  sum_w_valid_ = false;  // removal breaks the left-to-right prefix sum
  rates_dirty_ = true;
  rebalance();
  return true;
}

std::size_t PsResource::cancel_all() {
  const std::size_t n = order_.size();
  if (n == 0) return 0;
  advance();
  for (const std::uint32_t slot : order_) release_slot(slot);
  order_.clear();
  sum_w_valid_ = false;
  rates_dirty_ = true;
  rebalance();
  return n;
}

bool PsResource::set_rate_cap(JobId id, double rate_cap) {
  if (rate_cap < 0) {
    throw std::invalid_argument("PsResource::set_rate_cap: negative cap");
  }
  Job* job = find(id);
  if (job == nullptr) return false;
  advance();
  if (job->cap != rate_cap) {
    job->cap = rate_cap;
    rates_dirty_ = true;  // same-value updates keep the rates clean
  }
  rebalance();
  return true;
}

void PsResource::set_capacity(double capacity) {
  if (capacity < 0) {
    throw std::invalid_argument("PsResource::set_capacity: negative");
  }
  advance();
  if (capacity != capacity_) {
    capacity_ = capacity;
    rates_dirty_ = true;
  }
  rebalance();
}

double PsResource::remaining(JobId id) {
  advance();
  const Job* job = find(id);
  return job == nullptr ? -1.0 : job->remaining;
}

double PsResource::current_rate(JobId id) {
  advance();
  const Job* job = find(id);
  return job == nullptr ? -1.0 : job->rate;
}

double PsResource::utilization() const {
  double total = 0;
  for (const std::uint32_t slot : order_) total += slots_[slot].rate;
  return total;
}

void PsResource::advance() {
  const SimTime now = sim_.now();
  const SimTime dt = now - last_advance_;
  if (dt <= 0) {
    last_advance_ = now;
    return;
  }
  for (const std::uint32_t slot : order_) {
    Job& job = slots_[slot];
    job.remaining = std::max(0.0, job.remaining - job.rate * dt);
  }
  last_advance_ = now;
}

void PsResource::rebalance() {
  if (completion_event_ != kNoEvent) {
    sim_.cancel(completion_event_);
    completion_event_ = kNoEvent;
  }
  // Rates are a pure function of (job set, caps, weights, capacity); the
  // O(jobs * rounds) water-filling only reruns when one of those changed.
  // The completion timer is always re-armed so event scheduling stays
  // bit-identical with the pre-flat-table engine.
  if (rates_dirty_) {
    recompute_and_schedule();
    rates_dirty_ = false;
  } else {
    schedule_next_completion();
  }
}

void PsResource::recompute_and_schedule() {
  if (order_.empty()) return;
  if (!sum_w_valid_) {
    double sum_w = 0;
    for (const std::uint32_t slot : order_) sum_w += slots_[slot].weight;
    sum_w_cache_ = sum_w;
    sum_w_valid_ = true;
  }
  const double lambda = capacity_ / sum_w_cache_;

  // Fast path: when no per-job cap binds in the first round, the final rate
  // of every job is lambda * weight, so rate assignment and the
  // next-completion scan fuse into one pass. Arithmetic and iteration order
  // are identical to the general algorithm, so results match bit for bit;
  // rates written before a cap is discovered are all overwritten by the
  // fallback (every job is either frozen at its cap or assigned in the
  // terminal uncapped round).
  SimTime soonest = kTimeInfinity;
  bool done_now = false;
  for (const std::uint32_t slot : order_) {
    Job& job = slots_[slot];
    const double fair = lambda * job.weight;
    if (job.cap < fair) {
      recompute_rates();
      schedule_next_completion();
      return;
    }
    job.rate = fair;
    if (!done_now) {
      // Mirrors schedule_next_completion: the first finished job pins the
      // completion to "now" and later jobs stop contributing.
      if (job_done(job.remaining, job.rate)) {
        done_now = true;
      } else if (job.rate > 0) {
        soonest = std::min(soonest, job.remaining / job.rate);
      }
    }
  }
  if (done_now) soonest = 0;
  if (soonest < kTimeInfinity) {
    completion_event_ = sim_.call_in(soonest, [this] { fire_completions(); });
  }
}

void PsResource::recompute_rates() {
  if (order_.empty()) return;

  // Weighted water-filling: repeatedly grant capped jobs their cap and
  // fair-share the rest by weight. Iteration follows submission order,
  // matching the former by-id map exactly.
  open_scratch_.assign(order_.begin(), order_.end());
  double cap_left = capacity_;
  while (!open_scratch_.empty()) {
    double sum_w = 0;
    for (const std::uint32_t slot : open_scratch_) {
      sum_w += slots_[slot].weight;
    }
    const double lambda = cap_left / sum_w;
    bool any_capped = false;
    for (auto it = open_scratch_.begin(); it != open_scratch_.end();) {
      Job& job = slots_[*it];
      if (job.cap < lambda * job.weight) {
        job.rate = job.cap;
        cap_left -= job.cap;
        it = open_scratch_.erase(it);
        any_capped = true;
      } else {
        ++it;
      }
    }
    if (!any_capped) {
      for (const std::uint32_t slot : open_scratch_) {
        Job& job = slots_[slot];
        job.rate = lambda * job.weight;
      }
      break;
    }
  }
}

void PsResource::schedule_next_completion() {
  // Schedule the earliest completion (or an immediate one for zero-work
  // jobs) as a single cancellable event.
  SimTime soonest = kTimeInfinity;
  for (const std::uint32_t slot : order_) {
    const Job& job = slots_[slot];
    if (job_done(job.remaining, job.rate)) {
      soonest = 0;
      break;
    }
    if (job.rate > 0) {
      soonest = std::min(soonest, job.remaining / job.rate);
    }
  }
  if (soonest < kTimeInfinity) {
    completion_event_ = sim_.call_in(soonest, [this] { fire_completions(); });
  }
}

void PsResource::fire_completions() {
  completion_event_ = kNoEvent;
  advance();
  std::vector<Callback> done;
  std::size_t kept = 0;
  for (const std::uint32_t slot : order_) {
    Job& job = slots_[slot];
    if (job_done(job.remaining, job.rate)) {
      done.push_back(std::move(job.on_complete));
      release_slot(slot);
    } else {
      order_[kept++] = slot;
    }
  }
  order_.resize(kept);
  if (!done.empty()) {
    rates_dirty_ = true;
    sum_w_valid_ = false;
  }
  rebalance();
  for (auto& cb : done) {
    if (cb) cb();
  }
}

}  // namespace sf::sim
