#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/types.hpp"

namespace sf::sim {

/// One recorded simulation event (task started, pod scheduled, ...).
struct TraceEvent {
  SimTime time = 0;
  std::string category;  ///< subsystem, e.g. "knative", "condor"
  std::string name;      ///< event name, e.g. "pod.cold_start"
  std::vector<std::pair<std::string, std::string>> attrs;

  /// Value of attribute `key`, or "" when absent.
  [[nodiscard]] std::string_view attr(std::string_view key) const;
};

/// Append-only in-memory trace of everything a simulation did. Disabled
/// recorders drop events with near-zero cost so hot paths can trace
/// unconditionally.
class TraceRecorder {
 public:
  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void record(SimTime t, std::string category, std::string name,
              std::vector<std::pair<std::string, std::string>> attrs = {});

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }

  /// Events matching a category (and optionally a name).
  [[nodiscard]] std::vector<const TraceEvent*> find(
      std::string_view category, std::string_view name = {}) const;

  /// Number of events matching category/name.
  [[nodiscard]] std::size_t count(std::string_view category,
                                  std::string_view name = {}) const;

  void clear() { events_.clear(); }

  /// CSV dump: time,category,name,key=value;key=value...
  void write_csv(std::ostream& os) const;

 private:
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
};

}  // namespace sf::sim
