#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <ostream>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/interner.hpp"
#include "sim/types.hpp"

namespace sf::sim {

/// Fixed-capacity-chunk arena: elements live in stable 4096-item blocks,
/// appending never moves an element, and clear() keeps the blocks for
/// reuse — after the first flush a steady-state recorder allocates
/// nothing. Iteration ("flush walks arenas in order") is index order,
/// which is record order.
template <typename T>
class ChunkArena {
 public:
  static constexpr std::size_t kChunkItems = 4096;

  T& push(T value) {
    const std::size_t chunk = size_ / kChunkItems;
    const std::size_t offset = size_ % kChunkItems;
    if (chunk == chunks_.size()) {
      chunks_.push_back(std::make_unique<T[]>(kChunkItems));
    }
    T& slot = chunks_[chunk][offset];
    slot = value;
    ++size_;
    return slot;
  }

  [[nodiscard]] const T& operator[](std::size_t i) const {
    return chunks_[i / kChunkItems][i % kChunkItems];
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Forgets the contents but pools the chunks.
  void clear() { size_ = 0; }

 private:
  std::vector<std::unique_ptr<T[]>> chunks_;
  std::size_t size_ = 0;
};

/// Bump allocator for attribute-value bytes: 64 KiB chunks, values stay
/// contiguous (a value never spans chunks), clear() rewinds and reuses.
class ByteArena {
 public:
  static constexpr std::size_t kChunkBytes = 64 * 1024;

  /// Copies `s` in and returns a pointer that stays valid until clear().
  const char* append(std::string_view s) {
    if (s.empty()) return "";
    if (s.size() > kChunkBytes) {
      // Pathological value: give it its own allocation (freed on clear).
      overflow_.push_back(std::make_unique<char[]>(s.size()));
      char* dst = overflow_.back().get();
      s.copy(dst, s.size());
      return dst;
    }
    if (chunks_.empty() || used_ + s.size() > kChunkBytes) {
      ++chunk_;
      used_ = 0;
      if (chunk_ >= chunks_.size()) {
        chunks_.push_back(std::make_unique<char[]>(kChunkBytes));
        chunk_ = chunks_.size() - 1;
      }
    }
    char* dst = chunks_[chunk_].get() + used_;
    s.copy(dst, s.size());
    used_ += s.size();
    return dst;
  }

  void clear() {
    chunk_ = 0;
    used_ = chunks_.empty() ? 0 : 0;
    overflow_.clear();
  }

 private:
  std::vector<std::unique_ptr<char[]>> chunks_;
  std::size_t chunk_ = 0;  ///< chunk currently being filled
  std::size_t used_ = 0;   ///< bytes used in that chunk
  std::vector<std::unique_ptr<char[]>> overflow_;
};

/// Append-only in-memory trace of everything a simulation did. Disabled
/// recorders drop events at argument-evaluation cost (no allocation at
/// all: the attribute list is a borrow of string_views), which is what
/// lets hot paths trace unconditionally.
///
/// Storage is the scale-regime layout: records are 24-byte PODs in a
/// chunked arena (no per-record heap allocation), category / name / attr
/// keys are interned ObjectIds (each distinct spelling stored once), and
/// attr values are bytes in a pooled bump arena. At 10^6+ events a run,
/// recording costs an id lookup and a few word stores; the string side
/// table is only consulted on the (cold) read/flush path, so gated and
/// flushed output is byte-identical to the old string-storing recorder.
class TraceRecorder {
 private:
  struct Record;
  struct AttrRecord;

 public:
  using Attr = std::pair<std::string_view, std::string_view>;

  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void record(SimTime t, std::string_view category, std::string_view name,
              std::initializer_list<Attr> attrs = {}) {
    if (!enabled_) return;
    Record rec;
    rec.time = t;
    rec.category = ids_.intern(category);
    rec.name = ids_.intern(name);
    rec.attr_begin = static_cast<std::uint32_t>(attrs_.size());
    rec.attr_count = static_cast<std::uint32_t>(attrs.size());
    for (const auto& [key, value] : attrs) {
      attrs_.push(AttrRecord{ids_.intern(key),
                             static_cast<std::uint32_t>(value.size()),
                             values_.append(value)});
    }
    records_.push(rec);
  }

  /// Read-side view of one recorded event. Views stay valid until the
  /// recorder is cleared or destroyed.
  class EventView {
   public:
    [[nodiscard]] SimTime time() const { return rec_->time; }
    [[nodiscard]] std::string_view category() const {
      return tr_->ids_.name(rec_->category);
    }
    [[nodiscard]] std::string_view name() const {
      return tr_->ids_.name(rec_->name);
    }
    [[nodiscard]] std::size_t attr_count() const { return rec_->attr_count; }
    /// i-th attribute, in record order.
    [[nodiscard]] Attr attr_at(std::size_t i) const {
      const AttrRecord& a = tr_->attrs_[rec_->attr_begin + i];
      return {tr_->ids_.name(a.key), std::string_view(a.value, a.len)};
    }
    /// Value of attribute `key`, or "" when absent.
    [[nodiscard]] std::string_view attr(std::string_view key) const {
      for (std::size_t i = 0; i < rec_->attr_count; ++i) {
        const auto [k, v] = attr_at(i);
        if (k == key) return v;
      }
      return {};
    }

   private:
    friend class TraceRecorder;
    EventView(const TraceRecorder* tr, std::size_t index)
        : tr_(tr), rec_(&tr->records_[index]) {}
    const TraceRecorder* tr_;
    const Record* rec_;
  };

  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] bool empty() const { return records_.empty(); }
  [[nodiscard]] EventView event(std::size_t i) const {
    return EventView(this, i);
  }

  /// Events matching a category (and optionally a name), in record order.
  [[nodiscard]] std::vector<EventView> find(
      std::string_view category, std::string_view name = {}) const;

  /// Number of events matching category/name. Id-compare per record: the
  /// query strings are looked up (never inserted) once.
  [[nodiscard]] std::size_t count(std::string_view category,
                                  std::string_view name = {}) const;

  void clear() {
    records_.clear();
    attrs_.clear();
    values_.clear();
  }

  /// CSV dump: time,category,name,key=value;key=value...
  void write_csv(std::ostream& os) const;

 private:
  struct Record {
    SimTime time = 0;
    ObjectId category = kEmptyId;
    ObjectId name = kEmptyId;
    std::uint32_t attr_begin = 0;
    std::uint32_t attr_count = 0;
  };
  struct AttrRecord {
    ObjectId key = kEmptyId;
    std::uint32_t len = 0;
    const char* value = "";
  };

  bool enabled_ = false;
  ChunkArena<Record> records_;
  ChunkArena<AttrRecord> attrs_;
  ByteArena values_;
  /// The recorder's own id table: categories, event names and attr keys
  /// (low-cardinality, hit constantly) — intentionally separate from the
  /// simulation's object-id table so a bare TraceRecorder works alone.
  Interner ids_;
};

}  // namespace sf::sim
