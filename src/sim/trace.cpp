#include "sim/trace.hpp"

#include <algorithm>

namespace sf::sim {

std::string_view TraceEvent::attr(std::string_view key) const {
  for (const auto& [k, v] : attrs) {
    if (k == key) return v;
  }
  return {};
}

void TraceRecorder::record(
    SimTime t, std::string category, std::string name,
    std::vector<std::pair<std::string, std::string>> attrs) {
  if (!enabled_) return;
  events_.push_back(
      TraceEvent{t, std::move(category), std::move(name), std::move(attrs)});
}

std::vector<const TraceEvent*> TraceRecorder::find(
    std::string_view category, std::string_view name) const {
  std::vector<const TraceEvent*> out;
  for (const auto& e : events_) {
    if (e.category == category && (name.empty() || e.name == name)) {
      out.push_back(&e);
    }
  }
  return out;
}

std::size_t TraceRecorder::count(std::string_view category,
                                 std::string_view name) const {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(), [&](const TraceEvent& e) {
        return e.category == category && (name.empty() || e.name == name);
      }));
}

void TraceRecorder::write_csv(std::ostream& os) const {
  os << "time,category,name,attrs\n";
  for (const auto& e : events_) {
    os << e.time << ',' << e.category << ',' << e.name << ',';
    bool first = true;
    for (const auto& [k, v] : e.attrs) {
      if (!first) os << ';';
      first = false;
      os << k << '=' << v;
    }
    os << '\n';
  }
}

}  // namespace sf::sim
