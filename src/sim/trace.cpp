#include "sim/trace.hpp"

namespace sf::sim {

std::vector<TraceRecorder::EventView> TraceRecorder::find(
    std::string_view category, std::string_view name) const {
  std::vector<EventView> out;
  const ObjectId cat_id = ids_.lookup(category);
  if (cat_id == kEmptyId && !category.empty()) return out;  // never recorded
  const bool any_name = name.empty();
  const ObjectId name_id = ids_.lookup(name);
  if (!any_name && name_id == kEmptyId) return out;
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const Record& rec = records_[i];
    if (rec.category == cat_id && (any_name || rec.name == name_id)) {
      out.push_back(EventView(this, i));
    }
  }
  return out;
}

std::size_t TraceRecorder::count(std::string_view category,
                                 std::string_view name) const {
  const ObjectId cat_id = ids_.lookup(category);
  if (cat_id == kEmptyId && !category.empty()) return 0;
  const bool any_name = name.empty();
  const ObjectId name_id = ids_.lookup(name);
  if (!any_name && name_id == kEmptyId) return 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const Record& rec = records_[i];
    if (rec.category == cat_id && (any_name || rec.name == name_id)) ++n;
  }
  return n;
}

void TraceRecorder::write_csv(std::ostream& os) const {
  os << "time,category,name,attrs\n";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const Record& rec = records_[i];
    os << rec.time << ',' << ids_.name(rec.category) << ','
       << ids_.name(rec.name) << ',';
    for (std::uint32_t a = 0; a < rec.attr_count; ++a) {
      const AttrRecord& attr = attrs_[rec.attr_begin + a];
      if (a != 0) os << ';';
      os << ids_.name(attr.key) << '='
         << std::string_view(attr.value, attr.len);
    }
    os << '\n';
  }
}

}  // namespace sf::sim
