#pragma once

#include <cstdint>
#include <limits>

/// Core vocabulary types shared by every ServerFlow subsystem.
namespace sf::sim {

/// Virtual time in seconds since simulation start.
using SimTime = double;

/// Identifier of a scheduled event; valid until the event fires or is
/// cancelled. Id 0 is never issued and means "no event".
using EventId = std::uint64_t;

inline constexpr EventId kNoEvent = 0;

/// A time far beyond any simulated horizon.
inline constexpr SimTime kTimeInfinity =
    std::numeric_limits<SimTime>::infinity();

/// Comparison slack for virtual-time and remaining-work arithmetic.
inline constexpr double kEpsilon = 1e-9;

}  // namespace sf::sim
