#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "sim/inline_function.hpp"
#include "sim/types.hpp"

namespace sf::sim {

/// Deterministic cancellable event queue.
///
/// Events scheduled for the same instant fire in scheduling order (FIFO by
/// monotonically increasing EventId), which makes every simulation run
/// bit-reproducible.
///
/// Implementation: discrete-event workloads schedule many events at few
/// distinct instants (batch arrivals, quantized delays, simultaneous
/// completions), so the priority structure orders *timestamps*, not events.
/// An indexed 4-ary min-heap holds one entry per distinct pending time;
/// same-instant events chain FIFO through intrusive lists in the slot
/// arrays. Scheduling into an existing instant and popping a non-final
/// event of an instant are O(1) list operations — the O(log n) heap is only
/// touched when a new distinct time appears or an instant drains. A flat
/// open-addressing table (no allocation per event, backward-shift deletion)
/// maps timestamps to their heap bucket.
///
/// Callbacks live inline in chunked slot storage (free-list reuse, stable
/// addresses, no per-event allocation for small captures thanks to
/// InlineFunction). Each bucket tracks its heap position, so cancel()
/// removes eagerly — O(1) for same-instant siblings, O(log n) when the
/// instant drains — and the heap never carries tombstones; pop() never
/// scans dead tops.
///
/// An EventId encodes (sequence << 24) | slot. The sequence number strictly
/// increases with every schedule() call, so ids remain monotonic even when
/// slots are reused; the low bits give O(1) cancellation without a hash
/// lookup. The split supports ~1.1e12 lifetime events and 16M concurrent
/// events, both far beyond any simulated scenario.
class EventQueue {
 public:
  using Callback = InlineFunction;

  EventQueue() = default;
  ~EventQueue();  ///< destroys the slots placement-newed into raw chunks

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `fn` at absolute time `t`. Returns a handle usable with
  /// cancel(). `t` may equal the current top time; ordering stays FIFO.
  EventId schedule(SimTime t, Callback fn);

  /// Cancels a pending event. Returns true iff the event was still pending.
  bool cancel(EventId id);

  /// True when no live events remain.
  [[nodiscard]] bool empty() const { return live_ == 0; }

  /// Number of live (non-cancelled, not yet fired) events.
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Time of the earliest live event; kTimeInfinity when empty.
  [[nodiscard]] SimTime next_time() const {
    return heap_.empty() ? kTimeInfinity : heap_.front().time;
  }

  /// Removes and returns the earliest live event. Precondition: !empty().
  struct Fired {
    SimTime time;
    EventId id;
    Callback fn;
  };
  Fired pop();

  /// Total events ever scheduled (statistics / debugging). Counts every
  /// schedule() call, including events later cancelled or already fired.
  [[nodiscard]] std::uint64_t total_scheduled() const {
    return total_scheduled_;
  }

 private:
  /// Low bits of an EventId addressing the callback slot.
  static constexpr unsigned kSlotBits = 24;
  static constexpr EventId kSlotMask = (EventId{1} << kSlotBits) - 1;
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  /// One distinct pending instant: an intrusive FIFO of event slots.
  struct Bucket {
    SimTime time = 0;
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
    std::uint32_t heap_pos = 0;
  };

  /// 16 bytes; buckets hold distinct times, so comparisons need no
  /// tie-break.
  struct HeapEntry {
    SimTime time;
    std::uint32_t bucket;
  };

  /// Flat open-addressing map from a timestamp's bit pattern to its bucket
  /// index. Linear probing, power-of-two capacity, backward-shift deletion
  /// (no tombstones), no per-entry allocation.
  class TimeIndex {
   public:
    static constexpr std::uint32_t kEmpty = kNil;

    /// Returns the value cell for `key`, inserting an empty cell (value
    /// kEmpty) when absent — the caller fills it immediately.
    std::uint32_t* find_or_insert(std::uint64_t key);
    void erase(std::uint64_t key);

   private:
    struct Cell {
      std::uint64_t key = 0;
      std::uint32_t val = kEmpty;
    };

    [[nodiscard]] std::size_t ideal(std::uint64_t key) const {
      // Fibonacci multiplicative hash, keeping the TOP log2(capacity) bits
      // of the product: they mix every input bit, so the near-identical
      // bit patterns of small integral timestamps still spread evenly
      // (low/middle product bits cluster badly — dozens of probes).
      return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ull) >>
                                      shift_);
    }
    void grow();

    std::vector<Cell> cells_;
    std::size_t mask_ = 0;   ///< capacity - 1; 0 until first insert
    unsigned shift_ = 64;    ///< 64 - log2(capacity)
    std::size_t count_ = 0;
    std::size_t grow_at_ = 0;  ///< rehash once count_ reaches this
  };

  /// Canonical hashable representation of a timestamp (-0.0 folds into
  /// +0.0 so both land in the same bucket).
  static std::uint64_t time_key(SimTime t) {
    return std::bit_cast<std::uint64_t>(t == 0.0 ? 0.0 : t);
  }

  void place(std::size_t i, const HeapEntry& e) {
    heap_[i] = e;
    buckets_[e.bucket].heap_pos = static_cast<std::uint32_t>(i);
  }

  void sift_up(std::size_t i, HeapEntry moving);
  /// Removes the heap entry at position `pos`, restoring the heap:
  /// percolates the hole to a leaf along the min-child chain, then bubbles
  /// the displaced last element up from there (bottom-up deletion).
  void remove_at(std::size_t pos);
  /// Detaches a drained bucket from heap, index and bucket free-list.
  void retire_bucket(std::uint32_t bucket);
  std::uint32_t alloc_slot();
  void recycle_slot(std::uint32_t slot);

  /// One live event: FIFO back-link + owning bucket + the callback itself
  /// (96 bytes). Keeping the callback next to the metadata means pop
  /// touches two adjacent cache lines per event instead of one per
  /// parallel array. The forward link deliberately lives OUTSIDE the slot
  /// in the compact next_ array: appending to a bucket writes the previous
  /// tail's forward link, and that random-stride write should land in the
  /// small hot array, not drag the tail's whole slot line in.
  struct Slot {
    EventId id = kNoEvent;  ///< Full id occupying this slot; kNoEvent = free.
    std::uint32_t prev = kNil;
    std::uint32_t bucket = kNil;
    Callback fn;
  };

  /// Slot storage in fixed chunks of raw memory: growing never relocates
  /// existing slots, so scheduling bursts pay no InlineFunction move
  /// traffic and Fired callbacks are moved straight out of stable
  /// addresses. Chunks are left uninitialised; a Slot is placement-newed
  /// the first time its index is handed out (alloc_slot), so opening a
  /// chunk costs one allocation and nothing per slot — small simulations
  /// never pay for the slots they don't use.
  static constexpr unsigned kChunkShift = 8;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;

  Slot& slot_at(std::uint32_t slot) {
    std::byte* base = slot_chunks_[slot >> kChunkShift].get();
    return *std::launder(reinterpret_cast<Slot*>(
        base + (slot & (kChunkSize - 1)) * sizeof(Slot)));
  }

  std::vector<HeapEntry> heap_;  ///< one entry per distinct pending time
  std::vector<Bucket> buckets_;
  std::vector<std::uint32_t> free_buckets_;
  TimeIndex index_;
  std::vector<std::unique_ptr<std::byte[]>> slot_chunks_;
  std::vector<std::uint32_t> next_;  ///< forward FIFO link per slot
  std::uint32_t slot_count_ = 0;     ///< slots ever allocated (chunk fill)
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_ = 0;
  std::uint64_t total_scheduled_ = 0;
};

}  // namespace sf::sim
