#pragma once

#include <cstddef>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/types.hpp"

namespace sf::sim {

/// Deterministic cancellable event queue.
///
/// Events scheduled for the same instant fire in scheduling order (FIFO by
/// monotonically increasing EventId), which makes every simulation run
/// bit-reproducible. Cancellation is lazy: cancelled ids are dropped when
/// they reach the top of the heap.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` at absolute time `t`. Returns a handle usable with
  /// cancel(). `t` may equal the current top time; ordering stays FIFO.
  EventId schedule(SimTime t, Callback fn);

  /// Cancels a pending event. Returns true iff the event was still pending.
  bool cancel(EventId id);

  /// True when no live events remain.
  [[nodiscard]] bool empty() const { return live_.empty(); }

  /// Number of live (non-cancelled, not yet fired) events.
  [[nodiscard]] std::size_t size() const { return live_.size(); }

  /// Time of the earliest live event; kTimeInfinity when empty.
  [[nodiscard]] SimTime next_time() const;

  /// Removes and returns the earliest live event. Precondition: !empty().
  struct Fired {
    SimTime time;
    EventId id;
    Callback fn;
  };
  Fired pop();

  /// Total events ever scheduled (statistics / debugging).
  [[nodiscard]] std::uint64_t total_scheduled() const {
    return next_id_ - 1;
  }

 private:
  struct Entry {
    SimTime time;
    EventId id;
    bool operator>(const Entry& o) const {
      if (time != o.time) return time > o.time;
      return id > o.id;
    }
  };

  void drop_dead_tops() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<>>
      heap_;
  std::unordered_map<EventId, Callback> live_;
  EventId next_id_ = 1;
};

}  // namespace sf::sim
