#pragma once

#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

namespace sf::sim {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide log configuration. Tests run with logging off; the
/// examples and benches turn on kInfo to narrate control-plane activity.
class Log {
 public:
  static LogLevel& level() {
    static LogLevel lvl = LogLevel::kOff;
    return lvl;
  }

  static bool enabled(LogLevel lvl) { return lvl >= level(); }

  /// Streams a timestamped line: `[  12.345s] [knative] message`.
  template <typename... Args>
  static void write(LogLevel lvl, double sim_time, std::string_view component,
                    Args&&... args) {
    if (!enabled(lvl)) return;
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(3);
    os << '[' << sim_time << "s] [" << component << "] ";
    (os << ... << std::forward<Args>(args));
    os << '\n';
    std::clog << os.str();
  }
};

}  // namespace sf::sim
