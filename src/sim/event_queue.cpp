#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace sf::sim {

EventId EventQueue::schedule(SimTime t, Callback fn) {
  const EventId id = next_id_++;
  heap_.push(Entry{t, id});
  live_.emplace(id, std::move(fn));
  return id;
}

bool EventQueue::cancel(EventId id) { return live_.erase(id) > 0; }

void EventQueue::drop_dead_tops() const {
  while (!heap_.empty() && !live_.contains(heap_.top().id)) {
    heap_.pop();
  }
}

SimTime EventQueue::next_time() const {
  drop_dead_tops();
  return heap_.empty() ? kTimeInfinity : heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_dead_tops();
  assert(!heap_.empty() && "pop() on empty EventQueue");
  const Entry top = heap_.top();
  heap_.pop();
  auto it = live_.find(top.id);
  Fired fired{top.time, top.id, std::move(it->second)};
  live_.erase(it);
  return fired;
}

}  // namespace sf::sim
