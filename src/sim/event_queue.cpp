#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace sf::sim {

namespace {

inline void prefetch_read(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, 0);
#else
  (void)p;
#endif
}

inline void prefetch_write(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, 1);
#else
  (void)p;
#endif
}

}  // namespace

// ---------------------------------------------------------------- TimeIndex

std::uint32_t* EventQueue::TimeIndex::find_or_insert(std::uint64_t key) {
  if (count_ >= grow_at_) grow();
  std::size_t i = ideal(key);
  while (cells_[i].val != kEmpty && cells_[i].key != key) {
    i = (i + 1) & mask_;
  }
  if (cells_[i].val == kEmpty) {
    cells_[i].key = key;
    ++count_;
  }
  return &cells_[i].val;
}

void EventQueue::TimeIndex::erase(std::uint64_t key) {
  std::size_t i = ideal(key);
  while (cells_[i].key != key || cells_[i].val == kEmpty) {
    i = (i + 1) & mask_;
  }
  // Backward-shift deletion keeps probe chains intact without tombstones.
  std::size_t hole = i;
  std::size_t j = i;
  while (true) {
    j = (j + 1) & mask_;
    if (cells_[j].val == kEmpty) break;
    const std::size_t home = ideal(cells_[j].key);
    if (((j - home) & mask_) >= ((j - hole) & mask_)) {
      cells_[hole] = cells_[j];
      hole = j;
    }
  }
  cells_[hole].val = kEmpty;
  --count_;
}

void EventQueue::TimeIndex::grow() {
  const std::size_t cap = cells_.empty() ? 16 : cells_.size() * 2;
  std::vector<Cell> old = std::move(cells_);
  cells_.assign(cap, Cell{});
  mask_ = cap - 1;
  shift_ = 64u - static_cast<unsigned>(std::bit_width(mask_));
  grow_at_ = cap * 3 / 4;
  for (const Cell& c : old) {
    if (c.val == kEmpty) continue;
    std::size_t i = ideal(c.key);
    while (cells_[i].val != kEmpty) i = (i + 1) & mask_;
    cells_[i] = c;
  }
}

// ---------------------------------------------------------------- EventQueue

EventQueue::~EventQueue() {
  for (std::uint32_t s = 0; s < slot_count_; ++s) slot_at(s).~Slot();
}

std::uint32_t EventQueue::alloc_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  const std::uint32_t slot = slot_count_++;
  assert(slot <= kSlotMask && "EventQueue: too many live events");
  if ((slot & (kChunkSize - 1)) == 0) {
    // for_overwrite: the chunk must stay untouched until slots are
    // individually constructed, or opening one costs a zero-fill wave.
    slot_chunks_.push_back(std::make_unique_for_overwrite<std::byte[]>(
        kChunkSize * sizeof(Slot)));
    next_.resize(next_.size() + kChunkSize);
  }
  // Fresh slots are handed out sequentially: warm the line four slots
  // ahead so a scheduling burst writes into cache instead of raising an
  // ownership miss per line.
  if ((slot & (kChunkSize - 1)) + 4 < kChunkSize) {
    prefetch_write(slot_chunks_.back().get() +
                   ((slot & (kChunkSize - 1)) + 4) * sizeof(Slot));
  }
  return slot;
}

void EventQueue::recycle_slot(std::uint32_t slot) {
  slot_at(slot).id = kNoEvent;
  free_slots_.push_back(slot);
}

EventId EventQueue::schedule(SimTime t, Callback fn) {
  const bool fresh = free_slots_.empty();
  const std::uint32_t slot = alloc_slot();
  const EventId id = (++total_scheduled_ << kSlotBits) | slot;
  next_[slot] = kNil;

  std::uint32_t prev;
  std::uint32_t bucket;
  std::uint32_t* cell = index_.find_or_insert(time_key(t));
  if (*cell != TimeIndex::kEmpty) {
    // Existing instant: append to its FIFO — ids are monotonic, so append
    // order is id order.
    bucket = *cell;
    Bucket& b = buckets_[bucket];
    next_[b.tail] = slot;
    prev = b.tail;
    b.tail = slot;
  } else {
    // New distinct instant: open a bucket and push it onto the heap.
    if (!free_buckets_.empty()) {
      bucket = free_buckets_.back();
      free_buckets_.pop_back();
    } else {
      bucket = static_cast<std::uint32_t>(buckets_.size());
      buckets_.emplace_back();
    }
    *cell = bucket;
    Bucket& b = buckets_[bucket];
    b.time = t;
    b.head = b.tail = slot;
    prev = kNil;
    heap_.push_back(HeapEntry{t, bucket});
    sift_up(heap_.size() - 1, heap_.back());
  }

  if (fresh) {
    // First use of this index: start the Slot's lifetime in the raw chunk,
    // directly with its final field values (no default-init-then-assign).
    ::new (static_cast<void*>(
        slot_chunks_[slot >> kChunkShift].get() +
        (slot & (kChunkSize - 1)) * sizeof(Slot)))
        Slot{id, prev, bucket, std::move(fn)};
  } else {
    // Recycled slots hold a live (empty-callback) Slot object: assign.
    Slot& s = slot_at(slot);
    s.id = id;
    s.prev = prev;
    s.bucket = bucket;
    s.fn = std::move(fn);
  }
  ++live_;
  return id;
}

void EventQueue::retire_bucket(std::uint32_t bucket) {
  remove_at(buckets_[bucket].heap_pos);
  index_.erase(time_key(buckets_[bucket].time));
  free_buckets_.push_back(bucket);
}

bool EventQueue::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & kSlotMask);
  if (slot >= slot_count_) return false;
  Slot& s = slot_at(slot);
  if (s.id != id) return false;
  Bucket& b = buckets_[s.bucket];
  const std::uint32_t nxt = next_[slot];
  if (s.prev != kNil) {
    next_[s.prev] = nxt;
  } else {
    b.head = nxt;
  }
  if (nxt != kNil) {
    slot_at(nxt).prev = s.prev;
  } else {
    b.tail = s.prev;
  }
  if (b.head == kNil) retire_bucket(s.bucket);
  s.fn = nullptr;  // destroy the callback eagerly
  recycle_slot(slot);
  --live_;
  return true;
}

EventQueue::Fired EventQueue::pop() {
  assert(live_ > 0 && "pop() on empty EventQueue");
  const HeapEntry top = heap_.front();
  Bucket& b = buckets_[top.bucket];
  const std::uint32_t slot = b.head;
  Slot& s = slot_at(slot);
  const std::uint32_t nxt = next_[slot];
  if (nxt != kNil) {
    // The sibling fires on the very next pop; start pulling it in now.
    // Chasing one more link (a cheap read of the compact next_ array)
    // extends the prefetch window to two pops, enough to hide an L3 miss.
    Slot& n = slot_at(nxt);
    prefetch_read(&n);
    prefetch_read(reinterpret_cast<const unsigned char*>(&n) + 64);
    const std::uint32_t nxt2 = next_[nxt];
    if (nxt2 != kNil) {
      Slot& n2 = slot_at(nxt2);
      prefetch_read(&n2);
      prefetch_read(reinterpret_cast<const unsigned char*>(&n2) + 64);
    }
  }
  Fired fired{top.time, s.id, std::move(s.fn)};
  b.head = nxt;
  if (nxt != kNil) {
    slot_at(nxt).prev = kNil;
  } else {
    b.tail = kNil;
    retire_bucket(top.bucket);
  }
  // The moved-from callback is already empty; just recycle the slot.
  recycle_slot(slot);
  --live_;
  return fired;
}

void EventQueue::remove_at(std::size_t pos) {
  const std::size_t last = heap_.size() - 1;
  const HeapEntry displaced = heap_[last];
  heap_.pop_back();
  if (pos == last) return;
  // Percolate the hole down the min-child chain to a leaf, then drop the
  // displaced last element into it and bubble up (bottom-up deletion —
  // fewer comparisons than classic sift-down because the displaced element
  // is leaf-sized and rarely travels far).
  const std::size_t n = last;
  while (true) {
    const std::size_t first_child = 4 * pos + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    if (first_child + 3 < n) {
      // All four children exist: pairwise tournament (better ILP than a
      // sequential scan).
      const std::size_t m1 =
          heap_[first_child + 1].time < heap_[first_child].time
              ? first_child + 1
              : first_child;
      const std::size_t m2 =
          heap_[first_child + 3].time < heap_[first_child + 2].time
              ? first_child + 3
              : first_child + 2;
      best = heap_[m2].time < heap_[m1].time ? m2 : m1;
    } else {
      for (std::size_t c = first_child + 1; c < n; ++c) {
        if (heap_[c].time < heap_[best].time) best = c;
      }
    }
    place(pos, heap_[best]);
    pos = best;
  }
  sift_up(pos, displaced);
}

void EventQueue::sift_up(std::size_t i, HeapEntry moving) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (moving.time >= heap_[parent].time) break;
    place(i, heap_[parent]);
    i = parent;
  }
  place(i, moving);
}

}  // namespace sf::sim
