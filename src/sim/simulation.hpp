#pragma once

#include <cstddef>

#include "sim/event_queue.hpp"
#include "sim/interner.hpp"
#include "sim/random.hpp"
#include "sim/trace.hpp"
#include "sim/types.hpp"

namespace sf::sim {

/// Discrete-event simulation driver.
///
/// Owns the virtual clock, the event queue, the deterministic RNG and the
/// trace recorder. Every other subsystem holds a reference to one
/// Simulation and advances purely by scheduling callbacks on it.
class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 42) : rng_(seed) {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Callback type: small captures stay allocation-free (InlineFunction);
  /// any callable convertible to `void()` is accepted, including
  /// `std::function`.
  using Callback = EventQueue::Callback;

  /// Schedules `fn` at absolute virtual time `t` (must be >= now()).
  EventId call_at(SimTime t, Callback fn);

  /// Schedules `fn` after `delay` seconds (must be >= 0).
  EventId call_in(SimTime delay, Callback fn);

  /// Cancels a pending event; returns true iff it was still pending.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs until the queue drains or stop() is called.
  /// Returns the number of events processed.
  std::size_t run();

  /// Runs all events with time <= `t`; the clock then reads exactly `t`.
  std::size_t run_until(SimTime t);

  /// Processes a single event. Returns false when the queue is empty.
  bool step();

  /// Stops run()/run_until() after the current callback returns.
  void stop() { stopped_ = true; }

  [[nodiscard]] bool has_pending_events() const { return !queue_.empty(); }
  [[nodiscard]] SimTime next_event_time() const { return queue_.next_time(); }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  Rng& rng() { return rng_; }
  TraceRecorder& trace() { return trace_; }
  const TraceRecorder& trace() const { return trace_; }

  /// The simulation's object-name intern table. Per-simulation (not
  /// process-global) on purpose: sweep points each own their Simulation,
  /// so intern order — and therefore every id — is a pure function of the
  /// run, independent of SweepRunner thread interleaving.
  Interner& ids() { return ids_; }
  const Interner& ids() const { return ids_; }

  /// Shorthand for ids().intern().
  ObjectId intern(std::string_view s) { return ids_.intern(s); }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  bool stopped_ = false;
  std::uint64_t processed_ = 0;
  Rng rng_;
  TraceRecorder trace_;
  Interner ids_;
};

}  // namespace sf::sim
