#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace sf::sim {

/// Runs independent sweep points across a pool of std::threads with
/// deterministic result ordering.
///
/// Contract:
///  * Each point builds its OWN Simulation / testbed / RNG inside `fn` —
///    points share no mutable state, so any thread interleaving produces
///    the same per-point result as a serial loop.
///  * Results are keyed by sweep index and returned in index order, so
///    consumers that print after run() returns emit bit-identical output
///    at any thread count (including 1).
///  * Work is claimed from a single atomic counter (dynamic load
///    balancing): long points don't stall short ones behind a static
///    partition.
///  * The first exception thrown by any point is rethrown on the caller
///    after every worker joined; remaining unclaimed points are skipped.
///
/// Thread count: an explicit constructor argument wins; otherwise the
/// SF_SWEEP_THREADS environment variable (>= 1); otherwise
/// std::thread::hardware_concurrency().
class SweepRunner {
 public:
  explicit SweepRunner(int threads = 0) : threads_(resolve_threads(threads)) {}

  [[nodiscard]] int threads() const { return threads_; }

  /// Computes fn(i) for every i in [0, n); fn must be const-callable from
  /// several threads at once and its result default-constructible. Runs
  /// serially (no threads spawned) when threads()==1 or n<=1.
  template <typename Fn>
  auto run(std::size_t n, Fn&& fn)
      -> std::vector<decltype(fn(std::size_t{0}))> {
    using R = decltype(fn(std::size_t{0}));
    static_assert(!std::is_same_v<R, bool>,
                  "std::vector<bool> elements cannot be written "
                  "concurrently; wrap the result in a struct");
    std::vector<R> results(n);
    const std::size_t workers =
        std::min(static_cast<std::size_t>(threads_), n);
    if (workers <= 1) {
      for (std::size_t i = 0; i < n; ++i) results[i] = fn(i);
      return results;
    }
    std::atomic<std::size_t> next{0};
    std::exception_ptr error;
    std::mutex error_mu;
    auto work = [&] {
      while (true) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        try {
          // Distinct vector elements: no synchronization needed beyond
          // the joins below.
          results[i] = fn(i);
        } catch (...) {
          const std::scoped_lock lock(error_mu);
          if (!error) error = std::current_exception();
          // Park the counter past the end so peers drain quickly.
          next.store(n, std::memory_order_relaxed);
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t) pool.emplace_back(work);
    for (auto& t : pool) t.join();
    if (error) std::rethrow_exception(error);
    return results;
  }

  /// Resolution used by the default constructor; exposed for tests.
  [[nodiscard]] static int resolve_threads(int requested);

 private:
  int threads_;
};

}  // namespace sf::sim
