#include "sim/sweep_runner.hpp"

#include <cstdlib>

namespace sf::sim {

int SweepRunner::resolve_threads(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("SF_SWEEP_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 1024) {
      return static_cast<int>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace sf::sim
