#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulation.hpp"
#include "sim/types.hpp"

namespace sf::sim {

/// Weighted processor-sharing server with per-job rate caps.
///
/// Models any capacity that is divided among concurrent consumers:
///   * a node's CPU (capacity = #cores, per-task cap = threads it can use,
///     cgroup quota = a lower cap),
///   * a NIC or disk (capacity = bandwidth).
///
/// Rates follow weighted max-min fairness ("water-filling"): each active job
/// i receives rate_i = min(cap_i, lambda * weight_i) with lambda chosen so
/// the rates sum to min(capacity, sum of caps). Whenever the job set or a
/// cap changes, remaining work is advanced at the old rates and the next
/// completion event is rescheduled — the classic PS discrete-event pattern.
///
/// Jobs live in a dense slot vector reused through a free-list; a JobId is a
/// generation-checked handle ((sequence << 24) | slot), so lookups are O(1)
/// and stale ids are rejected without a map. Iteration (fair-share rounds,
/// completion callbacks) follows submission order — ids are monotonic, so
/// this matches the former by-id `std::map` order exactly. Rates are only
/// recomputed when the active set, a cap/weight, or the capacity actually
/// changed (dirty flag); queries merely advance remaining work.
class PsResource {
 public:
  using JobId = std::uint64_t;
  using Callback = Simulation::Callback;

  PsResource(Simulation& sim, double capacity, std::string name = "ps");

  PsResource(const PsResource&) = delete;
  PsResource& operator=(const PsResource&) = delete;

  /// Adds a job with `work` units to process. `on_complete` fires when the
  /// job finishes. `rate_cap` bounds the job's share (e.g. 1.0 core for a
  /// single-threaded task); `weight` skews fair sharing (cgroup cpu-shares).
  JobId submit(double work, Callback on_complete, double rate_cap = kNoCap,
               double weight = 1.0);

  /// Removes a job without completing it. Returns true iff it was active.
  bool cancel(JobId id);

  /// Removes every active job without completing any of them (node crash:
  /// in-flight work is lost and the continuations never fire). Returns the
  /// number of jobs cancelled.
  std::size_t cancel_all();

  /// Changes a job's rate cap (dynamic cgroup quota change).
  /// Returns false when the job is no longer active.
  bool set_rate_cap(JobId id, double rate_cap);

  /// Changes total capacity (e.g. node CPU hot-plug in tests).
  void set_capacity(double capacity);

  [[nodiscard]] double capacity() const { return capacity_; }
  [[nodiscard]] std::size_t active_jobs() const { return order_.size(); }

  /// Remaining work for an active job (advanced to now); -1 when inactive.
  [[nodiscard]] double remaining(JobId id);

  /// The job's current service rate; -1 when inactive.
  [[nodiscard]] double current_rate(JobId id);

  /// Aggregate rate currently being delivered to all jobs.
  [[nodiscard]] double utilization() const;

  [[nodiscard]] const std::string& name() const { return name_; }

  static constexpr double kNoCap = 1e300;

 private:
  static constexpr unsigned kSlotBits = 24;
  static constexpr JobId kSlotMask = (JobId{1} << kSlotBits) - 1;
  static constexpr JobId kNoJob = 0;

  struct Job {
    JobId id = kNoJob;  ///< Full handle occupying this slot; kNoJob = free.
    double remaining = 0;
    double weight = 1;
    double cap = kNoCap;
    double rate = 0;
    Callback on_complete;
  };

  Job* find(JobId id);
  /// Advances remaining work to sim.now() at current rates.
  void advance();
  /// Recomputes fair-share rates (when dirty) and reschedules the next
  /// completion.
  void rebalance();
  /// Single-pass rate assignment + completion scan for the common case
  /// where no per-job cap binds; falls back to the general water-filling.
  void recompute_and_schedule();
  void recompute_rates();
  void schedule_next_completion();
  void fire_completions();
  void release_slot(std::uint32_t slot);

  Simulation& sim_;
  double capacity_;
  std::string name_;
  std::vector<Job> slots_;
  std::vector<std::uint32_t> free_slots_;
  /// Active slots in submission (= ascending id) order: deterministic
  /// iteration for fair sharing and completion callbacks.
  std::vector<std::uint32_t> order_;
  std::vector<std::uint32_t> open_scratch_;  ///< water-filling workspace
  SimTime last_advance_ = 0;
  EventId completion_event_ = kNoEvent;
  std::uint64_t next_seq_ = 0;
  bool rates_dirty_ = false;
  /// Running sum of active weights. Appending a job extends the left-to-
  /// right summation over order_, so the cached value stays bit-identical
  /// to a fresh resum; any removal or weight change invalidates it.
  double sum_w_cache_ = 0;
  bool sum_w_valid_ = false;
};

}  // namespace sf::sim
