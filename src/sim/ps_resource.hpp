#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "sim/simulation.hpp"
#include "sim/types.hpp"

namespace sf::sim {

/// Weighted processor-sharing server with per-job rate caps.
///
/// Models any capacity that is divided among concurrent consumers:
///   * a node's CPU (capacity = #cores, per-task cap = threads it can use,
///     cgroup quota = a lower cap),
///   * a NIC or disk (capacity = bandwidth).
///
/// Rates follow weighted max-min fairness ("water-filling"): each active job
/// i receives rate_i = min(cap_i, lambda * weight_i) with lambda chosen so
/// the rates sum to min(capacity, sum of caps). Whenever the job set or a
/// cap changes, remaining work is advanced at the old rates and the next
/// completion event is rescheduled — the classic PS discrete-event pattern.
class PsResource {
 public:
  using JobId = std::uint64_t;
  using Callback = std::function<void()>;

  PsResource(Simulation& sim, double capacity, std::string name = "ps");

  PsResource(const PsResource&) = delete;
  PsResource& operator=(const PsResource&) = delete;

  /// Adds a job with `work` units to process. `on_complete` fires when the
  /// job finishes. `rate_cap` bounds the job's share (e.g. 1.0 core for a
  /// single-threaded task); `weight` skews fair sharing (cgroup cpu-shares).
  JobId submit(double work, Callback on_complete, double rate_cap = kNoCap,
               double weight = 1.0);

  /// Removes a job without completing it. Returns true iff it was active.
  bool cancel(JobId id);

  /// Changes a job's rate cap (dynamic cgroup quota change).
  /// Returns false when the job is no longer active.
  bool set_rate_cap(JobId id, double rate_cap);

  /// Changes total capacity (e.g. node CPU hot-plug in tests).
  void set_capacity(double capacity);

  [[nodiscard]] double capacity() const { return capacity_; }
  [[nodiscard]] std::size_t active_jobs() const { return jobs_.size(); }

  /// Remaining work for an active job (advanced to now); -1 when inactive.
  [[nodiscard]] double remaining(JobId id);

  /// The job's current service rate; -1 when inactive.
  [[nodiscard]] double current_rate(JobId id);

  /// Aggregate rate currently being delivered to all jobs.
  [[nodiscard]] double utilization() const;

  [[nodiscard]] const std::string& name() const { return name_; }

  static constexpr double kNoCap = 1e300;

 private:
  struct Job {
    double remaining = 0;
    double weight = 1;
    double cap = kNoCap;
    double rate = 0;
    Callback on_complete;
  };

  /// Advances remaining work to sim.now() at current rates.
  void advance();
  /// Recomputes fair-share rates and reschedules the next completion.
  void rebalance();
  void fire_completions();

  Simulation& sim_;
  double capacity_;
  std::string name_;
  std::map<JobId, Job> jobs_;  // ordered: deterministic iteration
  SimTime last_advance_ = 0;
  EventId completion_event_ = kNoEvent;
  JobId next_id_ = 1;
};

}  // namespace sf::sim
