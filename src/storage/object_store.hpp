#pragma once

#include <functional>
#include <map>
#include <string>

#include "cluster/cluster.hpp"
#include "storage/volume.hpp"

namespace sf::storage {

/// Minio-like S3 object store hosted on one node, reached over HTTP.
/// Implements the paper's third data strategy ("using a storage service
/// like Minio", Section V-E): workflow wrappers PUT inputs, serverless
/// functions GET them and PUT outputs back.
class ObjectStore {
 public:
  static constexpr net::Port kPort = 9000;

  ObjectStore(cluster::Cluster& cluster, cluster::Node& server);

  ObjectStore(const ObjectStore&) = delete;
  ObjectStore& operator=(const ObjectStore&) = delete;

  [[nodiscard]] cluster::Node& server() { return server_; }

  /// PUT an object from `client`. `on_done(ok)`.
  void put(net::NodeId client, const std::string& bucket,
           const std::string& key, double bytes,
           std::function<void(bool ok)> on_done);

  /// GET an object to `client`. `on_done(ok, bytes)`.
  void get(net::NodeId client, const std::string& bucket,
           const std::string& key,
           std::function<void(bool ok, double bytes)> on_done);

  /// DELETE; `on_done(existed)`.
  void remove(net::NodeId client, const std::string& bucket,
              const std::string& key, std::function<void(bool)> on_done);

  [[nodiscard]] bool contains(const std::string& bucket,
                              const std::string& key) const {
    return objects_.contains(bucket + "/" + key);
  }
  [[nodiscard]] std::size_t object_count() const { return objects_.size(); }

 private:
  void install_handler();

  cluster::Cluster& cluster_;
  cluster::Node& server_;
  std::map<std::string, double> objects_;  // "bucket/key" → bytes
};

}  // namespace sf::storage
