#include "storage/replica_catalog.hpp"

#include <algorithm>

namespace sf::storage {

void ReplicaCatalog::register_replica(const std::string& lfn,
                                      Volume& volume) {
  const sim::ObjectId id = names_.intern(lfn);
  if (id >= replicas_.size()) replicas_.resize(id + 1);
  auto& vols = replicas_[id];
  if (std::find(vols.begin(), vols.end(), &volume) != vols.end()) return;
  if (vols.empty()) ++non_empty_;
  vols.push_back(&volume);
}

bool ReplicaCatalog::deregister_replica(const std::string& lfn,
                                        const Volume& volume) {
  if (!names_.contains(lfn)) return false;
  const sim::ObjectId id = names_.lookup(lfn);
  if (id >= replicas_.size()) return false;
  auto& vols = replicas_[id];
  auto pos = std::find(vols.begin(), vols.end(), &volume);
  if (pos == vols.end()) return false;
  vols.erase(pos);
  if (vols.empty()) --non_empty_;  // last replica gone: entry removed
  return true;
}

std::vector<Volume*> ReplicaCatalog::lookup(const std::string& lfn) const {
  if (!names_.contains(lfn)) return {};
  const sim::ObjectId id = names_.lookup(lfn);
  return id < replicas_.size() ? replicas_[id] : std::vector<Volume*>{};
}

Volume* ReplicaCatalog::primary(const std::string& lfn) const {
  if (!names_.contains(lfn)) return nullptr;
  return primary_by_id(names_.lookup(lfn));
}

}  // namespace sf::storage
