#include "storage/replica_catalog.hpp"

#include <algorithm>

namespace sf::storage {

void ReplicaCatalog::register_replica(const std::string& lfn,
                                      Volume& volume) {
  auto& vols = replicas_[lfn];
  if (std::find(vols.begin(), vols.end(), &volume) == vols.end()) {
    vols.push_back(&volume);
  }
}

bool ReplicaCatalog::deregister_replica(const std::string& lfn,
                                        const Volume& volume) {
  auto it = replicas_.find(lfn);
  if (it == replicas_.end()) return false;
  auto& vols = it->second;
  auto pos = std::find(vols.begin(), vols.end(), &volume);
  if (pos == vols.end()) return false;
  vols.erase(pos);
  if (vols.empty()) replicas_.erase(it);
  return true;
}

std::vector<Volume*> ReplicaCatalog::lookup(const std::string& lfn) const {
  auto it = replicas_.find(lfn);
  return it == replicas_.end() ? std::vector<Volume*>{} : it->second;
}

Volume* ReplicaCatalog::primary(const std::string& lfn) const {
  auto it = replicas_.find(lfn);
  return (it == replicas_.end() || it->second.empty()) ? nullptr
                                                       : it->second.front();
}

}  // namespace sf::storage
