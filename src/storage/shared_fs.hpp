#pragma once

#include <functional>
#include <string>

#include "cluster/cluster.hpp"
#include "storage/volume.hpp"

namespace sf::storage {

/// NFS-like shared filesystem: one server node exports a volume that every
/// cluster node can read and write over the network. This is the paper's
/// alternative data strategy ("files stored in a location accessible to the
/// function, such as a shared file system", Section III-C) and one arm of
/// the data-movement ablation.
class SharedFileSystem {
 public:
  SharedFileSystem(cluster::Cluster& cluster, cluster::Node& server,
                   std::string export_name = "nfs");

  SharedFileSystem(const SharedFileSystem&) = delete;
  SharedFileSystem& operator=(const SharedFileSystem&) = delete;

  [[nodiscard]] cluster::Node& server() { return backing_.node(); }
  [[nodiscard]] bool contains(const std::string& lfn) const {
    return backing_.contains(lfn);
  }
  [[nodiscard]] std::optional<FileRef> stat(const std::string& lfn) const {
    return backing_.stat(lfn);
  }

  /// Client write: network transfer client→server, then server disk write.
  /// Local clients (client == server) skip the network.
  void write(net::NodeId client, const FileRef& file,
             std::function<void()> on_done);

  /// Client read: server disk read, then transfer server→client.
  void read(net::NodeId client, const std::string& lfn,
            std::function<void(bool found, FileRef file)> on_done);

  /// Seeds a file without simulated cost.
  void put_instant(const FileRef& file) { backing_.put_instant(file); }

  bool remove(const std::string& lfn) { return backing_.remove(lfn); }

  [[nodiscard]] std::size_t file_count() const {
    return backing_.file_count();
  }

 private:
  cluster::Cluster& cluster_;
  Volume backing_;
};

}  // namespace sf::storage
