#include "storage/shared_fs.hpp"

#include <utility>

namespace sf::storage {

SharedFileSystem::SharedFileSystem(cluster::Cluster& cluster,
                                   cluster::Node& server,
                                   std::string export_name)
    : cluster_(cluster), backing_(server, std::move(export_name)) {}

void SharedFileSystem::write(net::NodeId client, const FileRef& file,
                             std::function<void()> on_done) {
  const net::NodeId server_id = backing_.node().net_id();
  if (client == server_id) {
    backing_.write(file, std::move(on_done));
    return;
  }
  cluster_.network().transfer(
      client, server_id, file.bytes,
      [this, file, cb = std::move(on_done)]() mutable {
        backing_.write(file, std::move(cb));
      });
}

void SharedFileSystem::read(net::NodeId client, const std::string& lfn,
                            std::function<void(bool, FileRef)> on_done) {
  const net::NodeId server_id = backing_.node().net_id();
  backing_.read(lfn, [this, client, server_id, cb = std::move(on_done)](
                         bool found, FileRef file) mutable {
    if (!found || client == server_id) {
      cb(found, std::move(file));
      return;
    }
    cluster_.network().transfer(server_id, client, file.bytes,
                                [cb = std::move(cb), file]() mutable {
                                  cb(true, std::move(file));
                                });
  });
}

}  // namespace sf::storage
