#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>

#include "cluster/node.hpp"

namespace sf::storage {

/// A logical file: name plus size. The simulation tracks metadata only —
/// actual contents live in typed payloads where needed.
struct FileRef {
  std::string lfn;  ///< logical file name
  double bytes = 0;

  friend bool operator==(const FileRef&, const FileRef&) = default;
};

/// A directory-like file store on one node's local disk. Reads and writes
/// pay the node's disk bandwidth; `put_instant` seeds pre-existing data
/// (e.g. the workflow's initial input matrices on the submit node).
class Volume {
 public:
  Volume(cluster::Node& node, std::string name);

  Volume(const Volume&) = delete;
  Volume& operator=(const Volume&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] cluster::Node& node() { return node_; }
  [[nodiscard]] const cluster::Node& node() const { return node_; }

  [[nodiscard]] bool contains(const std::string& lfn) const {
    return files_.contains(lfn);
  }
  [[nodiscard]] std::optional<FileRef> stat(const std::string& lfn) const;
  [[nodiscard]] std::size_t file_count() const { return files_.size(); }
  [[nodiscard]] double total_bytes() const;

  /// Writes a file, paying disk bandwidth. Overwrites silently.
  void write(const FileRef& file, std::function<void()> on_done);

  /// Reads a file, paying disk bandwidth. `on_done(found, file)`; when the
  /// file is absent, fires immediately with found=false.
  void read(const std::string& lfn,
            std::function<void(bool found, FileRef file)> on_done);

  /// Bookkeeping-only insertion (no simulated I/O cost).
  void put_instant(const FileRef& file) { files_[file.lfn] = file.bytes; }

  /// Removes a file; returns true iff it existed.
  bool remove(const std::string& lfn) { return files_.erase(lfn) > 0; }

 private:
  cluster::Node& node_;
  std::string name_;
  std::map<std::string, double> files_;
};

/// Copies `lfn` from `src` to `dst`: source disk read, network transfer,
/// destination disk write, in sequence. `on_done(ok)` fires with ok=false
/// when the source lacks the file.
void stage_file(net::FlowNetwork& network, Volume& src, Volume& dst,
                const std::string& lfn, std::function<void(bool ok)> on_done);

}  // namespace sf::storage
