#include "storage/object_store.hpp"

#include <utility>

namespace sf::storage {

namespace {
struct ObjectRequest {
  std::string op;  // "put" | "get" | "delete"
  std::string bucket;
  std::string key;
};
}  // namespace

ObjectStore::ObjectStore(cluster::Cluster& cluster, cluster::Node& server)
    : cluster_(cluster), server_(server) {
  install_handler();
}

void ObjectStore::install_handler() {
  cluster_.http().listen(
      server_.net_id(), kPort,
      [this](const net::HttpRequest& req, net::Responder respond) {
        const auto& obj = std::any_cast<const ObjectRequest&>(req.body);
        const std::string id = obj.bucket + "/" + obj.key;
        if (obj.op == "put") {
          // Persist to the server's disk before acknowledging.
          server_.disk_io(req.body_bytes, [this, id, bytes = req.body_bytes,
                                           respond = std::move(respond)] {
            objects_[id] = bytes;
            respond(net::HttpResponse{});
          });
        } else if (obj.op == "get") {
          auto it = objects_.find(id);
          if (it == objects_.end()) {
            net::HttpResponse resp;
            resp.status = 404;
            respond(std::move(resp));
            return;
          }
          server_.disk_io(it->second, [bytes = it->second,
                                       respond = std::move(respond)] {
            net::HttpResponse resp;
            resp.body_bytes = bytes;
            respond(std::move(resp));
          });
        } else {  // delete
          net::HttpResponse resp;
          resp.status = objects_.erase(id) > 0 ? 204 : 404;
          respond(std::move(resp));
        }
      });
}

void ObjectStore::put(net::NodeId client, const std::string& bucket,
                      const std::string& key, double bytes,
                      std::function<void(bool)> on_done) {
  net::HttpRequest req;
  req.method = "PUT";
  req.body = ObjectRequest{"put", bucket, key};
  req.body_bytes = bytes;
  cluster_.http().request(client, server_.net_id(), kPort, std::move(req),
                          [cb = std::move(on_done)](net::HttpResponse resp) {
                            cb(resp.ok());
                          });
}

void ObjectStore::get(net::NodeId client, const std::string& bucket,
                      const std::string& key,
                      std::function<void(bool, double)> on_done) {
  net::HttpRequest req;
  req.method = "GET";
  req.body = ObjectRequest{"get", bucket, key};
  cluster_.http().request(client, server_.net_id(), kPort, std::move(req),
                          [cb = std::move(on_done)](net::HttpResponse resp) {
                            cb(resp.ok(), resp.body_bytes);
                          });
}

void ObjectStore::remove(net::NodeId client, const std::string& bucket,
                         const std::string& key,
                         std::function<void(bool)> on_done) {
  net::HttpRequest req;
  req.method = "DELETE";
  req.body = ObjectRequest{"delete", bucket, key};
  cluster_.http().request(client, server_.net_id(), kPort, std::move(req),
                          [cb = std::move(on_done)](net::HttpResponse resp) {
                            cb(resp.status == 204);
                          });
}

}  // namespace sf::storage
