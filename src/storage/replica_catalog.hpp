#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "sim/interner.hpp"
#include "storage/volume.hpp"

namespace sf::storage {

/// Pegasus-style replica catalog: maps a logical file name to the volumes
/// that hold a physical copy. The planner consults it to decide where
/// stage-in jobs fetch inputs from, and registers workflow outputs back.
///
/// Storage is interned-id keyed and dense (the PR 6 scale regime): the
/// catalog owns a private Interner mapping lfn → dense ObjectId, and the
/// replica lists live in a flat vector indexed by that id. Lookups on the
/// hot planner path are one hash of the lfn plus one vector index instead
/// of a red-black-tree walk over full string comparisons; repeated
/// lookups via id_of()/primary_by_id() skip the hash too.
///
/// Deregistering the last replica of an lfn removes the entry: has()
/// turns false and entry_count() drops. (The id slot itself is retained —
/// interned ids are append-only — but an empty slot is not an entry, so
/// the catalog can never over-report entries or hand out a "present" lfn
/// with no replicas behind it.)
class ReplicaCatalog {
 public:
  void register_replica(const std::string& lfn, Volume& volume);

  /// Removes one volume's replica entry. Returns true iff present.
  bool deregister_replica(const std::string& lfn, const Volume& volume);

  /// All volumes currently holding `lfn` (may be empty).
  [[nodiscard]] std::vector<Volume*> lookup(const std::string& lfn) const;

  /// The first registered replica, or nullptr.
  [[nodiscard]] Volume* primary(const std::string& lfn) const;

  [[nodiscard]] bool has(const std::string& lfn) const {
    return primary(lfn) != nullptr;
  }

  /// Lfns with at least one live replica.
  [[nodiscard]] std::size_t entry_count() const { return non_empty_; }

  // ---- Interned fast path -------------------------------------------

  /// Dense id of `lfn`, or sim::kEmptyId when it was never registered.
  /// Ids are assigned in first-registration order and stay valid for the
  /// catalog's lifetime — cache one and use primary_by_id() to skip the
  /// string hash on repeated lookups.
  [[nodiscard]] sim::ObjectId id_of(std::string_view lfn) const {
    return names_.lookup(lfn);
  }

  [[nodiscard]] Volume* primary_by_id(sim::ObjectId id) const {
    if (id == sim::kEmptyId || id >= replicas_.size()) return nullptr;
    const auto& vols = replicas_[id];
    return vols.empty() ? nullptr : vols.front();
  }

  /// Spelling of an id handed out by id_of() (debug/trace path).
  [[nodiscard]] std::string_view name_of(sim::ObjectId id) const {
    return names_.name(id);
  }

 private:
  sim::Interner names_;                         // lfn → dense id
  std::vector<std::vector<Volume*>> replicas_;  // indexed by ObjectId
  std::size_t non_empty_ = 0;
};

}  // namespace sf::storage
