#pragma once

#include <map>
#include <string>
#include <vector>

#include "storage/volume.hpp"

namespace sf::storage {

/// Pegasus-style replica catalog: maps a logical file name to the volumes
/// that hold a physical copy. The planner consults it to decide where
/// stage-in jobs fetch inputs from, and registers workflow outputs back.
class ReplicaCatalog {
 public:
  void register_replica(const std::string& lfn, Volume& volume);

  /// Removes one volume's replica entry. Returns true iff present.
  bool deregister_replica(const std::string& lfn, const Volume& volume);

  /// All volumes currently holding `lfn` (may be empty).
  [[nodiscard]] std::vector<Volume*> lookup(const std::string& lfn) const;

  /// The first registered replica, or nullptr.
  [[nodiscard]] Volume* primary(const std::string& lfn) const;

  [[nodiscard]] bool has(const std::string& lfn) const {
    auto it = replicas_.find(lfn);
    return it != replicas_.end() && !it->second.empty();
  }

  [[nodiscard]] std::size_t entry_count() const { return replicas_.size(); }

 private:
  std::map<std::string, std::vector<Volume*>> replicas_;
};

}  // namespace sf::storage
