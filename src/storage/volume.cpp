#include "storage/volume.hpp"

#include <utility>

namespace sf::storage {

Volume::Volume(cluster::Node& node, std::string name)
    : node_(node), name_(std::move(name)) {}

std::optional<FileRef> Volume::stat(const std::string& lfn) const {
  auto it = files_.find(lfn);
  if (it == files_.end()) return std::nullopt;
  return FileRef{it->first, it->second};
}

double Volume::total_bytes() const {
  double total = 0;
  for (const auto& [lfn, bytes] : files_) total += bytes;
  return total;
}

void Volume::write(const FileRef& file, std::function<void()> on_done) {
  node_.disk_io(file.bytes, [this, file, cb = std::move(on_done)] {
    files_[file.lfn] = file.bytes;
    if (cb) cb();
  });
}

void Volume::read(const std::string& lfn,
                  std::function<void(bool, FileRef)> on_done) {
  auto it = files_.find(lfn);
  if (it == files_.end()) {
    node_.disk_io(0, [cb = std::move(on_done), lfn] {
      cb(false, FileRef{lfn, 0});
    });
    return;
  }
  const FileRef file{it->first, it->second};
  node_.disk_io(file.bytes, [cb = std::move(on_done), file] {
    cb(true, file);
  });
}

void stage_file(net::FlowNetwork& network, Volume& src, Volume& dst,
                const std::string& lfn,
                std::function<void(bool)> on_done) {
  src.read(lfn, [&network, &src, &dst, cb = std::move(on_done)](
                    bool found, FileRef file) mutable {
    if (!found) {
      cb(false);
      return;
    }
    network.transfer(src.node().net_id(), dst.node().net_id(), file.bytes,
                     [&dst, file, cb = std::move(cb)]() mutable {
                       dst.write(file, [cb = std::move(cb)]() mutable {
                         cb(true);
                       });
                     });
  });
}

}  // namespace sf::storage
