#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/testbed.hpp"
#include "fault/injector.hpp"

namespace sf::check {

/// One recorded invariant failure.
struct Violation {
  double time = 0;         ///< sim time of the check that caught it
  std::string invariant;   ///< registry name, e.g. "condor.claims"
  std::string detail;      ///< what exactly drifted
};

/// Knobs for the invariant checker.
struct CheckConfig {
  /// Sim-time cadence between sweeps of the registry.
  double interval_s = 5.0;
  /// Cadence events chain themselves only up to this sim time: past it
  /// the checker goes quiet and stops keeping the event queue non-empty.
  /// (Quiesce checks still run whenever check_quiesce() is called.)
  double horizon_s = 3600.0;
  /// Throw CheckFailure on the first violation instead of collecting —
  /// the fail-fast mode for tests that want a stack right at the bug.
  bool throw_on_violation = false;
  /// Stop recording after this many violations (a broken conservation law
  /// fires on every sweep; the first few are what matter).
  std::size_t max_violations = 64;
};

/// Thrown in throw_on_violation mode.
class CheckFailure : public std::runtime_error {
 public:
  explicit CheckFailure(const std::string& what) : std::runtime_error(what) {}
};

/// Deterministic-simulation invariant registry: a catalogue of cheap
/// cross-stack conservation laws evaluated against a PaperTestbed at a
/// configurable sim-time cadence and at quiesce.
///
/// Cadence invariants must hold at EVERY instant the simulation can pause
/// (mid-crash, mid-rollout, mid-partition); quiesce invariants only once
/// the workload is done, every fault window has healed and the control
/// loops have settled.
///
/// Wiring: construct against the testbed, optionally attach_injector(),
/// then arm(). arm() installs the testbed's quiesce probe and schedules
/// the first cadence event; nothing constructed ⇒ nothing scheduled ⇒
/// exactly zero overhead when checking is off (the structural
/// "zero-overhead-when-off flag"). The checker never mutates simulation
/// state, draws randomness, or schedules anything except its own cadence
/// chain — goldens cannot drift from enabling it.
class InvariantChecker {
 public:
  /// A probe appends one message per violation it finds.
  using Probe = std::function<void(std::vector<std::string>&)>;
  /// A counting probe additionally returns how many subjects (nodes,
  /// pods, claims, ...) it actually examined — the registry's proof that
  /// an invariant is not passing vacuously over empty state.
  using CountingProbe = std::function<std::uint64_t(std::vector<std::string>&)>;

  /// Per-invariant activity counters, in registration order.
  struct InvariantStats {
    std::string name;
    bool quiesce_only = false;
    std::uint64_t evaluations = 0;  ///< sweeps that ran this probe (armed)
    std::uint64_t exercised = 0;    ///< cumulative subjects examined
    std::uint64_t violations = 0;   ///< violations this probe reported
  };

  explicit InvariantChecker(core::PaperTestbed& testbed,
                            CheckConfig config = {});

  InvariantChecker(const InvariantChecker&) = delete;
  InvariantChecker& operator=(const InvariantChecker&) = delete;

  /// Adds the fault-injector invariants (depth counters restore to zero,
  /// every window healed at quiesce). Call before arm().
  void attach_injector(const fault::FaultInjector& injector);

  /// Registers an extra invariant. quiesce_only probes run only from
  /// check_quiesce(). Plain probes count one exercised subject per
  /// evaluation; use the CountingProbe overload to report real subject
  /// counts (what the vacuity audit keys on).
  void add_invariant(std::string name, Probe probe, bool quiesce_only = false);
  void add_counted_invariant(std::string name, CountingProbe probe,
                             bool quiesce_only = false);

  /// Installs the testbed quiesce probe and starts the cadence chain.
  /// Idempotent.
  void arm();

  /// Sweeps the cadence invariants now.
  void check_now();
  /// Sweeps everything, including the quiesce-only invariants. The caller
  /// must have settled the simulation first: workload complete and every
  /// fault window past its heal time.
  void check_quiesce();

  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }
  [[nodiscard]] bool ok() const { return violations_.empty(); }
  /// Registry sweeps performed (cadence + quiesce).
  [[nodiscard]] std::uint64_t sweeps() const { return sweeps_; }
  /// Individual invariant evaluations performed.
  [[nodiscard]] std::uint64_t evaluations() const { return evaluations_; }
  /// Per-invariant armed/exercised/violation counters, in registration
  /// order. An entry with `exercised == 0` passed vacuously: its probe
  /// never saw a subject, so the run proved nothing about it.
  [[nodiscard]] std::vector<InvariantStats> per_invariant() const;
  /// One line per violation, for test failure messages.
  [[nodiscard]] std::string report() const;

 private:
  struct Entry {
    std::string name;
    CountingProbe probe;
    bool quiesce_only = false;
    std::uint64_t evaluations = 0;
    std::uint64_t exercised = 0;
    std::uint64_t violations = 0;
  };

  void register_builtins();
  void sweep(bool quiesce);
  void chain_cadence();

  core::PaperTestbed& tb_;
  CheckConfig config_;
  const fault::FaultInjector* injector_ = nullptr;
  std::vector<Entry> entries_;
  std::vector<Violation> violations_;
  std::uint64_t sweeps_ = 0;
  std::uint64_t evaluations_ = 0;
  bool armed_ = false;
};

}  // namespace sf::check
