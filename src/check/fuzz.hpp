#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sf::check {

/// One point in the property-fuzzer's search space: everything that
/// shapes a run — testbed seed, topology, workload shape, provisioning,
/// and the twelve fault-channel intensities — in one flat, plain-old-data
/// struct. Flat on purpose: the shrinker reduces it field by field, and
/// to_cpp_repro() prints it as a pasteable regression test.
struct FuzzCase {
  std::uint64_t id = 0;  ///< sweep point index (provenance only)
  std::uint64_t seed = 42;              ///< testbed / workload RNG seed
  std::uint64_t fault_seed = 0xC4405EEDull;  ///< fault-plan RNG seed

  // -- topology & workload shape --------------------------------------
  int nodes = 4;      ///< cluster size (node 0 = head)
  int racks = 1;      ///< fault-plan rack topology
  int workflows = 1;  ///< concurrent matmul chains
  int tasks = 3;      ///< tasks per chain
  int dag_retries = 4;

  // -- provisioning ---------------------------------------------------
  /// Fraction of tasks running as serverless functions (rest native).
  double serverless_fraction = 0.5;
  bool prestage = true;  ///< pre-staged images + warm pods vs deferred
  int min_scale = 1;     ///< warm pods when prestaged
  double request_timeout_s = 30;  ///< queue-proxy deadline; 0 = none
  /// Resilience axis: turns on passive outlier ejection plus the
  /// router's per-attempt deadline for the matmul function — the data
  /// plane's answer to gray failures (cpu_slow / flaky_nic / one-way
  /// partitions). Fuzzes the ejection filter, probation re-admission
  /// and the ejection-cap invariant against every fault channel.
  bool outlier_detection = false;
  /// Metadata-tier axis: stands up the catalog service + client, so
  /// stage-in/stage-out resolve over the wire through the TTL cache /
  /// retry / breaker / stale-read stack. The catalog_outage channel only
  /// bites when this is on (otherwise its events are skipped).
  bool catalog_service = false;

  // -- open-loop traffic axis (0 users = off) ---------------------------
  /// When positive, a dedicated warm KService ("fn-open") takes Poisson
  /// request streams from this many independent open-loop users while
  /// the DAG mix runs — ambient serving load riding the same faults. The
  /// engine must drain (every issued request answered) before quiesce.
  int openloop_users = 0;
  double openloop_rate_hz = 0;  ///< per-user arrival rate when on

  // -- fault plan -----------------------------------------------------
  double horizon_s = 300;  ///< fault-plan window [0, horizon)
  /// Channel mean inter-arrival times; 0 = channel off. Forked RNG
  /// streams per channel mean zeroing one never perturbs the others —
  /// what makes the shrinker's channel bisection meaningful.
  double node_crash_mean_s = 0;
  double pull_outage_mean_s = 0;
  double pod_kill_mean_s = 0;
  double degrade_mean_s = 0;
  double partition_mean_s = 0;
  double rack_fail_mean_s = 0;
  double rack_partition_mean_s = 0;
  double deploy_storm_mean_s = 0;
  double cpu_slow_mean_s = 0;
  double flaky_nic_mean_s = 0;
  double oneway_partition_mean_s = 0;
  double catalog_outage_mean_s = 0;

  /// TEST-ONLY mutation hook: plants the "keep claims on startd crash"
  /// bug in the condor pool, proving the invariant registry detects it.
  bool plant_claim_leak = false;
};

/// Name → member mapping for the fault channels (shrinker, repro
/// printer, drivers that report which channels a case exercises).
struct ChannelRef {
  const char* name;
  double FuzzCase::*member;
};
[[nodiscard]] const std::vector<ChannelRef>& fuzz_channels();

/// Draws case `index` of the sweep rooted at `base_seed`: every field
/// comes from a forked SplitMix64 stream, so the same (base_seed, index)
/// is the same case forever, on any platform.
[[nodiscard]] FuzzCase random_case(std::uint64_t base_seed,
                                   std::uint64_t index);

/// Per-invariant activity from one run: how often the registry evaluated
/// the invariant and how many subjects it examined in total. `exercised
/// == 0` means the invariant passed vacuously in this run.
struct InvariantActivity {
  std::string name;
  std::uint64_t evaluations = 0;
  std::uint64_t exercised = 0;
};

/// What one fuzz point produced.
struct FuzzOutcome {
  bool ok = false;        ///< all properties held
  bool finished = false;  ///< every DAG reported in before the deadline
  bool succeeded = false; ///< every workflow succeeded (informational —
                          ///< heavy fault plans may legitimately exhaust
                          ///< retries; that is not a property violation)
  bool replayed = false;      ///< run_case_checked ran the point twice
  bool replay_match = true;   ///< fingerprints of both runs agreed
  std::uint64_t fingerprint = 0;  ///< order-sensitive run digest
  std::size_t violation_count = 0;
  double slowest = 0;  ///< slowest workflow makespan, seconds
  std::uint64_t openloop_issued = 0;  ///< open-loop requests fired (axis on)
  std::string detail;  ///< first failure, empty when ok
  /// Registry activity, in registration order (the vacuity audit the
  /// fuzzer aggregates across its sweep).
  std::vector<InvariantActivity> invariants;
};

/// Runs one case to quiesce under the invariant registry and the
/// terminal properties (workload accounted for, makespan finite,
/// registry clean).
[[nodiscard]] FuzzOutcome run_case(const FuzzCase& c);

/// run_case twice; additionally requires bit-identical fingerprints
/// (the determinism property).
[[nodiscard]] FuzzOutcome run_case_checked(const FuzzCase& c);

/// Shrinker output: the reduced case, its (still failing) outcome, and
/// how many trial runs the search spent.
struct ShrinkResult {
  FuzzCase reduced;
  FuzzOutcome outcome;
  int trials = 0;
};

/// Greedy reduction of a failing case toward defaults: fault-channel
/// bisection first (halves, then single channels), then structural
/// fields, then horizon bisection, then per-channel mean doubling
/// (fewer fault events). Every accepted step re-verifies the failure,
/// so the result is guaranteed to still fail.
[[nodiscard]] ShrinkResult shrink(const FuzzCase& failing, int budget = 150);

/// Renders the case as a ready-to-paste gtest regression test.
[[nodiscard]] std::string to_cpp_repro(const FuzzCase& c);

}  // namespace sf::check
