#include "check/fuzz.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "check/invariants.hpp"
#include "container/image.hpp"
#include "core/testbed.hpp"
#include "fault/injector.hpp"
#include "fault/splitmix.hpp"
#include "metrics/ternary.hpp"
#include "workload/open_loop.hpp"

namespace sf::check {

namespace {

using fault::SplitMix64;

// Field tags for random_case's forked streams. Adding a field means
// adding a tag; existing fields keep their draws, so old (base, index)
// cases stay stable under extension.
enum : std::uint64_t {
  kTagSeed = 0x01,
  kTagFaultSeed = 0x02,
  kTagNodes = 0x10,
  kTagRacks = 0x11,
  kTagWorkflows = 0x12,
  kTagTasks = 0x13,
  kTagServerless = 0x14,
  kTagPrestage = 0x15,
  kTagMinScale = 0x16,
  kTagTimeout = 0x17,
  kTagHorizon = 0x18,
  kTagOpenLoopUsers = 0x20,
  kTagOpenLoopRate = 0x21,
  kTagOutlier = 0x22,
  kTagCatalog = 0x23,
  kTagChannelBase = 0xA1,  // one stream per channel, 0xA1..0xAC
};

/// Longest time any active fault window needs to heal after the plan
/// horizon — the settle pad before quiesce invariants may be asserted.
double max_heal_window(const fault::FaultConfig& fc, int nodes) {
  double m = 0;
  if (fc.node_crash_mean_s > 0) m = std::max(m, fc.node_downtime_s);
  if (fc.pull_outage_mean_s > 0) m = std::max(m, fc.pull_outage_duration_s);
  if (fc.degrade_mean_s > 0) m = std::max(m, fc.degrade_duration_s);
  if (fc.partition_mean_s > 0) m = std::max(m, fc.partition_duration_s);
  if (fc.rack_fail_mean_s > 0) {
    m = std::max(m, fc.rack_fail_downtime_s +
                        fc.rack_fail_stagger_s * static_cast<double>(nodes));
  }
  if (fc.rack_partition_mean_s > 0) {
    m = std::max(m, fc.rack_partition_duration_s);
  }
  if (fc.deploy_storm_mean_s > 0) {
    m = std::max(m, fc.deploy_storm_outage_s + fc.deploy_storm_spread_s);
  }
  if (fc.cpu_slow_mean_s > 0) m = std::max(m, fc.cpu_slow_duration_s);
  if (fc.flaky_nic_mean_s > 0) m = std::max(m, fc.flaky_nic_duration_s);
  if (fc.oneway_partition_mean_s > 0) {
    m = std::max(m, fc.oneway_partition_duration_s);
  }
  if (fc.catalog_outage_mean_s > 0) {
    m = std::max(m, fc.catalog_outage_duration_s);
  }
  return m;
}

fault::FaultConfig fault_config_for(const FuzzCase& c) {
  fault::FaultConfig fc;
  fc.horizon_s = c.horizon_s;
  fc.racks = static_cast<std::uint32_t>(c.racks);
  fc.node_crash_mean_s = c.node_crash_mean_s;
  fc.pull_outage_mean_s = c.pull_outage_mean_s;
  fc.pod_kill_mean_s = c.pod_kill_mean_s;
  fc.degrade_mean_s = c.degrade_mean_s;
  fc.partition_mean_s = c.partition_mean_s;
  fc.rack_fail_mean_s = c.rack_fail_mean_s;
  fc.rack_partition_mean_s = c.rack_partition_mean_s;
  fc.deploy_storm_mean_s = c.deploy_storm_mean_s;
  fc.cpu_slow_mean_s = c.cpu_slow_mean_s;
  fc.flaky_nic_mean_s = c.flaky_nic_mean_s;
  fc.oneway_partition_mean_s = c.oneway_partition_mean_s;
  fc.catalog_outage_mean_s = c.catalog_outage_mean_s;
  return fc;
}

}  // namespace

const std::vector<ChannelRef>& fuzz_channels() {
  static const std::vector<ChannelRef> channels = {
      {"node_crash_mean_s", &FuzzCase::node_crash_mean_s},
      {"pull_outage_mean_s", &FuzzCase::pull_outage_mean_s},
      {"pod_kill_mean_s", &FuzzCase::pod_kill_mean_s},
      {"degrade_mean_s", &FuzzCase::degrade_mean_s},
      {"partition_mean_s", &FuzzCase::partition_mean_s},
      {"rack_fail_mean_s", &FuzzCase::rack_fail_mean_s},
      {"rack_partition_mean_s", &FuzzCase::rack_partition_mean_s},
      {"deploy_storm_mean_s", &FuzzCase::deploy_storm_mean_s},
      {"cpu_slow_mean_s", &FuzzCase::cpu_slow_mean_s},
      {"flaky_nic_mean_s", &FuzzCase::flaky_nic_mean_s},
      {"oneway_partition_mean_s", &FuzzCase::oneway_partition_mean_s},
      {"catalog_outage_mean_s", &FuzzCase::catalog_outage_mean_s},
  };
  return channels;
}

FuzzCase random_case(std::uint64_t base_seed, std::uint64_t index) {
  const std::uint64_t root = SplitMix64::mix(base_seed, index);
  FuzzCase c;
  c.id = index;
  c.seed = SplitMix64::mix(root, kTagSeed);
  c.fault_seed = SplitMix64::mix(root, kTagFaultSeed);

  auto draw = [root](std::uint64_t tag) { return SplitMix64::fork(root, tag); };

  c.nodes = 3 + static_cast<int>(draw(kTagNodes).next_below(3));     // 3..5
  c.racks = 1 + static_cast<int>(draw(kTagRacks).next_below(2));     // 1..2
  c.workflows =
      1 + static_cast<int>(draw(kTagWorkflows).next_below(3));       // 1..3
  c.tasks = 2 + static_cast<int>(draw(kTagTasks).next_below(4));     // 2..5
  c.serverless_fraction =
      0.25 * static_cast<double>(draw(kTagServerless).next_below(5));
  c.prestage = draw(kTagPrestage).next_below(2) == 0;
  c.min_scale = static_cast<int>(draw(kTagMinScale).next_below(3));  // 0..2
  c.request_timeout_s =
      draw(kTagTimeout).next_below(2) == 0 ? 0.0 : 30.0;
  // Resilience axis on roughly a third of cases: the ejection filter and
  // the router deadline must hold up under every fault channel.
  c.outlier_detection = draw(kTagOutlier).next_below(3) == 0;
  // Metadata tier on roughly a third of cases: stage-in/out over the wire
  // through the cache / retry / breaker stack, under every fault channel.
  c.catalog_service = draw(kTagCatalog).next_below(3) == 0;
  c.horizon_s =
      240.0 + 60.0 * static_cast<double>(draw(kTagHorizon).next_below(4));

  // Open-loop ambient traffic on roughly a third of cases: 2..4 users at
  // 0.5/1.0/1.5 Hz each — enough to keep a service busy through the fault
  // plan without dominating the run time.
  auto ol = draw(kTagOpenLoopUsers);
  if (ol.next_below(3) == 0) {
    c.openloop_users = 2 + static_cast<int>(ol.next_below(3));
    c.openloop_rate_hz =
        0.5 + 0.5 * static_cast<double>(draw(kTagOpenLoopRate).next_below(3));
  }

  // Each channel flips on with probability 1/2; when on, its mean lands
  // in [0.3, 1.0] × horizon — a handful of events per run, not a storm.
  const auto& channels = fuzz_channels();
  for (std::size_t i = 0; i < channels.size(); ++i) {
    auto g = draw(kTagChannelBase + i);
    if (g.next_below(2) == 0) continue;
    c.*(channels[i].member) = c.horizon_s * (0.3 + 0.7 * g.next_double());
  }
  return c;
}

FuzzOutcome run_case(const FuzzCase& c) {
  core::TestbedOptions opts;
  opts.node_count = static_cast<std::size_t>(c.nodes);
  opts.dag_retries = c.dag_retries;
  opts.prestage_images = c.prestage;
  // Generous hang wall: any live run finishes well inside it; a run that
  // doesn't has genuinely wedged (lost callback, unreleased claim, ...).
  opts.run_deadline_s = c.horizon_s + 1800.0;
  opts.catalog.enabled = c.catalog_service;
  core::PaperTestbed tb(c.seed, opts);

  const fault::FaultConfig fc = fault_config_for(c);
  fault::FaultInjector injector(tb, fc, c.fault_seed);

  if (c.plant_claim_leak) tb.condor().test_only_keep_claims_on_crash(true);

  const double settle_end = c.horizon_s + max_heal_window(fc, c.nodes) + 300.0;
  CheckConfig cc;
  cc.horizon_s = settle_end;
  InvariantChecker checker(tb, cc);
  checker.attach_injector(injector);
  checker.arm();
  injector.arm();

  core::ProvisioningPolicy policy =
      c.prestage ? core::ProvisioningPolicy::prestaged(c.min_scale)
                 : core::ProvisioningPolicy::deferred();
  policy.container_concurrency = 1;
  policy.request_timeout_s = c.request_timeout_s;
  if (c.outlier_detection) {
    policy.outlier.enabled = true;
    // Short windows relative to the fuzz horizon so ejection *and*
    // probation re-admission both happen inside one run.
    policy.outlier.base_ejection_s = 15.0;
    policy.outlier.max_ejection_s = 60.0;
    policy.route_timeout_s = 12.0;
  }
  tb.register_matmul_function(policy);

  // Open-loop ambient traffic: a dedicated warm KService absorbing
  // Poisson request streams while the DAG mix runs through the same
  // fault plan. The queue-proxy deadline is always on for it so every
  // request resolves (success or error) and the engine provably drains.
  std::unique_ptr<workload::OpenLoopEngine> engine;
  if (c.openloop_users > 0) {
    const container::Image image = container::make_task_image("fn-open");
    tb.registry().push(image);
    if (c.prestage) tb.kube().seed_image_everywhere(image);
    knative::KnServiceSpec spec;
    spec.name = "fn-open";
    spec.container.name = "fn-open";
    spec.container.image = "fn-open:latest";
    spec.container.memory_bytes = 512e6;
    spec.container.boot_s = 0.6;
    spec.container.cpu_limit = 1.0;
    spec.handler = [](const net::HttpRequest& req,
                      knative::FunctionContext& ctx, net::Responder respond) {
      const double work =
          req.body.has_value() ? std::any_cast<double>(req.body) : 0.01;
      ctx.exec(work, [respond = std::move(respond),
                      bytes = req.body_bytes](bool ok) mutable {
        net::HttpResponse resp;
        resp.status = ok ? 200 : 500;
        resp.body_bytes = bytes;
        respond(std::move(resp));
      });
    };
    spec.annotations.min_scale = 1;
    spec.annotations.container_concurrency = 1;
    spec.annotations.request_timeout_s = 30;
    tb.serving().create_service(std::move(spec));

    workload::OpenLoopConfig ol;
    ol.users = c.openloop_users;
    ol.rate_hz = c.openloop_rate_hz;
    ol.horizon_s = std::min(120.0, c.horizon_s / 2);
    ol.services = {"fn-open"};
    ol.work_s = 0.05;
    ol.payload_bytes = 10000;
    ol.seed = SplitMix64::mix(c.seed, 0x09E2);
    engine = std::make_unique<workload::OpenLoopEngine>(
        tb.serving(), tb.cluster().node(0).net_id(), ol);
    engine->start();
  }

  metrics::MixPoint mix;
  mix.native = 1.0 - c.serverless_fraction;
  mix.serverless = c.serverless_fraction;
  const auto result = tb.run_concurrent_mix(c.workflows, c.tasks, mix);

  // Drain the ambient traffic before asserting quiesce: arrivals may
  // outlive the DAG mix, and every issued request must be answered.
  if (engine) {
    const double drain_wall = settle_end + 1800.0;
    while (!engine->quiesced() && tb.sim().has_pending_events() &&
           tb.sim().now() < drain_wall) {
      tb.sim().step();
    }
  }

  // Settle: every fault window past its heal time, autoscalers through
  // their scale-to-zero windows, watch queue drained — then quiesce.
  tb.sim().run_until(std::max(settle_end, tb.sim().now() + 300.0));
  checker.check_quiesce();

  FuzzOutcome out;
  out.finished = result.finished == c.workflows && !result.deadline_hit;
  out.succeeded = result.all_succeeded;
  out.violation_count = checker.violations().size();
  out.slowest = result.slowest;
  const bool drained = engine == nullptr || engine->quiesced();
  if (engine) out.openloop_issued = engine->stats().issued;
  out.ok = out.finished && drained && checker.ok() &&
           std::isfinite(result.slowest);
  for (const auto& inv : checker.per_invariant()) {
    out.invariants.push_back(
        InvariantActivity{inv.name, inv.evaluations, inv.exercised});
  }

  if (!out.finished) {
    out.detail = "workload hung: " + std::to_string(result.finished) + "/" +
                 std::to_string(c.workflows) + " DAGs finished by t=" +
                 std::to_string(tb.sim().now());
  } else if (!drained) {
    out.detail = "open-loop traffic never drained: " +
                 std::to_string(engine->stats().completed) + "/" +
                 std::to_string(engine->stats().issued) +
                 " requests answered by t=" + std::to_string(tb.sim().now());
  } else if (!checker.ok()) {
    const auto& v = checker.violations().front();
    std::ostringstream os;
    os << "invariant " << v.invariant << " at t=" << v.time << ": "
       << v.detail;
    out.detail = os.str();
  } else if (!std::isfinite(result.slowest)) {
    out.detail = "non-finite makespan";
  }

  // Order-sensitive digest of everything observable: two runs of the
  // same case must produce the same chain or determinism is broken.
  std::uint64_t fp = 0x5F3759DF;
  auto fold = [&fp](std::uint64_t v) { fp = SplitMix64::mix(fp, v); };
  fold(std::bit_cast<std::uint64_t>(result.slowest));
  fold(static_cast<std::uint64_t>(result.finished));
  fold(result.all_succeeded ? 1 : 0);
  fold(tb.sim().events_processed());
  fold(std::bit_cast<std::uint64_t>(
      tb.cluster().network().total_bytes_delivered()));
  fold(injector.applied_total());
  fold(tb.serving().cold_start_requests("fn-matmul"));
  fold(tb.serving().route_retries("fn-matmul"));
  fold(tb.serving().ejections("fn-matmul"));
  fold(tb.serving().outlier_guarded_picks());
  fold(tb.kube().api().watch_batches_delivered());
  fold(static_cast<std::uint64_t>(out.violation_count));
  if (engine) fold(engine->fingerprint());
  if (tb.catalog_client() != nullptr) {
    fold(tb.catalog_client()->service_calls());
    fold(tb.catalog_client()->cache_hits());
    fold(tb.catalog_client()->stale_served());
    fold(tb.catalog_client()->breaker_opens());
    fold(tb.catalog_client()->errors());
    fold(tb.catalog_service()->served());
    fold(tb.catalog_service()->outage_rejects());
  }
  out.fingerprint = fp;
  return out;
}

FuzzOutcome run_case_checked(const FuzzCase& c) {
  FuzzOutcome first = run_case(c);
  const FuzzOutcome second = run_case(c);
  first.replayed = true;
  first.replay_match = first.fingerprint == second.fingerprint;
  if (!first.replay_match) {
    first.ok = false;
    if (first.detail.empty()) {
      std::ostringstream os;
      os << "determinism: fingerprint " << std::hex << first.fingerprint
         << " != " << second.fingerprint << " on replay";
      first.detail = os.str();
    }
  }
  return first;
}

ShrinkResult shrink(const FuzzCase& failing, int budget) {
  ShrinkResult res;
  res.reduced = failing;
  res.outcome = run_case(failing);
  res.trials = 1;
  if (res.outcome.ok) return res;  // not actually failing; nothing to do

  // Accepts `cand` when it still fails within budget.
  auto try_reduce = [&res, budget](const FuzzCase& cand) {
    if (res.trials >= budget) return false;
    ++res.trials;
    FuzzOutcome out = run_case(cand);
    if (out.ok) return false;
    res.reduced = cand;
    res.outcome = std::move(out);
    return true;
  };

  const auto& channels = fuzz_channels();

  // Phase 1 — fault-channel bisection: drop half the active channels at
  // a time, then singles, until no channel can be removed.
  bool progress = true;
  while (progress && res.trials < budget) {
    progress = false;
    std::vector<double FuzzCase::*> active;
    for (const auto& ch : channels) {
      if (res.reduced.*(ch.member) > 0) active.push_back(ch.member);
    }
    if (active.size() >= 2) {
      for (int half = 0; half < 2 && !progress; ++half) {
        FuzzCase cand = res.reduced;
        const std::size_t mid = active.size() / 2;
        const std::size_t lo = half == 0 ? 0 : mid;
        const std::size_t hi = half == 0 ? mid : active.size();
        for (std::size_t i = lo; i < hi; ++i) cand.*(active[i]) = 0;
        progress = try_reduce(cand);
      }
    }
    if (!progress) {
      for (const auto member : active) {
        FuzzCase cand = res.reduced;
        cand.*member = 0;
        if (try_reduce(cand)) {
          progress = true;
          break;
        }
      }
    }
  }

  // Phase 2 — structural fields toward their simplest values, repeated
  // until a full pass accepts nothing.
  progress = true;
  while (progress && res.trials < budget) {
    progress = false;
    {
      FuzzCase cand = res.reduced;
      if (cand.workflows > 1) {
        cand.workflows = 1;
        progress |= try_reduce(cand);
      }
    }
    {
      FuzzCase cand = res.reduced;
      if (cand.tasks > 2) {
        cand.tasks = 2;
        progress |= try_reduce(cand);
      }
    }
    {
      FuzzCase cand = res.reduced;
      if (cand.nodes > 3) {
        cand.nodes = cand.nodes - 1;
        // Rack topology must stay valid as the cluster shrinks.
        cand.racks = std::min(cand.racks, cand.nodes - 1);
        progress |= try_reduce(cand);
      }
    }
    {
      FuzzCase cand = res.reduced;
      if (cand.racks > 1) {
        cand.racks = 1;
        progress |= try_reduce(cand);
      }
    }
    {
      FuzzCase cand = res.reduced;
      if (cand.serverless_fraction > 0) {
        cand.serverless_fraction = 0;
        progress |= try_reduce(cand);
      }
    }
    {
      FuzzCase cand = res.reduced;
      if (cand.min_scale > 0) {
        cand.min_scale = 0;
        progress |= try_reduce(cand);
      }
    }
    {
      FuzzCase cand = res.reduced;
      if (!cand.prestage) {
        cand.prestage = true;  // the simpler (no cold-pull) configuration
        progress |= try_reduce(cand);
      }
    }
    {
      FuzzCase cand = res.reduced;
      if (cand.request_timeout_s != 0) {
        cand.request_timeout_s = 0;
        progress |= try_reduce(cand);
      }
    }
    {
      FuzzCase cand = res.reduced;
      if (cand.outlier_detection) {
        cand.outlier_detection = false;
        progress |= try_reduce(cand);
      }
    }
    {
      FuzzCase cand = res.reduced;
      if (cand.openloop_users > 0) {
        cand.openloop_users = 0;
        cand.openloop_rate_hz = 0;
        progress |= try_reduce(cand);
      }
    }
    {
      FuzzCase cand = res.reduced;
      if (cand.catalog_service) {
        cand.catalog_service = false;
        cand.catalog_outage_mean_s = 0;  // skipped-only without the tier
        progress |= try_reduce(cand);
      }
    }
  }

  // Phase 3 — horizon bisection: a shorter plan window means fewer fault
  // events and a faster repro.
  while (res.reduced.horizon_s > 120 && res.trials < budget) {
    FuzzCase cand = res.reduced;
    cand.horizon_s = std::max(120.0, cand.horizon_s / 2);
    if (!try_reduce(cand)) break;
  }

  // Phase 4 — thin the surviving channels: doubling a mean halves its
  // expected event count while keeping the channel's stream intact.
  for (const auto& ch : channels) {
    for (int step = 0; step < 2 && res.trials < budget; ++step) {
      if (res.reduced.*(ch.member) <= 0) break;
      FuzzCase cand = res.reduced;
      cand.*(ch.member) *= 2;
      if (!try_reduce(cand)) break;
    }
  }

  return res;
}

std::string to_cpp_repro(const FuzzCase& c) {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "// Shrunk fuzz failure — paste into tests/check/ and add the\n"
        "// file to the check_test target. Fields are set exhaustively\n"
        "// so the case survives future default changes.\n";
  os << "TEST(FuzzRegression, Case" << c.id << ") {\n";
  os << "  sf::check::FuzzCase c;\n";
  os << "  c.id = " << c.id << "ull;\n";
  os << "  c.seed = 0x" << std::hex << c.seed << std::dec << "ull;\n";
  os << "  c.fault_seed = 0x" << std::hex << c.fault_seed << std::dec
     << "ull;\n";
  os << "  c.nodes = " << c.nodes << ";\n";
  os << "  c.racks = " << c.racks << ";\n";
  os << "  c.workflows = " << c.workflows << ";\n";
  os << "  c.tasks = " << c.tasks << ";\n";
  os << "  c.dag_retries = " << c.dag_retries << ";\n";
  os << "  c.serverless_fraction = " << c.serverless_fraction << ";\n";
  os << "  c.prestage = " << (c.prestage ? "true" : "false") << ";\n";
  os << "  c.min_scale = " << c.min_scale << ";\n";
  os << "  c.request_timeout_s = " << c.request_timeout_s << ";\n";
  os << "  c.outlier_detection = " << (c.outlier_detection ? "true" : "false")
     << ";\n";
  os << "  c.catalog_service = " << (c.catalog_service ? "true" : "false")
     << ";\n";
  os << "  c.openloop_users = " << c.openloop_users << ";\n";
  os << "  c.openloop_rate_hz = " << c.openloop_rate_hz << ";\n";
  os << "  c.horizon_s = " << c.horizon_s << ";\n";
  for (const auto& ch : fuzz_channels()) {
    os << "  c." << ch.name << " = " << c.*(ch.member) << ";\n";
  }
  if (c.plant_claim_leak) {
    os << "  c.plant_claim_leak = true;\n";
  }
  os << "  const auto out = sf::check::run_case_checked(c);\n";
  os << "  EXPECT_TRUE(out.ok) << out.detail;\n";
  os << "}\n";
  return os.str();
}

}  // namespace sf::check
