#include "check/invariants.hpp"

#include <set>
#include <sstream>
#include <utility>

#include "k8s/objects.hpp"

namespace sf::check {

namespace {

// Resource-accounting slop: memory is tracked in exact bytes but summed
// across many allocations (1 byte absorbs double rounding); CPU
// utilization is a PS-resource rate sum.
constexpr double kByteEps = 1.0;
constexpr double kCpuEps = 1e-6;

}  // namespace

InvariantChecker::InvariantChecker(core::PaperTestbed& testbed,
                                   CheckConfig config)
    : tb_(testbed), config_(config) {
  register_builtins();
}

void InvariantChecker::add_invariant(std::string name, Probe probe,
                                     bool quiesce_only) {
  add_counted_invariant(
      std::move(name),
      [probe = std::move(probe)](std::vector<std::string>& out) {
        probe(out);
        return std::uint64_t{1};  // plain probes count as one subject
      },
      quiesce_only);
}

void InvariantChecker::add_counted_invariant(std::string name,
                                             CountingProbe probe,
                                             bool quiesce_only) {
  Entry entry;
  entry.name = std::move(name);
  entry.probe = std::move(probe);
  entry.quiesce_only = quiesce_only;
  entries_.push_back(std::move(entry));
}

void InvariantChecker::attach_injector(const fault::FaultInjector& injector) {
  injector_ = &injector;
  add_counted_invariant(
      "fault.healed",
      [this](std::vector<std::string>& out) -> std::uint64_t {
        if (injector_->residual_depth() != 0) {
          out.push_back("injector residual depth " +
                        std::to_string(injector_->residual_depth()) +
                        " after all windows should have healed");
        }
        return injector_->applied_total();
      },
      /*quiesce_only=*/true);
}

void InvariantChecker::register_builtins() {
  // Every builtin is a counting probe: alongside violations it reports
  // how many subjects it examined, so per_invariant() can prove each law
  // was exercised against real state rather than passing over nothing.

  // -- condor: pool-internal conservation (claims, slots, job states). ---
  add_counted_invariant("condor.pool",
                        [this](std::vector<std::string>& out) -> std::uint64_t {
    for (auto& msg : tb_.condor().self_check()) out.push_back(std::move(msg));
    return tb_.condor().worker_names().size();
  });

  // -- condor: claims never exceed live startds' dynamic slots, and ------
  // -- every DAG's node states tally. ------------------------------------
  add_counted_invariant("condor.claims",
                        [this](std::vector<std::string>& out) -> std::uint64_t {
    std::size_t live_slots = 0;
    std::uint64_t examined = 0;
    for (const auto& name : tb_.condor().worker_names()) {
      auto& sd = tb_.condor().startd(name);
      ++examined;
      if (sd.node().up()) live_slots += sd.dynamic_slots();
    }
    if (tb_.condor().active_claims() > live_slots) {
      out.push_back("pool holds " +
                    std::to_string(tb_.condor().active_claims()) +
                    " claims but live startds expose only " +
                    std::to_string(live_slots) + " dynamic slots");
    }
    return examined;
  });
  add_counted_invariant("condor.dag",
                        [this](std::vector<std::string>& out) -> std::uint64_t {
    for (const auto& dag : tb_.active_dags()) {
      for (auto& msg : dag->self_check()) out.push_back(std::move(msg));
    }
    return tb_.active_dags().size();
  });

  // -- nodes: RAM/CPU ledgers stay within hardware capacity. -------------
  add_counted_invariant("node.accounting",
                        [this](std::vector<std::string>& out) -> std::uint64_t {
    auto& cl = tb_.cluster();
    for (std::size_t i = 0; i < cl.size(); ++i) {
      const auto& node = cl.node(i);
      const auto& spec = node.spec();
      if (node.memory_used() < -kByteEps ||
          node.memory_used() > spec.memory_bytes + kByteEps) {
        std::ostringstream os;
        os << node.name() << ": memory ledger " << node.memory_used()
           << " outside [0, " << spec.memory_bytes << "]";
        out.push_back(os.str());
      }
      // cpu_slowdown pins capacity below nominal; utilization is reported
      // against nominal cores, so the nominal bound always applies.
      if (node.cpu_utilization() > spec.cores + kCpuEps) {
        std::ostringstream os;
        os << node.name() << ": CPU utilization " << node.cpu_utilization()
           << " exceeds " << spec.cores << " cores";
        out.push_back(os.str());
      }
    }
    return cl.size();
  });

  // -- network: flow conservation (bytes in == bytes out + in flight). ---
  add_counted_invariant("net.flows",
                        [this](std::vector<std::string>& out) -> std::uint64_t {
    for (auto& msg : tb_.cluster().network().self_check()) {
      out.push_back(std::move(msg));
    }
    return tb_.cluster().network().node_count();
  });

  // -- knative: the KPA clamps desired into [min_scale, max_scale] at ----
  // -- every evaluation, so it must hold at every instant. ---------------
  add_counted_invariant("knative.scale",
                        [this](std::vector<std::string>& out) -> std::uint64_t {
    std::uint64_t examined = 0;
    for (const auto& svc : tb_.serving().service_names()) {
      const auto* ann = tb_.serving().service_annotations(svc);
      if (ann == nullptr) continue;
      ++examined;
      const int desired = tb_.serving().desired_replicas(svc);
      if (desired < ann->min_scale ||
          (ann->max_scale > 0 && desired > ann->max_scale)) {
        out.push_back(svc + ": desired " + std::to_string(desired) +
                      " outside [" + std::to_string(ann->min_scale) + ", " +
                      (ann->max_scale > 0 ? std::to_string(ann->max_scale)
                                          : std::string("inf")) +
                      "]");
      }
    }
    return examined;
  });

  // -- k8s: endpoints lists never contain the same pod twice, and a ------
  // -- pod marked ready is a running pod. --------------------------------
  add_counted_invariant("k8s.endpoints",
                        [this](std::vector<std::string>& out) -> std::uint64_t {
    std::uint64_t examined = 0;
    tb_.kube().api().for_each_service([&](const k8s::Service& svc) {
      const auto* eps = tb_.kube().api().get_endpoints(svc.name);
      if (eps == nullptr) return;
      std::set<std::string> seen;
      for (const auto& ep : eps->ready) {
        ++examined;
        if (!seen.insert(ep.pod_name).second) {
          out.push_back(svc.name + ": pod " + ep.pod_name +
                        " listed twice in ready endpoints");
        }
      }
    });
    return examined;
  });
  add_counted_invariant("k8s.pods",
                        [this](std::vector<std::string>& out) -> std::uint64_t {
    std::uint64_t examined = 0;
    tb_.kube().api().for_each_pod([&](const k8s::Pod& pod) {
      ++examined;
      if (pod.ready && pod.phase != k8s::PodPhase::kRunning) {
        out.push_back(pod.name + ": ready but phase " +
                      std::string(k8s::to_string(pod.phase)));
      }
    });
    return examined;
  });

  // -- knative: the ejection filter never steers traffic onto an ---------
  // -- ejected backend while a healthy alternative exists (panic picks ----
  // -- are counted separately and are legal). -----------------------------
  add_counted_invariant("knative.ejection.traffic",
                        [this](std::vector<std::string>& out) -> std::uint64_t {
    const auto misrouted = tb_.serving().outlier_misrouted();
    if (misrouted != 0) {
      out.push_back(std::to_string(misrouted) +
                    " picks landed on an ejected backend despite a healthy "
                    "alternative");
    }
    return tb_.serving().outlier_guarded_picks();
  });

  // -- knative: ejections never exceed the max_ejection_percent ----------
  // -- allowance (Envoy's cluster-wide ejection cap). ---------------------
  add_counted_invariant("knative.ejection.cap",
                        [this](std::vector<std::string>& out) -> std::uint64_t {
    std::uint64_t examined = 0;
    for (const auto& svc : tb_.serving().service_names()) {
      const auto snap = tb_.serving().outlier_snapshot(svc);
      if (!snap.enabled) continue;
      ++examined;
      if (snap.ejected > snap.allowance) {
        out.push_back(svc + ": " + std::to_string(snap.ejected) +
                      " backends ejected but max_ejection_percent allows " +
                      std::to_string(snap.allowance));
      }
    }
    return examined;
  });

  // -- k8s: each object event schedules exactly one watch batch; a -------
  // -- batch delivered twice (or a delivery without a schedule) drifts ----
  // -- the counters. ------------------------------------------------------
  add_counted_invariant("k8s.watch",
                        [this](std::vector<std::string>& out) -> std::uint64_t {
    const auto scheduled = tb_.kube().api().watch_batches_scheduled();
    const auto delivered = tb_.kube().api().watch_batches_delivered();
    if (delivered > scheduled) {
      out.push_back("watch batches delivered " + std::to_string(delivered) +
                    " > scheduled " + std::to_string(scheduled) +
                    " (an event delivered twice)");
    }
    return scheduled != 0 ? 1 : 0;
  });

  // ---- Quiesce-only: must hold once the workload is done, every fault
  // ---- window has healed and the control loops have settled.

  add_counted_invariant(
      "k8s.watch.drained",
      [this](std::vector<std::string>& out) -> std::uint64_t {
        const auto scheduled = tb_.kube().api().watch_batches_scheduled();
        const auto delivered = tb_.kube().api().watch_batches_delivered();
        if (delivered != scheduled) {
          out.push_back("watch batches delivered " +
                        std::to_string(delivered) + " != scheduled " +
                        std::to_string(scheduled) + " at quiesce");
        }
        return scheduled != 0 ? 1 : 0;
      },
      /*quiesce_only=*/true);

  add_counted_invariant(
      "knative.settled",
      [this](std::vector<std::string>& out) -> std::uint64_t {
        std::uint64_t examined = 0;
        for (const auto& svc : tb_.serving().service_names()) {
          ++examined;
          const auto* ann = tb_.serving().service_annotations(svc);
          const int desired = tb_.serving().desired_replicas(svc);
          const int ready = tb_.serving().ready_replicas(svc);
          if (ready != desired) {
            out.push_back(svc + ": " + std::to_string(ready) +
                          " ready pods vs " + std::to_string(desired) +
                          " desired at quiesce");
          }
          if (ann != nullptr && ready < ann->min_scale) {
            out.push_back(svc + ": " + std::to_string(ready) +
                          " ready pods below min-scale " +
                          std::to_string(ann->min_scale) + " at quiesce");
          }
        }
        return examined;
      },
      /*quiesce_only=*/true);

  add_counted_invariant(
      "cluster.healed",
      [this](std::vector<std::string>& out) -> std::uint64_t {
        auto& cl = tb_.cluster();
        for (std::size_t i = 0; i < cl.size(); ++i) {
          if (!cl.node(i).up()) {
            out.push_back(cl.node(i).name() + ": still down at quiesce");
          }
        }
        auto& net = cl.network();
        if (net.blocked_pair_count() != 0) {
          out.push_back(std::to_string(net.blocked_pair_count()) +
                        " node pairs still partitioned at quiesce");
        }
        if (net.blocked_oneway_count() != 0) {
          out.push_back(std::to_string(net.blocked_oneway_count()) +
                        " directed links still one-way blocked at quiesce");
        }
        for (std::size_t i = 0; i < net.node_count(); ++i) {
          const auto id = static_cast<net::NodeId>(i);
          if (net.node_bandwidth_factor(id) != 1.0) {
            out.push_back("net node " + std::to_string(i) +
                          ": NIC still degraded at factor " +
                          std::to_string(net.node_bandwidth_factor(id)));
          }
          if (net.node_flaky_every(id) != 0) {
            out.push_back("net node " + std::to_string(i) +
                          ": NIC still flaky at quiesce");
          }
        }
        if (!tb_.registry().available(tb_.sim().now())) {
          out.push_back("image registry still in outage at quiesce");
        }
        return cl.size();
      },
      /*quiesce_only=*/true);

  add_counted_invariant(
      "condor.drained",
      [this](std::vector<std::string>& out) -> std::uint64_t {
        if (tb_.condor().running_jobs() != 0) {
          out.push_back(std::to_string(tb_.condor().running_jobs()) +
                        " condor jobs still running at quiesce");
        }
        if (tb_.condor().idle_jobs() != 0) {
          out.push_back(std::to_string(tb_.condor().idle_jobs()) +
                        " condor jobs still idle at quiesce");
        }
        return tb_.condor().worker_names().size();
      },
      /*quiesce_only=*/true);

  // -- catalog: client/service ledgers tally — local answers never --------
  // -- exceed the lookups that could have produced them, and the service --
  // -- never resolves more requests than arrived. -------------------------
  add_counted_invariant("catalog.cache",
                        [this](std::vector<std::string>& out) -> std::uint64_t {
    const auto* client = tb_.catalog_client();
    const auto* service = tb_.catalog_service();
    if (client == nullptr || service == nullptr) return 0;
    const auto local = client->cache_hits() + client->negative_hits() +
                       client->coalesced();
    if (local > client->lookups()) {
      out.push_back("catalog client answered " + std::to_string(local) +
                    " lookups locally out of only " +
                    std::to_string(client->lookups()) + " issued");
    }
    const auto resolved = service->served() + service->outage_rejects() +
                          service->overload_sheds();
    if (resolved > service->requests()) {
      out.push_back("catalog service resolved " + std::to_string(resolved) +
                    " requests but only " +
                    std::to_string(service->requests()) + " arrived");
    }
    return client->lookups();
  });

  // -- catalog: an open breaker means NO direct service calls — the -------
  // -- whole point of tripping it. ----------------------------------------
  add_counted_invariant("catalog.breaker",
                        [this](std::vector<std::string>& out) -> std::uint64_t {
    const auto* client = tb_.catalog_client();
    if (client == nullptr) return 0;
    if (client->calls_while_open() != 0) {
      out.push_back(std::to_string(client->calls_while_open()) +
                    " service calls issued while the breaker was open");
    }
    return client->service_calls();
  });

  add_counted_invariant(
      "catalog.drained",
      [this](std::vector<std::string>& out) -> std::uint64_t {
        const auto* client = tb_.catalog_client();
        const auto* service = tb_.catalog_service();
        if (client == nullptr || service == nullptr) return 0;
        if (service->in_flight() != 0) {
          out.push_back(std::to_string(service->in_flight()) +
                        " catalog requests still in service at quiesce");
        }
        if (client->in_flight_keys() != 0) {
          out.push_back(std::to_string(client->in_flight_keys()) +
                        " single-flight catalog fetches still out at quiesce");
        }
        if (!service->available(tb_.sim().now())) {
          out.push_back("catalog service still in outage at quiesce");
        }
        return 1;
      },
      /*quiesce_only=*/true);
}

void InvariantChecker::arm() {
  if (armed_) return;
  armed_ = true;
  // The testbed probe fires the instant the workload completes — before
  // pods drain, watches flush, or fault windows heal — so it sweeps the
  // always-on invariants only. check_quiesce() is for the caller, once
  // the simulation has actually settled.
  tb_.set_quiesce_probe([this] { check_now(); });
  chain_cadence();
}

void InvariantChecker::chain_cadence() {
  if (config_.interval_s <= 0) return;
  tb_.sim().call_in(config_.interval_s, [this] {
    check_now();
    if (tb_.sim().now() < config_.horizon_s) chain_cadence();
  });
}

void InvariantChecker::check_now() { sweep(/*quiesce=*/false); }

void InvariantChecker::check_quiesce() { sweep(/*quiesce=*/true); }

void InvariantChecker::sweep(bool quiesce) {
  ++sweeps_;
  std::vector<std::string> messages;
  for (auto& entry : entries_) {
    if (entry.quiesce_only && !quiesce) continue;
    ++evaluations_;
    ++entry.evaluations;
    messages.clear();
    entry.exercised += entry.probe(messages);
    entry.violations += messages.size();
    for (auto& msg : messages) {
      if (violations_.size() >= config_.max_violations) return;
      violations_.push_back(
          Violation{tb_.sim().now(), entry.name, std::move(msg)});
      if (config_.throw_on_violation) {
        const auto& v = violations_.back();
        std::ostringstream os;
        os << "invariant " << v.invariant << " violated at t=" << v.time
           << ": " << v.detail;
        throw CheckFailure(os.str());
      }
    }
  }
}

std::vector<InvariantChecker::InvariantStats> InvariantChecker::per_invariant()
    const {
  std::vector<InvariantStats> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) {
    out.push_back(InvariantStats{entry.name, entry.quiesce_only,
                                 entry.evaluations, entry.exercised,
                                 entry.violations});
  }
  return out;
}

std::string InvariantChecker::report() const {
  std::ostringstream os;
  for (const auto& v : violations_) {
    os << "[t=" << v.time << "] " << v.invariant << ": " << v.detail << "\n";
  }
  return os.str();
}

}  // namespace sf::check
