#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "cluster/node.hpp"
#include "container/registry.hpp"
#include "net/flow_network.hpp"

namespace sf::container {

/// Per-node content-addressed layer cache with pull coalescing.
///
/// `ensure_image` transfers only the layers this node does not already
/// hold (so the 350 MB Python base is paid once per node, and a second
/// task image costs only its thin code layer), then pays a disk-extract
/// cost. Concurrent pulls of the same image on the same node share one
/// download — exactly how containerd behaves under Knative scale-up.
class ImageCache {
 public:
  ImageCache(cluster::Node& node, net::FlowNetwork& network)
      : node_(node), network_(network) {}

  ImageCache(const ImageCache&) = delete;
  ImageCache& operator=(const ImageCache&) = delete;

  using PullCallback = std::function<void(bool ok)>;

  /// Makes `image_name` locally available, pulling missing layers from
  /// `registry`. `on_done(ok)`; ok=false when the registry lacks the image.
  void ensure_image(const std::string& image_name, Registry& registry,
                    PullCallback on_done);

  /// True when every layer of the (registry-known) image is cached.
  [[nodiscard]] bool has_image(const std::string& image_name,
                               const Registry& registry) const;

  [[nodiscard]] bool has_layer(const std::string& digest) const {
    return layers_.contains(digest);
  }
  [[nodiscard]] std::size_t layer_count() const { return layers_.size(); }
  [[nodiscard]] double cached_bytes() const;

  /// Marks layers present without simulated cost (pre-staged images).
  void seed_image(const Image& image);

  /// Drops every cached layer (image GC in tests).
  void clear() { layers_.clear(); }

  [[nodiscard]] std::uint64_t pulls_started() const { return pulls_started_; }
  [[nodiscard]] std::uint64_t pulls_coalesced() const {
    return pulls_coalesced_;
  }

 private:
  void finish_pull(const std::string& image_name, bool ok);

  cluster::Node& node_;
  net::FlowNetwork& network_;
  std::map<std::string, double> layers_;  // digest → bytes
  std::map<std::string, std::vector<PullCallback>> in_flight_;
  std::uint64_t pulls_started_ = 0;
  std::uint64_t pulls_coalesced_ = 0;
};

}  // namespace sf::container
