#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "cluster/node.hpp"
#include "container/registry.hpp"
#include "fault/retry.hpp"
#include "net/flow_network.hpp"

namespace sf::container {

/// Per-node content-addressed layer cache with pull coalescing.
///
/// `ensure_image` transfers only the layers this node does not already
/// hold (so the 350 MB Python base is paid once per node, and a second
/// task image costs only its thin code layer), then pays a disk-extract
/// cost. Concurrent pulls of the same image on the same node share one
/// download — exactly how containerd behaves under Knative scale-up.
class ImageCache {
 public:
  ImageCache(cluster::Node& node, net::FlowNetwork& network)
      : node_(node), network_(network) {}

  ImageCache(const ImageCache&) = delete;
  ImageCache& operator=(const ImageCache&) = delete;

  using PullCallback = std::function<void(bool ok)>;

  /// Makes `image_name` locally available, pulling missing layers from
  /// `registry`. `on_done(ok)`; ok=false when the registry lacks the image.
  void ensure_image(const std::string& image_name, Registry& registry,
                    PullCallback on_done);

  /// True when every layer of the (registry-known) image is cached.
  [[nodiscard]] bool has_image(const std::string& image_name,
                               const Registry& registry) const;

  [[nodiscard]] bool has_layer(const std::string& digest) const {
    return layers_.contains(digest);
  }
  [[nodiscard]] std::size_t layer_count() const { return layers_.size(); }
  [[nodiscard]] double cached_bytes() const;

  /// Marks layers present without simulated cost (pre-staged images).
  void seed_image(const Image& image);

  /// Drops every cached layer (image GC in tests).
  void clear() { layers_.clear(); }

  [[nodiscard]] std::uint64_t pulls_started() const { return pulls_started_; }
  [[nodiscard]] std::uint64_t pulls_coalesced() const {
    return pulls_coalesced_;
  }
  [[nodiscard]] std::uint64_t pull_retries() const { return pull_retries_; }
  [[nodiscard]] std::uint64_t pulls_failed() const { return pulls_failed_; }

  /// Tunes the retry policy used when the registry is unavailable:
  /// delays are `base * 2^attempt`, capped at `cap`, for at most
  /// `max_attempts` tries overall (kubelet image-pull backoff).
  void set_pull_retry_policy(double base_s, double cap_s, int max_attempts) {
    pull_retry_.base_s = base_s;
    pull_retry_.cap_s = cap_s;
    pull_retry_.max_attempts = max_attempts;
  }
  [[nodiscard]] const fault::RetryPolicy& pull_retry_policy() const {
    return pull_retry_;
  }

  /// Node-crash hook: every in-flight pull fails (ok=false). Cached
  /// layers survive — the VM's disk persists across a reboot.
  void handle_node_crash();

 private:
  void start_download(const std::string& image_name, const Image& manifest,
                      double missing_bytes, Registry& registry, int attempt);
  void finish_pull(const std::string& image_name, bool ok);

  cluster::Node& node_;
  net::FlowNetwork& network_;
  std::map<std::string, double> layers_;  // digest → bytes
  std::map<std::string, std::vector<PullCallback>> in_flight_;
  std::uint64_t pulls_started_ = 0;
  std::uint64_t pulls_coalesced_ = 0;
  std::uint64_t pull_retries_ = 0;
  std::uint64_t pulls_failed_ = 0;
  /// Kubelet image-pull backoff; 0.5 s doubling to an 8 s cap, six tries.
  fault::RetryPolicy pull_retry_{/*max_attempts=*/6, /*base_s=*/0.5,
                                 /*cap_s=*/8.0};
};

}  // namespace sf::container
