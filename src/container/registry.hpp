#pragma once

#include <map>
#include <optional>
#include <string>

#include "cluster/node.hpp"
#include "container/image.hpp"

namespace sf::container {

/// DockerHub-like image registry hosted on one node. Stores image
/// manifests; pullers fetch missing layer bytes over the network from
/// here. (In the paper, task images "are accessible via DockerHub".)
class Registry {
 public:
  explicit Registry(cluster::Node& node) : node_(node) {}

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  [[nodiscard]] cluster::Node& node() { return node_; }
  [[nodiscard]] net::NodeId net_id() const { return node_.net_id(); }

  /// Publishes (or replaces) an image.
  void push(Image image) { images_[image.name] = std::move(image); }

  /// Manifest lookup by "repo:tag".
  [[nodiscard]] std::optional<Image> manifest(const std::string& name) const {
    auto it = images_.find(name);
    if (it == images_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] bool has(const std::string& name) const {
    return images_.contains(name);
  }
  [[nodiscard]] std::size_t image_count() const { return images_.size(); }

  // ---- Fault injection ----------------------------------------------

  /// Makes the registry refuse new pulls until sim time `t` (outages
  /// extend, never shrink). Pullers retry with exponential backoff.
  void set_outage_until(double t) {
    if (t > outage_until_) outage_until_ = t;
  }

  /// Whether a pull starting at `now` would be served.
  [[nodiscard]] bool available(double now) const {
    return now >= outage_until_;
  }

  [[nodiscard]] double outage_until() const { return outage_until_; }

 private:
  cluster::Node& node_;
  std::map<std::string, Image> images_;
  double outage_until_ = 0;
};

}  // namespace sf::container
