#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "cluster/node.hpp"
#include "container/image_cache.hpp"
#include "container/registry.hpp"
#include "sim/ps_resource.hpp"

namespace sf::container {

/// Identifier of a container instance on one node; 0 means "none/failed".
using ContainerId = std::uint64_t;
inline constexpr ContainerId kNoContainer = 0;

/// cgroup-backed resource envelope plus boot behaviour for one container.
struct ContainerSpec {
  std::string name;
  std::string image;
  /// Hard CPU quota in cores (cgroup cpu.max); kNoCpuLimit = unbounded.
  double cpu_limit = kNoCpuLimit;
  /// Relative weight under contention (cgroup cpu.weight / cpu-shares).
  double cpu_shares = 1.0;
  double memory_bytes = 512e6;
  /// Application boot after start (interpreter + imports + server bind).
  /// Paid once per container — the reuse saving the paper measures.
  double boot_s = 0.0;

  static constexpr double kNoCpuLimit = sim::PsResource::kNoCap;
};

/// Docker-engine lifecycle overheads (fixed control-path costs).
struct RuntimeOverheads {
  double create_s = 0.12;  ///< namespace + cgroup + rootfs snapshot
  double start_s = 0.08;   ///< runc start, process spawn
  double stop_s = 0.05;    ///< SIGTERM + teardown wait
  double remove_s = 0.06;  ///< rootfs + metadata cleanup
};

/// Docker-like container engine on one node.
///
/// Lifecycle: create → start → [exec*] → stop → remove. `run_task_once`
/// chains the whole sequence the way `docker run --rm` does — the paper's
/// Setup 2 (traditional containerized execution) pays that full chain per
/// task, while Knative keeps containers in the started state and only
/// pays exec.
class ContainerRuntime {
 public:
  ContainerRuntime(cluster::Node& node, ImageCache& cache,
                   RuntimeOverheads overheads = {});

  ContainerRuntime(const ContainerRuntime&) = delete;
  ContainerRuntime& operator=(const ContainerRuntime&) = delete;

  enum class State { kCreated, kRunning, kStopped };

  /// Creates a container. Requires the image to be cached (callers pull
  /// via ImageCache first; the kubelet and `run_task_once` do). Fails with
  /// kNoContainer when memory cannot be reserved (node overcommit).
  void create(const ContainerSpec& spec,
              std::function<void(ContainerId)> on_done);

  /// Starts a created container; pays start overhead plus the spec's app
  /// boot time. `on_done(ok)`.
  void start(ContainerId id, std::function<void(bool)> on_done);

  /// Executes `work` core-seconds inside a running container under its
  /// cgroup limits. Multiple concurrent execs share the container's quota.
  /// `on_done(ok)` fires with false when the container is not running.
  void exec(ContainerId id, double work, std::function<void(bool)> on_done);

  /// Stops a running container, killing any in-flight execs (their
  /// callbacks fire with ok=false).
  void stop(ContainerId id, std::function<void(bool)> on_done);

  /// Removes a stopped (or created) container and frees its memory.
  void remove(ContainerId id, std::function<void(bool)> on_done);

  /// `docker run --rm`: pull-if-needed + create + start + exec + stop +
  /// remove. `on_done(ok)`.
  void run_task_once(const ContainerSpec& spec, double work,
                     Registry& registry, std::function<void(bool)> on_done);

  [[nodiscard]] bool exists(ContainerId id) const {
    return containers_.contains(id);
  }
  [[nodiscard]] State state(ContainerId id) const;
  [[nodiscard]] std::size_t container_count() const {
    return containers_.size();
  }
  [[nodiscard]] std::size_t active_execs(ContainerId id) const;
  [[nodiscard]] cluster::Node& node() { return node_; }
  [[nodiscard]] const RuntimeOverheads& overheads() const {
    return overheads_;
  }

  [[nodiscard]] std::uint64_t containers_created() const {
    return containers_created_;
  }

  /// Node-crash hook: every container is lost. In-flight execs observe
  /// ok=false (the Node already cancelled the underlying PS jobs), all
  /// container memory is released back to the node's ledger, and the
  /// instance table empties — a rebooted VM starts with a clean engine.
  void handle_node_crash();

  [[nodiscard]] std::uint64_t containers_lost() const {
    return containers_lost_;
  }

 private:
  struct Instance {
    ContainerSpec spec;
    State state = State::kCreated;
    std::map<sim::PsResource::JobId, std::function<void(bool)>> execs;
  };

  cluster::Node& node_;
  ImageCache& cache_;
  RuntimeOverheads overheads_;
  std::map<ContainerId, Instance> containers_;
  ContainerId next_id_ = 1;
  std::uint64_t containers_created_ = 0;
  std::uint64_t containers_lost_ = 0;
  /// Bumped on node crash; in-flight create callbacks from the previous
  /// incarnation release their reservation instead of materializing.
  std::uint64_t engine_epoch_ = 0;
};

}  // namespace sf::container
