#include "container/image.hpp"

namespace sf::container {

Image make_python_base_image() {
  // ~478 MB — a realistic python:3.10 + NumPy/SciPy + Flask scientific
  // stack. The size matters: Figure 2's container slope (0.96 s/task) is
  // dominated by the submit node's disk serving this image once per job.
  return Image{
      .name = "python-scicomp:3.10",
      .layers = {{"sha256:debian-base", 45e6},
                 {"sha256:python-3.10", 160e6},
                 {"sha256:numpy-scipy", 180e6},
                 {"sha256:flask-runtime", 15e6},
                 {"sha256:scicomp-misc", 78e6}},
  };
}

Image make_task_image(const std::string& task_name,
                      double code_layer_bytes) {
  Image img = make_python_base_image();
  img.name = task_name + ":latest";
  img.layers.push_back(
      ImageLayer{"sha256:code-" + task_name, code_layer_bytes});
  return img;
}

}  // namespace sf::container
