#include "container/runtime.hpp"

#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

namespace sf::container {

ContainerRuntime::ContainerRuntime(cluster::Node& node, ImageCache& cache,
                                   RuntimeOverheads overheads)
    : node_(node), cache_(cache), overheads_(overheads) {}

ContainerRuntime::State ContainerRuntime::state(ContainerId id) const {
  auto it = containers_.find(id);
  if (it == containers_.end()) {
    throw std::out_of_range("ContainerRuntime::state: unknown container");
  }
  return it->second.state;
}

std::size_t ContainerRuntime::active_execs(ContainerId id) const {
  auto it = containers_.find(id);
  return it == containers_.end() ? 0 : it->second.execs.size();
}

void ContainerRuntime::create(const ContainerSpec& spec,
                              std::function<void(ContainerId)> on_done) {
  if (!node_.allocate_memory(spec.memory_bytes)) {
    node_.sim().call_in(0, [cb = std::move(on_done)] { cb(kNoContainer); });
    return;
  }
  node_.sim().call_in(
      overheads_.create_s,
      [this, spec, epoch = engine_epoch_, cb = std::move(on_done)] {
        if (epoch != engine_epoch_) {
          // Node crashed mid-create: the reservation was made against the
          // old engine incarnation — return it and report failure.
          node_.release_memory(spec.memory_bytes);
          cb(kNoContainer);
          return;
        }
        const ContainerId id = next_id_++;
        ++containers_created_;
        containers_.emplace(id, Instance{spec, State::kCreated, {}});
        node_.sim().trace().record(node_.sim().now(), "container", "create",
                                   {{"node", node_.name()},
                                    {"image", spec.image}});
        cb(id);
      });
}

void ContainerRuntime::start(ContainerId id,
                             std::function<void(bool)> on_done) {
  auto it = containers_.find(id);
  if (it == containers_.end() || it->second.state != State::kCreated) {
    node_.sim().call_in(0, [cb = std::move(on_done)] { cb(false); });
    return;
  }
  const double delay = overheads_.start_s + it->second.spec.boot_s;
  node_.sim().call_in(delay, [this, id, cb = std::move(on_done)] {
    auto jt = containers_.find(id);
    if (jt == containers_.end() || jt->second.state != State::kCreated) {
      cb(false);
      return;
    }
    jt->second.state = State::kRunning;
    cb(true);
  });
}

void ContainerRuntime::exec(ContainerId id, double work,
                            std::function<void(bool)> on_done) {
  auto it = containers_.find(id);
  if (it == containers_.end() || it->second.state != State::kRunning) {
    node_.sim().call_in(0, [cb = std::move(on_done)] { cb(false); });
    return;
  }
  Instance& inst = it->second;
  // All execs in one container share its cgroup: each process is capped by
  // the container quota, and the container's weight splits evenly across
  // concurrently running processes within it.
  auto shared_state = std::make_shared<sim::PsResource::JobId>(0);
  const auto pid = node_.run_process(
      work,
      [this, id, shared_state] {
        auto jt = containers_.find(id);
        if (jt == containers_.end()) return;
        auto ex = jt->second.execs.find(*shared_state);
        if (ex == jt->second.execs.end()) return;
        auto cb = std::move(ex->second);
        jt->second.execs.erase(ex);
        cb(true);
      },
      inst.spec.cpu_limit, inst.spec.cpu_shares);
  *shared_state = pid;
  inst.execs.emplace(pid, std::move(on_done));
}

void ContainerRuntime::stop(ContainerId id,
                            std::function<void(bool)> on_done) {
  auto it = containers_.find(id);
  if (it == containers_.end() || it->second.state == State::kStopped) {
    node_.sim().call_in(0, [cb = std::move(on_done)] { cb(false); });
    return;
  }
  // Kill in-flight execs; their callbacks observe failure.
  std::vector<std::function<void(bool)>> killed;
  for (auto& [pid, cb] : it->second.execs) {
    node_.kill_process(pid);
    killed.push_back(std::move(cb));
  }
  it->second.execs.clear();
  it->second.state = State::kStopped;
  for (auto& cb : killed) cb(false);
  node_.sim().call_in(overheads_.stop_s,
                      [cb = std::move(on_done)] { cb(true); });
}

void ContainerRuntime::remove(ContainerId id,
                              std::function<void(bool)> on_done) {
  auto it = containers_.find(id);
  if (it == containers_.end() || it->second.state == State::kRunning) {
    node_.sim().call_in(0, [cb = std::move(on_done)] { cb(false); });
    return;
  }
  const double mem = it->second.spec.memory_bytes;
  containers_.erase(it);
  node_.release_memory(mem);
  node_.sim().call_in(overheads_.remove_s,
                      [cb = std::move(on_done)] { cb(true); });
}

void ContainerRuntime::handle_node_crash() {
  // Collect callbacks first: an exec callback may re-enter the runtime
  // (e.g. a queue-proxy dispatching its next queued request).
  std::vector<std::function<void(bool)>> killed;
  double mem = 0;
  for (auto& [id, inst] : containers_) {
    for (auto& [pid, cb] : inst.execs) killed.push_back(std::move(cb));
    mem += inst.spec.memory_bytes;
  }
  containers_lost_ += containers_.size();
  containers_.clear();
  ++engine_epoch_;
  node_.release_memory(mem);
  for (auto& cb : killed) cb(false);
}

void ContainerRuntime::run_task_once(const ContainerSpec& spec, double work,
                                     Registry& registry,
                                     std::function<void(bool)> on_done) {
  cache_.ensure_image(spec.image, registry, [this, spec, work,
                                             cb = std::move(on_done)](
                                                bool pulled) mutable {
    if (!pulled) {
      cb(false);
      return;
    }
    create(spec, [this, work, cb = std::move(cb)](ContainerId id) mutable {
      if (id == kNoContainer) {
        cb(false);
        return;
      }
      start(id, [this, id, work, cb = std::move(cb)](bool started) mutable {
        if (!started) {
          remove(id, [cb = std::move(cb)](bool) mutable { cb(false); });
          return;
        }
        exec(id, work, [this, id, cb = std::move(cb)](bool ran) mutable {
          stop(id, [this, id, ran, cb = std::move(cb)](bool) mutable {
            remove(id, [ran, cb = std::move(cb)](bool removed) mutable {
              cb(ran && removed);
            });
          });
        });
      });
    });
  });
}

}  // namespace sf::container
