#include "container/image_cache.hpp"

#include <utility>

namespace sf::container {

bool ImageCache::has_image(const std::string& image_name,
                           const Registry& registry) const {
  const auto manifest = registry.manifest(image_name);
  if (!manifest) return false;
  for (const auto& layer : manifest->layers) {
    if (!layers_.contains(layer.digest)) return false;
  }
  return true;
}

double ImageCache::cached_bytes() const {
  double total = 0;
  for (const auto& [digest, bytes] : layers_) total += bytes;
  return total;
}

void ImageCache::seed_image(const Image& image) {
  for (const auto& layer : image.layers) {
    layers_[layer.digest] = layer.bytes;
  }
}

void ImageCache::ensure_image(const std::string& image_name,
                              Registry& registry, PullCallback on_done) {
  const auto manifest = registry.manifest(image_name);
  if (!manifest) {
    on_done(false);
    return;
  }
  double missing_bytes = 0;
  for (const auto& layer : manifest->layers) {
    if (!layers_.contains(layer.digest)) missing_bytes += layer.bytes;
  }
  if (missing_bytes <= 0) {
    on_done(true);
    return;
  }
  // Coalesce with an in-flight pull of the same image.
  auto [it, inserted] = in_flight_.try_emplace(image_name);
  it->second.push_back(std::move(on_done));
  if (!inserted) {
    ++pulls_coalesced_;
    return;
  }
  ++pulls_started_;
  // Download the missing bytes from the registry, then extract to disk.
  network_.transfer(
      registry.net_id(), node_.net_id(), missing_bytes,
      [this, image_name, manifest = *manifest, missing_bytes] {
        node_.disk_io(missing_bytes, [this, image_name, manifest] {
          for (const auto& layer : manifest.layers) {
            layers_[layer.digest] = layer.bytes;
          }
          finish_pull(image_name, true);
        });
      });
}

void ImageCache::finish_pull(const std::string& image_name, bool ok) {
  auto it = in_flight_.find(image_name);
  if (it == in_flight_.end()) return;
  auto callbacks = std::move(it->second);
  in_flight_.erase(it);
  for (auto& cb : callbacks) cb(ok);
}

}  // namespace sf::container
