#include "container/image_cache.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace sf::container {

bool ImageCache::has_image(const std::string& image_name,
                           const Registry& registry) const {
  const auto manifest = registry.manifest(image_name);
  if (!manifest) return false;
  for (const auto& layer : manifest->layers) {
    if (!layers_.contains(layer.digest)) return false;
  }
  return true;
}

double ImageCache::cached_bytes() const {
  double total = 0;
  for (const auto& [digest, bytes] : layers_) total += bytes;
  return total;
}

void ImageCache::seed_image(const Image& image) {
  for (const auto& layer : image.layers) {
    layers_[layer.digest] = layer.bytes;
  }
}

void ImageCache::ensure_image(const std::string& image_name,
                              Registry& registry, PullCallback on_done) {
  const auto manifest = registry.manifest(image_name);
  if (!manifest) {
    on_done(false);
    return;
  }
  double missing_bytes = 0;
  for (const auto& layer : manifest->layers) {
    if (!layers_.contains(layer.digest)) missing_bytes += layer.bytes;
  }
  if (missing_bytes <= 0) {
    on_done(true);
    return;
  }
  // Coalesce with an in-flight pull of the same image.
  auto [it, inserted] = in_flight_.try_emplace(image_name);
  it->second.push_back(std::move(on_done));
  if (!inserted) {
    ++pulls_coalesced_;
    return;
  }
  ++pulls_started_;
  start_download(image_name, *manifest, missing_bytes, registry, 0);
}

void ImageCache::start_download(const std::string& image_name,
                                const Image& manifest, double missing_bytes,
                                Registry& registry, int attempt) {
  auto& sim = node_.sim();
  if (!registry.available(sim.now())) {
    // Registry outage: capped exponential backoff, then give up — the
    // caller (kubelet / cold-start path) owns what happens next.
    if (pull_retry_.exhausted(attempt)) {
      ++pulls_failed_;
      sim.trace().record(sim.now(), "image_cache", "pull_exhausted",
                         {{"node", node_.name()}, {"image", image_name}});
      finish_pull(image_name, false);
      return;
    }
    ++pull_retries_;
    const double delay = pull_retry_.backoff_s(attempt);
    sim.call_in(delay, [this, image_name, manifest, missing_bytes, &registry,
                        attempt] {
      if (!in_flight_.contains(image_name)) return;  // crashed meanwhile
      start_download(image_name, manifest, missing_bytes, registry,
                     attempt + 1);
    });
    return;
  }
  // Download the missing bytes from the registry, then extract to disk.
  network_.transfer(
      registry.net_id(), node_.net_id(), missing_bytes,
      [this, image_name, manifest, missing_bytes] {
        node_.disk_io(missing_bytes, [this, image_name, manifest] {
          for (const auto& layer : manifest.layers) {
            layers_[layer.digest] = layer.bytes;
          }
          finish_pull(image_name, true);
        });
      });
}

void ImageCache::handle_node_crash() {
  while (!in_flight_.empty()) {
    finish_pull(in_flight_.begin()->first, false);
  }
}

void ImageCache::finish_pull(const std::string& image_name, bool ok) {
  auto it = in_flight_.find(image_name);
  if (it == in_flight_.end()) return;
  auto callbacks = std::move(it->second);
  in_flight_.erase(it);
  for (auto& cb : callbacks) cb(ok);
}

}  // namespace sf::container
