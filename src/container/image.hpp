#pragma once

#include <numeric>
#include <string>
#include <vector>

namespace sf::container {

/// One content-addressed image layer.
struct ImageLayer {
  std::string digest;
  double bytes = 0;

  friend bool operator==(const ImageLayer&, const ImageLayer&) = default;
};

/// A container image: a named, ordered stack of layers. Sizes mirror the
/// paper's setup — a Python + NumPy + Flask base (shared across functions)
/// plus a thin task-code layer, distributed via a DockerHub-like registry.
struct Image {
  std::string name;  ///< "repo:tag"
  std::vector<ImageLayer> layers;

  [[nodiscard]] double total_bytes() const {
    return std::accumulate(layers.begin(), layers.end(), 0.0,
                           [](double acc, const ImageLayer& l) {
                             return acc + l.bytes;
                           });
  }
};

/// The Python scientific base image used by every task image.
/// ~350 MB compressed, a realistic python:3.10-slim + numpy + flask stack.
Image make_python_base_image();

/// A task image: shared base layers plus a small code layer, so pulling a
/// second task image onto a node that has the base cached is nearly free.
Image make_task_image(const std::string& task_name,
                      double code_layer_bytes = 2e6);

}  // namespace sf::container
