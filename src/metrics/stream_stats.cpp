#include "metrics/stream_stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace sf::stats {

std::size_t Histogram::index_of(std::uint64_t value) noexcept {
  if (value < kSub) return static_cast<std::size_t>(value);
  const int msb = static_cast<int>(std::bit_width(value)) - 1;
  if (msb >= 32) return kBuckets - 1;  // overflow bucket
  const int shift = msb - kSubBits;
  const std::uint64_t sub = value >> shift;  // in [kSub, 2*kSub)
  return static_cast<std::size_t>(shift + 1) * kSub +
         static_cast<std::size_t>(sub - kSub);
}

std::uint64_t Histogram::bucket_floor(std::size_t index) noexcept {
  if (index < kSub) return index;
  const std::size_t shift = index / kSub - 1;
  const std::uint64_t sub = index % kSub + kSub;
  return sub << shift;
}

void Histogram::record(std::uint64_t value) noexcept {
  ++counts_[index_of(value)];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::record_seconds(double seconds) noexcept {
  record(static_cast<std::uint64_t>(std::max(0.0, seconds) * 1e6));
}

std::uint64_t Histogram::min() const noexcept { return count_ == 0 ? 0 : min_; }

double Histogram::mean() const noexcept {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t Histogram::percentile(double p) const noexcept {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (counts_[i] == 0) continue;
    const std::uint64_t next = seen + counts_[i];
    if (static_cast<double>(next) >= target) {
      // Interpolate within the bucket; clamp to the observed extremes so
      // p=0/p=1 report the true min/max rather than bucket bounds.
      const std::uint64_t lo = bucket_floor(i);
      const std::uint64_t hi = bucket_floor(i + 1);
      const double frac =
          counts_[i] == 0
              ? 0.0
              : (target - static_cast<double>(seen)) /
                    static_cast<double>(counts_[i]);
      const auto v = static_cast<std::uint64_t>(
          static_cast<double>(lo) +
          frac * static_cast<double>(hi - lo));
      return std::clamp(v, min(), max_);
    }
    seen = next;
  }
  return max_;
}

double Histogram::percentile_seconds(double p) const noexcept {
  return static_cast<double>(percentile(p)) * 1e-6;
}

void Histogram::merge(const Histogram& other) noexcept {
  for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.count_ > 0) {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
}

void Histogram::clear() noexcept {
  counts_.fill(0);
  count_ = 0;
  sum_ = 0;
  min_ = ~std::uint64_t{0};
  max_ = 0;
}

void RollingHistogram::rotate(double now) noexcept {
  if (interval_s_ <= 0.0) return;
  const auto epoch = static_cast<std::uint64_t>(now / interval_s_);
  if (epoch == epoch_) return;
  if (epoch == epoch_ + 1) {
    prev_ = cur_;
  } else {
    prev_.clear();  // a whole interval went by with no activity
  }
  cur_.clear();
  epoch_ = epoch;
}

void RollingHistogram::record_seconds(double seconds, double now) noexcept {
  rotate(now);
  cur_.record_seconds(seconds);
}

double RollingHistogram::percentile_seconds(double p, double now) noexcept {
  rotate(now);
  if (prev_.count() == 0) return cur_.percentile_seconds(p);
  Histogram merged = cur_;
  merged.merge(prev_);
  return merged.percentile_seconds(p);
}

std::uint64_t RollingHistogram::window_count(double now) noexcept {
  rotate(now);
  return cur_.count() + prev_.count();
}

void RollingHistogram::clear() noexcept {
  cur_.clear();
  prev_.clear();
  epoch_ = 0;
}

CounterId StatsStore::counter(std::uint32_t scope_id, std::uint32_t name_id) {
  const auto [it, inserted] = counter_index_.try_emplace(
      key(scope_id, name_id), static_cast<std::uint32_t>(counters_.size()));
  if (inserted) counters_.push_back({scope_id, name_id, 0});
  return CounterId{it->second};
}

HistogramId StatsStore::histogram(std::uint32_t scope_id,
                                  std::uint32_t name_id) {
  const auto [it, inserted] = histogram_index_.try_emplace(
      key(scope_id, name_id), static_cast<std::uint32_t>(histograms_.size()));
  if (inserted) histograms_.push_back({scope_id, name_id, Histogram{}});
  return HistogramId{it->second};
}

CounterId StatsStore::find_counter(std::uint32_t scope_id,
                                   std::uint32_t name_id) const noexcept {
  const auto it = counter_index_.find(key(scope_id, name_id));
  return it == counter_index_.end() ? CounterId{} : CounterId{it->second};
}

HistogramId StatsStore::find_histogram(std::uint32_t scope_id,
                                       std::uint32_t name_id) const noexcept {
  const auto it = histogram_index_.find(key(scope_id, name_id));
  return it == histogram_index_.end() ? HistogramId{} : HistogramId{it->second};
}

}  // namespace sf::stats
