#include "metrics/regression.hpp"

#include <cmath>

namespace sf::metrics {

LinearFit fit_line(std::span<const double> xs, std::span<const double> ys) {
  LinearFit fit;
  const std::size_t n = xs.size();
  if (n < 2 || ys.size() != n) return fit;

  double mx = 0;
  double my = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);

  double sxx = 0;
  double sxy = 0;
  double syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0) return fit;

  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  if (syy == 0) {
    fit.r2 = 1.0;  // constant ys perfectly explained by zero slope
  } else {
    double ss_res = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double pred = fit.slope * xs[i] + fit.intercept;
      ss_res += (ys[i] - pred) * (ys[i] - pred);
    }
    fit.r2 = 1.0 - ss_res / syy;
  }
  return fit;
}

}  // namespace sf::metrics
