#pragma once

#include <span>

namespace sf::metrics {

/// Ordinary-least-squares fit of y = slope * x + intercept.
///
/// Both figures in the paper's motivation section report regression slopes
/// (Fig. 1: Docker vs Knative total time; Fig. 2: native 0.28, Knative
/// 0.30, condor-container 0.96), so slope extraction is a first-class
/// metric here.
struct LinearFit {
  double slope = 0;
  double intercept = 0;
  double r2 = 0;  ///< coefficient of determination
};

/// Fits a line through (xs[i], ys[i]). Requires xs.size() == ys.size() >= 2
/// and non-constant xs; otherwise returns a zeroed fit.
LinearFit fit_line(std::span<const double> xs, std::span<const double> ys);

}  // namespace sf::metrics
