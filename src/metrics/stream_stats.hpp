// Zero-alloc hot-path stats: flat counter slots keyed by interned ids and
// streaming log-linear histograms with fixed bucket arrays (the Envoy
// stats_impl / HdrHistogram shape). Everything is driven by caller-supplied
// sim time — the subsystem schedules no events and draws no randomness, so
// enabling it perturbs neither the event stream nor any fingerprint.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace sf::stats {

/// Streaming log-linear histogram over non-negative integer values
/// (callers typically record latencies in microseconds). Values below 8
/// land in exact unit buckets; above that each power-of-two range splits
/// into 8 sub-buckets, giving <= 12.5% relative error per bucket up to
/// ~2^32 with a fixed 242-slot array and no allocation ever.
class Histogram {
 public:
  static constexpr int kSubBits = 3;                       // 8 sub-buckets
  static constexpr std::size_t kSub = std::size_t{1} << kSubBits;
  static constexpr std::size_t kBuckets = (32 - kSubBits) * kSub + kSub + 1;

  /// Bucket index for a value (last slot is the overflow bucket).
  [[nodiscard]] static std::size_t index_of(std::uint64_t value) noexcept;
  /// Inclusive lower bound of a bucket; used for interpolation.
  [[nodiscard]] static std::uint64_t bucket_floor(std::size_t index) noexcept;

  void record(std::uint64_t value) noexcept;
  /// Convenience: record a duration in seconds as integer microseconds.
  void record_seconds(double seconds) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t min() const noexcept;
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept;

  /// Interpolated value at quantile p in [0, 1]; 0 when empty.
  [[nodiscard]] std::uint64_t percentile(double p) const noexcept;
  [[nodiscard]] double percentile_seconds(double p) const noexcept;

  void merge(const Histogram& other) noexcept;
  void clear() noexcept;

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
  std::uint64_t max_ = 0;
};

/// Two-bucket rolling histogram: records land in the current interval,
/// reads merge current + previous. Rotation is lazy on the caller-passed
/// sim time (deterministic flush — no scheduled events). Interval 0 means
/// "never rotate" (a plain cumulative histogram).
class RollingHistogram {
 public:
  explicit RollingHistogram(double interval_s = 0.0)
      : interval_s_(interval_s) {}

  void record_seconds(double seconds, double now) noexcept;
  /// Merged view of the current + previous intervals.
  [[nodiscard]] double percentile_seconds(double p, double now) noexcept;
  [[nodiscard]] std::uint64_t window_count(double now) noexcept;
  void clear() noexcept;

 private:
  void rotate(double now) noexcept;

  double interval_s_;
  std::uint64_t epoch_ = 0;  // floor(now / interval)
  Histogram cur_;
  Histogram prev_;
};

/// Handle types: indexes into the store's dense slot vectors. Stable for
/// the life of the store; cheap to copy and to resolve on the hot path.
struct CounterId {
  std::uint32_t slot = ~std::uint32_t{0};
  [[nodiscard]] bool valid() const noexcept { return slot != ~std::uint32_t{0}; }
};
struct HistogramId {
  std::uint32_t slot = ~std::uint32_t{0};
  [[nodiscard]] bool valid() const noexcept { return slot != ~std::uint32_t{0}; }
};

/// Flat stats store: entries are keyed by (scope_id, name_id) pairs of
/// caller-interned 32-bit ids. Creation (`counter()` / `histogram()`) may
/// allocate; the returned handles make the record path — `add()`,
/// `record_seconds()` — a bounds-unchecked vector index with no hashing,
/// no strings, and no allocation. Iteration order is creation order, so
/// dumps are deterministic.
class StatsStore {
 public:
  [[nodiscard]] CounterId counter(std::uint32_t scope_id,
                                  std::uint32_t name_id);
  [[nodiscard]] HistogramId histogram(std::uint32_t scope_id,
                                      std::uint32_t name_id);

  void add(CounterId id, std::uint64_t delta) noexcept {
    counters_[id.slot].value += delta;
  }
  void record_seconds(HistogramId id, double seconds) noexcept {
    histograms_[id.slot].hist.record_seconds(seconds);
  }

  [[nodiscard]] std::uint64_t value(CounterId id) const noexcept {
    return counters_[id.slot].value;
  }
  [[nodiscard]] const Histogram& hist(HistogramId id) const noexcept {
    return histograms_[id.slot].hist;
  }

  /// Lookup without creating; invalid handle when absent.
  [[nodiscard]] CounterId find_counter(std::uint32_t scope_id,
                                       std::uint32_t name_id) const noexcept;
  [[nodiscard]] HistogramId find_histogram(std::uint32_t scope_id,
                                           std::uint32_t name_id) const noexcept;

  [[nodiscard]] std::size_t counter_count() const noexcept {
    return counters_.size();
  }
  [[nodiscard]] std::size_t histogram_count() const noexcept {
    return histograms_.size();
  }

  /// Visit every counter in creation order: f(scope_id, name_id, value).
  template <typename F>
  void each_counter(F&& f) const {
    for (const auto& c : counters_) f(c.scope_id, c.name_id, c.value);
  }
  /// Visit every histogram in creation order: f(scope_id, name_id, hist).
  template <typename F>
  void each_histogram(F&& f) const {
    for (const auto& h : histograms_) f(h.scope_id, h.name_id, h.hist);
  }

 private:
  struct CounterSlot {
    std::uint32_t scope_id = 0;
    std::uint32_t name_id = 0;
    std::uint64_t value = 0;
  };
  struct HistogramSlot {
    std::uint32_t scope_id = 0;
    std::uint32_t name_id = 0;
    Histogram hist;
  };
  static std::uint64_t key(std::uint32_t scope, std::uint32_t name) noexcept {
    return (std::uint64_t{scope} << 32) | name;
  }

  std::vector<CounterSlot> counters_;
  std::vector<HistogramSlot> histograms_;
  std::unordered_map<std::uint64_t, std::uint32_t> counter_index_;
  std::unordered_map<std::uint64_t, std::uint32_t> histogram_index_;
};

}  // namespace sf::stats
