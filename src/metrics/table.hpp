#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

namespace sf::metrics {

/// A table cell: text or a number (printed with fixed precision).
using Cell = std::variant<std::string, double, std::int64_t>;

/// Small result-table builder used by the bench harness to print the rows
/// and series each paper figure reports, as aligned text, markdown or CSV.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int precision = 3);

  Table& add_row(std::vector<Cell> cells);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const { return headers_.size(); }

  void print_text(std::ostream& os) const;
  void print_markdown(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

 private:
  [[nodiscard]] std::string render(const Cell& c) const;
  [[nodiscard]] std::vector<std::size_t> widths() const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_;
};

}  // namespace sf::metrics
