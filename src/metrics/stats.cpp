#include "metrics/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sf::metrics {

SummaryStats summarize(std::span<const double> values) {
  SummaryStats s;
  if (values.empty()) return s;
  s.count = values.size();
  s.min = values.front();
  s.max = values.front();
  for (double v : values) {
    s.sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = s.sum / static_cast<double>(s.count);
  double sq = 0;
  for (double v : values) sq += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(sq / static_cast<double>(s.count));
  return s;
}

double percentile(std::vector<double> values, double p) {
  assert(!values.empty());
  assert(p >= 0 && p <= 100);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double pos = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1 - frac) + values[hi] * frac;
}

}  // namespace sf::metrics
