#include "metrics/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace sf::metrics {

Table::Table(std::vector<std::string> headers, int precision)
    : headers_(std::move(headers)), precision_(precision) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: needs at least one column");
  }
}

Table& Table::add_row(std::vector<Cell> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: wrong cell count");
  }
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::render(const Cell& c) const {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  std::ostringstream os;
  if (const auto* d = std::get_if<double>(&c)) {
    os << std::fixed << std::setprecision(precision_) << *d;
  } else {
    os << std::get<std::int64_t>(c);
  }
  return os.str();
}

std::vector<std::size_t> Table::widths() const {
  std::vector<std::size_t> w(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) w[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      w[i] = std::max(w[i], render(row[i]).size());
    }
  }
  return w;
}

void Table::print_text(std::ostream& os) const {
  const auto w = widths();
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << "  " << std::setw(static_cast<int>(w[i])) << cells[i];
    }
    os << '\n';
  };
  line(headers_);
  std::vector<std::string> rule;
  rule.reserve(w.size());
  for (auto width : w) rule.emplace_back(width, '-');
  line(rule);
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const auto& c : row) cells.push_back(render(c));
    line(cells);
  }
}

void Table::print_markdown(std::ostream& os) const {
  os << '|';
  for (const auto& h : headers_) os << ' ' << h << " |";
  os << "\n|";
  for (std::size_t i = 0; i < headers_.size(); ++i) os << "---|";
  os << '\n';
  for (const auto& row : rows_) {
    os << '|';
    for (const auto& c : row) os << ' ' << render(c) << " |";
    os << '\n';
  }
}

void Table::print_csv(std::ostream& os) const {
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    os << headers_[i] << (i + 1 < headers_.size() ? "," : "\n");
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << render(row[i]) << (i + 1 < row.size() ? "," : "\n");
    }
  }
}

}  // namespace sf::metrics
