#pragma once

#include <cmath>
#include <stdexcept>

namespace sf::metrics {

/// A point on the (native, container, serverless) execution-mode simplex
/// used by Figure 5's ternary trade-off plot. Fractions sum to 1.
struct MixPoint {
  double native = 0;
  double container = 0;
  double serverless = 0;

  void validate() const {
    if (native < -1e-9 || container < -1e-9 || serverless < -1e-9 ||
        std::abs(native + container + serverless - 1.0) > 1e-6) {
      throw std::invalid_argument("MixPoint: fractions must sum to 1");
    }
  }
};

/// Cartesian coordinates of a simplex point inside the unit-side triangle
/// with corners native=(0,0), container=(1,0), serverless=(0.5, sqrt(3)/2).
struct TernaryXY {
  double x = 0;
  double y = 0;
};

inline TernaryXY to_ternary_xy(const MixPoint& m) {
  m.validate();
  TernaryXY p;
  p.x = m.container + 0.5 * m.serverless;
  p.y = std::sqrt(3.0) / 2.0 * m.serverless;
  return p;
}

/// Isolation score of a mix, following the paper's qualitative axis:
/// per-task containers give full isolation (1.0), serverless containers
/// give "weak isolation through container reuse" (0.5), native gives none.
inline double isolation_score(const MixPoint& m) {
  m.validate();
  return m.container * 1.0 + m.serverless * 0.5;
}

}  // namespace sf::metrics
