#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace sf::metrics {

/// Summary statistics over a sample.
struct SummaryStats {
  std::size_t count = 0;
  double mean = 0;
  double stddev = 0;  ///< population standard deviation
  double min = 0;
  double max = 0;
  double sum = 0;
};

/// Computes summary statistics; an empty span yields a zeroed struct.
SummaryStats summarize(std::span<const double> values);

/// Linear-interpolated percentile (p in [0,100]) of a sample.
/// Precondition: values non-empty.
double percentile(std::vector<double> values, double p);

}  // namespace sf::metrics
