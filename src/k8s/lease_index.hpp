#pragma once

#include <bit>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace sf::k8s {

/// Calendarized node-lease deadline index.
///
/// Heartbeats are cohort-shaped: every node renewed by the same wheel tick
/// shares one lease timestamp, so — exactly like the EventQueue's
/// time-bucketed heap — the priority structure orders *timestamps*, not
/// nodes. One bucket per distinct lease time holds an intrusive
/// doubly-linked list of node slots; a binary min-heap (with back-pointers
/// for O(log n) removal of arbitrary buckets) orders bucket times; a hash
/// keyed by the timestamp's bit pattern finds the bucket a renewal moves
/// into. Renewing a cohort of 10k nodes into the current tick's bucket is
/// 10k O(1) list moves plus one bucket allocation; a lifecycle sweep pops
/// only buckets whose time has actually expired — zero per-node work when
/// every lease is fresh.
///
/// Only *ready* nodes are tracked (the lifecycle controller's expiry
/// predicate `ready && age > duration` becomes plain membership); the
/// caller maintains that invariant via its set_node_ready hooks.
class LeaseIndex {
 public:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  [[nodiscard]] bool tracked(std::uint32_t slot) const {
    return slot < bucket_of_.size() && bucket_of_[slot] != kNil;
  }
  [[nodiscard]] std::size_t size() const { return tracked_; }

  /// Starts tracking `slot` with lease timestamp `time`. No-op when
  /// already tracked (use renew for that).
  void track(std::uint32_t slot, double time) {
    if (slot >= bucket_of_.size()) {
      bucket_of_.resize(slot + 1, kNil);
      prev_.resize(slot + 1, kNil);
      next_.resize(slot + 1, kNil);
    }
    if (bucket_of_[slot] != kNil) return;
    append_to_bucket(slot, bucket_for(time));
    ++tracked_;
  }

  /// Stops tracking `slot`. Idempotent.
  void untrack(std::uint32_t slot) {
    if (!tracked(slot)) return;
    unlink(slot);
    --tracked_;
  }

  /// Moves a tracked slot to lease timestamp `time`; tracks it when it is
  /// not. Renewals within one cohort share `time`, so all but the first
  /// hit the cached target bucket.
  void renew(std::uint32_t slot, double time) {
    if (!tracked(slot)) {
      track(slot, time);
      return;
    }
    const std::uint32_t target = bucket_for(time);
    if (bucket_of_[slot] == target) return;
    unlink(slot);
    append_to_bucket(slot, target);
  }

  /// Pops every slot whose lease satisfies `now - lease > duration` — the
  /// exact float predicate the old per-node rescan applied, evaluated once
  /// per bucket (all members share the timestamp). Oldest bucket first;
  /// calls fn(slot) for each popped slot. Popped slots become untracked.
  template <typename F>
  void pop_expired(double now, double duration, F&& fn) {
    while (!heap_.empty() && now - heap_.front().time > duration) {
      const std::uint32_t b = heap_.front().bucket;
      std::uint32_t s = buckets_[b].head;
      while (s != kNil) {
        const std::uint32_t nxt = next_[s];
        bucket_of_[s] = kNil;
        --tracked_;
        fn(s);
        s = nxt;
      }
      buckets_[b].head = buckets_[b].tail = kNil;
      retire_bucket(b);
    }
  }

 private:
  struct Bucket {
    double time = 0;
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
    std::uint32_t heap_pos = 0;
  };
  struct HeapEntry {
    double time;
    std::uint32_t bucket;
  };

  /// -0.0 folds into +0.0 so both land in the same bucket.
  static std::uint64_t time_key(double t) {
    return std::bit_cast<std::uint64_t>(t == 0.0 ? 0.0 : t);
  }

  std::uint32_t bucket_for(double time) {
    if (cached_bucket_ != kNil && buckets_[cached_bucket_].time == time) {
      return cached_bucket_;
    }
    auto [it, inserted] = by_time_.try_emplace(time_key(time), 0);
    if (!inserted) {
      cached_bucket_ = it->second;
      return it->second;
    }
    std::uint32_t b;
    if (!free_buckets_.empty()) {
      b = free_buckets_.back();
      free_buckets_.pop_back();
      buckets_[b] = Bucket{};
    } else {
      b = static_cast<std::uint32_t>(buckets_.size());
      buckets_.emplace_back();
    }
    buckets_[b].time = time;
    it->second = b;
    sift_up(heap_.size(), HeapEntry{time, b});
    cached_bucket_ = b;
    return b;
  }

  void append_to_bucket(std::uint32_t slot, std::uint32_t b) {
    Bucket& bk = buckets_[b];
    prev_[slot] = bk.tail;
    next_[slot] = kNil;
    if (bk.tail == kNil) {
      bk.head = slot;
    } else {
      next_[bk.tail] = slot;
    }
    bk.tail = slot;
    bucket_of_[slot] = b;
  }

  void unlink(std::uint32_t slot) {
    const std::uint32_t b = bucket_of_[slot];
    Bucket& bk = buckets_[b];
    if (prev_[slot] == kNil) {
      bk.head = next_[slot];
    } else {
      next_[prev_[slot]] = next_[slot];
    }
    if (next_[slot] == kNil) {
      bk.tail = prev_[slot];
    } else {
      prev_[next_[slot]] = prev_[slot];
    }
    bucket_of_[slot] = kNil;
    if (bk.head == kNil) retire_bucket(b);
  }

  void retire_bucket(std::uint32_t b) {
    by_time_.erase(time_key(buckets_[b].time));
    remove_heap_at(buckets_[b].heap_pos);
    free_buckets_.push_back(b);
    if (cached_bucket_ == b) cached_bucket_ = kNil;
  }

  void place(std::size_t i, const HeapEntry& e) {
    heap_[i] = e;
    buckets_[e.bucket].heap_pos = static_cast<std::uint32_t>(i);
  }

  void sift_up(std::size_t i, HeapEntry moving) {
    if (i == heap_.size()) heap_.emplace_back();
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (heap_[parent].time <= moving.time) break;
      place(i, heap_[parent]);
      i = parent;
    }
    place(i, moving);
  }

  void sift_down(std::size_t i, HeapEntry moving) {
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && heap_[child + 1].time < heap_[child].time) {
        ++child;
      }
      if (heap_[child].time >= moving.time) break;
      place(i, heap_[child]);
      i = child;
    }
    place(i, moving);
  }

  void remove_heap_at(std::size_t pos) {
    const HeapEntry last = heap_.back();
    heap_.pop_back();
    if (pos == heap_.size()) return;
    if (pos > 0 && last.time < heap_[(pos - 1) / 2].time) {
      sift_up(pos, last);
    } else {
      sift_down(pos, last);
    }
  }

  std::vector<Bucket> buckets_;
  std::vector<std::uint32_t> free_buckets_;
  std::vector<HeapEntry> heap_;  ///< one entry per distinct lease time
  std::unordered_map<std::uint64_t, std::uint32_t> by_time_;
  std::uint32_t cached_bucket_ = kNil;  ///< last bucket_for() result
  // Per node slot: owning bucket + intrusive list links.
  std::vector<std::uint32_t> bucket_of_;
  std::vector<std::uint32_t> prev_;
  std::vector<std::uint32_t> next_;
  std::size_t tracked_ = 0;
};

}  // namespace sf::k8s
