#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace sf::k8s {

/// Dense slot-vector object store keyed by name — the control-plane
/// counterpart of the PsResource/FlowNetwork flat job tables.
///
/// Objects live in a deque of reusable slots (stable addresses: a pointer
/// returned by find() stays valid for the object's whole lifetime, exactly
/// like the former `std::map<std::string, T>` nodes). A side index maps
/// name -> slot and doubles as the iteration order: for_each() visits
/// objects in ascending name order, bit-identical to iterating the old
/// map, so every controller that reconciles "in list order" behaves the
/// same. Erasing hands the slot to a free list; the vacated slot is reset
/// to T{} so captured resources (pre-stop hooks, label maps) release
/// immediately rather than lingering until reuse.
///
/// Lookups go through a hash index sharded by key hash (string_views into
/// the ordered index's own keys, so each name is stored once): at 10k pods
/// a find() is O(1) instead of an O(log n) walk of string compares, while
/// iteration keeps the deterministic name order from the ordered index.
template <typename T>
class NamedStore {
 public:
  /// Sentinel returned by slot_of() for absent names. Slot ids are reused
  /// after erase; hold one only while the object provably stays alive.
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  [[nodiscard]] const T* find(const std::string& name) const {
    auto it = hash_.find(std::string_view{name});
    return it == hash_.end() ? nullptr : &slots_[it->second];
  }

  [[nodiscard]] T* find(const std::string& name) {
    auto it = hash_.find(std::string_view{name});
    return it == hash_.end() ? nullptr : &slots_[it->second];
  }

  [[nodiscard]] bool contains(const std::string& name) const {
    return hash_.contains(std::string_view{name});
  }

  [[nodiscard]] std::size_t size() const { return index_.size(); }
  [[nodiscard]] bool empty() const { return index_.empty(); }

  /// Dense slot id for `name`; kNoSlot when absent. The slot stays stable
  /// for the object's lifetime, so side tables indexed by slot (per-node
  /// pod posting lists, usage aggregates) can reference objects without
  /// re-hashing names on every hot-path touch.
  [[nodiscard]] std::uint32_t slot_of(const std::string& name) const {
    auto it = hash_.find(std::string_view{name});
    return it == hash_.end() ? kNoSlot : it->second;
  }

  [[nodiscard]] const T& at(std::uint32_t slot) const { return slots_[slot]; }
  [[nodiscard]] T& at(std::uint32_t slot) { return slots_[slot]; }

  struct InsertResult {
    T* obj = nullptr;
    std::uint32_t slot = kNoSlot;
    bool inserted = false;
  };

  /// Inserts under `name` unless it exists. Returns the stored object, its
  /// slot, and whether the insert happened (find-or-insert, like
  /// map::emplace).
  InsertResult insert(std::string name, T obj) {
    auto [it, inserted] = index_.try_emplace(std::move(name), 0);
    if (!inserted) return {&slots_[it->second], it->second, false};
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
      slots_[slot] = std::move(obj);
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.push_back(std::move(obj));
    }
    it->second = slot;
    hash_.emplace(std::string_view{it->first}, slot);
    return {&slots_[slot], slot, true};
  }

  /// Removes the object and returns it (for Deleted notifications);
  /// nullopt when absent.
  std::optional<T> take(const std::string& name) {
    auto it = index_.find(name);
    if (it == index_.end()) return std::nullopt;
    const std::uint32_t slot = it->second;
    hash_.erase(std::string_view{it->first});  // before the key dies
    index_.erase(it);
    std::optional<T> out(std::move(slots_[slot]));
    slots_[slot] = T{};
    free_.push_back(slot);
    return out;
  }

  /// Visits every object in ascending name order (the old map order).
  /// The callback must not insert into or erase from the store.
  template <typename F>
  void for_each(F&& fn) const {
    for (const auto& [name, slot] : index_) fn(slots_[slot]);
  }

 private:
  std::deque<T> slots_;
  std::vector<std::uint32_t> free_;
  std::map<std::string, std::uint32_t> index_;  ///< iteration order
  std::unordered_map<std::string_view, std::uint32_t> hash_;  ///< lookups
};

}  // namespace sf::k8s
