#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "container/runtime.hpp"
#include "net/http.hpp"

namespace sf::k8s {

using Uid = std::uint64_t;

/// Label set used for selector matching.
using Labels = std::map<std::string, std::string>;

/// True when every selector entry appears in `labels`.
bool selector_matches(const Labels& selector, const Labels& labels);

/// A registered worker node's allocatable capacity. `ready` is the node
/// condition maintained by the node-lifecycle controller: it flips to
/// false when the kubelet's lease expires (node crash) and back to true
/// when heartbeats resume. The scheduler only binds to ready nodes.
struct NodeObject {
  std::string name;
  double allocatable_cpu = 0;      ///< cores
  double allocatable_memory = 0;   ///< bytes
  net::NodeId net_id = 0;
  bool ready = true;
};

enum class PodPhase {
  kPending,      ///< created, not yet bound to a node
  kScheduled,    ///< bound; kubelet is pulling/creating
  kRunning,      ///< container started
  kTerminating,  ///< deletion requested; draining
  kFailed,       ///< could not start (image missing, OOM)
};

const char* to_string(PodPhase phase);

/// A single-container pod. `ready` flips once the kubelet's readiness
/// probe passes; `port` is where the pod's server (for Knative: the
/// queue-proxy) listens on its node.
struct Pod {
  Uid uid = 0;
  std::string name;
  Labels labels;
  container::ContainerSpec container;
  double cpu_request = 0.5;
  double memory_request = 512e6;
  std::string owner;  ///< owning Deployment name ("" for bare pods)

  // Status.
  std::string node_name;  ///< "" until scheduled
  PodPhase phase = PodPhase::kPending;
  bool ready = false;
  net::NodeId host_net_id = 0;
  net::Port port = 0;

  /// Graceful-shutdown hook (Knative queue-proxy drain). The kubelet calls
  /// it on termination and waits for `done` before killing the container.
  std::function<void(std::function<void()> done)> pre_stop;
};

/// A Deployment: keeps `replicas` pods matching `selector` alive.
/// (ServerFlow folds the ReplicaSet layer into the Deployment controller —
/// the indirection adds nothing at this fidelity.)
struct Deployment {
  Uid uid = 0;
  std::string name;
  Labels selector;
  Labels pod_labels;
  container::ContainerSpec pod_template;
  double cpu_request = 0.5;
  double memory_request = 512e6;
  int replicas = 0;
};

/// A Service: stable name load-balancing across ready pods.
struct Service {
  Uid uid = 0;
  std::string name;
  Labels selector;
};

/// One routable backend of a Service.
struct Endpoint {
  std::string pod_name;
  net::NodeId net_id = 0;
  net::Port port = 0;

  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

/// Ready backends of one Service, maintained by the endpoints controller.
struct Endpoints {
  std::string service_name;
  std::vector<Endpoint> ready;
};

}  // namespace sf::k8s
