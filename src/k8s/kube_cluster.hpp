#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "container/image_cache.hpp"
#include "container/registry.hpp"
#include "container/runtime.hpp"
#include "k8s/api_server.hpp"
#include "k8s/controllers.hpp"
#include "k8s/heartbeat_wheel.hpp"
#include "k8s/kubelet.hpp"
#include "k8s/scheduler.hpp"

namespace sf::k8s {

/// Everything that lives on one Kubernetes worker node.
struct WorkerNode {
  cluster::Node* node = nullptr;
  std::unique_ptr<container::ImageCache> cache;
  std::unique_ptr<container::ContainerRuntime> runtime;
  std::unique_ptr<Kubelet> kubelet;
  /// Heartbeat-wheel membership; kNone until node lifecycle is enabled.
  std::uint32_t hb_member = HeartbeatWheel::kNone;
};

/// A fully wired Kubernetes control plane over a set of cluster nodes:
/// API server, scheduler (with image-locality scoring), deployment and
/// endpoints controllers, plus one kubelet/image-cache/container-runtime
/// per worker.
class KubeCluster {
 public:
  /// `workers` selects which cluster nodes join as workers; the registry
  /// is the image source for every pull.
  KubeCluster(cluster::Cluster& cluster, container::Registry& registry,
              std::vector<cluster::Node*> workers,
              container::RuntimeOverheads overheads = {});

  KubeCluster(const KubeCluster&) = delete;
  KubeCluster& operator=(const KubeCluster&) = delete;

  [[nodiscard]] ApiServer& api() { return api_; }
  [[nodiscard]] Scheduler& scheduler() { return scheduler_; }
  [[nodiscard]] cluster::Cluster& cluster() { return cluster_; }
  [[nodiscard]] container::Registry& registry() { return registry_; }

  /// Total pods ever created by the deployment controller (restart and
  /// replacement accounting in tests).
  [[nodiscard]] std::uint64_t controller_pods_created() const {
    return deployment_controller_.pods_created();
  }
  [[nodiscard]] std::uint64_t controller_pods_replaced() const {
    return deployment_controller_.pods_replaced();
  }

  /// Endpoints rebuilds performed by the endpoints controller (probe
  /// counter for the dirty-marking regression test).
  [[nodiscard]] std::uint64_t endpoints_refreshes() const {
    return endpoints_controller_.refreshes();
  }

  [[nodiscard]] WorkerNode& worker(const std::string& node_name);
  [[nodiscard]] std::vector<std::string> worker_names() const;
  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

  /// Pre-stages an image's layers into every worker's cache (no cost),
  /// modelling images distributed before the experiment starts.
  void seed_image_everywhere(const container::Image& image);

  /// Runs `work` core-seconds inside the container backing `pod_name`,
  /// under the pod's cgroup limits. `on_done(ok)` fires with false when
  /// the pod (or its container) is gone. This is the hook Knative's
  /// queue-proxy uses to execute requests in the user container.
  void exec_in_pod(const std::string& pod_name, double work,
                   std::function<void(bool)> on_done);

  // ---- Fault tolerance ----------------------------------------------

  /// Kills one pod through its kubelet (fault injection). Returns false
  /// when no kubelet currently runs the pod.
  bool kill_pod(const std::string& pod_name);

  /// Turns on the crash-detection control loop: the shared heartbeat
  /// wheel (one engine event renews every live kubelet's lease per
  /// interval) plus the node-lifecycle controller (lease expiry → NotReady
  /// → evictions → Ready again on reboot). Off by default because both
  /// keep events pending forever — call this only from scenarios that stop
  /// on workload completion (fault injection, lifecycle-enabled serving
  /// runs). Idempotent.
  void enable_node_lifecycle(NodeLifecycleConfig cfg = {},
                             double heartbeat_interval_s = 1.0);

  [[nodiscard]] bool node_lifecycle_enabled() const {
    return lifecycle_controller_ != nullptr;
  }
  [[nodiscard]] const NodeLifecycleController* lifecycle_controller() const {
    return lifecycle_controller_.get();
  }

 private:
  cluster::Cluster& cluster_;
  container::Registry& registry_;
  ApiServer api_;
  HeartbeatWheel heartbeat_wheel_;
  std::map<std::string, WorkerNode> workers_;
  Scheduler scheduler_;
  DeploymentController deployment_controller_;
  EndpointsController endpoints_controller_;
  std::unique_ptr<NodeLifecycleController> lifecycle_controller_;
};

}  // namespace sf::k8s
