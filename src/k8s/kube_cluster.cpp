#include "k8s/kube_cluster.hpp"

#include <stdexcept>
#include <utility>

namespace sf::k8s {

KubeCluster::KubeCluster(cluster::Cluster& cluster,
                         container::Registry& registry,
                         std::vector<cluster::Node*> workers,
                         container::RuntimeOverheads overheads)
    : cluster_(cluster),
      registry_(registry),
      api_(cluster.sim()),
      heartbeat_wheel_(api_),
      scheduler_(api_,
                 [this](const std::string& node, const std::string& image) {
                   auto it = workers_.find(node);
                   return it != workers_.end() &&
                          it->second.cache->has_image(image, registry_);
                 }),
      deployment_controller_(api_),
      endpoints_controller_(api_) {
  for (cluster::Node* node : workers) {
    WorkerNode w;
    w.node = node;
    w.cache = std::make_unique<container::ImageCache>(*node,
                                                      cluster_.network());
    w.runtime = std::make_unique<container::ContainerRuntime>(
        *node, *w.cache, overheads);
    w.kubelet = std::make_unique<Kubelet>(api_, *node, *w.cache, *w.runtime,
                                          registry_);
    api_.register_node(NodeObject{node->name(), node->spec().cores,
                                  node->spec().memory_bytes,
                                  node->net_id()});
    auto [it, inserted] = workers_.emplace(node->name(), std::move(w));
    // Ordered teardown on node crash: the kubelet forgets its pods first
    // (so late pull/exec callbacks die at their managed_ lookup), then the
    // runtime fails in-flight execs and frees container memory, then the
    // image cache fails in-flight pulls. The heartbeat wheel drops the
    // node last — a dead kubelet stops ticking instead of being polled
    // forever — and picks it back up on reboot.
    WorkerNode* wp = &it->second;
    node->on_fail([this, wp] {
      wp->kubelet->handle_node_crash();
      wp->runtime->handle_node_crash();
      wp->cache->handle_node_crash();
      if (wp->hb_member != HeartbeatWheel::kNone) {
        heartbeat_wheel_.remove(wp->hb_member);
      }
    });
    node->on_recover([this, wp] {
      if (wp->hb_member != HeartbeatWheel::kNone) {
        heartbeat_wheel_.restore(wp->hb_member);
      }
    });
  }
}

bool KubeCluster::kill_pod(const std::string& pod_name) {
  const Pod* pod = api_.get_pod(pod_name);
  if (pod == nullptr || pod->node_name.empty()) return false;
  auto it = workers_.find(pod->node_name);
  if (it == workers_.end()) return false;
  return it->second.kubelet->kill_pod(pod_name);
}

void KubeCluster::enable_node_lifecycle(NodeLifecycleConfig cfg,
                                        double heartbeat_interval_s) {
  // The control plane lives on cluster node 0 by convention (the head
  // node hosts the API server in the paper's testbed). Heartbeats are
  // direct API calls in the model, so each worker gets a connectivity
  // probe: a rack cut between worker and head makes its lease go stale
  // even though the node itself is healthy — the split-brain case.
  const net::NodeId control_plane = cluster_.node(0).net_id();
  for (auto& [name, w] : workers_) {
    const net::NodeId worker_id = w.node->net_id();
    if (worker_id != control_plane) {
      w.kubelet->set_connectivity_probe([this, worker_id, control_plane] {
        return !cluster_.network().partitioned(worker_id, control_plane);
      });
    }
    // Joining the wheel renews immediately when alive — the same contract
    // start_heartbeats had at enable time.
    if (w.hb_member == HeartbeatWheel::kNone) {
      w.hb_member = heartbeat_wheel_.add(*w.kubelet);
    }
  }
  // The wheel's tick must be scheduled before the lifecycle controller's
  // sweep: at coincident instants heartbeats then fire before the sweep,
  // exactly as the per-kubelet timers (scheduled here, before the
  // controller existed) used to.
  heartbeat_wheel_.start(heartbeat_interval_s);
  if (lifecycle_controller_ == nullptr) {
    lifecycle_controller_ =
        std::make_unique<NodeLifecycleController>(api_, cfg);
  }
}

WorkerNode& KubeCluster::worker(const std::string& node_name) {
  auto it = workers_.find(node_name);
  if (it == workers_.end()) {
    throw std::out_of_range("KubeCluster: unknown worker " + node_name);
  }
  return it->second;
}

std::vector<std::string> KubeCluster::worker_names() const {
  std::vector<std::string> names;
  names.reserve(workers_.size());
  for (const auto& [name, w] : workers_) names.push_back(name);
  return names;
}

void KubeCluster::exec_in_pod(const std::string& pod_name, double work,
                              std::function<void(bool)> on_done) {
  const Pod* pod = api_.get_pod(pod_name);
  if (pod == nullptr || pod->node_name.empty()) {
    cluster_.sim().call_in(0, [cb = std::move(on_done)] { cb(false); });
    return;
  }
  auto it = workers_.find(pod->node_name);
  if (it == workers_.end()) {
    cluster_.sim().call_in(0, [cb = std::move(on_done)] { cb(false); });
    return;
  }
  WorkerNode& w = it->second;
  const container::ContainerId cid = w.kubelet->container_for(pod_name);
  if (cid == container::kNoContainer) {
    cluster_.sim().call_in(0, [cb = std::move(on_done)] { cb(false); });
    return;
  }
  w.runtime->exec(cid, work, std::move(on_done));
}

void KubeCluster::seed_image_everywhere(const container::Image& image) {
  for (auto& [name, w] : workers_) w.cache->seed_image(image);
}

}  // namespace sf::k8s
