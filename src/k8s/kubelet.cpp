#include "k8s/kubelet.hpp"

#include <utility>

namespace sf::k8s {

Kubelet::Kubelet(ApiServer& api, cluster::Node& node,
                 container::ImageCache& cache,
                 container::ContainerRuntime& runtime,
                 container::Registry& registry,
                 double readiness_probe_delay_s)
    : api_(api),
      node_(node),
      cache_(cache),
      runtime_(runtime),
      registry_(registry),
      readiness_delay_(readiness_probe_delay_s) {
  // Node-scoped: pod events for other nodes never reach this kubelet, so
  // cluster-wide churn costs each kubelet nothing instead of a filtered
  // callback per event per node.
  api_.watch_pods_on_node(node.name(), [this](EventType type, const Pod& pod) {
    on_pod_event(type, pod);
  });
}

container::ContainerId Kubelet::container_for(
    const std::string& pod_name) const {
  auto it = managed_.find(pod_name);
  return it == managed_.end() ? container::kNoContainer : it->second.cid;
}

bool Kubelet::kill_pod(const std::string& pod_name) {
  auto it = managed_.find(pod_name);
  if (it == managed_.end() || it->second.terminate_requested) return false;
  api_.sim().trace().record(api_.sim().now(), "kubelet", "pod_killed",
                            {{"pod", pod_name}, {"node", node_.name()}});
  fail_pod(pod_name);
  return true;
}

void Kubelet::handle_node_crash() {
  managed_.clear();
}

void Kubelet::on_pod_event(EventType type, const Pod& pod) {
  switch (type) {
    case EventType::kAdded:
    case EventType::kModified: {
      auto it = managed_.find(pod.name);
      if (it == managed_.end()) {
        if (pod.phase == PodPhase::kScheduled) {
          managed_.emplace(pod.name, Managed{});
          realize(pod);
        } else if (pod.phase == PodPhase::kTerminating) {
          // Bound but never realized here (deleted mid-flight).
          api_.finalize_pod_deletion(pod.name);
        }
        return;
      }
      if (pod.phase == PodPhase::kTerminating &&
          !it->second.terminate_requested) {
        it->second.terminate_requested = true;
        if (it->second.stage == Stage::kRunning) terminate(pod.name);
        // Other stages check the flag when their async step completes.
      }
      break;
    }
    case EventType::kDeleted:
      managed_.erase(pod.name);
      break;
  }
}

void Kubelet::realize(const Pod& pod) {
  const std::string name = pod.name;
  const container::ContainerSpec spec = pod.container;
  const Uid uid = pod.uid;
  api_.sim().trace().record(api_.sim().now(), "kubelet", "realize",
                            {{"pod", name}, {"node", node_.name()}});
  cache_.ensure_image(spec.image, registry_, [this, name, spec,
                                              uid](bool pulled) {
    auto it = managed_.find(name);
    if (it == managed_.end()) return;
    if (!pulled) {
      fail_pod(name);
      return;
    }
    if (it->second.terminate_requested) {
      api_.finalize_pod_deletion(name);
      managed_.erase(name);
      return;
    }
    it->second.stage = Stage::kCreating;
    runtime_.create(spec, [this, name, uid](container::ContainerId cid) {
      auto jt = managed_.find(name);
      if (jt == managed_.end()) return;
      if (cid == container::kNoContainer) {
        fail_pod(name);
        return;
      }
      jt->second.cid = cid;
      if (jt->second.terminate_requested) {
        teardown(name);
        return;
      }
      jt->second.stage = Stage::kStarting;
      runtime_.start(cid, [this, name, uid](bool started) {
        auto kt = managed_.find(name);
        if (kt == managed_.end()) return;
        if (!started) {
          fail_pod(name);
          return;
        }
        if (kt->second.terminate_requested) {
          teardown(name);
          return;
        }
        kt->second.stage = Stage::kRunning;
        const net::Port port = static_cast<net::Port>(10000 + uid % 50000);
        api_.mutate_pod(name, [this, port](Pod& p) {
          p.phase = PodPhase::kRunning;
          p.host_net_id = node_.net_id();
          p.port = port;
        });
        // Readiness probe passes one probe interval later.
        api_.sim().call_in(readiness_delay_, [this, name] {
          auto lt = managed_.find(name);
          if (lt == managed_.end() || lt->second.stage != Stage::kRunning ||
              lt->second.terminate_requested) {
            return;
          }
          api_.mutate_pod(name, [](Pod& p) { p.ready = true; });
        });
      });
    });
  });
}

void Kubelet::terminate(const std::string& pod_name) {
  auto it = managed_.find(pod_name);
  if (it == managed_.end()) return;
  it->second.stage = Stage::kDraining;
  const Pod* pod = api_.get_pod(pod_name);
  if (pod != nullptr && pod->pre_stop) {
    pod->pre_stop([this, pod_name] { teardown(pod_name); });
  } else {
    teardown(pod_name);
  }
}

void Kubelet::teardown(const std::string& pod_name) {
  auto it = managed_.find(pod_name);
  if (it == managed_.end()) return;
  it->second.stage = Stage::kStopping;
  const container::ContainerId cid = it->second.cid;
  auto finish = [this, pod_name] {
    api_.finalize_pod_deletion(pod_name);
    managed_.erase(pod_name);
  };
  if (cid == container::kNoContainer) {
    finish();
    return;
  }
  runtime_.stop(cid, [this, cid, finish](bool) {
    runtime_.remove(cid, [finish](bool) { finish(); });
  });
}

void Kubelet::fail_pod(const std::string& pod_name) {
  auto it = managed_.find(pod_name);
  const bool terminating =
      it != managed_.end() && it->second.terminate_requested;
  if (it != managed_.end() && it->second.cid != container::kNoContainer) {
    const container::ContainerId cid = it->second.cid;
    runtime_.stop(cid, [this, cid](bool) { runtime_.remove(cid, [](bool) {}); });
  }
  managed_.erase(pod_name);
  if (terminating) {
    // Deletion was already requested: finalize instead of regressing the
    // pod to kFailed — a Failed object here would trigger a spurious
    // Deployment replacement on top of the deletion-driven one (counter
    // drift: pods ever created outruns restarts actually needed).
    api_.finalize_pod_deletion(pod_name);
    return;
  }
  api_.sim().trace().record(api_.sim().now(), "kubelet", "pod_failed",
                            {{"pod", pod_name}, {"node", node_.name()}});
  api_.mutate_pod(pod_name, [](Pod& p) {
    p.phase = PodPhase::kFailed;
    p.ready = false;
  });
}

}  // namespace sf::k8s
