#include "k8s/api_server.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace sf::k8s {

// ---- Node slots ---------------------------------------------------------

std::uint32_t ApiServer::node_slot(const std::string& name) {
  auto [it, inserted] = node_slot_ids_.try_emplace(name, 0);
  if (!inserted) return it->second;
  const std::uint32_t slot = static_cast<std::uint32_t>(node_slots_.size());
  it->second = slot;
  node_slots_.emplace_back();
  node_slots_.back().name = name;
  node_lease_.push_back(0.0);
  node_flags_.push_back(0);
  return slot;
}

std::uint32_t ApiServer::find_node_slot(const std::string& name) const {
  const auto it = node_slot_ids_.find(name);
  return it == node_slot_ids_.end() ? kNoSlot : it->second;
}

void ApiServer::drop_recovery_pending(std::uint32_t slot) {
  const auto it =
      std::find(recovery_pending_.begin(), recovery_pending_.end(), slot);
  if (it == recovery_pending_.end()) return;
  *it = recovery_pending_.back();
  recovery_pending_.pop_back();
}

void ApiServer::sync_node_tracking(std::uint32_t slot) {
  NodeSlot& ns = node_slots_[slot];
  node_flags_[slot] =
      static_cast<std::uint8_t>((ns.obj != nullptr ? kNodeRegistered : 0) |
                                (ns.obj != nullptr && ns.obj->ready
                                     ? kNodeReady
                                     : 0));
  if (ns.obj != nullptr && ns.obj->ready) {
    lease_index_.renew(slot, node_lease_[slot]);  // tracks when untracked
    drop_recovery_pending(slot);
  } else {
    lease_index_.untrack(slot);
    if (ns.obj != nullptr &&
        std::find(recovery_pending_.begin(), recovery_pending_.end(), slot) ==
            recovery_pending_.end()) {
      recovery_pending_.push_back(slot);
    }
  }
}

void ApiServer::register_node(NodeObject node) {
  const std::uint32_t slot = node_slot(node.name);
  NodeObject& stored = nodes_[node.name];
  stored = std::move(node);
  NodeSlot& ns = node_slots_[slot];
  ns.obj = &stored;
  node_lease_[slot] = sim_.now();
  sync_node_tracking(slot);
}

bool ApiServer::set_node_ready(const std::string& name, bool ready) {
  const std::uint32_t slot = find_node_slot(name);
  if (slot == kNoSlot) return false;
  NodeSlot& ns = node_slots_[slot];
  if (ns.obj == nullptr || ns.obj->ready == ready) return false;
  ns.obj->ready = ready;
  sync_node_tracking(slot);
  sim_.trace().record(sim_.now(), "api", ready ? "node_ready" : "node_not_ready",
                      {{"node", name}});
  notify_node(EventType::kModified, *ns.obj);
  return true;
}

void ApiServer::renew_node_lease(const std::string& name) {
  const std::uint32_t slot = find_node_slot(name);
  if (slot != kNoSlot) renew_node_lease_slot(slot);
}

double ApiServer::node_lease(const std::string& name) const {
  const std::uint32_t slot = find_node_slot(name);
  if (slot == kNoSlot || node_slots_[slot].obj == nullptr) return -1.0;
  return node_lease_[slot];
}

std::size_t ApiServer::collect_expired_leases(double now, double duration,
                                              std::vector<std::string>& out) {
  const std::size_t before = out.size();
  lease_index_.pop_expired(now, duration, [&](std::uint32_t slot) {
    out.push_back(node_slots_[slot].name);
  });
  return out.size() - before;
}

std::size_t ApiServer::collect_lease_recovery_candidates(
    double now, double duration, std::vector<std::string>& out) {
  for (const std::uint32_t slot : recovery_pending_) {
    if (now - node_lease_[slot] <= duration) {
      out.push_back(node_slots_[slot].name);
    }
  }
  return recovery_pending_.size();
}

// ---- Pod side arrays ----------------------------------------------------

void ApiServer::ensure_pod_side(std::uint32_t pod_slot) {
  if (pod_slot >= pod_node_slot_.size()) {
    pod_node_slot_.resize(pod_slot + 1, kNoSlot);
    pod_node_pos_.resize(pod_slot + 1, 0);
    pod_owner_slot_.resize(pod_slot + 1, kNoSlot);
    pod_owner_pos_.resize(pod_slot + 1, 0);
  }
}

void ApiServer::link_pod_node(std::uint32_t pod_slot,
                              std::uint32_t node_slot) {
  pod_node_slot_[pod_slot] = node_slot;
  if (node_slot == kNoSlot) return;
  std::vector<std::uint32_t>& list = node_slots_[node_slot].pods;
  pod_node_pos_[pod_slot] = static_cast<std::uint32_t>(list.size());
  list.push_back(pod_slot);
}

void ApiServer::unlink_pod_node(std::uint32_t pod_slot) {
  const std::uint32_t ns = pod_node_slot_[pod_slot];
  if (ns == kNoSlot) return;
  std::vector<std::uint32_t>& list = node_slots_[ns].pods;
  const std::uint32_t pos = pod_node_pos_[pod_slot];
  const std::uint32_t moved = list.back();
  list[pos] = moved;
  pod_node_pos_[moved] = pos;
  list.pop_back();
  pod_node_slot_[pod_slot] = kNoSlot;
}

void ApiServer::link_pod_owner(std::uint32_t pod_slot,
                               const std::string& owner) {
  auto [it, inserted] = owner_slot_ids_.try_emplace(owner, 0);
  if (inserted) {
    it->second = static_cast<std::uint32_t>(pods_by_owner_.size());
    pods_by_owner_.emplace_back();
  }
  pod_owner_slot_[pod_slot] = it->second;
  std::vector<std::uint32_t>& list = pods_by_owner_[it->second];
  pod_owner_pos_[pod_slot] = static_cast<std::uint32_t>(list.size());
  list.push_back(pod_slot);
}

void ApiServer::unlink_pod_owner(std::uint32_t pod_slot) {
  const std::uint32_t os = pod_owner_slot_[pod_slot];
  if (os == kNoSlot) return;
  std::vector<std::uint32_t>& list = pods_by_owner_[os];
  const std::uint32_t pos = pod_owner_pos_[pod_slot];
  const std::uint32_t moved = list.back();
  list[pos] = moved;
  pod_owner_pos_[moved] = pos;
  list.pop_back();
  pod_owner_slot_[pod_slot] = kNoSlot;
}

// ---- Pods -------------------------------------------------------------

Uid ApiServer::create_pod(Pod pod) {
  pod.uid = next_uid_;
  pod.phase = PodPhase::kPending;
  const std::string name = pod.name;
  auto [stored, pslot, inserted] = pods_.insert(name, std::move(pod));
  if (!inserted) {
    throw std::invalid_argument("ApiServer: pod exists: " + name);
  }
  ++next_uid_;
  ++pods_created_total_;
  assert(pods_created_total_ - pods_finalized_total_ == pods_.size());
  ensure_pod_side(pslot);
  link_pod_node(pslot, stored->node_name.empty()
                           ? kNoSlot
                           : node_slot(stored->node_name));
  if (stored->owner.empty()) {
    pod_owner_slot_[pslot] = kNoSlot;
  } else {
    link_pod_owner(pslot, stored->owner);
  }
  if (usage_counted(*stored)) {
    add_usage(pod_node_slot_[pslot], *stored);
  }
  notify_pod(EventType::kAdded, *stored, pod_node_slot_[pslot]);
  return stored->uid;
}

bool ApiServer::mutate_pod(const std::string& name,
                           std::function<void(Pod&)> mutate) {
  const std::uint32_t pslot = pods_.slot_of(name);
  if (pslot == kNoSlot) return false;
  Pod* pod = &pods_.at(pslot);
  const bool was = usage_counted(*pod);
  const std::uint32_t old_node = pod_node_slot_[pslot];
  const double old_cpu = pod->cpu_request;
  const double old_mem = pod->memory_request;
  mutate(*pod);
  // Re-link on (re)bind. In practice node_name only ever transitions
  // empty -> bound (the scheduler binds Pending pods once), so the common
  // mutate pays one short string compare, no hash.
  std::uint32_t new_node = old_node;
  if (pod->node_name.empty()) {
    new_node = kNoSlot;
  } else if (old_node == kNoSlot ||
             node_slots_[old_node].name != pod->node_name) {
    new_node = node_slot(pod->node_name);
  }
  if (new_node != old_node) {
    unlink_pod_node(pslot);
    link_pod_node(pslot, new_node);
  }
  const bool now = usage_counted(*pod);
  // Touch the aggregate only when the accounted quantities actually moved
  // (a bind, a failure, a request resize) — phase-only transitions like
  // Scheduled -> Running leave it bit-for-bit alone.
  if (was || now) {
    if (was != now || old_node != new_node || old_cpu != pod->cpu_request ||
        old_mem != pod->memory_request) {
      if (was) sub_usage(old_node, old_cpu, old_mem);
      if (now) add_usage(new_node, *pod);
    }
  }
  notify_pod(EventType::kModified, *pod, new_node);
  return true;
}

void ApiServer::watch_pods_on_node(const std::string& node, PodWatch watch) {
  node_slots_[node_slot(node)].watches.push_back(
      SeqPodWatch{watch_seq_++, std::move(watch)});
}

ApiServer::NodeUsage ApiServer::node_usage(const std::string& node) const {
  const std::uint32_t slot = find_node_slot(node);
  return slot == kNoSlot ? NodeUsage{} : node_slots_[slot].usage;
}

void ApiServer::add_usage(std::uint32_t node_slot, const Pod& pod) {
  NodeUsage& u = node_slots_[node_slot].usage;
  u.cpu += pod.cpu_request;
  u.memory += pod.memory_request;
  ++u.pods;
}

void ApiServer::sub_usage(std::uint32_t node_slot, double cpu, double memory) {
  if (node_slot == kNoSlot) return;
  NodeUsage& u = node_slots_[node_slot].usage;
  u.cpu -= cpu;
  u.memory -= memory;
  --u.pods;
}

const Pod* ApiServer::get_pod(const std::string& name) const {
  return pods_.find(name);
}

std::vector<const Pod*> ApiServer::list_pods() const {
  std::vector<const Pod*> out;
  out.reserve(pods_.size());
  pods_.for_each([&](const Pod& pod) { out.push_back(&pod); });
  return out;
}

std::vector<const Pod*> ApiServer::list_pods(const Labels& selector) const {
  std::vector<const Pod*> out;
  for_each_pod(selector, [&](const Pod& pod) { out.push_back(&pod); });
  return out;
}

void ApiServer::delete_pod(const std::string& name) {
  const std::uint32_t pslot = pods_.slot_of(name);
  if (pslot == kNoSlot) return;
  Pod* pod = &pods_.at(pslot);
  if (pod->phase == PodPhase::kTerminating) return;
  const bool never_ran = pod->node_name.empty();
  const bool was = usage_counted(*pod);
  pod->phase = PodPhase::kTerminating;
  pod->ready = false;
  // A Failed pod flips back to counted here: Terminating pods hold their
  // requests until the kubelet finalizes (matching the rescan predicate,
  // which only ever excluded Failed).
  if (!was && usage_counted(*pod)) {
    add_usage(pod_node_slot_[pslot], *pod);
  }
  notify_pod(EventType::kModified, *pod, pod_node_slot_[pslot]);
  if (never_ran) {
    // No kubelet owns it; finalize directly.
    finalize_pod_deletion(name);
  }
}

void ApiServer::finalize_pod_deletion(const std::string& name) {
  const std::uint32_t pslot = pods_.slot_of(name);
  if (pslot == kNoSlot) return;
  const std::uint32_t nslot = pod_node_slot_[pslot];
  unlink_pod_node(pslot);
  unlink_pod_owner(pslot);
  std::optional<Pod> removed = pods_.take(name);
  ++pods_finalized_total_;
  assert(pods_created_total_ - pods_finalized_total_ == pods_.size());
  if (usage_counted(*removed)) {
    sub_usage(nslot, removed->cpu_request, removed->memory_request);
  }
  notify_pod(EventType::kDeleted, *removed, nslot);
}

// ---- Deployments ------------------------------------------------------

Uid ApiServer::apply_deployment(Deployment dep) {
  const std::string name = dep.name;
  Deployment* existing = deployments_.find(name);
  if (existing == nullptr) {
    dep.uid = next_uid_++;
    const auto res = deployments_.insert(name, std::move(dep));
    notify_deployment(EventType::kAdded, *res.obj);
    return res.obj->uid;
  }
  dep.uid = existing->uid;
  *existing = std::move(dep);
  notify_deployment(EventType::kModified, *existing);
  return existing->uid;
}

bool ApiServer::set_deployment_replicas(const std::string& name,
                                        int replicas) {
  Deployment* dep = deployments_.find(name);
  if (dep == nullptr) return false;
  if (dep->replicas == replicas) return true;
  dep->replicas = replicas;
  notify_deployment(EventType::kModified, *dep);
  return true;
}

const Deployment* ApiServer::get_deployment(const std::string& name) const {
  return deployments_.find(name);
}

void ApiServer::delete_deployment(const std::string& name) {
  std::optional<Deployment> removed = deployments_.take(name);
  if (!removed.has_value()) return;
  notify_deployment(EventType::kDeleted, *removed);
}

// ---- Services & endpoints ----------------------------------------------

Uid ApiServer::create_service(Service svc) {
  svc.uid = next_uid_;
  const std::string name = svc.name;
  const auto res = services_.insert(name, std::move(svc));
  if (!res.inserted) throw std::invalid_argument("ApiServer: service exists");
  ++next_uid_;
  // A fresh service starts with empty endpoints.
  Endpoints* eps = endpoints_.find(name);
  if (eps != nullptr) {
    *eps = Endpoints{name, {}};
  } else {
    endpoints_.insert(name, Endpoints{name, {}});
  }
  return res.obj->uid;
}

void ApiServer::delete_service(const std::string& name) {
  services_.take(name);
  std::optional<Endpoints> removed = endpoints_.take(name);
  if (removed.has_value()) {
    notify_endpoints(EventType::kDeleted, *removed);
  }
}

const Service* ApiServer::get_service(const std::string& name) const {
  return services_.find(name);
}

std::vector<const Service*> ApiServer::list_services() const {
  std::vector<const Service*> out;
  out.reserve(services_.size());
  services_.for_each([&](const Service& svc) { out.push_back(&svc); });
  return out;
}

void ApiServer::set_endpoints(Endpoints eps) {
  Endpoints* existing = endpoints_.find(eps.service_name);
  if (existing != nullptr && existing->ready == eps.ready) return;  // no change
  const EventType type =
      existing != nullptr ? EventType::kModified : EventType::kAdded;
  if (existing != nullptr) {
    *existing = std::move(eps);
    notify_endpoints(type, *existing);
  } else {
    const std::string name = eps.service_name;
    const auto res = endpoints_.insert(name, std::move(eps));
    notify_endpoints(type, *res.obj);
  }
}

const Endpoints* ApiServer::get_endpoints(
    const std::string& service_name) const {
  return endpoints_.find(service_name);
}

// ---- Watch delivery ----------------------------------------------------

// Each notification copies the object once into a single scheduled event
// that fans out to every watcher registered at notification time, in
// registration order. Watchers registered after the notification (but
// before delivery) do not see the event — the same contract the former
// one-event-per-watcher scheme had, at 1/N the events and allocations.

void ApiServer::notify_pod(EventType type, const Pod& pod,
                           std::uint32_t node_slot) {
  // Route to the global watchers plus (for bound pods) the one node shard
  // the pod lives on. Unbound pods (node_slot == kNoSlot) only concern
  // global watchers. The slot arrives from the pod side arrays — no name
  // hash on this per-event path.
  std::size_t n_node = 0;
  if (node_slot != kNoSlot) n_node = node_slots_[node_slot].watches.size();
  const std::size_t n_global = pod_watches_.size();
  if (n_global + n_node == 0) return;
  ++watch_batches_scheduled_;
  sim_.call_in(api_latency_, [this, type, pod, n_global, node_slot, n_node] {
    ++watch_batches_delivered_;
    deliver_pod_event(type, pod, n_global, node_slot, n_node);
  });
}

void ApiServer::deliver_pod_event(EventType type, const Pod& pod,
                                  std::size_t n_global,
                                  std::uint32_t node_slot,
                                  std::size_t n_node) {
  // Counts were snapped at schedule time: watchers registered after the
  // notification do not see the event (the same contract the flat list
  // had). Single-list deliveries take the flat loop; only events that
  // genuinely touch both a node shard and the global list pay the merge,
  // which fires watchers in exactly the order a single flat list would
  // have fired them.
  if (n_node == 0) {
    for (std::size_t i = 0; i < n_global; ++i) pod_watches_[i].fn(type, pod);
    return;
  }
  const std::deque<SeqPodWatch>& shard = node_slots_[node_slot].watches;
  if (n_global == 0) {
    for (std::size_t i = 0; i < n_node; ++i) shard[i].fn(type, pod);
    return;
  }
  std::size_t gi = 0;
  std::size_t ni = 0;
  while (gi < n_global || ni < n_node) {
    const bool global_next =
        ni >= n_node ||
        (gi < n_global && pod_watches_[gi].seq < shard[ni].seq);
    if (global_next) {
      pod_watches_[gi++].fn(type, pod);
    } else {
      shard[ni++].fn(type, pod);
    }
  }
}

void ApiServer::notify_deployment(EventType type, const Deployment& dep) {
  if (deployment_watches_.empty()) return;
  ++watch_batches_scheduled_;
  sim_.call_in(api_latency_,
               [this, type, dep, n = deployment_watches_.size()] {
                 ++watch_batches_delivered_;
                 for (std::size_t i = 0; i < n; ++i) {
                   deployment_watches_[i](type, dep);
                 }
               });
}

void ApiServer::notify_endpoints(EventType type, const Endpoints& eps) {
  if (endpoints_watches_.empty()) return;
  ++watch_batches_scheduled_;
  sim_.call_in(api_latency_,
               [this, type, eps, n = endpoints_watches_.size()] {
                 ++watch_batches_delivered_;
                 for (std::size_t i = 0; i < n; ++i) {
                   endpoints_watches_[i](type, eps);
                 }
               });
}

void ApiServer::notify_node(EventType type, const NodeObject& node) {
  if (node_watches_.empty()) return;
  ++watch_batches_scheduled_;
  sim_.call_in(api_latency_,
               [this, type, node, n = node_watches_.size()] {
                 ++watch_batches_delivered_;
                 for (std::size_t i = 0; i < n; ++i) {
                   node_watches_[i](type, node);
                 }
               });
}

}  // namespace sf::k8s
