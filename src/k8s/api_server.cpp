#include "k8s/api_server.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace sf::k8s {

void ApiServer::register_node(NodeObject node) {
  sim_.intern(node.name);  // shard key for watch routing / usage
  node_leases_[node.name] = sim_.now();
  nodes_[node.name] = std::move(node);
}

bool ApiServer::set_node_ready(const std::string& name, bool ready) {
  auto it = nodes_.find(name);
  if (it == nodes_.end() || it->second.ready == ready) return false;
  it->second.ready = ready;
  sim_.trace().record(sim_.now(), "api", ready ? "node_ready" : "node_not_ready",
                      {{"node", name}});
  notify_node(EventType::kModified, it->second);
  return true;
}

void ApiServer::renew_node_lease(const std::string& name) {
  auto it = node_leases_.find(name);
  if (it != node_leases_.end()) it->second = sim_.now();
}

double ApiServer::node_lease(const std::string& name) const {
  auto it = node_leases_.find(name);
  return it == node_leases_.end() ? -1.0 : it->second;
}

// ---- Pods -------------------------------------------------------------

Uid ApiServer::create_pod(Pod pod) {
  pod.uid = next_uid_;
  pod.phase = PodPhase::kPending;
  const std::string name = pod.name;
  auto [stored, inserted] = pods_.insert(name, std::move(pod));
  if (!inserted) {
    throw std::invalid_argument("ApiServer: pod exists: " + name);
  }
  ++next_uid_;
  ++pods_created_total_;
  assert(pods_created_total_ - pods_finalized_total_ == pods_.size());
  if (usage_counted(*stored)) {
    add_usage(sim_.intern(stored->node_name), *stored);
  }
  notify_pod(EventType::kAdded, *stored);
  return stored->uid;
}

bool ApiServer::mutate_pod(const std::string& name,
                           std::function<void(Pod&)> mutate) {
  Pod* pod = pods_.find(name);
  if (pod == nullptr) return false;
  const bool was = usage_counted(*pod);
  // A counted pod's node was interned when it was added; an id is all the
  // "before" state we need (no string copy on this per-event path).
  const sim::ObjectId old_node = was ? sim_.ids().lookup(pod->node_name)
                                     : sim::kEmptyId;
  const double old_cpu = pod->cpu_request;
  const double old_mem = pod->memory_request;
  mutate(*pod);
  const bool now = usage_counted(*pod);
  // Touch the aggregate only when the accounted quantities actually moved
  // (a bind, a failure, a request resize) — phase-only transitions like
  // Scheduled -> Running leave it bit-for-bit alone.
  if (was || now) {
    const sim::ObjectId new_node = now ? sim_.intern(pod->node_name)
                                       : sim::kEmptyId;
    if (was != now || old_node != new_node || old_cpu != pod->cpu_request ||
        old_mem != pod->memory_request) {
      if (was) sub_usage(old_node, old_cpu, old_mem);
      if (now) add_usage(new_node, *pod);
    }
  }
  notify_pod(EventType::kModified, *pod);
  return true;
}

void ApiServer::watch_pods_on_node(const std::string& node, PodWatch watch) {
  node_pod_watches_[sim_.intern(node)].push_back(
      SeqPodWatch{watch_seq_++, std::move(watch)});
}

ApiServer::NodeUsage ApiServer::node_usage(const std::string& node) const {
  const auto it = node_usage_.find(sim_.ids().lookup(node));
  return it == node_usage_.end() ? NodeUsage{} : it->second;
}

void ApiServer::add_usage(sim::ObjectId node_id, const Pod& pod) {
  NodeUsage& u = node_usage_[node_id];
  u.cpu += pod.cpu_request;
  u.memory += pod.memory_request;
  ++u.pods;
}

void ApiServer::sub_usage(sim::ObjectId node_id, double cpu, double memory) {
  const auto it = node_usage_.find(node_id);
  if (it == node_usage_.end()) return;
  it->second.cpu -= cpu;
  it->second.memory -= memory;
  --it->second.pods;
}

const Pod* ApiServer::get_pod(const std::string& name) const {
  return pods_.find(name);
}

std::vector<const Pod*> ApiServer::list_pods() const {
  std::vector<const Pod*> out;
  out.reserve(pods_.size());
  pods_.for_each([&](const Pod& pod) { out.push_back(&pod); });
  return out;
}

std::vector<const Pod*> ApiServer::list_pods(const Labels& selector) const {
  std::vector<const Pod*> out;
  for_each_pod(selector, [&](const Pod& pod) { out.push_back(&pod); });
  return out;
}

void ApiServer::delete_pod(const std::string& name) {
  Pod* pod = pods_.find(name);
  if (pod == nullptr) return;
  if (pod->phase == PodPhase::kTerminating) return;
  const bool never_ran = pod->node_name.empty();
  const bool was = usage_counted(*pod);
  pod->phase = PodPhase::kTerminating;
  pod->ready = false;
  // A Failed pod flips back to counted here: Terminating pods hold their
  // requests until the kubelet finalizes (matching the rescan predicate,
  // which only ever excluded Failed).
  if (!was && usage_counted(*pod)) {
    add_usage(sim_.intern(pod->node_name), *pod);
  }
  notify_pod(EventType::kModified, *pod);
  if (never_ran) {
    // No kubelet owns it; finalize directly.
    finalize_pod_deletion(name);
  }
}

void ApiServer::finalize_pod_deletion(const std::string& name) {
  std::optional<Pod> removed = pods_.take(name);
  if (!removed.has_value()) return;
  ++pods_finalized_total_;
  assert(pods_created_total_ - pods_finalized_total_ == pods_.size());
  if (usage_counted(*removed)) {
    sub_usage(sim_.ids().lookup(removed->node_name), removed->cpu_request,
              removed->memory_request);
  }
  notify_pod(EventType::kDeleted, *removed);
}

// ---- Deployments ------------------------------------------------------

Uid ApiServer::apply_deployment(Deployment dep) {
  const std::string name = dep.name;
  Deployment* existing = deployments_.find(name);
  if (existing == nullptr) {
    dep.uid = next_uid_++;
    auto [stored, inserted] = deployments_.insert(name, std::move(dep));
    notify_deployment(EventType::kAdded, *stored);
    return stored->uid;
  }
  dep.uid = existing->uid;
  *existing = std::move(dep);
  notify_deployment(EventType::kModified, *existing);
  return existing->uid;
}

bool ApiServer::set_deployment_replicas(const std::string& name,
                                        int replicas) {
  Deployment* dep = deployments_.find(name);
  if (dep == nullptr) return false;
  if (dep->replicas == replicas) return true;
  dep->replicas = replicas;
  notify_deployment(EventType::kModified, *dep);
  return true;
}

const Deployment* ApiServer::get_deployment(const std::string& name) const {
  return deployments_.find(name);
}

void ApiServer::delete_deployment(const std::string& name) {
  std::optional<Deployment> removed = deployments_.take(name);
  if (!removed.has_value()) return;
  notify_deployment(EventType::kDeleted, *removed);
}

// ---- Services & endpoints ----------------------------------------------

Uid ApiServer::create_service(Service svc) {
  svc.uid = next_uid_;
  const std::string name = svc.name;
  auto [stored, inserted] = services_.insert(name, std::move(svc));
  if (!inserted) throw std::invalid_argument("ApiServer: service exists");
  ++next_uid_;
  // A fresh service starts with empty endpoints.
  Endpoints* eps = endpoints_.find(name);
  if (eps != nullptr) {
    *eps = Endpoints{name, {}};
  } else {
    endpoints_.insert(name, Endpoints{name, {}});
  }
  return stored->uid;
}

void ApiServer::delete_service(const std::string& name) {
  services_.take(name);
  std::optional<Endpoints> removed = endpoints_.take(name);
  if (removed.has_value()) {
    notify_endpoints(EventType::kDeleted, *removed);
  }
}

const Service* ApiServer::get_service(const std::string& name) const {
  return services_.find(name);
}

std::vector<const Service*> ApiServer::list_services() const {
  std::vector<const Service*> out;
  out.reserve(services_.size());
  services_.for_each([&](const Service& svc) { out.push_back(&svc); });
  return out;
}

void ApiServer::set_endpoints(Endpoints eps) {
  Endpoints* existing = endpoints_.find(eps.service_name);
  if (existing != nullptr && existing->ready == eps.ready) return;  // no change
  const EventType type =
      existing != nullptr ? EventType::kModified : EventType::kAdded;
  if (existing != nullptr) {
    *existing = std::move(eps);
    notify_endpoints(type, *existing);
  } else {
    const std::string name = eps.service_name;
    auto [stored, inserted] = endpoints_.insert(name, std::move(eps));
    notify_endpoints(type, *stored);
  }
}

const Endpoints* ApiServer::get_endpoints(
    const std::string& service_name) const {
  return endpoints_.find(service_name);
}

// ---- Watch delivery ----------------------------------------------------

// Each notification copies the object once into a single scheduled event
// that fans out to every watcher registered at notification time, in
// registration order. Watchers registered after the notification (but
// before delivery) do not see the event — the same contract the former
// one-event-per-watcher scheme had, at 1/N the events and allocations.

void ApiServer::notify_pod(EventType type, const Pod& pod) {
  // Route to the global watchers plus (for bound pods) the one node shard
  // the pod lives on. Unbound pods (empty node_name) only concern global
  // watchers; lookup() never inserts, so a node nobody watches costs one
  // hash probe.
  sim::ObjectId node_id = sim::kEmptyId;
  std::size_t n_node = 0;
  if (!pod.node_name.empty()) {
    node_id = sim_.ids().lookup(pod.node_name);
    const auto it = node_pod_watches_.find(node_id);
    if (it != node_pod_watches_.end()) n_node = it->second.size();
  }
  const std::size_t n_global = pod_watches_.size();
  if (n_global + n_node == 0) return;
  ++watch_batches_scheduled_;
  sim_.call_in(api_latency_, [this, type, pod, n_global, node_id, n_node] {
    ++watch_batches_delivered_;
    deliver_pod_event(type, pod, n_global, node_id, n_node);
  });
}

void ApiServer::deliver_pod_event(EventType type, const Pod& pod,
                                  std::size_t n_global, sim::ObjectId node_id,
                                  std::size_t n_node) {
  // Counts were snapped at schedule time: watchers registered after the
  // notification do not see the event (the same contract the flat list
  // had). Single-list deliveries take the flat loop; only events that
  // genuinely touch both a node shard and the global list pay the merge,
  // which fires watchers in exactly the order a single flat list would
  // have fired them.
  if (n_node == 0) {
    for (std::size_t i = 0; i < n_global; ++i) pod_watches_[i].fn(type, pod);
    return;
  }
  const std::deque<SeqPodWatch>& shard =
      node_pod_watches_.find(node_id)->second;
  if (n_global == 0) {
    for (std::size_t i = 0; i < n_node; ++i) shard[i].fn(type, pod);
    return;
  }
  std::size_t gi = 0;
  std::size_t ni = 0;
  while (gi < n_global || ni < n_node) {
    const bool global_next =
        ni >= n_node ||
        (gi < n_global && pod_watches_[gi].seq < shard[ni].seq);
    if (global_next) {
      pod_watches_[gi++].fn(type, pod);
    } else {
      shard[ni++].fn(type, pod);
    }
  }
}

void ApiServer::notify_deployment(EventType type, const Deployment& dep) {
  if (deployment_watches_.empty()) return;
  ++watch_batches_scheduled_;
  sim_.call_in(api_latency_,
               [this, type, dep, n = deployment_watches_.size()] {
                 ++watch_batches_delivered_;
                 for (std::size_t i = 0; i < n; ++i) {
                   deployment_watches_[i](type, dep);
                 }
               });
}

void ApiServer::notify_endpoints(EventType type, const Endpoints& eps) {
  if (endpoints_watches_.empty()) return;
  ++watch_batches_scheduled_;
  sim_.call_in(api_latency_,
               [this, type, eps, n = endpoints_watches_.size()] {
                 ++watch_batches_delivered_;
                 for (std::size_t i = 0; i < n; ++i) {
                   endpoints_watches_[i](type, eps);
                 }
               });
}

void ApiServer::notify_node(EventType type, const NodeObject& node) {
  if (node_watches_.empty()) return;
  ++watch_batches_scheduled_;
  sim_.call_in(api_latency_,
               [this, type, node, n = node_watches_.size()] {
                 ++watch_batches_delivered_;
                 for (std::size_t i = 0; i < n; ++i) {
                   node_watches_[i](type, node);
                 }
               });
}

}  // namespace sf::k8s
