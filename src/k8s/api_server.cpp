#include "k8s/api_server.hpp"

#include <stdexcept>
#include <utility>

namespace sf::k8s {

void ApiServer::register_node(NodeObject node) {
  nodes_[node.name] = std::move(node);
}

// ---- Pods -------------------------------------------------------------

Uid ApiServer::create_pod(Pod pod) {
  if (pods_.contains(pod.name)) {
    throw std::invalid_argument("ApiServer: pod exists: " + pod.name);
  }
  pod.uid = next_uid_++;
  pod.phase = PodPhase::kPending;
  auto [it, ok] = pods_.emplace(pod.name, std::move(pod));
  notify_pod(EventType::kAdded, it->second);
  return it->second.uid;
}

bool ApiServer::mutate_pod(const std::string& name,
                           std::function<void(Pod&)> mutate) {
  auto it = pods_.find(name);
  if (it == pods_.end()) return false;
  mutate(it->second);
  notify_pod(EventType::kModified, it->second);
  return true;
}

const Pod* ApiServer::get_pod(const std::string& name) const {
  auto it = pods_.find(name);
  return it == pods_.end() ? nullptr : &it->second;
}

std::vector<Pod> ApiServer::list_pods() const {
  std::vector<Pod> out;
  out.reserve(pods_.size());
  for (const auto& [name, pod] : pods_) out.push_back(pod);
  return out;
}

std::vector<Pod> ApiServer::list_pods(const Labels& selector) const {
  std::vector<Pod> out;
  for (const auto& [name, pod] : pods_) {
    if (selector_matches(selector, pod.labels)) out.push_back(pod);
  }
  return out;
}

void ApiServer::delete_pod(const std::string& name) {
  auto it = pods_.find(name);
  if (it == pods_.end()) return;
  if (it->second.phase == PodPhase::kTerminating) return;
  const bool never_ran = it->second.node_name.empty();
  it->second.phase = PodPhase::kTerminating;
  it->second.ready = false;
  notify_pod(EventType::kModified, it->second);
  if (never_ran) {
    // No kubelet owns it; finalize directly.
    finalize_pod_deletion(name);
  }
}

void ApiServer::finalize_pod_deletion(const std::string& name) {
  auto it = pods_.find(name);
  if (it == pods_.end()) return;
  Pod removed = std::move(it->second);
  pods_.erase(it);
  notify_pod(EventType::kDeleted, removed);
}

// ---- Deployments ------------------------------------------------------

Uid ApiServer::apply_deployment(Deployment dep) {
  auto it = deployments_.find(dep.name);
  if (it == deployments_.end()) {
    dep.uid = next_uid_++;
    auto [jt, ok] = deployments_.emplace(dep.name, std::move(dep));
    notify_deployment(EventType::kAdded, jt->second);
    return jt->second.uid;
  }
  dep.uid = it->second.uid;
  it->second = std::move(dep);
  notify_deployment(EventType::kModified, it->second);
  return it->second.uid;
}

bool ApiServer::set_deployment_replicas(const std::string& name,
                                        int replicas) {
  auto it = deployments_.find(name);
  if (it == deployments_.end()) return false;
  if (it->second.replicas == replicas) return true;
  it->second.replicas = replicas;
  notify_deployment(EventType::kModified, it->second);
  return true;
}

const Deployment* ApiServer::get_deployment(const std::string& name) const {
  auto it = deployments_.find(name);
  return it == deployments_.end() ? nullptr : &it->second;
}

void ApiServer::delete_deployment(const std::string& name) {
  auto it = deployments_.find(name);
  if (it == deployments_.end()) return;
  Deployment removed = std::move(it->second);
  deployments_.erase(it);
  notify_deployment(EventType::kDeleted, removed);
}

// ---- Services & endpoints ----------------------------------------------

Uid ApiServer::create_service(Service svc) {
  svc.uid = next_uid_++;
  auto [it, ok] = services_.emplace(svc.name, std::move(svc));
  if (!ok) throw std::invalid_argument("ApiServer: service exists");
  // A fresh service starts with empty endpoints.
  endpoints_[it->second.name] = Endpoints{it->second.name, {}};
  return it->second.uid;
}

void ApiServer::delete_service(const std::string& name) {
  services_.erase(name);
  auto it = endpoints_.find(name);
  if (it != endpoints_.end()) {
    Endpoints removed = std::move(it->second);
    endpoints_.erase(it);
    notify_endpoints(EventType::kDeleted, removed);
  }
}

const Service* ApiServer::get_service(const std::string& name) const {
  auto it = services_.find(name);
  return it == services_.end() ? nullptr : &it->second;
}

std::vector<Service> ApiServer::list_services() const {
  std::vector<Service> out;
  out.reserve(services_.size());
  for (const auto& [name, svc] : services_) out.push_back(svc);
  return out;
}

void ApiServer::set_endpoints(Endpoints eps) {
  auto it = endpoints_.find(eps.service_name);
  const bool existed = it != endpoints_.end();
  if (existed && it->second.ready == eps.ready) return;  // no change
  endpoints_[eps.service_name] = eps;
  notify_endpoints(existed ? EventType::kModified : EventType::kAdded, eps);
}

const Endpoints* ApiServer::get_endpoints(
    const std::string& service_name) const {
  auto it = endpoints_.find(service_name);
  return it == endpoints_.end() ? nullptr : &it->second;
}

// ---- Watch delivery ----------------------------------------------------

void ApiServer::notify_pod(EventType type, const Pod& pod) {
  for (const auto& watch : pod_watches_) {
    sim_.call_in(api_latency_, [watch, type, pod] { watch(type, pod); });
  }
}

void ApiServer::notify_deployment(EventType type, const Deployment& dep) {
  for (const auto& watch : deployment_watches_) {
    sim_.call_in(api_latency_, [watch, type, dep] { watch(type, dep); });
  }
}

void ApiServer::notify_endpoints(EventType type, const Endpoints& eps) {
  for (const auto& watch : endpoints_watches_) {
    sim_.call_in(api_latency_, [watch, type, eps] { watch(type, eps); });
  }
}

}  // namespace sf::k8s
