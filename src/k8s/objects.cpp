#include "k8s/objects.hpp"

namespace sf::k8s {

bool selector_matches(const Labels& selector, const Labels& labels) {
  for (const auto& [key, value] : selector) {
    auto it = labels.find(key);
    if (it == labels.end() || it->second != value) return false;
  }
  return true;
}

const char* to_string(PodPhase phase) {
  switch (phase) {
    case PodPhase::kPending:
      return "Pending";
    case PodPhase::kScheduled:
      return "Scheduled";
    case PodPhase::kRunning:
      return "Running";
    case PodPhase::kTerminating:
      return "Terminating";
    case PodPhase::kFailed:
      return "Failed";
  }
  return "Unknown";
}

}  // namespace sf::k8s
