#pragma once

#include <map>
#include <string>

#include "fault/retry.hpp"
#include "k8s/api_server.hpp"

namespace sf::k8s {

/// Reconciles Deployments to their desired replica count (the ReplicaSet
/// layer is folded in). Scale-down removes the newest pods first; failed
/// pods are replaced after a backoff.
///
/// Dirty-marking: a reconcile reads only its deployment's pods through the
/// API server's owner index — O(owned) per reconcile, like the endpoints
/// controller's per-selector rebuilds — instead of scanning the whole pod
/// store on every deployment or pod event.
class DeploymentController {
 public:
  explicit DeploymentController(ApiServer& api,
                                double restart_backoff_s = 1.0);

  DeploymentController(const DeploymentController&) = delete;
  DeploymentController& operator=(const DeploymentController&) = delete;

  [[nodiscard]] std::uint64_t pods_created() const { return pods_created_; }

  /// Pods recreated because a predecessor failed (restart-backoff path) —
  /// distinct from scale-up creations. pods_created() counts both.
  [[nodiscard]] std::uint64_t pods_replaced() const { return pods_replaced_; }

  /// Probe counter: pods examined across all reconciles (and deleted-
  /// deployment cleanups). The regression test pins this to the touched
  /// deployment's own pod count, proving reconciles no longer scan the
  /// whole store.
  [[nodiscard]] std::uint64_t reconcile_probes() const {
    return reconcile_probes_;
  }

 private:
  void reconcile(const std::string& deployment_name);
  void check_invariants() const;

  ApiServer& api_;
  /// Crash-loop restart pacing: a fixed-delay RetryPolicy (Kubernetes'
  /// CrashLoopBackOff grows exponentially; this controller models the
  /// steady-state fixed window the testbed calibrates against).
  fault::RetryPolicy restart_backoff_;
  std::map<std::string, int> next_index_;  // per-deployment pod name counter
  /// Deployments whose failure backoff is armed: reconciles are held until
  /// the backoff event fires, so replacements are actually paced (a
  /// kDeleted watch event used to sneak an immediate reconcile past the
  /// backoff).
  std::map<std::string, int> backoff_hold_;
  std::uint64_t pods_created_ = 0;
  std::uint64_t pods_replaced_ = 0;
  std::uint64_t reconcile_probes_ = 0;
  /// Sum of next_index_ values retired when their deployment was deleted;
  /// debug invariant: pods_created_ == indices_retired_ + Σ next_index_.
  std::uint64_t indices_retired_ = 0;
};

/// Node-lifecycle controller configuration. `lease_duration_s` is how long
/// the controller tolerates a silent kubelet before declaring the node
/// NotReady; `sweep_interval_s` paces the reconcile loop (and therefore
/// bounds detection latency at lease_duration + sweep_interval).
struct NodeLifecycleConfig {
  double lease_duration_s = 4.0;
  double sweep_interval_s = 1.0;
};

/// Watches node leases and drives the crash → recovery state machine:
/// lease expired → node NotReady → pods on it evicted (kFailed, so the
/// Deployment controller replaces them elsewhere; orphaned Terminating
/// pods are force-finalized) → heartbeats resume → node Ready again →
/// scheduler retries anything pending.
///
/// Deadline-ordered: a sweep pops expired leases off the API server's
/// calendarized deadline index and examines only NotReady nodes for
/// recovery — per-sweep cost scales with what changed, not cluster size.
///
/// NOTE: the sweep keeps one event pending forever — enable only in
/// scenarios driven to a workload-defined end (see the heartbeat wheel).
class NodeLifecycleController {
 public:
  NodeLifecycleController(ApiServer& api, NodeLifecycleConfig cfg = {});

  NodeLifecycleController(const NodeLifecycleController&) = delete;
  NodeLifecycleController& operator=(const NodeLifecycleController&) = delete;

  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }
  [[nodiscard]] std::uint64_t not_ready_transitions() const {
    return not_ready_transitions_;
  }

  /// Probe counter: per-node work items a sweep examined (expired leases
  /// popped + recovery candidates checked). The regression test pins this
  /// to 0 across sweeps where nothing expired — the complexity claim.
  [[nodiscard]] std::uint64_t sweep_probes() const { return sweep_probes_; }

  /// Probe counter: pods examined by evictions (only the affected node's
  /// pods, per the per-node pod index).
  [[nodiscard]] std::uint64_t eviction_probes() const {
    return eviction_probes_;
  }

 private:
  void sweep();
  void evict_pods(const std::string& node_name);

  ApiServer& api_;
  NodeLifecycleConfig cfg_;
  std::uint64_t evictions_ = 0;
  std::uint64_t not_ready_transitions_ = 0;
  std::uint64_t sweep_probes_ = 0;
  std::uint64_t eviction_probes_ = 0;
};

/// Maintains each Service's Endpoints as the set of ready pods matching
/// its selector.
///
/// Dirty-marking: a pod watch event rebuilds only the services whose
/// selector matches the pod's labels — O(changed selectors) per event —
/// instead of rebuilding every service's ready list on every pod event
/// (the old refresh_all, which scanned all pods once per service per
/// event). set_endpoints already no-ops on unchanged ready lists, so the
/// emitted endpoints-event stream is identical; only the wasted rebuild
/// work goes away.
class EndpointsController {
 public:
  explicit EndpointsController(ApiServer& api);

  EndpointsController(const EndpointsController&) = delete;
  EndpointsController& operator=(const EndpointsController&) = delete;

  /// Probe counter: endpoints rebuilds performed (one per matching
  /// service per pod event). The regression test pins this to the number
  /// of *matching* events, proving non-matching services are skipped.
  [[nodiscard]] std::uint64_t refreshes() const { return refreshes_; }

 private:
  void refresh_matching(const Pod& pod);
  void rebuild(const Service& svc);

  ApiServer& api_;
  std::uint64_t refreshes_ = 0;
};

}  // namespace sf::k8s
