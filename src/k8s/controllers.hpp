#pragma once

#include <map>
#include <string>

#include "k8s/api_server.hpp"

namespace sf::k8s {

/// Reconciles Deployments to their desired replica count (the ReplicaSet
/// layer is folded in). Scale-down removes the newest pods first; failed
/// pods are replaced after a backoff.
class DeploymentController {
 public:
  explicit DeploymentController(ApiServer& api,
                                double restart_backoff_s = 1.0);

  DeploymentController(const DeploymentController&) = delete;
  DeploymentController& operator=(const DeploymentController&) = delete;

  [[nodiscard]] std::uint64_t pods_created() const { return pods_created_; }

 private:
  void reconcile(const std::string& deployment_name);

  ApiServer& api_;
  double restart_backoff_;
  std::map<std::string, int> next_index_;  // per-deployment pod name counter
  std::uint64_t pods_created_ = 0;
};

/// Maintains each Service's Endpoints as the set of ready pods matching
/// its selector.
class EndpointsController {
 public:
  explicit EndpointsController(ApiServer& api);

  EndpointsController(const EndpointsController&) = delete;
  EndpointsController& operator=(const EndpointsController&) = delete;

 private:
  void refresh_all();

  ApiServer& api_;
};

}  // namespace sf::k8s
