#pragma once

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "k8s/named_store.hpp"
#include "k8s/objects.hpp"
#include "sim/simulation.hpp"

namespace sf::k8s {

/// Watch event kinds, mirroring the Kubernetes watch protocol.
enum class EventType { kAdded, kModified, kDeleted };

/// The cluster's source of truth: typed object stores plus asynchronous
/// watch streams. Every watch notification is delivered after the
/// configured API latency, which is what strings control-plane actions
/// (schedule → kubelet → endpoints) into a realistic cold-start path.
///
/// Hot-path shape: objects live in dense slot stores (NamedStore), readers
/// visit them in place (for_each_* / list_* return pointers, never copies),
/// and each object event schedules ONE engine event that delivers the
/// snapshot to all watchers registered at notification time, in
/// registration order — instead of one event + one heap-allocated closure
/// + one object copy per watcher.
class ApiServer {
 public:
  explicit ApiServer(sim::Simulation& sim, double api_latency_s = 0.005)
      : sim_(sim), api_latency_(api_latency_s) {}

  ApiServer(const ApiServer&) = delete;
  ApiServer& operator=(const ApiServer&) = delete;

  [[nodiscard]] sim::Simulation& sim() { return sim_; }
  [[nodiscard]] double api_latency() const { return api_latency_; }

  // ---- Nodes ----------------------------------------------------------

  using NodeWatch = std::function<void(EventType, const NodeObject&)>;

  void register_node(NodeObject node);
  [[nodiscard]] const std::map<std::string, NodeObject>& nodes() const {
    return nodes_;
  }

  /// Flips a node's Ready condition and notifies node watchers
  /// (kModified). Returns false when the node is unknown or unchanged.
  bool set_node_ready(const std::string& name, bool ready);

  /// Kubelet heartbeat: refreshes the node's lease timestamp.
  void renew_node_lease(const std::string& name);

  /// Sim time of the node's last heartbeat (registration time when the
  /// kubelet never heartbeated); -1 for unknown nodes.
  [[nodiscard]] double node_lease(const std::string& name) const;

  void watch_nodes(NodeWatch watch) {
    node_watches_.push_back(std::move(watch));
  }

  // ---- Pods -----------------------------------------------------------

  using PodWatch = std::function<void(EventType, const Pod&)>;

  /// Creates a pod (phase Pending). Returns its uid. Throws when a pod of
  /// the same name exists.
  Uid create_pod(Pod pod);

  /// Applies `mutate` to the stored pod and notifies watchers (Modified).
  /// Returns false when no such pod exists.
  bool mutate_pod(const std::string& name, std::function<void(Pod&)> mutate);

  [[nodiscard]] const Pod* get_pod(const std::string& name) const;

  /// Visits every pod in name order without copying. The callback must not
  /// create or delete pods; collect names first for that.
  template <typename F>
  void for_each_pod(F&& fn) const {
    pods_.for_each(std::forward<F>(fn));
  }

  /// Visits pods matching `selector` in name order.
  template <typename F>
  void for_each_pod(const Labels& selector, F&& fn) const {
    pods_.for_each([&](const Pod& pod) {
      if (selector_matches(selector, pod.labels)) fn(pod);
    });
  }

  /// Pointer views for callers that need a materialized list (tests,
  /// diagnostics). Pointers stay valid until the pod is deleted.
  [[nodiscard]] std::vector<const Pod*> list_pods() const;
  [[nodiscard]] std::vector<const Pod*> list_pods(const Labels& selector) const;
  [[nodiscard]] std::size_t pod_count() const { return pods_.size(); }

  /// Lifetime counters: every pod ever stored / ever finalized. Invariant
  /// (asserted in debug builds): created − finalized == pod_count().
  [[nodiscard]] std::uint64_t pods_created_total() const {
    return pods_created_total_;
  }
  [[nodiscard]] std::uint64_t pods_finalized_total() const {
    return pods_finalized_total_;
  }

  /// Marks the pod Terminating and notifies watchers; the owning kubelet
  /// (or, for never-scheduled pods, the API server itself) finalizes.
  void delete_pod(const std::string& name);

  /// Removes the object entirely (kubelet confirmation). Watchers see
  /// Deleted.
  void finalize_pod_deletion(const std::string& name);

  void watch_pods(PodWatch watch) { pod_watches_.push_back(std::move(watch)); }

  // ---- Deployments ----------------------------------------------------

  using DeploymentWatch = std::function<void(EventType, const Deployment&)>;

  /// Creates or updates (by name). Returns the uid.
  Uid apply_deployment(Deployment dep);
  bool set_deployment_replicas(const std::string& name, int replicas);
  [[nodiscard]] const Deployment* get_deployment(
      const std::string& name) const;
  void delete_deployment(const std::string& name);
  void watch_deployments(DeploymentWatch watch) {
    deployment_watches_.push_back(std::move(watch));
  }

  // ---- Services & endpoints -------------------------------------------

  using EndpointsWatch = std::function<void(EventType, const Endpoints&)>;

  Uid create_service(Service svc);
  /// Removes a service and its endpoints object (no-op when absent).
  void delete_service(const std::string& name);
  [[nodiscard]] const Service* get_service(const std::string& name) const;

  /// Visits every service in name order without copying.
  template <typename F>
  void for_each_service(F&& fn) const {
    services_.for_each(std::forward<F>(fn));
  }

  [[nodiscard]] std::vector<const Service*> list_services() const;
  void set_endpoints(Endpoints eps);
  [[nodiscard]] const Endpoints* get_endpoints(
      const std::string& service_name) const;
  void watch_endpoints(EndpointsWatch watch) {
    endpoints_watches_.push_back(std::move(watch));
  }

  // ---- Watch-delivery accounting (sf::check) --------------------------
  //
  // Each object event schedules exactly ONE batched delivery; the batch
  // increments the delivered counter exactly once when it runs. Invariant:
  // delivered ≤ scheduled always, == once the queue has drained — a batch
  // firing twice (or never) shows up as counter drift.

  [[nodiscard]] std::uint64_t watch_batches_scheduled() const {
    return watch_batches_scheduled_;
  }
  [[nodiscard]] std::uint64_t watch_batches_delivered() const {
    return watch_batches_delivered_;
  }

 private:
  void notify_pod(EventType type, const Pod& pod);
  void notify_deployment(EventType type, const Deployment& dep);
  void notify_endpoints(EventType type, const Endpoints& eps);
  void notify_node(EventType type, const NodeObject& node);

  sim::Simulation& sim_;
  double api_latency_;
  Uid next_uid_ = 1;
  std::uint64_t pods_created_total_ = 0;
  std::uint64_t pods_finalized_total_ = 0;
  std::uint64_t watch_batches_scheduled_ = 0;
  std::uint64_t watch_batches_delivered_ = 0;

  std::map<std::string, NodeObject> nodes_;
  std::map<std::string, double> node_leases_;
  NamedStore<Pod> pods_;
  NamedStore<Deployment> deployments_;
  NamedStore<Service> services_;
  NamedStore<Endpoints> endpoints_;

  // Deques: a watcher's callback may register further watchers while a
  // batched delivery is iterating; deque growth never moves the element
  // (the std::function) currently executing, where vector reallocation
  // would destroy it mid-call.
  std::deque<PodWatch> pod_watches_;
  std::deque<DeploymentWatch> deployment_watches_;
  std::deque<EndpointsWatch> endpoints_watches_;
  std::deque<NodeWatch> node_watches_;
};

}  // namespace sf::k8s
