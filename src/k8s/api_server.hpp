#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "k8s/lease_index.hpp"
#include "k8s/named_store.hpp"
#include "k8s/objects.hpp"
#include "sim/simulation.hpp"

namespace sf::k8s {

/// Watch event kinds, mirroring the Kubernetes watch protocol.
enum class EventType { kAdded, kModified, kDeleted };

/// The cluster's source of truth: typed object stores plus asynchronous
/// watch streams. Every watch notification is delivered after the
/// configured API latency, which is what strings control-plane actions
/// (schedule → kubelet → endpoints) into a realistic cold-start path.
///
/// Hot-path shape: objects live in dense slot stores (NamedStore), readers
/// visit them in place (for_each_* / list_* return pointers, never copies),
/// and each object event schedules ONE engine event that delivers the
/// snapshot to all watchers registered at notification time, in
/// registration order — instead of one event + one heap-allocated closure
/// + one object copy per watcher.
///
/// Node-indexed state lives in a dense node-slot space: each node name
/// (registered or merely referenced by a watch/bind) gets a stable
/// uint32_t slot holding its lease, usage aggregate, node-scoped watch
/// shard, and the posting list of pod slots bound to it. Pod events carry
/// their node slot through side arrays, so the per-event path never hashes
/// a node name. Lease deadlines are mirrored into a calendarized
/// LeaseIndex so the lifecycle sweep pops only expired leases instead of
/// rescanning every node.
class ApiServer {
 public:
  /// Sentinel for "no slot" in the node-slot / pod-slot spaces (same value
  /// as NamedStore::kNoSlot).
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  explicit ApiServer(sim::Simulation& sim, double api_latency_s = 0.005)
      : sim_(sim), api_latency_(api_latency_s) {}

  ApiServer(const ApiServer&) = delete;
  ApiServer& operator=(const ApiServer&) = delete;

  [[nodiscard]] sim::Simulation& sim() { return sim_; }
  [[nodiscard]] double api_latency() const { return api_latency_; }

  // ---- Nodes ----------------------------------------------------------

  using NodeWatch = std::function<void(EventType, const NodeObject&)>;

  void register_node(NodeObject node);
  [[nodiscard]] const std::map<std::string, NodeObject>& nodes() const {
    return nodes_;
  }

  /// Flips a node's Ready condition and notifies node watchers
  /// (kModified). Returns false when the node is unknown or unchanged.
  /// Keeps the lease index in sync: ready nodes are deadline-tracked,
  /// not-ready nodes sit on the recovery-pending list instead.
  bool set_node_ready(const std::string& name, bool ready);

  /// Kubelet heartbeat: refreshes the node's lease timestamp.
  void renew_node_lease(const std::string& name);

  /// Slot-addressed heartbeat (heartbeat-wheel hot path): no name hash.
  /// No-op for slots that never registered as nodes, mirroring the
  /// name-keyed overload. Reads only the dense lease/flag side arrays —
  /// never the fat NodeSlot record — so a 10k-node wheel tick stays
  /// cache-resident (~20 bytes per node, not several scattered lines).
  void renew_node_lease_slot(std::uint32_t slot) {
    const std::uint8_t f = node_flags_[slot];
    if ((f & kNodeRegistered) == 0) return;
    const double now = sim_.now();
    node_lease_[slot] = now;
    if ((f & kNodeReady) != 0) lease_index_.renew(slot, now);
  }

  /// Sim time of the node's last heartbeat (registration time when the
  /// kubelet never heartbeated); -1 for unknown nodes.
  [[nodiscard]] double node_lease(const std::string& name) const;

  /// Dense slot for a node name, created on first reference (a name may be
  /// watched or bound before — or without ever — registering as a node).
  [[nodiscard]] std::uint32_t node_slot(const std::string& name);
  /// Slot lookup without creation; kNoSlot when the name was never seen.
  [[nodiscard]] std::uint32_t find_node_slot(const std::string& name) const;

  /// Pops every ready node whose lease has expired — the exact predicate
  /// `now - lease > duration` the per-node rescan applied — appending
  /// their names to `out` (bucket order; callers sort when visitation
  /// order is observable). Popped nodes leave the deadline index; the
  /// caller is expected to flip them NotReady, which parks them on the
  /// recovery-pending list. Returns the number of nodes popped.
  std::size_t collect_expired_leases(double now, double duration,
                                     std::vector<std::string>& out);

  /// Appends the names of not-ready nodes whose lease is fresh again
  /// (`now - lease <= duration`) to `out` — the recovery half of the old
  /// full rescan, examining only nodes currently NotReady. Returns the
  /// number of pending nodes examined.
  std::size_t collect_lease_recovery_candidates(double now, double duration,
                                                std::vector<std::string>& out);

  void watch_nodes(NodeWatch watch) {
    node_watches_.push_back(std::move(watch));
  }

  // ---- Pods -----------------------------------------------------------

  using PodWatch = std::function<void(EventType, const Pod&)>;

  /// Creates a pod (phase Pending). Returns its uid. Throws when a pod of
  /// the same name exists.
  Uid create_pod(Pod pod);

  /// Applies `mutate` to the stored pod and notifies watchers (Modified).
  /// Returns false when no such pod exists.
  bool mutate_pod(const std::string& name, std::function<void(Pod&)> mutate);

  [[nodiscard]] const Pod* get_pod(const std::string& name) const;

  /// Visits every pod in name order without copying. The callback must not
  /// create or delete pods; collect names first for that.
  template <typename F>
  void for_each_pod(F&& fn) const {
    pods_.for_each(std::forward<F>(fn));
  }

  /// Visits pods matching `selector` in name order.
  template <typename F>
  void for_each_pod(const Labels& selector, F&& fn) const {
    pods_.for_each([&](const Pod& pod) {
      if (selector_matches(selector, pod.labels)) fn(pod);
    });
  }

  /// Visits only the pods bound to `node`, via the per-node posting list —
  /// O(pods on that node), not O(all pods). Visitation order is
  /// deterministic but unspecified (bind/finalize history); callers sort
  /// what they collect when order is observable. The callback must not
  /// create or delete pods.
  template <typename F>
  void for_each_pod_on_node(const std::string& node, F&& fn) const {
    const std::uint32_t ns = find_node_slot(node);
    if (ns == kNoSlot) return;
    for (const std::uint32_t pslot : node_slots_[ns].pods) {
      fn(pods_.at(pslot));
    }
  }

  /// Visits only the pods whose `owner` field matches — the deployment
  /// controller's working set. Same ordering/mutation contract as
  /// for_each_pod_on_node.
  template <typename F>
  void for_each_pod_owned_by(const std::string& owner, F&& fn) const {
    const auto it = owner_slot_ids_.find(owner);
    if (it == owner_slot_ids_.end()) return;
    for (const std::uint32_t pslot : pods_by_owner_[it->second]) {
      fn(pods_.at(pslot));
    }
  }

  /// Pointer views for callers that need a materialized list (tests,
  /// diagnostics). Pointers stay valid until the pod is deleted.
  [[nodiscard]] std::vector<const Pod*> list_pods() const;
  [[nodiscard]] std::vector<const Pod*> list_pods(const Labels& selector) const;
  [[nodiscard]] std::size_t pod_count() const { return pods_.size(); }

  /// Lifetime counters: every pod ever stored / ever finalized. Invariant
  /// (asserted in debug builds): created − finalized == pod_count().
  [[nodiscard]] std::uint64_t pods_created_total() const {
    return pods_created_total_;
  }
  [[nodiscard]] std::uint64_t pods_finalized_total() const {
    return pods_finalized_total_;
  }

  /// Marks the pod Terminating and notifies watchers; the owning kubelet
  /// (or, for never-scheduled pods, the API server itself) finalizes.
  void delete_pod(const std::string& name);

  /// Removes the object entirely (kubelet confirmation). Watchers see
  /// Deleted.
  void finalize_pod_deletion(const std::string& name);

  void watch_pods(PodWatch watch) {
    pod_watches_.push_back(SeqPodWatch{watch_seq_++, std::move(watch)});
  }

  /// Node-scoped pod watch (kubelet shape): the watcher only cares about
  /// pods bound to `node`, so delivery routes each pod event to the one
  /// matching node shard instead of fanning it out to all kubelets —
  /// per-event watch cost is O(global watchers + this node's watchers),
  /// not O(nodes). Relative delivery order with global watchers follows
  /// registration order, exactly as if the watcher filtered by itself.
  void watch_pods_on_node(const std::string& node, PodWatch watch);

  /// Per-node resource bookkeeping, maintained synchronously with every
  /// pod store mutation (created/bound/failed/finalized): the sum of
  /// cpu/memory requests of non-Failed pods bound to the node — the same
  /// aggregate a full pod-store rescan would produce, kept O(changed).
  struct NodeUsage {
    double cpu = 0;
    double memory = 0;
    std::uint32_t pods = 0;
  };
  [[nodiscard]] NodeUsage node_usage(const std::string& node) const;

  // ---- Deployments ----------------------------------------------------

  using DeploymentWatch = std::function<void(EventType, const Deployment&)>;

  /// Creates or updates (by name). Returns the uid.
  Uid apply_deployment(Deployment dep);
  bool set_deployment_replicas(const std::string& name, int replicas);
  [[nodiscard]] const Deployment* get_deployment(
      const std::string& name) const;
  void delete_deployment(const std::string& name);
  void watch_deployments(DeploymentWatch watch) {
    deployment_watches_.push_back(std::move(watch));
  }

  // ---- Services & endpoints -------------------------------------------

  using EndpointsWatch = std::function<void(EventType, const Endpoints&)>;

  Uid create_service(Service svc);
  /// Removes a service and its endpoints object (no-op when absent).
  void delete_service(const std::string& name);
  [[nodiscard]] const Service* get_service(const std::string& name) const;

  /// Visits every service in name order without copying.
  template <typename F>
  void for_each_service(F&& fn) const {
    services_.for_each(std::forward<F>(fn));
  }

  [[nodiscard]] std::vector<const Service*> list_services() const;
  void set_endpoints(Endpoints eps);
  [[nodiscard]] const Endpoints* get_endpoints(
      const std::string& service_name) const;
  void watch_endpoints(EndpointsWatch watch) {
    endpoints_watches_.push_back(std::move(watch));
  }

  // ---- Watch-delivery accounting (sf::check) --------------------------
  //
  // Each object event schedules exactly ONE batched delivery; the batch
  // increments the delivered counter exactly once when it runs. Invariant:
  // delivered ≤ scheduled always, == once the queue has drained — a batch
  // firing twice (or never) shows up as counter drift.

  [[nodiscard]] std::uint64_t watch_batches_scheduled() const {
    return watch_batches_scheduled_;
  }
  [[nodiscard]] std::uint64_t watch_batches_delivered() const {
    return watch_batches_delivered_;
  }

 private:
  /// A pod watcher plus its registration sequence number. Global and
  /// node-scoped watchers draw from one sequence so a merged delivery
  /// reproduces plain registration order.
  struct SeqPodWatch {
    std::uint64_t seq = 0;
    PodWatch fn;
  };

  /// Everything node-indexed, one dense slot per node name ever seen.
  /// Slots are never recycled (node cardinality is bounded by topology),
  /// so a slot held by the lease index, a watch shard, or a pod side array
  /// stays valid for the run. Lives in a deque: a watcher registering a
  /// new node shard mid-delivery must not move the shard currently being
  /// iterated.
  struct NodeSlot {
    std::string name;
    NodeObject* obj = nullptr;  ///< into nodes_; null until registered
    NodeUsage usage;
    std::deque<SeqPodWatch> watches;   ///< node-scoped pod watch shard
    std::vector<std::uint32_t> pods;   ///< pod slots bound to this node
  };

  /// node_flags_ bits, kept in lockstep with NodeSlot::obj / obj->ready so
  /// the heartbeat path never chases the NodeSlot or NodeObject records.
  static constexpr std::uint8_t kNodeRegistered = 1;
  static constexpr std::uint8_t kNodeReady = 2;

  void notify_pod(EventType type, const Pod& pod, std::uint32_t node_slot);
  void deliver_pod_event(EventType type, const Pod& pod, std::size_t n_global,
                         std::uint32_t node_slot, std::size_t n_node);
  void notify_deployment(EventType type, const Deployment& dep);
  void notify_endpoints(EventType type, const Endpoints& eps);
  void notify_node(EventType type, const NodeObject& node);

  /// Does this pod count toward its node's usage aggregate? (The same
  /// predicate the scheduler's old full rescans applied.)
  [[nodiscard]] static bool usage_counted(const Pod& pod) {
    return !pod.node_name.empty() && pod.phase != PodPhase::kFailed;
  }
  void add_usage(std::uint32_t node_slot, const Pod& pod);
  void sub_usage(std::uint32_t node_slot, double cpu, double memory);

  /// Pod-slot side arrays + posting-list maintenance (swap-remove with
  /// position back-pointers; order is irrelevant — see for_each_pod_on_node).
  void ensure_pod_side(std::uint32_t pod_slot);
  void link_pod_node(std::uint32_t pod_slot, std::uint32_t node_slot);
  void unlink_pod_node(std::uint32_t pod_slot);
  void link_pod_owner(std::uint32_t pod_slot, const std::string& owner);
  void unlink_pod_owner(std::uint32_t pod_slot);

  /// Re-establishes tracked ⇔ (registered && ready) for `slot` after a
  /// ready flip or (re-)registration.
  void sync_node_tracking(std::uint32_t slot);
  void drop_recovery_pending(std::uint32_t slot);

  sim::Simulation& sim_;
  double api_latency_;
  Uid next_uid_ = 1;
  std::uint64_t pods_created_total_ = 0;
  std::uint64_t pods_finalized_total_ = 0;
  std::uint64_t watch_batches_scheduled_ = 0;
  std::uint64_t watch_batches_delivered_ = 0;

  std::map<std::string, NodeObject> nodes_;
  NamedStore<Pod> pods_;
  NamedStore<Deployment> deployments_;
  NamedStore<Service> services_;
  NamedStore<Endpoints> endpoints_;

  // Deques: a watcher's callback may register further watchers while a
  // batched delivery is iterating; deque growth never moves the element
  // (the std::function) currently executing, where vector reallocation
  // would destroy it mid-call.
  std::deque<SeqPodWatch> pod_watches_;
  std::deque<DeploymentWatch> deployment_watches_;
  std::deque<EndpointsWatch> endpoints_watches_;
  std::deque<NodeWatch> node_watches_;

  // Node-slot space. The id map owns nothing; NodeSlot structs live in the
  // deque at their slot index (stable addresses, see NodeSlot).
  std::uint64_t watch_seq_ = 0;
  std::unordered_map<std::string, std::uint32_t> node_slot_ids_;
  std::deque<NodeSlot> node_slots_;

  // Heartbeat hot-path side arrays, indexed by node slot (see
  // renew_node_lease_slot): last lease stamp and registered/ready flags.
  std::vector<double> node_lease_;
  std::vector<std::uint8_t> node_flags_;

  // Lease deadlines of ready nodes, calendarized; not-ready nodes wait on
  // the recovery-pending list (O(not-ready) per sweep, not O(nodes)).
  LeaseIndex lease_index_;
  std::vector<std::uint32_t> recovery_pending_;

  // Owner-slot space for the per-deployment pod index. Owner slots are
  // never recycled: a deployment's NamedStore slot can be reused while
  // orphaned pods still carry the old owner name.
  std::unordered_map<std::string, std::uint32_t> owner_slot_ids_;
  std::vector<std::vector<std::uint32_t>> pods_by_owner_;

  // Pod side arrays indexed by pod slot: the bound node's slot, this pod's
  // position in that node's posting list, and the same pair for the owner
  // index — so per-event paths never hash a node or owner name.
  std::vector<std::uint32_t> pod_node_slot_;
  std::vector<std::uint32_t> pod_node_pos_;
  std::vector<std::uint32_t> pod_owner_slot_;
  std::vector<std::uint32_t> pod_owner_pos_;
};

}  // namespace sf::k8s
