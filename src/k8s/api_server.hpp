#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "k8s/named_store.hpp"
#include "k8s/objects.hpp"
#include "sim/simulation.hpp"

namespace sf::k8s {

/// Watch event kinds, mirroring the Kubernetes watch protocol.
enum class EventType { kAdded, kModified, kDeleted };

/// The cluster's source of truth: typed object stores plus asynchronous
/// watch streams. Every watch notification is delivered after the
/// configured API latency, which is what strings control-plane actions
/// (schedule → kubelet → endpoints) into a realistic cold-start path.
///
/// Hot-path shape: objects live in dense slot stores (NamedStore), readers
/// visit them in place (for_each_* / list_* return pointers, never copies),
/// and each object event schedules ONE engine event that delivers the
/// snapshot to all watchers registered at notification time, in
/// registration order — instead of one event + one heap-allocated closure
/// + one object copy per watcher.
class ApiServer {
 public:
  explicit ApiServer(sim::Simulation& sim, double api_latency_s = 0.005)
      : sim_(sim), api_latency_(api_latency_s) {}

  ApiServer(const ApiServer&) = delete;
  ApiServer& operator=(const ApiServer&) = delete;

  [[nodiscard]] sim::Simulation& sim() { return sim_; }
  [[nodiscard]] double api_latency() const { return api_latency_; }

  // ---- Nodes ----------------------------------------------------------

  using NodeWatch = std::function<void(EventType, const NodeObject&)>;

  void register_node(NodeObject node);
  [[nodiscard]] const std::map<std::string, NodeObject>& nodes() const {
    return nodes_;
  }

  /// Flips a node's Ready condition and notifies node watchers
  /// (kModified). Returns false when the node is unknown or unchanged.
  bool set_node_ready(const std::string& name, bool ready);

  /// Kubelet heartbeat: refreshes the node's lease timestamp.
  void renew_node_lease(const std::string& name);

  /// Sim time of the node's last heartbeat (registration time when the
  /// kubelet never heartbeated); -1 for unknown nodes.
  [[nodiscard]] double node_lease(const std::string& name) const;

  void watch_nodes(NodeWatch watch) {
    node_watches_.push_back(std::move(watch));
  }

  // ---- Pods -----------------------------------------------------------

  using PodWatch = std::function<void(EventType, const Pod&)>;

  /// Creates a pod (phase Pending). Returns its uid. Throws when a pod of
  /// the same name exists.
  Uid create_pod(Pod pod);

  /// Applies `mutate` to the stored pod and notifies watchers (Modified).
  /// Returns false when no such pod exists.
  bool mutate_pod(const std::string& name, std::function<void(Pod&)> mutate);

  [[nodiscard]] const Pod* get_pod(const std::string& name) const;

  /// Visits every pod in name order without copying. The callback must not
  /// create or delete pods; collect names first for that.
  template <typename F>
  void for_each_pod(F&& fn) const {
    pods_.for_each(std::forward<F>(fn));
  }

  /// Visits pods matching `selector` in name order.
  template <typename F>
  void for_each_pod(const Labels& selector, F&& fn) const {
    pods_.for_each([&](const Pod& pod) {
      if (selector_matches(selector, pod.labels)) fn(pod);
    });
  }

  /// Pointer views for callers that need a materialized list (tests,
  /// diagnostics). Pointers stay valid until the pod is deleted.
  [[nodiscard]] std::vector<const Pod*> list_pods() const;
  [[nodiscard]] std::vector<const Pod*> list_pods(const Labels& selector) const;
  [[nodiscard]] std::size_t pod_count() const { return pods_.size(); }

  /// Lifetime counters: every pod ever stored / ever finalized. Invariant
  /// (asserted in debug builds): created − finalized == pod_count().
  [[nodiscard]] std::uint64_t pods_created_total() const {
    return pods_created_total_;
  }
  [[nodiscard]] std::uint64_t pods_finalized_total() const {
    return pods_finalized_total_;
  }

  /// Marks the pod Terminating and notifies watchers; the owning kubelet
  /// (or, for never-scheduled pods, the API server itself) finalizes.
  void delete_pod(const std::string& name);

  /// Removes the object entirely (kubelet confirmation). Watchers see
  /// Deleted.
  void finalize_pod_deletion(const std::string& name);

  void watch_pods(PodWatch watch) {
    pod_watches_.push_back(SeqPodWatch{watch_seq_++, std::move(watch)});
  }

  /// Node-scoped pod watch (kubelet shape): the watcher only cares about
  /// pods bound to `node`, so delivery routes each pod event to the one
  /// matching node shard instead of fanning it out to all kubelets —
  /// per-event watch cost is O(global watchers + this node's watchers),
  /// not O(nodes). Relative delivery order with global watchers follows
  /// registration order, exactly as if the watcher filtered by itself.
  void watch_pods_on_node(const std::string& node, PodWatch watch);

  /// Per-node resource bookkeeping, maintained synchronously with every
  /// pod store mutation (created/bound/failed/finalized): the sum of
  /// cpu/memory requests of non-Failed pods bound to the node — the same
  /// aggregate a full pod-store rescan would produce, kept O(changed).
  struct NodeUsage {
    double cpu = 0;
    double memory = 0;
    std::uint32_t pods = 0;
  };
  [[nodiscard]] NodeUsage node_usage(const std::string& node) const;

  // ---- Deployments ----------------------------------------------------

  using DeploymentWatch = std::function<void(EventType, const Deployment&)>;

  /// Creates or updates (by name). Returns the uid.
  Uid apply_deployment(Deployment dep);
  bool set_deployment_replicas(const std::string& name, int replicas);
  [[nodiscard]] const Deployment* get_deployment(
      const std::string& name) const;
  void delete_deployment(const std::string& name);
  void watch_deployments(DeploymentWatch watch) {
    deployment_watches_.push_back(std::move(watch));
  }

  // ---- Services & endpoints -------------------------------------------

  using EndpointsWatch = std::function<void(EventType, const Endpoints&)>;

  Uid create_service(Service svc);
  /// Removes a service and its endpoints object (no-op when absent).
  void delete_service(const std::string& name);
  [[nodiscard]] const Service* get_service(const std::string& name) const;

  /// Visits every service in name order without copying.
  template <typename F>
  void for_each_service(F&& fn) const {
    services_.for_each(std::forward<F>(fn));
  }

  [[nodiscard]] std::vector<const Service*> list_services() const;
  void set_endpoints(Endpoints eps);
  [[nodiscard]] const Endpoints* get_endpoints(
      const std::string& service_name) const;
  void watch_endpoints(EndpointsWatch watch) {
    endpoints_watches_.push_back(std::move(watch));
  }

  // ---- Watch-delivery accounting (sf::check) --------------------------
  //
  // Each object event schedules exactly ONE batched delivery; the batch
  // increments the delivered counter exactly once when it runs. Invariant:
  // delivered ≤ scheduled always, == once the queue has drained — a batch
  // firing twice (or never) shows up as counter drift.

  [[nodiscard]] std::uint64_t watch_batches_scheduled() const {
    return watch_batches_scheduled_;
  }
  [[nodiscard]] std::uint64_t watch_batches_delivered() const {
    return watch_batches_delivered_;
  }

 private:
  /// A pod watcher plus its registration sequence number. Global and
  /// node-scoped watchers draw from one sequence so a merged delivery
  /// reproduces plain registration order.
  struct SeqPodWatch {
    std::uint64_t seq = 0;
    PodWatch fn;
  };

  void notify_pod(EventType type, const Pod& pod);
  void deliver_pod_event(EventType type, const Pod& pod, std::size_t n_global,
                         sim::ObjectId node_id, std::size_t n_node);
  void notify_deployment(EventType type, const Deployment& dep);
  void notify_endpoints(EventType type, const Endpoints& eps);
  void notify_node(EventType type, const NodeObject& node);

  /// Does this pod count toward its node's usage aggregate? (The same
  /// predicate the scheduler's old full rescans applied.)
  [[nodiscard]] static bool usage_counted(const Pod& pod) {
    return !pod.node_name.empty() && pod.phase != PodPhase::kFailed;
  }
  void add_usage(sim::ObjectId node_id, const Pod& pod);
  void sub_usage(sim::ObjectId node_id, double cpu, double memory);

  sim::Simulation& sim_;
  double api_latency_;
  Uid next_uid_ = 1;
  std::uint64_t pods_created_total_ = 0;
  std::uint64_t pods_finalized_total_ = 0;
  std::uint64_t watch_batches_scheduled_ = 0;
  std::uint64_t watch_batches_delivered_ = 0;

  std::map<std::string, NodeObject> nodes_;
  std::map<std::string, double> node_leases_;
  NamedStore<Pod> pods_;
  NamedStore<Deployment> deployments_;
  NamedStore<Service> services_;
  NamedStore<Endpoints> endpoints_;

  // Deques: a watcher's callback may register further watchers while a
  // batched delivery is iterating; deque growth never moves the element
  // (the std::function) currently executing, where vector reallocation
  // would destroy it mid-call.
  std::deque<SeqPodWatch> pod_watches_;
  std::deque<DeploymentWatch> deployment_watches_;
  std::deque<EndpointsWatch> endpoints_watches_;
  std::deque<NodeWatch> node_watches_;

  // Sharded by interned node id: watch routing and usage bookkeeping hit
  // only the shard a pod event actually touches. Node names are interned
  // into the owning simulation's table at registration/bind time, so the
  // ids — like everything else per-simulation — are pure functions of the
  // run.
  std::uint64_t watch_seq_ = 0;
  std::unordered_map<sim::ObjectId, std::deque<SeqPodWatch>> node_pod_watches_;
  std::unordered_map<sim::ObjectId, NodeUsage> node_usage_;
};

}  // namespace sf::k8s
