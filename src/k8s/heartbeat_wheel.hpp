#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "k8s/api_server.hpp"

namespace sf::k8s {

class Kubelet;

/// Shared calendarized heartbeat driver: ONE self-rearming engine event
/// renews the leases of every live kubelet per interval, replacing the old
/// per-kubelet timers (10k pending events and 10k event pops per interval
/// at 10k nodes). Renewal order within a tick is unobservable — a renewal
/// only stamps a lease — so batching cohorts into one event is
/// bit-identical to the per-kubelet scheme; only the engine's event count
/// drops.
///
/// Per-node gating is preserved: each tick re-evaluates
/// Kubelet::heartbeat_alive() (node up + control plane reachable), so a
/// down or partitioned node's lease goes stale exactly as before.
/// Permanently failed nodes don't even pay the per-tick check: KubeCluster
/// removes a member on node crash and restores it on reboot (intrusive
/// live list, O(1) both ways) — dead kubelets stop ticking instead of
/// being polled for the rest of the run.
///
/// NOTE: once started, the wheel keeps one event pending forever — only
/// start it in scenarios driven to a workload-defined end (fault
/// injection, lifecycle-enabled serving runs).
class HeartbeatWheel {
 public:
  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

  explicit HeartbeatWheel(ApiServer& api) : api_(api) {}

  HeartbeatWheel(const HeartbeatWheel&) = delete;
  HeartbeatWheel& operator=(const HeartbeatWheel&) = delete;

  /// Joins a kubelet to the wheel and renews its lease immediately when it
  /// is alive (the old start_heartbeats contract at enable time). Returns
  /// the member id used by remove()/restore().
  std::uint32_t add(Kubelet& kubelet);

  /// Detaches a member from the live list (node crashed). Idempotent.
  void remove(std::uint32_t member);

  /// Re-attaches a member (node rebooted); its lease renews at the next
  /// wheel tick, exactly when the old per-kubelet timer would have fired.
  /// Idempotent.
  void restore(std::uint32_t member);

  /// Starts the shared tick. Idempotent; the first call pins the interval.
  void start(double interval_s);

  [[nodiscard]] bool started() const { return started_; }
  [[nodiscard]] std::size_t live_members() const { return live_count_; }

 private:
  void tick();

  struct Member {
    Kubelet* kubelet = nullptr;
    /// Cached &kubelet->connectivity_probe(): the probe object's address
    /// is stable even when the probe is (re)assigned, and reading it skips
    /// the kubelet + node chases on the tick path. Live-list membership
    /// already implies the node is up — the owner removes members on crash
    /// and restores them on reboot — so the probe is the only per-tick
    /// liveness input.
    const std::function<bool()>* probe = nullptr;
    std::uint32_t node_slot = 0;  ///< ApiServer node slot (renew hot path)
    std::uint32_t prev = kNone;
    std::uint32_t next = kNone;
    bool live = false;
  };

  ApiServer& api_;
  double interval_ = 1.0;
  bool started_ = false;
  std::vector<Member> members_;
  std::uint32_t head_ = kNone;
  std::uint32_t tail_ = kNone;
  std::size_t live_count_ = 0;
};

}  // namespace sf::k8s
