#pragma once

#include <functional>
#include <map>
#include <string>
#include <utility>

#include "cluster/node.hpp"
#include "container/image_cache.hpp"
#include "container/registry.hpp"
#include "container/runtime.hpp"
#include "k8s/api_server.hpp"

namespace sf::k8s {

/// Node agent: realizes pods bound to its node.
///
/// Pipeline per pod: image pull (layer-cached) → container create →
/// container start (+ app boot) → phase Running → readiness probe →
/// ready. On termination it honours the pod's pre-stop drain hook before
/// stopping the container, then confirms deletion to the API server.
class Kubelet {
 public:
  Kubelet(ApiServer& api, cluster::Node& node, container::ImageCache& cache,
          container::ContainerRuntime& runtime, container::Registry& registry,
          double readiness_probe_delay_s = 0.05);

  Kubelet(const Kubelet&) = delete;
  Kubelet& operator=(const Kubelet&) = delete;

  [[nodiscard]] const std::string& node_name() const { return node_.name(); }
  [[nodiscard]] std::size_t managed_pods() const { return managed_.size(); }

  /// Container backing a pod this kubelet runs; kNoContainer when the pod
  /// is unknown or not yet started.
  [[nodiscard]] container::ContainerId container_for(
      const std::string& pod_name) const;

  /// Would this kubelet renew its lease right now? True while the node is
  /// up AND the connectivity probe (when set) reaches the control plane.
  /// The shared heartbeat wheel evaluates this each tick — the per-node
  /// gating the old per-kubelet timers applied, without one pending engine
  /// event per kubelet per interval.
  [[nodiscard]] bool heartbeat_alive() const {
    return node_.up() && (!connectivity_probe_ || connectivity_probe_());
  }

  /// Stable reference to the probe object (empty when none is set; stays
  /// valid across set_connectivity_probe calls). The heartbeat wheel
  /// caches its address per member so a tick reads one line of this
  /// kubelet instead of chasing kubelet + node records.
  [[nodiscard]] const std::function<bool()>& connectivity_probe() const {
    return connectivity_probe_;
  }

  /// Makes lease renewal conditional on reaching the control plane: the
  /// heartbeat wheel renews only while `probe()` returns true (and the
  /// node is up). Used to model rack partitions — a healthy node cut off
  /// from the API server looks exactly like a dead one to the
  /// node-lifecycle controller, which is the split-brain the stack must
  /// survive.
  void set_connectivity_probe(std::function<bool()> probe) {
    connectivity_probe_ = std::move(probe);
  }

  /// Kills a managed pod (fault injection / eviction): the container is
  /// torn down and the pod object transitions to kFailed, which is what
  /// the Deployment controller reacts to. Returns false when this kubelet
  /// does not run the pod or its deletion is already in progress.
  bool kill_pod(const std::string& pod_name);

  /// Node-crash hook: forget all managed pods. In-flight realize chains
  /// die at their next managed_ lookup; the pod objects are left to the
  /// node-lifecycle controller's eviction sweep, exactly like a real
  /// kubelet that vanishes without deregistering.
  void handle_node_crash();

 private:
  enum class Stage {
    kPulling,
    kCreating,
    kStarting,
    kRunning,
    kDraining,
    kStopping,
  };
  struct Managed {
    Stage stage = Stage::kPulling;
    container::ContainerId cid = container::kNoContainer;
    bool terminate_requested = false;
  };

  void on_pod_event(EventType type, const Pod& pod);
  void realize(const Pod& pod);
  void terminate(const std::string& pod_name);
  void teardown(const std::string& pod_name);
  void fail_pod(const std::string& pod_name);

  ApiServer& api_;
  cluster::Node& node_;
  container::ImageCache& cache_;
  container::ContainerRuntime& runtime_;
  container::Registry& registry_;
  double readiness_delay_;
  std::map<std::string, Managed> managed_;
  std::function<bool()> connectivity_probe_;
};

}  // namespace sf::k8s
