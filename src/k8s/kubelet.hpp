#pragma once

#include <map>
#include <string>

#include "cluster/node.hpp"
#include "container/image_cache.hpp"
#include "container/registry.hpp"
#include "container/runtime.hpp"
#include "k8s/api_server.hpp"

namespace sf::k8s {

/// Node agent: realizes pods bound to its node.
///
/// Pipeline per pod: image pull (layer-cached) → container create →
/// container start (+ app boot) → phase Running → readiness probe →
/// ready. On termination it honours the pod's pre-stop drain hook before
/// stopping the container, then confirms deletion to the API server.
class Kubelet {
 public:
  Kubelet(ApiServer& api, cluster::Node& node, container::ImageCache& cache,
          container::ContainerRuntime& runtime, container::Registry& registry,
          double readiness_probe_delay_s = 0.05);

  Kubelet(const Kubelet&) = delete;
  Kubelet& operator=(const Kubelet&) = delete;

  [[nodiscard]] const std::string& node_name() const { return node_.name(); }
  [[nodiscard]] std::size_t managed_pods() const { return managed_.size(); }

  /// Container backing a pod this kubelet runs; kNoContainer when the pod
  /// is unknown or not yet started.
  [[nodiscard]] container::ContainerId container_for(
      const std::string& pod_name) const;

 private:
  enum class Stage {
    kPulling,
    kCreating,
    kStarting,
    kRunning,
    kDraining,
    kStopping,
  };
  struct Managed {
    Stage stage = Stage::kPulling;
    container::ContainerId cid = container::kNoContainer;
    bool terminate_requested = false;
  };

  void on_pod_event(EventType type, const Pod& pod);
  void realize(const Pod& pod);
  void terminate(const std::string& pod_name);
  void teardown(const std::string& pod_name);
  void fail_pod(const std::string& pod_name);

  ApiServer& api_;
  cluster::Node& node_;
  container::ImageCache& cache_;
  container::ContainerRuntime& runtime_;
  container::Registry& registry_;
  double readiness_delay_;
  std::map<std::string, Managed> managed_;
};

}  // namespace sf::k8s
