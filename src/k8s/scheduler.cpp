#include "k8s/scheduler.hpp"

#include <limits>
#include <utility>

namespace sf::k8s {

Scheduler::Scheduler(ApiServer& api, ImageLocalityFn image_locality)
    : api_(api), image_locality_(std::move(image_locality)) {
  api_.watch_pods([this](EventType type, const Pod& pod) {
    switch (type) {
      case EventType::kAdded:
        try_schedule(pod.name);
        break;
      case EventType::kModified:
        break;
      case EventType::kDeleted:
        // Capacity may have freed; retry anything stuck.
        unschedulable_.erase(pod.name);
        retry_pending();
        break;
    }
  });
  api_.watch_nodes([this](EventType type, const NodeObject& node) {
    // A node turning Ready is fresh capacity for anything stuck.
    if (type == EventType::kModified && node.ready) retry_pending();
  });
}

double Scheduler::requested_cpu_on(const std::string& node) const {
  return api_.node_usage(node).cpu;
}

double Scheduler::requested_memory_on(const std::string& node) const {
  return api_.node_usage(node).memory;
}

void Scheduler::try_schedule(const std::string& pod_name) {
  const Pod* pod = api_.get_pod(pod_name);
  if (pod == nullptr || pod->phase != PodPhase::kPending ||
      !pod->node_name.empty()) {
    return;
  }

  // Each node's requested CPU/memory comes from the ApiServer's per-node
  // aggregates, maintained O(changed) with the pod store (the old code
  // rebuilt them from a full pod-store scan on every bind). The request
  // values in play are exactly representable, so the incrementally kept
  // sums equal the rescan's sums bit for bit and scores are unchanged.
  std::string best_node;
  double best_score = -std::numeric_limits<double>::infinity();
  for (const auto& [name, node] : api_.nodes()) {
    if (!node.ready) continue;  // filter: NotReady (crashed / lease expired)
    const ApiServer::NodeUsage used = api_.node_usage(name);
    const double used_cpu = used.cpu;
    const double used_mem = used.memory;
    if (used_cpu + pod->cpu_request > node.allocatable_cpu ||
        used_mem + pod->memory_request > node.allocatable_memory) {
      continue;  // filter: does not fit
    }
    // Score: least-requested CPU fraction, plus image-locality bonus.
    double score =
        1.0 - (used_cpu + pod->cpu_request) / node.allocatable_cpu;
    if (image_locality_ && image_locality_(name, pod->container.image)) {
      score += locality_weight_;
    }
    if (score > best_score) {
      best_score = score;
      best_node = name;
    }
  }

  if (best_node.empty()) {
    // Unschedulable: remember it and retry after backoff.
    if (unschedulable_.insert(pod_name).second && !retry_scheduled_) {
      retry_scheduled_ = true;
      api_.sim().call_in(1.0, [this] {
        retry_scheduled_ = false;
        retry_pending();
      });
    }
    return;
  }

  unschedulable_.erase(pod_name);
  ++binds_;
  api_.sim().trace().record(api_.sim().now(), "k8s", "bind",
                            {{"pod", pod_name}, {"node", best_node}});
  api_.mutate_pod(pod_name, [&best_node](Pod& p) {
    p.node_name = best_node;
    p.phase = PodPhase::kScheduled;
  });
}

void Scheduler::retry_pending() {
  // Copy: try_schedule mutates the set.
  const std::set<std::string> pending = unschedulable_;
  for (const auto& name : pending) try_schedule(name);
  if (!unschedulable_.empty() && !retry_scheduled_) {
    retry_scheduled_ = true;
    api_.sim().call_in(1.0, [this] {
      retry_scheduled_ = false;
      retry_pending();
    });
  }
}

}  // namespace sf::k8s
