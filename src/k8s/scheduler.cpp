#include "k8s/scheduler.hpp"

#include <limits>
#include <utility>

namespace sf::k8s {

Scheduler::Scheduler(ApiServer& api, ImageLocalityFn image_locality)
    : api_(api), image_locality_(std::move(image_locality)) {
  api_.watch_pods([this](EventType type, const Pod& pod) {
    switch (type) {
      case EventType::kAdded:
        try_schedule(pod.name);
        break;
      case EventType::kModified:
        break;
      case EventType::kDeleted:
        // Capacity may have freed; retry anything stuck.
        unschedulable_.erase(pod.name);
        retry_pending();
        break;
    }
  });
}

double Scheduler::requested_cpu_on(const std::string& node) const {
  double total = 0;
  for (const auto& pod : api_.list_pods()) {
    if (pod.node_name == node && pod.phase != PodPhase::kFailed) {
      total += pod.cpu_request;
    }
  }
  return total;
}

double Scheduler::requested_memory_on(const std::string& node) const {
  double total = 0;
  for (const auto& pod : api_.list_pods()) {
    if (pod.node_name == node && pod.phase != PodPhase::kFailed) {
      total += pod.memory_request;
    }
  }
  return total;
}

void Scheduler::try_schedule(const std::string& pod_name) {
  const Pod* pod = api_.get_pod(pod_name);
  if (pod == nullptr || pod->phase != PodPhase::kPending ||
      !pod->node_name.empty()) {
    return;
  }

  std::string best_node;
  double best_score = -std::numeric_limits<double>::infinity();
  for (const auto& [name, node] : api_.nodes()) {
    const double used_cpu = requested_cpu_on(name);
    const double used_mem = requested_memory_on(name);
    if (used_cpu + pod->cpu_request > node.allocatable_cpu ||
        used_mem + pod->memory_request > node.allocatable_memory) {
      continue;  // filter: does not fit
    }
    // Score: least-requested CPU fraction, plus image-locality bonus.
    double score =
        1.0 - (used_cpu + pod->cpu_request) / node.allocatable_cpu;
    if (image_locality_ && image_locality_(name, pod->container.image)) {
      score += locality_weight_;
    }
    if (score > best_score) {
      best_score = score;
      best_node = name;
    }
  }

  if (best_node.empty()) {
    // Unschedulable: remember it and retry after backoff.
    if (unschedulable_.insert(pod_name).second && !retry_scheduled_) {
      retry_scheduled_ = true;
      api_.sim().call_in(1.0, [this] {
        retry_scheduled_ = false;
        retry_pending();
      });
    }
    return;
  }

  unschedulable_.erase(pod_name);
  ++binds_;
  api_.sim().trace().record(api_.sim().now(), "k8s", "bind",
                            {{"pod", pod_name}, {"node", best_node}});
  api_.mutate_pod(pod_name, [&best_node](Pod& p) {
    p.node_name = best_node;
    p.phase = PodPhase::kScheduled;
  });
}

void Scheduler::retry_pending() {
  // Copy: try_schedule mutates the set.
  const std::set<std::string> pending = unschedulable_;
  for (const auto& name : pending) try_schedule(name);
  if (!unschedulable_.empty() && !retry_scheduled_) {
    retry_scheduled_ = true;
    api_.sim().call_in(1.0, [this] {
      retry_scheduled_ = false;
      retry_pending();
    });
  }
}

}  // namespace sf::k8s
