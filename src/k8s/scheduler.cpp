#include "k8s/scheduler.hpp"

#include <limits>
#include <map>
#include <utility>

namespace sf::k8s {

Scheduler::Scheduler(ApiServer& api, ImageLocalityFn image_locality)
    : api_(api), image_locality_(std::move(image_locality)) {
  api_.watch_pods([this](EventType type, const Pod& pod) {
    switch (type) {
      case EventType::kAdded:
        try_schedule(pod.name);
        break;
      case EventType::kModified:
        break;
      case EventType::kDeleted:
        // Capacity may have freed; retry anything stuck.
        unschedulable_.erase(pod.name);
        retry_pending();
        break;
    }
  });
  api_.watch_nodes([this](EventType type, const NodeObject& node) {
    // A node turning Ready is fresh capacity for anything stuck.
    if (type == EventType::kModified && node.ready) retry_pending();
  });
}

double Scheduler::requested_cpu_on(const std::string& node) const {
  double total = 0;
  api_.for_each_pod([&](const Pod& pod) {
    if (pod.node_name == node && pod.phase != PodPhase::kFailed) {
      total += pod.cpu_request;
    }
  });
  return total;
}

double Scheduler::requested_memory_on(const std::string& node) const {
  double total = 0;
  api_.for_each_pod([&](const Pod& pod) {
    if (pod.node_name == node && pod.phase != PodPhase::kFailed) {
      total += pod.memory_request;
    }
  });
  return total;
}

void Scheduler::try_schedule(const std::string& pod_name) {
  const Pod* pod = api_.get_pod(pod_name);
  if (pod == nullptr || pod->phase != PodPhase::kPending ||
      !pod->node_name.empty()) {
    return;
  }

  // One pass over the pod store accumulates every node's requested CPU and
  // memory (the old code rescanned all pods twice per candidate node).
  // Per-node sums accumulate in pod-name order, exactly as the per-node
  // rescans did, so scores are bit-identical.
  struct Usage {
    double cpu = 0;
    double memory = 0;
  };
  std::map<std::string, Usage> used;
  api_.for_each_pod([&](const Pod& p) {
    if (!p.node_name.empty() && p.phase != PodPhase::kFailed) {
      Usage& u = used[p.node_name];
      u.cpu += p.cpu_request;
      u.memory += p.memory_request;
    }
  });

  std::string best_node;
  double best_score = -std::numeric_limits<double>::infinity();
  for (const auto& [name, node] : api_.nodes()) {
    if (!node.ready) continue;  // filter: NotReady (crashed / lease expired)
    const auto it = used.find(name);
    const double used_cpu = it == used.end() ? 0 : it->second.cpu;
    const double used_mem = it == used.end() ? 0 : it->second.memory;
    if (used_cpu + pod->cpu_request > node.allocatable_cpu ||
        used_mem + pod->memory_request > node.allocatable_memory) {
      continue;  // filter: does not fit
    }
    // Score: least-requested CPU fraction, plus image-locality bonus.
    double score =
        1.0 - (used_cpu + pod->cpu_request) / node.allocatable_cpu;
    if (image_locality_ && image_locality_(name, pod->container.image)) {
      score += locality_weight_;
    }
    if (score > best_score) {
      best_score = score;
      best_node = name;
    }
  }

  if (best_node.empty()) {
    // Unschedulable: remember it and retry after backoff.
    if (unschedulable_.insert(pod_name).second && !retry_scheduled_) {
      retry_scheduled_ = true;
      api_.sim().call_in(1.0, [this] {
        retry_scheduled_ = false;
        retry_pending();
      });
    }
    return;
  }

  unschedulable_.erase(pod_name);
  ++binds_;
  api_.sim().trace().record(api_.sim().now(), "k8s", "bind",
                            {{"pod", pod_name}, {"node", best_node}});
  api_.mutate_pod(pod_name, [&best_node](Pod& p) {
    p.node_name = best_node;
    p.phase = PodPhase::kScheduled;
  });
}

void Scheduler::retry_pending() {
  // Copy: try_schedule mutates the set.
  const std::set<std::string> pending = unschedulable_;
  for (const auto& name : pending) try_schedule(name);
  if (!unschedulable_.empty() && !retry_scheduled_) {
    retry_scheduled_ = true;
    api_.sim().call_in(1.0, [this] {
      retry_scheduled_ = false;
      retry_pending();
    });
  }
}

}  // namespace sf::k8s
