#pragma once

#include <functional>
#include <set>
#include <string>

#include "k8s/api_server.hpp"

namespace sf::k8s {

/// Default kube-scheduler: filters nodes on resource fit, scores by
/// least-requested CPU plus an image-locality bonus, binds the winner.
/// Unschedulable pods are retried after a backoff and whenever capacity
/// frees up.
class Scheduler {
 public:
  /// `image_locality(node_name, image)` reports whether a node already
  /// caches an image; may be empty (no locality scoring).
  using ImageLocalityFn =
      std::function<bool(const std::string& node, const std::string& image)>;

  explicit Scheduler(ApiServer& api, ImageLocalityFn image_locality = {});

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] std::size_t pending_count() const {
    return unschedulable_.size();
  }
  [[nodiscard]] std::uint64_t binds() const { return binds_; }

  /// Weight of the image-locality term relative to least-requested.
  void set_locality_weight(double w) { locality_weight_ = w; }

 private:
  void try_schedule(const std::string& pod_name);
  void retry_pending();
  [[nodiscard]] double requested_cpu_on(const std::string& node) const;
  [[nodiscard]] double requested_memory_on(const std::string& node) const;

  ApiServer& api_;
  ImageLocalityFn image_locality_;
  double locality_weight_ = 0.3;
  std::set<std::string> unschedulable_;
  bool retry_scheduled_ = false;
  std::uint64_t binds_ = 0;
};

}  // namespace sf::k8s
