#include "k8s/controllers.hpp"

#include <algorithm>
#include <vector>

namespace sf::k8s {

// ---- DeploymentController ----------------------------------------------

DeploymentController::DeploymentController(ApiServer& api,
                                           double restart_backoff_s)
    : api_(api), restart_backoff_(restart_backoff_s) {
  api_.watch_deployments([this](EventType type, const Deployment& dep) {
    if (type == EventType::kDeleted) {
      // Remove every pod the deployment owned. Collect names first:
      // delete_pod mutates the store mid-visit otherwise.
      std::vector<std::string> owned;
      api_.for_each_pod([&](const Pod& pod) {
        if (pod.owner == dep.name) owned.push_back(pod.name);
      });
      for (const auto& name : owned) api_.delete_pod(name);
      next_index_.erase(dep.name);
      return;
    }
    reconcile(dep.name);
  });
  api_.watch_pods([this](EventType type, const Pod& pod) {
    if (pod.owner.empty()) return;
    if (type == EventType::kDeleted) {
      reconcile(pod.owner);
    } else if (type == EventType::kModified &&
               pod.phase == PodPhase::kFailed) {
      // Replace crashed pods after a backoff (crash-loop protection).
      api_.delete_pod(pod.name);
      api_.sim().call_in(restart_backoff_,
                         [this, owner = pod.owner] { reconcile(owner); });
    }
  });
}

void DeploymentController::reconcile(const std::string& deployment_name) {
  const Deployment* dep = api_.get_deployment(deployment_name);
  if (dep == nullptr) return;

  // Live pods this deployment owns; only the name (for deletes) and uid
  // (for the keep-newest ordering) matter — no Pod copies.
  struct Owned {
    std::string name;
    Uid uid;
  };
  std::vector<Owned> owned;
  api_.for_each_pod([&](const Pod& pod) {
    if (pod.owner == dep->name && pod.phase != PodPhase::kTerminating &&
        pod.phase != PodPhase::kFailed) {
      owned.push_back(Owned{pod.name, pod.uid});
    }
  });
  const int live = static_cast<int>(owned.size());

  if (live < dep->replicas) {
    for (int i = live; i < dep->replicas; ++i) {
      Pod pod;
      pod.name = dep->name + "-" + std::to_string(next_index_[dep->name]++);
      pod.labels = dep->pod_labels;
      pod.container = dep->pod_template;
      pod.cpu_request = dep->cpu_request;
      pod.memory_request = dep->memory_request;
      pod.owner = dep->name;
      ++pods_created_;
      api_.create_pod(std::move(pod));
    }
  } else if (live > dep->replicas) {
    // Newest first (highest uid): keeps the longest-warm pods alive, which
    // is also what Knative wants for container reuse.
    std::sort(owned.begin(), owned.end(),
              [](const Owned& a, const Owned& b) { return a.uid > b.uid; });
    for (int i = 0; i < live - dep->replicas; ++i) {
      api_.delete_pod(owned[i].name);
    }
  }
}

// ---- EndpointsController -------------------------------------------------

EndpointsController::EndpointsController(ApiServer& api) : api_(api) {
  api_.watch_pods([this](EventType, const Pod&) { refresh_all(); });
}

void EndpointsController::refresh_all() {
  // set_endpoints touches only the endpoints store, so visiting services
  // and pods in place is safe (no copies of either list).
  api_.for_each_service([&](const Service& svc) {
    Endpoints eps;
    eps.service_name = svc.name;
    api_.for_each_pod(svc.selector, [&](const Pod& pod) {
      if (pod.ready && pod.phase == PodPhase::kRunning) {
        eps.ready.push_back(Endpoint{pod.name, pod.host_net_id, pod.port});
      }
    });
    api_.set_endpoints(std::move(eps));
  });
}

}  // namespace sf::k8s
