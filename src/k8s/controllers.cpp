#include "k8s/controllers.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

namespace sf::k8s {

// ---- DeploymentController ----------------------------------------------

DeploymentController::DeploymentController(ApiServer& api,
                                           double restart_backoff_s)
    : api_(api),
      restart_backoff_(fault::RetryPolicy::constant(restart_backoff_s)) {
  api_.watch_deployments([this](EventType type, const Deployment& dep) {
    if (type == EventType::kDeleted) {
      // Remove every pod the deployment owned, via the owner index —
      // O(owned), not a full-store scan. Collect names first (delete_pod
      // mutates the store mid-visit otherwise) and sort them: the old
      // full scan visited pods in name order, and deletion order is
      // observable through the watch stream.
      std::vector<std::string> owned;
      api_.for_each_pod_owned_by(dep.name, [&](const Pod& pod) {
        ++reconcile_probes_;
        owned.push_back(pod.name);
      });
      std::sort(owned.begin(), owned.end());
      for (const auto& name : owned) api_.delete_pod(name);
      auto idx = next_index_.find(dep.name);
      if (idx != next_index_.end()) {
        indices_retired_ += static_cast<std::uint64_t>(idx->second);
        next_index_.erase(idx);
      }
      backoff_hold_.erase(dep.name);
      return;
    }
    reconcile(dep.name);
  });
  api_.watch_pods([this](EventType type, const Pod& pod) {
    if (pod.owner.empty()) return;
    if (type == EventType::kDeleted) {
      reconcile(pod.owner);
    } else if (type == EventType::kModified &&
               pod.phase == PodPhase::kFailed) {
      // Replace crashed pods after a backoff (crash-loop protection).
      // While the backoff is armed, reconciles for this deployment are
      // held: the delete below produces a kDeleted watch event whose
      // immediate reconcile would otherwise create the replacement with
      // no pacing at all.
      ++backoff_hold_[pod.owner];
      ++pods_replaced_;
      api_.delete_pod(pod.name);
      api_.sim().call_in(restart_backoff_.backoff_s(0),
                         [this, owner = pod.owner] {
        auto it = backoff_hold_.find(owner);
        if (it != backoff_hold_.end() && --it->second <= 0) {
          backoff_hold_.erase(it);
        }
        reconcile(owner);
      });
    }
  });
}

void DeploymentController::check_invariants() const {
#ifndef NDEBUG
  std::uint64_t issued = indices_retired_;
  for (const auto& [name, idx] : next_index_) {
    issued += static_cast<std::uint64_t>(idx);
  }
  // Every pod ever created consumed exactly one name index and vice versa;
  // drift here means a creation or replacement path double-counted.
  assert(issued == pods_created_);
#endif
}

void DeploymentController::reconcile(const std::string& deployment_name) {
  const Deployment* dep = api_.get_deployment(deployment_name);
  if (dep == nullptr) return;
  // Failure backoff armed: all reconciles wait for it (pacing). The
  // backoff event itself reconciles once the hold clears.
  if (backoff_hold_.contains(deployment_name)) return;

  // Live pods this deployment owns, from the owner index — the
  // dirty-marking shape the endpoints controller uses: a reconcile
  // touches only this deployment's pods, never the whole store. Only the
  // name (for deletes) and uid (for the keep-newest ordering) matter — no
  // Pod copies. Visitation order is unspecified, which is fine: scale-up
  // uses only the count, scale-down totally orders by (unique) uid.
  struct Owned {
    std::string name;
    Uid uid;
  };
  std::vector<Owned> owned;
  api_.for_each_pod_owned_by(dep->name, [&](const Pod& pod) {
    ++reconcile_probes_;
    if (pod.phase != PodPhase::kTerminating &&
        pod.phase != PodPhase::kFailed) {
      owned.push_back(Owned{pod.name, pod.uid});
    }
  });
  const int live = static_cast<int>(owned.size());

  if (live < dep->replicas) {
    for (int i = live; i < dep->replicas; ++i) {
      Pod pod;
      pod.name = dep->name + "-" + std::to_string(next_index_[dep->name]++);
      pod.labels = dep->pod_labels;
      pod.container = dep->pod_template;
      pod.cpu_request = dep->cpu_request;
      pod.memory_request = dep->memory_request;
      pod.owner = dep->name;
      ++pods_created_;
      check_invariants();
      api_.create_pod(std::move(pod));
    }
  } else if (live > dep->replicas) {
    // Newest first (highest uid): keeps the longest-warm pods alive, which
    // is also what Knative wants for container reuse.
    std::sort(owned.begin(), owned.end(),
              [](const Owned& a, const Owned& b) { return a.uid > b.uid; });
    for (int i = 0; i < live - dep->replicas; ++i) {
      api_.delete_pod(owned[i].name);
    }
  }
}

// ---- NodeLifecycleController ---------------------------------------------

NodeLifecycleController::NodeLifecycleController(ApiServer& api,
                                                 NodeLifecycleConfig cfg)
    : api_(api), cfg_(cfg) {
  sweep();
}

void NodeLifecycleController::sweep() {
  const double now = api_.sim().now();
  // Deadline-ordered: expired leases pop off the API server's calendar
  // index (O(expired), zero per-node work when every lease is fresh) and
  // recovery candidates come off the recovery-pending list (O(not-ready)).
  // Both lists are collected before any transition is applied — the same
  // snapshot semantics the old full rescan had — and sorted by name so
  // transitions (and their traces/watch events) replay the old name-order
  // visitation bit for bit.
  std::vector<std::string> expired;
  std::vector<std::string> recovered;
  sweep_probes_ +=
      api_.collect_expired_leases(now, cfg_.lease_duration_s, expired);
  sweep_probes_ +=
      api_.collect_lease_recovery_candidates(now, cfg_.lease_duration_s,
                                             recovered);
  std::sort(expired.begin(), expired.end());
  std::sort(recovered.begin(), recovered.end());
  for (const auto& name : expired) {
    ++not_ready_transitions_;
    api_.set_node_ready(name, false);
    evict_pods(name);
  }
  for (const auto& name : recovered) {
    api_.set_node_ready(name, true);
  }
  api_.sim().call_in(cfg_.sweep_interval_s, [this] { sweep(); });
}

void NodeLifecycleController::evict_pods(const std::string& node_name) {
  struct Victim {
    std::string name;
    bool terminating;
  };
  std::vector<Victim> victims;
  // Only this node's pods, via the per-node posting list. Sorted by name
  // afterwards: eviction order is observable (traces, watch events,
  // replacement scheduling), and the old full scan evicted in name order.
  api_.for_each_pod_on_node(node_name, [&](const Pod& pod) {
    ++eviction_probes_;
    if (pod.phase == PodPhase::kScheduled || pod.phase == PodPhase::kRunning) {
      victims.push_back({pod.name, false});
    } else if (pod.phase == PodPhase::kTerminating) {
      // Its kubelet died mid-deletion; nobody will confirm. Force-finalize
      // like `kubectl delete --force` after node loss.
      victims.push_back({pod.name, true});
    }
  });
  std::sort(victims.begin(), victims.end(),
            [](const Victim& a, const Victim& b) { return a.name < b.name; });
  for (const auto& v : victims) {
    ++evictions_;
    api_.sim().trace().record(api_.sim().now(), "k8s", "evict",
                              {{"pod", v.name}, {"node", node_name}});
    if (v.terminating) {
      api_.finalize_pod_deletion(v.name);
    } else {
      api_.mutate_pod(v.name, [](Pod& p) {
        p.phase = PodPhase::kFailed;
        p.ready = false;
      });
    }
  }
}

// ---- EndpointsController -------------------------------------------------

EndpointsController::EndpointsController(ApiServer& api) : api_(api) {
  api_.watch_pods(
      [this](EventType, const Pod& pod) { refresh_matching(pod); });
}

void EndpointsController::refresh_matching(const Pod& pod) {
  // Only services selecting this pod's labels can have changed; the label
  // match is a cheap map scan, the pod-list rebuild is the expensive part
  // we now skip for everyone else.
  api_.for_each_service([&](const Service& svc) {
    if (!selector_matches(svc.selector, pod.labels)) return;
    rebuild(svc);
  });
}

void EndpointsController::rebuild(const Service& svc) {
  // set_endpoints touches only the endpoints store, so visiting services
  // and pods in place is safe (no copies of either list).
  ++refreshes_;
  Endpoints eps;
  eps.service_name = svc.name;
  api_.for_each_pod(svc.selector, [&](const Pod& pod) {
    if (pod.ready && pod.phase == PodPhase::kRunning) {
      eps.ready.push_back(Endpoint{pod.name, pod.host_net_id, pod.port});
    }
  });
  api_.set_endpoints(std::move(eps));
}

}  // namespace sf::k8s
