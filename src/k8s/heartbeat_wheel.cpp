#include "k8s/heartbeat_wheel.hpp"

#include "k8s/kubelet.hpp"

namespace sf::k8s {

std::uint32_t HeartbeatWheel::add(Kubelet& kubelet) {
  const std::uint32_t m = static_cast<std::uint32_t>(members_.size());
  members_.push_back(Member{&kubelet, &kubelet.connectivity_probe(),
                            api_.node_slot(kubelet.node_name()), tail_, kNone,
                            true});
  if (tail_ == kNone) {
    head_ = m;
  } else {
    members_[tail_].next = m;
  }
  tail_ = m;
  ++live_count_;
  if (kubelet.heartbeat_alive()) {
    api_.renew_node_lease_slot(members_[m].node_slot);
  }
  return m;
}

void HeartbeatWheel::remove(std::uint32_t member) {
  Member& mem = members_[member];
  if (!mem.live) return;
  if (mem.prev == kNone) {
    head_ = mem.next;
  } else {
    members_[mem.prev].next = mem.next;
  }
  if (mem.next == kNone) {
    tail_ = mem.prev;
  } else {
    members_[mem.next].prev = mem.prev;
  }
  mem.prev = mem.next = kNone;
  mem.live = false;
  --live_count_;
}

void HeartbeatWheel::restore(std::uint32_t member) {
  Member& mem = members_[member];
  if (mem.live) return;
  mem.prev = tail_;
  mem.next = kNone;
  if (tail_ == kNone) {
    head_ = member;
  } else {
    members_[tail_].next = member;
  }
  tail_ = member;
  mem.live = true;
  ++live_count_;
}

void HeartbeatWheel::start(double interval_s) {
  if (started_) return;
  started_ = true;
  interval_ = interval_s;
  api_.sim().call_in(interval_, [this] { tick(); });
}

void HeartbeatWheel::tick() {
  // Live members are up by construction (remove()/restore() track node
  // crash/reboot), so the connectivity probe is the only gate evaluated
  // here. Reading the cached probe pointer touches one kubelet cache line
  // per member — the difference between 5x and 4x at 10k nodes.
  for (std::uint32_t m = head_; m != kNone; m = members_[m].next) {
    const Member& mem = members_[m];
    const std::function<bool()>& reachable = *mem.probe;
    if (!reachable || reachable()) {
      api_.renew_node_lease_slot(mem.node_slot);
    }
  }
  api_.sim().call_in(interval_, [this] { tick(); });
}

}  // namespace sf::k8s
