#pragma once

#include <any>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "knative/serving.hpp"

namespace sf::knative {

/// A CloudEvent: typed, sourced, with filterable extension attributes and
/// an opaque payload whose wire size drives transfer cost.
struct CloudEvent {
  std::string type;    ///< e.g. "dev.serverflow.task.done"
  std::string source;  ///< producing component URI
  std::map<std::string, std::string> extensions;
  std::any data;
  double data_bytes = 0;
};

/// Knative Eventing broker: receives CloudEvents on its ingress and fans
/// them out to every matching Trigger's subscriber service, with
/// per-delivery retry and a dead-letter queue — the "Eventing" half of
/// the platform the paper's background section describes, and the
/// substrate for event-driven (dynamic) workflow orchestration.
class Broker {
 public:
  static constexpr net::Port kIngressPort = 8081;

  Broker(KnativeServing& serving, cluster::Node& host,
         std::string name = "default");

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] net::NodeId ingress_net_id() const;

  /// Subscribes `service` to events of `event_type` (empty = all types)
  /// whose extensions contain every entry of `extension_filter`.
  void add_trigger(const std::string& trigger_name,
                   const std::string& event_type,
                   const std::string& service,
                   std::map<std::string, std::string> extension_filter = {});

  bool remove_trigger(const std::string& trigger_name);
  [[nodiscard]] std::size_t trigger_count() const { return triggers_.size(); }

  /// Publishes an event from `from`; `on_done(delivered_all)` fires after
  /// every matching trigger either succeeded or exhausted its retries
  /// (immediately with true when nothing matches).
  void publish(net::NodeId from, CloudEvent event,
               std::function<void(bool delivered_all)> on_done = {});

  /// Deliveries that exhausted retries, kept for inspection/replay.
  [[nodiscard]] const std::deque<CloudEvent>& dead_letters() const {
    return dead_letters_;
  }

  [[nodiscard]] std::uint64_t events_received() const {
    return events_received_;
  }
  [[nodiscard]] std::uint64_t deliveries() const { return deliveries_; }
  [[nodiscard]] std::uint64_t failed_deliveries() const {
    return failed_deliveries_;
  }

  void set_retry_limit(int retries) { retry_limit_ = retries; }
  void set_retry_backoff(double seconds) { retry_backoff_ = seconds; }

 private:
  struct Trigger {
    std::string event_type;  // "" = match all
    std::string service;
    std::map<std::string, std::string> extension_filter;
  };

  [[nodiscard]] bool matches(const Trigger& trigger,
                             const CloudEvent& event) const;
  void deliver(Trigger trigger, const CloudEvent& event, int attempt,
               std::function<void(bool)> on_done);
  void fanout(const CloudEvent& event,
              std::function<void(bool)> on_done);

  KnativeServing& serving_;
  cluster::Node& host_;
  std::string name_;
  std::map<std::string, Trigger> triggers_;
  std::deque<CloudEvent> dead_letters_;
  int retry_limit_ = 3;
  double retry_backoff_ = 0.2;
  std::uint64_t events_received_ = 0;
  std::uint64_t deliveries_ = 0;
  std::uint64_t failed_deliveries_ = 0;
};

/// Extracts the CloudEvent a Broker delivered inside an HTTP request
/// (throws std::bad_any_cast when the request is not an event delivery).
const CloudEvent& event_from_request(const net::HttpRequest& req);

}  // namespace sf::knative
