#include "knative/serving.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "fault/retry.hpp"

namespace sf::knative {

namespace {
constexpr int kMaxRouteAttempts = 3;
/// Admission (429) retries: 50 ms doubling, uncapped within the route
/// attempt budget, ±50% engine-RNG jitter to spread synchronized bursts.
constexpr fault::RetryPolicy kAdmitRetry{
    /*max_attempts=*/kMaxRouteAttempts, /*base_s=*/0.05,
    /*cap_s=*/fault::RetryPolicy::kNoCap, /*multiplier=*/2.0,
    /*jitter_ratio=*/0.5};
/// In-flight (connection-refused / 503 / 504) retries: fixed 50 ms —
/// the backend set has already changed, nothing to spread.
constexpr fault::RetryPolicy kRouteRetry = fault::RetryPolicy::constant(0.05);
const std::string kRevisionLabel = "serving.knative.dev/revision";
}  // namespace

KnativeServing::KnativeServing(k8s::KubeCluster& kube, cluster::Node& gateway)
    : kube_(kube), gateway_(gateway) {
  // Ingress gateway: route by Host header.
  kube_.cluster().http().listen(
      gateway_.net_id(), kGatewayPort,
      [this](const net::HttpRequest& req, net::Responder respond) {
        auto it = req.headers.find("Host");
        if (it == req.headers.end() || !revisions_.contains(it->second)) {
          net::HttpResponse resp;
          resp.status = 404;
          respond(std::move(resp));
          return;
        }
        route(it->second, req, std::move(respond), /*attempt=*/1);
      });

  kube_.api().watch_pods([this](k8s::EventType type, const k8s::Pod& pod) {
    on_pod_event(type, pod);
  });

  // Endpoint events drive two things: flushing the activator buffer when
  // the active revision gains ready pods, and completing a rollout when
  // the pending revision does.
  kube_.api().watch_endpoints(
      [this](k8s::EventType, const k8s::Endpoints& eps) {
        auto svc_it = revision_to_service_.find(eps.service_name);
        if (svc_it == revision_to_service_.end() || eps.ready.empty()) {
          return;
        }
        auto it = revisions_.find(svc_it->second);
        if (it == revisions_.end()) return;
        Revision& rev = it->second;
        if (eps.service_name == rev.pending_rev &&
            rev.canary_fraction < 0) {
          finalize_rollout(rev);  // automatic blue/green switch
        }
        if (eps.service_name == rev.rev_name) {
          flush_activator(rev);
        }
      });
}

namespace {

KpaScaler::Config kpa_config_from(const Annotations& a) {
  KpaScaler::Config config;
  config.target_concurrency = a.target_concurrency;
  config.min_scale = a.min_scale;
  config.max_scale = a.max_scale;
  config.stable_window_s = a.stable_window_s;
  config.panic_window_s = a.panic_window_s;
  config.scale_to_zero_grace_s = a.scale_to_zero_grace_s;
  return config;
}

int initial_replicas(const Annotations& a) {
  return a.initial_scale >= 0 ? std::max(a.initial_scale, a.min_scale)
                              : std::max(1, a.min_scale);
}

}  // namespace

std::string KnativeServing::revision_name(const std::string& service,
                                          int generation) {
  char suffix[8];
  std::snprintf(suffix, sizeof(suffix), "-%05d", generation);
  return service + suffix;
}

void KnativeServing::deploy_revision(const std::string& service,
                                     const std::string& rev_name,
                                     const KnServiceSpec& spec,
                                     int replicas) {
  k8s::Deployment dep;
  dep.name = rev_name + "-deployment";
  dep.selector = {{kRevisionLabel, rev_name}};
  dep.pod_labels = {{kRevisionLabel, rev_name}};
  dep.pod_template = spec.container;
  dep.cpu_request = spec.cpu_request;
  dep.memory_request = spec.container.memory_bytes;
  dep.replicas = replicas;

  k8s::Service svc;
  svc.name = rev_name;  // per-revision endpoints
  svc.selector = {{kRevisionLabel, rev_name}};

  revision_to_service_[rev_name] = service;
  kube_.api().create_service(std::move(svc));
  kube_.api().apply_deployment(std::move(dep));
}

void KnativeServing::create_service(KnServiceSpec spec) {
  if (revisions_.contains(spec.name)) {
    throw std::invalid_argument("KnativeServing: service exists: " +
                                spec.name);
  }
  Revision rev;
  rev.spec = spec;
  rev.generation = 1;
  rev.rev_name = revision_name(spec.name, 1);
  rev.deployment_name = rev.rev_name + "-deployment";
  rev.kpa = KpaScaler(kpa_config_from(spec.annotations));
  rev.current_desired = initial_replicas(spec.annotations);

  const int initial = rev.current_desired;
  const std::string rev_name = rev.rev_name;
  auto [it, _] = revisions_.emplace(spec.name, std::move(rev));
  configure_resilience(it->second);
  deploy_revision(spec.name, rev_name, spec, initial);
  ensure_ticking(spec.name);
}

void KnativeServing::configure_resilience(Revision& rev) {
  const Annotations& a = rev.spec.annotations;
  rev.detector = a.outlier.enabled
                     ? std::make_unique<OutlierDetector>(a.outlier)
                     : nullptr;
  rev.admission = TokenBucket{};
  if (a.admission.fill_rate_hz > 0) {
    rev.admission.configure(a.admission, kube_.cluster().sim().now());
  }
}

void KnativeServing::update_service(KnServiceSpec spec) {
  start_rollout(std::move(spec), /*canary_fraction=*/-1);
}

void KnativeServing::update_service_canary(KnServiceSpec spec,
                                           double fraction) {
  if (fraction < 0 || fraction > 1) {
    throw std::invalid_argument(
        "KnativeServing: canary fraction must be in [0, 1]");
  }
  start_rollout(std::move(spec), fraction);
}

void KnativeServing::start_rollout(KnServiceSpec spec,
                                   double canary_fraction) {
  auto it = revisions_.find(spec.name);
  if (it == revisions_.end()) {
    throw std::invalid_argument("KnativeServing: unknown service: " +
                                spec.name);
  }
  Revision& rev = it->second;
  if (!rev.pending_rev.empty()) {
    throw std::logic_error("KnativeServing: rollout already in flight for " +
                           spec.name);
  }
  rev.pending_rev = revision_name(spec.name, rev.generation + 1);
  rev.pending_deployment = rev.pending_rev + "-deployment";
  rev.pending_spec = spec;
  rev.canary_fraction = canary_fraction;
  // The new revision warms at least one pod before taking traffic, unless
  // the service allows scale-to-zero with nothing warm.
  const int initial = std::max(initial_replicas(spec.annotations),
                               spec.annotations.min_scale > 0 ? 1 : 0);
  kube_.cluster().sim().trace().record(
      kube_.cluster().sim().now(), "knative", "rollout_start",
      {{"service", spec.name}, {"revision", rev.pending_rev}});
  deploy_revision(spec.name, rev.pending_rev, spec, std::max(initial, 1));
  // With min-scale 0 the pending revision still brings up one pod to
  // validate, then the autoscaler may take it to zero after the switch.
}

void KnativeServing::finalize_rollout(Revision& rev) {
  if (rev.pending_rev.empty()) return;
  const std::string old_deployment = rev.deployment_name;
  const std::string old_rev = rev.rev_name;
  kube_.cluster().sim().trace().record(
      kube_.cluster().sim().now(), "knative", "rollout_switch",
      {{"service", rev.spec.name}, {"revision", rev.pending_rev}});
  rev.rev_name = rev.pending_rev;
  rev.deployment_name = rev.pending_deployment;
  rev.spec = rev.pending_spec;
  ++rev.generation;
  rev.kpa = KpaScaler(kpa_config_from(rev.spec.annotations));
  const k8s::Deployment* dep = kube_.api().get_deployment(rev.deployment_name);
  rev.current_desired = dep == nullptr ? 1 : dep->replicas;
  rev.pending_rev.clear();
  rev.pending_deployment.clear();
  rev.canary_fraction = -1;
  // The new revision gets a fresh detector/bucket: ejection history of
  // the old backend set must not leak across the switch.
  configure_resilience(rev);
  // Old revision drains: deleting its deployment terminates the pods,
  // whose pre-stop hooks let in-flight requests finish. Its per-revision
  // k8s service goes with it.
  kube_.api().delete_deployment(old_deployment);
  kube_.api().delete_service(old_rev);
  flush_activator(rev);
  ensure_ticking(rev.spec.name);
}

std::string KnativeServing::active_revision(
    const std::string& service) const {
  auto it = revisions_.find(service);
  return it == revisions_.end() ? std::string{} : it->second.rev_name;
}

void KnativeServing::delete_service(const std::string& name) {
  auto it = revisions_.find(name);
  if (it == revisions_.end()) return;
  Revision& rev = it->second;
  rev.deleted = true;
  for (auto& [req, respond] : rev.activator) {
    net::HttpResponse resp;
    resp.status = net::kStatusServiceUnavailable;
    respond(std::move(resp));
  }
  rev.activator.clear();
  retire_proxies(rev);
  kube_.api().delete_deployment(rev.deployment_name);
  kube_.api().delete_service(rev.rev_name);
  if (!rev.pending_deployment.empty()) {
    kube_.api().delete_deployment(rev.pending_deployment);
    kube_.api().delete_service(rev.pending_rev);
    revision_to_service_.erase(rev.pending_rev);
  }
  revision_to_service_.erase(rev.rev_name);
  revisions_.erase(it);
}

void KnativeServing::retire_proxies(Revision& rev) {
  for (auto& [pod_name, proxy] : rev.proxies) {
    QueueProxy* raw = proxy.get();
    retiring_.push_back(std::move(proxy));
    raw->drain([this, raw] {
      // Defer: drain can complete from inside a proxy member frame, and
      // a proxy must not be destroyed under its own feet.
      kube_.cluster().sim().call_in(0, [this, raw] {
        std::erase_if(retiring_,
                      [raw](const std::unique_ptr<QueueProxy>& p) {
                        return p.get() == raw;
                      });
      });
    });
  }
  rev.proxies.clear();
}

void KnativeServing::invoke(net::NodeId client, const std::string& service,
                            net::HttpRequest req,
                            std::function<void(net::HttpResponse)> on_response) {
  req.headers["Host"] = service;
  kube_.cluster().http().request(client, gateway_.net_id(), kGatewayPort,
                                 std::move(req), std::move(on_response));
}

// ---- Routing -----------------------------------------------------------

void KnativeServing::route(const std::string& service,
                           const net::HttpRequest& req, net::Responder respond,
                           int attempt) {
  auto it = revisions_.find(service);
  if (it == revisions_.end()) {
    net::HttpResponse resp;
    resp.status = 404;
    respond(std::move(resp));
    return;
  }
  Revision& rev = it->second;
  if (attempt == 1) ++rev.requests;
  // Admission control sits in front of BOTH the endpoint path and the
  // activator buffer: under overload the router answers fast instead of
  // queueing unboundedly.
  if (!admit(rev, service, req, respond, attempt)) return;

  const k8s::Endpoints* eps = kube_.api().get_endpoints(rev.rev_name);
  if (eps == nullptr || eps->ready.empty()) {
    // Activator path: buffer, count the cold start, poke the autoscaler.
    ++rev.cold_starts;
    rev.activator.emplace_back(req, std::move(respond));
    kube_.cluster().sim().trace().record(
        kube_.cluster().sim().now(), "knative", "activator_buffer",
        {{"service", service}});
    if (rev.current_desired == 0) {
      apply_scale(rev, rev.kpa.scale_from_zero_target());
    }
    ensure_ticking(service);
    return;
  }
  // Canary split: a fraction of requests goes to the pending revision
  // once it has ready pods.
  if (!rev.pending_rev.empty() && rev.canary_fraction > 0) {
    const k8s::Endpoints* canary_eps =
        kube_.api().get_endpoints(rev.pending_rev);
    if (canary_eps != nullptr && !canary_eps->ready.empty() &&
        kube_.cluster().sim().rng().chance(rev.canary_fraction)) {
      const k8s::Endpoint& ep = pick_endpoint(rev, *canary_eps);
      ensure_ticking(service);
      forward(service, ep, req, std::move(respond), attempt);
      return;
    }
  }
  const k8s::Endpoint& ep = pick_endpoint(rev, *eps);
  ensure_ticking(service);
  forward(service, ep, req, std::move(respond), attempt);
}

bool KnativeServing::admit(Revision& rev, const std::string& service,
                           const net::HttpRequest& req,
                           net::Responder& respond, int attempt) {
  if (!rev.admission.enabled()) return true;
  auto& sim = kube_.cluster().sim();
  if (rev.admission.try_take(sim.now())) return true;
  ++rev.admission_rejections;
  ++rev.failures.rejected;
  if (attempt < kMaxRouteAttempts) {
    // Retry after a jittered exponential backoff — the jitter draws from
    // the simulation RNG, so it spreads retries without breaking
    // seed-purity (and is drawn only when admission is enabled).
    ++rev.retries;
    ++rev.retries_by_revision[rev.rev_name];
    const double backoff = kAdmitRetry.backoff_jittered(attempt, sim.rng());
    sim.call_in(backoff, [this, service, req, respond = std::move(respond),
                          attempt]() mutable {
      route(service, req, std::move(respond), attempt + 1);
    });
    return false;
  }
  net::HttpResponse resp;
  resp.status = net::kStatusTooManyRequests;
  resp.headers[net::kReasonHeader] = "rejected";
  respond(std::move(resp));
  return false;
}

void KnativeServing::promote_canary(const std::string& service) {
  auto it = revisions_.find(service);
  if (it == revisions_.end() || it->second.pending_rev.empty()) {
    throw std::logic_error("KnativeServing: no canary to promote for " +
                           service);
  }
  finalize_rollout(it->second);
}

void KnativeServing::rollback_canary(const std::string& service) {
  auto it = revisions_.find(service);
  if (it == revisions_.end() || it->second.pending_rev.empty()) {
    throw std::logic_error("KnativeServing: no canary to roll back for " +
                           service);
  }
  Revision& rev = it->second;
  kube_.cluster().sim().trace().record(
      kube_.cluster().sim().now(), "knative", "rollout_rollback",
      {{"service", service}, {"revision", rev.pending_rev}});
  kube_.api().delete_deployment(rev.pending_deployment);
  kube_.api().delete_service(rev.pending_rev);
  // The rolled-back revision number is burned (Knative never reuses one).
  ++rev.generation;
  rev.pending_rev.clear();
  rev.pending_deployment.clear();
  rev.canary_fraction = -1;
}

double KnativeServing::canary_fraction(const std::string& service) const {
  auto it = revisions_.find(service);
  if (it == revisions_.end() || it->second.pending_rev.empty()) return 0;
  return std::max(0.0, it->second.canary_fraction);
}

const k8s::Endpoint& KnativeServing::pick_endpoint(Revision& rev,
                                                   const k8s::Endpoints& eps) {
  OutlierDetector* det = rev.detector.get();
  const double now = kube_.cluster().sim().now();
  rev.last_pick_panic = false;
  if (det != nullptr) ++outlier_guarded_picks_;
  if (lb_policy_ == LoadBalancingPolicy::kLeastLoaded) {
    const k8s::Endpoint* best = nullptr;
    double best_load = 0;
    for (const auto& ep : eps.ready) {
      if (det != nullptr && det->ejected(ep.pod_name, now)) continue;
      auto it = rev.proxies.find(ep.pod_name);
      const double load = it == rev.proxies.end()
                              ? 0.0
                              : it->second->concurrency();
      if (best == nullptr || load < best_load) {
        best = &ep;
        best_load = load;
      }
    }
    if (best != nullptr) return *best;
    // Every backend ejected: fall through to panic routing below.
  }
  const std::size_t n = eps.ready.size();
  if (det != nullptr) {
    // Round-robin over non-ejected backends: scan from the cursor,
    // skipping ejected hosts, allocation-free. With no detector the k=0
    // candidate is always taken — identical to the plain cursor pick.
    for (std::size_t k = 0; k < n; ++k) {
      const k8s::Endpoint& ep = eps.ready[(rev.rr_cursor + k) % n];
      if (det->ejected(ep.pod_name, now)) continue;
      rev.rr_cursor += k + 1;
      return ep;
    }
    // Panic routing (Envoy's panic threshold, pinned at 100%): every
    // backend is ejected, so serving *something* beats failing fast —
    // route as if no detector existed rather than blackholing.
    det->note_panic_pick();
    rev.last_pick_panic = true;
  }
  const k8s::Endpoint& ep = eps.ready[rev.rr_cursor % n];
  ++rev.rr_cursor;
  return ep;
}

void KnativeServing::forward(const std::string& service,
                             const k8s::Endpoint& ep,
                             const net::HttpRequest& req,
                             net::Responder respond, int attempt) {
  double route_timeout = 0;
  const double t0 = kube_.cluster().sim().now();
  if (auto it = revisions_.find(service); it != revisions_.end()) {
    Revision& rev = it->second;
    route_timeout = rev.spec.annotations.route_timeout_s;
    // Tripwire behind the "ejected backends receive no traffic"
    // invariant: a non-panic pick must never land on an ejected host.
    if (rev.detector != nullptr && !rev.last_pick_panic &&
        rev.detector->ejected(ep.pod_name, t0)) {
      ++outlier_misrouted_;
    }
  }
  // Second network hop: gateway → pod (the payload is paid again, which is
  // exactly the ingress-proxy cost a real Knative data path has).
  if (route_timeout <= 0) {
    kube_.cluster().http().request(
        gateway_.net_id(), ep.net_id, ep.port, req,
        [this, service, pod = ep.pod_name, t0, req,
         respond = std::move(respond), attempt](net::HttpResponse resp) mutable {
          on_attempt_response(service, pod, t0, attempt, req,
                              std::move(respond), std::move(resp));
        });
    return;
  }
  // Router-side per-attempt deadline (Envoy's upstream request timeout).
  // The queue-proxy deadline stops covering a request once the handler
  // responds — if the *reply* never arrives (one-way partition, NIC
  // stall) only this timer notices: it answers 504 "unresponsive", feeds
  // the outlier detector, and retries another backend; whichever of
  // {timer, response} fires second finds the responder consumed.
  struct AttemptState {
    net::Responder respond;
    sim::EventId timer = sim::kNoEvent;
  };
  auto state = std::make_shared<AttemptState>();
  state->respond = std::move(respond);
  state->timer = kube_.cluster().sim().call_in(
      route_timeout,
      [this, service, pod = ep.pod_name, t0, req, attempt, state] {
        if (!state->respond) return;
        auto answer = std::move(state->respond);
        state->respond = nullptr;
        net::HttpResponse resp;
        resp.status = net::kStatusGatewayTimeout;
        resp.headers[net::kReasonHeader] = "unresponsive";
        on_attempt_response(service, pod, t0, attempt, req,
                            std::move(answer), std::move(resp));
      });
  kube_.cluster().http().request(
      gateway_.net_id(), ep.net_id, ep.port, req,
      [this, service, pod = ep.pod_name, t0, req, attempt,
       state](net::HttpResponse resp) {
        if (!state->respond) return;  // deadline already answered; discard
        kube_.cluster().sim().cancel(state->timer);
        auto answer = std::move(state->respond);
        state->respond = nullptr;
        on_attempt_response(service, pod, t0, attempt, req,
                            std::move(answer), std::move(resp));
      });
}

void KnativeServing::on_attempt_response(const std::string& service,
                                         const std::string& pod,
                                         double started_at, int attempt,
                                         const net::HttpRequest& req,
                                         net::Responder respond,
                                         net::HttpResponse resp) {
  auto it = revisions_.find(service);
  if (it == revisions_.end()) {
    respond(std::move(resp));
    return;
  }
  Revision& rev = it->second;
  const double now = kube_.cluster().sim().now();
  if (rev.detector != nullptr) {
    const std::uint64_t before = rev.detector->total_ejections();
    rev.detector->on_response(pod, resp.status, now - started_at, now);
    if (rev.detector->total_ejections() != before) {
      kube_.cluster().sim().trace().record(
          now, "knative", "outlier_eject",
          {{"service", service}, {"pod", pod}});
    }
  }
  if (resp.status >= 500) {
    // Machine-readable failure taxonomy: reason tag first, status as the
    // fallback (502s are refused connections — no one tagged them).
    const auto reason = resp.headers.find(net::kReasonHeader);
    if (reason != resp.headers.end() && reason->second == "unresponsive") {
      ++rev.failures.unresponsive;
    } else if (resp.status == net::kStatusGatewayTimeout) {
      ++rev.failures.timeout;
    } else if (resp.status == net::kStatusServiceUnavailable) {
      ++rev.failures.draining;
    } else if (resp.status == net::kStatusConnectionRefused) {
      ++rev.failures.backend_down;
    }
  }
  const bool retryable = resp.status == net::kStatusConnectionRefused ||
                         resp.status == net::kStatusServiceUnavailable ||
                         resp.status == net::kStatusGatewayTimeout;
  if (retryable && attempt < kMaxRouteAttempts) {
    // Endpoint vanished mid-flight (drain/scale-down), the queue-proxy
    // timed the request out, or the reply never arrived; retry — at zero
    // scale the route lands in the activator and waits for a cold start.
    ++rev.retries;
    ++rev.retries_by_revision[rev.rev_name];
    kube_.cluster().sim().call_in(
        kRouteRetry.backoff_s(attempt),
        [this, service, req, respond = std::move(respond),
         attempt]() mutable {
          route(service, req, std::move(respond), attempt + 1);
        });
    return;
  }
  respond(std::move(resp));
}

void KnativeServing::flush_activator(Revision& rev) {
  while (!rev.activator.empty()) {
    const k8s::Endpoints* eps = kube_.api().get_endpoints(rev.rev_name);
    if (eps == nullptr || eps->ready.empty()) return;
    auto [req, respond] = std::move(rev.activator.front());
    rev.activator.pop_front();
    const k8s::Endpoint ep = pick_endpoint(rev, *eps);
    forward(rev.spec.name, ep, req, std::move(respond), /*attempt=*/1);
  }
}

// ---- Autoscaling --------------------------------------------------------

double KnativeServing::scrape(const Revision& rev) const {
  double total = static_cast<double>(rev.activator.size());
  for (const auto& [pod, proxy] : rev.proxies) total += proxy->concurrency();
  return total;
}

void KnativeServing::apply_scale(Revision& rev, int desired) {
  if (desired == rev.current_desired) return;
  kube_.cluster().sim().trace().record(
      kube_.cluster().sim().now(), "knative", "scale",
      {{"service", rev.spec.name},
       {"from", std::to_string(rev.current_desired)},
       {"to", std::to_string(desired)}});
  rev.current_desired = desired;
  kube_.api().set_deployment_replicas(rev.deployment_name, desired);
}

void KnativeServing::ensure_ticking(const std::string& service) {
  auto it = revisions_.find(service);
  if (it == revisions_.end() || it->second.ticking || it->second.deleted) {
    return;
  }
  it->second.ticking = true;
  kube_.cluster().sim().call_in(it->second.spec.annotations.tick_s,
                                [this, service] { tick(service); });
}

void KnativeServing::tick(const std::string& service) {
  auto it = revisions_.find(service);
  if (it == revisions_.end()) return;
  Revision& rev = it->second;
  rev.ticking = false;
  if (rev.deleted) return;
  const double conc = scrape(rev);
  const auto decision = rev.kpa.observe(kube_.cluster().sim().now(), conc,
                                        rev.current_desired);
  apply_scale(rev, decision.desired);
  if (decision.work_pending) ensure_ticking(service);
}

// ---- Pod lifecycle -------------------------------------------------------

void KnativeServing::on_pod_event(k8s::EventType type, const k8s::Pod& pod) {
  auto lbl = pod.labels.find(kRevisionLabel);
  if (lbl == pod.labels.end()) return;
  auto svc_it = revision_to_service_.find(lbl->second);
  if (svc_it == revision_to_service_.end()) return;
  auto rev_it = revisions_.find(svc_it->second);
  if (rev_it == revisions_.end()) return;
  Revision& rev = rev_it->second;

  switch (type) {
    case k8s::EventType::kAdded:
      break;
    case k8s::EventType::kModified:
      if (pod.ready && pod.phase == k8s::PodPhase::kRunning &&
          !rev.proxies.contains(pod.name)) {
        attach_proxy(rev, pod);
      }
      break;
    case k8s::EventType::kDeleted:
      rev.proxies.erase(pod.name);
      if (rev.detector != nullptr) rev.detector->remove_host(pod.name);
      break;
  }
}

void KnativeServing::attach_proxy(Revision& rev, const k8s::Pod& pod) {
  FunctionContext ctx;
  ctx.sim = &kube_.cluster().sim();
  ctx.node = pod.host_net_id;
  ctx.pod_name = pod.name;
  ctx.exec = [this, pod_name = pod.name](double work,
                                         std::function<void(bool)> done) {
    kube_.exec_in_pod(pod_name, work, std::move(done));
  };

  // During a rollout, pods of the pending revision serve its (new) spec.
  auto lbl = pod.labels.find(kRevisionLabel);
  const bool is_pending = lbl != pod.labels.end() &&
                          !rev.pending_rev.empty() &&
                          lbl->second == rev.pending_rev;
  const KnServiceSpec& pod_spec = is_pending ? rev.pending_spec : rev.spec;

  auto proxy = std::make_unique<QueueProxy>(
      kube_.cluster().sim(), kube_.cluster().http(), std::move(ctx),
      pod_spec.handler, pod_spec.annotations.container_concurrency,
      pod_spec.annotations.request_timeout_s);
  proxy->install(pod.port);
  rev.proxies.emplace(pod.name, std::move(proxy));
  // Per-(revision, pod, node) request stats, recorded by the queue-proxy
  // into the serving-owned flat store. Only wired for services with a
  // resilience feature on — everyone else pays literally nothing.
  const Annotations& ann = pod_spec.annotations;
  if (ann.outlier.enabled || ann.admission.fill_rate_hz > 0 ||
      ann.route_timeout_s > 0) {
    auto& ids = kube_.cluster().sim().ids();
    const std::string rev_name = is_pending ? rev.pending_rev : rev.rev_name;
    const sim::ObjectId scope = ids.intern(
        rev_name + "/" + pod.name + "@" + std::to_string(pod.host_net_id));
    ProxyStatsSink sink;
    sink.store = &stats_;
    sink.latency = stats_.histogram(scope, ids.intern("latency"));
    sink.ok = stats_.counter(scope, ids.intern("ok"));
    sink.err = stats_.counter(scope, ids.intern("5xx"));
    sink.timeout = stats_.counter(scope, ids.intern("timeout"));
    rev.proxies.at(pod.name)->set_stats(sink);
  }

  // Graceful drain before the kubelet tears the pod down.
  const std::string service = rev.spec.name;
  kube_.api().mutate_pod(pod.name, [this, service,
                                    pod_name = pod.name](k8s::Pod& p) {
    p.pre_stop = [this, service, pod_name](std::function<void()> done) {
      auto it = revisions_.find(service);
      if (it == revisions_.end() ||
          !it->second.proxies.contains(pod_name)) {
        done();
        return;
      }
      it->second.proxies.at(pod_name)->drain(std::move(done));
    };
  });
}

// ---- Introspection -------------------------------------------------------

int KnativeServing::ready_replicas(const std::string& service) const {
  auto it = revisions_.find(service);
  if (it == revisions_.end()) return 0;
  const k8s::Endpoints* eps = kube_.api().get_endpoints(it->second.rev_name);
  return eps == nullptr ? 0 : static_cast<int>(eps->ready.size());
}

int KnativeServing::desired_replicas(const std::string& service) const {
  auto it = revisions_.find(service);
  return it == revisions_.end() ? 0 : it->second.current_desired;
}

double KnativeServing::observed_concurrency(
    const std::string& service) const {
  auto it = revisions_.find(service);
  return it == revisions_.end() ? 0 : scrape(it->second);
}

std::uint64_t KnativeServing::cold_start_requests(
    const std::string& service) const {
  auto it = revisions_.find(service);
  return it == revisions_.end() ? 0 : it->second.cold_starts;
}

std::uint64_t KnativeServing::requests_routed(
    const std::string& service) const {
  auto it = revisions_.find(service);
  return it == revisions_.end() ? 0 : it->second.requests;
}

std::vector<std::string> KnativeServing::service_names() const {
  std::vector<std::string> out;
  out.reserve(revisions_.size());
  for (const auto& [name, rev] : revisions_) {
    if (!rev.deleted) out.push_back(name);
  }
  return out;
}

const Annotations* KnativeServing::service_annotations(
    const std::string& service) const {
  auto it = revisions_.find(service);
  return it == revisions_.end() ? nullptr : &it->second.spec.annotations;
}

std::uint64_t KnativeServing::route_retries(
    const std::string& service) const {
  auto it = revisions_.find(service);
  return it == revisions_.end() ? 0 : it->second.retries;
}

std::uint64_t KnativeServing::route_retries_for_revision(
    const std::string& service, const std::string& revision) const {
  auto it = revisions_.find(service);
  if (it == revisions_.end()) return 0;
  auto r = it->second.retries_by_revision.find(revision);
  return r == it->second.retries_by_revision.end() ? 0 : r->second;
}

KnativeServing::RouteFailureBreakdown KnativeServing::route_failures(
    const std::string& service) const {
  auto it = revisions_.find(service);
  return it == revisions_.end() ? RouteFailureBreakdown{}
                                : it->second.failures;
}

std::uint64_t KnativeServing::ejections(const std::string& service) const {
  auto it = revisions_.find(service);
  return it == revisions_.end() || it->second.detector == nullptr
             ? 0
             : it->second.detector->total_ejections();
}

std::uint64_t KnativeServing::readmissions(const std::string& service) const {
  auto it = revisions_.find(service);
  return it == revisions_.end() || it->second.detector == nullptr
             ? 0
             : it->second.detector->total_readmissions();
}

std::vector<std::string> KnativeServing::ejected_backends(
    const std::string& service) {
  auto it = revisions_.find(service);
  if (it == revisions_.end() || it->second.detector == nullptr) return {};
  return it->second.detector->ejected_backends();
}

double KnativeServing::backend_latency_p(const std::string& service,
                                         const std::string& pod, double p) {
  auto it = revisions_.find(service);
  if (it == revisions_.end() || it->second.detector == nullptr) return 0;
  return it->second.detector->backend_latency_p(
      pod, p, kube_.cluster().sim().now());
}

std::uint64_t KnativeServing::admission_rejections(
    const std::string& service) const {
  auto it = revisions_.find(service);
  return it == revisions_.end() ? 0 : it->second.admission_rejections;
}

std::size_t KnativeServing::peak_backend_queue(
    const std::string& service) const {
  auto it = revisions_.find(service);
  if (it == revisions_.end()) return 0;
  std::size_t peak = 0;
  for (const auto& [pod, proxy] : it->second.proxies) {
    peak = std::max(peak, proxy->peak_queued());
  }
  return peak;
}

KnativeServing::OutlierSnapshot KnativeServing::outlier_snapshot(
    const std::string& service) const {
  auto it = revisions_.find(service);
  if (it == revisions_.end() || it->second.detector == nullptr) return {};
  const OutlierDetector& det = *it->second.detector;
  return {/*enabled=*/true, det.host_count(), det.ejected_count(),
          det.ejection_allowance()};
}

const k8s::Endpoint* KnativeServing::pick_backend_for_bench(
    const std::string& service) {
  auto it = revisions_.find(service);
  if (it == revisions_.end()) return nullptr;
  const k8s::Endpoints* eps = kube_.api().get_endpoints(it->second.rev_name);
  if (eps == nullptr || eps->ready.empty()) return nullptr;
  return &pick_endpoint(it->second, *eps);
}

}  // namespace sf::knative
