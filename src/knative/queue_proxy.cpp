#include "knative/queue_proxy.hpp"

#include <memory>
#include <utility>

namespace sf::knative {

QueueProxy::QueueProxy(sim::Simulation& sim, net::HttpFabric& http,
                       FunctionContext context, FunctionHandler handler,
                       int container_concurrency)
    : sim_(sim),
      http_(http),
      context_(std::move(context)),
      handler_(std::move(handler)),
      container_concurrency_(container_concurrency) {}

QueueProxy::~QueueProxy() {
  if (installed_) http_.close(context_.node, port_);
}

void QueueProxy::install(net::Port port) {
  port_ = port;
  installed_ = true;
  http_.listen(context_.node, port_,
               [this](const net::HttpRequest& req, net::Responder respond) {
                 on_request(req, std::move(respond));
               });
}

void QueueProxy::on_request(const net::HttpRequest& req,
                            net::Responder respond) {
  if (draining_) {
    net::HttpResponse resp;
    resp.status = net::kStatusServiceUnavailable;
    respond(std::move(resp));
    return;
  }
  queue_.push_back(Pending{req, std::move(respond)});
  maybe_dispatch();
}

void QueueProxy::maybe_dispatch() {
  while (!queue_.empty() && (container_concurrency_ <= 0 ||
                             executing_ < container_concurrency_)) {
    // shared_ptr keeps the request alive for handlers that respond after
    // further simulated events.
    auto p = std::make_shared<Pending>(std::move(queue_.front()));
    queue_.pop_front();
    ++executing_;
    // The handler responds through a wrapper that updates bookkeeping
    // before the response leaves the pod.
    auto respond_wrapper = [this, p](net::HttpResponse resp) {
      p->respond(std::move(resp));
      finished_one();
    };
    handler_(p->req, context_, std::move(respond_wrapper));
  }
}

void QueueProxy::finished_one() {
  --executing_;
  ++served_;
  maybe_dispatch();
  if (draining_ && executing_ == 0 && queue_.empty() && drain_done_) {
    auto done = std::move(drain_done_);
    drain_done_ = nullptr;
    done();
  }
}

void QueueProxy::drain(std::function<void()> done) {
  draining_ = true;
  if (installed_) {
    http_.close(context_.node, port_);
    installed_ = false;
  }
  if (executing_ == 0 && queue_.empty()) {
    sim_.call_in(0, std::move(done));
    return;
  }
  drain_done_ = std::move(done);
}

}  // namespace sf::knative
