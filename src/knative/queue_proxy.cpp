#include "knative/queue_proxy.hpp"

#include <algorithm>
#include <utility>

namespace sf::knative {

QueueProxy::QueueProxy(sim::Simulation& sim, net::HttpFabric& http,
                       FunctionContext context, FunctionHandler handler,
                       int container_concurrency, double request_timeout_s)
    : sim_(sim),
      http_(http),
      context_(std::move(context)),
      handler_(std::move(handler)),
      container_concurrency_(container_concurrency),
      request_timeout_s_(request_timeout_s) {}

QueueProxy::~QueueProxy() {
  if (installed_) http_.close(context_.node, port_);
  // Outstanding deadline events capture `this`; cancel them so an abrupt
  // teardown (pod deleted with work still queued) cannot fire into a
  // destroyed proxy.
  for (auto& p : queue_) {
    if (p.timeout_event != sim::kNoEvent) sim_.cancel(p.timeout_event);
  }
  for (auto& p : inflight_) {
    if (p.timeout_event != sim::kNoEvent) sim_.cancel(p.timeout_event);
  }
}

void QueueProxy::install(net::Port port) {
  port_ = port;
  installed_ = true;
  http_.listen(context_.node, port_,
               [this](const net::HttpRequest& req, net::Responder respond) {
                 on_request(req, std::move(respond));
               });
}

void QueueProxy::on_request(const net::HttpRequest& req,
                            net::Responder respond) {
  if (draining_) {
    net::HttpResponse resp;
    resp.status = net::kStatusServiceUnavailable;
    resp.headers[net::kReasonHeader] = "draining";
    respond(std::move(resp));
    return;
  }
  Pending p{req, std::move(respond), ++next_token_, sim::kNoEvent,
            sim_.now()};
  if (request_timeout_s_ > 0) {
    p.timeout_event = sim_.call_in(
        request_timeout_s_,
        [this, token = p.token] { on_timeout(token); });
  }
  queue_.push_back(std::move(p));
  peak_queued_ = std::max(peak_queued_, queue_.size());
  maybe_dispatch();
}

void QueueProxy::on_timeout(std::uint64_t token) {
  net::HttpResponse resp;
  resp.status = net::kStatusGatewayTimeout;
  resp.headers[net::kReasonHeader] = "timeout";
  // Still queued: drop it — it never reached the container.
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->token != token) continue;
    ++timeouts_;
    record_outcome(*it, /*timed_out=*/true);
    auto respond = std::move(it->respond);
    queue_.erase(it);
    respond(std::move(resp));
    check_drain_done();
    return;
  }
  // Executing: answer 504 now; the handler's eventual response is dropped
  // (finish_slot sees the consumed responder) but still frees the slot.
  for (auto& p : inflight_) {
    if (p.token != token || !p.respond) continue;
    ++timeouts_;
    record_outcome(p, /*timed_out=*/true);
    auto respond = std::move(p.respond);
    p.respond = nullptr;
    p.timeout_event = sim::kNoEvent;
    respond(std::move(resp));
    return;
  }
}

void QueueProxy::record_outcome(const Pending& p, bool timed_out,
                                int status) {
  if (!stats_.enabled()) return;
  stats_.store->record_seconds(stats_.latency, sim_.now() - p.accepted_at);
  if (timed_out) {
    stats_.store->add(stats_.timeout, 1);
  } else {
    stats_.store->add(status >= 500 ? stats_.err : stats_.ok, 1);
  }
}

void QueueProxy::maybe_dispatch() {
  while (!queue_.empty() && (container_concurrency_ <= 0 ||
                             executing_ < container_concurrency_)) {
    // Move the request into an inflight slot (flat table, slots reused via
    // free list) — it outlives handlers that respond after further
    // simulated events. The responder wrapper captures only {this, slot},
    // which fits std::function's inline buffer: no allocation per request,
    // where the former shared_ptr<Pending> paid one.
    // inflight_ is a deque: reentrant dispatch (synchronous handlers) may
    // grow it while an outer frame still holds a reference into a slot.
    std::uint32_t slot;
    if (!inflight_free_.empty()) {
      slot = inflight_free_.back();
      inflight_free_.pop_back();
      inflight_[slot] = std::move(queue_.front());
    } else {
      slot = static_cast<std::uint32_t>(inflight_.size());
      inflight_.push_back(std::move(queue_.front()));
    }
    queue_.pop_front();
    ++executing_;
    // The handler responds through a wrapper that updates bookkeeping
    // before the response leaves the pod.
    handler_(inflight_[slot].req, context_,
             [this, slot](net::HttpResponse resp) {
               finish_slot(slot, std::move(resp));
             });
  }
}

void QueueProxy::finish_slot(std::uint32_t slot, net::HttpResponse resp) {
  // Move the request out before responding: the responder may re-enter
  // maybe_dispatch (synchronous handlers), which can reuse the slot.
  Pending done = std::move(inflight_[slot]);
  inflight_[slot] = Pending{};
  inflight_free_.push_back(slot);
  if (done.timeout_event != sim::kNoEvent) sim_.cancel(done.timeout_event);
  // An empty responder means the deadline already answered 504 for this
  // request; the handler's late response is discarded (and was already
  // recorded as a timeout).
  if (done.respond) {
    record_outcome(done, /*timed_out=*/false, resp.status);
    done.respond(std::move(resp));
  }
  finished_one();
}

void QueueProxy::finished_one() {
  --executing_;
  ++served_;
  maybe_dispatch();
  check_drain_done();
}

void QueueProxy::check_drain_done() {
  if (draining_ && executing_ == 0 && queue_.empty() && drain_done_) {
    auto done = std::move(drain_done_);
    drain_done_ = nullptr;
    done();
  }
}

void QueueProxy::drain(std::function<void()> done) {
  draining_ = true;
  if (installed_) {
    http_.close(context_.node, port_);
    installed_ = false;
  }
  if (executing_ == 0 && queue_.empty()) {
    sim_.call_in(0, std::move(done));
    return;
  }
  drain_done_ = std::move(done);
}

}  // namespace sf::knative
