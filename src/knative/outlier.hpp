// Envoy-style passive health checking for the router's backend set:
// consecutive-5xx / consecutive-gateway-failure and success-rate outlier
// ejection with capped exponential ejection windows, a max_ejection_percent
// guard, and deterministic probation-based re-admission. Plus the token
// bucket used for admission control at the router/activator.
//
// The detector is purely reactive: it observes (pod, status, latency)
// samples pushed by the router, rotates its success-rate window lazily on
// the caller-passed sim time, schedules no events, and draws no
// randomness — ejection decisions are a pure function of the observed
// response stream.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "metrics/stream_stats.hpp"

namespace sf::knative {

/// Knobs mirroring Envoy's outlier_detection cluster config. `enabled`
/// defaults to false so existing services are byte-for-byte unaffected.
struct OutlierConfig {
  bool enabled = false;
  /// Eject after this many consecutive 5xx of any kind (0 disables).
  int consecutive_5xx = 5;
  /// Eject after this many consecutive gateway-class failures
  /// (502/503/504) — the signal gray nodes and one-way partitions emit.
  int consecutive_gateway = 3;
  /// Success-rate window length; also the stats flush cadence.
  double interval_s = 10.0;
  /// First ejection lasts base_ejection_s; the n-th lasts
  /// base * 2^(n-1), capped at max_ejection_s.
  double base_ejection_s = 30.0;
  double max_ejection_s = 300.0;
  /// Never eject beyond this share of the backend set (at least one
  /// host may always be ejected, matching Envoy's overflow rule).
  int max_ejection_percent = 50;
  /// Success-rate ejection needs >= min_hosts backends each with
  /// >= request_volume samples in the closed window.
  int success_rate_min_hosts = 3;
  int success_rate_request_volume = 10;
  /// Eject hosts whose window success rate < mean - factor * stdev.
  double success_rate_stdev_factor = 1.9;
};

/// Admission control at the router: requests take one token per attempt;
/// an empty bucket yields a fast 429 instead of unbounded queueing.
/// fill_rate_hz == 0 disables the gate entirely.
struct AdmissionConfig {
  double fill_rate_hz = 0.0;
  double burst = 0.0;  // bucket capacity; defaults to fill rate when 0
};

/// Lazily-refilled token bucket driven by caller-passed sim time.
class TokenBucket {
 public:
  void configure(const AdmissionConfig& cfg, double now) {
    rate_ = cfg.fill_rate_hz;
    capacity_ = cfg.burst > 0.0 ? cfg.burst : cfg.fill_rate_hz;
    tokens_ = capacity_;
    last_ = now;
  }
  [[nodiscard]] bool enabled() const { return rate_ > 0.0; }
  [[nodiscard]] bool try_take(double now) {
    refill(now);
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }
  [[nodiscard]] double tokens(double now) {
    refill(now);
    return tokens_;
  }

 private:
  void refill(double now) {
    if (now > last_) {
      tokens_ = std::min(capacity_, tokens_ + (now - last_) * rate_);
      last_ = now;
    }
  }
  double rate_ = 0.0;
  double capacity_ = 0.0;
  double tokens_ = 0.0;
  double last_ = 0.0;
};

/// Per-service passive outlier detector over the backend pod set.
class OutlierDetector {
 public:
  explicit OutlierDetector(OutlierConfig cfg) : cfg_(cfg) {}

  /// Router-side observation of one completed attempt against `pod`.
  /// Registers unknown pods, updates consecutive counters and the
  /// rolling window, and may eject (or re-eject a probing host).
  void on_response(const std::string& pod, int status, double latency_s,
                   double now);

  /// True while `pod` is ejected; lazily moves an expired ejection into
  /// probation (the host rejoins rotation and its next response decides:
  /// success clears it, a gateway failure re-ejects with a doubled
  /// window). Unknown pods are never ejected.
  [[nodiscard]] bool ejected(const std::string& pod, double now);

  /// Drop a host (pod deleted / revision retired).
  void remove_host(const std::string& pod);

  // Introspection -----------------------------------------------------
  [[nodiscard]] std::size_t host_count() const { return hosts_.size(); }
  [[nodiscard]] std::size_t ejected_count() const;
  [[nodiscard]] std::uint64_t total_ejections() const { return ejections_; }
  [[nodiscard]] std::uint64_t total_readmissions() const { return readmissions_; }
  [[nodiscard]] std::uint64_t panic_picks() const { return panic_picks_; }
  void note_panic_pick() { ++panic_picks_; }
  [[nodiscard]] std::vector<std::string> ejected_backends() const;
  /// Rolling (current + previous interval) latency percentile for one
  /// backend; 0 when the pod is unknown or idle.
  [[nodiscard]] double backend_latency_p(const std::string& pod, double p,
                                         double now);
  /// Largest ejected-host count max_ejection_percent permits for the
  /// current host set (Envoy's rule: at least 1).
  [[nodiscard]] std::size_t ejection_allowance() const;
  [[nodiscard]] const OutlierConfig& config() const { return cfg_; }

 private:
  struct Host {
    std::string pod;
    int consecutive_5xx = 0;
    int consecutive_gateway = 0;
    std::uint64_t window_ok = 0;    // current success-rate interval
    std::uint64_t window_fail = 0;
    std::uint64_t closed_ok = 0;    // last closed interval (evaluated)
    std::uint64_t closed_fail = 0;
    stats::RollingHistogram latency;
    bool is_ejected = false;
    bool probation = false;
    double ejected_until = 0.0;
    std::uint32_t ejection_count = 0;  // drives the exponential window
    Host(std::string name, double interval_s)
        : pod(std::move(name)), latency(interval_s) {}
  };

  Host& host_for(const std::string& pod);
  void maybe_rotate(double now);
  void evaluate_success_rates(double now);
  void eject(Host& h, double now);
  [[nodiscard]] bool may_eject_another() const;

  OutlierConfig cfg_;
  std::vector<Host> hosts_;  // small backend sets; linear scan is the win
  std::uint64_t epoch_ = 0;
  std::uint64_t ejections_ = 0;
  std::uint64_t readmissions_ = 0;
  std::uint64_t panic_picks_ = 0;
};

}  // namespace sf::knative
