#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "metrics/stream_stats.hpp"
#include "net/http.hpp"
#include "sim/simulation.hpp"

namespace sf::knative {

/// Execution environment a function handler sees for one request.
struct FunctionContext {
  sim::Simulation* sim = nullptr;
  /// Node the pod runs on (functions use it for data-locality decisions
  /// and for talking to shared storage).
  net::NodeId node = 0;
  /// Pod backing this context (diagnostics).
  std::string pod_name;
  /// Runs `work` core-seconds inside the pod's container cgroup;
  /// `done(ok)` fires on completion (ok=false if the container died).
  std::function<void(double work, std::function<void(bool ok)> done)> exec;
};

/// User function: receives the request and must eventually respond.
/// Mirrors the paper's Flask HTTP event listener wrapping the task.
using FunctionHandler = std::function<void(
    const net::HttpRequest&, FunctionContext&, net::Responder)>;

/// Pre-resolved handles into the serving-owned stats store, one set per
/// (revision, backend pod). All raw pointers/handles stay valid for the
/// store's lifetime; recording through them allocates nothing.
struct ProxyStatsSink {
  stats::StatsStore* store = nullptr;
  stats::HistogramId latency;  ///< accept → response, seconds
  stats::CounterId ok;         ///< 2xx/4xx responses from the handler
  stats::CounterId err;        ///< 5xx responses from the handler
  stats::CounterId timeout;    ///< requests the deadline answered 504
  [[nodiscard]] bool enabled() const { return store != nullptr; }
};

/// Knative's per-pod sidecar: accepts requests on the pod's port,
/// enforces the revision's container-concurrency, queues the excess, and
/// reports observed concurrency (executing + queued) to the autoscaler.
/// On pod termination it drains: stops accepting, finishes in-flight
/// work, then releases the pod.
///
/// With a request timeout configured, each accepted request carries a
/// deadline: a queued request that expires is dropped and answered 504; an
/// executing one is answered 504 immediately and its handler's eventual
/// (late) response is discarded. The router retries on 504.
class QueueProxy {
 public:
  /// `container_concurrency` 0 = unlimited (Knative semantics);
  /// `request_timeout_s` 0 = no per-request deadline.
  QueueProxy(sim::Simulation& sim, net::HttpFabric& http,
             FunctionContext context, FunctionHandler handler,
             int container_concurrency, double request_timeout_s = 0);

  ~QueueProxy();
  QueueProxy(const QueueProxy&) = delete;
  QueueProxy& operator=(const QueueProxy&) = delete;

  /// Binds the proxy to its pod's (node, port).
  void install(net::Port port);

  /// Observed concurrency: executing plus queued (what KPA scrapes).
  [[nodiscard]] double concurrency() const {
    return static_cast<double>(executing_ + queue_.size());
  }
  [[nodiscard]] int executing() const { return executing_; }
  [[nodiscard]] std::size_t queued() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t served() const { return served_; }
  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }
  [[nodiscard]] std::size_t peak_queued() const { return peak_queued_; }
  [[nodiscard]] bool draining() const { return draining_; }

  /// Points per-request latency/outcome recording at the serving-owned
  /// stats store (scoped to this revision + pod). Optional: without a
  /// sink the proxy records nothing.
  void set_stats(ProxyStatsSink sink) { stats_ = sink; }

  /// Graceful shutdown (the pod's pre-stop hook): unbinds the listener,
  /// lets in-flight and queued requests finish, then calls `done`.
  void drain(std::function<void()> done);

 private:
  void on_request(const net::HttpRequest& req, net::Responder respond);
  void maybe_dispatch();
  void finish_slot(std::uint32_t slot, net::HttpResponse resp);
  void finished_one();
  void on_timeout(std::uint64_t token);
  void check_drain_done();

  sim::Simulation& sim_;
  net::HttpFabric& http_;
  FunctionContext context_;
  FunctionHandler handler_;
  int container_concurrency_;
  net::Port port_ = 0;
  bool installed_ = false;
  bool draining_ = false;
  std::function<void()> drain_done_;

  struct Pending {
    net::HttpRequest req;
    net::Responder respond;
    std::uint64_t token = 0;  ///< request identity across queue → inflight
    sim::EventId timeout_event = sim::kNoEvent;
    double accepted_at = 0;  ///< for the latency histogram
  };
  void record_outcome(const Pending& p, bool timed_out, int status = 200);
  std::deque<Pending> queue_;
  /// Executing requests, slot-indexed (free list below). The responder
  /// wrapper captures {this, slot} — small enough for std::function's
  /// inline buffer, so dispatch allocates nothing per request.
  std::deque<Pending> inflight_;
  std::vector<std::uint32_t> inflight_free_;
  int executing_ = 0;
  std::uint64_t served_ = 0;
  double request_timeout_s_ = 0;
  std::uint64_t next_token_ = 0;
  std::uint64_t timeouts_ = 0;
  std::size_t peak_queued_ = 0;
  ProxyStatsSink stats_;
};

}  // namespace sf::knative
