#pragma once

#include <deque>

#include "sim/types.hpp"

namespace sf::knative {

/// Knative Pod Autoscaler decision logic (pure, deterministic, testable).
///
/// Implements the KPA control law the paper's scaling behaviour depends
/// on: desired replicas = ceil(average observed concurrency / target),
/// averaged over a stable window, with a short panic window that can only
/// scale up when load doubles abruptly, a scale-to-zero grace period, and
/// the `autoscaling.knative.dev/min-scale` / `max-scale` clamps.
class KpaScaler {
 public:
  struct Config {
    double target_concurrency = 1.0;
    int min_scale = 0;
    int max_scale = 0;  ///< 0 = unlimited
    double stable_window_s = 60.0;
    double panic_window_s = 6.0;
    /// Panic triggers when panic-window desired >= this factor × current.
    double panic_threshold = 2.0;
    double scale_to_zero_grace_s = 30.0;
  };

  explicit KpaScaler(Config config) : config_(config) {}

  struct Decision {
    int desired = 0;
    bool panicking = false;
    /// False once the revision is quiescent (no samples in the stable
    /// window, grace elapsed, decision applied) — the serving layer may
    /// pause its tick loop until the next poke.
    bool work_pending = false;
  };

  /// Feeds one concurrency sample taken at time `t` (seconds, monotone)
  /// and returns the scaling decision given the currently applied replica
  /// count.
  Decision observe(sim::SimTime t, double concurrency, int current_replicas);

  /// Activator fast path: a request arrived while scaled to zero. Returns
  /// the replica count to jump to immediately.
  [[nodiscard]] int scale_from_zero_target() const {
    return config_.min_scale > 0 ? config_.min_scale : 1;
  }

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] bool in_panic() const { return panicking_; }

 private:
  struct WindowAverages {
    double stable = 0;
    double panic = 0;
  };

  [[nodiscard]] double window_average(double window_s) const;
  /// Stable and panic averages computed in a single pass over the samples
  /// (observe() needs both every tick; scanning the deque twice doubled
  /// the KPA's per-tick cost).
  [[nodiscard]] WindowAverages window_averages() const;
  void prune(sim::SimTime t);

  Config config_;
  std::deque<std::pair<sim::SimTime, double>> samples_;
  bool first_sample_ = true;
  sim::SimTime last_positive_ = -1e18;
  sim::SimTime panic_entered_ = -1e18;
  bool panicking_ = false;
  int panic_floor_ = 0;  ///< never scale below this while panicking
};

}  // namespace sf::knative
