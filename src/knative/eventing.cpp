#include "knative/eventing.hpp"

#include <memory>
#include <utility>

namespace sf::knative {

const CloudEvent& event_from_request(const net::HttpRequest& req) {
  return std::any_cast<const CloudEvent&>(req.body);
}

Broker::Broker(KnativeServing& serving, cluster::Node& host,
               std::string name)
    : serving_(serving), host_(host), name_(std::move(name)) {
  // Broker ingress: accepts CloudEvents over HTTP, fans out to matching
  // triggers, and acknowledges once every delivery settled.
  serving_.kube().cluster().http().listen(
      host_.net_id(), kIngressPort,
      [this](const net::HttpRequest& req, net::Responder respond) {
        CloudEvent event = std::any_cast<CloudEvent>(req.body);
        fanout(std::move(event),
               [respond = std::move(respond)](bool delivered_all) mutable {
                 net::HttpResponse resp;
                 resp.status = 202;
                 resp.headers["delivered-all"] = delivered_all ? "1" : "0";
                 respond(std::move(resp));
               });
      });
}

net::NodeId Broker::ingress_net_id() const { return host_.net_id(); }

void Broker::add_trigger(const std::string& trigger_name,
                         const std::string& event_type,
                         const std::string& service,
                         std::map<std::string, std::string> extension_filter) {
  triggers_[trigger_name] =
      Trigger{event_type, service, std::move(extension_filter)};
}

bool Broker::remove_trigger(const std::string& trigger_name) {
  return triggers_.erase(trigger_name) > 0;
}

bool Broker::matches(const Trigger& trigger,
                     const CloudEvent& event) const {
  if (!trigger.event_type.empty() && trigger.event_type != event.type) {
    return false;
  }
  for (const auto& [key, value] : trigger.extension_filter) {
    auto it = event.extensions.find(key);
    if (it == event.extensions.end() || it->second != value) return false;
  }
  return true;
}

void Broker::publish(net::NodeId from, CloudEvent event,
                     std::function<void(bool)> on_done) {
  net::HttpRequest req;
  req.path = "/" + name_;
  req.body_bytes = event.data_bytes + 512;  // event envelope
  req.body = std::move(event);
  serving_.kube().cluster().http().request(
      from, host_.net_id(), kIngressPort, std::move(req),
      [on_done = std::move(on_done)](net::HttpResponse resp) {
        if (!on_done) return;
        auto it = resp.headers.find("delivered-all");
        on_done(resp.status == 202 && it != resp.headers.end() &&
                it->second == "1");
      });
}

void Broker::fanout(const CloudEvent& event,
                    std::function<void(bool)> on_done) {
  ++events_received_;
  std::vector<const Trigger*> matching;
  for (const auto& [tname, trigger] : triggers_) {
    if (matches(trigger, event)) matching.push_back(&trigger);
  }
  if (matching.empty()) {
    serving_.kube().cluster().sim().call_in(
        0, [on_done = std::move(on_done)] {
          if (on_done) on_done(true);
        });
    return;
  }
  auto remaining = std::make_shared<std::size_t>(matching.size());
  auto all_ok = std::make_shared<bool>(true);
  auto done_cb =
      std::make_shared<std::function<void(bool)>>(std::move(on_done));
  for (const Trigger* trigger : matching) {
    deliver(*trigger, event, 1,
            [remaining, all_ok, done_cb](bool ok) {
              *all_ok = *all_ok && ok;
              if (--*remaining == 0 && *done_cb) (*done_cb)(*all_ok);
            });
  }
}

void Broker::deliver(Trigger trigger, const CloudEvent& event,
                     int attempt, std::function<void(bool)> on_done) {
  net::HttpRequest req;
  req.path = "/";
  req.headers["ce-type"] = event.type;
  req.body = event;
  req.body_bytes = event.data_bytes + 512;
  serving_.invoke(
      host_.net_id(), trigger.service, std::move(req),
      [this, trigger, event, attempt,
       on_done = std::move(on_done)](net::HttpResponse resp) mutable {
        if (resp.ok()) {
          ++deliveries_;
          on_done(true);
          return;
        }
        if (attempt < retry_limit_) {
          serving_.kube().cluster().sim().call_in(
              retry_backoff_ * attempt,
              [this, trigger, event = std::move(event), attempt,
               on_done = std::move(on_done)]() mutable {
                deliver(trigger, event, attempt + 1, std::move(on_done));
              });
          return;
        }
        ++failed_deliveries_;
        dead_letters_.push_back(std::move(event));
        on_done(false);
      });
}

}  // namespace sf::knative
