#include "knative/kpa.hpp"

#include <algorithm>
#include <cmath>

namespace sf::knative {

void KpaScaler::prune(sim::SimTime t) {
  while (!samples_.empty() &&
         samples_.front().first < t - config_.stable_window_s) {
    samples_.pop_front();
  }
}

double KpaScaler::window_average(double window_s) const {
  if (samples_.empty()) return 0;
  const sim::SimTime cutoff = samples_.back().first - window_s;
  double sum = 0;
  int n = 0;
  for (const auto& [ts, c] : samples_) {
    if (ts >= cutoff) {
      sum += c;
      ++n;
    }
  }
  return n == 0 ? 0 : sum / n;
}

KpaScaler::WindowAverages KpaScaler::window_averages() const {
  // Both windows in one pass over the sample ring. Each accumulator adds
  // the same samples in the same front-to-back order as a dedicated scan,
  // so the averages are bit-identical to calling window_average() twice.
  WindowAverages out;
  if (samples_.empty()) return out;
  const sim::SimTime stable_cutoff =
      samples_.back().first - config_.stable_window_s;
  const sim::SimTime panic_cutoff =
      samples_.back().first - config_.panic_window_s;
  double stable_sum = 0, panic_sum = 0;
  int stable_n = 0, panic_n = 0;
  for (const auto& [ts, c] : samples_) {
    if (ts >= stable_cutoff) {
      stable_sum += c;
      ++stable_n;
    }
    if (ts >= panic_cutoff) {
      panic_sum += c;
      ++panic_n;
    }
  }
  out.stable = stable_n == 0 ? 0 : stable_sum / stable_n;
  out.panic = panic_n == 0 ? 0 : panic_sum / panic_n;
  return out;
}

KpaScaler::Decision KpaScaler::observe(sim::SimTime t, double concurrency,
                                       int current_replicas) {
  samples_.emplace_back(t, concurrency);
  prune(t);
  if (first_sample_) {
    // Treat creation as activity so freshly started pods are not reaped
    // before the grace period.
    last_positive_ = t;
    first_sample_ = false;
  }
  if (concurrency > 0) last_positive_ = t;

  const WindowAverages avgs = window_averages();
  const double stable_avg = avgs.stable;
  const double panic_avg = avgs.panic;
  const int desired_stable =
      static_cast<int>(std::ceil(stable_avg / config_.target_concurrency));
  const int desired_panic =
      static_cast<int>(std::ceil(panic_avg / config_.target_concurrency));

  // Panic entry: the short window demands a multiple of current capacity.
  const int capacity = std::max(current_replicas, 1);
  if (desired_panic >=
      static_cast<int>(std::ceil(config_.panic_threshold * capacity))) {
    panicking_ = true;
    panic_entered_ = t;
    panic_floor_ = std::max(panic_floor_, current_replicas);
  } else if (panicking_ && t - panic_entered_ >= config_.stable_window_s) {
    panicking_ = false;
    panic_floor_ = 0;
  }

  int desired;
  if (panicking_) {
    // Panic mode scales up aggressively and never down.
    desired = std::max({desired_panic, desired_stable, panic_floor_});
    panic_floor_ = std::max(panic_floor_, desired);
  } else {
    desired = desired_stable;
  }

  // Scale-to-zero only after the grace period with zero demand.
  if (desired == 0 && current_replicas > 0) {
    if (t - last_positive_ < config_.scale_to_zero_grace_s) desired = 1;
  }

  desired = std::max(desired, config_.min_scale);
  if (config_.max_scale > 0) desired = std::min(desired, config_.max_scale);

  Decision d;
  d.desired = desired;
  d.panicking = panicking_;
  const bool quiescent = concurrency == 0 &&
                         t - last_positive_ >= config_.stable_window_s +
                                                   config_.scale_to_zero_grace_s &&
                         desired == current_replicas && !panicking_;
  d.work_pending = !quiescent;
  return d;
}

}  // namespace sf::knative
