#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/node.hpp"
#include "k8s/kube_cluster.hpp"
#include "knative/kpa.hpp"
#include "knative/queue_proxy.hpp"

namespace sf::knative {

/// Endpoint-selection policy of the ingress router. Round-robin is
/// Knative's default; least-loaded picks the ready pod whose queue-proxy
/// reports the lowest concurrency — the building block for the paper's
/// future-work "task redirection away from over-utilized nodes" (§IX-D).
enum class LoadBalancingPolicy { kRoundRobin, kLeastLoaded };

/// `autoscaling.knative.dev/*` annotations plus revision-level settings.
struct Annotations {
  /// Pods kept warm at all times; the paper's pre-staging knob ("min-scale
  /// to specify the number of worker nodes that should download the
  /// container ahead of time").
  int min_scale = 0;
  /// Pods created at registration; 0 defers the image download until the
  /// first invocation ("initial-scale to zero defers container downloads
  /// until a task is actually invoked"); -1 = Knative default (1).
  int initial_scale = -1;
  int max_scale = 0;  ///< 0 = unlimited
  /// Hard per-pod request cap enforced by the queue-proxy; 0 = unlimited;
  /// 1 reproduces the paper's "one request per container at a time".
  int container_concurrency = 0;
  double target_concurrency = 1.0;  ///< KPA soft target per pod
  double stable_window_s = 60.0;
  double panic_window_s = 6.0;
  double scale_to_zero_grace_s = 30.0;
  double tick_s = 2.0;  ///< autoscaler evaluation period
  /// Per-request timeout enforced by the queue-proxy (Knative's
  /// revision `timeoutSeconds`); 0 = no timeout. Expired requests get a
  /// 504, which the router treats as retryable — so a request stuck
  /// behind a dead or overloaded pod is re-routed (possibly through the
  /// activator after a cold start).
  double request_timeout_s = 0;
};

/// A Knative Service definition: container, resource requests, the
/// function handler (the Flask app), and scaling annotations.
struct KnServiceSpec {
  std::string name;
  container::ContainerSpec container;
  double cpu_request = 0.5;
  FunctionHandler handler;
  Annotations annotations;
};

/// Knative Serving control plane: revisions, KPA autoscaler loops, the
/// activator (scale-from-zero buffering) and the ingress router, all on
/// top of the k8s substrate.
///
/// Request path: client → gateway (ingress) → ready pod's queue-proxy →
/// user container; or, at zero scale, client → gateway → activator buffer
/// → (autoscaler poke, pod comes up) → queue-proxy. Payload bytes are paid
/// on every network hop, reproducing the paper's data-movement costs.
class KnativeServing {
 public:
  static constexpr net::Port kGatewayPort = 80;

  KnativeServing(k8s::KubeCluster& kube, cluster::Node& gateway);

  KnativeServing(const KnativeServing&) = delete;
  KnativeServing& operator=(const KnativeServing&) = delete;

  /// Registers a service: creates the revision's Deployment + k8s Service
  /// and starts its autoscaler. Mirrors the paper's pre-run registration
  /// step ("the containerized application is deployed on Knative *before*
  /// workflow execution").
  void create_service(KnServiceSpec spec);

  /// Rolls out a new revision of an existing service (blue/green, as
  /// Knative does on spec changes): the new revision's pods come up
  /// first, traffic switches atomically once they are ready, then the
  /// old revision is torn down — in-flight requests drain gracefully.
  /// With min-scale 0 the switch happens immediately (nothing to warm).
  void update_service(KnServiceSpec spec);

  /// Canary rollout (Knative traffic splitting): brings the new revision
  /// up but only routes `fraction` of requests to it once ready; the rest
  /// stay on the current revision. Finish with promote_canary() (full
  /// switch) or rollback_canary() (discard the new revision).
  void update_service_canary(KnServiceSpec spec, double fraction);
  void promote_canary(const std::string& service);
  void rollback_canary(const std::string& service);
  /// Current canary fraction (0 when no canary is active).
  [[nodiscard]] double canary_fraction(const std::string& service) const;

  void delete_service(const std::string& name);
  [[nodiscard]] bool has_service(const std::string& name) const {
    return revisions_.contains(name);
  }

  /// Name of the currently routed revision (e.g. "fn-matmul-00002").
  [[nodiscard]] std::string active_revision(const std::string& service) const;

  [[nodiscard]] net::NodeId gateway_net_id() const {
    return gateway_.net_id();
  }

  [[nodiscard]] k8s::KubeCluster& kube() { return kube_; }

  /// Convenience client call: POSTs to the service through the gateway.
  void invoke(net::NodeId client, const std::string& service,
              net::HttpRequest req,
              std::function<void(net::HttpResponse)> on_response);

  void set_load_balancing(LoadBalancingPolicy policy) {
    lb_policy_ = policy;
  }
  [[nodiscard]] LoadBalancingPolicy load_balancing() const {
    return lb_policy_;
  }

  // ---- Introspection (benches, tests) --------------------------------

  [[nodiscard]] int ready_replicas(const std::string& service) const;
  [[nodiscard]] int desired_replicas(const std::string& service) const;
  [[nodiscard]] double observed_concurrency(const std::string& service) const;
  /// Requests that had to wait in the activator (cold starts).
  [[nodiscard]] std::uint64_t cold_start_requests(
      const std::string& service) const;
  [[nodiscard]] std::uint64_t requests_routed(
      const std::string& service) const;
  /// Router re-route attempts (502/503/504 responses retried) — how often
  /// requests raced dead pods, drains, or queue-proxy deadlines.
  [[nodiscard]] std::uint64_t route_retries(const std::string& service) const;

  /// Names of live (non-deleted) services, in name order — lets the
  /// invariant registry enumerate services without reaching into the
  /// revision map.
  [[nodiscard]] std::vector<std::string> service_names() const;
  /// Scaling annotations of the active revision; nullptr when unknown.
  [[nodiscard]] const Annotations* service_annotations(
      const std::string& service) const;

 private:
  struct Revision {
    KnServiceSpec spec;  ///< spec of the active revision (handler!)
    std::string rev_name;
    std::string deployment_name;
    KpaScaler kpa{KpaScaler::Config{}};
    int current_desired = 0;
    bool ticking = false;
    bool deleted = false;
    std::map<std::string, std::unique_ptr<QueueProxy>> proxies;
    std::deque<std::pair<net::HttpRequest, net::Responder>> activator;
    std::size_t rr_cursor = 0;
    std::uint64_t cold_starts = 0;
    std::uint64_t requests = 0;
    std::uint64_t retries = 0;  ///< router re-route attempts
    int generation = 1;
    /// Rollout in flight (update_service): the next revision's name,
    /// deployment and spec; traffic switches once it has ready pods.
    std::string pending_rev;
    std::string pending_deployment;
    KnServiceSpec pending_spec;
    /// -1 = automatic blue/green switch; [0,1] = held canary split.
    double canary_fraction = -1;
  };

  void route(const std::string& service, const net::HttpRequest& req,
             net::Responder respond, int attempt);
  [[nodiscard]] k8s::Endpoint pick_endpoint(Revision& rev,
                                            const k8s::Endpoints& eps);
  void forward(const std::string& service, const k8s::Endpoint& ep,
               const net::HttpRequest& req, net::Responder respond,
               int attempt);
  void flush_activator(Revision& rev);
  void finalize_rollout(Revision& rev);
  void start_rollout(KnServiceSpec spec, double canary_fraction);
  static std::string revision_name(const std::string& service,
                                   int generation);
  void deploy_revision(const std::string& service,
                       const std::string& rev_name,
                       const KnServiceSpec& spec, int replicas);
  void apply_scale(Revision& rev, int desired);
  void ensure_ticking(const std::string& service);
  void tick(const std::string& service);
  [[nodiscard]] double scrape(const Revision& rev) const;
  void on_pod_event(k8s::EventType type, const k8s::Pod& pod);
  void attach_proxy(Revision& rev, const k8s::Pod& pod);
  /// Moves a revision's proxies into retiring_ and destroys each only
  /// once it has drained: abrupt teardown (delete_service) must not free
  /// a proxy while handlers still hold its responders / FunctionContext.
  void retire_proxies(Revision& rev);

  k8s::KubeCluster& kube_;
  cluster::Node& gateway_;
  LoadBalancingPolicy lb_policy_ = LoadBalancingPolicy::kRoundRobin;
  std::map<std::string, Revision> revisions_;  // keyed by service name
  std::map<std::string, std::string> revision_to_service_;
  /// Proxies of deleted services, parked until their in-flight requests
  /// complete (see retire_proxies).
  std::vector<std::unique_ptr<QueueProxy>> retiring_;
};

}  // namespace sf::knative
