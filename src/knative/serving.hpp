#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/node.hpp"
#include "k8s/kube_cluster.hpp"
#include "knative/kpa.hpp"
#include "knative/outlier.hpp"
#include "knative/queue_proxy.hpp"
#include "metrics/stream_stats.hpp"

namespace sf::knative {

/// Endpoint-selection policy of the ingress router. Round-robin is
/// Knative's default; least-loaded picks the ready pod whose queue-proxy
/// reports the lowest concurrency — the building block for the paper's
/// future-work "task redirection away from over-utilized nodes" (§IX-D).
enum class LoadBalancingPolicy { kRoundRobin, kLeastLoaded };

/// `autoscaling.knative.dev/*` annotations plus revision-level settings.
struct Annotations {
  /// Pods kept warm at all times; the paper's pre-staging knob ("min-scale
  /// to specify the number of worker nodes that should download the
  /// container ahead of time").
  int min_scale = 0;
  /// Pods created at registration; 0 defers the image download until the
  /// first invocation ("initial-scale to zero defers container downloads
  /// until a task is actually invoked"); -1 = Knative default (1).
  int initial_scale = -1;
  int max_scale = 0;  ///< 0 = unlimited
  /// Hard per-pod request cap enforced by the queue-proxy; 0 = unlimited;
  /// 1 reproduces the paper's "one request per container at a time".
  int container_concurrency = 0;
  double target_concurrency = 1.0;  ///< KPA soft target per pod
  double stable_window_s = 60.0;
  double panic_window_s = 6.0;
  double scale_to_zero_grace_s = 30.0;
  double tick_s = 2.0;  ///< autoscaler evaluation period
  /// Per-request timeout enforced by the queue-proxy (Knative's
  /// revision `timeoutSeconds`); 0 = no timeout. Expired requests get a
  /// 504, which the router treats as retryable — so a request stuck
  /// behind a dead or overloaded pod is re-routed (possibly through the
  /// activator after a cold start).
  double request_timeout_s = 0;
  /// Router-side per-ATTEMPT deadline (Envoy's upstream request
  /// timeout); 0 = off. The queue-proxy deadline above only covers
  /// queueing + execution — if the pod answers but its reply never
  /// arrives (one-way partition, NIC stall), only this timer fires: the
  /// attempt is answered 504 reason "unresponsive", fed to the outlier
  /// detector, and retried against another backend; the late real
  /// response is discarded.
  double route_timeout_s = 0;
  /// Passive outlier ejection over the service's backend pods
  /// (disabled by default — zero behavior/fingerprint change when off).
  OutlierConfig outlier;
  /// Token-bucket admission control at the router (off by default).
  AdmissionConfig admission;
};

/// A Knative Service definition: container, resource requests, the
/// function handler (the Flask app), and scaling annotations.
struct KnServiceSpec {
  std::string name;
  container::ContainerSpec container;
  double cpu_request = 0.5;
  FunctionHandler handler;
  Annotations annotations;
};

/// Knative Serving control plane: revisions, KPA autoscaler loops, the
/// activator (scale-from-zero buffering) and the ingress router, all on
/// top of the k8s substrate.
///
/// Request path: client → gateway (ingress) → ready pod's queue-proxy →
/// user container; or, at zero scale, client → gateway → activator buffer
/// → (autoscaler poke, pod comes up) → queue-proxy. Payload bytes are paid
/// on every network hop, reproducing the paper's data-movement costs.
class KnativeServing {
 public:
  static constexpr net::Port kGatewayPort = 80;

  KnativeServing(k8s::KubeCluster& kube, cluster::Node& gateway);

  KnativeServing(const KnativeServing&) = delete;
  KnativeServing& operator=(const KnativeServing&) = delete;

  /// Registers a service: creates the revision's Deployment + k8s Service
  /// and starts its autoscaler. Mirrors the paper's pre-run registration
  /// step ("the containerized application is deployed on Knative *before*
  /// workflow execution").
  void create_service(KnServiceSpec spec);

  /// Rolls out a new revision of an existing service (blue/green, as
  /// Knative does on spec changes): the new revision's pods come up
  /// first, traffic switches atomically once they are ready, then the
  /// old revision is torn down — in-flight requests drain gracefully.
  /// With min-scale 0 the switch happens immediately (nothing to warm).
  void update_service(KnServiceSpec spec);

  /// Canary rollout (Knative traffic splitting): brings the new revision
  /// up but only routes `fraction` of requests to it once ready; the rest
  /// stay on the current revision. Finish with promote_canary() (full
  /// switch) or rollback_canary() (discard the new revision).
  void update_service_canary(KnServiceSpec spec, double fraction);
  void promote_canary(const std::string& service);
  void rollback_canary(const std::string& service);
  /// Current canary fraction (0 when no canary is active).
  [[nodiscard]] double canary_fraction(const std::string& service) const;

  void delete_service(const std::string& name);
  [[nodiscard]] bool has_service(const std::string& name) const {
    return revisions_.contains(name);
  }

  /// Name of the currently routed revision (e.g. "fn-matmul-00002").
  [[nodiscard]] std::string active_revision(const std::string& service) const;

  [[nodiscard]] net::NodeId gateway_net_id() const {
    return gateway_.net_id();
  }

  [[nodiscard]] k8s::KubeCluster& kube() { return kube_; }

  /// Convenience client call: POSTs to the service through the gateway.
  void invoke(net::NodeId client, const std::string& service,
              net::HttpRequest req,
              std::function<void(net::HttpResponse)> on_response);

  void set_load_balancing(LoadBalancingPolicy policy) {
    lb_policy_ = policy;
  }
  [[nodiscard]] LoadBalancingPolicy load_balancing() const {
    return lb_policy_;
  }

  // ---- Introspection (benches, tests) --------------------------------

  [[nodiscard]] int ready_replicas(const std::string& service) const;
  [[nodiscard]] int desired_replicas(const std::string& service) const;
  [[nodiscard]] double observed_concurrency(const std::string& service) const;
  /// Requests that had to wait in the activator (cold starts).
  [[nodiscard]] std::uint64_t cold_start_requests(
      const std::string& service) const;
  [[nodiscard]] std::uint64_t requests_routed(
      const std::string& service) const;
  /// Router re-route attempts (502/503/504 responses retried) — how often
  /// requests raced dead pods, drains, or queue-proxy deadlines.
  [[nodiscard]] std::uint64_t route_retries(const std::string& service) const;
  /// Same, but per revision (rollouts split the count): retries counted
  /// while `revision` was the routed revision name. Unknown → 0.
  [[nodiscard]] std::uint64_t route_retries_for_revision(
      const std::string& service, const std::string& revision) const;

  /// Machine-readable breakdown of failures the router observed (from
  /// the x-sf-reason tag + status), distinguishing overload from outage.
  struct RouteFailureBreakdown {
    std::uint64_t timeout = 0;       ///< queue-proxy deadline 504s
    std::uint64_t backend_down = 0;  ///< 502 connection refused
    std::uint64_t draining = 0;      ///< 503 from a draining pod
    std::uint64_t rejected = 0;      ///< 429 admission rejections
    std::uint64_t unresponsive = 0;  ///< router per-attempt deadline
  };
  [[nodiscard]] RouteFailureBreakdown route_failures(
      const std::string& service) const;

  // ---- Resilience introspection (outlier ejection / admission) -------

  [[nodiscard]] std::uint64_t ejections(const std::string& service) const;
  [[nodiscard]] std::uint64_t readmissions(const std::string& service) const;
  [[nodiscard]] std::vector<std::string> ejected_backends(
      const std::string& service);
  /// Rolling latency percentile the router observes for one backend.
  [[nodiscard]] double backend_latency_p(const std::string& service,
                                         const std::string& pod, double p);
  [[nodiscard]] std::uint64_t admission_rejections(
      const std::string& service) const;
  /// Peak queue depth across the service's backends (admission-control
  /// payoff metric: bounded when the bucket is on).
  [[nodiscard]] std::size_t peak_backend_queue(
      const std::string& service) const;

  /// Snapshot for the sf::check invariants.
  struct OutlierSnapshot {
    bool enabled = false;
    std::size_t hosts = 0;
    std::size_t ejected = 0;
    std::size_t allowance = 0;  ///< max_ejection_percent cap (>= 1)
  };
  [[nodiscard]] OutlierSnapshot outlier_snapshot(
      const std::string& service) const;
  /// Endpoint picks that consulted the ejection filter (all services).
  [[nodiscard]] std::uint64_t outlier_guarded_picks() const {
    return outlier_guarded_picks_;
  }
  /// Picks that landed on an ejected backend despite a healthy
  /// alternative — must stay 0 (asserted by the invariant registry).
  /// Panic picks (every backend ejected) are counted separately.
  [[nodiscard]] std::uint64_t outlier_misrouted() const {
    return outlier_misrouted_;
  }

  /// Serving-owned flat stats store: per-(revision, pod) latency
  /// histograms and outcome counters recorded by the queue-proxies.
  [[nodiscard]] stats::StatsStore& stats() { return stats_; }

  /// Bench hook: runs the router's endpoint selection (including the
  /// ejection filter) for the active revision without forwarding;
  /// advances the RR cursor exactly as a real request would. nullptr
  /// when the service has no ready endpoints.
  [[nodiscard]] const k8s::Endpoint* pick_backend_for_bench(
      const std::string& service);

  /// Names of live (non-deleted) services, in name order — lets the
  /// invariant registry enumerate services without reaching into the
  /// revision map.
  [[nodiscard]] std::vector<std::string> service_names() const;
  /// Scaling annotations of the active revision; nullptr when unknown.
  [[nodiscard]] const Annotations* service_annotations(
      const std::string& service) const;

 private:
  struct Revision {
    KnServiceSpec spec;  ///< spec of the active revision (handler!)
    std::string rev_name;
    std::string deployment_name;
    KpaScaler kpa{KpaScaler::Config{}};
    int current_desired = 0;
    bool ticking = false;
    bool deleted = false;
    std::map<std::string, std::unique_ptr<QueueProxy>> proxies;
    std::deque<std::pair<net::HttpRequest, net::Responder>> activator;
    std::size_t rr_cursor = 0;
    std::uint64_t cold_starts = 0;
    std::uint64_t requests = 0;
    std::uint64_t retries = 0;  ///< router re-route attempts
    /// Per-revision split of `retries`, keyed by revision name (the
    /// service-level counter alone can't attribute a bad rollout).
    std::map<std::string, std::uint64_t> retries_by_revision;
    RouteFailureBreakdown failures;
    /// Passive outlier detector over this service's backends; null when
    /// the annotation is off (zero overhead, zero behavior change).
    std::unique_ptr<OutlierDetector> detector;
    TokenBucket admission;
    std::uint64_t admission_rejections = 0;
    int generation = 1;
    /// Rollout in flight (update_service): the next revision's name,
    /// deployment and spec; traffic switches once it has ready pods.
    std::string pending_rev;
    std::string pending_deployment;
    KnServiceSpec pending_spec;
    /// -1 = automatic blue/green switch; [0,1] = held canary split.
    double canary_fraction = -1;
    /// Set by pick_endpoint when every backend was ejected and the pick
    /// fell through to panic routing (Envoy's panic threshold behavior).
    bool last_pick_panic = false;
  };

  void route(const std::string& service, const net::HttpRequest& req,
             net::Responder respond, int attempt);
  [[nodiscard]] const k8s::Endpoint& pick_endpoint(Revision& rev,
                                                   const k8s::Endpoints& eps);
  void forward(const std::string& service, const k8s::Endpoint& ep,
               const net::HttpRequest& req, net::Responder respond,
               int attempt);
  /// Shared tail of forward(): classify the attempt's outcome, feed the
  /// outlier detector, retry when retryable, else respond.
  void on_attempt_response(const std::string& service,
                           const std::string& pod, double started_at,
                           int attempt, const net::HttpRequest& req,
                           net::Responder respond, net::HttpResponse resp);
  /// Admission gate; true = proceed. On false the request was already
  /// answered (429) or scheduled for a jittered retry.
  bool admit(Revision& rev, const std::string& service,
             const net::HttpRequest& req, net::Responder& respond,
             int attempt);
  void configure_resilience(Revision& rev);
  void flush_activator(Revision& rev);
  void finalize_rollout(Revision& rev);
  void start_rollout(KnServiceSpec spec, double canary_fraction);
  static std::string revision_name(const std::string& service,
                                   int generation);
  void deploy_revision(const std::string& service,
                       const std::string& rev_name,
                       const KnServiceSpec& spec, int replicas);
  void apply_scale(Revision& rev, int desired);
  void ensure_ticking(const std::string& service);
  void tick(const std::string& service);
  [[nodiscard]] double scrape(const Revision& rev) const;
  void on_pod_event(k8s::EventType type, const k8s::Pod& pod);
  void attach_proxy(Revision& rev, const k8s::Pod& pod);
  /// Moves a revision's proxies into retiring_ and destroys each only
  /// once it has drained: abrupt teardown (delete_service) must not free
  /// a proxy while handlers still hold its responders / FunctionContext.
  void retire_proxies(Revision& rev);

  k8s::KubeCluster& kube_;
  cluster::Node& gateway_;
  LoadBalancingPolicy lb_policy_ = LoadBalancingPolicy::kRoundRobin;
  std::map<std::string, Revision> revisions_;  // keyed by service name
  std::map<std::string, std::string> revision_to_service_;
  /// Proxies of deleted services, parked until their in-flight requests
  /// complete (see retire_proxies).
  std::vector<std::unique_ptr<QueueProxy>> retiring_;
  /// Flat per-(revision, pod) request stats; scopes/names are interned
  /// through the simulation's interner. Populated only for services with
  /// outlier detection, admission, or a route timeout configured.
  stats::StatsStore stats_;
  std::uint64_t outlier_guarded_picks_ = 0;
  std::uint64_t outlier_misrouted_ = 0;
};

}  // namespace sf::knative
