#include "knative/outlier.hpp"

#include <cmath>

namespace sf::knative {
namespace {

[[nodiscard]] bool is_gateway_failure(int status) {
  return status == 502 || status == 503 || status == 504;
}

}  // namespace

OutlierDetector::Host& OutlierDetector::host_for(const std::string& pod) {
  for (auto& h : hosts_) {
    if (h.pod == pod) return h;
  }
  hosts_.emplace_back(pod, cfg_.interval_s);
  return hosts_.back();
}

void OutlierDetector::maybe_rotate(double now) {
  if (cfg_.interval_s <= 0.0) return;
  const auto epoch = static_cast<std::uint64_t>(now / cfg_.interval_s);
  if (epoch == epoch_) return;
  epoch_ = epoch;
  for (auto& h : hosts_) {
    h.closed_ok = h.window_ok;
    h.closed_fail = h.window_fail;
    h.window_ok = 0;
    h.window_fail = 0;
  }
  evaluate_success_rates(now);
}

void OutlierDetector::evaluate_success_rates(double now) {
  // Envoy's success_rate algorithm over the just-closed interval: hosts
  // with enough volume vote; anyone below mean - k * stdev is ejected.
  const auto volume = static_cast<std::uint64_t>(
      std::max(0, cfg_.success_rate_request_volume));
  std::vector<double> rates;
  rates.reserve(hosts_.size());
  for (const auto& h : hosts_) {
    const std::uint64_t total = h.closed_ok + h.closed_fail;
    if (!h.is_ejected && total >= volume && total > 0) {
      rates.push_back(static_cast<double>(h.closed_ok) /
                      static_cast<double>(total));
    }
  }
  if (rates.size() < static_cast<std::size_t>(
                         std::max(1, cfg_.success_rate_min_hosts))) {
    return;
  }
  double mean = 0.0;
  for (const double r : rates) mean += r;
  mean /= static_cast<double>(rates.size());
  double var = 0.0;
  for (const double r : rates) var += (r - mean) * (r - mean);
  var /= static_cast<double>(rates.size());
  const double threshold =
      mean - cfg_.success_rate_stdev_factor * std::sqrt(var);
  for (auto& h : hosts_) {
    const std::uint64_t total = h.closed_ok + h.closed_fail;
    if (h.is_ejected || total < volume || total == 0) continue;
    const double rate =
        static_cast<double>(h.closed_ok) / static_cast<double>(total);
    if (rate < threshold && may_eject_another()) eject(h, now);
  }
}

void OutlierDetector::eject(Host& h, double now) {
  h.is_ejected = true;
  h.probation = false;
  ++h.ejection_count;
  // Capped exponential backoff on repeat offenders: base * 2^(n-1).
  const double factor =
      std::pow(2.0, static_cast<double>(std::min(h.ejection_count - 1, 16u)));
  const double window =
      std::min(cfg_.base_ejection_s * factor, cfg_.max_ejection_s);
  h.ejected_until = now + window;
  h.consecutive_5xx = 0;
  h.consecutive_gateway = 0;
  ++ejections_;
}

bool OutlierDetector::may_eject_another() const {
  return ejected_count() + 1 <= ejection_allowance();
}

std::size_t OutlierDetector::ejection_allowance() const {
  const auto pct = static_cast<std::size_t>(
      std::clamp(cfg_.max_ejection_percent, 0, 100));
  return std::max<std::size_t>(1, hosts_.size() * pct / 100);
}

void OutlierDetector::on_response(const std::string& pod, int status,
                                  double latency_s, double now) {
  maybe_rotate(now);
  Host& h = host_for(pod);
  h.latency.record_seconds(latency_s, now);
  const bool failure = status >= 500;
  if (!failure) {
    h.window_ok += 1;
    h.consecutive_5xx = 0;
    h.consecutive_gateway = 0;
    if (h.probation) {
      // Probe succeeded: the host is healthy again.
      h.probation = false;
      h.ejection_count = 0;
    }
    return;
  }
  h.window_fail += 1;
  ++h.consecutive_5xx;
  if (is_gateway_failure(status)) ++h.consecutive_gateway;
  if (h.is_ejected) return;  // stale sample from before the ejection
  if (h.probation) {
    // Probe failed: re-eject immediately with the doubled window.
    eject(h, now);
    return;
  }
  const bool trip_gateway = cfg_.consecutive_gateway > 0 &&
                            h.consecutive_gateway >= cfg_.consecutive_gateway;
  const bool trip_5xx =
      cfg_.consecutive_5xx > 0 && h.consecutive_5xx >= cfg_.consecutive_5xx;
  if ((trip_gateway || trip_5xx) && may_eject_another()) eject(h, now);
}

bool OutlierDetector::ejected(const std::string& pod, double now) {
  maybe_rotate(now);
  for (auto& h : hosts_) {
    if (h.pod != pod) continue;
    if (h.is_ejected && now >= h.ejected_until) {
      // Window expired: re-admit on probation; the next response decides.
      h.is_ejected = false;
      h.probation = true;
      ++readmissions_;
    }
    return h.is_ejected;
  }
  return false;
}

void OutlierDetector::remove_host(const std::string& pod) {
  for (auto it = hosts_.begin(); it != hosts_.end(); ++it) {
    if (it->pod == pod) {
      hosts_.erase(it);
      return;
    }
  }
}

std::size_t OutlierDetector::ejected_count() const {
  std::size_t n = 0;
  for (const auto& h : hosts_) n += h.is_ejected ? 1 : 0;
  return n;
}

std::vector<std::string> OutlierDetector::ejected_backends() const {
  std::vector<std::string> out;
  for (const auto& h : hosts_) {
    if (h.is_ejected) out.push_back(h.pod);
  }
  return out;
}

double OutlierDetector::backend_latency_p(const std::string& pod, double p,
                                          double now) {
  for (auto& h : hosts_) {
    if (h.pod == pod) return h.latency.percentile_seconds(p, now);
  }
  return 0.0;
}

}  // namespace sf::knative
