#include "net/flow_network.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>
#include <utility>

namespace sf::net {

namespace {
constexpr double kDoneSlack = 1e-6;  // bytes
// Flows within this time-to-finish are complete: a shorter delay may not
// be representable at a large clock value, and waiting for it would spin
// the event loop at a frozen timestamp.
constexpr double kTimeSlack = 1e-9;  // seconds

bool flow_done(double remaining, double rate) {
  return remaining <= kDoneSlack ||
         (rate > 0 && remaining <= rate * kTimeSlack);
}
}

NodeId FlowNetwork::add_node(double bandwidth_Bps, double latency_s) {
  if (bandwidth_Bps <= 0 || latency_s < 0) {
    throw std::invalid_argument("FlowNetwork::add_node: bad NIC spec");
  }
  nodes_.push_back(NodeNic{bandwidth_Bps, latency_s});
  return static_cast<NodeId>(nodes_.size() - 1);
}

double FlowNetwork::latency(NodeId src, NodeId dst) const {
  assert(src < nodes_.size() && dst < nodes_.size());
  if (src == dst) return 1e-6;  // loopback
  return nodes_[src].latency + nodes_[dst].latency;
}

FlowId FlowNetwork::transfer(NodeId src, NodeId dst, double bytes,
                             std::function<void()> on_complete) {
  if (src >= nodes_.size() || dst >= nodes_.size()) {
    throw std::invalid_argument("FlowNetwork::transfer: unknown node");
  }
  const double lat = latency(src, dst);
  const FlowId id = next_id_++;
  if (bytes <= 0) {
    // Control message: latency only, no bandwidth consumed.
    sim_.call_in(lat, std::move(on_complete));
    return id;
  }
  // The flow enters the fair-sharing pool after propagation delay.
  sim_.call_in(lat, [this, id, src, dst, bytes,
                     cb = std::move(on_complete)]() mutable {
    advance();
    Flow f;
    f.src = src;
    f.dst = dst;
    f.remaining = bytes;
    f.loopback = (src == dst);
    f.on_complete = std::move(cb);
    flows_.emplace(id, std::move(f));
    rebalance();
  });
  return id;
}

bool FlowNetwork::cancel(FlowId id) {
  advance();
  const bool erased = flows_.erase(id) > 0;
  if (erased) rebalance();
  return erased;
}

double FlowNetwork::remaining_bytes(FlowId id) {
  advance();
  auto it = flows_.find(id);
  return it == flows_.end() ? -1.0 : it->second.remaining;
}

double FlowNetwork::current_rate(FlowId id) {
  advance();
  auto it = flows_.find(id);
  return it == flows_.end() ? -1.0 : it->second.rate;
}

void FlowNetwork::advance() {
  const sim::SimTime now = sim_.now();
  const sim::SimTime dt = now - last_advance_;
  if (dt <= 0) {
    last_advance_ = now;
    return;
  }
  for (auto& [id, f] : flows_) {
    const double sent = std::min(f.remaining, f.rate * dt);
    f.remaining -= sent;
    bytes_delivered_ += sent;
  }
  last_advance_ = now;
}

void FlowNetwork::rebalance() {
  if (completion_event_ != sim::kNoEvent) {
    sim_.cancel(completion_event_);
    completion_event_ = sim::kNoEvent;
  }
  if (flows_.empty()) return;

  // Progressive filling over {egress(node), ingress(node)} constraints.
  // Loopback flows only contend for the memory bus, modelled as a fixed
  // per-flow rate (no sharing — the bus is far faster than any NIC).
  struct Constraint {
    double residual = 0;
    std::vector<FlowId> members;
  };
  std::map<std::pair<int, NodeId>, Constraint> cons;  // 0=egress, 1=ingress
  std::map<FlowId, double> rate;
  std::size_t unfrozen = 0;
  for (const auto& [id, f] : flows_) {
    if (f.loopback) {
      rate[id] = loopback_Bps_;
      continue;
    }
    rate[id] = -1;  // unfrozen
    ++unfrozen;
    auto& eg = cons[{0, f.src}];
    eg.residual = nodes_[f.src].bandwidth;
    eg.members.push_back(id);
    auto& in = cons[{1, f.dst}];
    in.residual = nodes_[f.dst].bandwidth;
    in.members.push_back(id);
  }
  while (unfrozen > 0) {
    // Find the tightest constraint (smallest fair share per unfrozen flow).
    double best_share = std::numeric_limits<double>::infinity();
    const Constraint* best = nullptr;
    for (const auto& [key, c] : cons) {
      std::size_t live = 0;
      for (FlowId id : c.members) {
        if (rate[id] < 0) ++live;
      }
      if (live == 0) continue;
      const double share = c.residual / static_cast<double>(live);
      if (share < best_share) {
        best_share = share;
        best = &c;
      }
    }
    if (best == nullptr) break;
    // Freeze that constraint's flows at the fair share and charge every
    // other constraint they traverse.
    for (FlowId id : best->members) {
      if (rate[id] >= 0) continue;
      rate[id] = best_share;
      --unfrozen;
      const Flow& f = flows_.at(id);
      for (auto key : {std::pair<int, NodeId>{0, f.src},
                       std::pair<int, NodeId>{1, f.dst}}) {
        auto it = cons.find(key);
        if (it != cons.end()) {
          it->second.residual =
              std::max(0.0, it->second.residual - best_share);
        }
      }
    }
  }
  for (auto& [id, f] : flows_) f.rate = rate.at(id);

  sim::SimTime soonest = sim::kTimeInfinity;
  for (const auto& [id, f] : flows_) {
    if (flow_done(f.remaining, f.rate)) {
      soonest = 0;
      break;
    }
    if (f.rate > 0) soonest = std::min(soonest, f.remaining / f.rate);
  }
  if (soonest < sim::kTimeInfinity) {
    completion_event_ = sim_.call_in(soonest, [this] { fire_completions(); });
  }
}

void FlowNetwork::fire_completions() {
  completion_event_ = sim::kNoEvent;
  advance();
  std::vector<std::function<void()>> done;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (flow_done(it->second.remaining, it->second.rate)) {
      done.push_back(std::move(it->second.on_complete));
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  rebalance();
  for (auto& cb : done) {
    if (cb) cb();
  }
}

}  // namespace sf::net
