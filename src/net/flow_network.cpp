#include "net/flow_network.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <string>
#include <stdexcept>
#include <utility>
#include <vector>

namespace sf::net {

namespace {
constexpr double kDoneSlack = 1e-6;  // bytes
// Flows within this time-to-finish are complete: a shorter delay may not
// be representable at a large clock value, and waiting for it would spin
// the event loop at a frozen timestamp.
constexpr double kTimeSlack = 1e-9;  // seconds

bool flow_done(double remaining, double rate) {
  return remaining <= kDoneSlack ||
         (rate > 0 && remaining <= rate * kTimeSlack);
}
}

NodeId FlowNetwork::add_node(double bandwidth_Bps, double latency_s) {
  if (bandwidth_Bps <= 0 || latency_s < 0) {
    throw std::invalid_argument("FlowNetwork::add_node: bad NIC spec");
  }
  nodes_.push_back(NodeNic{bandwidth_Bps, latency_s});
  return static_cast<NodeId>(nodes_.size() - 1);
}

void FlowNetwork::set_node_bandwidth_factor(NodeId node, double factor) {
  if (node >= nodes_.size() || factor <= 0 || factor > 1.0) {
    throw std::invalid_argument(
        "FlowNetwork::set_node_bandwidth_factor: bad node or factor");
  }
  if (nodes_[node].degrade == factor) return;
  advance();
  nodes_[node].degrade = factor;
  rebalance();
}

void FlowNetwork::set_partition(NodeId a, NodeId b, bool blocked) {
  if (a >= nodes_.size() || b >= nodes_.size() || a == b) {
    throw std::invalid_argument("FlowNetwork::set_partition: bad node pair");
  }
  const std::uint64_t key = pair_key(a, b);
  const auto it =
      std::lower_bound(blocked_pairs_.begin(), blocked_pairs_.end(), key);
  const bool present = it != blocked_pairs_.end() && *it == key;
  if (blocked == present) return;
  advance();
  if (blocked) {
    blocked_pairs_.insert(it, key);
  } else {
    blocked_pairs_.erase(it);
  }
  rebalance();
}

void FlowNetwork::set_partition_oneway(NodeId src, NodeId dst, bool blocked) {
  if (src >= nodes_.size() || dst >= nodes_.size() || src == dst) {
    throw std::invalid_argument(
        "FlowNetwork::set_partition_oneway: bad node pair");
  }
  const std::uint64_t key = directed_key(src, dst);
  const auto it =
      std::lower_bound(blocked_oneway_.begin(), blocked_oneway_.end(), key);
  const bool present = it != blocked_oneway_.end() && *it == key;
  if (blocked == present) return;
  advance();
  if (blocked) {
    blocked_oneway_.insert(it, key);
  } else {
    blocked_oneway_.erase(it);
  }
  rebalance();
}

void FlowNetwork::set_node_flaky(NodeId node, std::uint32_t every_nth,
                                 double stall_s) {
  if (node >= nodes_.size() || stall_s < 0) {
    throw std::invalid_argument("FlowNetwork::set_node_flaky: bad args");
  }
  NodeNic& nic = nodes_[node];
  nic.flaky_every = every_nth;
  nic.flaky_stall_s = every_nth == 0 ? 0 : stall_s;
  nic.flow_counter = 0;
}

bool FlowNetwork::partitioned(NodeId a, NodeId b) const {
  if (blocked_pairs_.empty() || a == b) return false;
  return std::binary_search(blocked_pairs_.begin(), blocked_pairs_.end(),
                            pair_key(a, b));
}

bool FlowNetwork::oneway_blocked(NodeId src, NodeId dst) const {
  if (src == dst) return false;
  if (!blocked_oneway_.empty() &&
      std::binary_search(blocked_oneway_.begin(), blocked_oneway_.end(),
                         directed_key(src, dst))) {
    return true;
  }
  return partitioned(src, dst);
}

double FlowNetwork::latency(NodeId src, NodeId dst) const {
  assert(src < nodes_.size() && dst < nodes_.size());
  if (src == dst) return 1e-6;  // loopback
  return nodes_[src].latency + nodes_[dst].latency;
}

FlowNetwork::Flow* FlowNetwork::find(FlowId id) {
  const auto slot = static_cast<std::uint32_t>(id & kSlotMask);
  if (slot >= slots_.size() || slots_[slot].id != id) return nullptr;
  return &slots_[slot];
}

std::uint32_t FlowNetwork::alloc_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  const auto slot = static_cast<std::uint32_t>(slots_.size());
  assert(slot < kDetachedSlot && "FlowNetwork: too many concurrent flows");
  slots_.emplace_back();
  return slot;
}

void FlowNetwork::release_slot(std::uint32_t slot) {
  Flow& f = slots_[slot];
  f.id = kNoFlow;
  f.active = false;
  f.on_complete = nullptr;
  free_slots_.push_back(slot);
}

FlowId FlowNetwork::transfer(NodeId src, NodeId dst, double bytes,
                             sim::Simulation::Callback on_complete) {
  if (src >= nodes_.size() || dst >= nodes_.size()) {
    throw std::invalid_argument("FlowNetwork::transfer: unknown node");
  }
  const double lat = latency(src, dst);
  if (bytes <= 0) {
    // Control message: latency only, no bandwidth consumed. Detached ids
    // never resolve to a slot, so cancel() correctly reports them unknown.
    sim_.call_in(lat, std::move(on_complete));
    return (++next_seq_ << kSlotBits) | kDetachedSlot;
  }
  bytes_requested_ += bytes;
  const std::uint32_t slot = alloc_slot();
  const FlowId id = (++next_seq_ << kSlotBits) | slot;
  Flow& f = slots_[slot];
  f.id = id;
  f.src = src;
  f.dst = dst;
  f.remaining = bytes;
  f.rate = 0;
  f.loopback = (src == dst);
  f.active = false;
  f.on_complete = std::move(on_complete);
  // A flaky NIC at either endpoint stalls every Nth bulk flow before it
  // may enter the sharing pool: the stall is decided (and the per-node
  // counter advanced) here at start time, so it is a pure function of
  // flow-start order. Loopback flows never touch the NIC.
  double stall = 0;
  if (!f.loopback) {
    for (const NodeId endpoint : {src, dst}) {
      NodeNic& nic = nodes_[endpoint];
      if (nic.flaky_every == 0) continue;
      if (++nic.flow_counter % nic.flaky_every == 0) {
        stall += nic.flaky_stall_s;
        ++flaky_stalls_;
      }
    }
  }
  // The flow enters the fair-sharing pool after propagation delay; the
  // capture is three words, so the callback stays allocation-free.
  sim_.call_in(lat + stall, [this, slot] { activate(slot); });
  return id;
}

void FlowNetwork::activate(std::uint32_t slot) {
  advance();
  Flow& f = slots_[slot];
  assert(f.id != kNoFlow && !f.active);
  f.active = true;
  // Keep `order_` sorted by id: activations arrive in latency order, not
  // submission order.
  const auto pos = std::lower_bound(
      order_.begin(), order_.end(), f.id,
      [this](std::uint32_t s, FlowId id) { return slots_[s].id < id; });
  order_.insert(pos, slot);
  rebalance();
}

bool FlowNetwork::cancel(FlowId id) {
  Flow* f = find(id);
  // Flows still in their latency phase are not "active" yet and keep the
  // pre-flat-table semantics: cancel fails and the flow proceeds.
  if (f == nullptr || !f->active) return false;
  advance();
  const auto slot = static_cast<std::uint32_t>(id & kSlotMask);
  bytes_cancelled_ += slots_[slot].remaining;
  order_.erase(std::find(order_.begin(), order_.end(), slot));
  release_slot(slot);
  rebalance();
  return true;
}

double FlowNetwork::remaining_bytes(FlowId id) {
  advance();
  const Flow* f = find(id);
  return (f == nullptr || !f->active) ? -1.0 : f->remaining;
}

double FlowNetwork::current_rate(FlowId id) {
  advance();
  const Flow* f = find(id);
  return (f == nullptr || !f->active) ? -1.0 : f->rate;
}

void FlowNetwork::advance() {
  const sim::SimTime now = sim_.now();
  const sim::SimTime dt = now - last_advance_;
  if (dt <= 0) {
    last_advance_ = now;
    return;
  }
  for (const std::uint32_t slot : order_) {
    Flow& f = slots_[slot];
    const double sent = std::min(f.remaining, f.rate * dt);
    f.remaining -= sent;
    bytes_delivered_ += sent;
  }
  last_advance_ = now;
}

void FlowNetwork::rebalance() {
  if (completion_event_ != sim::kNoEvent) {
    sim_.cancel(completion_event_);
    completion_event_ = sim::kNoEvent;
  }
  if (order_.empty()) return;

  // Progressive filling over {egress(node), ingress(node)} constraints.
  // Loopback flows only contend for the memory bus, modelled as a fixed
  // per-flow rate (no sharing — the bus is far faster than any NIC).
  if (egress_residual_.size() < nodes_.size()) {
    egress_residual_.resize(nodes_.size());
    ingress_residual_.resize(nodes_.size());
    egress_live_.resize(nodes_.size());
    ingress_live_.resize(nodes_.size());
    egress_epoch_.resize(nodes_.size(), 0);
    ingress_epoch_.resize(nodes_.size(), 0);
  }
  ++epoch_;
  egress_nodes_.clear();
  ingress_nodes_.clear();
  std::size_t unfrozen = 0;
  for (const std::uint32_t slot : order_) {
    Flow& f = slots_[slot];
    if (f.loopback) {
      f.rate = loopback_Bps_;
      continue;
    }
    if (oneway_blocked(f.src, f.dst)) {
      // Stalled across a (possibly one-way) partition: no progress, no
      // capacity consumed. The reverse direction is unaffected.
      f.rate = 0;
      continue;
    }
    f.rate = -1;  // unfrozen
    ++unfrozen;
    if (egress_epoch_[f.src] != epoch_) {
      egress_epoch_[f.src] = epoch_;
      egress_residual_[f.src] = nodes_[f.src].bandwidth * nodes_[f.src].degrade;
      egress_live_[f.src] = 0;
      egress_nodes_.push_back(f.src);
    }
    ++egress_live_[f.src];
    if (ingress_epoch_[f.dst] != epoch_) {
      ingress_epoch_[f.dst] = epoch_;
      ingress_residual_[f.dst] = nodes_[f.dst].bandwidth * nodes_[f.dst].degrade;
      ingress_live_[f.dst] = 0;
      ingress_nodes_.push_back(f.dst);
    }
    ++ingress_live_[f.dst];
  }
  // Constraints are examined egress-before-ingress, ascending node id —
  // the iteration order of the former ordered map, preserved for
  // deterministic tie-breaking.
  std::sort(egress_nodes_.begin(), egress_nodes_.end());
  std::sort(ingress_nodes_.begin(), ingress_nodes_.end());

  while (unfrozen > 0) {
    // Find the tightest constraint (smallest fair share per unfrozen flow).
    double best_share = std::numeric_limits<double>::infinity();
    int best_type = -1;  // 0=egress, 1=ingress
    NodeId best_node = 0;
    for (const NodeId n : egress_nodes_) {
      if (egress_live_[n] == 0) continue;
      const double share =
          egress_residual_[n] / static_cast<double>(egress_live_[n]);
      if (share < best_share) {
        best_share = share;
        best_type = 0;
        best_node = n;
      }
    }
    for (const NodeId n : ingress_nodes_) {
      if (ingress_live_[n] == 0) continue;
      const double share =
          ingress_residual_[n] / static_cast<double>(ingress_live_[n]);
      if (share < best_share) {
        best_share = share;
        best_type = 1;
        best_node = n;
      }
    }
    if (best_type < 0) break;
    // Freeze that constraint's flows at the fair share and charge every
    // constraint they traverse.
    for (const std::uint32_t slot : order_) {
      Flow& f = slots_[slot];
      if (f.loopback || f.rate >= 0) continue;
      if (best_type == 0 ? f.src != best_node : f.dst != best_node) continue;
      f.rate = best_share;
      --unfrozen;
      --egress_live_[f.src];
      --ingress_live_[f.dst];
      egress_residual_[f.src] =
          std::max(0.0, egress_residual_[f.src] - best_share);
      ingress_residual_[f.dst] =
          std::max(0.0, ingress_residual_[f.dst] - best_share);
    }
  }

  sim::SimTime soonest = sim::kTimeInfinity;
  for (const std::uint32_t slot : order_) {
    const Flow& f = slots_[slot];
    if (flow_done(f.remaining, f.rate)) {
      soonest = 0;
      break;
    }
    if (f.rate > 0) soonest = std::min(soonest, f.remaining / f.rate);
  }
  if (soonest < sim::kTimeInfinity) {
    completion_event_ = sim_.call_in(soonest, [this] { fire_completions(); });
  }
}

std::vector<std::string> FlowNetwork::self_check() {
  std::vector<std::string> out;
  advance();  // bring bytes_delivered_ and per-flow remainders to `now`

  double in_flight = 0;
  std::vector<double> egress(nodes_.size(), 0.0);
  std::vector<double> ingress(nodes_.size(), 0.0);
  for (const Flow& f : slots_) {
    if (f.id == kNoFlow) continue;
    in_flight += f.remaining;
    if (f.remaining < -1e-6) {
      out.push_back("flow " + std::to_string(f.id) +
                    " has negative remaining bytes");
    }
    if (f.rate < 0) {
      out.push_back("flow " + std::to_string(f.id) + " has negative rate");
    }
    if (!f.active) continue;
    if (f.loopback) continue;
    if (oneway_blocked(f.src, f.dst)) {
      if (f.rate != 0) {
        out.push_back("partitioned flow " + std::to_string(f.id) +
                      " still progresses at " + std::to_string(f.rate));
      }
      continue;
    }
    egress[f.src] += f.rate;
    ingress[f.dst] += f.rate;
  }
  for (NodeId n = 0; n < nodes_.size(); ++n) {
    const double cap = nodes_[n].bandwidth * nodes_[n].degrade;
    const double slack = cap * 1e-6 + 1.0;
    if (egress[n] > cap + slack) {
      out.push_back("node " + std::to_string(n) + " egress " +
                    std::to_string(egress[n]) + " exceeds capacity " +
                    std::to_string(cap));
    }
    if (ingress[n] > cap + slack) {
      out.push_back("node " + std::to_string(n) + " ingress " +
                    std::to_string(ingress[n]) + " exceeds capacity " +
                    std::to_string(cap));
    }
  }
  // Byte conservation: everything ever requested is delivered, cancelled,
  // written off at completion, or still in flight.
  const double accounted =
      bytes_delivered_ + bytes_cancelled_ + bytes_rounded_ + in_flight;
  const double tol = 1e-6 * std::max(1.0, bytes_requested_);
  if (std::abs(bytes_requested_ - accounted) > tol) {
    out.push_back("byte conservation drifted: requested " +
                  std::to_string(bytes_requested_) + " vs accounted " +
                  std::to_string(accounted));
  }
  return out;
}

void FlowNetwork::fire_completions() {
  completion_event_ = sim::kNoEvent;
  advance();
  std::vector<sim::Simulation::Callback> done;
  std::size_t kept = 0;
  for (const std::uint32_t slot : order_) {
    Flow& f = slots_[slot];
    if (flow_done(f.remaining, f.rate)) {
      bytes_rounded_ += f.remaining;  // sub-slack residue, written off
      done.push_back(std::move(f.on_complete));
      release_slot(slot);
    } else {
      order_[kept++] = slot;
    }
  }
  order_.resize(kept);
  rebalance();
  for (auto& cb : done) {
    if (cb) cb();
  }
}

}  // namespace sf::net
