#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/flow_network.hpp"
#include "sim/simulation.hpp"

namespace sf::net {

using Port = std::uint16_t;

/// In-simulation HTTP message. `body` carries typed in-memory content (the
/// simulation never serializes for real); `body_bytes` is the wire size
/// that drives transfer cost — for the paper's pass-by-value strategy this
/// is the full input-matrix payload.
struct HttpRequest {
  std::string method = "POST";
  std::string path = "/";
  std::map<std::string, std::string> headers;
  std::any body;
  double body_bytes = 0;
};

struct HttpResponse {
  int status = 200;
  std::map<std::string, std::string> headers;
  std::any body;
  double body_bytes = 0;

  [[nodiscard]] bool ok() const { return status >= 200 && status < 300; }
};

/// HTTP status codes the fabric itself produces.
inline constexpr int kStatusTooManyRequests = 429;
inline constexpr int kStatusConnectionRefused = 502;
inline constexpr int kStatusServiceUnavailable = 503;
inline constexpr int kStatusGatewayTimeout = 504;

/// Response header carrying the machine-readable failure reason tagged by
/// the data plane: "timeout" (queue-proxy deadline), "draining" (pod
/// shutting down), "rejected" (admission control), "unresponsive" (router
/// per-attempt deadline — the reply never came back, e.g. a one-way
/// partition). 502s carry no tag: the connection itself was refused.
inline constexpr const char* kReasonHeader = "x-sf-reason";

/// A handler receives the request and a one-shot responder. Responding may
/// happen immediately or after arbitrarily many simulated events (the
/// queue-proxy holds requests while the autoscaler brings up pods).
using Responder = std::function<void(HttpResponse)>;
using HttpHandler = std::function<void(const HttpRequest&, Responder)>;

/// Simulated HTTP transport: listeners bound to (node, port), requests that
/// pay per-request overhead plus body transfer each way on the flow
/// network. Equivalent of the Flask servers + `requests` calls the paper's
/// prototype uses.
class HttpFabric {
 public:
  HttpFabric(sim::Simulation& sim, FlowNetwork& network)
      : sim_(sim), net_(network) {}

  HttpFabric(const HttpFabric&) = delete;
  HttpFabric& operator=(const HttpFabric&) = delete;

  /// Binds a handler; replaces any previous listener on that (node, port).
  void listen(NodeId node, Port port, HttpHandler handler);

  /// Removes a listener. In-flight requests already dispatched to the old
  /// handler still complete; new ones get 502.
  void close(NodeId node, Port port);

  [[nodiscard]] bool is_listening(NodeId node, Port port) const;

  /// Issues a request from `src`. The response callback always fires —
  /// with 502 when nothing listens at dispatch time.
  void request(NodeId src, NodeId dst, Port port, HttpRequest req,
               std::function<void(HttpResponse)> on_response);

  /// Fixed per-request protocol overhead (connection setup, headers),
  /// applied once per request and once per response.
  void set_request_overhead(double seconds) { request_overhead_ = seconds; }
  [[nodiscard]] double request_overhead() const { return request_overhead_; }

  [[nodiscard]] std::uint64_t requests_sent() const { return requests_sent_; }

 private:
  struct Listener {
    Port port = 0;
    /// Heap-held so a dispatch can pin the handler alive across reentrant
    /// listen()/close() calls that mutate the table mid-request.
    std::shared_ptr<HttpHandler> handler;
  };

  [[nodiscard]] std::shared_ptr<HttpHandler> find_handler(NodeId node,
                                                          Port port) const;

  sim::Simulation& sim_;
  FlowNetwork& net_;
  /// Flat per-node listener table, indexed by NodeId (the hottest lookup
  /// on the request path — every routed invocation resolves a listener
  /// here). Each node serves a handful of ports, so the inner list is a
  /// short vector scanned linearly; allocation happens on listen(), never
  /// per request.
  std::vector<std::vector<Listener>> listeners_;
  double request_overhead_ = 0.5e-3;  // 0.5 ms per hop
  std::uint64_t requests_sent_ = 0;
};

}  // namespace sf::net
