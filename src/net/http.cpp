#include "net/http.hpp"

#include <memory>
#include <utility>

namespace sf::net {

void HttpFabric::listen(NodeId node, Port port, HttpHandler handler) {
  listeners_[{node, port}] = std::move(handler);
}

void HttpFabric::close(NodeId node, Port port) {
  listeners_.erase({node, port});
}

bool HttpFabric::is_listening(NodeId node, Port port) const {
  return listeners_.contains({node, port});
}

void HttpFabric::request(NodeId src, NodeId dst, Port port, HttpRequest req,
                         std::function<void(HttpResponse)> on_response) {
  ++requests_sent_;
  const double overhead = request_overhead_;
  // Request leg: protocol overhead then body transfer to the server.
  auto req_ptr = std::make_shared<HttpRequest>(std::move(req));
  sim_.call_in(overhead, [this, src, dst, port, req_ptr,
                          cb = std::move(on_response)]() mutable {
    net_.transfer(src, dst, req_ptr->body_bytes, [this, src, dst, port,
                                                  req_ptr,
                                                  cb = std::move(cb)]() mutable {
      auto it = listeners_.find({dst, port});
      if (it == listeners_.end()) {
        HttpResponse resp;
        resp.status = kStatusConnectionRefused;
        // Refusal still pays the return latency.
        net_.transfer(dst, src, 0, [cb = std::move(cb), resp]() mutable {
          cb(std::move(resp));
        });
        return;
      }
      // Dispatch to the handler; the response leg mirrors the request leg.
      auto respond = [this, src, dst,
                      cb = std::move(cb)](HttpResponse resp) mutable {
        auto resp_ptr = std::make_shared<HttpResponse>(std::move(resp));
        sim_.call_in(request_overhead_, [this, src, dst, resp_ptr,
                                         cb = std::move(cb)]() mutable {
          net_.transfer(dst, src, resp_ptr->body_bytes,
                        [resp_ptr, cb = std::move(cb)]() mutable {
                          cb(std::move(*resp_ptr));
                        });
        });
      };
      it->second(*req_ptr, std::move(respond));
    });
  });
}

}  // namespace sf::net
