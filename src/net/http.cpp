#include "net/http.hpp"

#include <algorithm>
#include <memory>
#include <utility>

namespace sf::net {

void HttpFabric::listen(NodeId node, Port port, HttpHandler handler) {
  if (node >= listeners_.size()) listeners_.resize(node + 1);
  auto& node_listeners = listeners_[node];
  auto ptr = std::make_shared<HttpHandler>(std::move(handler));
  for (Listener& l : node_listeners) {
    if (l.port == port) {
      l.handler = std::move(ptr);
      return;
    }
  }
  node_listeners.push_back(Listener{port, std::move(ptr)});
}

void HttpFabric::close(NodeId node, Port port) {
  if (node >= listeners_.size()) return;
  auto& node_listeners = listeners_[node];
  const auto it = std::find_if(node_listeners.begin(), node_listeners.end(),
                               [port](const Listener& l) {
                                 return l.port == port;
                               });
  if (it != node_listeners.end()) node_listeners.erase(it);
}

std::shared_ptr<HttpHandler> HttpFabric::find_handler(NodeId node,
                                                      Port port) const {
  if (node >= listeners_.size()) return nullptr;
  for (const Listener& l : listeners_[node]) {
    if (l.port == port) return l.handler;
  }
  return nullptr;
}

bool HttpFabric::is_listening(NodeId node, Port port) const {
  return find_handler(node, port) != nullptr;
}

void HttpFabric::request(NodeId src, NodeId dst, Port port, HttpRequest req,
                         std::function<void(HttpResponse)> on_response) {
  ++requests_sent_;
  const double overhead = request_overhead_;
  // Request leg: protocol overhead then body transfer to the server.
  auto req_ptr = std::make_shared<HttpRequest>(std::move(req));
  sim_.call_in(overhead, [this, src, dst, port, req_ptr,
                          cb = std::move(on_response)]() mutable {
    net_.transfer(src, dst, req_ptr->body_bytes, [this, src, dst, port,
                                                  req_ptr,
                                                  cb = std::move(cb)]() mutable {
      // Pinning the handler here keeps the dispatch valid even if it
      // reentrantly rebinds or closes the (node, port) it runs on.
      auto handler = find_handler(dst, port);
      if (handler == nullptr) {
        HttpResponse resp;
        resp.status = kStatusConnectionRefused;
        // Refusal still pays the return latency.
        net_.transfer(dst, src, 0, [cb = std::move(cb), resp]() mutable {
          cb(std::move(resp));
        });
        return;
      }
      // Dispatch to the handler; the response leg mirrors the request leg.
      auto respond = [this, src, dst,
                      cb = std::move(cb)](HttpResponse resp) mutable {
        auto resp_ptr = std::make_shared<HttpResponse>(std::move(resp));
        sim_.call_in(request_overhead_, [this, src, dst, resp_ptr,
                                         cb = std::move(cb)]() mutable {
          net_.transfer(dst, src, resp_ptr->body_bytes,
                        [resp_ptr, cb = std::move(cb)]() mutable {
                          cb(std::move(*resp_ptr));
                        });
        });
      };
      (*handler)(*req_ptr, std::move(respond));
    });
  });
}

}  // namespace sf::net
