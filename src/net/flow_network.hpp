#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "sim/simulation.hpp"

namespace sf::net {

/// Identifier of a network endpoint (a cluster node or external host).
using NodeId = std::uint32_t;

/// Identifier of an in-flight transfer.
using FlowId = std::uint64_t;

/// Point-to-point data-transfer model with global max-min fairness.
///
/// Every node has an egress and an ingress capacity (its NIC, full duplex).
/// Concurrent flows share these via progressive filling: the bottleneck
/// constraint with the smallest fair share is saturated first, its flows
/// frozen at that rate, and the procedure repeats. This captures the two
/// patterns that matter in the paper: a hub (the submit node staging files
/// to many workers shares its egress) and incast (many payloads landing on
/// one worker share its ingress).
///
/// Loopback transfers (src == dst) bypass the NIC and use a separate
/// memory-bus bandwidth.
class FlowNetwork {
 public:
  explicit FlowNetwork(sim::Simulation& sim) : sim_(sim) {}

  FlowNetwork(const FlowNetwork&) = delete;
  FlowNetwork& operator=(const FlowNetwork&) = delete;

  /// Registers a node. `bandwidth_Bps` applies to egress and ingress
  /// independently; `latency_s` is the one-way propagation delay added to
  /// every transfer that starts or ends here (both endpoints' latencies
  /// add up).
  NodeId add_node(double bandwidth_Bps, double latency_s);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  /// Starts a transfer of `bytes` from `src` to `dst`; `on_complete` fires
  /// when the last byte arrives. Zero-byte transfers pay latency only.
  FlowId transfer(NodeId src, NodeId dst, double bytes,
                  std::function<void()> on_complete);

  /// Cancels an in-flight transfer. Returns true iff it was active.
  bool cancel(FlowId id);

  [[nodiscard]] std::size_t active_flows() const { return flows_.size(); }

  /// Bytes still to deliver for a flow; -1 when inactive/unknown.
  [[nodiscard]] double remaining_bytes(FlowId id);

  /// Current rate of a flow in bytes/s; -1 when inactive.
  [[nodiscard]] double current_rate(FlowId id);

  /// One-way latency between a pair of nodes.
  [[nodiscard]] double latency(NodeId src, NodeId dst) const;

  void set_loopback_bandwidth(double Bps) { loopback_Bps_ = Bps; }

  /// Total bytes ever delivered (for data-movement accounting).
  [[nodiscard]] double total_bytes_delivered() const {
    return bytes_delivered_;
  }

 private:
  struct NodeNic {
    double bandwidth = 0;
    double latency = 0;
  };
  struct Flow {
    NodeId src = 0;
    NodeId dst = 0;
    double remaining = 0;
    double rate = 0;
    bool loopback = false;
    std::function<void()> on_complete;
  };

  void advance();
  void rebalance();
  void fire_completions();

  sim::Simulation& sim_;
  std::vector<NodeNic> nodes_;
  std::map<FlowId, Flow> flows_;  // ordered for determinism
  double loopback_Bps_ = 8e9;     // ~8 GB/s memory-bus copy
  sim::SimTime last_advance_ = 0;
  sim::EventId completion_event_ = sim::kNoEvent;
  FlowId next_id_ = 1;
  double bytes_delivered_ = 0;
};

}  // namespace sf::net
