#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/simulation.hpp"

namespace sf::net {

/// Identifier of a network endpoint (a cluster node or external host).
using NodeId = std::uint32_t;

/// Identifier of an in-flight transfer.
using FlowId = std::uint64_t;

/// Point-to-point data-transfer model with global max-min fairness.
///
/// Every node has an egress and an ingress capacity (its NIC, full duplex).
/// Concurrent flows share these via progressive filling: the bottleneck
/// constraint with the smallest fair share is saturated first, its flows
/// frozen at that rate, and the procedure repeats. This captures the two
/// patterns that matter in the paper: a hub (the submit node staging files
/// to many workers shares its egress) and incast (many payloads landing on
/// one worker share its ingress).
///
/// Loopback transfers (src == dst) bypass the NIC and use a separate
/// memory-bus bandwidth.
///
/// Flows live in a dense slot vector reused through a free-list; a FlowId
/// is a generation-checked handle ((sequence << 24) | slot), giving O(1)
/// lookup/cancel without a map. The active set is iterated in ascending-id
/// order (as the former `std::map` did), so fair-share rounds and
/// completion callbacks stay deterministic. The progressive-filling solver
/// works on flat per-node residual/live arrays (epoch-stamped, reused
/// between calls) instead of rebuilding ordered maps on every rebalance.
class FlowNetwork {
 public:
  explicit FlowNetwork(sim::Simulation& sim) : sim_(sim) {}

  FlowNetwork(const FlowNetwork&) = delete;
  FlowNetwork& operator=(const FlowNetwork&) = delete;

  /// Registers a node. `bandwidth_Bps` applies to egress and ingress
  /// independently; `latency_s` is the one-way propagation delay added to
  /// every transfer that starts or ends here (both endpoints' latencies
  /// add up).
  NodeId add_node(double bandwidth_Bps, double latency_s);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  /// Starts a transfer of `bytes` from `src` to `dst`; `on_complete` fires
  /// when the last byte arrives. Zero-byte transfers pay latency only.
  FlowId transfer(NodeId src, NodeId dst, double bytes,
                  sim::Simulation::Callback on_complete);

  /// Cancels an in-flight transfer. Returns true iff it was active.
  bool cancel(FlowId id);

  [[nodiscard]] std::size_t active_flows() const { return order_.size(); }

  /// Bytes still to deliver for a flow; -1 when inactive/unknown.
  [[nodiscard]] double remaining_bytes(FlowId id);

  /// Current rate of a flow in bytes/s; -1 when inactive.
  [[nodiscard]] double current_rate(FlowId id);

  /// One-way latency between a pair of nodes.
  [[nodiscard]] double latency(NodeId src, NodeId dst) const;

  void set_loopback_bandwidth(double Bps) { loopback_Bps_ = Bps; }

  /// Total bytes ever delivered (for data-movement accounting).
  [[nodiscard]] double total_bytes_delivered() const {
    return bytes_delivered_;
  }

  // ---- Conservation accounting (sf::check) --------------------------

  /// Total bulk bytes ever requested via transfer() (zero-byte control
  /// messages excluded).
  [[nodiscard]] double total_bytes_requested() const {
    return bytes_requested_;
  }
  /// Bytes abandoned by cancel() (the flow's remainder at cancel time).
  [[nodiscard]] double total_bytes_cancelled() const {
    return bytes_cancelled_;
  }
  /// Sub-kDoneSlack residues written off when flows complete.
  [[nodiscard]] double total_bytes_rounded() const { return bytes_rounded_; }

  /// Currently partitioned node pairs.
  [[nodiscard]] std::size_t blocked_pair_count() const {
    return blocked_pairs_.size();
  }

  /// Conservation + capacity audit for the invariant registry: requested
  /// == delivered + cancelled + rounded + Σ in-flight remaining (within
  /// FP tolerance); no negative remainders or rates; per-node active
  /// rates within NIC capacity × degrade; partitioned flows pinned at 0.
  /// Advances flow progress to `now` first (like the other readers);
  /// never schedules events or changes any rate.
  [[nodiscard]] std::vector<std::string> self_check();

  // ---- Fault injection ----------------------------------------------
  //
  // Both knobs take effect immediately: in-flight work is advanced at the
  // old rates, then every flow is re-solved under the new constraints.
  // Zero-byte control messages (latency-only) are not affected — they
  // model small packets that squeeze through; bulk data does not.

  /// Degrades (factor < 1) or restores (factor == 1) a node's NIC: its
  /// egress and ingress capacity become `bandwidth * factor`.
  void set_node_bandwidth_factor(NodeId node, double factor);

  [[nodiscard]] double node_bandwidth_factor(NodeId node) const {
    return nodes_[node].degrade;
  }

  /// Blocks (or heals) the unordered pair {a, b}: bulk flows between the
  /// two nodes are pinned at rate 0 — they neither progress nor consume
  /// NIC capacity — and resume where they left off once healed.
  void set_partition(NodeId a, NodeId b, bool blocked);

  [[nodiscard]] bool partitioned(NodeId a, NodeId b) const;

  /// Blocks (or heals) the *directed* link src → dst only: bulk flows in
  /// that direction are pinned at 0 while the reverse direction keeps
  /// flowing — the asymmetric (one-way) partition shape real networks
  /// produce (unidirectional link failures, asymmetric routing). Control
  /// planes that probe with symmetric heartbeats stay green while the
  /// data plane loses replies, which is exactly the gray failure the
  /// router's outlier detection has to catch.
  void set_partition_oneway(NodeId src, NodeId dst, bool blocked);

  /// True when the directed link src → dst is cut (by either the one-way
  /// table or a symmetric partition of the pair).
  [[nodiscard]] bool oneway_blocked(NodeId src, NodeId dst) const;

  /// Currently blocked *directed* links (one-way table only).
  [[nodiscard]] std::size_t blocked_oneway_count() const {
    return blocked_oneway_.size();
  }

  /// Gray failure: makes a node's NIC flaky — every `every_nth` bulk flow
  /// touching the node (as source or destination, counted per node in
  /// start order) is stalled for an extra `stall_s` before entering the
  /// sharing pool, modelling a link that intermittently drops frames and
  /// forces retransmission timeouts. `every_nth == 0` heals the NIC and
  /// resets its flow counter. Loopback and zero-byte control messages are
  /// unaffected, consistent with the other fault knobs.
  void set_node_flaky(NodeId node, std::uint32_t every_nth, double stall_s);

  [[nodiscard]] std::uint32_t node_flaky_every(NodeId node) const {
    return nodes_[node].flaky_every;
  }

  /// Total bulk flows ever stalled by a flaky NIC.
  [[nodiscard]] std::uint64_t flaky_stalls() const { return flaky_stalls_; }

 private:
  static constexpr unsigned kSlotBits = 24;
  static constexpr FlowId kSlotMask = (FlowId{1} << kSlotBits) - 1;
  static constexpr FlowId kNoFlow = 0;
  /// Slot value encoded into ids of latency-only (zero-byte) transfers,
  /// which never join the sharing pool.
  static constexpr std::uint32_t kDetachedSlot =
      static_cast<std::uint32_t>(kSlotMask);

  struct NodeNic {
    double bandwidth = 0;
    double latency = 0;
    double degrade = 1.0;  ///< fault-injected bandwidth multiplier
    std::uint32_t flaky_every = 0;  ///< stall every Nth flow; 0 = healthy
    double flaky_stall_s = 0;
    std::uint32_t flow_counter = 0;  ///< bulk flows seen while flaky
  };
  struct Flow {
    FlowId id = kNoFlow;  ///< Full handle occupying this slot; 0 = free.
    NodeId src = 0;
    NodeId dst = 0;
    double remaining = 0;
    double rate = 0;
    bool loopback = false;
    bool active = false;  ///< False while in the propagation-latency phase.
    sim::Simulation::Callback on_complete;
  };

  static std::uint64_t pair_key(NodeId a, NodeId b) {
    if (a > b) std::swap(a, b);
    return (std::uint64_t{a} << 32) | b;
  }

  Flow* find(FlowId id);
  std::uint32_t alloc_slot();
  void release_slot(std::uint32_t slot);
  void activate(std::uint32_t slot);
  void advance();
  void rebalance();
  void fire_completions();

  sim::Simulation& sim_;
  std::vector<NodeNic> nodes_;
  std::vector<Flow> slots_;
  std::vector<std::uint32_t> free_slots_;
  /// Active slots in ascending-id order: deterministic iteration.
  std::vector<std::uint32_t> order_;
  double loopback_Bps_ = 8e9;  // ~8 GB/s memory-bus copy
  sim::SimTime last_advance_ = 0;
  sim::EventId completion_event_ = sim::kNoEvent;
  std::uint64_t next_seq_ = 0;
  double bytes_delivered_ = 0;
  double bytes_requested_ = 0;
  double bytes_cancelled_ = 0;
  double bytes_rounded_ = 0;
  std::uint64_t flaky_stalls_ = 0;
  static std::uint64_t directed_key(NodeId src, NodeId dst) {
    return (std::uint64_t{src} << 32) | dst;
  }

  /// Sorted pair_key() values of currently partitioned node pairs.
  std::vector<std::uint64_t> blocked_pairs_;
  /// Sorted directed_key() values of one-way-blocked links.
  std::vector<std::uint64_t> blocked_oneway_;

  // Progressive-filling scratch state, epoch-stamped per node so a
  // rebalance touches only the nodes its flows traverse (no O(all nodes)
  // reset and no per-call map allocation).
  std::vector<double> egress_residual_, ingress_residual_;
  std::vector<std::uint32_t> egress_live_, ingress_live_;
  std::vector<std::uint32_t> egress_epoch_, ingress_epoch_;
  std::vector<NodeId> egress_nodes_, ingress_nodes_;
  std::uint32_t epoch_ = 0;
};

}  // namespace sf::net
