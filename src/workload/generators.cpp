#include "workload/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sf::workload {

pegasus::AbstractWorkflow make_matmul_chain(const std::string& name,
                                            int n_tasks,
                                            double matrix_bytes) {
  pegasus::AbstractWorkflow wf(name);
  wf.declare_file(name + ".m0", matrix_bytes);
  for (int i = 0; i < n_tasks; ++i) {
    const std::string fresh = name + ".b" + std::to_string(i);
    const std::string out = name + ".m" + std::to_string(i + 1);
    wf.declare_file(fresh, matrix_bytes);
    wf.declare_file(out, matrix_bytes);
    pegasus::AbstractJob job;
    job.id = name + ".t" + std::to_string(i);
    job.transformation = "matmul";
    job.uses = {{name + ".m" + std::to_string(i), pegasus::LinkType::kInput},
                {fresh, pegasus::LinkType::kInput},
                {out, pegasus::LinkType::kOutput}};
    wf.add_job(std::move(job));
  }
  return wf;
}

pegasus::AbstractWorkflow make_parallel_matmuls(const std::string& name,
                                                int n_tasks,
                                                double matrix_bytes) {
  pegasus::AbstractWorkflow wf(name);
  for (int i = 0; i < n_tasks; ++i) {
    const std::string a = name + ".a" + std::to_string(i);
    const std::string b = name + ".b" + std::to_string(i);
    const std::string out = name + ".c" + std::to_string(i);
    wf.declare_file(a, matrix_bytes);
    wf.declare_file(b, matrix_bytes);
    wf.declare_file(out, matrix_bytes);
    pegasus::AbstractJob job;
    job.id = name + ".t" + std::to_string(i);
    job.transformation = "matmul";
    job.uses = {{a, pegasus::LinkType::kInput},
                {b, pegasus::LinkType::kInput},
                {out, pegasus::LinkType::kOutput}};
    wf.add_job(std::move(job));
  }
  return wf;
}

pegasus::AbstractWorkflow make_resized_chain(const std::string& name,
                                             int n_stages, int split_factor,
                                             double matrix_bytes) {
  if (split_factor < 1) {
    throw std::invalid_argument("make_resized_chain: split_factor >= 1");
  }
  pegasus::AbstractWorkflow wf(name);
  wf.declare_file(name + ".m0", matrix_bytes);
  const double part_bytes = matrix_bytes / split_factor;
  for (int stage = 0; stage < n_stages; ++stage) {
    const std::string prev = name + ".m" + std::to_string(stage);
    const std::string fresh = name + ".b" + std::to_string(stage);
    const std::string out = name + ".m" + std::to_string(stage + 1);
    wf.declare_file(fresh, matrix_bytes);
    wf.declare_file(out, matrix_bytes);

    // Row-block partial products, each consuming the full operands but
    // producing 1/split of the result.
    pegasus::AbstractJob concat;
    concat.id = name + ".join" + std::to_string(stage);
    concat.transformation = "concat";
    for (int part = 0; part < split_factor; ++part) {
      const std::string partial = name + ".p" + std::to_string(stage) +
                                  "_" + std::to_string(part);
      wf.declare_file(partial, part_bytes);
      pegasus::AbstractJob job;
      job.id = name + ".t" + std::to_string(stage) + "_" +
               std::to_string(part);
      job.transformation = split_factor == 1 ? "matmul" : "matmul_part";
      job.uses = {{prev, pegasus::LinkType::kInput},
                  {fresh, pegasus::LinkType::kInput},
                  {partial, pegasus::LinkType::kOutput}};
      wf.add_job(std::move(job));
      concat.uses.push_back({partial, pegasus::LinkType::kInput});
    }
    concat.uses.push_back({out, pegasus::LinkType::kOutput});
    wf.add_job(std::move(concat));
  }
  return wf;
}

pegasus::Transformation make_part_transformation(
    const pegasus::Transformation& matmul, int split_factor) {
  pegasus::Transformation part = matmul;
  part.name = "matmul_part";
  part.work_coreseconds = matmul.work_coreseconds / split_factor;
  return part;
}

pegasus::Transformation make_concat_transformation(
    const pegasus::Transformation& matmul) {
  pegasus::Transformation concat = matmul;
  concat.name = "concat";
  concat.work_coreseconds = 0.02;  // memcpy of the row blocks
  concat.startup_s = matmul.startup_s;
  return concat;
}

pegasus::AbstractWorkflow make_montage_like(const std::string& name,
                                            int width, double tile_bytes) {
  if (width < 2) {
    throw std::invalid_argument("make_montage_like: width >= 2");
  }
  pegasus::AbstractWorkflow wf(name);
  auto file = [&name](const std::string& stem, int i = -1) {
    return i < 0 ? name + "." + stem
                 : name + "." + stem + std::to_string(i);
  };

  // Level 1: per-tile projection.
  for (int i = 0; i < width; ++i) {
    wf.declare_file(file("raw", i), tile_bytes);
    wf.declare_file(file("proj", i), tile_bytes);
    pegasus::AbstractJob job;
    job.id = file("project", i);
    job.transformation = "project";
    job.uses = {{file("raw", i), pegasus::LinkType::kInput},
                {file("proj", i), pegasus::LinkType::kOutput}};
    wf.add_job(std::move(job));
  }
  // Level 2: pairwise overlap differences.
  for (int i = 0; i + 1 < width; ++i) {
    wf.declare_file(file("diff", i), tile_bytes / 8);
    pegasus::AbstractJob job;
    job.id = file("mdiff", i);
    job.transformation = "diff";
    job.uses = {{file("proj", i), pegasus::LinkType::kInput},
                {file("proj", i + 1), pegasus::LinkType::kInput},
                {file("diff", i), pegasus::LinkType::kOutput}};
    wf.add_job(std::move(job));
  }
  // Level 3: global plane fit over every difference.
  wf.declare_file(file("fitplane"), tile_bytes / 16);
  {
    pegasus::AbstractJob job;
    job.id = file("fit");
    job.transformation = "fit";
    for (int i = 0; i + 1 < width; ++i) {
      job.uses.push_back({file("diff", i), pegasus::LinkType::kInput});
    }
    job.uses.push_back({file("fitplane"), pegasus::LinkType::kOutput});
    wf.add_job(std::move(job));
  }
  // Level 4: per-tile background correction.
  for (int i = 0; i < width; ++i) {
    wf.declare_file(file("bg", i), tile_bytes);
    pegasus::AbstractJob job;
    job.id = file("background", i);
    job.transformation = "background";
    job.uses = {{file("proj", i), pegasus::LinkType::kInput},
                {file("fitplane"), pegasus::LinkType::kInput},
                {file("bg", i), pegasus::LinkType::kOutput}};
    wf.add_job(std::move(job));
  }
  // Level 5: the mosaic.
  wf.declare_file(file("mosaic.out"), tile_bytes * width / 2);
  {
    pegasus::AbstractJob job;
    job.id = file("mosaic");
    job.transformation = "mosaic";
    for (int i = 0; i < width; ++i) {
      job.uses.push_back({file("bg", i), pegasus::LinkType::kInput});
    }
    job.uses.push_back({file("mosaic.out"), pegasus::LinkType::kOutput});
    wf.add_job(std::move(job));
  }
  return wf;
}

void add_montage_transformations(pegasus::TransformationCatalog& catalog,
                                 const pegasus::Transformation& base) {
  auto derived = [&base](const std::string& tname, double work_scale) {
    pegasus::Transformation t = base;
    t.name = tname;
    t.work_coreseconds = base.work_coreseconds * work_scale;
    return t;
  };
  catalog.add(derived("project", 1.0));
  catalog.add(derived("diff", 0.4));
  catalog.add(derived("fit", 0.6));
  catalog.add(derived("background", 0.8));
  catalog.add(derived("mosaic", 1.5));
}

void seed_initial_inputs(const pegasus::AbstractWorkflow& workflow,
                         storage::Volume& staging,
                         storage::ReplicaCatalog& replicas) {
  for (const auto& lfn : workflow.initial_inputs()) {
    staging.put_instant({lfn, workflow.file_bytes(lfn)});
    replicas.register_replica(lfn, staging);
  }
}

std::map<std::string, pegasus::JobMode> assign_modes(
    const std::vector<const pegasus::AbstractWorkflow*>& workflows,
    const metrics::MixPoint& mix, sim::Rng& rng) {
  mix.validate();
  std::vector<std::string> task_ids;
  for (const auto* wf : workflows) {
    for (const auto& job : wf->jobs()) task_ids.push_back(job.id);
  }
  const std::size_t total = task_ids.size();

  // Exact proportional counts (largest remainder), then a seeded shuffle
  // decides which concrete task gets which mode.
  const double exact_native = mix.native * static_cast<double>(total);
  const double exact_container = mix.container * static_cast<double>(total);
  auto n_native = static_cast<std::size_t>(std::floor(exact_native));
  auto n_container = static_cast<std::size_t>(std::floor(exact_container));
  // Distribute the rounding remainder: native first, then container.
  while (n_native + n_container < total &&
         exact_native - static_cast<double>(n_native) >= 0.5) {
    ++n_native;
  }
  while (n_native + n_container < total &&
         exact_container - static_cast<double>(n_container) >= 0.5) {
    ++n_container;
  }
  // Whatever remains is serverless (absorbs all residual rounding).

  rng.shuffle(task_ids.begin(), task_ids.end());
  std::map<std::string, pegasus::JobMode> modes;
  std::size_t index = 0;
  for (; index < n_native; ++index) {
    modes[task_ids[index]] = pegasus::JobMode::kNative;
  }
  for (; index < n_native + n_container; ++index) {
    modes[task_ids[index]] = pegasus::JobMode::kContainer;
  }
  for (; index < total; ++index) {
    modes[task_ids[index]] = pegasus::JobMode::kServerless;
  }
  return modes;
}

std::map<pegasus::JobMode, int> mode_histogram(
    const std::map<std::string, pegasus::JobMode>& modes) {
  std::map<pegasus::JobMode, int> hist;
  for (const auto& [id, mode] : modes) ++hist[mode];
  return hist;
}

}  // namespace sf::workload
