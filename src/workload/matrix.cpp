#include "workload/matrix.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace sf::workload {

Matrix Matrix::random(std::size_t n, sim::Rng& rng) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n * n; ++i) {
    m.data_[i] = static_cast<std::int32_t>(rng.uniform_int(-100, 100));
  }
  return m;
}

Matrix Matrix::multiply(const Matrix& other) const {
  if (cols_ != other.rows_) {
    throw std::invalid_argument("Matrix::multiply: dimension mismatch");
  }
  Matrix out(rows_, other.cols_);
  constexpr std::size_t kBlock = 64;
  for (std::size_t ii = 0; ii < rows_; ii += kBlock) {
    const std::size_t i_end = std::min(ii + kBlock, rows_);
    for (std::size_t kk = 0; kk < cols_; kk += kBlock) {
      const std::size_t k_end = std::min(kk + kBlock, cols_);
      for (std::size_t i = ii; i < i_end; ++i) {
        for (std::size_t k = kk; k < k_end; ++k) {
          const std::int64_t a = data_[i * cols_ + k];
          if (a == 0) continue;
          const std::size_t row = k * other.cols_;
          for (std::size_t j = 0; j < other.cols_; ++j) {
            out.data_[i * other.cols_ + j] += static_cast<std::int32_t>(
                a * other.data_[row + j]);
          }
        }
      }
    }
  }
  return out;
}

double measure_matmul_seconds(std::size_t n, sim::Rng& rng) {
  const Matrix a = Matrix::random(n, rng);
  const Matrix b = Matrix::random(n, rng);
  const auto start = std::chrono::steady_clock::now();
  const Matrix c = a.multiply(b);
  const auto end = std::chrono::steady_clock::now();
  // Keep the result alive so the multiply is not optimized away.
  volatile std::int32_t sink = c.at(0, 0);
  (void)sink;
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace sf::workload
