#pragma once

#include <map>
#include <string>
#include <vector>

#include "metrics/ternary.hpp"
#include "pegasus/abstract_workflow.hpp"
#include "pegasus/planner.hpp"
#include "sim/random.hpp"
#include "storage/replica_catalog.hpp"
#include "storage/volume.hpp"

namespace sf::workload {

/// The paper's Figure 3 workflow: a chain of `n_tasks` matrix
/// multiplications, where task i multiplies the previous result with a
/// fresh input matrix and writes the product for task i+1.
/// File names are prefixed with the workflow name so concurrent instances
/// (Figure 4) do not collide.
pegasus::AbstractWorkflow make_matmul_chain(const std::string& name,
                                            int n_tasks,
                                            double matrix_bytes);

/// The Figure 2 workload: `n_tasks` independent matmul tasks fanned out
/// from shared inputs (fully parallel once stage-in completes).
pegasus::AbstractWorkflow make_parallel_matmuls(const std::string& name,
                                                int n_tasks,
                                                double matrix_bytes);

/// §IX-C future work, implemented: task resizing. The same chain as
/// `make_matmul_chain`, but each matmul stage is split into
/// `split_factor` finer-grained row-block tasks ("matmul_part", each
/// carrying 1/split of the work and of the output bytes) joined by a
/// cheap "concat" task. Finer tasks expose more parallelism per stage —
/// the fit with serverless allocation the paper hypothesizes — at the
/// price of more per-task scheduling overhead.
pegasus::AbstractWorkflow make_resized_chain(const std::string& name,
                                             int n_stages, int split_factor,
                                             double matrix_bytes);

/// Transformation-catalog entries used by resized chains, derived from
/// the full-size matmul entry.
pegasus::Transformation make_part_transformation(
    const pegasus::Transformation& matmul, int split_factor);
pegasus::Transformation make_concat_transformation(
    const pegasus::Transformation& matmul);

/// §IX-A future work, implemented: a complex multi-level scientific
/// workflow in the style of Montage. `width` parallel projections feed
/// pairwise difference fits, a global plane fit joins them, per-tile
/// background corrections fan out again, and a final mosaic joins
/// everything:
///
///   project×W → diff×(W-1) → fit → background×W → mosaic
///
/// Uses transformations "project", "diff", "fit", "background", "mosaic"
/// (see add_montage_transformations).
pegasus::AbstractWorkflow make_montage_like(const std::string& name,
                                            int width, double tile_bytes);

/// Registers the five Montage transformation entries, with costs derived
/// from the calibrated matmul entry (same order of magnitude per task).
void add_montage_transformations(pegasus::TransformationCatalog& catalog,
                                 const pegasus::Transformation& base);

/// Seeds every workflow-initial input in `staging` and registers it in
/// the replica catalog (the paper stores the input matrices on disk on
/// the submit node before each run).
void seed_initial_inputs(const pegasus::AbstractWorkflow& workflow,
                         storage::Volume& staging,
                         storage::ReplicaCatalog& replicas);

/// Randomly assigns an execution mode to every task so that the workflow
/// set realizes the given mix fractions exactly (the paper: "the
/// distribution of tasks among these platforms is determined randomly
/// before initiating the 10 workflows"). Deterministic under a seed.
std::map<std::string, pegasus::JobMode> assign_modes(
    const std::vector<const pegasus::AbstractWorkflow*>& workflows,
    const metrics::MixPoint& mix, sim::Rng& rng);

/// Count of tasks per mode in an assignment (sanity checks / reporting).
std::map<pegasus::JobMode, int> mode_histogram(
    const std::map<std::string, pegasus::JobMode>& modes);

}  // namespace sf::workload
