#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "knative/serving.hpp"
#include "sim/random.hpp"

namespace sf::workload {

/// One request arrival in an open-loop schedule: issued at `time` (seconds
/// after the engine starts) by `user` against `service` — regardless of
/// whether the user's previous request has completed. Open-loop load is
/// what distinguishes "N independent users" from a closed request loop:
/// a slow service does not throttle its own offered load, so queues
/// actually build.
struct Arrival {
  double time = 0;
  int user = 0;
  std::string service;
};

/// Parses a whitespace-separated arrival trace: one `time user service`
/// triple per line; blank lines and lines starting with '#' are skipped.
/// Times must be non-negative and non-decreasing. Throws on malformed
/// input.
std::vector<Arrival> load_arrival_trace(std::istream& in);

/// Configuration for the open-loop traffic engine.
struct OpenLoopConfig {
  /// Independent users. Each draws its own Poisson arrival process from a
  /// dedicated per-user stream (splitmix-derived from `seed`), so user k's
  /// arrival times are a pure function of (seed, k) — independent of event
  /// interleaving and of every other user.
  int users = 1;
  double rate_hz = 1.0;  ///< per-user arrival rate (requests/second)
  /// Arrivals stop at this sim-time offset from start(); in-flight
  /// requests still drain afterwards.
  double horizon_s = 60.0;
  /// Hard cap on total issued requests across all users (0 = unlimited).
  std::uint64_t max_requests = 0;
  /// Target services; each arrival picks one uniformly from the user's
  /// stream. A single entry means every request hits that service.
  std::vector<std::string> services;
  /// Request shape handed to the default request factory: `work_s`
  /// core-seconds in the pod (body = double, the compute-handler
  /// convention), `payload_bytes` on the wire each way.
  double work_s = 0.05;
  double payload_bytes = 490000;
  std::uint64_t seed = 42;
  /// When non-empty, replaces the Poisson processes entirely: arrivals
  /// replay this schedule (times relative to start()). `users`, `rate_hz`
  /// and `horizon_s` are ignored; `max_requests` still applies.
  std::vector<Arrival> trace;
  /// Keep per-request issue times and latencies (percentiles in tests and
  /// the scale sweep). Off by default: at 10^5+ requests the counters are
  /// usually all a caller wants.
  bool record_requests = false;
  /// Optional override for building the HTTP request of an arrival. The
  /// per-user stream is passed so randomized payloads stay deterministic.
  std::function<net::HttpRequest(const Arrival&, sim::Rng&)> request_factory;
};

/// Open-loop traffic engine: N independent users firing requests at
/// KServices through the ingress gateway. Arrival times never depend on
/// completions (the open-loop property), and every stochastic choice draws
/// from per-user streams, so the whole schedule is a pure function of the
/// config — bit-identical across runs and across SweepRunner threads.
class OpenLoopEngine {
 public:
  OpenLoopEngine(knative::KnativeServing& serving, net::NodeId client,
                 OpenLoopConfig config);

  OpenLoopEngine(const OpenLoopEngine&) = delete;
  OpenLoopEngine& operator=(const OpenLoopEngine&) = delete;

  /// Schedules every user's first arrival (or the trace replay) starting
  /// at the current sim time. Call once; the caller drives the simulation.
  void start();

  struct Stats {
    std::uint64_t issued = 0;
    std::uint64_t completed = 0;
    std::uint64_t ok = 0;      ///< 2xx responses
    std::uint64_t errors = 0;  ///< everything else
    double latency_sum_s = 0;
    double latency_max_s = 0;
    /// Sim time of the last response (0 when none arrived yet): with
    /// `issued == completed` this is the drain point — the engine's
    /// makespan measured from start().
    double last_completion_time = 0;
  };

  [[nodiscard]] const Stats& stats() const { return stats_; }
  /// True once the arrival schedule is exhausted (horizon, cap or trace
  /// end reached) AND every issued request has been answered — the
  /// condition sweep drivers step the simulation toward.
  [[nodiscard]] bool quiesced() const {
    return started_ && pending_arrivals_ == 0 &&
           stats_.completed == stats_.issued;
  }

  /// Issue log (requires `record_requests`): one entry per request in
  /// issue order, absolute sim times.
  [[nodiscard]] const std::vector<Arrival>& issued_log() const {
    return issued_log_;
  }
  /// Completed-request latencies, ascending (requires `record_requests`).
  [[nodiscard]] std::vector<double> sorted_latencies() const;

  /// Order-insensitive digest of the engine's outcome: counters plus the
  /// bit patterns of the latency aggregates, splitmix-folded. Two runs
  /// with equal configs must produce equal fingerprints — the hook the
  /// fuzzer and the scale sweep fold into their case digests.
  [[nodiscard]] std::uint64_t fingerprint() const;

 private:
  struct User {
    sim::Rng rng{0};
    std::uint64_t issued = 0;
  };

  void issue(const Arrival& arrival);
  void schedule_next_poisson(int user);
  void schedule_trace_replay(std::size_t index);
  [[nodiscard]] bool under_cap() const {
    return config_.max_requests == 0 || stats_.issued < config_.max_requests;
  }

  knative::KnativeServing& serving_;
  sim::Simulation& sim_;
  net::NodeId client_;
  OpenLoopConfig config_;
  std::vector<User> users_;
  double start_time_ = 0;
  bool started_ = false;
  /// Arrival events currently scheduled in the engine's future (at most
  /// one per Poisson user, one for the trace cursor): quiesce gating.
  std::uint64_t pending_arrivals_ = 0;
  Stats stats_;
  std::vector<Arrival> issued_log_;
  std::vector<double> latencies_;
  /// Liveness token captured (weakly) by every in-flight responder: a
  /// response arriving after the engine is destroyed is dropped instead of
  /// scribbling over freed stats.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace sf::workload
