#include "workload/open_loop.hpp"

#include <algorithm>
#include <bit>
#include <istream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "fault/splitmix.hpp"

namespace sf::workload {

std::vector<Arrival> load_arrival_trace(std::istream& in) {
  std::vector<Arrival> out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields(line);
    Arrival a;
    if (!(fields >> a.time >> a.user >> a.service)) {
      throw std::invalid_argument("arrival trace line " +
                                  std::to_string(lineno) +
                                  ": expected 'time user service'");
    }
    if (a.time < 0) {
      throw std::invalid_argument("arrival trace line " +
                                  std::to_string(lineno) + ": negative time");
    }
    if (!out.empty() && a.time < out.back().time) {
      throw std::invalid_argument("arrival trace line " +
                                  std::to_string(lineno) +
                                  ": times must be non-decreasing");
    }
    out.push_back(std::move(a));
  }
  return out;
}

OpenLoopEngine::OpenLoopEngine(knative::KnativeServing& serving,
                               net::NodeId client, OpenLoopConfig config)
    : serving_(serving),
      sim_(serving.kube().cluster().sim()),
      client_(client),
      config_(std::move(config)) {
  if (config_.trace.empty()) {
    if (config_.users <= 0) {
      throw std::invalid_argument("OpenLoopEngine: users must be positive");
    }
    if (config_.rate_hz <= 0) {
      throw std::invalid_argument("OpenLoopEngine: rate_hz must be positive");
    }
    if (config_.services.empty()) {
      throw std::invalid_argument(
          "OpenLoopEngine: Poisson mode needs at least one service");
    }
  }
  int streams = config_.users;
  if (!config_.trace.empty()) {
    int max_user = 0;
    for (const Arrival& a : config_.trace) {
      if (a.user < 0) {
        throw std::invalid_argument("OpenLoopEngine: negative trace user");
      }
      max_user = std::max(max_user, a.user);
    }
    streams = max_user + 1;
  }
  users_.resize(static_cast<std::size_t>(std::max(streams, 1)));
  // Per-user streams forked from the base seed: user k's draws are a pure
  // function of (seed, k), untouched by other users or by service timing.
  for (std::size_t k = 0; k < users_.size(); ++k) {
    users_[k].rng.reseed(fault::SplitMix64::mix(config_.seed, k));
  }
}

void OpenLoopEngine::start() {
  if (started_) throw std::logic_error("OpenLoopEngine: already started");
  started_ = true;
  start_time_ = sim_.now();
  if (config_.record_requests) {
    issued_log_.reserve(config_.max_requests != 0
                            ? config_.max_requests
                            : config_.trace.size());
    latencies_.reserve(issued_log_.capacity());
  }
  if (!config_.trace.empty()) {
    schedule_trace_replay(0);
    return;
  }
  for (int u = 0; u < config_.users; ++u) schedule_next_poisson(u);
}

void OpenLoopEngine::schedule_next_poisson(int user) {
  auto& u = users_[static_cast<std::size_t>(user)];
  const double gap = u.rng.exponential(1.0 / config_.rate_hz);
  const double next_rel = (sim_.now() - start_time_) + gap;
  if (next_rel > config_.horizon_s) return;  // open loop ends at the horizon
  ++pending_arrivals_;
  sim_.call_in(gap, [this, user] {
    --pending_arrivals_;
    Arrival a;
    a.time = sim_.now() - start_time_;
    a.user = user;
    a.service = config_.services.size() == 1
                    ? config_.services.front()
                    : users_[static_cast<std::size_t>(user)].rng.pick(
                          config_.services);
    if (!under_cap()) return;  // cap reached: this user's stream ends
    issue(a);
    schedule_next_poisson(user);
  });
}

void OpenLoopEngine::schedule_trace_replay(std::size_t index) {
  if (index >= config_.trace.size()) return;
  const Arrival& next = config_.trace[index];
  const double at = start_time_ + next.time;
  ++pending_arrivals_;
  sim_.call_in(std::max(0.0, at - sim_.now()), [this, index] {
    --pending_arrivals_;
    if (under_cap()) {
      Arrival a = config_.trace[index];
      a.time = sim_.now() - start_time_;
      issue(a);
    }
    schedule_trace_replay(index + 1);
  });
}

void OpenLoopEngine::issue(const Arrival& arrival) {
  auto& user = users_[static_cast<std::size_t>(
      std::min<int>(arrival.user, static_cast<int>(users_.size()) - 1))];
  net::HttpRequest req;
  if (config_.request_factory) {
    req = config_.request_factory(arrival, user.rng);
  } else {
    req.path = "/invoke";
    req.body = config_.work_s;  // compute-handler convention: body = work
    req.body_bytes = config_.payload_bytes;
  }
  ++stats_.issued;
  ++user.issued;
  if (config_.record_requests) {
    Arrival logged = arrival;
    logged.time = sim_.now();  // absolute in the log
    issued_log_.push_back(std::move(logged));
  }
  const double issued_at = sim_.now();
  std::weak_ptr<bool> alive = alive_;
  serving_.invoke(client_, arrival.service, std::move(req),
                  [this, issued_at, alive](net::HttpResponse resp) {
                    if (alive.expired()) return;  // engine destroyed
                    const double latency = sim_.now() - issued_at;
                    ++stats_.completed;
                    if (resp.ok()) {
                      ++stats_.ok;
                    } else {
                      ++stats_.errors;
                    }
                    stats_.latency_sum_s += latency;
                    stats_.latency_max_s =
                        std::max(stats_.latency_max_s, latency);
                    stats_.last_completion_time = sim_.now();
                    if (config_.record_requests) {
                      latencies_.push_back(latency);
                    }
                  });
}

std::vector<double> OpenLoopEngine::sorted_latencies() const {
  std::vector<double> out = latencies_;
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t OpenLoopEngine::fingerprint() const {
  std::uint64_t fp = 0x09E210CCull;  // "open loop"
  const auto fold = [&fp](std::uint64_t v) {
    fp = fault::SplitMix64::mix(fp, v);
  };
  fold(stats_.issued);
  fold(stats_.completed);
  fold(stats_.ok);
  fold(stats_.errors);
  fold(std::bit_cast<std::uint64_t>(stats_.latency_sum_s));
  fold(std::bit_cast<std::uint64_t>(stats_.latency_max_s));
  fold(std::bit_cast<std::uint64_t>(stats_.last_completion_time));
  return fp;
}

}  // namespace sf::workload
