#include "workload/scale.hpp"

#include <stdexcept>

namespace sf::workload {

ScaledTopology make_scaled_topology(sim::Simulation& sim,
                                    std::uint32_t node_count,
                                    std::uint32_t rack_count,
                                    const cluster::NodeSpec& base) {
  if (node_count < 2) {
    throw std::invalid_argument(
        "make_scaled_topology: need a head node plus at least one worker");
  }
  ScaledTopology topo;
  topo.cluster = cluster::make_uniform_cluster(sim, node_count, base);
  topo.racks = cluster::RackMap::blocks(node_count, rack_count);
  topo.workers.reserve(node_count - 1);
  for (std::uint32_t i = 1; i < node_count; ++i) {
    topo.workers.push_back(&topo.cluster->node(i));
  }
  return topo;
}

pegasus::AbstractWorkflow make_layered_matmuls(const std::string& name,
                                               int n_layers, int width,
                                               double matrix_bytes) {
  if (n_layers < 1) {
    throw std::invalid_argument("make_layered_matmuls: n_layers >= 1");
  }
  if (width < 2) {
    throw std::invalid_argument("make_layered_matmuls: width >= 2");
  }
  pegasus::AbstractWorkflow wf(name);
  auto out_file = [&name](int layer, int i) {
    return name + ".o" + std::to_string(layer) + "_" + std::to_string(i);
  };
  // Layer 0 operands: fresh input matrices, like the paper's chains.
  for (int i = 0; i < width; ++i) {
    wf.declare_file(name + ".a" + std::to_string(i), matrix_bytes);
    wf.declare_file(name + ".b" + std::to_string(i), matrix_bytes);
  }
  for (int layer = 0; layer < n_layers; ++layer) {
    for (int i = 0; i < width; ++i) {
      const std::string out = out_file(layer, i);
      wf.declare_file(out, matrix_bytes);
      pegasus::AbstractJob job;
      job.id = name + ".t" + std::to_string(layer) + "_" + std::to_string(i);
      job.transformation = "matmul";
      if (layer == 0) {
        job.uses = {{name + ".a" + std::to_string(i),
                     pegasus::LinkType::kInput},
                    {name + ".b" + std::to_string(i),
                     pegasus::LinkType::kInput},
                    {out, pegasus::LinkType::kOutput}};
      } else {
        job.uses = {{out_file(layer - 1, i), pegasus::LinkType::kInput},
                    {out_file(layer - 1, (i + 1) % width),
                     pegasus::LinkType::kInput},
                    {out, pegasus::LinkType::kOutput}};
      }
      wf.add_job(std::move(job));
    }
  }
  return wf;
}

}  // namespace sf::workload
