#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/rack_map.hpp"
#include "pegasus/abstract_workflow.hpp"

namespace sf::workload {

/// A cluster scaled past the paper's 4-VM testbed, with an explicit rack
/// topology. Node 0 is the head (submit node / control plane / gateway —
/// always rack 0 per RackMap::blocks); everything else is a worker.
struct ScaledTopology {
  std::unique_ptr<cluster::Cluster> cluster;
  cluster::RackMap racks;
  std::vector<cluster::Node*> workers;  ///< nodes 1..N-1
};

/// Builds a homogeneous `node_count`-node cluster split into `rack_count`
/// contiguous racks via RackMap::blocks — the deterministic topology the
/// scale regime (1k–10k nodes) runs on. `node_count` must be at least 2
/// (a head plus one worker) and `rack_count` in [1, node_count].
ScaledTopology make_scaled_topology(sim::Simulation& sim,
                                    std::uint32_t node_count,
                                    std::uint32_t rack_count,
                                    const cluster::NodeSpec& base = {});

/// A matmul DAG scaled past the paper's 10-task chains: `n_layers` layers
/// of `width` parallel matmuls, where task (l, i) consumes the outputs of
/// layer l−1's tasks i and (i+1) mod width (layer 0 consumes fresh input
/// matrices). The wrap-around stencil gives every layer genuine cross-task
/// dependencies — unlike `width` independent chains — while keeping the
/// per-task fan-in at the matmul transformation's two operands. Total
/// tasks = n_layers × width (10k = 100 × 100). Requires width ≥ 2.
pegasus::AbstractWorkflow make_layered_matmuls(const std::string& name,
                                               int n_layers, int width,
                                               double matrix_bytes);

}  // namespace sf::workload
