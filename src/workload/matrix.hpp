#pragma once

#include <cstdint>
#include <vector>

#include "sim/random.hpp"

namespace sf::workload {

/// A dense integer matrix — the paper's workload unit: 350×350 matrices of
/// integers in [-100, 100], multiplied pairwise. This kernel is actually
/// computed (examples, calibration, tests); the DES models only its cost.
class Matrix {
 public:
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

  /// The paper's random matrix: entries uniform in [-100, 100].
  static Matrix random(std::size_t n, sim::Rng& rng);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] std::int32_t at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  std::int32_t& at(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }

  /// Serialized size (int32 elements) — what travels in HTTP payloads and
  /// staged files.
  [[nodiscard]] double bytes() const {
    return static_cast<double>(rows_ * cols_ * sizeof(std::int32_t));
  }

  /// Cache-blocked product; requires cols() == other.rows().
  [[nodiscard]] Matrix multiply(const Matrix& other) const;

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::int32_t> data_;
};

/// The paper's matrix order (350) and payload size (≈490 kB).
inline constexpr std::size_t kPaperMatrixOrder = 350;
inline constexpr double kPaperMatrixBytes =
    kPaperMatrixOrder * kPaperMatrixOrder * sizeof(std::int32_t);

/// Wall-clock seconds to multiply two n×n matrices with this kernel on the
/// current host — used to sanity-check the calibrated task cost.
double measure_matmul_seconds(std::size_t n, sim::Rng& rng);

}  // namespace sf::workload
