#include "catalog/catalog.hpp"

#include <utility>
#include <vector>

namespace sf::catalog {

const char* to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

CatalogClient::CatalogClient(sim::Simulation& sim, CatalogService& service,
                             net::NodeId client_net, CatalogClientConfig cfg)
    : sim_(sim), service_(service), client_net_(client_net), cfg_(cfg) {}

void CatalogClient::lookup(const std::string& lfn, LookupCallback on_done) {
  ++lookups_;
  if (!cfg_.cache_enabled) {
    // Naive arm: every resolution is its own service call — no cache, no
    // coalescing. Retry and breaker still apply.
    direct_fetch(lfn, 0, std::move(on_done));
    return;
  }
  const double now = sim_.now();
  auto cached = cache_.find(lfn);
  if (cached != cache_.end() && now < cached->second.expires_at) {
    // Fresh entry (positive or negative): answer locally, synchronously.
    if (cached->second.volume != nullptr) {
      ++cache_hits_;
    } else {
      ++negative_hits_;
    }
    on_done(true, cached->second.volume);
    return;
  }
  // Single-flight: a fetch already out for this key absorbs the miss.
  auto flight = in_flight_.find(lfn);
  if (flight != in_flight_.end()) {
    ++coalesced_;
    flight->second.waiters.push_back(std::move(on_done));
    return;
  }
  in_flight_[lfn].waiters.push_back(std::move(on_done));
  start_fetch(lfn, 0);
}

void CatalogClient::register_replica(const std::string& lfn,
                                     storage::Volume& volume,
                                     std::function<void(bool ok)> on_done) {
  register_attempt(lfn, &volume, 0, std::move(on_done));
}

void CatalogClient::invalidate(const std::string& lfn) {
  cache_.erase(lfn);
}

bool CatalogClient::breaker_blocking() const {
  if (!cfg_.breaker_enabled) return false;
  if (breaker_ == BreakerState::kHalfOpen) return half_open_probe_out_;
  if (breaker_ == BreakerState::kOpen) {
    return sim_.now() < breaker_open_until_;
  }
  return false;
}

void CatalogClient::breaker_on_success() {
  consecutive_failures_ = 0;
  if (breaker_ != BreakerState::kClosed) {
    // The half-open probe came back: service is healthy again.
    breaker_ = BreakerState::kClosed;
    half_open_probe_out_ = false;
  }
}

void CatalogClient::breaker_on_failure() {
  ++consecutive_failures_;
  if (!cfg_.breaker_enabled) return;
  if (breaker_ == BreakerState::kHalfOpen) {
    // Probe failed: back to open for another full window.
    breaker_ = BreakerState::kOpen;
    half_open_probe_out_ = false;
    breaker_open_until_ = sim_.now() + cfg_.breaker_open_s;
    ++breaker_opens_;
    return;
  }
  if (breaker_ == BreakerState::kClosed &&
      consecutive_failures_ >= cfg_.breaker_failures) {
    breaker_ = BreakerState::kOpen;
    breaker_open_until_ = sim_.now() + cfg_.breaker_open_s;
    ++breaker_opens_;
  }
}

void CatalogClient::start_fetch(const std::string& lfn, int attempt) {
  if (breaker_blocking()) {
    degrade(lfn);
    return;
  }
  if (cfg_.breaker_enabled && breaker_ == BreakerState::kOpen) {
    // Open window elapsed: promote this fetch to the half-open probe.
    breaker_ = BreakerState::kHalfOpen;
    half_open_probe_out_ = true;
  }
  if (breaker_ == BreakerState::kOpen) ++calls_while_open_;
  ++service_calls_;
  service_.lookup_replica(
      client_net_, lfn, [this, lfn, attempt](CatalogReply reply) {
        if (reply.ok) {
          breaker_on_success();
          settle(lfn, true, reply.volume);
          return;
        }
        breaker_on_failure();
        if (breaker_blocking() || cfg_.retry.exhausted(attempt)) {
          degrade(lfn);
          return;
        }
        ++retries_;
        const double delay =
            cfg_.retry.backoff_jittered(attempt, sim_.rng());
        sim_.call_in(delay,
                     [this, lfn, attempt] { start_fetch(lfn, attempt + 1); });
      });
}

void CatalogClient::settle(const std::string& lfn, bool ok,
                           storage::Volume* vol) {
  if (ok) {
    Entry entry;
    entry.volume = vol;
    entry.expires_at =
        sim_.now() + (vol != nullptr ? cfg_.ttl_s : cfg_.negative_ttl_s);
    cache_[lfn] = entry;
  }
  auto flight = in_flight_.find(lfn);
  if (flight == in_flight_.end()) return;
  std::vector<LookupCallback> waiters = std::move(flight->second.waiters);
  in_flight_.erase(flight);
  for (auto& waiter : waiters) waiter(ok, vol);
}

void CatalogClient::degrade(const std::string& lfn) {
  // Stale-while-revalidate: an expired positive entry stands in for the
  // unreachable service. Its expiry is NOT extended — the next miss on
  // this key tries the service again (the revalidation).
  storage::Volume* stale = nullptr;
  if (cfg_.stale_while_revalidate) {
    auto cached = cache_.find(lfn);
    if (cached != cache_.end() && cached->second.volume != nullptr) {
      stale = cached->second.volume;
    }
  }
  auto flight = in_flight_.find(lfn);
  if (flight == in_flight_.end()) return;
  std::vector<LookupCallback> waiters = std::move(flight->second.waiters);
  in_flight_.erase(flight);
  for (auto& waiter : waiters) {
    if (stale != nullptr) {
      ++stale_served_;
      waiter(true, stale);
    } else {
      ++errors_;
      waiter(false, nullptr);
    }
  }
}

void CatalogClient::direct_fetch(const std::string& lfn, int attempt,
                                 LookupCallback on_done) {
  if (breaker_blocking()) {
    ++errors_;
    on_done(false, nullptr);
    return;
  }
  if (cfg_.breaker_enabled && breaker_ == BreakerState::kOpen) {
    breaker_ = BreakerState::kHalfOpen;
    half_open_probe_out_ = true;
  }
  if (breaker_ == BreakerState::kOpen) ++calls_while_open_;
  ++service_calls_;
  service_.lookup_replica(
      client_net_, lfn,
      [this, lfn, attempt,
       on_done = std::move(on_done)](CatalogReply reply) mutable {
        if (reply.ok) {
          breaker_on_success();
          on_done(true, reply.volume);
          return;
        }
        breaker_on_failure();
        if (breaker_blocking() || cfg_.retry.exhausted(attempt)) {
          ++errors_;
          on_done(false, nullptr);
          return;
        }
        ++retries_;
        const double delay =
            cfg_.retry.backoff_jittered(attempt, sim_.rng());
        sim_.call_in(delay, [this, lfn, attempt,
                             on_done = std::move(on_done)]() mutable {
          direct_fetch(lfn, attempt + 1, std::move(on_done));
        });
      });
}

void CatalogClient::register_attempt(const std::string& lfn,
                                     storage::Volume* volume, int attempt,
                                     std::function<void(bool ok)> on_done) {
  if (breaker_blocking()) {
    ++errors_;
    on_done(false);
    return;
  }
  if (cfg_.breaker_enabled && breaker_ == BreakerState::kOpen) {
    breaker_ = BreakerState::kHalfOpen;
    half_open_probe_out_ = true;
  }
  if (breaker_ == BreakerState::kOpen) ++calls_while_open_;
  ++service_calls_;
  service_.register_replica(
      client_net_, lfn, *volume,
      [this, lfn, volume, attempt,
       on_done = std::move(on_done)](CatalogReply reply) mutable {
        if (reply.ok) {
          breaker_on_success();
          if (cfg_.cache_enabled) {
            // Write-through: the registered replica is immediately fresh.
            Entry entry;
            entry.volume = volume;
            entry.expires_at = sim_.now() + cfg_.ttl_s;
            cache_[lfn] = entry;
          }
          on_done(true);
          return;
        }
        breaker_on_failure();
        if (breaker_blocking() || cfg_.retry.exhausted(attempt)) {
          ++errors_;
          on_done(false);
          return;
        }
        ++retries_;
        const double delay =
            cfg_.retry.backoff_jittered(attempt, sim_.rng());
        sim_.call_in(delay, [this, lfn, volume, attempt,
                             on_done = std::move(on_done)]() mutable {
          register_attempt(lfn, volume, attempt + 1, std::move(on_done));
        });
      });
}

}  // namespace sf::catalog
