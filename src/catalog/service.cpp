#include "catalog/catalog.hpp"

#include <algorithm>
#include <utility>

namespace sf::catalog {

CatalogService::CatalogService(sim::Simulation& sim,
                               net::FlowNetwork& network,
                               net::NodeId service_net,
                               storage::ReplicaCatalog& replicas,
                               CatalogServiceConfig cfg)
    : sim_(sim),
      network_(network),
      service_net_(service_net),
      replicas_(replicas),
      cfg_(cfg) {}

void CatalogService::lookup_replica(net::NodeId client, const std::string& lfn,
                                    ReplyCallback on_reply) {
  ++requests_;
  Op op;
  op.lfn = lfn;
  op.client = client;
  op.on_reply = std::move(on_reply);
  // Request packet over the wire. Zero bytes: pays propagation latency and
  // squeezes through bandwidth faults like every control-plane message.
  network_.transfer(client, service_net_, 0.0,
                    [this, op = std::move(op)]() mutable {
                      admit(std::move(op));
                    });
}

void CatalogService::register_replica(net::NodeId client,
                                      const std::string& lfn,
                                      storage::Volume& volume,
                                      ReplyCallback on_reply) {
  ++requests_;
  Op op;
  op.is_register = true;
  op.lfn = lfn;
  op.volume = &volume;
  op.client = client;
  op.on_reply = std::move(on_reply);
  network_.transfer(client, service_net_, 0.0,
                    [this, op = std::move(op)]() mutable {
                      admit(std::move(op));
                    });
}

void CatalogService::admit(Op op) {
  if (!available(sim_.now())) {
    // Outage: refuse at the front door. The refusal still rides the wire
    // back, so a client-observed failure costs a full round trip.
    ++outage_rejects_;
    finish(std::move(op), CatalogReply{});
    return;
  }
  if (in_service_ < cfg_.max_connections) {
    ++in_service_;
    process(std::move(op));
    return;
  }
  if (queue_.size() >= static_cast<std::size_t>(cfg_.max_queue)) {
    CatalogReply reply;
    reply.overloaded = true;
    ++overload_sheds_;
    finish(std::move(op), reply);
    return;
  }
  ++queued_;
  queue_.push_back(std::move(op));
  peak_queue_depth_ = std::max(peak_queue_depth_, queue_.size());
}

void CatalogService::process(Op op) {
  sim_.call_in(cfg_.service_time_s, [this, op = std::move(op)]() mutable {
    CatalogReply reply;
    if (!available(sim_.now())) {
      // The outage landed while this request was being served: its answer
      // is lost. The slot is still released normally.
      ++outage_rejects_;
    } else if (op.is_register) {
      replicas_.register_replica(op.lfn, *op.volume);
      reply.ok = true;
      reply.volume = op.volume;
      ++served_;
    } else {
      reply.ok = true;
      reply.volume = replicas_.primary(op.lfn);
      ++served_;
    }
    --in_service_;
    if (!queue_.empty() && in_service_ < cfg_.max_connections) {
      Op next = std::move(queue_.front());
      queue_.pop_front();
      ++in_service_;
      process(std::move(next));
    }
    finish(std::move(op), reply);
  });
}

void CatalogService::finish(Op op, CatalogReply reply) {
  network_.transfer(service_net_, op.client, 0.0,
                    [on_reply = std::move(op.on_reply), reply]() {
                      on_reply(reply);
                    });
}

}  // namespace sf::catalog
