#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "fault/retry.hpp"
#include "net/flow_network.hpp"
#include "sim/simulation.hpp"
#include "storage/replica_catalog.hpp"

namespace sf::catalog {

// ---------------------------------------------------------------------
// CatalogService — the metadata tier as a networked service.
// ---------------------------------------------------------------------

/// Server-side knobs.
struct CatalogServiceConfig {
  /// Per-request processing time once a connection slot is held.
  double service_time_s = 0.002;
  /// Concurrent requests the service processes; excess waits in line.
  int max_connections = 16;
  /// Bounded wait queue behind the connection limit; arrivals past this
  /// are shed immediately (fast overload error, no retry-after hint).
  int max_queue = 64;
};

/// What a catalog request resolved to. `ok == false` means the service
/// could not answer (outage or overload) — distinct from a successful
/// "no such entry" answer, which is `ok == true, volume == nullptr` and
/// is negative-cacheable on the client.
struct CatalogReply {
  bool ok = false;
  bool overloaded = false;       ///< shed at the connection limit
  storage::Volume* volume = nullptr;  ///< primary replica (lookups)
};

/// The Pegasus replica/transformation catalogs as a *service*: requests
/// travel the FlowNetwork (zero-byte control messages — they pay latency
/// and squeeze through bandwidth faults, like every other control-plane
/// message in the stack), wait for one of `max_connections` slots with a
/// bounded queue behind them, pay a processing delay, and only then
/// touch the in-process ReplicaCatalog. An outage window (the
/// catalog_outage fault channel) makes the service refuse requests until
/// a heal time, same shape as the registry's pull outages.
///
/// One service instance fronts the testbed's catalogs from the head
/// node; CatalogClient owns the resilience story (cache, retry, breaker).
class CatalogService {
 public:
  CatalogService(sim::Simulation& sim, net::FlowNetwork& network,
                 net::NodeId service_net, storage::ReplicaCatalog& replicas,
                 CatalogServiceConfig cfg = {});

  CatalogService(const CatalogService&) = delete;
  CatalogService& operator=(const CatalogService&) = delete;

  using ReplyCallback = std::function<void(CatalogReply)>;

  /// Resolves the primary replica location of `lfn` for a client at
  /// `client` — request over the wire, service time, reply over the wire.
  void lookup_replica(net::NodeId client, const std::string& lfn,
                      ReplyCallback on_reply);

  /// Write-through registration of a new replica (stage-out path).
  void register_replica(net::NodeId client, const std::string& lfn,
                        storage::Volume& volume, ReplyCallback on_reply);

  // ---- Fault injection ----------------------------------------------

  /// Refuses requests until sim time `t` (outages extend, never shrink) —
  /// the catalog_outage fault channel's hook, mirroring
  /// Registry::set_outage_until.
  void set_outage_until(double t) {
    if (t > outage_until_) outage_until_ = t;
  }
  [[nodiscard]] bool available(double now) const {
    return now >= outage_until_;
  }

  // ---- Observability -------------------------------------------------

  [[nodiscard]] std::uint64_t requests() const { return requests_; }
  [[nodiscard]] std::uint64_t served() const { return served_; }
  [[nodiscard]] std::uint64_t outage_rejects() const {
    return outage_rejects_;
  }
  [[nodiscard]] std::uint64_t overload_sheds() const {
    return overload_sheds_;
  }
  [[nodiscard]] std::uint64_t queued() const { return queued_; }
  [[nodiscard]] std::size_t peak_queue_depth() const {
    return peak_queue_depth_;
  }
  /// Requests currently holding a connection slot or waiting in line —
  /// zero at quiesce (the catalog.drained invariant).
  [[nodiscard]] std::size_t in_flight() const {
    return static_cast<std::size_t>(in_service_) + queue_.size();
  }

  [[nodiscard]] const CatalogServiceConfig& config() const { return cfg_; }
  [[nodiscard]] net::NodeId net_id() const { return service_net_; }

 private:
  struct Op {
    bool is_register = false;
    std::string lfn;
    storage::Volume* volume = nullptr;  // register payload
    net::NodeId client = 0;
    ReplyCallback on_reply;
  };

  void admit(Op op);
  void process(Op op);
  void finish(Op op, CatalogReply reply);

  sim::Simulation& sim_;
  net::FlowNetwork& network_;
  net::NodeId service_net_;
  storage::ReplicaCatalog& replicas_;
  CatalogServiceConfig cfg_;

  int in_service_ = 0;
  std::deque<Op> queue_;
  double outage_until_ = 0;

  std::uint64_t requests_ = 0;
  std::uint64_t served_ = 0;
  std::uint64_t outage_rejects_ = 0;
  std::uint64_t overload_sheds_ = 0;
  std::uint64_t queued_ = 0;
  std::size_t peak_queue_depth_ = 0;
};

// ---------------------------------------------------------------------
// CatalogClient — cache, single-flight, retry, breaker, staleness.
// ---------------------------------------------------------------------

/// Client-side knobs. The default posture is the resilient one; the
/// chaos ablation's "off" arm disables cache and breaker to model the
/// naive client that hits the service for every resolution.
struct CatalogClientConfig {
  bool cache_enabled = true;
  double ttl_s = 60;           ///< positive entries stay fresh this long
  double negative_ttl_s = 5;   ///< "no such entry" answers cached briefly

  /// Retry/backoff for failed service calls; jitter draws from the
  /// engine RNG (seed-pure, consumed only on actual retries).
  fault::RetryPolicy retry{/*max_attempts=*/4, /*base_s=*/0.2,
                           /*cap_s=*/5.0, /*multiplier=*/2.0,
                           /*jitter_ratio=*/0.5};

  bool breaker_enabled = true;
  int breaker_failures = 3;    ///< consecutive failures that trip it
  double breaker_open_s = 10;  ///< open window before the half-open probe

  /// Serve expired cache entries while the service is unreachable
  /// (breaker open or retries exhausted) instead of failing the caller.
  bool stale_while_revalidate = true;
};

/// Circuit-breaker state (Envoy/Hystrix taxonomy).
enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };

const char* to_string(BreakerState state);

/// Per-client catalog stub layering, in order:
///
///  1. TTL cache with negative-entry caching — a fresh entry (positive
///     or negative) answers locally, no wire traffic;
///  2. single-flight coalescing — concurrent misses on one key share one
///     fetch (a cold-start burst of N pods issues 1 service call, not N);
///  3. seed-pure jittered retry/backoff via the shared RetryPolicy;
///  4. a circuit breaker: after `breaker_failures` consecutive fetch
///     failures the client stops calling the service for
///     `breaker_open_s`, then lets a single half-open probe through;
///  5. stale-while-revalidate degradation — with the breaker open (or
///     retries exhausted) an *expired* entry is served rather than
///     failing, so the planner keeps scheduling stage-in from cached
///     (possibly stale) replica locations through an outage. A stale
///     location pointing at a dead node is the caller's problem by
///     design: the stage-in job fails fast and the DAG retry path
///     re-resolves — see Planner::add_stage_in.
///
/// Invariant hooks: calls_while_open() must stay 0 (breaker-open ⇒ no
/// direct service calls), cache_hits ≤ lookups, and in_flight_keys()
/// must be empty at quiesce.
class CatalogClient {
 public:
  CatalogClient(sim::Simulation& sim, CatalogService& service,
                net::NodeId client_net, CatalogClientConfig cfg = {});

  CatalogClient(const CatalogClient&) = delete;
  CatalogClient& operator=(const CatalogClient&) = delete;

  /// Resolves `lfn` to its primary replica. `on_done(ok, volume)`:
  /// ok=false only when the service was unreachable and no (stale)
  /// cache entry could stand in; ok=true with volume == nullptr is an
  /// authoritative "no replica registered".
  using LookupCallback = std::function<void(bool ok, storage::Volume* vol)>;
  void lookup(const std::string& lfn, LookupCallback on_done);

  /// Write-through replica registration: updates the service (and the
  /// local cache on success). `on_done(ok)`.
  void register_replica(const std::string& lfn, storage::Volume& volume,
                        std::function<void(bool ok)> on_done);

  /// Drops the cache entry for `lfn` — the stale-read recovery hook: a
  /// caller that was steered to a dead replica invalidates before its
  /// retry so the re-resolution goes back to the service.
  void invalidate(const std::string& lfn);

  // ---- Observability -------------------------------------------------

  [[nodiscard]] std::uint64_t lookups() const { return lookups_; }
  [[nodiscard]] std::uint64_t cache_hits() const { return cache_hits_; }
  [[nodiscard]] std::uint64_t negative_hits() const { return negative_hits_; }
  [[nodiscard]] std::uint64_t stale_served() const { return stale_served_; }
  [[nodiscard]] std::uint64_t coalesced() const { return coalesced_; }
  [[nodiscard]] std::uint64_t service_calls() const { return service_calls_; }
  [[nodiscard]] std::uint64_t retries() const { return retries_; }
  [[nodiscard]] std::uint64_t breaker_opens() const { return breaker_opens_; }
  [[nodiscard]] std::uint64_t errors() const { return errors_; }
  /// Service calls issued while the breaker was open — must stay 0
  /// (the catalog.breaker invariant).
  [[nodiscard]] std::uint64_t calls_while_open() const {
    return calls_while_open_;
  }

  [[nodiscard]] BreakerState breaker_state() const { return breaker_; }
  /// Keys with a fetch outstanding (single-flight table size) — zero at
  /// quiesce.
  [[nodiscard]] std::size_t in_flight_keys() const {
    return in_flight_.size();
  }
  [[nodiscard]] std::size_t cache_size() const { return cache_.size(); }

  [[nodiscard]] const CatalogClientConfig& config() const { return cfg_; }

 private:
  struct Entry {
    storage::Volume* volume = nullptr;  // nullptr = negative entry
    double expires_at = 0;
  };
  struct Flight {
    std::vector<LookupCallback> waiters;
  };

  /// True while the breaker refuses service traffic (open, window not
  /// yet elapsed). Once the window elapses the next fetch is the
  /// half-open probe.
  [[nodiscard]] bool breaker_blocking() const;
  void breaker_on_success();
  void breaker_on_failure();

  void start_fetch(const std::string& lfn, int attempt);
  void settle(const std::string& lfn, bool ok, storage::Volume* vol);
  /// Degraded completion: serve a stale entry when allowed, else error.
  void degrade(const std::string& lfn);
  /// Uncoalesced per-call fetch used when the cache layer is disabled
  /// (the ablation's naive arm): same retry/breaker, no sharing.
  void direct_fetch(const std::string& lfn, int attempt,
                    LookupCallback on_done);
  void register_attempt(const std::string& lfn, storage::Volume* volume,
                        int attempt, std::function<void(bool ok)> on_done);

  sim::Simulation& sim_;
  CatalogService& service_;
  net::NodeId client_net_;
  CatalogClientConfig cfg_;

  std::map<std::string, Entry> cache_;
  std::map<std::string, Flight> in_flight_;

  BreakerState breaker_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  double breaker_open_until_ = 0;
  bool half_open_probe_out_ = false;

  std::uint64_t lookups_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t negative_hits_ = 0;
  std::uint64_t stale_served_ = 0;
  std::uint64_t coalesced_ = 0;
  std::uint64_t service_calls_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t breaker_opens_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t calls_while_open_ = 0;
};

/// Bundled testbed-level switch: when enabled, PaperTestbed stands up
/// one CatalogService on the head node plus one shared CatalogClient,
/// and the planner resolves stage-in/stage-out through them instead of
/// in-process pointer lookups.
struct CatalogTierConfig {
  bool enabled = false;
  CatalogServiceConfig service{};
  CatalogClientConfig client{};
};

}  // namespace sf::catalog
