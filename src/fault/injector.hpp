#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/testbed.hpp"
#include "fault/splitmix.hpp"
#include "k8s/controllers.hpp"

namespace sf::fault {

/// What a planned fault does when it fires.
enum class FaultKind : std::uint8_t {
  kNodeCrash,       ///< Node::fail() now, Node::recover() after duration
  kRegistryOutage,  ///< registry refuses pulls for duration (backoff path)
  kPodKill,         ///< kubelet kills one running pod (pre-drawn pick)
  kLinkDegrade,     ///< node NIC at bandwidth*factor for duration
  kPartition,       ///< node pair blocked for duration
};

const char* to_string(FaultKind kind);

/// One planned fault. The full plan is a pure function of
/// (seed, FaultConfig, node_count): every field — including `pick`, the
/// randomness consumed at fire time — is drawn during planning, so the
/// simulation's own RNG and event ordering never influence what gets
/// injected, only what the faults hit.
struct FaultEvent {
  double at = 0;             ///< absolute sim time
  FaultKind kind = FaultKind::kNodeCrash;
  std::uint32_t node = 0;    ///< victim cluster-node index
  std::uint32_t peer = 0;    ///< partition peer (unused otherwise)
  double duration_s = 0;     ///< outage / degradation / downtime window
  double factor = 1.0;       ///< bandwidth multiplier (kLinkDegrade)
  std::uint64_t pick = 0;    ///< fire-time victim selector (kPodKill)

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Fault-channel intensities. A channel with mean_s == 0 is off;
/// otherwise its events arrive as a Poisson process with the given mean
/// inter-arrival time, independent per channel (forked RNG streams).
struct FaultConfig {
  double horizon_s = 1800;  ///< plan window [0, horizon)

  double node_crash_mean_s = 0;  ///< worker VM crash inter-arrival
  double node_downtime_s = 25;   ///< crash → reboot delay

  double pull_outage_mean_s = 0;      ///< registry outage inter-arrival
  double pull_outage_duration_s = 6;  ///< pulls refused this long

  double pod_kill_mean_s = 0;  ///< single-pod kill inter-arrival

  double degrade_mean_s = 0;       ///< NIC brown-out inter-arrival
  double degrade_duration_s = 20;  ///< brown-out window
  double degrade_factor = 0.25;    ///< bandwidth multiplier while browned

  double partition_mean_s = 0;       ///< pairwise partition inter-arrival
  double partition_duration_s = 15;  ///< healed after this long

  /// Spare node 0 (control plane, registry, submit side) from crashes —
  /// losing the schedd/API state is unrecoverable by design. Connectivity
  /// faults (degradation, partitions) still target ALL nodes: they are
  /// transient, flows resume where they stalled, and in this testbed the
  /// bulk traffic runs head ↔ worker.
  bool spare_head_node = true;

  /// Crash-detection control loop applied by FaultInjector::arm() when
  /// node crashes are enabled (kubelet heartbeats + node-lifecycle
  /// controller).
  k8s::NodeLifecycleConfig lifecycle{};
  double heartbeat_interval_s = 1.0;
};

/// Generates the deterministic fault timeline for a cluster of
/// `node_count` nodes (index 0 = head). Events are sorted by time with a
/// deterministic tie-break; same (seed, cfg, node_count) ⇒ identical
/// vector, on any platform, regardless of simulation state.
std::vector<FaultEvent> make_fault_plan(std::uint64_t seed,
                                        const FaultConfig& cfg,
                                        std::uint32_t node_count);

/// Schedules a fault plan against a running PaperTestbed and owns the
/// recovery bookkeeping that keeps repeated faults composable (nested
/// degradation windows, overlapping partitions, crash-while-down).
///
/// Usage: construct, arm() once before driving the simulation, read the
/// applied_* counters after. The injector must outlive the simulation
/// run it is armed on.
class FaultInjector {
 public:
  FaultInjector(core::PaperTestbed& testbed, FaultConfig cfg,
                std::uint64_t seed);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedules every planned event (and enables the node-lifecycle loop
  /// when the crash channel is on). Idempotent.
  void arm();

  [[nodiscard]] const FaultConfig& config() const { return cfg_; }
  [[nodiscard]] const std::vector<FaultEvent>& plan() const { return plan_; }

  // Applied-fault counters (a planned event is *skipped*, not applied,
  // when its target cannot take it — e.g. crashing an already-down node
  // or killing a pod when none are running).
  [[nodiscard]] std::uint64_t node_crashes() const { return node_crashes_; }
  [[nodiscard]] std::uint64_t node_reboots() const { return node_reboots_; }
  [[nodiscard]] std::uint64_t registry_outages() const {
    return registry_outages_;
  }
  [[nodiscard]] std::uint64_t pod_kills() const { return pod_kills_; }
  [[nodiscard]] std::uint64_t degrades() const { return degrades_; }
  [[nodiscard]] std::uint64_t partitions() const { return partitions_; }
  [[nodiscard]] std::uint64_t skipped() const { return skipped_; }
  [[nodiscard]] std::uint64_t applied_total() const {
    return node_crashes_ + registry_outages_ + pod_kills_ + degrades_ +
           partitions_;
  }

 private:
  void apply(const FaultEvent& ev);
  void apply_node_crash(const FaultEvent& ev);
  void apply_pod_kill(const FaultEvent& ev);
  void apply_degrade(const FaultEvent& ev);
  void apply_partition(const FaultEvent& ev);

  core::PaperTestbed& tb_;
  FaultConfig cfg_;
  std::vector<FaultEvent> plan_;
  bool armed_ = false;

  /// Overlap depth per degraded node / partitioned pair: capacity is
  /// restored (blocked pair healed) only when the LAST overlapping window
  /// expires, so back-to-back faults never un-fault each other early.
  std::map<std::uint32_t, int> degrade_depth_;
  std::map<std::uint64_t, int> partition_depth_;

  std::uint64_t node_crashes_ = 0;
  std::uint64_t node_reboots_ = 0;
  std::uint64_t registry_outages_ = 0;
  std::uint64_t pod_kills_ = 0;
  std::uint64_t degrades_ = 0;
  std::uint64_t partitions_ = 0;
  std::uint64_t skipped_ = 0;
};

}  // namespace sf::fault
