#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/rack_map.hpp"
#include "core/testbed.hpp"
#include "fault/splitmix.hpp"
#include "k8s/controllers.hpp"

namespace sf::fault {

/// What a planned fault does when it fires.
enum class FaultKind : std::uint8_t {
  kNodeCrash,       ///< Node::fail() now, Node::recover() after duration
  kRegistryOutage,  ///< registry refuses pulls for duration (backoff path)
  kPodKill,         ///< kubelet kills one running pod (pre-drawn pick)
  kLinkDegrade,     ///< node NIC at bandwidth*factor for duration
  kPartition,       ///< node pair blocked for duration
  kCpuSlow,         ///< gray: node CPU pinned at factor for duration
  kFlakyNic,        ///< gray: node NIC stalls every Nth flow for duration
  kRackPartition,   ///< rack cut off from the rest of the fabric
  kOnewayPartition, ///< gray: directed link src → dst cut, reverse flows
  kCatalogOutage,   ///< metadata tier refuses requests for duration
};

const char* to_string(FaultKind kind);

/// One planned fault. The full plan is a pure function of
/// (seed, FaultConfig, RackMap): every field — including `pick`, the
/// randomness consumed at fire time — is drawn during planning, so the
/// simulation's own RNG and event ordering never influence what gets
/// injected, only what the faults hit.
///
/// Correlated incidents (a rack PDU trip, a deploy storm) are expanded at
/// plan time into their per-node burst; the member events share a nonzero
/// `incident` id so tests and post-mortems can group them back together.
struct FaultEvent {
  double at = 0;             ///< absolute sim time
  FaultKind kind = FaultKind::kNodeCrash;
  std::uint32_t node = 0;    ///< victim node index (rack id: kRackPartition)
  std::uint32_t peer = 0;    ///< partition peer (unused otherwise)
  double duration_s = 0;     ///< outage / degradation / downtime window
  double factor = 1.0;       ///< bandwidth or CPU multiplier
  std::uint64_t pick = 0;    ///< fire-time victim selector (kPodKill)
  std::uint32_t incident = 0;  ///< correlated-burst id; 0 = independent

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Fault-channel intensities. A channel with mean_s == 0 is off;
/// otherwise its events arrive as a Poisson process with the given mean
/// inter-arrival time, independent per channel (forked RNG streams).
///
/// Channels fall into three families:
///  * independent fail-stop: node_crash, pull_outage, pod_kill, degrade,
///    partition — one planned arrival, one applied event;
///  * correlated incidents: rack_fail (PDU trip → every crashable node in
///    one rack crashes within a stagger window), deploy_storm (registry
///    outage coinciding with a burst of pod kills), rack_partition (a
///    cut-set isolating one rack — split-brain, not a pairwise block);
///  * gray failures: cpu_slow (a node straggles at a capacity factor but
///    heartbeats keep passing), flaky_nic (every Nth flow through the
///    node stalls) — the machinery above sees timeouts racing stragglers
///    instead of clean errors.
struct FaultConfig {
  double horizon_s = 1800;  ///< plan window [0, horizon)

  double node_crash_mean_s = 0;  ///< worker VM crash inter-arrival
  double node_downtime_s = 25;   ///< crash → reboot delay

  double pull_outage_mean_s = 0;      ///< registry outage inter-arrival
  double pull_outage_duration_s = 6;  ///< pulls refused this long

  double pod_kill_mean_s = 0;  ///< single-pod kill inter-arrival

  double degrade_mean_s = 0;       ///< NIC brown-out inter-arrival
  double degrade_duration_s = 20;  ///< brown-out window
  double degrade_factor = 0.25;    ///< bandwidth multiplier while browned

  double partition_mean_s = 0;       ///< pairwise partition inter-arrival
  double partition_duration_s = 15;  ///< healed after this long

  // ---- Correlated incidents -----------------------------------------

  /// Rack count the default topology splits the cluster into (contiguous
  /// near-equal blocks, node 0 in rack 0). Ignored by the RackMap
  /// overload of make_fault_plan. 1 = whole cluster is one rack, which
  /// disables the rack-partition channel (there is nothing to cut).
  std::uint32_t racks = 1;

  double rack_fail_mean_s = 0;      ///< PDU-trip inter-arrival
  double rack_fail_downtime_s = 30; ///< whole-rack crash → reboot delay
  double rack_fail_stagger_s = 0.5; ///< per-node crash jitter in the burst

  double rack_partition_mean_s = 0;       ///< rack cut inter-arrival
  double rack_partition_duration_s = 20;  ///< cut healed after this long

  double deploy_storm_mean_s = 0;    ///< storm inter-arrival
  double deploy_storm_outage_s = 8;  ///< registry outage in the storm
  std::uint32_t deploy_storm_kills = 3;  ///< pod kills per storm
  double deploy_storm_spread_s = 4;  ///< kills land within this window

  // ---- Gray failures ------------------------------------------------

  double cpu_slow_mean_s = 0;      ///< straggler-node inter-arrival
  double cpu_slow_duration_s = 30; ///< pinned-slow window
  double cpu_slow_factor = 0.1;    ///< CPU capacity multiplier while slow

  double flaky_nic_mean_s = 0;       ///< flaky-NIC inter-arrival
  double flaky_nic_duration_s = 30;  ///< flaky window
  std::uint32_t flaky_nic_every = 5; ///< every Nth flow stalls
  double flaky_nic_stall_s = 2.0;    ///< stall added to the Nth flow

  /// Asymmetric partition: the directed link src → dst is cut while the
  /// reverse keeps flowing. The nastiest gray shape: lease renewals and
  /// requests still arrive, only the *replies* vanish — symmetric
  /// heartbeat probes stay green, so nothing is evicted and only
  /// data-plane deadlines (route_timeout_s + outlier ejection) notice.
  double oneway_partition_mean_s = 0;       ///< directed-cut inter-arrival
  double oneway_partition_duration_s = 15;  ///< healed after this long

  /// Metadata-tier outage: the catalog service refuses requests for the
  /// window (the client's cache / retry / breaker / stale-read stack is
  /// what turns this into delay instead of failure). Planned arrivals on
  /// a testbed with no catalog tier are skipped, not applied.
  double catalog_outage_mean_s = 0;       ///< outage inter-arrival
  double catalog_outage_duration_s = 12;  ///< requests refused this long

  /// Spare node 0 (control plane, registry, submit side) from crashes —
  /// losing the schedd/API state is unrecoverable by design. This also
  /// covers rack-fail bursts (the head node survives its rack's PDU) and
  /// the cpu_slow channel (a straggling schedd slows everything without
  /// exercising any recovery path). Connectivity faults (degradation,
  /// flaky NICs, partitions, rack cuts) still target ALL nodes: they are
  /// transient, flows resume where they stalled, and in this testbed the
  /// bulk traffic runs head ↔ worker.
  bool spare_head_node = true;

  /// Crash-detection control loop applied by FaultInjector::arm() when
  /// any crash- or split-brain-shaped channel is enabled (kubelet
  /// heartbeats + node-lifecycle controller).
  k8s::NodeLifecycleConfig lifecycle{};
  double heartbeat_interval_s = 1.0;
};

/// Generates the deterministic fault timeline for a cluster laid out by
/// `racks` (node 0 = head). Events are sorted by time with a
/// deterministic tie-break; same (seed, cfg, RackMap) ⇒ identical
/// vector, on any platform, regardless of simulation state.
std::vector<FaultEvent> make_fault_plan(std::uint64_t seed,
                                        const FaultConfig& cfg,
                                        const cluster::RackMap& racks);

/// Convenience overload: derives the topology from cfg.racks contiguous
/// blocks over `node_count` nodes.
std::vector<FaultEvent> make_fault_plan(std::uint64_t seed,
                                        const FaultConfig& cfg,
                                        std::uint32_t node_count);

/// Schedules a fault plan against a running PaperTestbed and owns the
/// recovery bookkeeping that keeps repeated faults composable (nested
/// degradation windows, overlapping partitions, crash-while-down,
/// rack cuts stacked on pairwise blocks).
///
/// Usage: construct, arm() once before driving the simulation, read the
/// applied_* counters after. The injector must outlive the simulation
/// run it is armed on.
class FaultInjector {
 public:
  FaultInjector(core::PaperTestbed& testbed, FaultConfig cfg,
                std::uint64_t seed);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedules every planned event (and enables the node-lifecycle loop
  /// when a crash-shaped channel is on). Idempotent.
  void arm();

  [[nodiscard]] const FaultConfig& config() const { return cfg_; }
  [[nodiscard]] const std::vector<FaultEvent>& plan() const { return plan_; }
  [[nodiscard]] const cluster::RackMap& rack_map() const { return racks_; }

  // Applied-fault counters (a planned event is *skipped*, not applied,
  // when its target cannot take it — e.g. crashing an already-down node
  // or killing a pod when none are running).
  [[nodiscard]] std::uint64_t node_crashes() const { return node_crashes_; }
  [[nodiscard]] std::uint64_t node_reboots() const { return node_reboots_; }
  [[nodiscard]] std::uint64_t registry_outages() const {
    return registry_outages_;
  }
  [[nodiscard]] std::uint64_t pod_kills() const { return pod_kills_; }
  [[nodiscard]] std::uint64_t degrades() const { return degrades_; }
  [[nodiscard]] std::uint64_t partitions() const { return partitions_; }
  [[nodiscard]] std::uint64_t rack_partitions() const {
    return rack_partitions_;
  }
  [[nodiscard]] std::uint64_t cpu_slows() const { return cpu_slows_; }
  [[nodiscard]] std::uint64_t flaky_nics() const { return flaky_nics_; }
  [[nodiscard]] std::uint64_t oneway_partitions() const {
    return oneway_partitions_;
  }
  [[nodiscard]] std::uint64_t catalog_outages() const {
    return catalog_outages_;
  }
  [[nodiscard]] std::uint64_t skipped() const { return skipped_; }

  /// Sum of all outstanding fault-window depth counters (degradations,
  /// CPU slowdowns, flaky NICs, partitions). Zero once every window has
  /// healed — the sf::check quiesce invariant: a heal path that forgets
  /// to undo its effect leaves a residue here.
  [[nodiscard]] std::uint64_t residual_depth() const {
    std::uint64_t total = 0;
    for (const int d : degrade_depth_) total += static_cast<std::uint64_t>(d);
    for (const int d : cpu_slow_depth_) total += static_cast<std::uint64_t>(d);
    for (const int d : flaky_depth_) total += static_cast<std::uint64_t>(d);
    for (const int d : partition_depth_) {
      total += static_cast<std::uint64_t>(d);
    }
    for (const int d : oneway_depth_) total += static_cast<std::uint64_t>(d);
    return total;
  }
  [[nodiscard]] std::uint64_t applied_total() const {
    return node_crashes_ + registry_outages_ + pod_kills_ + degrades_ +
           partitions_ + rack_partitions_ + cpu_slows_ + flaky_nics_ +
           oneway_partitions_ + catalog_outages_;
  }

 private:
  void apply(const FaultEvent& ev);
  void apply_node_crash(const FaultEvent& ev);
  void apply_pod_kill(const FaultEvent& ev);
  void apply_degrade(const FaultEvent& ev);
  void apply_partition(const FaultEvent& ev);
  void apply_cpu_slow(const FaultEvent& ev);
  void apply_flaky_nic(const FaultEvent& ev);
  void apply_rack_partition(const FaultEvent& ev);
  void apply_oneway_partition(const FaultEvent& ev);

  /// Depth-counted pairwise cut between cluster nodes `a` and `b` —
  /// shared by kPartition and the kRackPartition cut-set so overlapping
  /// faults never heal each other early.
  void cut_pair(std::uint32_t a, std::uint32_t b, bool blocked);
  [[nodiscard]] std::size_t pair_index(std::uint32_t a,
                                       std::uint32_t b) const;

  core::PaperTestbed& tb_;
  FaultConfig cfg_;
  cluster::RackMap racks_;
  std::uint32_t node_count_ = 0;
  std::vector<FaultEvent> plan_;
  bool armed_ = false;

  /// Overlap depth per faulted node / pair, flat-indexed by node id and
  /// (min, max) pair id: the FIRST overlapping window's setting applies,
  /// and the effect is undone only when the LAST window expires, so
  /// back-to-back faults never un-fault each other early. Vectors, not
  /// maps — sized once from the node count, O(1) on every expiry.
  std::vector<int> degrade_depth_;
  std::vector<int> cpu_slow_depth_;
  std::vector<int> flaky_depth_;
  std::vector<int> partition_depth_;  ///< n*n, indexed min*n+max
  std::vector<int> oneway_depth_;     ///< n*n DIRECTED, indexed src*n+dst

  std::uint64_t node_crashes_ = 0;
  std::uint64_t node_reboots_ = 0;
  std::uint64_t registry_outages_ = 0;
  std::uint64_t pod_kills_ = 0;
  std::uint64_t degrades_ = 0;
  std::uint64_t partitions_ = 0;
  std::uint64_t rack_partitions_ = 0;
  std::uint64_t cpu_slows_ = 0;
  std::uint64_t flaky_nics_ = 0;
  std::uint64_t oneway_partitions_ = 0;
  std::uint64_t catalog_outages_ = 0;
  std::uint64_t skipped_ = 0;
};

}  // namespace sf::fault
