#include "fault/injector.hpp"

#include <algorithm>
#include <tuple>
#include <utility>

namespace sf::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNodeCrash:
      return "node_crash";
    case FaultKind::kRegistryOutage:
      return "registry_outage";
    case FaultKind::kPodKill:
      return "pod_kill";
    case FaultKind::kLinkDegrade:
      return "link_degrade";
    case FaultKind::kPartition:
      return "partition";
  }
  return "unknown";
}

namespace {

/// Stream tags; the tag value is part of the determinism contract (a
/// renumbering would change every plan), so they are fixed here rather
/// than derived from enum order.
constexpr std::uint64_t kTagNodeCrash = 0xA1;
constexpr std::uint64_t kTagPullOutage = 0xA2;
constexpr std::uint64_t kTagPodKill = 0xA3;
constexpr std::uint64_t kTagDegrade = 0xA4;
constexpr std::uint64_t kTagPartition = 0xA5;

/// Poisson arrivals on [0, horizon): appends one event per arrival via
/// `emit(t, rng)`. Each channel owns a forked stream, so channels never
/// perturb each other's timelines.
template <typename Emit>
void arrivals(std::uint64_t seed, std::uint64_t tag, double mean_s,
              double horizon_s, Emit&& emit) {
  if (mean_s <= 0) return;
  SplitMix64 rng = SplitMix64::fork(seed, tag);
  double t = rng.exponential(mean_s);
  while (t < horizon_s) {
    emit(t, rng);
    t += rng.exponential(mean_s);
  }
}

}  // namespace

std::vector<FaultEvent> make_fault_plan(std::uint64_t seed,
                                        const FaultConfig& cfg,
                                        std::uint32_t node_count) {
  std::vector<FaultEvent> plan;
  // Crashable node indices: [first, node_count). Connectivity faults
  // (degrade / partition) target all nodes — see FaultConfig.
  const std::uint32_t first = cfg.spare_head_node ? 1 : 0;
  const std::uint32_t crashable =
      node_count > first ? node_count - first : 0;

  if (crashable > 0) {
    arrivals(seed, kTagNodeCrash, cfg.node_crash_mean_s, cfg.horizon_s,
             [&](double t, SplitMix64& rng) {
               FaultEvent ev;
               ev.at = t;
               ev.kind = FaultKind::kNodeCrash;
               ev.node = first + static_cast<std::uint32_t>(
                                     rng.next_below(crashable));
               ev.duration_s = cfg.node_downtime_s;
               plan.push_back(ev);
             });
  }
  if (node_count > 0) {
    arrivals(seed, kTagDegrade, cfg.degrade_mean_s, cfg.horizon_s,
             [&](double t, SplitMix64& rng) {
               FaultEvent ev;
               ev.at = t;
               ev.kind = FaultKind::kLinkDegrade;
               ev.node = static_cast<std::uint32_t>(
                   rng.next_below(node_count));
               ev.duration_s = cfg.degrade_duration_s;
               ev.factor = std::clamp(cfg.degrade_factor, 1e-6, 1.0);
               plan.push_back(ev);
             });
  }
  if (node_count > 1) {
    arrivals(seed, kTagPartition, cfg.partition_mean_s, cfg.horizon_s,
             [&](double t, SplitMix64& rng) {
               FaultEvent ev;
               ev.at = t;
               ev.kind = FaultKind::kPartition;
               ev.node = static_cast<std::uint32_t>(
                   rng.next_below(node_count));
               // Peer drawn from the remaining nodes, shifted past the
               // victim so the pair is always distinct.
               const std::uint32_t other = static_cast<std::uint32_t>(
                   rng.next_below(node_count - 1));
               ev.peer = other >= ev.node ? other + 1 : other;
               ev.duration_s = cfg.partition_duration_s;
               plan.push_back(ev);
             });
  }
  arrivals(seed, kTagPullOutage, cfg.pull_outage_mean_s, cfg.horizon_s,
           [&](double t, SplitMix64&) {
             FaultEvent ev;
             ev.at = t;
             ev.kind = FaultKind::kRegistryOutage;
             ev.duration_s = cfg.pull_outage_duration_s;
             plan.push_back(ev);
           });
  arrivals(seed, kTagPodKill, cfg.pod_kill_mean_s, cfg.horizon_s,
           [&](double t, SplitMix64& rng) {
             FaultEvent ev;
             ev.at = t;
             ev.kind = FaultKind::kPodKill;
             ev.pick = rng.next();
             plan.push_back(ev);
           });

  // Deterministic total order: time, then every discriminating field.
  // Cross-channel ties are practically impossible (53-bit exponentials)
  // but must still order identically everywhere.
  std::sort(plan.begin(), plan.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              return std::tie(a.at, a.kind, a.node, a.peer, a.pick) <
                     std::tie(b.at, b.kind, b.node, b.peer, b.pick);
            });
  return plan;
}

FaultInjector::FaultInjector(core::PaperTestbed& testbed, FaultConfig cfg,
                             std::uint64_t seed)
    : tb_(testbed),
      cfg_(cfg),
      plan_(make_fault_plan(
          seed, cfg, static_cast<std::uint32_t>(testbed.cluster().size()))) {}

void FaultInjector::arm() {
  if (armed_) return;
  armed_ = true;
  sim::Simulation& sim = tb_.sim();
  if (cfg_.node_crash_mean_s > 0) {
    // Crashes are only recoverable end-to-end with the detection loop on
    // (heartbeats → lease expiry → NotReady → evictions → reschedule).
    tb_.kube().enable_node_lifecycle(cfg_.lifecycle,
                                     cfg_.heartbeat_interval_s);
  }
  for (std::size_t i = 0; i < plan_.size(); ++i) {
    if (plan_[i].at < sim.now()) continue;  // armed late: past is past
    sim.call_at(plan_[i].at, [this, i] { apply(plan_[i]); });
  }
}

void FaultInjector::apply(const FaultEvent& ev) {
  tb_.sim().trace().record(tb_.sim().now(), "fault", to_string(ev.kind),
                           {{"node", std::to_string(ev.node)}});
  switch (ev.kind) {
    case FaultKind::kNodeCrash:
      apply_node_crash(ev);
      break;
    case FaultKind::kRegistryOutage:
      tb_.registry().set_outage_until(tb_.sim().now() + ev.duration_s);
      ++registry_outages_;
      break;
    case FaultKind::kPodKill:
      apply_pod_kill(ev);
      break;
    case FaultKind::kLinkDegrade:
      apply_degrade(ev);
      break;
    case FaultKind::kPartition:
      apply_partition(ev);
      break;
  }
}

void FaultInjector::apply_node_crash(const FaultEvent& ev) {
  cluster::Node& node = tb_.cluster().node(ev.node);
  if (!node.up()) {
    ++skipped_;  // crashed while already down; its reboot is pending
    return;
  }
  node.fail();
  ++node_crashes_;
  tb_.sim().call_in(ev.duration_s, [this, &node] {
    if (!node.up()) {
      node.recover();
      ++node_reboots_;
    }
  });
}

void FaultInjector::apply_pod_kill(const FaultEvent& ev) {
  // Candidates in NamedStore name order (deterministic); only pods a
  // kubelet actually manages can be killed.
  std::vector<std::string> candidates;
  tb_.kube().api().for_each_pod([&](const k8s::Pod& pod) {
    if (pod.node_name.empty()) return;
    if (pod.phase == k8s::PodPhase::kScheduled ||
        pod.phase == k8s::PodPhase::kRunning) {
      candidates.push_back(pod.name);
    }
  });
  if (candidates.empty()) {
    ++skipped_;
    return;
  }
  const std::string& victim = candidates[ev.pick % candidates.size()];
  if (tb_.kube().kill_pod(victim)) {
    ++pod_kills_;
  } else {
    ++skipped_;
  }
}

void FaultInjector::apply_degrade(const FaultEvent& ev) {
  cluster::Node& node = tb_.cluster().node(ev.node);
  if (++degrade_depth_[ev.node] == 1) {
    tb_.cluster().network().set_node_bandwidth_factor(node.net_id(),
                                                      ev.factor);
  }
  // Nested windows keep the FIRST factor; capacity returns when the last
  // window expires.
  ++degrades_;
  tb_.sim().call_in(ev.duration_s, [this, &node, idx = ev.node] {
    auto it = degrade_depth_.find(idx);
    if (it != degrade_depth_.end() && --it->second <= 0) {
      degrade_depth_.erase(it);
      tb_.cluster().network().set_node_bandwidth_factor(node.net_id(), 1.0);
    }
  });
}

void FaultInjector::apply_partition(const FaultEvent& ev) {
  const std::uint64_t key =
      (std::uint64_t{std::min(ev.node, ev.peer)} << 32) |
      std::max(ev.node, ev.peer);
  const net::NodeId a = tb_.cluster().node(ev.node).net_id();
  const net::NodeId b = tb_.cluster().node(ev.peer).net_id();
  if (++partition_depth_[key] == 1) {
    tb_.cluster().network().set_partition(a, b, true);
  }
  ++partitions_;
  tb_.sim().call_in(ev.duration_s, [this, key, a, b] {
    auto it = partition_depth_.find(key);
    if (it != partition_depth_.end() && --it->second <= 0) {
      partition_depth_.erase(it);
      tb_.cluster().network().set_partition(a, b, false);
    }
  });
}

}  // namespace sf::fault
