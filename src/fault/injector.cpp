#include "fault/injector.hpp"

#include <algorithm>
#include <tuple>
#include <utility>

namespace sf::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNodeCrash:
      return "node_crash";
    case FaultKind::kRegistryOutage:
      return "registry_outage";
    case FaultKind::kPodKill:
      return "pod_kill";
    case FaultKind::kLinkDegrade:
      return "link_degrade";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kCpuSlow:
      return "cpu_slow";
    case FaultKind::kFlakyNic:
      return "flaky_nic";
    case FaultKind::kRackPartition:
      return "rack_partition";
    case FaultKind::kOnewayPartition:
      return "oneway_partition";
    case FaultKind::kCatalogOutage:
      return "catalog_outage";
  }
  return "unknown";
}

namespace {

/// Stream tags; the tag value is part of the determinism contract (a
/// renumbering would change every plan), so they are fixed here rather
/// than derived from enum order.
constexpr std::uint64_t kTagNodeCrash = 0xA1;
constexpr std::uint64_t kTagPullOutage = 0xA2;
constexpr std::uint64_t kTagPodKill = 0xA3;
constexpr std::uint64_t kTagDegrade = 0xA4;
constexpr std::uint64_t kTagPartition = 0xA5;
constexpr std::uint64_t kTagRackFail = 0xA6;
constexpr std::uint64_t kTagRackPartition = 0xA7;
constexpr std::uint64_t kTagDeployStorm = 0xA8;
constexpr std::uint64_t kTagCpuSlow = 0xA9;
constexpr std::uint64_t kTagFlakyNic = 0xAA;
constexpr std::uint64_t kTagOnewayPartition = 0xAB;
constexpr std::uint64_t kTagCatalogOutage = 0xAC;

/// Incident-id bases, one block per correlated channel: ids only need to
/// be unique within a plan, and a fixed base per channel keeps them
/// stable under config changes to the other channels.
constexpr std::uint32_t kIncidentRackFail = 0x10000;
constexpr std::uint32_t kIncidentDeployStorm = 0x20000;
constexpr std::uint32_t kIncidentRackPartition = 0x30000;

/// Poisson arrivals on [0, horizon): appends one event per arrival via
/// `emit(t, rng)`. Each channel owns a forked stream, so channels never
/// perturb each other's timelines.
template <typename Emit>
void arrivals(std::uint64_t seed, std::uint64_t tag, double mean_s,
              double horizon_s, Emit&& emit) {
  if (mean_s <= 0) return;
  SplitMix64 rng = SplitMix64::fork(seed, tag);
  double t = rng.exponential(mean_s);
  while (t < horizon_s) {
    emit(t, rng);
    t += rng.exponential(mean_s);
  }
}

}  // namespace

std::vector<FaultEvent> make_fault_plan(std::uint64_t seed,
                                        const FaultConfig& cfg,
                                        const cluster::RackMap& racks) {
  std::vector<FaultEvent> plan;
  const std::uint32_t node_count = racks.node_count();
  // Crashable node indices: [first, node_count). Connectivity faults
  // (degrade / flaky / partition / rack cut) target all nodes — see
  // FaultConfig.
  const std::uint32_t first = cfg.spare_head_node ? 1 : 0;
  const std::uint32_t crashable =
      node_count > first ? node_count - first : 0;

  // ---- Independent fail-stop channels -------------------------------
  if (crashable > 0) {
    arrivals(seed, kTagNodeCrash, cfg.node_crash_mean_s, cfg.horizon_s,
             [&](double t, SplitMix64& rng) {
               FaultEvent ev;
               ev.at = t;
               ev.kind = FaultKind::kNodeCrash;
               ev.node = first + static_cast<std::uint32_t>(
                                     rng.next_below(crashable));
               ev.duration_s = cfg.node_downtime_s;
               plan.push_back(ev);
             });
  }
  if (node_count > 0) {
    arrivals(seed, kTagDegrade, cfg.degrade_mean_s, cfg.horizon_s,
             [&](double t, SplitMix64& rng) {
               FaultEvent ev;
               ev.at = t;
               ev.kind = FaultKind::kLinkDegrade;
               ev.node = static_cast<std::uint32_t>(
                   rng.next_below(node_count));
               ev.duration_s = cfg.degrade_duration_s;
               ev.factor = std::clamp(cfg.degrade_factor, 1e-6, 1.0);
               plan.push_back(ev);
             });
  }
  if (node_count > 1) {
    arrivals(seed, kTagPartition, cfg.partition_mean_s, cfg.horizon_s,
             [&](double t, SplitMix64& rng) {
               FaultEvent ev;
               ev.at = t;
               ev.kind = FaultKind::kPartition;
               ev.node = static_cast<std::uint32_t>(
                   rng.next_below(node_count));
               // Peer drawn from the remaining nodes, shifted past the
               // victim so the pair is always distinct.
               const std::uint32_t other = static_cast<std::uint32_t>(
                   rng.next_below(node_count - 1));
               ev.peer = other >= ev.node ? other + 1 : other;
               ev.duration_s = cfg.partition_duration_s;
               plan.push_back(ev);
             });
  }
  arrivals(seed, kTagPullOutage, cfg.pull_outage_mean_s, cfg.horizon_s,
           [&](double t, SplitMix64&) {
             FaultEvent ev;
             ev.at = t;
             ev.kind = FaultKind::kRegistryOutage;
             ev.duration_s = cfg.pull_outage_duration_s;
             plan.push_back(ev);
           });
  arrivals(seed, kTagPodKill, cfg.pod_kill_mean_s, cfg.horizon_s,
           [&](double t, SplitMix64& rng) {
             FaultEvent ev;
             ev.at = t;
             ev.kind = FaultKind::kPodKill;
             ev.pick = rng.next();
             plan.push_back(ev);
           });
  arrivals(seed, kTagCatalogOutage, cfg.catalog_outage_mean_s, cfg.horizon_s,
           [&](double t, SplitMix64&) {
             FaultEvent ev;
             ev.at = t;
             ev.kind = FaultKind::kCatalogOutage;
             ev.duration_s = cfg.catalog_outage_duration_s;
             plan.push_back(ev);
           });

  // ---- Correlated incidents ------------------------------------------
  //
  // Each incident is expanded HERE, at plan time, into its member events:
  // the burst structure (which nodes, what jitter) is as seed-pure as the
  // arrival times, and members carry a shared incident id.

  // Rack PDU trip: every crashable node in one rack crashes within a
  // stagger window (power supplies don't drop in perfect sync).
  std::vector<std::uint32_t> pdu_racks;  // racks with ≥1 crashable node
  for (std::uint32_t r = 0; r < racks.rack_count(); ++r) {
    const auto& members = racks.nodes_in(r);
    if (std::any_of(members.begin(), members.end(),
                    [first](std::uint32_t n) { return n >= first; })) {
      pdu_racks.push_back(r);
    }
  }
  if (!pdu_racks.empty()) {
    std::uint32_t incident = kIncidentRackFail;
    arrivals(seed, kTagRackFail, cfg.rack_fail_mean_s, cfg.horizon_s,
             [&](double t, SplitMix64& rng) {
               const std::uint32_t rack = pdu_racks[static_cast<std::size_t>(
                   rng.next_below(pdu_racks.size()))];
               ++incident;
               for (const std::uint32_t n : racks.nodes_in(rack)) {
                 if (n < first) continue;  // head survives its rack's PDU
                 FaultEvent ev;
                 ev.at = t + rng.next_double() * cfg.rack_fail_stagger_s;
                 ev.kind = FaultKind::kNodeCrash;
                 ev.node = n;
                 ev.duration_s = cfg.rack_fail_downtime_s;
                 ev.incident = incident;
                 plan.push_back(ev);
               }
             });
  }

  // Rack cut: one event per incident; the injector expands it into the
  // pairwise cut-set at apply time (a pure function of the RackMap).
  if (racks.rack_count() > 1) {
    std::uint32_t incident = kIncidentRackPartition;
    arrivals(seed, kTagRackPartition, cfg.rack_partition_mean_s,
             cfg.horizon_s, [&](double t, SplitMix64& rng) {
               FaultEvent ev;
               ev.at = t;
               ev.kind = FaultKind::kRackPartition;
               ev.node = static_cast<std::uint32_t>(
                   rng.next_below(racks.rack_count()));
               ev.duration_s = cfg.rack_partition_duration_s;
               ev.incident = ++incident;
               plan.push_back(ev);
             });
  }

  // Deploy storm: a registry outage coinciding with a burst of pod
  // kills — pulls for the replacements hit the dead registry, so the
  // backoff path races the outage window.
  {
    std::uint32_t incident = kIncidentDeployStorm;
    arrivals(seed, kTagDeployStorm, cfg.deploy_storm_mean_s, cfg.horizon_s,
             [&](double t, SplitMix64& rng) {
               ++incident;
               FaultEvent outage;
               outage.at = t;
               outage.kind = FaultKind::kRegistryOutage;
               outage.duration_s = cfg.deploy_storm_outage_s;
               outage.incident = incident;
               plan.push_back(outage);
               for (std::uint32_t k = 0; k < cfg.deploy_storm_kills; ++k) {
                 FaultEvent kill;
                 kill.at = t + rng.next_double() * cfg.deploy_storm_spread_s;
                 kill.kind = FaultKind::kPodKill;
                 kill.pick = rng.next();
                 kill.incident = incident;
                 plan.push_back(kill);
               }
             });
  }

  // ---- Gray failures --------------------------------------------------
  if (crashable > 0) {
    arrivals(seed, kTagCpuSlow, cfg.cpu_slow_mean_s, cfg.horizon_s,
             [&](double t, SplitMix64& rng) {
               FaultEvent ev;
               ev.at = t;
               ev.kind = FaultKind::kCpuSlow;
               ev.node = first + static_cast<std::uint32_t>(
                                     rng.next_below(crashable));
               ev.duration_s = cfg.cpu_slow_duration_s;
               ev.factor = std::clamp(cfg.cpu_slow_factor, 1e-6, 1.0);
               plan.push_back(ev);
             });
  }
  if (node_count > 0 && cfg.flaky_nic_every > 0) {
    arrivals(seed, kTagFlakyNic, cfg.flaky_nic_mean_s, cfg.horizon_s,
             [&](double t, SplitMix64& rng) {
               FaultEvent ev;
               ev.at = t;
               ev.kind = FaultKind::kFlakyNic;
               ev.node = static_cast<std::uint32_t>(
                   rng.next_below(node_count));
               ev.duration_s = cfg.flaky_nic_duration_s;
               plan.push_back(ev);
             });
  }
  if (node_count > 1) {
    arrivals(seed, kTagOnewayPartition, cfg.oneway_partition_mean_s,
             cfg.horizon_s, [&](double t, SplitMix64& rng) {
               FaultEvent ev;
               ev.at = t;
               ev.kind = FaultKind::kOnewayPartition;
               // Directed: node → peer is cut, peer → node keeps flowing.
               ev.node = static_cast<std::uint32_t>(
                   rng.next_below(node_count));
               const std::uint32_t other = static_cast<std::uint32_t>(
                   rng.next_below(node_count - 1));
               ev.peer = other >= ev.node ? other + 1 : other;
               ev.duration_s = cfg.oneway_partition_duration_s;
               plan.push_back(ev);
             });
  }

  // Deterministic total order: time, then every discriminating field.
  // Cross-channel ties are practically impossible (53-bit exponentials)
  // but must still order identically everywhere.
  std::sort(plan.begin(), plan.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              return std::tie(a.at, a.kind, a.node, a.peer, a.incident,
                              a.pick) <
                     std::tie(b.at, b.kind, b.node, b.peer, b.incident,
                              b.pick);
            });
  return plan;
}

std::vector<FaultEvent> make_fault_plan(std::uint64_t seed,
                                        const FaultConfig& cfg,
                                        std::uint32_t node_count) {
  if (node_count == 0) return {};
  const std::uint32_t racks =
      std::clamp<std::uint32_t>(cfg.racks, 1, node_count);
  return make_fault_plan(seed, cfg,
                         cluster::RackMap::blocks(node_count, racks));
}

FaultInjector::FaultInjector(core::PaperTestbed& testbed, FaultConfig cfg,
                             std::uint64_t seed)
    : tb_(testbed),
      cfg_(cfg),
      racks_(cluster::RackMap::blocks(
          static_cast<std::uint32_t>(testbed.cluster().size()),
          std::clamp<std::uint32_t>(
              cfg.racks, 1,
              static_cast<std::uint32_t>(testbed.cluster().size())))),
      node_count_(static_cast<std::uint32_t>(testbed.cluster().size())),
      plan_(make_fault_plan(seed, cfg, racks_)),
      degrade_depth_(node_count_, 0),
      cpu_slow_depth_(node_count_, 0),
      flaky_depth_(node_count_, 0),
      partition_depth_(static_cast<std::size_t>(node_count_) * node_count_,
                       0),
      oneway_depth_(static_cast<std::size_t>(node_count_) * node_count_,
                    0) {}

void FaultInjector::arm() {
  if (armed_) return;
  armed_ = true;
  sim::Simulation& sim = tb_.sim();
  if (cfg_.node_crash_mean_s > 0 || cfg_.rack_fail_mean_s > 0 ||
      cfg_.rack_partition_mean_s > 0) {
    // Crashes and rack cuts are only recoverable end-to-end with the
    // detection loop on (heartbeats → lease expiry → NotReady →
    // evictions → reschedule). Pairwise partitions deliberately don't
    // enable it: they model a single flaky link, not a node that looks
    // dead to the control plane.
    tb_.kube().enable_node_lifecycle(cfg_.lifecycle,
                                     cfg_.heartbeat_interval_s);
  }
  for (std::size_t i = 0; i < plan_.size(); ++i) {
    if (plan_[i].at < sim.now()) continue;  // armed late: past is past
    sim.call_at(plan_[i].at, [this, i] { apply(plan_[i]); });
  }
}

void FaultInjector::apply(const FaultEvent& ev) {
  tb_.sim().trace().record(tb_.sim().now(), "fault", to_string(ev.kind),
                           {{"node", std::to_string(ev.node)}});
  switch (ev.kind) {
    case FaultKind::kNodeCrash:
      apply_node_crash(ev);
      break;
    case FaultKind::kRegistryOutage:
      tb_.registry().set_outage_until(tb_.sim().now() + ev.duration_s);
      ++registry_outages_;
      break;
    case FaultKind::kPodKill:
      apply_pod_kill(ev);
      break;
    case FaultKind::kLinkDegrade:
      apply_degrade(ev);
      break;
    case FaultKind::kPartition:
      apply_partition(ev);
      break;
    case FaultKind::kCpuSlow:
      apply_cpu_slow(ev);
      break;
    case FaultKind::kFlakyNic:
      apply_flaky_nic(ev);
      break;
    case FaultKind::kRackPartition:
      apply_rack_partition(ev);
      break;
    case FaultKind::kOnewayPartition:
      apply_oneway_partition(ev);
      break;
    case FaultKind::kCatalogOutage:
      if (tb_.catalog_service() != nullptr) {
        tb_.catalog_service()->set_outage_until(tb_.sim().now() +
                                                ev.duration_s);
        ++catalog_outages_;
      } else {
        ++skipped_;  // no metadata tier on this testbed
      }
      break;
  }
}

void FaultInjector::apply_node_crash(const FaultEvent& ev) {
  cluster::Node& node = tb_.cluster().node(ev.node);
  if (!node.up()) {
    ++skipped_;  // crashed while already down; its reboot is pending
    return;
  }
  node.fail();
  ++node_crashes_;
  tb_.sim().call_in(ev.duration_s, [this, &node] {
    if (!node.up()) {
      node.recover();
      ++node_reboots_;
    }
  });
}

void FaultInjector::apply_pod_kill(const FaultEvent& ev) {
  // Candidates in NamedStore name order (deterministic); only pods a
  // kubelet actually manages can be killed.
  std::vector<std::string> candidates;
  tb_.kube().api().for_each_pod([&](const k8s::Pod& pod) {
    if (pod.node_name.empty()) return;
    if (pod.phase == k8s::PodPhase::kScheduled ||
        pod.phase == k8s::PodPhase::kRunning) {
      candidates.push_back(pod.name);
    }
  });
  if (candidates.empty()) {
    ++skipped_;
    return;
  }
  const std::string& victim = candidates[ev.pick % candidates.size()];
  if (tb_.kube().kill_pod(victim)) {
    ++pod_kills_;
  } else {
    ++skipped_;
  }
}

void FaultInjector::apply_degrade(const FaultEvent& ev) {
  cluster::Node& node = tb_.cluster().node(ev.node);
  if (++degrade_depth_[ev.node] == 1) {
    tb_.cluster().network().set_node_bandwidth_factor(node.net_id(),
                                                      ev.factor);
  }
  // Nested windows keep the FIRST factor; capacity returns when the last
  // window expires.
  ++degrades_;
  tb_.sim().call_in(ev.duration_s, [this, &node, idx = ev.node] {
    if (--degrade_depth_[idx] <= 0) {
      degrade_depth_[idx] = 0;
      tb_.cluster().network().set_node_bandwidth_factor(node.net_id(), 1.0);
    }
  });
}

std::size_t FaultInjector::pair_index(std::uint32_t a,
                                      std::uint32_t b) const {
  const std::uint32_t lo = std::min(a, b);
  const std::uint32_t hi = std::max(a, b);
  return static_cast<std::size_t>(lo) * node_count_ + hi;
}

void FaultInjector::cut_pair(std::uint32_t a, std::uint32_t b,
                             bool blocked) {
  const std::size_t idx = pair_index(a, b);
  const net::NodeId na = tb_.cluster().node(a).net_id();
  const net::NodeId nb = tb_.cluster().node(b).net_id();
  if (blocked) {
    if (++partition_depth_[idx] == 1) {
      tb_.cluster().network().set_partition(na, nb, true);
    }
  } else {
    if (--partition_depth_[idx] <= 0) {
      partition_depth_[idx] = 0;
      tb_.cluster().network().set_partition(na, nb, false);
    }
  }
}

void FaultInjector::apply_partition(const FaultEvent& ev) {
  cut_pair(ev.node, ev.peer, true);
  ++partitions_;
  tb_.sim().call_in(ev.duration_s, [this, a = ev.node, b = ev.peer] {
    cut_pair(a, b, false);
  });
}

void FaultInjector::apply_rack_partition(const FaultEvent& ev) {
  // Cut-set: every {inside, outside} pair of the chosen rack, depth-
  // counted per pair so an overlapping pairwise partition (or a second
  // cut of an adjacent rack sharing pairs) never heals a link early.
  const std::uint32_t rack = ev.node;
  const auto& inside = racks_.nodes_in(rack);
  for (const std::uint32_t in : inside) {
    for (std::uint32_t out = 0; out < node_count_; ++out) {
      if (racks_.rack_of(out) == rack) continue;
      cut_pair(in, out, true);
    }
  }
  ++rack_partitions_;
  tb_.sim().call_in(ev.duration_s, [this, rack] {
    const auto& members = racks_.nodes_in(rack);
    for (const std::uint32_t in : members) {
      for (std::uint32_t out = 0; out < node_count_; ++out) {
        if (racks_.rack_of(out) == rack) continue;
        cut_pair(in, out, false);
      }
    }
  });
}

void FaultInjector::apply_oneway_partition(const FaultEvent& ev) {
  // Directed depth table (src*n+dst): overlapping windows on the same
  // direction heal once; the reverse direction is an independent entry.
  // Deliberately NOT depth-shared with the symmetric table — a symmetric
  // cut healing must not resurrect a still-open one-way cut or vice
  // versa, and FlowNetwork already ORs the two tables per direction.
  const std::size_t idx =
      static_cast<std::size_t>(ev.node) * node_count_ + ev.peer;
  const net::NodeId src = tb_.cluster().node(ev.node).net_id();
  const net::NodeId dst = tb_.cluster().node(ev.peer).net_id();
  if (++oneway_depth_[idx] == 1) {
    tb_.cluster().network().set_partition_oneway(src, dst, true);
  }
  ++oneway_partitions_;
  tb_.sim().call_in(ev.duration_s, [this, idx, src, dst] {
    if (--oneway_depth_[idx] <= 0) {
      oneway_depth_[idx] = 0;
      tb_.cluster().network().set_partition_oneway(src, dst, false);
    }
  });
}

void FaultInjector::apply_cpu_slow(const FaultEvent& ev) {
  cluster::Node& node = tb_.cluster().node(ev.node);
  if (++cpu_slow_depth_[ev.node] == 1) {
    node.set_cpu_slowdown(ev.factor);
  }
  // Nested windows keep the FIRST factor; full speed returns when the
  // last window expires.
  ++cpu_slows_;
  tb_.sim().call_in(ev.duration_s, [this, &node, idx = ev.node] {
    if (--cpu_slow_depth_[idx] <= 0) {
      cpu_slow_depth_[idx] = 0;
      node.set_cpu_slowdown(1.0);
    }
  });
}

void FaultInjector::apply_flaky_nic(const FaultEvent& ev) {
  cluster::Node& node = tb_.cluster().node(ev.node);
  if (++flaky_depth_[ev.node] == 1) {
    tb_.cluster().network().set_node_flaky(
        node.net_id(), cfg_.flaky_nic_every, cfg_.flaky_nic_stall_s);
  }
  ++flaky_nics_;
  tb_.sim().call_in(ev.duration_s, [this, &node, idx = ev.node] {
    if (--flaky_depth_[idx] <= 0) {
      flaky_depth_[idx] = 0;
      tb_.cluster().network().set_node_flaky(node.net_id(), 0, 0);
    }
  });
}

}  // namespace sf::fault
