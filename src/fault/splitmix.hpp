#pragma once

#include <cmath>
#include <cstdint>

namespace sf::fault {

/// SplitMix64 (Steele, Lea & Flood): 64 bits of state, a handful of
/// shifts and multiplies per draw, and — crucially for fault planning —
/// trivially forkable. The injector derives one independent stream per
/// fault channel by hashing (seed, channel tag), so the node-crash
/// timeline never shifts because the pod-kill channel drew one extra
/// number, and no fault decision ever touches the Simulation's own Rng
/// (whose draw order depends on workload event interleaving).
///
/// All derived distributions use inverse-CDF transforms over exact
/// integer draws: bit-identical across platforms, unlike the unspecified
/// algorithms behind std::exponential_distribution.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// One hash step without a generator: mixes (seed, tag) into the seed of
  /// an independent stream. Forked streams stay decoupled because the tag
  /// lands before the avalanche rounds, not XORed onto the output.
  static constexpr std::uint64_t mix(std::uint64_t seed, std::uint64_t tag) {
    SplitMix64 g(seed ^ (0x632be59bd9b4e019ull * (tag + 1)));
    return g.next();
  }

  [[nodiscard]] static constexpr SplitMix64 fork(std::uint64_t seed,
                                                 std::uint64_t tag) {
    return SplitMix64(mix(seed, tag));
  }

  /// Uniform double in [0, 1) with 53 significant bits.
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, n); n must be positive. Plain modulo: the
  /// bias at our n (dozens of nodes) is ~1e-17 and, unlike rejection
  /// sampling, the draw count per event is fixed.
  std::uint64_t next_below(std::uint64_t n) { return next() % n; }

  /// Exponential with the given mean (inter-arrival times).
  double exponential(double mean) {
    return -mean * std::log1p(-next_double());
  }

 private:
  std::uint64_t state_;
};

}  // namespace sf::fault
