#pragma once

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/random.hpp"

namespace sf::fault {

/// Shared capped-exponential retry/backoff schedule — the one helper
/// behind every retry loop in the stack (kubelet image pulls, the
/// router's 429/504 retries, deployment crash-loop pacing, catalog
/// client refetches). Delay before retry `attempt` (0-indexed) is
///
///     min(cap_s, base_s * multiplier^attempt)
///
/// optionally multiplied by uniform(1 - jitter_ratio, 1 + jitter_ratio)
/// drawn from the engine RNG. Seed-purity contract: the jittered overload
/// draws NOTHING when jitter_ratio == 0, so a site that never asked for
/// jitter never consumes a draw — enabling jitter at one site cannot
/// perturb another site's stream, and plans/goldens stay bit-identical
/// under refactors that route more sites through this struct.
struct RetryPolicy {
  int max_attempts = 4;     ///< total tries (first attempt included)
  double base_s = 0.5;      ///< delay before the first retry
  double cap_s = 8.0;       ///< delays never exceed this
  double multiplier = 2.0;  ///< per-attempt growth factor
  double jitter_ratio = 0;  ///< ±fraction of the delay; 0 = deterministic

  /// cap_s value meaning "pure exponential, never capped".
  static constexpr double kNoCap = std::numeric_limits<double>::infinity();

  /// Fixed-delay pacing (crash-loop restart backoff): every retry waits
  /// exactly `delay_s`.
  static constexpr RetryPolicy constant(double delay_s,
                                        int max_attempts = 1) {
    return RetryPolicy{max_attempts, delay_s, delay_s, 1.0, 0.0};
  }

  /// True when `attempt` (0-indexed) was the last allowed try.
  [[nodiscard]] constexpr bool exhausted(int attempt) const {
    return attempt + 1 >= max_attempts;
  }

  /// Deterministic delay before retrying after failure `attempt`.
  [[nodiscard]] double backoff_s(int attempt) const {
    return std::min(cap_s,
                    base_s * std::pow(multiplier, std::max(attempt, 0)));
  }

  /// Jittered delay; consumes one uniform draw iff jitter_ratio > 0.
  [[nodiscard]] double backoff_jittered(int attempt, sim::Rng& rng) const {
    const double delay = backoff_s(attempt);
    if (jitter_ratio <= 0) return delay;
    return delay * rng.uniform(1.0 - jitter_ratio, 1.0 + jitter_ratio);
  }
};

}  // namespace sf::fault
