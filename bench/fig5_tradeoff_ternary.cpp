// Figure 5 — the performance/isolation trade-off over the execution-mode
// simplex: every mix of (native, container, serverless) task fractions is
// a point in the ternary plot; its color in the paper is the average
// makespan of the slowest of 10 concurrent 10-task workflows.
//
// This bench sweeps a simplex grid (step 0.25) and emits the data behind
// the plot: ternary coordinates, isolation score and makespan per point.
// The corners reproduce the paper's qualitative reading: native fastest /
// no isolation, per-task containers isolated / slowest, serverless in
// between via container reuse.

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/testbed.hpp"

namespace {

using namespace sf;
using namespace sf::core;

double slowest_for(const metrics::MixPoint& mix, std::uint64_t seed) {
  PaperTestbed tb(seed);
  if (mix.serverless > 0) tb.register_matmul_function();
  const auto result = tb.run_concurrent_mix(10, 10, mix);
  if (!result.all_succeeded) {
    std::cerr << "run failed at (" << mix.native << "," << mix.container
              << "," << mix.serverless << ")\n";
  }
  return result.slowest;
}

}  // namespace

int main() {
  sf::bench::banner(
      "Figure 5: performance-isolation ternary sweep",
      "corners: native = best performance / no isolation; container = "
      "strong isolation / slowest; serverless balances via reuse");

  sf::metrics::Table table({"native", "container", "serverless", "tern_x",
                            "tern_y", "isolation", "slowest_makespan_s"},
                           3);
  constexpr int kSteps = 4;  // grid step 0.25 → 15 simplex points
  double best = 1e300;
  double worst = 0;
  metrics::MixPoint best_mix;
  metrics::MixPoint worst_mix;
  for (int ni = 0; ni <= kSteps; ++ni) {
    for (int ci = 0; ci + ni <= kSteps; ++ci) {
      const int si = kSteps - ni - ci;
      metrics::MixPoint mix{static_cast<double>(ni) / kSteps,
                            static_cast<double>(ci) / kSteps,
                            static_cast<double>(si) / kSteps};
      const double makespan = slowest_for(mix, 42);
      const auto xy = metrics::to_ternary_xy(mix);
      table.add_row({mix.native, mix.container, mix.serverless, xy.x, xy.y,
                     metrics::isolation_score(mix), makespan});
      if (makespan < best) {
        best = makespan;
        best_mix = mix;
      }
      if (makespan > worst) {
        worst = makespan;
        worst_mix = mix;
      }
    }
  }
  table.print_text(std::cout);
  std::cout << "\nfastest point: native=" << best_mix.native
            << " container=" << best_mix.container
            << " serverless=" << best_mix.serverless << " (" << best
            << " s)\n";
  std::cout << "slowest point: native=" << worst_mix.native
            << " container=" << worst_mix.container
            << " serverless=" << worst_mix.serverless << " (" << worst
            << " s)\n";
  std::cout << "paper: fastest = all-native corner, slowest = all-container "
               "corner, serverless corner close to native\n";
  return 0;
}
