// Ablation — Pegasus task clustering (paper §II-C).
//
// "Pegasus also performs workflow restructuring and task clustering to
// improve execution efficiency." Vertical clustering folds chains of
// tasks into one condor job, removing per-hop scheduling latency. This
// bench sweeps the cluster factor over the paper's 10-task chain in
// native and containerized modes.

#include <cstddef>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/testbed.hpp"
#include "sim/sweep_runner.hpp"

namespace {

using namespace sf;
using namespace sf::core;

double run(pegasus::JobMode mode, int cluster_size) {
  PaperTestbed tb(42);
  if (mode == pegasus::JobMode::kServerless) tb.register_matmul_function();
  auto wf = workload::make_matmul_chain("w", 10,
                                        tb.calibration().matrix_bytes);
  std::map<std::string, pegasus::JobMode> modes;
  for (const auto& job : wf.jobs()) modes[job.id] = mode;
  const auto result = tb.run_workflows({wf}, modes, cluster_size);
  if (!result.all_succeeded) std::cerr << "run failed\n";
  return result.slowest;
}

}  // namespace

int main() {
  sf::bench::banner(
      "Ablation: vertical task clustering on the 10-task chain",
      "larger clusters remove DAGMan/condor hops; the win is largest for "
      "container mode (one image transfer per cluster, not per task)");

  // (cluster size, mode) points are independent sims; sweep in parallel.
  const std::vector<int> cluster_sizes{1, 2, 5, 10};
  const std::vector<pegasus::JobMode> mode_order{
      pegasus::JobMode::kNative, pegasus::JobMode::kContainer,
      pegasus::JobMode::kServerless};
  struct Point {
    pegasus::JobMode mode = pegasus::JobMode::kNative;
    int cluster_size = 1;
  };
  std::vector<Point> points;
  for (int k : cluster_sizes) {
    for (pegasus::JobMode mode : mode_order) points.push_back({mode, k});
  }
  sf::sim::SweepRunner runner;
  const auto makespans =
      runner.run(points.size(), [&points](std::size_t i) {
        return run(points[i].mode, points[i].cluster_size);
      });

  sf::metrics::Table table(
      {"cluster_size", "native_s", "container_s", "serverless_s"}, 2);
  for (std::size_t i = 0; i < cluster_sizes.size(); ++i) {
    table.add_row({static_cast<std::int64_t>(cluster_sizes[i]),
                   makespans[i * 3], makespans[i * 3 + 1],
                   makespans[i * 3 + 2]});
  }
  table.print_text(std::cout);
  return 0;
}
