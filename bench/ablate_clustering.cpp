// Ablation — Pegasus task clustering (paper §II-C).
//
// "Pegasus also performs workflow restructuring and task clustering to
// improve execution efficiency." Vertical clustering folds chains of
// tasks into one condor job, removing per-hop scheduling latency. This
// bench sweeps the cluster factor over the paper's 10-task chain in
// native and containerized modes.

#include <iostream>

#include "bench_util.hpp"
#include "core/testbed.hpp"

namespace {

using namespace sf;
using namespace sf::core;

double run(pegasus::JobMode mode, int cluster_size) {
  PaperTestbed tb(42);
  if (mode == pegasus::JobMode::kServerless) tb.register_matmul_function();
  auto wf = workload::make_matmul_chain("w", 10,
                                        tb.calibration().matrix_bytes);
  std::map<std::string, pegasus::JobMode> modes;
  for (const auto& job : wf.jobs()) modes[job.id] = mode;
  const auto result = tb.run_workflows({wf}, modes, cluster_size);
  if (!result.all_succeeded) std::cerr << "run failed\n";
  return result.slowest;
}

}  // namespace

int main() {
  sf::bench::banner(
      "Ablation: vertical task clustering on the 10-task chain",
      "larger clusters remove DAGMan/condor hops; the win is largest for "
      "container mode (one image transfer per cluster, not per task)");

  sf::metrics::Table table(
      {"cluster_size", "native_s", "container_s", "serverless_s"}, 2);
  for (int k : {1, 2, 5, 10}) {
    table.add_row({static_cast<std::int64_t>(k),
                   run(pegasus::JobMode::kNative, k),
                   run(pegasus::JobMode::kContainer, k),
                   run(pegasus::JobMode::kServerless, k)});
  }
  table.print_text(std::cout);
  return 0;
}
