// Micro-benchmarks (google-benchmark): costs of the simulation engine
// itself plus the one real computation in the repository — the matmul
// kernel used to sanity-check the calibrated task cost.

#include <benchmark/benchmark.h>

#include "cluster/cluster.hpp"
#include "core/testbed.hpp"
#include "net/flow_network.hpp"
#include "sim/event_queue.hpp"
#include "sim/ps_resource.hpp"
#include "sim/simulation.hpp"
#include "workload/matrix.hpp"

namespace {

using namespace sf;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    for (std::size_t i = 0; i < n; ++i) {
      q.schedule(static_cast<double>(i % 97), [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().id);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1000)->Arg(10000);

void BM_SimulationEventChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    int remaining = 10000;
    std::function<void()> tick = [&] {
      if (--remaining > 0) sim.call_in(0.001, tick);
    };
    sim.call_in(0.0, tick);
    sim.run();
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulationEventChurn);

void BM_PsResourceChurn(benchmark::State& state) {
  const auto jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    sim::PsResource cpu(sim, 8.0);
    for (int i = 0; i < jobs; ++i) {
      cpu.submit(1.0, [] {}, 1.0);
    }
    sim.run();
    benchmark::DoNotOptimize(cpu.active_jobs());
  }
  state.SetItemsProcessed(state.iterations() * jobs);
}
BENCHMARK(BM_PsResourceChurn)->Arg(16)->Arg(128);

void BM_FlowNetworkFanout(benchmark::State& state) {
  const auto flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    net::FlowNetwork net(sim);
    const auto src = net.add_node(1e9, 1e-4);
    for (int i = 0; i < flows; ++i) {
      const auto dst = net.add_node(1e9, 1e-4);
      net.transfer(src, dst, 1e6, [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(net.total_bytes_delivered());
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FlowNetworkFanout)->Arg(8)->Arg(64);

void BM_MatmulKernelReal(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Rng rng(42);
  const auto a = workload::Matrix::random(n, rng);
  const auto b = workload::Matrix::random(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.multiply(b).at(0, 0));
  }
}
BENCHMARK(BM_MatmulKernelReal)
    ->Arg(64)
    ->Arg(128)
    ->Arg(workload::kPaperMatrixOrder)
    ->Unit(benchmark::kMillisecond);

void BM_TestbedConstruction(benchmark::State& state) {
  for (auto _ : state) {
    core::PaperTestbed tb(42);
    benchmark::DoNotOptimize(tb.cluster().size());
  }
}
BENCHMARK(BM_TestbedConstruction)->Unit(benchmark::kMillisecond);

void BM_SingleNativeWorkflow(benchmark::State& state) {
  for (auto _ : state) {
    core::PaperTestbed tb(42);
    auto wf = workload::make_matmul_chain("w", 10, 490000);
    const auto result = tb.run_workflows({wf}, {});
    benchmark::DoNotOptimize(result.slowest);
  }
  state.SetLabel("virtual 10-task chain end-to-end");
}
BENCHMARK(BM_SingleNativeWorkflow)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
