// Micro-benchmarks (google-benchmark): costs of the simulation engine
// itself plus the one real computation in the repository — the matmul
// kernel used to sanity-check the calibrated task cost.

#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "condor/pool.hpp"
#include "container/registry.hpp"
#include "core/testbed.hpp"
#include "k8s/api_server.hpp"
#include "k8s/controllers.hpp"
#include "k8s/kube_cluster.hpp"
#include "k8s/scheduler.hpp"
#include "knative/kpa.hpp"
#include "metrics/stream_stats.hpp"
#include "net/flow_network.hpp"
#include "sim/event_queue.hpp"
#include "sim/ps_resource.hpp"
#include "sim/simulation.hpp"
#include "storage/replica_catalog.hpp"
#include "storage/volume.hpp"
#include "workload/matrix.hpp"
#include "workload/scale.hpp"

namespace {

using namespace sf;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    for (std::size_t i = 0; i < n; ++i) {
      q.schedule(static_cast<double>(i % 97), [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().id);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1000)->Arg(10000);

// Cancellation-heavy trajectory: schedule a window of events, then cancel
// every other one before popping the survivors. Exercises the eager-removal
// path (list unlink + bucket retirement) that tombstone-based queues pay
// for at pop time instead.
void BM_EventQueueCancelHeavy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<sim::EventId> ids(n);
  for (auto _ : state) {
    sim::EventQueue q;
    for (std::size_t i = 0; i < n; ++i) {
      ids[i] = q.schedule(static_cast<double>(i % 97), [] {});
    }
    for (std::size_t i = 0; i < n; i += 2) q.cancel(ids[i]);
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().id);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_EventQueueCancelHeavy)->Arg(1000)->Arg(10000);

// Mixed steady-state trajectory: a sliding window of pending events where
// each pop triggers a reschedule further out, interleaved with fresh
// inserts — the shape of a simulation in flight rather than a drain.
void BM_EventQueueMixedSchedule(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    for (std::size_t i = 0; i < 64; ++i) {
      q.schedule(static_cast<double>(i), [] {});
    }
    double horizon = 64;
    for (std::size_t i = 0; i < n; ++i) {
      auto fired = q.pop();
      benchmark::DoNotOptimize(fired.id);
      q.schedule(horizon, [] {});
      // Every fourth event lands on an existing instant to mix bucket
      // reuse with fresh timestamps.
      horizon += (i % 4 == 0) ? 0.0 : 1.0;
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().id);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_EventQueueMixedSchedule)->Arg(10000);

void BM_SimulationEventChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    int remaining = 10000;
    std::function<void()> tick = [&] {
      if (--remaining > 0) sim.call_in(0.001, tick);
    };
    sim.call_in(0.0, tick);
    sim.run();
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulationEventChurn);

void BM_PsResourceChurn(benchmark::State& state) {
  const auto jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    sim::PsResource cpu(sim, 8.0);
    for (int i = 0; i < jobs; ++i) {
      cpu.submit(1.0, [] {}, 1.0);
    }
    sim.run();
    benchmark::DoNotOptimize(cpu.active_jobs());
  }
  state.SetItemsProcessed(state.iterations() * jobs);
}
BENCHMARK(BM_PsResourceChurn)->Arg(16)->Arg(128)->Arg(1024);

void BM_FlowNetworkFanout(benchmark::State& state) {
  const auto flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    net::FlowNetwork net(sim);
    const auto src = net.add_node(1e9, 1e-4);
    for (int i = 0; i < flows; ++i) {
      const auto dst = net.add_node(1e9, 1e-4);
      net.transfer(src, dst, 1e6, [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(net.total_bytes_delivered());
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FlowNetworkFanout)->Arg(8)->Arg(64);

// ---- Control-plane hot paths ---------------------------------------------

// Watch fan-out: one object mutation notifying W watchers. The batched
// delivery schedules ONE engine event per mutation regardless of W.
void BM_ApiServerWatchFanout(benchmark::State& state) {
  const int watchers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    k8s::ApiServer api{sim};
    std::uint64_t sink = 0;
    for (int w = 0; w < watchers; ++w) {
      api.watch_pods([&sink](k8s::EventType, const k8s::Pod&) { ++sink; });
    }
    k8s::Pod p;
    p.name = "p0";
    p.container.image = "img:latest";
    api.create_pod(p);
    for (int i = 0; i < 200; ++i) {
      api.mutate_pod("p0", [i](k8s::Pod& pod) { pod.ready = (i & 1) != 0; });
    }
    sim.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 200 * watchers);
}
BENCHMARK(BM_ApiServerWatchFanout)->Arg(4)->Arg(32);

// Scheduler burst: N pending pods placed over an 8-node cluster — the
// single-pass usage accumulation over the pod store.
void BM_SchedulerBurst(benchmark::State& state) {
  const int pods = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    k8s::ApiServer api{sim};
    k8s::Scheduler sched{api};
    for (int n = 0; n < 8; ++n) {
      k8s::NodeObject node;
      node.name = "node-" + std::to_string(n);
      node.allocatable_cpu = 64;
      node.allocatable_memory = 256e9;
      api.register_node(node);
    }
    for (int i = 0; i < pods; ++i) {
      k8s::Pod p;
      p.name = "pod-" + std::to_string(i);
      p.container.image = "img:latest";
      p.container.cpu_limit = 1.0;
      p.container.memory_bytes = 1e9;
      api.create_pod(p);
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * pods);
}
BENCHMARK(BM_SchedulerBurst)->Arg(64)->Arg(256);

// KPA decision tick: feeding a full stable window of samples — the fused
// single-pass stable+panic averaging.
void BM_KpaObserve(benchmark::State& state) {
  knative::KpaScaler::Config cfg;
  cfg.target_concurrency = 4.0;
  for (auto _ : state) {
    knative::KpaScaler kpa(cfg);
    int desired = 0;
    for (int i = 0; i < 600; ++i) {
      const auto d = kpa.observe(static_cast<double>(i) * 0.1,
                                 4.0 + (i % 7), desired);
      desired = d.desired;
    }
    benchmark::DoNotOptimize(desired);
  }
  state.SetItemsProcessed(state.iterations() * 600);
}
BENCHMARK(BM_KpaObserve);

// Condor negotiator throughput: a burst of jobs matched and dispatched
// through claims — sorted-insert idle queue + stamp-based reservations.
void BM_CondorNegotiate(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    auto cl = cluster::make_uniform_cluster(sim, 9, cluster::NodeSpec{});
    std::vector<cluster::Node*> workers;
    for (std::size_t n = 1; n < cl->size(); ++n) {
      workers.push_back(&cl->node(n));
    }
    condor::CondorPool pool(*cl, cl->node(0), workers);
    int done = 0;
    for (int i = 0; i < jobs; ++i) {
      condor::JobSpec spec;
      spec.name = "j" + std::to_string(i);
      spec.priority = i % 3;
      spec.request_cpus = 1;
      spec.request_memory = 1e9;
      spec.executable = [](condor::ExecContext&,
                           std::function<void(bool)> fin) { fin(true); };
      spec.on_done = [&done](const condor::JobRecord&) { ++done; };
      pool.submit(std::move(spec));
    }
    sim.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * jobs);
}
BENCHMARK(BM_CondorNegotiate)->Arg(64)->Arg(256);

// Trace hot path at volume: the 10^5..10^6-events-per-run regime the
// scale sweep lives in. Each record carries two attributes, one with a
// dynamic value — the shape of "request_done {pod, code}". Recorded
// before and after the interned-id / chunked-arena swap (BENCH_engine.json
// keeps the pre-swap numbers under baseline_ns).
void BM_TraceRecordHotPath(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::TraceRecorder tr;
  tr.set_enabled(true);
  std::vector<std::string> pods;
  pods.reserve(64);
  for (std::size_t i = 0; i < 64; ++i) {
    pods.push_back("fn-matmul-00001-deployment-" + std::to_string(i));
  }
  for (auto _ : state) {
    tr.clear();
    for (std::size_t i = 0; i < n; ++i) {
      tr.record(static_cast<double>(i) * 1e-3, "knative", "request_done",
                {{"pod", pods[i & 63]}, {"code", "200"}});
    }
    benchmark::DoNotOptimize(tr.enabled());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_TraceRecordHotPath)->Arg(4096)->Arg(65536);

// Disabled recorder: hot paths trace unconditionally, so the gated cost
// is paid on EVERY traced statement of EVERY run — it must stay at
// argument-evaluation cost, ideally zero allocations.
void BM_TraceRecordGated(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::TraceRecorder tr;
  tr.set_enabled(false);
  const std::string pod = "fn-matmul-00001-deployment-7";
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      tr.record(static_cast<double>(i) * 1e-3, "knative", "request_done",
                {{"pod", pod}, {"code", "200"}});
    }
    benchmark::DoNotOptimize(tr.enabled());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_TraceRecordGated)->Arg(65536);

// Node-scoped watch fan-out at cluster scale: one kubelet-shaped watcher
// per node, pods spread across the nodes, every pod mutated a few times.
// Measures what pod-event delivery costs as the node count grows — the
// curve the sharded watch index must flatten.
void BM_WatchFanoutNodeScoped(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  constexpr int kPods = 256;
  for (auto _ : state) {
    sim::Simulation sim;
    k8s::ApiServer api{sim};
    std::uint64_t sink = 0;
    for (int w = 0; w < nodes; ++w) {
      api.watch_pods_on_node(
          "node-" + std::to_string(w),
          [&sink](k8s::EventType, const k8s::Pod&) { ++sink; });
    }
    for (int i = 0; i < kPods; ++i) {
      k8s::Pod p;
      p.name = "pod-" + std::to_string(i);
      p.container.image = "img:latest";
      p.node_name = "node-" + std::to_string(i % nodes);
      api.create_pod(p);
    }
    for (int i = 0; i < kPods; ++i) {
      const std::string name = "pod-" + std::to_string(i);
      for (int r = 0; r < 4; ++r) {
        api.mutate_pod(name, [r](k8s::Pod& pod) { pod.ready = (r & 1) != 0; });
      }
    }
    sim.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * kPods * 5);
}
BENCHMARK(BM_WatchFanoutNodeScoped)->Arg(64)->Arg(1024);

// Scheduler at scale: a large pod burst over a wide node table. The
// rescan-based scheduler pays O(pods) per bind (O(pods^2) for the burst);
// the incremental per-node usage bookkeeping pays O(nodes) per bind.
void BM_SchedulerScaled(benchmark::State& state) {
  const int pods = static_cast<int>(state.range(0));
  constexpr int kNodes = 128;
  for (auto _ : state) {
    sim::Simulation sim;
    k8s::ApiServer api{sim};
    k8s::Scheduler sched{api};
    for (int n = 0; n < kNodes; ++n) {
      k8s::NodeObject node;
      node.name = "node-" + std::to_string(n);
      node.allocatable_cpu = 64;
      node.allocatable_memory = 256e9;
      api.register_node(node);
    }
    for (int i = 0; i < pods; ++i) {
      k8s::Pod p;
      p.name = "pod-" + std::to_string(i);
      p.container.image = "img:latest";
      p.container.cpu_limit = 1.0;
      p.container.memory_bytes = 1e9;
      api.create_pod(p);
    }
    sim.run();
    benchmark::DoNotOptimize(sched.binds());
  }
  state.SetItemsProcessed(state.iterations() * pods);
}
BENCHMARK(BM_SchedulerScaled)->Arg(2048);

// ---- 10k-node serving-regime hot paths -----------------------------------
//
// The three per-tick control-plane costs that gate the scale curve past
// 1024 nodes: kubelet heartbeat renewal, the node-lifecycle sweep, and the
// deployment reconcile scan. Recorded before and after the heartbeat-wheel
// / pod-index / deadline-queue rewrite (BENCH_engine.json keeps the
// pre-rewrite numbers under baseline_ns).

// Heartbeat renewal for a full cluster over 5 sim-seconds. Per-kubelet
// self-rearming timers pay one engine event + one lease-map lookup per
// node per interval; the shared wheel renews the whole cohort from one
// event with O(1) dense-slot renewals. Sweeps are pushed out of the
// window so only the heartbeat path is measured.
void BM_HeartbeatTick(benchmark::State& state) {
  const auto nodes = static_cast<std::uint32_t>(state.range(0));
  sim::Simulation sim;
  auto topo = workload::make_scaled_topology(sim, nodes, 8);
  container::Registry hub{topo.cluster->node(0)};
  k8s::KubeCluster kube{*topo.cluster, hub, topo.workers};
  k8s::NodeLifecycleConfig cfg;
  cfg.sweep_interval_s = 1e9;  // isolate heartbeats from sweep cost
  kube.enable_node_lifecycle(cfg, 1.0);
  for (auto _ : state) {
    sim.run_until(sim.now() + 5.0);
    benchmark::DoNotOptimize(kube.api().node_lease("node1"));
  }
  state.SetItemsProcessed(state.iterations() * nodes * 5);
}
BENCHMARK(BM_HeartbeatTick)->Arg(1024)->Arg(4096)->Arg(10240);

// Lifecycle sweep with zero expired leases — the steady-state tick. The
// rescan pays O(nodes) per sweep regardless of activity; the deadline-
// ordered queue pops nothing and pays O(1). 10 sweeps per iteration.
void BM_LifecycleSweep(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  sim::Simulation sim;
  k8s::ApiServer api{sim};
  for (int n = 0; n < nodes; ++n) {
    k8s::NodeObject node;
    node.name = "node" + std::to_string(n);
    node.allocatable_cpu = 64;
    node.allocatable_memory = 256e9;
    api.register_node(node);
  }
  k8s::NodeLifecycleConfig cfg;
  cfg.lease_duration_s = 1e18;  // nothing ever expires
  cfg.sweep_interval_s = 1.0;
  k8s::NodeLifecycleController ctl{api, cfg};
  for (auto _ : state) {
    sim.run_until(sim.now() + 10.0);
    benchmark::DoNotOptimize(ctl.evictions());
  }
  state.SetItemsProcessed(state.iterations() * 10);
}
BENCHMARK(BM_LifecycleSweep)->Arg(1024)->Arg(4096)->Arg(10240);

// Deployment reconcile against a large pod store: 64 deployments own
// `pods` pods total; each iteration touches one deployment's replica
// count twice, triggering two no-op reconciles. The full-store scan pays
// O(all pods) per reconcile; the per-owner index pays O(that
// deployment's pods).
void BM_DeploymentReconcile(benchmark::State& state) {
  const int pods = static_cast<int>(state.range(0));
  constexpr int kDeps = 64;
  const int replicas = pods / kDeps;
  sim::Simulation sim;
  k8s::ApiServer api{sim};
  k8s::DeploymentController ctl{api};
  for (int d = 0; d < kDeps; ++d) {
    k8s::Deployment dep;
    dep.name = "dep-" + std::to_string(d);
    dep.selector = {{"app", dep.name}};
    dep.pod_labels = dep.selector;
    dep.pod_template.image = "img:latest";
    dep.replicas = replicas;
    api.apply_deployment(std::move(dep));
  }
  sim.run();  // controller creates the pods; no scheduler, queue drains
  int d = 0;
  for (auto _ : state) {
    const std::string name = "dep-" + std::to_string(d);
    api.set_deployment_replicas(name, replicas + 1);
    api.set_deployment_replicas(name, replicas);
    sim.run();
    d = (d + 1) % kDeps;
    benchmark::DoNotOptimize(ctl.pods_created());
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_DeploymentReconcile)->Arg(1024)->Arg(4096)->Arg(10240);

// ---- Data-plane resilience hot paths -------------------------------------

// Stats sink record path: one histogram sample + one counter bump per
// request, through pre-resolved handles — what every proxied request pays
// when per-revision stats are on. Must stay allocation-free: flat slot
// vectors, no hashing, no strings.
void BM_HistogramRecord(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  stats::StatsStore store;
  const auto h = store.histogram(1, 2);
  const auto c = store.counter(1, 3);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      store.record_seconds(h, 1e-6 * static_cast<double>(i & 1023));
      store.add(c, 1);
    }
    benchmark::DoNotOptimize(store.hist(h).count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_HistogramRecord)->Arg(65536);

// Router endpoint selection with the ejection filter armed — the
// per-attempt cost outlier detection adds to every routed request
// (round-robin scan + per-pod ejection probe over a warm 3-pod fleet).
void BM_RouterPickBackend(benchmark::State& state) {
  core::TestbedOptions opts;
  opts.prestage_images = true;
  core::ProvisioningPolicy policy = core::ProvisioningPolicy::prestaged(3);
  policy.max_scale = 3;
  policy.container_concurrency = 1;
  policy.outlier.enabled = true;
  opts.provisioning = policy;
  core::PaperTestbed tb(42, opts);
  tb.register_matmul_function();
  tb.sim().run_until(60.0);  // warm pods up and ready
  for (auto _ : state) {
    benchmark::DoNotOptimize(tb.serving().pick_backend_for_bench("fn-matmul"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RouterPickBackend);

// ---- Replica-catalog lookup hot path -------------------------------------

// The planner resolves every stage-in source and registers every final
// output through the replica catalog, so primary() sits on the plan/run
// path of each workflow. After the interned-id rewrite a lookup is one
// lfn hash plus one dense vector index; BM_CatalogLookupMap keeps the
// pre-rewrite shape — a red-black tree keyed by the full lfn string,
// every probe a log(n) walk of string comparisons — as the baseline the
// BENCH_engine.json speedup is measured against.
void BM_CatalogLookup(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Simulation sim;
  auto cl = cluster::make_uniform_cluster(sim, 2, cluster::NodeSpec{});
  storage::Volume vol(cl->node(1), "disk");
  storage::ReplicaCatalog catalog;
  std::vector<std::string> lfns;
  lfns.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    lfns.push_back("run0.wf" + std::to_string(i % 97) + ".m" +
                   std::to_string(i));
    catalog.register_replica(lfns.back(), vol);
  }
  for (auto _ : state) {
    for (const auto& lfn : lfns) {
      benchmark::DoNotOptimize(catalog.primary(lfn));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_CatalogLookup)->Arg(256)->Arg(4096);

void BM_CatalogLookupMap(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Simulation sim;
  auto cl = cluster::make_uniform_cluster(sim, 2, cluster::NodeSpec{});
  storage::Volume vol(cl->node(1), "disk");
  std::map<std::string, std::vector<storage::Volume*>> catalog;
  std::vector<std::string> lfns;
  lfns.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    lfns.push_back("run0.wf" + std::to_string(i % 97) + ".m" +
                   std::to_string(i));
    catalog[lfns.back()].push_back(&vol);
  }
  for (auto _ : state) {
    for (const auto& lfn : lfns) {
      const auto it = catalog.find(lfn);
      benchmark::DoNotOptimize(it == catalog.end() ? nullptr
                                                   : it->second.front());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_CatalogLookupMap)->Arg(256)->Arg(4096);

void BM_MatmulKernelReal(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Rng rng(42);
  const auto a = workload::Matrix::random(n, rng);
  const auto b = workload::Matrix::random(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.multiply(b).at(0, 0));
  }
}
BENCHMARK(BM_MatmulKernelReal)
    ->Arg(64)
    ->Arg(128)
    ->Arg(workload::kPaperMatrixOrder)
    ->Unit(benchmark::kMillisecond);

void BM_TestbedConstruction(benchmark::State& state) {
  for (auto _ : state) {
    core::PaperTestbed tb(42);
    benchmark::DoNotOptimize(tb.cluster().size());
  }
}
BENCHMARK(BM_TestbedConstruction)->Unit(benchmark::kMillisecond);

void BM_SingleNativeWorkflow(benchmark::State& state) {
  for (auto _ : state) {
    core::PaperTestbed tb(42);
    auto wf = workload::make_matmul_chain("w", 10, 490000);
    const auto result = tb.run_workflows({wf}, {});
    benchmark::DoNotOptimize(result.slowest);
  }
  state.SetLabel("virtual 10-task chain end-to-end");
}
BENCHMARK(BM_SingleNativeWorkflow)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
