#pragma once

#include <iostream>
#include <string>

#include "metrics/regression.hpp"
#include "metrics/table.hpp"

namespace sf::bench {

/// Prints a figure banner so bench output reads like the paper's
/// evaluation section.
inline void banner(const std::string& title, const std::string& paper_note) {
  std::cout << "\n==========================================================\n"
            << title << '\n'
            << "paper: " << paper_note << '\n'
            << "==========================================================\n";
}

inline void print_fit(const std::string& label,
                      const sf::metrics::LinearFit& fit) {
  std::cout << label << ": slope=" << fit.slope
            << " s/task, intercept=" << fit.intercept << " s, R^2=" << fit.r2
            << '\n';
}

}  // namespace sf::bench
