// Figure 2 — scaling of parallel tasks: native vs Knative vs traditional
// containers, all driven through Pegasus + HTCondor (the paper found
// direct concurrent Knative invocation without condor queueing crashed
// the VM, so every setup goes through the scheduler).
//
// Paper anchors: regression slopes native 0.28, Knative 0.30,
// condor-container 0.96 s/task.
//
// The 18 sweep points (6 task counts x 3 modes) are independent
// simulations; they run across a SweepRunner thread pool and print in
// sweep order, so stdout is bit-identical at any SF_SWEEP_THREADS.

#include <cstddef>
#include <iostream>
#include <map>
#include <vector>

#include "bench_util.hpp"
#include "core/testbed.hpp"
#include "sim/sweep_runner.hpp"

namespace {

using namespace sf;
using namespace sf::core;

double parallel_makespan(pegasus::JobMode mode, int n_tasks) {
  PaperTestbed tb(42);
  if (mode == pegasus::JobMode::kServerless) {
    tb.register_matmul_function();
  }
  auto wf = workload::make_parallel_matmuls("p", n_tasks,
                                            tb.calibration().matrix_bytes);
  std::map<std::string, pegasus::JobMode> modes;
  for (const auto& job : wf.jobs()) modes[job.id] = mode;
  const auto result = tb.run_workflows({wf}, modes);
  if (!result.all_succeeded) {
    std::cerr << "run failed: mode=" << pegasus::to_string(mode)
              << " n=" << n_tasks << '\n';
  }
  return result.slowest;
}

struct Point {
  pegasus::JobMode mode = pegasus::JobMode::kNative;
  int tasks = 0;
};

}  // namespace

int main() {
  sf::bench::banner("Figure 2: parallel task scaling",
                    "regression slopes — native 0.28, Knative 0.30, "
                    "container on HTCondor 0.96 s/task");

  const std::vector<int> counts{8, 16, 24, 48, 72, 96};
  const std::vector<pegasus::JobMode> mode_order{
      pegasus::JobMode::kNative, pegasus::JobMode::kServerless,
      pegasus::JobMode::kContainer};
  std::vector<Point> points;
  for (int n : counts) {
    for (pegasus::JobMode mode : mode_order) points.push_back({mode, n});
  }

  sf::sim::SweepRunner runner;
  const std::vector<double> makespans =
      runner.run(points.size(), [&points](std::size_t i) {
        return parallel_makespan(points[i].mode, points[i].tasks);
      });

  sf::metrics::Table table(
      {"tasks", "native_s", "knative_s", "container_s"}, 2);
  std::vector<double> xs;
  std::map<pegasus::JobMode, std::vector<double>> ys;
  for (std::size_t c = 0; c < counts.size(); ++c) {
    const double native = makespans[c * 3];
    const double knative = makespans[c * 3 + 1];
    const double cont = makespans[c * 3 + 2];
    xs.push_back(counts[c]);
    ys[pegasus::JobMode::kNative].push_back(native);
    ys[pegasus::JobMode::kServerless].push_back(knative);
    ys[pegasus::JobMode::kContainer].push_back(cont);
    table.add_row(
        {static_cast<std::int64_t>(counts[c]), native, knative, cont});
  }
  table.print_text(std::cout);

  const auto native_fit =
      sf::metrics::fit_line(xs, ys[pegasus::JobMode::kNative]);
  const auto knative_fit =
      sf::metrics::fit_line(xs, ys[pegasus::JobMode::kServerless]);
  const auto container_fit =
      sf::metrics::fit_line(xs, ys[pegasus::JobMode::kContainer]);
  sf::bench::print_fit("native   (paper 0.28)", native_fit);
  sf::bench::print_fit("knative  (paper 0.30)", knative_fit);
  sf::bench::print_fit("container(paper 0.96)", container_fit);
  return 0;
}
