// Figure 1 — container reuse for sequential small tasks.
//
// Reproduces the paper's motivation experiment (Section III-B): N
// sequential matrix-multiplication tasks executed (a) each in a fresh
// Docker container (`docker run` per task) and (b) as HTTP invocations of
// a Knative function that reuses its container, on the 4-node testbed.
// Input data lives on the node, so invocations carry no payload; the
// first Knative request pays the measured 1.48 s cold start.
//
// Paper anchors: Docker ≈ 100 s and Knative ≈ 78 s at 160 tasks; slope
// analysis shows Knative reduces total execution time by up to ~30%.

#include <functional>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "container/image.hpp"
#include "core/testbed.hpp"

namespace {

using namespace sf;
using namespace sf::core;

/// Total virtual time for N sequential `docker run` tasks on one worker.
double docker_total(int n_tasks) {
  PaperTestbed tb(42);
  const CalibrationProfile& cal = tb.calibration();
  auto& docker = tb.docker();
  auto& runtime = docker.runtime("node1");
  docker.cache("node1").seed_image(
      container::make_task_image("matmul"));  // image already local

  container::ContainerSpec spec;
  spec.name = "matmul";
  spec.image = "matmul:latest";
  spec.cpu_limit = 1.0;
  spec.memory_bytes = cal.task_memory_bytes;
  spec.boot_s = cal.python_startup_s;  // fresh interpreter per container

  int completed = 0;
  std::function<void()> next = [&] {
    if (completed == n_tasks) return;
    runtime.run_task_once(spec, cal.matmul_work_s, tb.registry(),
                          [&](bool ok) {
                            if (!ok) return;
                            ++completed;
                            next();
                          });
  };
  const double start = tb.sim().now();
  next();
  tb.sim().run();
  return tb.sim().now() - start;
}

/// Total virtual time for N sequential Knative invocations (cold start
/// included), image pre-distributed, container reused across requests.
double knative_total(int n_tasks) {
  TestbedOptions opts;
  opts.provisioning = ProvisioningPolicy::deferred();  // cold start visible
  PaperTestbed tb(42, opts);
  tb.register_matmul_function();

  int completed = 0;
  const double start = tb.sim().now();
  std::function<void()> next = [&] {
    if (completed == n_tasks) return;
    net::HttpRequest req;
    TaskPayload payload;
    payload.work_coreseconds = tb.calibration().matmul_work_s;
    payload.output_bytes = 64;  // status only; data stays on the node
    req.body = payload;
    req.body_bytes = 128;
    tb.serving().invoke(tb.cluster().node(0).net_id(), "fn-matmul",
                        std::move(req), [&](net::HttpResponse resp) {
                          if (!resp.ok()) return;
                          ++completed;
                          next();
                        });
  };
  next();
  while (completed < n_tasks && tb.sim().has_pending_events()) {
    tb.sim().step();
  }
  return tb.sim().now() - start;
}

}  // namespace

int main() {
  sf::bench::banner(
      "Figure 1: Docker vs Knative, sequential task sweep",
      "Docker ~100 s / Knative ~78 s at 160 tasks; cold start 1.48 s; "
      "Knative up to ~30% faster by regression slope");

  const std::vector<int> counts{10, 20, 40, 80, 160};
  sf::metrics::Table table(
      {"tasks", "docker_total_s", "knative_total_s", "docker_per_task_s",
       "knative_per_task_s"},
      3);
  std::vector<double> xs;
  std::vector<double> docker_ys;
  std::vector<double> knative_ys;
  for (int n : counts) {
    const double d = docker_total(n);
    const double k = knative_total(n);
    xs.push_back(n);
    docker_ys.push_back(d);
    knative_ys.push_back(k);
    table.add_row({static_cast<std::int64_t>(n), d, k, d / n, k / n});
  }
  table.print_text(std::cout);

  const auto docker_fit = sf::metrics::fit_line(xs, docker_ys);
  const auto knative_fit = sf::metrics::fit_line(xs, knative_ys);
  sf::bench::print_fit("docker ", docker_fit);
  sf::bench::print_fit("knative", knative_fit);
  // The knative intercept is the cold start the paper quotes (1.48 s).
  std::cout << "knative cold start (intercept): " << knative_fit.intercept
            << " s (paper: 1.48 s)\n";
  const double reduction = 1.0 - knative_fit.slope / docker_fit.slope;
  std::cout << "slope reduction from container reuse: " << reduction * 100.0
            << "% (paper: up to ~30%)\n";
  return 0;
}
