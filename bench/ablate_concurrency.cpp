// Ablation — container-concurrency (paper §VI).
//
// "When running multiple tasks concurrently within the same container, we
// observe better performance compared to running one task per container."
// This bench pushes a parallel serverless workflow through Knative with
// different `containerConcurrency` settings and reports makespan and the
// scale-out the autoscaler needed.

#include <cstddef>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/testbed.hpp"
#include "sim/sweep_runner.hpp"

namespace {

using namespace sf;
using namespace sf::core;

struct ConcurrencyResult {
  double makespan = 0;
  int peak_desired = 0;
};

ConcurrencyResult run(int container_concurrency, int n_tasks) {
  TestbedOptions opts;
  opts.provisioning = ProvisioningPolicy::prestaged(3);
  opts.provisioning.container_concurrency = container_concurrency;
  opts.provisioning.target_concurrency =
      container_concurrency > 0 ? container_concurrency : 4.0;
  PaperTestbed tb(42, opts);
  tb.register_matmul_function();

  auto wf = workload::make_parallel_matmuls("p", n_tasks,
                                            tb.calibration().matrix_bytes);
  std::map<std::string, pegasus::JobMode> modes;
  for (const auto& job : wf.jobs()) {
    modes[job.id] = pegasus::JobMode::kServerless;
  }
  // Track the autoscaler's peak while the workflow runs.
  ConcurrencyResult out;
  // run_workflows drives the sim to completion; sample afterwards is too
  // late for the peak, so wrap the run with a monitor via the trace.
  tb.sim().trace().set_enabled(true);
  const auto result = tb.run_workflows({wf}, modes);
  out.makespan = result.slowest;
  out.peak_desired = tb.serving().desired_replicas("fn-matmul");
  for (const auto e : tb.sim().trace().find("knative", "scale")) {
    out.peak_desired =
        std::max(out.peak_desired, std::stoi(std::string(e.attr("to"))));
  }
  if (!result.all_succeeded) std::cerr << "run failed\n";
  return out;
}

}  // namespace

int main() {
  sf::bench::banner(
      "Ablation: containerConcurrency under a 48-task parallel burst",
      "co-locating requests in one container (higher concurrency) beats "
      "one-request-per-container, at the cost of isolation");

  // Each concurrency setting is an independent 48-task simulation:
  // sweep them across threads, print in sweep order.
  const std::vector<int> settings{1, 2, 4, 8, 0};
  sf::sim::SweepRunner runner;
  const auto results = runner.run(
      settings.size(), [&settings](std::size_t i) {
        return run(settings[i], 48);
      });

  sf::metrics::Table table(
      {"container_concurrency", "makespan_s", "peak_pods_desired"}, 2);
  for (std::size_t i = 0; i < settings.size(); ++i) {
    const int cc = settings[i];
    const auto& r = results[i];
    table.add_row({cc == 0 ? std::string("unlimited") : std::to_string(cc),
                   r.makespan, static_cast<std::int64_t>(r.peak_desired)});
  }
  table.print_text(std::cout);
  return 0;
}
