// Scale sweep — the planet-scale regime curve: control-plane and serving
// behaviour as the cluster grows past the paper's 4-VM testbed, three
// sweeps:
//
//  1. Open-loop serving: N independent users fire Poisson request streams
//     at a warm KService on clusters from 64 to 10240 nodes
//     (RackMap::blocks topology). Arrivals never wait for completions, so
//     queues genuinely build while the KPA scales out — the sweep reports
//     what the sharded watch index, per-node usage aggregates and O(1)
//     store lookups buy at 10^5 requests over 10^4 nodes. The 4096- and
//     10240-node points run with node lifecycle enabled: the shared
//     heartbeat wheel renews every lease each second and the deadline-
//     ordered sweep pops nothing, so the control plane's per-tick cost
//     stays O(changed) while serving. Each point runs to quiesce: every
//     issued request answered.
//
//  2. Layered DAGs: matmul stencil workflows (workload::make_layered_
//     matmuls) from 10^2 to 10^4 tasks through the full Pegasus → HTCondor
//     path on a 16-node testbed — the 10k-task regime the paper's 10-task
//     chains only gesture at.
//
//  3. Mixed traffic: open-loop Poisson users against a warm KService
//     WHILE a layered-DAG campaign runs through Pegasus/HTCondor on the
//     same testbed — the KPA and the condor negotiator contend for the
//     same nodes, with the node-lifecycle loop (heartbeat wheel + lease
//     sweep) live underneath.
//
// Determinism contract: each sweep point builds its own Simulation from
// fixed seeds, points run across a SweepRunner pool, rows print in sweep
// order — stdout is bit-identical at any SF_SWEEP_THREADS (enforced by the
// scripts/tier1.sh --scale golden diff). Wall-clock is measured per point
// but NEVER printed to stdout; set SF_SCALE_JSON=<path> to write it (plus
// the deterministic metrics) as JSON — bench/run_bench.sh merges that into
// BENCH_scale.json.
//
// SF_SCALE_SMOKE=1 shrinks both sweeps for the tier-1 golden leg; the
// output format is unchanged.

#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "container/image.hpp"
#include "core/testbed.hpp"
#include "fault/splitmix.hpp"
#include "k8s/kube_cluster.hpp"
#include "knative/serving.hpp"
#include "sim/sweep_runner.hpp"
#include "workload/generators.hpp"
#include "workload/open_loop.hpp"
#include "workload/scale.hpp"

namespace {

using namespace sf;

bool smoke_mode() {
  const char* env = std::getenv("SF_SCALE_SMOKE");
  return env != nullptr && env[0] == '1';
}

double wall_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// ---- Sweep 1: open-loop serving at cluster scale ---------------------

struct ServingPoint {
  const char* label;
  std::uint32_t nodes;
  std::uint32_t racks;
  int users;
  double rate_hz;    ///< per-user
  double work_s;     ///< per-request core-seconds
  double horizon_s;  ///< arrival window (cap binds before it closes)
  std::uint64_t requests;  ///< exact issued count (open-loop cap)
  int min_scale;
  /// Run with node lifecycle on: the heartbeat wheel renews every lease
  /// each second and the deadline-ordered sweep runs with nothing expired
  /// — the steady-state control-plane load the 10k-node regime is about.
  bool lifecycle = false;
};

struct ServingResult {
  std::uint64_t issued = 0;
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double drain_s = 0;  ///< last response − first arrival window start
  int pods = 0;
  std::uint64_t cold_starts = 0;
  bool quiesced = false;
  std::uint64_t fingerprint = 0;
  double wall_s = 0;  ///< JSON only — never printed to stdout
};

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

ServingResult run_serving_point(const ServingPoint& p) {
  const auto wall0 = std::chrono::steady_clock::now();
  sim::Simulation sim;
  auto topo = workload::make_scaled_topology(sim, p.nodes, p.racks);
  cluster::Node& head = topo.cluster->node(0);
  container::Registry hub{head};
  const container::Image image = container::make_task_image("fn");
  hub.push(image);
  k8s::KubeCluster kube{*topo.cluster, hub, topo.workers};
  kube.seed_image_everywhere(image);  // control-plane scale, not pull cost
  if (p.lifecycle) kube.enable_node_lifecycle();
  knative::KnativeServing serving{kube, head};

  knative::KnServiceSpec spec;
  spec.name = "fn";
  spec.container.name = "fn";
  spec.container.image = "fn:latest";
  spec.container.memory_bytes = 512e6;
  spec.container.boot_s = 0.6;
  spec.container.cpu_limit = 1.0;
  spec.handler = [](const net::HttpRequest& req, knative::FunctionContext& ctx,
                    net::Responder respond) {
    const double work =
        req.body.has_value() ? std::any_cast<double>(req.body) : 0.01;
    ctx.exec(work, [respond = std::move(respond),
                    bytes = req.body_bytes](bool ok) mutable {
      net::HttpResponse resp;
      resp.status = ok ? 200 : 500;
      resp.body_bytes = bytes;
      respond(std::move(resp));
    });
  };
  spec.annotations.min_scale = p.min_scale;
  spec.annotations.container_concurrency = 1;  // the paper's configuration
  serving.create_service(std::move(spec));
  sim.run_until(30.0);  // warm pods ready, autoscaler settled

  workload::OpenLoopConfig cfg;
  cfg.users = p.users;
  cfg.rate_hz = p.rate_hz;
  cfg.horizon_s = p.horizon_s;
  cfg.max_requests = p.requests;
  cfg.services = {"fn"};
  cfg.work_s = p.work_s;
  cfg.payload_bytes = 10000;
  cfg.seed = fault::SplitMix64::mix(0x5CA1E000ull, p.nodes);
  cfg.record_requests = true;
  workload::OpenLoopEngine engine(serving, head.net_id(), cfg);

  const double t0 = sim.now();
  engine.start();
  const double deadline = t0 + p.horizon_s + 3600.0;
  while (!engine.quiesced() && sim.has_pending_events() &&
         sim.now() < deadline) {
    sim.step();
  }

  const auto& s = engine.stats();
  const auto latencies = engine.sorted_latencies();
  ServingResult r;
  r.issued = s.issued;
  r.ok = s.ok;
  r.errors = s.errors;
  r.p50_ms = percentile(latencies, 0.50) * 1e3;
  r.p99_ms = percentile(latencies, 0.99) * 1e3;
  r.drain_s = s.last_completion_time - t0;
  r.pods = serving.ready_replicas("fn");
  r.cold_starts = serving.cold_start_requests("fn");
  r.quiesced = engine.quiesced();
  r.fingerprint = engine.fingerprint();
  r.wall_s = wall_since(wall0);
  return r;
}

// ---- Sweep 2: layered DAGs through Pegasus/HTCondor ------------------

struct DagPoint {
  const char* label;
  int layers;
  int width;
  std::size_t node_count;
};

struct DagResult {
  int tasks = 0;
  double makespan_s = 0;
  bool ok = false;
  double wall_s = 0;  ///< JSON only
};

// ---- Sweep 3: mixed traffic — serving and DAGs contending ------------

struct MixedPoint {
  const char* label;
  std::size_t node_count;
  int workflows;  ///< layered DAGs started at the same instant
  int layers;
  int width;
  double serverless_fraction;  ///< of DAG tasks, through fn-matmul
  int users;
  double rate_hz;
  double horizon_s;
  std::uint64_t requests;  ///< open-loop cap
};

struct MixedResult {
  std::uint64_t issued = 0;
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  double p99_ms = 0;
  int dags_finished = 0;
  bool dags_ok = false;
  double makespan_s = 0;
  bool quiesced = false;
  std::uint64_t fingerprint = 0;
  double wall_s = 0;  ///< JSON only
};

MixedResult run_mixed_point(const MixedPoint& p) {
  const auto wall0 = std::chrono::steady_clock::now();
  core::TestbedOptions opts;
  opts.node_count = p.node_count;
  core::PaperTestbed tb(42, opts);
  core::ProvisioningPolicy policy = core::ProvisioningPolicy::prestaged(2);
  policy.container_concurrency = 1;
  tb.register_matmul_function(policy);
  // The lifecycle loop runs underneath the contention: every kubelet on
  // the shared heartbeat wheel, the deadline-ordered sweep popping nothing.
  tb.kube().enable_node_lifecycle();

  // Dedicated warm KService absorbing the open-loop streams while the
  // DAG campaign runs (the fuzz harness's ambient-traffic pattern).
  const container::Image image = container::make_task_image("fn-open");
  tb.registry().push(image);
  tb.kube().seed_image_everywhere(image);
  knative::KnServiceSpec spec;
  spec.name = "fn-open";
  spec.container.name = "fn-open";
  spec.container.image = "fn-open:latest";
  spec.container.memory_bytes = 512e6;
  spec.container.boot_s = 0.6;
  spec.container.cpu_limit = 1.0;
  spec.handler = [](const net::HttpRequest& req, knative::FunctionContext& ctx,
                    net::Responder respond) {
    const double work =
        req.body.has_value() ? std::any_cast<double>(req.body) : 0.01;
    ctx.exec(work, [respond = std::move(respond),
                    bytes = req.body_bytes](bool ok) mutable {
      net::HttpResponse resp;
      resp.status = ok ? 200 : 500;
      resp.body_bytes = bytes;
      respond(std::move(resp));
    });
  };
  spec.annotations.min_scale = 2;
  spec.annotations.container_concurrency = 1;
  spec.annotations.request_timeout_s = 60;
  tb.serving().create_service(std::move(spec));

  workload::OpenLoopConfig cfg;
  cfg.users = p.users;
  cfg.rate_hz = p.rate_hz;
  cfg.horizon_s = p.horizon_s;
  cfg.max_requests = p.requests;
  cfg.services = {"fn-open"};
  cfg.work_s = 0.05;
  cfg.payload_bytes = 10000;
  cfg.seed = fault::SplitMix64::mix(0x313ED, p.node_count);
  cfg.record_requests = true;
  workload::OpenLoopEngine engine(tb.serving(), tb.cluster().node(0).net_id(),
                                  cfg);
  engine.start();

  // The layered campaign, planned with a random native/serverless split —
  // serverless tasks route through fn-matmul, so the KPA scales that
  // service while the negotiator places the native tasks.
  std::vector<pegasus::AbstractWorkflow> workflows;
  workflows.reserve(p.workflows);
  for (int w = 0; w < p.workflows; ++w) {
    workflows.push_back(workload::make_layered_matmuls(
        "mix.wf" + std::to_string(w), p.layers, p.width,
        tb.calibration().matrix_bytes));
  }
  std::vector<const pegasus::AbstractWorkflow*> ptrs;
  for (const auto& wf : workflows) ptrs.push_back(&wf);
  metrics::MixPoint mix;
  mix.native = 1.0 - p.serverless_fraction;
  mix.serverless = p.serverless_fraction;
  const auto modes = workload::assign_modes(ptrs, mix, tb.sim().rng());
  const auto result = tb.run_workflows(workflows, modes);

  // Drain the ambient traffic: arrivals may outlive the campaign, and
  // every issued request must be answered.
  const double drain_wall = tb.sim().now() + 7200.0;
  while (!engine.quiesced() && tb.sim().has_pending_events() &&
         tb.sim().now() < drain_wall) {
    tb.sim().step();
  }

  const auto& s = engine.stats();
  const auto latencies = engine.sorted_latencies();
  MixedResult r;
  r.issued = s.issued;
  r.ok = s.ok;
  r.errors = s.errors;
  r.p99_ms = percentile(latencies, 0.99) * 1e3;
  r.dags_finished = result.finished;
  r.dags_ok = result.all_succeeded;
  r.makespan_s = result.slowest;
  r.quiesced = engine.quiesced();
  r.fingerprint = fault::SplitMix64::mix(
      engine.fingerprint(), std::bit_cast<std::uint64_t>(result.slowest));
  r.wall_s = wall_since(wall0);
  return r;
}

DagResult run_dag_point(const DagPoint& p) {
  const auto wall0 = std::chrono::steady_clock::now();
  core::TestbedOptions opts;
  opts.node_count = p.node_count;
  core::PaperTestbed tb(42, opts);
  const auto wf = workload::make_layered_matmuls(
      "scale", p.layers, p.width, tb.calibration().matrix_bytes);
  const auto result = tb.run_workflows({wf}, {});
  DagResult r;
  r.tasks = p.layers * p.width;
  r.makespan_s = result.slowest;
  r.ok = result.all_succeeded;
  r.wall_s = wall_since(wall0);
  return r;
}

}  // namespace

int main() {
  const bool smoke = smoke_mode();

  sf::bench::banner(
      "Scale sweep: open-loop users vs cluster size",
      "N independent Poisson users against a warm concurrency-1 KService; "
      "node-sharded watches + incremental usage aggregates keep the "
      "control plane O(changed) as nodes and requests grow");

  std::vector<ServingPoint> serving_points{
      {"64n", 64, 4, 32, 4.0, 0.10, 120.0, 10000, 8, false},
      {"256n", 256, 8, 96, 4.0, 0.25, 120.0, 30000, 16, false},
      {"1024n", 1024, 32, 256, 5.0, 0.40, 120.0, 100000, 32, false},
      {"4096n", 4096, 64, 512, 5.0, 0.40, 120.0, 100000, 48, true},
      {"10240n", 10240, 160, 1024, 5.0, 0.40, 120.0, 100000, 64, true},
  };
  if (smoke) {
    serving_points = {
        {"16n", 16, 2, 4, 2.0, 0.05, 60.0, 300, 2, false},
        {"48n", 48, 4, 8, 2.0, 0.10, 60.0, 800, 4, false},
        {"96n", 96, 8, 8, 2.0, 0.10, 60.0, 1200, 4, true},
    };
  }

  sf::sim::SweepRunner runner;
  const std::vector<ServingResult> serving_results =
      runner.run(serving_points.size(), [&serving_points](std::size_t i) {
        return run_serving_point(serving_points[i]);
      });

  sf::metrics::Table serving_table(
      {"point", "nodes", "racks", "users", "requests", "ok", "errors",
       "p50_ms", "p99_ms", "drain_s", "pods", "cold_starts", "quiesced"},
      2);
  std::uint64_t digest = 0x5CA1Eull;
  for (std::size_t i = 0; i < serving_points.size(); ++i) {
    const ServingPoint& p = serving_points[i];
    const ServingResult& r = serving_results[i];
    serving_table.add_row({std::string(p.label),
                           static_cast<std::int64_t>(p.nodes),
                           static_cast<std::int64_t>(p.racks),
                           static_cast<std::int64_t>(p.users),
                           static_cast<std::int64_t>(r.issued),
                           static_cast<std::int64_t>(r.ok),
                           static_cast<std::int64_t>(r.errors), r.p50_ms,
                           r.p99_ms, r.drain_s,
                           static_cast<std::int64_t>(r.pods),
                           static_cast<std::int64_t>(r.cold_starts),
                           std::string(r.quiesced ? "yes" : "NO")});
    digest = sf::fault::SplitMix64::mix(digest, r.fingerprint);
  }
  serving_table.print_text(std::cout);
  std::cout << "\nevery issued request is answered; the autoscaler absorbs "
               "the open-loop queue\n";

  sf::bench::banner(
      "Scale sweep: layered DAGs past the paper constants",
      "matmul stencil workflows (layers x width) through Pegasus planning "
      "and HTCondor execution; 10k tasks where the paper ran 10-task "
      "chains");

  std::vector<DagPoint> dag_points{
      {"100t", 10, 10, 16},
      {"1000t", 40, 25, 16},
      {"10000t", 100, 100, 16},
  };
  if (smoke) {
    dag_points = {
        {"20t", 5, 4, 4},
        {"60t", 10, 6, 4},
    };
  }

  const std::vector<DagResult> dag_results =
      runner.run(dag_points.size(), [&dag_points](std::size_t i) {
        return run_dag_point(dag_points[i]);
      });

  sf::metrics::Table dag_table(
      {"point", "tasks", "layers", "width", "nodes", "makespan_s", "ok"}, 2);
  for (std::size_t i = 0; i < dag_points.size(); ++i) {
    const DagPoint& p = dag_points[i];
    const DagResult& r = dag_results[i];
    dag_table.add_row({std::string(p.label),
                       static_cast<std::int64_t>(r.tasks),
                       static_cast<std::int64_t>(p.layers),
                       static_cast<std::int64_t>(p.width),
                       static_cast<std::int64_t>(p.node_count), r.makespan_s,
                       std::string(r.ok ? "yes" : "NO")});
    digest = sf::fault::SplitMix64::mix(
        digest, std::bit_cast<std::uint64_t>(r.makespan_s));
  }
  dag_table.print_text(std::cout);
  std::cout << "\nmakespan grows sub-linearly in tasks while per-layer "
               "parallelism fits the pool\n";

  sf::bench::banner(
      "Scale sweep: mixed traffic — KPA vs condor negotiator",
      "open-loop users against a warm KService while a layered-DAG "
      "campaign runs concurrently; the autoscaler and the negotiator "
      "contend for the same nodes with the lifecycle loop (heartbeat "
      "wheel + deadline-ordered lease sweep) live underneath");

  std::vector<MixedPoint> mixed_points{
      {"mix-64n", 64, 6, 8, 12, 0.5, 48, 4.0, 120.0, 12000},
  };
  if (smoke) {
    mixed_points = {
        {"mix-8n", 8, 2, 3, 4, 0.5, 4, 2.0, 30.0, 200},
    };
  }

  const std::vector<MixedResult> mixed_results =
      runner.run(mixed_points.size(), [&mixed_points](std::size_t i) {
        return run_mixed_point(mixed_points[i]);
      });

  sf::metrics::Table mixed_table(
      {"point", "nodes", "wfs", "tasks", "requests", "ok", "errors", "p99_ms",
       "dag_makespan_s", "dags_ok", "quiesced"},
      2);
  for (std::size_t i = 0; i < mixed_points.size(); ++i) {
    const MixedPoint& p = mixed_points[i];
    const MixedResult& r = mixed_results[i];
    mixed_table.add_row(
        {std::string(p.label), static_cast<std::int64_t>(p.node_count),
         static_cast<std::int64_t>(p.workflows),
         static_cast<std::int64_t>(p.workflows * p.layers * p.width),
         static_cast<std::int64_t>(r.issued), static_cast<std::int64_t>(r.ok),
         static_cast<std::int64_t>(r.errors), r.p99_ms, r.makespan_s,
         std::string(r.dags_ok ? "yes" : "NO"),
         std::string(r.quiesced ? "yes" : "NO")});
    digest = sf::fault::SplitMix64::mix(digest, r.fingerprint);
  }
  mixed_table.print_text(std::cout);
  std::cout << "\nboth planes finish: every DAG completes and every "
               "open-loop request is answered under contention\n";

  std::cout << "\nscale digest 0x" << std::hex << digest << std::dec << "\n";

  // Wall-clock (nondeterministic) goes ONLY to the JSON side channel.
  if (const char* json_path = std::getenv("SF_SCALE_JSON");
      json_path != nullptr && json_path[0] != '\0') {
    std::ofstream out(json_path);
    out << "{\n  \"serving\": [\n";
    for (std::size_t i = 0; i < serving_points.size(); ++i) {
      const ServingPoint& p = serving_points[i];
      const ServingResult& r = serving_results[i];
      out << "    {\"point\": \"" << p.label << "\", \"nodes\": " << p.nodes
          << ", \"racks\": " << p.racks << ", \"users\": " << p.users
          << ", \"requests\": " << r.issued << ", \"p50_ms\": " << r.p50_ms
          << ", \"p99_ms\": " << r.p99_ms << ", \"drain_s\": " << r.drain_s
          << ", \"pods\": " << r.pods << ", \"wall_s\": " << r.wall_s << "}"
          << (i + 1 < serving_points.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"dag\": [\n";
    for (std::size_t i = 0; i < dag_points.size(); ++i) {
      const DagPoint& p = dag_points[i];
      const DagResult& r = dag_results[i];
      out << "    {\"point\": \"" << p.label << "\", \"tasks\": " << r.tasks
          << ", \"nodes\": " << p.node_count
          << ", \"makespan_s\": " << r.makespan_s
          << ", \"wall_s\": " << r.wall_s << "}"
          << (i + 1 < dag_points.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"mixed\": [\n";
    for (std::size_t i = 0; i < mixed_points.size(); ++i) {
      const MixedPoint& p = mixed_points[i];
      const MixedResult& r = mixed_results[i];
      out << "    {\"point\": \"" << p.label << "\", \"nodes\": "
          << p.node_count << ", \"workflows\": " << p.workflows
          << ", \"tasks\": " << p.workflows * p.layers * p.width
          << ", \"requests\": " << r.issued << ", \"p99_ms\": " << r.p99_ms
          << ", \"dag_makespan_s\": " << r.makespan_s
          << ", \"wall_s\": " << r.wall_s << "}"
          << (i + 1 < mixed_points.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
  }
  return 0;
}
