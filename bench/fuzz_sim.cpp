// Property fuzzer — seed-swept deterministic simulation testing.
//
// Each sweep point draws a FuzzCase (topology × workload shape ×
// provisioning × fault-plan channels) from forked SplitMix64 streams,
// runs it to quiesce under the sf::check invariant registry, and holds
// the terminal properties: every DAG accounted for, makespan finite,
// zero invariant violations, and a bit-identical fingerprint on re-run
// (each point executes twice).
//
// On failure the first failing case is shrunk — channel bisection, then
// structural fields, then horizon bisection, then channel thinning —
// and printed as a ready-to-paste gtest regression test; exit code 1.
//
// Determinism contract: points run across a SweepRunner pool and rows
// print in sweep order, so stdout is bit-identical at any
// SF_SWEEP_THREADS (asserted by the scripts/tier1.sh --fuzz golden
// diff at 1 and 4 threads).
//
// Env knobs:
//   SF_FUZZ_SMOKE=1   pinned 32-point subset with a fixed base seed
//                     (the tier-1 leg; output diffed against
//                     tests/golden/fuzz_smoke.txt)
//   SF_FUZZ_POINTS=N  sweep size outside smoke mode (default 128)
//   SF_FUZZ_BASE=N    base seed outside smoke mode (default 0xF0CC5EED)
//   SF_FUZZ_SHRINK=N  shrinker trial budget (default 150)

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "check/fuzz.hpp"
#include "fault/splitmix.hpp"
#include "metrics/table.hpp"
#include "sim/sweep_runner.hpp"

namespace {

using namespace sf;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return fallback;
  return std::strtoull(env, nullptr, 0);
}

struct Point {
  check::FuzzCase c;
  check::FuzzOutcome out;
};

/// Active fault channels of a case, e.g. "crash+kill" (empty = calm).
std::string channel_tags(const check::FuzzCase& c) {
  static const char* const kShort[] = {"crash", "pull",  "kill",   "degr",
                                       "part",  "rackf", "rackp",  "storm",
                                       "cpu",   "flaky", "oneway", "cat"};
  std::string tags;
  const auto& channels = check::fuzz_channels();
  for (std::size_t i = 0; i < channels.size(); ++i) {
    if (c.*(channels[i].member) <= 0) continue;
    if (!tags.empty()) tags += '+';
    tags += kShort[i];
  }
  return tags.empty() ? "calm" : tags;
}

}  // namespace

int main() {
  const char* smoke_env = std::getenv("SF_FUZZ_SMOKE");
  const bool smoke = smoke_env != nullptr && smoke_env[0] == '1';

  // Smoke mode is PINNED: fixed base seed and point count, so the output
  // is a golden. Changing either invalidates tests/golden/fuzz_smoke.txt.
  const std::uint64_t base_seed =
      smoke ? 0xF0CC5EEDull : env_u64("SF_FUZZ_BASE", 0xF0CC5EEDull);
  const std::uint64_t n_points = smoke ? 32 : env_u64("SF_FUZZ_POINTS", 128);
  const int shrink_budget =
      static_cast<int>(env_u64("SF_FUZZ_SHRINK", 150));

  sf::bench::banner(
      "Property fuzzer: seed-swept deterministic simulation testing",
      "randomized (seed x topology x workload x fault plan) points run to "
      "quiesce under the cross-stack invariant registry; every point "
      "executes twice and must replay bit-identically");

  std::cout << "base seed 0x" << std::hex << base_seed << std::dec << ", "
            << n_points << " points\n\n";

  sf::sim::SweepRunner runner;
  const std::vector<Point> points =
      runner.run(static_cast<std::size_t>(n_points), [base_seed](std::size_t i) {
        Point p;
        p.c = check::random_case(base_seed, i);
        p.out = check::run_case_checked(p.c);
        return p;
      });

  metrics::Table table({"case", "nodes", "racks", "wf", "tasks", "sfrac",
                        "ol", "channels", "makespan_s", "viol", "replay",
                        "ok"},
                       2);
  std::size_t failures = 0;
  std::uint64_t digest = 0xD16E57ull;
  for (const auto& p : points) {
    if (!p.out.ok) ++failures;
    digest = fault::SplitMix64::mix(digest, p.out.fingerprint);
    table.add_row({static_cast<std::int64_t>(p.c.id),
                   static_cast<std::int64_t>(p.c.nodes),
                   static_cast<std::int64_t>(p.c.racks),
                   static_cast<std::int64_t>(p.c.workflows),
                   static_cast<std::int64_t>(p.c.tasks),
                   p.c.serverless_fraction,
                   static_cast<std::int64_t>(p.out.openloop_issued),
                   channel_tags(p.c), p.out.slowest,
                   static_cast<std::int64_t>(p.out.violation_count),
                   std::string(p.out.replay_match ? "yes" : "NO"),
                   std::string(p.out.ok ? "yes" : "NO")});
  }
  table.print_text(std::cout);
  std::cout << "\nsweep digest 0x" << std::hex << digest << std::dec << ": "
            << (n_points - failures) << "/" << n_points << " points ok\n";

  // Vacuity audit: aggregate per-invariant armed/exercised counters over
  // the whole sweep. An invariant that was never exercised held over
  // empty state everywhere — the sweep proved nothing about it.
  std::vector<std::string> inv_names;
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> activity;
  for (const auto& p : points) {
    for (const auto& inv : p.out.invariants) {
      auto [it, inserted] = activity.try_emplace(inv.name, 0, 0);
      if (inserted) inv_names.push_back(inv.name);
      it->second.first += inv.evaluations;
      it->second.second += inv.exercised;
    }
  }
  metrics::Table inv_table({"invariant", "armed", "exercised", "vacuous"}, 2);
  std::size_t vacuous = 0;
  for (const auto& name : inv_names) {
    const auto& [armed, exercised] = activity.at(name);
    if (exercised == 0) ++vacuous;
    inv_table.add_row({name, static_cast<std::int64_t>(armed),
                       static_cast<std::int64_t>(exercised),
                       std::string(exercised == 0 ? "YES" : "no")});
  }
  std::cout << "\ninvariant registry activity (sweep totals):\n";
  inv_table.print_text(std::cout);
  std::cout << "\n" << (inv_names.size() - vacuous) << "/" << inv_names.size()
            << " invariants exercised against non-empty state\n";

  if (failures == 0) return 0;

  // Shrink the first failure serially and print a pasteable repro.
  for (const auto& p : points) {
    if (p.out.ok) continue;
    std::cout << "\ncase " << p.c.id << " FAILED: " << p.out.detail << "\n"
              << "shrinking (budget " << shrink_budget << " trials)...\n";
    const check::ShrinkResult shrunk = check::shrink(p.c, shrink_budget);
    std::cout << "reduced after " << shrunk.trials
              << " trials; still fails with: " << shrunk.outcome.detail
              << "\n\n"
              << check::to_cpp_repro(shrunk.reduced);
    break;
  }
  return 1;
}
