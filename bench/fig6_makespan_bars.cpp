// Figure 6 — average makespan of the slowest of 10 concurrent 10-task
// workflows under the five highlighted execution-mode mixes.
//
// Paper anchors (Section VI): all-native fastest at ~250 s; then half
// Knative + half native; all-Knative at 1.08× native; half container +
// half native; all-container slowest.

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/testbed.hpp"

namespace {

using namespace sf;
using namespace sf::core;

struct Scenario {
  const char* label;
  metrics::MixPoint mix;
};

/// Average over seeds of the slowest-workflow makespan for one mix.
double average_slowest(const metrics::MixPoint& mix,
                       const std::vector<std::uint64_t>& seeds) {
  double total = 0;
  for (const auto seed : seeds) {
    PaperTestbed tb(seed);
    if (mix.serverless > 0) tb.register_matmul_function();
    const auto result = tb.run_concurrent_mix(10, 10, mix);
    if (!result.all_succeeded) {
      std::cerr << "run failed for mix (" << mix.native << ","
                << mix.container << "," << mix.serverless << ")\n";
    }
    total += result.slowest;
  }
  return total / static_cast<double>(seeds.size());
}

}  // namespace

int main() {
  sf::bench::banner(
      "Figure 6: average slowest-workflow makespan, five mixes",
      "native ~250 s < half-knative < all-knative (1.08x) < "
      "half-container < all-container");

  const std::vector<Scenario> scenarios{
      {"all native", {1.0, 0.0, 0.0}},
      {"half knative / half native", {0.5, 0.0, 0.5}},
      {"all knative", {0.0, 0.0, 1.0}},
      {"half container / half native", {0.5, 0.5, 0.0}},
      {"all containers", {0.0, 1.0, 0.0}},
  };
  const std::vector<std::uint64_t> seeds{42, 1337, 2024};

  double native_makespan = 0;
  sf::metrics::Table table({"scenario", "avg_makespan_s", "vs_native",
                            "isolation_score"},
                           3);
  for (const auto& scenario : scenarios) {
    const double makespan = average_slowest(scenario.mix, seeds);
    if (scenario.mix.native == 1.0) native_makespan = makespan;
    table.add_row({std::string(scenario.label), makespan,
                   native_makespan > 0 ? makespan / native_makespan : 1.0,
                   metrics::isolation_score(scenario.mix)});
  }
  table.print_text(std::cout);
  std::cout << "\npaper: all-native ~250 s, all-knative/native ~1.08, "
               "all-container slowest\n";
  return 0;
}
