// Ablation — §IX-C task resizing, implemented and measured.
//
// The 4-stage matmul chain with each stage split into k row-block
// sub-tasks plus a join. Finer tasks expose more intra-stage parallelism
// (a natural fit for serverless fine-grained allocation, as the paper
// hypothesizes) but multiply the per-task scheduling overhead — the sweep
// shows where the trade crosses over.

#include <iostream>

#include "bench_util.hpp"
#include "core/testbed.hpp"

namespace {

using namespace sf;
using namespace sf::core;

double run(int split, pegasus::JobMode mode) {
  PaperTestbed tb(42);
  const auto matmul = tb.calibration().matmul_transformation();
  tb.transformations().add(
      workload::make_part_transformation(matmul, split));
  tb.transformations().add(workload::make_concat_transformation(matmul));
  auto wf = workload::make_resized_chain("r", 4, split,
                                         tb.calibration().matrix_bytes);
  std::map<std::string, pegasus::JobMode> modes;
  if (mode == pegasus::JobMode::kServerless) {
    tb.register_matmul_function();
    modes = tb.integration().auto_register(wf, tb.transformations(),
                                           tb.options().provisioning);
  } else {
    for (const auto& job : wf.jobs()) modes[job.id] = mode;
  }
  const auto result = tb.run_workflows({wf}, modes);
  if (!result.all_succeeded) std::cerr << "run failed (split=" << split
                                       << ")\n";
  return result.slowest;
}

}  // namespace

int main() {
  sf::bench::banner(
      "Ablation: task resizing (stage split factor, 4-stage chain)",
      "finer tasks = more parallelism per stage but more scheduling "
      "overhead; serverless absorbs fine granularity better than condor "
      "scheduling does");

  sf::metrics::Table table({"split_factor", "tasks_total", "native_s",
                            "serverless_s"},
                           2);
  for (int split : {1, 2, 4, 8}) {
    table.add_row({static_cast<std::int64_t>(split),
                   static_cast<std::int64_t>(4 * (split + 1)),
                   run(split, pegasus::JobMode::kNative),
                   run(split, pegasus::JobMode::kServerless)});
  }
  table.print_text(std::cout);
  return 0;
}
