// Ablation — §IX-C task resizing, implemented and measured.
//
// The 4-stage matmul chain with each stage split into k row-block
// sub-tasks plus a join. Finer tasks expose more intra-stage parallelism
// (a natural fit for serverless fine-grained allocation, as the paper
// hypothesizes) but multiply the per-task scheduling overhead — the sweep
// shows where the trade crosses over.

#include <cstddef>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/testbed.hpp"
#include "sim/sweep_runner.hpp"

namespace {

using namespace sf;
using namespace sf::core;

double run(int split, pegasus::JobMode mode) {
  PaperTestbed tb(42);
  const auto matmul = tb.calibration().matmul_transformation();
  tb.transformations().add(
      workload::make_part_transformation(matmul, split));
  tb.transformations().add(workload::make_concat_transformation(matmul));
  auto wf = workload::make_resized_chain("r", 4, split,
                                         tb.calibration().matrix_bytes);
  std::map<std::string, pegasus::JobMode> modes;
  if (mode == pegasus::JobMode::kServerless) {
    tb.register_matmul_function();
    modes = tb.integration().auto_register(wf, tb.transformations(),
                                           tb.options().provisioning);
  } else {
    for (const auto& job : wf.jobs()) modes[job.id] = mode;
  }
  const auto result = tb.run_workflows({wf}, modes);
  if (!result.all_succeeded) std::cerr << "run failed (split=" << split
                                       << ")\n";
  return result.slowest;
}

}  // namespace

int main() {
  sf::bench::banner(
      "Ablation: task resizing (stage split factor, 4-stage chain)",
      "finer tasks = more parallelism per stage but more scheduling "
      "overhead; serverless absorbs fine granularity better than condor "
      "scheduling does");

  // (split, mode) points are independent sims; sweep them in parallel.
  const std::vector<int> splits{1, 2, 4, 8};
  struct Point {
    int split = 1;
    pegasus::JobMode mode = pegasus::JobMode::kNative;
  };
  std::vector<Point> points;
  for (int split : splits) {
    points.push_back({split, pegasus::JobMode::kNative});
    points.push_back({split, pegasus::JobMode::kServerless});
  }
  sf::sim::SweepRunner runner;
  const auto makespans =
      runner.run(points.size(), [&points](std::size_t i) {
        return run(points[i].split, points[i].mode);
      });

  sf::metrics::Table table({"split_factor", "tasks_total", "native_s",
                            "serverless_s"},
                           2);
  for (std::size_t i = 0; i < splits.size(); ++i) {
    const int split = splits[i];
    table.add_row({static_cast<std::int64_t>(split),
                   static_cast<std::int64_t>(4 * (split + 1)),
                   makespans[i * 2], makespans[i * 2 + 1]});
  }
  table.print_text(std::cout);
  return 0;
}
