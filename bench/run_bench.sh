#!/usr/bin/env bash
# Runs the engine + control-plane micro-benchmarks and the end-to-end
# figure binaries, records the numbers at the repository root:
#
#   BENCH_engine.json    — per-benchmark median CPU ns/iteration
#   BENCH_fullstack.json — wall-clock seconds per figure binary, run
#                          sequentially (SF_SWEEP_THREADS=1) and with the
#                          sweep pool at 4 threads
#   BENCH_scale.json     — scale_sweep curve: per-point wall-clock and
#                          sim-time metrics for the open-loop serving and
#                          layered-DAG points (nodes x users x DAG size)
#
# Usage:
#   bench/run_bench.sh [build-dir] [repetitions] [--rebaseline]
#
# Defaults: build-dir = ./build, repetitions = 5. Existing BENCH_*.json
# files are treated as the committed baseline: the script prints the
# per-benchmark speedup of the current build against them and REFUSES to
# overwrite them unless --rebaseline is given. Re-baseline only together
# with the change that produced the new numbers.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
rebaseline=0
pos=()
for arg in "$@"; do
  case "$arg" in
    --rebaseline) rebaseline=1 ;;
    *) pos+=("$arg") ;;
  esac
done
build_dir="${pos[0]:-$repo_root/build}"
reps="${pos[1]:-5}"
bench_bin="$build_dir/bench/micro_engine"
engine_json="$repo_root/BENCH_engine.json"
fullstack_json="$repo_root/BENCH_fullstack.json"

if [[ ! -x "$bench_bin" ]]; then
  echo "error: $bench_bin not found or not executable." >&2
  echo "Build it first: cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

# ---- Engine + control-plane micro-benchmarks ------------------------------

filter='BM_EventQueueScheduleAndPop|BM_EventQueueCancelHeavy|BM_EventQueueMixedSchedule|BM_SimulationEventChurn|BM_PsResourceChurn|BM_FlowNetworkFanout|BM_ApiServerWatchFanout|BM_SchedulerBurst|BM_KpaObserve|BM_CondorNegotiate|BM_TraceRecordHotPath|BM_TraceRecordGated|BM_WatchFanoutNodeScoped|BM_SchedulerScaled|BM_HeartbeatTick|BM_LifecycleSweep|BM_DeploymentReconcile|BM_HistogramRecord|BM_RouterPickBackend|BM_CatalogLookup|BM_CatalogLookupMap'
raw_json="$(mktemp)"
trap 'rm -f "$raw_json"' EXIT

"$bench_bin" \
  --benchmark_filter="$filter" \
  --benchmark_min_time=0.2 \
  --benchmark_repetitions="$reps" \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json > "$raw_json"

python3 - "$raw_json" "$engine_json" "$reps" "$rebaseline" <<'PY'
import json
import sys

raw_path, out_path, reps, rebaseline = (
    sys.argv[1], sys.argv[2], int(sys.argv[3]), sys.argv[4] == "1")
with open(raw_path) as f:
    report = json.load(f)

# repetitions >= 2 produce _median aggregate rows; a single repetition
# produces only plain rows — accept either so `run_bench.sh build 1` works.
results = {}
plain = {}
for bench in report.get("benchmarks", []):
    name = bench.get("name", "")
    if name.endswith("_median"):
        results[name.removesuffix("_median")] = round(bench["cpu_time"], 1)
    elif bench.get("run_type") != "aggregate":
        plain[name] = round(bench["cpu_time"], 1)
if not results:
    results = plain

prev = {}
try:
    with open(out_path) as f:
        prev = json.load(f)
except (OSError, ValueError):
    pass
recorded = prev.get("results_ns", {})

if recorded:
    print(f"speedup vs recorded baseline ({out_path}):")
    width = max(len(n) for n in results)
    for name in sorted(results):
        now = results[name]
        if name in recorded and now > 0:
            ratio = recorded[name] / now
            print(f"  {name:<{width}}  {recorded[name]:>12.1f} ns -> "
                  f"{now:>12.1f} ns   {ratio:5.2f}x")
        else:
            print(f"  {name:<{width}}  {'(new)':>12} -> {now:>12.1f} ns")

if recorded and not rebaseline:
    # Never move a committed number without --rebaseline, but DO append
    # benchmarks that have no recorded entry yet — new benches land on
    # the first run instead of silently vanishing from the record.
    fresh = {n: v for n, v in results.items() if n not in recorded}
    if not fresh:
        print(f"kept {out_path} (pass --rebaseline to overwrite)")
        sys.exit(0)
    prev["results_ns"] = dict(sorted({**recorded, **fresh}.items()))
    with open(out_path, "w") as f:
        json.dump(prev, f, indent=2)
        f.write("\n")
    print(f"kept {len(recorded)} recorded entries, appended "
          f"{len(fresh)} new: {', '.join(sorted(fresh))}")
    sys.exit(0)

# Keep the recorded pre-overhaul baseline (if any) so before/after stays in
# one file across refreshes.
doc = {
    "description": "Engine micro-benchmark medians, CPU ns per iteration",
    "source": "bench/micro_engine.cpp via bench/run_bench.sh",
    "repetitions": reps,
    "results_ns": dict(sorted(results.items())),
}
if prev.get("baseline_ns"):
    doc["baseline_ns"] = dict(sorted(prev["baseline_ns"].items()))
    if prev.get("baseline_source"):
        doc["baseline_source"] = prev["baseline_source"]
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {out_path} ({len(results)} benchmarks)")
PY

# ---- Full-stack figure binaries -------------------------------------------

python3 - "$build_dir" "$fullstack_json" "$rebaseline" <<'PY'
import json
import os
import subprocess
import sys
import time

build_dir, out_path, rebaseline = (
    sys.argv[1], sys.argv[2], sys.argv[3] == "1")

BINARIES = [
    "fig1_container_reuse",
    "fig2_parallel_scaling",
    "fig5_tradeoff_ternary",
    "fig6_makespan_bars",
    "ablate_coldstart",
    "ablate_payload",
    "ablate_concurrency",
    "ablate_clustering",
    "ablate_redirection",
    "ablate_resizing",
    "ablate_complex_workflow",
    "ablate_event_driven",
    "chaos_sweep",
]


def wall(path, threads):
    env = dict(os.environ, SF_SWEEP_THREADS=str(threads))
    t0 = time.perf_counter()
    subprocess.run([path], env=env, check=True,
                   stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    return time.perf_counter() - t0


results = {}
for name in BINARIES:
    path = os.path.join(build_dir, "bench", name)
    if not os.access(path, os.X_OK):
        print(f"  skipping {name}: not built")
        continue
    seq = min(wall(path, 1) for _ in range(3))
    par = min(wall(path, 4) for _ in range(3))
    results[name] = {
        "sequential_s": round(seq, 4),
        "threads4_s": round(par, 4),
        "speedup": round(seq / par, 2) if par > 0 else 0.0,
    }
    print(f"  {name:<28} seq {seq:7.3f} s   4-thread {par:7.3f} s   "
          f"{results[name]['speedup']:.2f}x")

prev = {}
try:
    with open(out_path) as f:
        prev = json.load(f)
except (OSError, ValueError):
    pass

if prev.get("results") and not rebaseline:
    # Baseline entries are frozen without --rebaseline, but binaries that
    # are NEW since the baseline was recorded are appended so adding a
    # benchmark doesn't force a full re-baseline.
    fresh = {k: v for k, v in results.items() if k not in prev["results"]}
    if fresh:
        prev["results"].update(fresh)
        with open(out_path, "w") as f:
            json.dump(prev, f, indent=2)
            f.write("\n")
        print(f"appended {len(fresh)} new binaries to {out_path} "
              f"({', '.join(sorted(fresh))}); existing entries kept "
              f"(pass --rebaseline to refresh them)")
    else:
        print(f"kept {out_path} (pass --rebaseline to overwrite)")
    sys.exit(0)

doc = {
    "description": ("End-to-end wall-clock per figure/ablation binary, "
                    "best of 3; sequential vs SF_SWEEP_THREADS=4"),
    "source": "bench/run_bench.sh",
    "note": ("sweep-based binaries (fig2, ablate_concurrency/payload/"
             "resizing/clustering) parallelize across points; speedup "
             "depends on available cores"),
    "cores": os.cpu_count(),
    "results": results,
}
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {out_path} ({len(results)} binaries)")
PY

# ---- Gray-failure ejection ablation ---------------------------------------
# The chaos sweep's gray table is a simulation RESULT (seed-pure makespans),
# not a timing measurement, so it is refreshed on every run regardless of
# --rebaseline: a drift here means the data plane changed behaviour.

python3 - "$build_dir" "$fullstack_json" <<'PY'
import json
import os
import re
import subprocess
import sys

build_dir, out_path = sys.argv[1], sys.argv[2]
path = os.path.join(build_dir, "bench", "chaos_sweep")
if not os.access(path, os.X_OK):
    print("  skipping gray ablation: chaos_sweep not built")
    sys.exit(0)
out = subprocess.run([path], check=True, capture_output=True,
                     text=True).stdout
rows = []
in_gray = False
for line in out.splitlines():
    if "Gray chaos: outlier ejection ablation" in line:
        in_gray = True
        continue
    if not in_gray:
        continue
    cols = line.split()
    if len(cols) == 11 and cols[1] in ("on", "off"):
        rows.append({
            "level": cols[0],
            "ejection": cols[1],
            "ejections": int(cols[5]),
            "readmissions": int(cols[6]),
            "route_retries": int(cols[7]),
            "makespan_s": float(cols[9]),
            "ok": cols[10],
        })
    elif rows:
        break
with open(out_path) as f:
    doc = json.load(f)
doc["gray_ejection_ablation"] = {
    "note": ("seed-pure gray-failure makespans from chaos_sweep; both arms "
             "share every deadline/retry knob and differ only in outlier "
             "ejection"),
    "rows": rows,
}
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"recorded gray ejection ablation ({len(rows)} rows) in {out_path}")
PY

# ---- Catalog metadata-tier ablation ---------------------------------------
# Like the gray table: a simulation RESULT, refreshed on every run. The
# resilient arm (TTL cache + breaker + stale reads) must post a strictly
# lower makespan than the naive arm at every outage intensity, and the
# cold-start stampede must coalesce to far fewer wire fetches than
# clients — drift here means the metadata tier changed behaviour.

python3 - "$build_dir" "$fullstack_json" <<'PY'
import json
import os
import subprocess
import sys

build_dir, out_path = sys.argv[1], sys.argv[2]
path = os.path.join(build_dir, "bench", "chaos_sweep")
if not os.access(path, os.X_OK):
    print("  skipping catalog ablation: chaos_sweep not built")
    sys.exit(0)
out = subprocess.run([path], check=True, capture_output=True,
                     text=True).stdout
rows = []
stampede = []
section = None
for line in out.splitlines():
    if "Catalog ablation: metadata-tier outages" in line:
        section = "ablation"
        continue
    if "cold-start stampede" in line:
        section = "stampede"
        continue
    if section is None:
        continue
    cols = line.split()
    if section == "ablation" and len(cols) == 13 and cols[1] in ("on", "off"):
        rows.append({
            "level": cols[0],
            "resilience": cols[1],
            "outages": int(cols[2]),
            "cache_hits": int(cols[4]),
            "stale_served": int(cols[5]),
            "service_calls": int(cols[7]),
            "retries": int(cols[8]),
            "breaker_opens": int(cols[9]),
            "makespan_s": float(cols[11]),
            "ok": cols[12],
        })
    elif section == "stampede" and len(cols) == 7 and cols[0] in ("on",
                                                                  "off"):
        stampede.append({
            "coalescing": cols[0],
            "clients": int(cols[1]),
            "coalesced": int(cols[3]),
            "service_calls": int(cols[4]),
            "drain_s": float(cols[5]),
            "ok": cols[6],
        })
with open(out_path) as f:
    doc = json.load(f)
doc["catalog_ablation"] = {
    "note": ("seed-pure catalog-outage makespans from chaos_sweep; both "
             "arms share the service and retry envelope and differ only in "
             "TTL cache + circuit breaker + stale-while-revalidate"),
    "rows": rows,
    "stampede": stampede,
}
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"recorded catalog ablation ({len(rows)} rows, "
      f"{len(stampede)} stampede rows) in {out_path}")
PY

# ---- Scale sweep curve ----------------------------------------------------

scale_json="$repo_root/BENCH_scale.json"
scale_bin="$build_dir/bench/scale_sweep"

python3 - "$scale_bin" "$scale_json" "$rebaseline" <<'PY'
import json
import os
import subprocess
import sys
import time

scale_bin, out_path, rebaseline = (
    sys.argv[1], sys.argv[2], sys.argv[3] == "1")

if not os.access(scale_bin, os.X_OK):
    print(f"  skipping scale sweep: {scale_bin} not built")
    sys.exit(0)

side = out_path + ".tmp"
env = dict(os.environ, SF_SWEEP_THREADS="4", SF_SCALE_JSON=side)
t0 = time.perf_counter()
subprocess.run([scale_bin], env=env, check=True,
               stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
total = time.perf_counter() - t0
with open(side) as f:
    curve = json.load(f)
os.unlink(side)

rows = {r["point"]: r
        for r in curve["serving"] + curve["dag"] + curve.get("mixed", [])}
for name, row in rows.items():
    print(f"  scale {name:<8} wall {row['wall_s']:8.3f} s")

prev = {}
try:
    with open(out_path) as f:
        prev = json.load(f)
except (OSError, ValueError):
    pass

if prev.get("serving") and not rebaseline:
    # Frozen baseline: append points NEW since it was recorded, so growing
    # the sweep doesn't force a refresh of the committed curve.
    known = {r["point"] for r in prev.get("serving", [])}
    known |= {r["point"] for r in prev.get("dag", [])}
    known |= {r["point"] for r in prev.get("mixed", [])}
    fresh = 0
    for key in ("serving", "dag", "mixed"):
        extra = [r for r in curve.get(key, []) if r["point"] not in known]
        prev.setdefault(key, []).extend(extra)
        fresh += len(extra)
    if fresh:
        with open(out_path, "w") as f:
            json.dump(prev, f, indent=2)
            f.write("\n")
        print(f"appended {fresh} new points to {out_path}; existing "
              f"entries kept (pass --rebaseline to refresh them)")
    else:
        print(f"kept {out_path} (pass --rebaseline to overwrite)")
    sys.exit(0)

doc = {
    "description": ("scale_sweep curve: open-loop serving points "
                    "(nodes x users x requests) and layered-DAG points; "
                    "sim-time metrics plus wall-clock per point at "
                    "SF_SWEEP_THREADS=4"),
    "source": "bench/scale_sweep.cpp via bench/run_bench.sh",
    "cores": os.cpu_count(),
    "total_wall_s": round(total, 3),
    "serving": curve["serving"],
    "dag": curve["dag"],
    "mixed": curve.get("mixed", []),
}
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {out_path} ({len(rows)} points, {total:.1f} s total)")
PY
