#!/usr/bin/env bash
# Runs the engine micro-benchmarks and records per-benchmark ns/op in
# BENCH_engine.json at the repository root.
#
# Usage:
#   bench/run_bench.sh [build-dir] [repetitions]
#
# Defaults: build-dir = ./build, repetitions = 5. The JSON maps benchmark
# name -> median CPU ns per iteration (medians are robust against load
# spikes on shared machines). Re-run after engine changes and commit the
# refreshed numbers together with the change that produced them.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
reps="${2:-5}"
bench_bin="$build_dir/bench/micro_engine"
out_json="$repo_root/BENCH_engine.json"

if [[ ! -x "$bench_bin" ]]; then
  echo "error: $bench_bin not found or not executable." >&2
  echo "Build it first: cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

filter='BM_EventQueueScheduleAndPop|BM_EventQueueCancelHeavy|BM_EventQueueMixedSchedule|BM_SimulationEventChurn|BM_PsResourceChurn|BM_FlowNetworkFanout'
raw_json="$(mktemp)"
trap 'rm -f "$raw_json"' EXIT

"$bench_bin" \
  --benchmark_filter="$filter" \
  --benchmark_min_time=0.2 \
  --benchmark_repetitions="$reps" \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json > "$raw_json"

python3 - "$raw_json" "$out_json" "$reps" <<'PY'
import json
import sys

raw_path, out_path, reps = sys.argv[1], sys.argv[2], int(sys.argv[3])
with open(raw_path) as f:
    report = json.load(f)

# repetitions >= 2 produce _median aggregate rows; a single repetition
# produces only plain rows — accept either so `run_bench.sh build 1` works.
results = {}
plain = {}
for bench in report.get("benchmarks", []):
    name = bench.get("name", "")
    if name.endswith("_median"):
        results[name.removesuffix("_median")] = round(bench["cpu_time"], 1)
    elif bench.get("run_type") != "aggregate":
        plain[name] = round(bench["cpu_time"], 1)
if not results:
    results = plain

# Keep the recorded pre-overhaul baseline (if any) so before/after stays in
# one file across refreshes.
baseline = {}
baseline_source = ""
try:
    with open(out_path) as f:
        prev = json.load(f)
    baseline = prev.get("baseline_ns", {})
    baseline_source = prev.get("baseline_source", "")
except (OSError, ValueError):
    pass

doc = {
    "description": "Engine micro-benchmark medians, CPU ns per iteration",
    "source": "bench/micro_engine.cpp via bench/run_bench.sh",
    "repetitions": reps,
    "results_ns": dict(sorted(results.items())),
}
if baseline:
    doc["baseline_ns"] = dict(sorted(baseline.items()))
    if baseline_source:
        doc["baseline_source"] = baseline_source
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {out_path} ({len(results)} benchmarks)")
PY
