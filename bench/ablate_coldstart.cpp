// Ablation — container provisioning policy (paper §IV-2, §V-E).
//
// Knative's `min-scale` pre-stages containers on workers ahead of time;
// `initial-scale: 0` defers the image download until a task is invoked
// (what Pegasus does per job). This bench measures the first-invocation
// latency and the steady warm latency under each policy, plus the §III-B
// cold-start anchor of 1.48 s.

#include <functional>
#include <iostream>

#include "bench_util.hpp"
#include "container/image.hpp"
#include "core/testbed.hpp"

namespace {

using namespace sf;
using namespace sf::core;

struct PolicyResult {
  double registration_to_ready_s = -1;  ///< pods warm (pre-staged only)
  double first_invocation_s = 0;
  double warm_invocation_s = 0;
};

PolicyResult measure(const ProvisioningPolicy& policy, bool prestage_image) {
  TestbedOptions opts;
  opts.prestage_images = prestage_image;
  opts.provisioning = policy;
  PaperTestbed tb(42, opts);

  const double reg_at = tb.sim().now();
  tb.register_matmul_function();
  PolicyResult result;
  if (policy.min_scale > 0) {
    result.registration_to_ready_s = tb.sim().now() - reg_at;
  }

  auto invoke_once = [&tb]() {
    double done_at = -1;
    net::HttpRequest req;
    TaskPayload payload;
    payload.work_coreseconds = tb.calibration().matmul_work_s;
    payload.output_bytes = 64;
    req.body = payload;
    req.body_bytes = 128;
    const double t0 = tb.sim().now();
    tb.serving().invoke(tb.cluster().node(0).net_id(), "fn-matmul",
                        std::move(req),
                        [&](net::HttpResponse) { done_at = tb.sim().now(); });
    while (done_at < 0 && tb.sim().has_pending_events()) tb.sim().step();
    return done_at - t0;
  };
  result.first_invocation_s = invoke_once();
  result.warm_invocation_s = invoke_once();
  return result;
}

}  // namespace

int main() {
  sf::bench::banner(
      "Ablation: provisioning policy (min-scale vs initial-scale=0)",
      "pre-staged containers answer immediately; deferred pays the 1.48 s "
      "cold start, plus the image pull when not pre-distributed");

  sf::metrics::Table table({"policy", "image", "ready_after_reg_s",
                            "first_invoke_s", "warm_invoke_s"},
                           3);
  auto row = [&table](const char* name, const char* image,
                      const PolicyResult& r) {
    table.add_row({std::string(name), std::string(image),
                   r.registration_to_ready_s, r.first_invocation_s,
                   r.warm_invocation_s});
  };
  row("min-scale=3 (pre-staged)", "pre-distributed",
      measure(ProvisioningPolicy::prestaged(3), true));
  row("min-scale=1", "pre-distributed",
      measure(ProvisioningPolicy::prestaged(1), true));
  row("initial-scale=0 (deferred)", "pre-distributed",
      measure(ProvisioningPolicy::deferred(), true));
  row("initial-scale=0 (deferred)", "registry pull",
      measure(ProvisioningPolicy::deferred(), false));
  table.print_text(std::cout);
  std::cout << "\npaper anchor: cold start with pre-distributed image = "
               "1.48 s (Figure 1)\n";
  return 0;
}
