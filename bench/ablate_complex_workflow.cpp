// Ablation — §IX-A comprehensive workflow evaluation, implemented.
//
// The paper's evaluation isolates orchestration effects with a simple
// matmul chain and defers "more complex and dynamic scientific workflows"
// to future work. This bench runs a Montage-like five-level DAG
// (project×W → diff → fit → background×W → mosaic) through all three
// execution environments across widths, using automated function
// registration (§IX-B) for the serverless arm.

#include <iostream>

#include "bench_util.hpp"
#include "core/testbed.hpp"

namespace {

using namespace sf;
using namespace sf::core;

double run(int width, pegasus::JobMode mode) {
  PaperTestbed tb(42);
  workload::add_montage_transformations(
      tb.transformations(), tb.calibration().matmul_transformation());
  auto wf = workload::make_montage_like("m", width,
                                        tb.calibration().matrix_bytes);
  std::map<std::string, pegasus::JobMode> modes;
  if (mode == pegasus::JobMode::kServerless) {
    modes = tb.integration().auto_register(wf, tb.transformations(),
                                           tb.options().provisioning);
  } else {
    for (const auto& job : wf.jobs()) modes[job.id] = mode;
  }
  const auto result = tb.run_workflows({wf}, modes);
  if (!result.all_succeeded) {
    std::cerr << "run failed: width=" << width << " mode="
              << pegasus::to_string(mode) << "\n";
  }
  return result.slowest;
}

}  // namespace

int main() {
  sf::bench::banner(
      "Ablation: complex Montage-like workflow (§IX-A)",
      "five-level fan-out/fan-in DAG; the execution-environment ordering "
      "from Figure 6 must survive a realistic workflow shape");

  sf::metrics::Table table(
      {"width", "tasks", "native_s", "serverless_s", "container_s"}, 2);
  for (int width : {4, 8, 12}) {
    const int tasks = 2 * width + (width - 1) + 2;
    table.add_row({static_cast<std::int64_t>(width),
                   static_cast<std::int64_t>(tasks),
                   run(width, pegasus::JobMode::kNative),
                   run(width, pegasus::JobMode::kServerless),
                   run(width, pegasus::JobMode::kContainer)});
  }
  table.print_text(std::cout);
  std::cout << "\nexpectation: native <= serverless < container at every "
               "width, mirroring the simple-chain result\n";
  return 0;
}
