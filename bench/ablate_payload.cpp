// Ablation — data-movement strategy (paper §V-E and §VIII future work).
//
// The paper's prototype passes file data by value inside the invocation
// request/response and names two alternatives: a shared filesystem and a
// Minio-like object store. This bench runs the same serverless workflow
// under each strategy across matrix sizes and reports the slowest-workflow
// makespan and the total bytes that crossed the network — quantifying the
// "redundant data movement" the paper earmarks for future study.

#include <cstddef>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/testbed.hpp"
#include "sim/sweep_runner.hpp"

namespace {

using namespace sf;
using namespace sf::core;

struct StrategyResult {
  double makespan = 0;
  double network_bytes = 0;
};

StrategyResult run(DataStrategy strategy, double matrix_bytes) {
  TestbedOptions opts;
  opts.strategy = strategy;
  opts.calibration.matrix_bytes = matrix_bytes;
  PaperTestbed tb(42, opts);
  tb.register_matmul_function();
  const double before = tb.cluster().network().total_bytes_delivered();

  auto wf = workload::make_matmul_chain("w", 10, matrix_bytes);
  std::map<std::string, pegasus::JobMode> modes;
  for (const auto& job : wf.jobs()) {
    modes[job.id] = pegasus::JobMode::kServerless;
  }
  const auto result = tb.run_workflows({wf}, modes);
  StrategyResult out;
  out.makespan = result.slowest;
  out.network_bytes =
      tb.cluster().network().total_bytes_delivered() - before;
  if (!result.all_succeeded) {
    std::cerr << "run failed: " << to_string(strategy) << "\n";
  }
  return out;
}

}  // namespace

int main() {
  sf::bench::banner(
      "Ablation: data strategy x payload size",
      "pass-by-value (paper default) vs shared FS vs Minio-like object "
      "store; bytes moved quantify the redundant-data-movement cost");

  // Matrix orders 350 (paper), 700, 1400, 2800 → 0.49, 1.96, 7.8, 31 MB.
  const std::vector<double> sizes{490e3, 1.96e6, 7.84e6, 31.4e6};
  const std::vector<DataStrategy> strategies{DataStrategy::kPassByValue,
                                             DataStrategy::kSharedFs,
                                             DataStrategy::kObjectStore};
  // 12 independent (size, strategy) simulations swept across threads.
  struct Point {
    double bytes = 0;
    DataStrategy strategy = DataStrategy::kPassByValue;
  };
  std::vector<Point> points;
  for (double bytes : sizes) {
    for (DataStrategy strategy : strategies) points.push_back({bytes, strategy});
  }
  sf::sim::SweepRunner runner;
  const auto results = runner.run(points.size(), [&points](std::size_t i) {
    return run(points[i].strategy, points[i].bytes);
  });

  sf::metrics::Table table({"matrix_MB", "strategy", "makespan_s",
                            "network_MB"},
                           2);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& r = results[i];
    table.add_row({points[i].bytes / 1e6,
                   std::string(to_string(points[i].strategy)), r.makespan,
                   r.network_bytes / 1e6});
  }
  table.print_text(std::cout);
  std::cout << "\nexpectation: pass-by-value moves each input twice "
               "(wrapper->gateway->pod) and scales worst with size; the "
               "storage-backed strategies trade per-request bytes for "
               "storage-service round-trips\n";
  return 0;
}
