// Ablation — §IX-D task redirection, implemented and measured.
//
// Two of the three workers carry heavy background load (a co-tenant
// monopolizing cores — the motivation scenario of Section III). A 12-task
// parallel workflow then runs three ways: statically native (suffers the
// contention), statically serverless, and adaptively — tasks probe their
// node's utilization at start and redirect to the Knative function when
// it exceeds the threshold, with least-loaded routing steering them to
// pods with spare capacity.

#include <iostream>

#include "bench_util.hpp"
#include "core/redirect.hpp"
#include "core/testbed.hpp"

namespace {

using namespace sf;
using namespace sf::core;

void load_workers(PaperTestbed& tb, int hogs_per_node) {
  for (const auto* name : {"node1", "node2"}) {
    auto& node = tb.cluster().node_by_name(name);
    for (int i = 0; i < hogs_per_node; ++i) {
      node.run_process(1e6, [] {}, 1.0);
    }
  }
}

struct Outcome {
  double makespan = 0;
  std::uint64_t redirected = 0;
};

Outcome run(bool background_load, pegasus::JobMode mode, bool adaptive) {
  TestbedOptions topts;
  // Larger tasks (≈750×750 matmuls) so node contention dominates the
  // fixed per-job scheduling overhead and the redirection effect is
  // visible above the DAGMan/condor latency floor.
  topts.calibration.matmul_work_s = 4.5;
  PaperTestbed tb(42, topts);
  tb.register_matmul_function();
  tb.serving().set_load_balancing(knative::LoadBalancingPolicy::kLeastLoaded);
  if (background_load) load_workers(tb, 64);

  auto wf = workload::make_parallel_matmuls("p", 12,
                                            tb.calibration().matrix_bytes);
  workload::seed_initial_inputs(wf, tb.condor().submit_staging(),
                                tb.replicas());
  TaskRedirector redirector(tb.integration(), 0.75);
  pegasus::PlannerOptions opts;
  opts.default_mode = mode;
  opts.registry = &tb.registry();
  opts.docker = &tb.docker();
  opts.serverless_factory = adaptive ? redirector.adaptive_factory()
                                     : tb.integration().wrapper_factory();
  pegasus::Planner planner(wf, tb.transformations(), tb.replicas(),
                           tb.condor(), opts);
  condor::DagMan dag(tb.condor());
  planner.plan().load_into(dag);
  bool finished = false;
  dag.run([&](bool ok) {
    finished = true;
    if (!ok) std::cerr << "workflow failed\n";
  });
  while (!finished && tb.sim().has_pending_events()) tb.sim().step();
  return {dag.makespan(), redirector.redirected()};
}

}  // namespace

int main() {
  sf::bench::banner(
      "Ablation: runtime task redirection away from loaded nodes (§IX-D)",
      "future-work feature: adaptive tasks probe node utilization and "
      "flee to the serverless function when a co-tenant hogs the cores");

  sf::metrics::Table table(
      {"background_load", "execution", "makespan_s", "redirected_tasks"},
      2);
  for (bool loaded : {false, true}) {
    const auto native = run(loaded, pegasus::JobMode::kNative, false);
    const auto serverless =
        run(loaded, pegasus::JobMode::kServerless, false);
    const auto adaptive = run(loaded, pegasus::JobMode::kServerless, true);
    const std::string tag = loaded ? "2/3 nodes saturated" : "idle";
    table.add_row({tag, std::string("static native"), native.makespan,
                   std::int64_t{0}});
    table.add_row({tag, std::string("static serverless"),
                   serverless.makespan, std::int64_t{0}});
    table.add_row({tag, std::string("adaptive redirect"), adaptive.makespan,
                   static_cast<std::int64_t>(adaptive.redirected)});
  }
  table.print_text(std::cout);
  std::cout << "\nexpectation: under load, adaptive ≈ min(native, "
               "serverless) with zero overhead when idle\n";
  return 0;
}
