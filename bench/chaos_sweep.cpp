// Chaos sweep — makespan vs fault intensity for a fig6-style concurrent
// workflow set (half native / half Knative) under the sf::fault injector:
// worker VM crashes + reboots, registry outages, pod kills, NIC
// degradation and transient partitions, with DAGMan retries, node-
// lifecycle eviction and queue-proxy deadlines doing the recovering.
//
// Determinism contract: each sweep point builds its own testbed +
// injector from fixed seeds, points run across a SweepRunner pool, and
// rows print in sweep order — stdout is bit-identical at any
// SF_SWEEP_THREADS (asserted by tests/fault/injector_test.cpp).

#include <cstddef>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/testbed.hpp"
#include "fault/injector.hpp"
#include "sim/sweep_runner.hpp"

namespace {

using namespace sf;
using namespace sf::core;

struct Level {
  const char* label;
  double intensity;  ///< fault arrival-rate multiplier (0 = no faults)
};

fault::FaultConfig chaos_config(double intensity) {
  fault::FaultConfig cfg;
  cfg.horizon_s = 2400;
  if (intensity <= 0) return cfg;  // all channels off
  cfg.node_crash_mean_s = 240 / intensity;
  cfg.node_downtime_s = 25;
  cfg.pull_outage_mean_s = 180 / intensity;
  cfg.pull_outage_duration_s = 6;
  cfg.pod_kill_mean_s = 150 / intensity;
  cfg.degrade_mean_s = 120 / intensity;
  cfg.degrade_duration_s = 20;
  cfg.degrade_factor = 0.25;
  cfg.partition_mean_s = 200 / intensity;
  cfg.partition_duration_s = 12;
  return cfg;
}

struct PointResult {
  double makespan_s = 0;
  bool ok = false;
  std::uint64_t crashes = 0;
  std::uint64_t pod_kills = 0;
  std::uint64_t outages = 0;
  std::uint64_t degrades = 0;
  std::uint64_t partitions = 0;
  std::uint64_t condor_aborts = 0;
  std::uint64_t pods_replaced = 0;
};

PointResult run_point(double intensity) {
  TestbedOptions opts;
  // Cold pulls on every scale-up so the registry-outage channel has a
  // real pull path to break; retries absorb crashed attempts.
  opts.prestage_images = false;
  opts.dag_retries = 4;
  opts.provisioning.request_timeout_s = 45;
  PaperTestbed tb(42, opts);
  tb.register_matmul_function();

  fault::FaultInjector injector(tb, chaos_config(intensity),
                                /*seed=*/0xC4405EEDull);
  injector.arm();

  const auto result =
      tb.run_concurrent_mix(10, 10, metrics::MixPoint{0.5, 0.0, 0.5});

  PointResult r;
  r.makespan_s = result.slowest;
  r.ok = result.all_succeeded;
  r.crashes = injector.node_crashes();
  r.pod_kills = injector.pod_kills();
  r.outages = injector.registry_outages();
  r.degrades = injector.degrades();
  r.partitions = injector.partitions();
  r.condor_aborts = tb.condor().jobs_aborted();
  r.pods_replaced = tb.kube().controller_pods_replaced();
  return r;
}

}  // namespace

int main() {
  sf::bench::banner(
      "Chaos sweep: makespan vs fault intensity",
      "fig6-style mix under injected crashes / outages / kills / "
      "partitions; recovery = DAGMan retries + node lifecycle + "
      "queue-proxy deadlines");

  const std::vector<Level> levels{{"none", 0.0},
                                  {"light", 1.0},
                                  {"moderate", 2.0},
                                  {"heavy", 4.0},
                                  {"extreme", 8.0}};

  sf::sim::SweepRunner runner;
  const std::vector<PointResult> results =
      runner.run(levels.size(), [&levels](std::size_t i) {
        return run_point(levels[i].intensity);
      });

  sf::metrics::Table table({"level", "crashes", "pod_kills", "outages",
                            "degrades", "partitions", "condor_aborts",
                            "pods_replaced", "makespan_s", "ok"},
                           2);
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const PointResult& r = results[i];
    table.add_row({std::string(levels[i].label),
                   static_cast<std::int64_t>(r.crashes),
                   static_cast<std::int64_t>(r.pod_kills),
                   static_cast<std::int64_t>(r.outages),
                   static_cast<std::int64_t>(r.degrades),
                   static_cast<std::int64_t>(r.partitions),
                   static_cast<std::int64_t>(r.condor_aborts),
                   static_cast<std::int64_t>(r.pods_replaced), r.makespan_s,
                   std::string(r.ok ? "yes" : "NO")});
  }
  table.print_text(std::cout);
  std::cout << "\nall points recover within the retry budget; makespan "
               "grows with fault intensity\n";
  return 0;
}
