// Chaos sweep — recovery under structured failure injection, two sweeps:
//
//  1. Intensity sweep: makespan vs fault intensity for a fig6-style
//     concurrent workflow set (half native / half Knative) under every
//     sf::fault channel — independent crashes / outages / kills /
//     degradation / partitions PLUS correlated incidents (rack PDU trips,
//     rack cut-set partitions, deploy storms) and gray failures (CPU
//     stragglers, flaky NICs) on a 2-rack layout of the 4-node testbed.
//
//  2. Autoscale chaos: KPA burst workload (scale-from-zero, concurrency-1
//     pods) with the same structured injector running underneath, so
//     scale-up races eviction: the node-lifecycle controller evicts pods
//     off crashed/partitioned nodes while the autoscaler is still adding
//     them, and queue-proxy deadlines + router retries + a driver-level
//     retry loop absorb the requests caught in between.
//
// Recovery = DAGMan retries, node-lifecycle eviction, negotiator
// reachability gating, queue-proxy deadlines, router + driver retries.
//
// Determinism contract: each sweep point builds its own testbed +
// injector from fixed seeds, points run across a SweepRunner pool, and
// rows print in sweep order — stdout is bit-identical at any
// SF_SWEEP_THREADS (asserted by tests/fault/injector_test.cpp and the
// scripts/tier1.sh --chaos golden diff).
//
// SF_CHAOS_SMOKE=1 shrinks both sweeps (fewer levels, smaller workloads)
// for the tier-1 smoke leg; the output format is unchanged.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/testbed.hpp"
#include "fault/injector.hpp"
#include "pegasus/abstract_workflow.hpp"
#include "sim/sweep_runner.hpp"

namespace {

using namespace sf;
using namespace sf::core;

bool smoke_mode() {
  const char* env = std::getenv("SF_CHAOS_SMOKE");
  return env != nullptr && env[0] == '1';
}

struct Level {
  const char* label;
  double intensity;  ///< fault arrival-rate multiplier (0 = no faults)
};

fault::FaultConfig chaos_config(double intensity) {
  fault::FaultConfig cfg;
  cfg.horizon_s = 2400;
  cfg.racks = 2;  // nodes {0,1} | {2,3}
  if (intensity <= 0) return cfg;  // all channels off
  // Independent fail-stop channels.
  cfg.node_crash_mean_s = 240 / intensity;
  cfg.node_downtime_s = 25;
  cfg.pull_outage_mean_s = 180 / intensity;
  cfg.pull_outage_duration_s = 6;
  cfg.pod_kill_mean_s = 150 / intensity;
  cfg.degrade_mean_s = 120 / intensity;
  cfg.degrade_duration_s = 20;
  cfg.degrade_factor = 0.25;
  cfg.partition_mean_s = 200 / intensity;
  cfg.partition_duration_s = 12;
  // Correlated incidents.
  cfg.rack_fail_mean_s = 600 / intensity;
  cfg.rack_fail_downtime_s = 30;
  cfg.rack_partition_mean_s = 400 / intensity;
  cfg.rack_partition_duration_s = 18;
  cfg.deploy_storm_mean_s = 300 / intensity;
  cfg.deploy_storm_outage_s = 8;
  cfg.deploy_storm_kills = 3;
  // Gray failures.
  cfg.cpu_slow_mean_s = 150 / intensity;
  cfg.cpu_slow_duration_s = 25;
  cfg.cpu_slow_factor = 0.2;
  cfg.flaky_nic_mean_s = 130 / intensity;
  cfg.flaky_nic_duration_s = 25;
  cfg.flaky_nic_every = 4;
  cfg.flaky_nic_stall_s = 1.5;
  return cfg;
}

/// Gray-only fault plan for the ejection ablation: CPU stragglers, flaky
/// NICs and one-way partitions — the failures heartbeats cannot see (the
/// node keeps renewing its lease while its pods limp or their replies
/// vanish). Fail-stop channels stay off so the comparison isolates the
/// data plane's passive health checking.
fault::FaultConfig gray_config(double intensity) {
  fault::FaultConfig cfg;
  cfg.horizon_s = 2400;
  cfg.racks = 2;
  if (intensity <= 0) return cfg;
  // Deep stragglers: a 0.45 s task takes ~9 s at factor 0.05 — past the
  // 4 s per-attempt deadline, so a slowed pod answers with 504s instead
  // of merely lagging.
  cfg.cpu_slow_mean_s = 120 / intensity;
  cfg.cpu_slow_duration_s = 35;
  cfg.cpu_slow_factor = 0.05;
  cfg.flaky_nic_mean_s = 120 / intensity;
  cfg.flaky_nic_duration_s = 25;
  cfg.flaky_nic_every = 3;
  cfg.flaky_nic_stall_s = 2.0;
  cfg.oneway_partition_mean_s = 140 / intensity;
  cfg.oneway_partition_duration_s = 30;
  return cfg;
}

// ---- Sweep 1: fig6 mix vs intensity ----------------------------------

struct PointResult {
  double makespan_s = 0;
  bool ok = false;
  std::uint64_t crashes = 0;
  std::uint64_t pod_kills = 0;
  std::uint64_t outages = 0;
  std::uint64_t degrades = 0;
  std::uint64_t partitions = 0;
  std::uint64_t rack_cuts = 0;
  std::uint64_t cpu_slows = 0;
  std::uint64_t flaky = 0;
  std::uint64_t condor_aborts = 0;
  std::uint64_t pods_replaced = 0;
};

PointResult run_point(double intensity, int n_workflows, int tasks_each) {
  TestbedOptions opts;
  // Cold pulls on every scale-up so the registry-outage channel has a
  // real pull path to break; retries absorb crashed attempts.
  opts.prestage_images = false;
  opts.dag_retries = 4;
  opts.provisioning.request_timeout_s = 45;
  PaperTestbed tb(42, opts);
  tb.register_matmul_function();

  fault::FaultInjector injector(tb, chaos_config(intensity),
                                /*seed=*/0xC4405EEDull);
  injector.arm();

  const auto result = tb.run_concurrent_mix(n_workflows, tasks_each,
                                            metrics::MixPoint{0.5, 0.0, 0.5});

  PointResult r;
  r.makespan_s = result.slowest;
  r.ok = result.all_succeeded;
  r.crashes = injector.node_crashes();
  r.pod_kills = injector.pod_kills();
  r.outages = injector.registry_outages();
  r.degrades = injector.degrades();
  r.partitions = injector.partitions();
  r.rack_cuts = injector.rack_partitions();
  r.cpu_slows = injector.cpu_slows();
  r.flaky = injector.flaky_nics();
  r.condor_aborts = tb.condor().jobs_aborted();
  r.pods_replaced = tb.kube().controller_pods_replaced();
  return r;
}

// ---- Sweep 2: chaos under autoscaling --------------------------------

struct AutoscaleResult {
  double makespan_s = 0;
  bool ok = false;
  std::uint64_t crashes = 0;
  std::uint64_t pod_kills = 0;
  std::uint64_t rack_cuts = 0;
  std::uint64_t cold_starts = 0;
  std::uint64_t route_retries = 0;
  std::uint64_t driver_retries = 0;
  std::uint64_t pods_replaced = 0;
};

/// Scale-from-zero bursts racing the injector: `bursts` waves of
/// `burst_size` concurrent invocations, one wave every `spacing_s`.
/// Failed responses (the router's retry budget exhausted mid-incident)
/// are re-driven by the client after a 1 s backoff — the outermost retry
/// loop a real workflow wrapper would run.
AutoscaleResult run_autoscale_point(double intensity, int bursts,
                                    int burst_size) {
  constexpr int kMaxDriverAttempts = 12;
  constexpr double kBurstSpacing = 90.0;

  TestbedOptions opts;
  opts.prestage_images = false;  // every scale-up pulls through the chaos
  ProvisioningPolicy policy = ProvisioningPolicy::deferred();
  policy.container_concurrency = 1;
  policy.request_timeout_s = 30;
  opts.provisioning = policy;
  PaperTestbed tb(42, opts);
  tb.register_matmul_function();

  fault::FaultConfig cfg = chaos_config(intensity);
  // Bias toward the channels that fight the autoscaler: kills and rack
  // incidents evict pods the KPA just brought up.
  if (intensity > 0) {
    cfg.pod_kill_mean_s = 80 / intensity;
    cfg.rack_fail_mean_s = 400 / intensity;
  }
  fault::FaultInjector injector(tb, cfg, /*seed=*/0xC4A0C4A0ull);
  injector.arm();

  const int total = bursts * burst_size;
  int done = 0;
  std::uint64_t driver_retries = 0;
  std::function<void(int)> send = [&](int attempt) {
    net::HttpRequest req;
    TaskPayload payload;
    payload.work_coreseconds = tb.calibration().matmul_work_s;
    payload.output_bytes = 64;
    req.body = payload;
    req.body_bytes = 128;
    tb.serving().invoke(tb.cluster().node(0).net_id(), "fn-matmul",
                        std::move(req), [&, attempt](net::HttpResponse resp) {
                          if (resp.ok()) {
                            ++done;
                            return;
                          }
                          if (attempt >= kMaxDriverAttempts) return;  // lost
                          ++driver_retries;
                          tb.sim().call_in(1.0,
                                           [&, attempt] { send(attempt + 1); });
                        });
  };
  const double t0 = tb.sim().now();
  for (int b = 0; b < bursts; ++b) {
    tb.sim().call_in(b * kBurstSpacing, [&, burst_size] {
      for (int i = 0; i < burst_size; ++i) send(1);
    });
  }
  // Heartbeats keep the event queue non-empty forever, so the drive loop
  // needs a wall: if any request exhausts its driver retries (it never
  // should), stop at the deadline and report the loss instead of spinning.
  const double deadline = t0 + 3600;
  while (done < total && tb.sim().has_pending_events() &&
         tb.sim().now() < deadline) {
    tb.sim().step();
  }

  AutoscaleResult r;
  r.makespan_s = tb.sim().now() - t0;
  r.ok = done == total;
  r.crashes = injector.node_crashes();
  r.pod_kills = injector.pod_kills();
  r.rack_cuts = injector.rack_partitions();
  r.cold_starts = tb.serving().cold_start_requests("fn-matmul");
  r.route_retries = tb.serving().route_retries("fn-matmul");
  r.driver_retries = driver_retries;
  r.pods_replaced = tb.kube().controller_pods_replaced();
  return r;
}

// ---- Sweep 3: gray failures, outlier ejection on/off ------------------

struct GrayResult {
  double makespan_s = 0;
  bool ok = false;
  std::uint64_t cpu_slows = 0;
  std::uint64_t flaky = 0;
  std::uint64_t oneway = 0;
  std::uint64_t ejections = 0;
  std::uint64_t readmissions = 0;
  std::uint64_t route_retries = 0;
  std::uint64_t unresponsive = 0;
};

/// Fixed warm fleet (3 concurrency-1 pods, no autoscaling, prestaged
/// images) running a fully-serverless DAG mix through gray failures.
/// The two arms share every knob — queue-proxy deadline, router
/// per-attempt deadline, retry budget — and differ ONLY in
/// outlier.enabled, so the makespan gap is the ejection filter's payoff:
/// with it off, round-robin keeps feeding the straggler and every visit
/// pays a deadline; with it on, the detector exiles the backend after a
/// short burst of gateway failures and only probation probes pay.
GrayResult run_gray_point(double intensity, bool ejection, int n_workflows,
                          int tasks_each) {
  TestbedOptions opts;
  opts.prestage_images = true;
  opts.dag_retries = 4;
  ProvisioningPolicy policy = ProvisioningPolicy::prestaged(3);
  policy.max_scale = 3;
  policy.container_concurrency = 1;
  policy.request_timeout_s = 10;
  policy.route_timeout_s = 4;
  if (ejection) {
    policy.outlier.enabled = true;
    policy.outlier.consecutive_gateway = 3;
    // Windows tuned to the gray fault durations (25-35 s): long enough
    // to stop feeding a limping backend, short enough that probation
    // re-admits it within one window of healing.
    policy.outlier.base_ejection_s = 10;
    policy.outlier.max_ejection_s = 40;
  }
  opts.provisioning = policy;
  PaperTestbed tb(42, opts);
  tb.register_matmul_function();

  fault::FaultInjector injector(tb, gray_config(intensity),
                                /*seed=*/0x6EA45EEDull);
  injector.arm();

  const auto result = tb.run_concurrent_mix(n_workflows, tasks_each,
                                            metrics::MixPoint{0.0, 0.0, 1.0});

  GrayResult r;
  r.makespan_s = result.slowest;
  r.ok = result.all_succeeded;
  r.cpu_slows = injector.cpu_slows();
  r.flaky = injector.flaky_nics();
  r.oneway = injector.oneway_partitions();
  r.ejections = tb.serving().ejections("fn-matmul");
  r.readmissions = tb.serving().readmissions("fn-matmul");
  r.route_retries = tb.serving().route_retries("fn-matmul");
  r.unresponsive = tb.serving().route_failures("fn-matmul").unresponsive;
  return r;
}

// ---- Sweep 4: admission control under a synchronized burst ------------

struct AdmissionResult {
  double drain_s = 0;  ///< time until every request is answered
  bool ok = false;     ///< every request answered (200 or shed 429)
  std::uint64_t r200 = 0;
  std::uint64_t r429 = 0;
  std::uint64_t other = 0;
  std::uint64_t rejections = 0;  ///< router admission counter
  std::size_t peak_queue = 0;    ///< deepest backend queue observed
};

/// One synchronized burst against the same fixed 3-pod fleet, admission
/// token bucket on/off. Off: every request queues and the per-pod
/// backlog grows unbounded with burst size. On: the bucket sheds the
/// excess with fast 429s after the router's jittered in-flight retries,
/// keeping backend queues near the bucket burst size.
AdmissionResult run_admission_point(bool admission, int burst) {
  TestbedOptions opts;
  opts.prestage_images = true;
  ProvisioningPolicy policy = ProvisioningPolicy::prestaged(3);
  policy.max_scale = 3;
  policy.container_concurrency = 1;
  if (admission) {
    policy.admission.fill_rate_hz = 2.0;
    policy.admission.burst = 6.0;
  }
  opts.provisioning = policy;
  PaperTestbed tb(42, opts);
  tb.register_matmul_function();

  AdmissionResult r;
  std::uint64_t answered = 0;
  const double t0 = tb.sim().now();
  for (int i = 0; i < burst; ++i) {
    net::HttpRequest req;
    TaskPayload payload;
    payload.work_coreseconds = tb.calibration().matmul_work_s;
    payload.output_bytes = 64;
    req.body = payload;
    req.body_bytes = 128;
    tb.serving().invoke(tb.cluster().node(0).net_id(), "fn-matmul",
                        std::move(req), [&](net::HttpResponse resp) {
                          ++answered;
                          if (resp.status == 200) {
                            ++r.r200;
                          } else if (resp.status == 429) {
                            ++r.r429;
                          } else {
                            ++r.other;
                          }
                        });
  }
  const double deadline = t0 + 3600;
  while (answered < static_cast<std::uint64_t>(burst) &&
         tb.sim().has_pending_events() && tb.sim().now() < deadline) {
    tb.sim().step();
  }

  r.drain_s = tb.sim().now() - t0;
  r.ok = answered == static_cast<std::uint64_t>(burst);
  r.rejections = tb.serving().admission_rejections("fn-matmul");
  r.peak_queue = tb.serving().peak_backend_queue("fn-matmul");
  return r;
}

// ---- Sweep 5: catalog outages, metadata-tier resilience on/off --------

/// A matmul chain whose workflow-initial inputs are the SAME shared lfns
/// for every workflow and every wave ("catshared.in0..inN"), so each new
/// wave re-resolves keys the previous wave already looked up — the access
/// pattern that gives a TTL cache and stale-while-revalidate something to
/// do. Intermediate and final files stay wave-unique.
pegasus::AbstractWorkflow make_shared_input_chain(const std::string& name,
                                                  int n_tasks,
                                                  double matrix_bytes) {
  pegasus::AbstractWorkflow wf(name);
  for (int i = 0; i <= n_tasks; ++i) {
    wf.declare_file("catshared.in" + std::to_string(i), matrix_bytes);
  }
  for (int i = 0; i < n_tasks; ++i) {
    const std::string out = name + ".m" + std::to_string(i + 1);
    wf.declare_file(out, matrix_bytes);
    pegasus::AbstractJob job;
    job.id = name + ".t" + std::to_string(i);
    job.transformation = "matmul";
    const std::string prev =
        i == 0 ? "catshared.in0" : name + ".m" + std::to_string(i);
    job.uses = {{prev, pegasus::LinkType::kInput},
                {"catshared.in" + std::to_string(i + 1),
                 pegasus::LinkType::kInput},
                {out, pegasus::LinkType::kOutput}};
    wf.add_job(std::move(job));
  }
  return wf;
}

struct CatalogResult {
  double makespan_s = 0;
  bool ok = false;
  std::uint64_t outages = 0;
  std::uint64_t lookups = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t stale = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t service_calls = 0;
  std::uint64_t retries = 0;
  std::uint64_t breaker_opens = 0;
  std::uint64_t errors = 0;
};

/// Sequential waves of shared-input chains resolved through the catalog
/// tier while the injector blacks the service out. Both arms share the
/// service (50 ms ops, 8 connections), the retry envelope (6 attempts,
/// ~15 s worst case — longer than one 10 s outage, so a naive lookup can
/// always grind through) and the DAG retry budget; they differ ONLY in
/// cache + breaker + stale-while-revalidate. The resilient arm answers
/// repeat keys locally (fresh hits) or degrades to stale reads a beat
/// after the breaker trips; the naive arm pays the full backoff ladder
/// for every lookup an outage window catches.
CatalogResult run_catalog_point(double intensity, bool resilient, int waves,
                                int wave_width, int tasks_each) {
  TestbedOptions opts;
  opts.dag_retries = 6;
  opts.catalog.enabled = true;
  opts.catalog.service.service_time_s = 0.05;
  opts.catalog.service.max_connections = 8;
  catalog::CatalogClientConfig& cc = opts.catalog.client;
  cc.retry = fault::RetryPolicy{6, 0.5, 8.0, 2.0, 0.5};
  // TTL shorter than a wave: every wave revalidates, so outage windows
  // exercise the stale path instead of hiding behind fresh entries.
  cc.ttl_s = 6;
  cc.breaker_failures = 3;
  cc.breaker_open_s = 12;
  cc.cache_enabled = resilient;
  cc.breaker_enabled = resilient;
  cc.stale_while_revalidate = resilient;
  PaperTestbed tb(42, opts);

  fault::FaultConfig cfg;
  cfg.horizon_s = 2400;
  if (intensity > 0) {
    cfg.catalog_outage_mean_s = 45 / intensity;
    cfg.catalog_outage_duration_s = 10;
  }
  fault::FaultInjector injector(tb, cfg, /*seed=*/0xCA7A9065ull);
  injector.arm();

  const double t0 = tb.sim().now();
  bool all_ok = true;
  for (int wave = 0; wave < waves; ++wave) {
    std::vector<pegasus::AbstractWorkflow> wfs;
    wfs.reserve(static_cast<std::size_t>(wave_width));
    for (int w = 0; w < wave_width; ++w) {
      wfs.push_back(make_shared_input_chain(
          "catv" + std::to_string(wave) + ".wf" + std::to_string(w),
          tasks_each, tb.calibration().matrix_bytes));
    }
    const auto res = tb.run_workflows(wfs, {});
    all_ok = all_ok && res.all_succeeded;
  }

  CatalogResult r;
  r.makespan_s = tb.sim().now() - t0;
  r.ok = all_ok;
  r.outages = injector.catalog_outages();
  const catalog::CatalogClient& client = *tb.catalog_client();
  r.lookups = client.lookups();
  r.cache_hits = client.cache_hits();
  r.stale = client.stale_served();
  r.coalesced = client.coalesced();
  r.service_calls = client.service_calls();
  r.retries = client.retries();
  r.breaker_opens = client.breaker_opens();
  r.errors = client.errors();
  return r;
}

struct StampedeResult {
  double drain_s = 0;
  bool ok = false;
  std::uint64_t lookups = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t service_calls = 0;
};

/// Cold-start stampede: `clients` simultaneous lookups of ONE hot key
/// against an empty cache. Single-flight coalescing folds them into one
/// wire fetch whose reply fans out to every waiter; the naive arm sends
/// them all.
StampedeResult run_stampede_point(bool coalescing, int clients) {
  TestbedOptions opts;
  opts.catalog.enabled = true;
  // Slow-ish service with few slots so the stampede's cost is visible:
  // the naive arm serializes clients/connections batches of 50 ms ops.
  opts.catalog.service.service_time_s = 0.05;
  opts.catalog.service.max_connections = 4;
  opts.catalog.client.cache_enabled = coalescing;
  PaperTestbed tb(42, opts);
  tb.replicas().register_replica("catshared.dataset",
                                 tb.condor().submit_staging());

  int done = 0;
  bool all_ok = true;
  for (int i = 0; i < clients; ++i) {
    tb.catalog_client()->lookup(
        "catshared.dataset", [&done, &all_ok](bool ok, storage::Volume*) {
          ++done;
          all_ok = all_ok && ok;
        });
  }
  const double t0 = tb.sim().now();
  const double deadline = t0 + 600;
  while (done < clients && tb.sim().has_pending_events() &&
         tb.sim().now() < deadline) {
    tb.sim().step();
  }

  StampedeResult r;
  r.drain_s = tb.sim().now() - t0;
  r.ok = all_ok && done == clients;
  const catalog::CatalogClient& client = *tb.catalog_client();
  r.lookups = client.lookups();
  r.coalesced = client.coalesced();
  r.service_calls = client.service_calls();
  return r;
}

}  // namespace

int main() {
  const bool smoke = smoke_mode();

  sf::bench::banner(
      "Chaos sweep: makespan vs fault intensity",
      "fig6-style mix under crashes / outages / kills / partitions plus "
      "correlated rack incidents, deploy storms and gray failures "
      "(CPU stragglers, flaky NICs) on a 2-rack layout");

  std::vector<Level> levels{{"none", 0.0},
                            {"light", 1.0},
                            {"moderate", 2.0},
                            {"heavy", 4.0},
                            {"extreme", 8.0}};
  int n_workflows = 10;
  int tasks_each = 10;
  if (smoke) {
    levels = {{"none", 0.0}, {"moderate", 2.0}};
    n_workflows = 4;
    tasks_each = 6;
  }

  sf::sim::SweepRunner runner;
  const std::vector<PointResult> results = runner.run(
      levels.size(), [&levels, n_workflows, tasks_each](std::size_t i) {
        return run_point(levels[i].intensity, n_workflows, tasks_each);
      });

  sf::metrics::Table table(
      {"level", "crashes", "pod_kills", "outages", "degrades", "partitions",
       "rack_cuts", "cpu_slow", "flaky", "condor_aborts", "pods_replaced",
       "makespan_s", "ok"},
      2);
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const PointResult& r = results[i];
    table.add_row({std::string(levels[i].label),
                   static_cast<std::int64_t>(r.crashes),
                   static_cast<std::int64_t>(r.pod_kills),
                   static_cast<std::int64_t>(r.outages),
                   static_cast<std::int64_t>(r.degrades),
                   static_cast<std::int64_t>(r.partitions),
                   static_cast<std::int64_t>(r.rack_cuts),
                   static_cast<std::int64_t>(r.cpu_slows),
                   static_cast<std::int64_t>(r.flaky),
                   static_cast<std::int64_t>(r.condor_aborts),
                   static_cast<std::int64_t>(r.pods_replaced), r.makespan_s,
                   std::string(r.ok ? "yes" : "NO")});
  }
  table.print_text(std::cout);
  std::cout << "\nall points recover within the retry budget; makespan "
               "grows with fault intensity\n";

  sf::bench::banner(
      "Autoscale chaos: scale-from-zero bursts racing eviction",
      "KPA bursts (concurrency-1 pods, deferred pull) while the injector "
      "kills pods, trips racks and cuts the fabric; queue-proxy 504s + "
      "router and driver retries recover every request");

  std::vector<Level> auto_levels{
      {"calm", 0.0}, {"stormy", 1.0}, {"violent", 2.0}};
  int bursts = 4;
  int burst_size = 24;
  if (smoke) {
    auto_levels = {{"calm", 0.0}, {"stormy", 1.0}};
    bursts = 2;
    burst_size = 8;
  }

  const std::vector<AutoscaleResult> auto_results = runner.run(
      auto_levels.size(), [&auto_levels, bursts, burst_size](std::size_t i) {
        return run_autoscale_point(auto_levels[i].intensity, bursts,
                                   burst_size);
      });

  sf::metrics::Table auto_table(
      {"level", "crashes", "pod_kills", "rack_cuts", "cold_starts",
       "route_retries", "driver_retries", "pods_replaced", "makespan_s",
       "ok"},
      2);
  for (std::size_t i = 0; i < auto_levels.size(); ++i) {
    const AutoscaleResult& r = auto_results[i];
    auto_table.add_row({std::string(auto_levels[i].label),
                        static_cast<std::int64_t>(r.crashes),
                        static_cast<std::int64_t>(r.pod_kills),
                        static_cast<std::int64_t>(r.rack_cuts),
                        static_cast<std::int64_t>(r.cold_starts),
                        static_cast<std::int64_t>(r.route_retries),
                        static_cast<std::int64_t>(r.driver_retries),
                        static_cast<std::int64_t>(r.pods_replaced),
                        r.makespan_s,
                        std::string(r.ok ? "yes" : "NO")});
  }
  auto_table.print_text(std::cout);
  std::cout << "\nevery burst request completes: the autoscaler re-adds "
               "capacity faster than the injector evicts it\n";

  sf::bench::banner(
      "Gray chaos: outlier ejection ablation",
      "fixed 3-pod fleet under heartbeat-invisible failures (CPU "
      "stragglers, flaky NICs, one-way partitions); both arms share every "
      "deadline and retry knob and differ only in outlier ejection");

  std::vector<Level> gray_levels{
      {"light", 1.0}, {"moderate", 2.0}, {"heavy", 4.0}};
  // Keep offered load below fleet capacity (3 concurrency-1 pods): the
  // ablation measures routing quality, not queueing at saturation —
  // saturated fleets make every exclusion a capacity loss and bury the
  // steering signal.
  int gray_workflows = 4;
  int gray_tasks = 12;
  if (smoke) {
    gray_levels = {{"moderate", 2.0}};
    gray_workflows = 3;
    gray_tasks = 5;
  }

  const std::size_t gray_points = gray_levels.size() * 2;
  const std::vector<GrayResult> gray_results = runner.run(
      gray_points, [&gray_levels, gray_workflows, gray_tasks](std::size_t i) {
        const bool ejection = (i % 2) == 1;
        return run_gray_point(gray_levels[i / 2].intensity, ejection,
                              gray_workflows, gray_tasks);
      });

  sf::metrics::Table gray_table(
      {"level", "ejection", "cpu_slow", "flaky", "oneway", "ejections",
       "readmits", "route_retries", "unresponsive", "makespan_s", "ok"},
      2);
  for (std::size_t i = 0; i < gray_points; ++i) {
    const GrayResult& r = gray_results[i];
    gray_table.add_row({std::string(gray_levels[i / 2].label),
                        std::string((i % 2) == 1 ? "on" : "off"),
                        static_cast<std::int64_t>(r.cpu_slows),
                        static_cast<std::int64_t>(r.flaky),
                        static_cast<std::int64_t>(r.oneway),
                        static_cast<std::int64_t>(r.ejections),
                        static_cast<std::int64_t>(r.readmissions),
                        static_cast<std::int64_t>(r.route_retries),
                        static_cast<std::int64_t>(r.unresponsive),
                        r.makespan_s, std::string(r.ok ? "yes" : "NO")});
  }
  gray_table.print_text(std::cout);
  std::cout << "\nejection-on exiles the straggler after a short burst of "
               "gateway failures, so only probation probes pay deadlines "
               "and the makespan gap closes\n";

  sf::bench::banner(
      "Admission control: synchronized burst, token bucket on/off",
      "one burst against the fixed 3-pod concurrency-1 fleet; the bucket "
      "sheds the excess with fast 429s and bounds backend queues");

  int adm_burst = 48;
  if (smoke) adm_burst = 16;

  const std::vector<AdmissionResult> adm_results =
      runner.run(2, [adm_burst](std::size_t i) {
        return run_admission_point(/*admission=*/i == 1, adm_burst);
      });

  sf::metrics::Table adm_table({"admission", "burst", "r200", "r429", "other",
                                "rejections", "peak_queue", "drain_s", "ok"},
                               2);
  for (std::size_t i = 0; i < 2; ++i) {
    const AdmissionResult& r = adm_results[i];
    adm_table.add_row({std::string(i == 1 ? "on" : "off"),
                       static_cast<std::int64_t>(adm_burst),
                       static_cast<std::int64_t>(r.r200),
                       static_cast<std::int64_t>(r.r429),
                       static_cast<std::int64_t>(r.other),
                       static_cast<std::int64_t>(r.rejections),
                       static_cast<std::int64_t>(r.peak_queue), r.drain_s,
                       std::string(r.ok ? "yes" : "NO")});
  }
  adm_table.print_text(std::cout);
  std::cout << "\nwith the bucket on, backend queues stay near the bucket "
               "burst while the excess fails fast instead of waiting\n";

  sf::bench::banner(
      "Catalog ablation: metadata-tier outages, resilience on/off",
      "sequential waves of shared-input chains resolve stage-in through "
      "the catalog service while the injector blacks it out; both arms "
      "share the retry envelope and differ only in TTL cache + breaker + "
      "stale-while-revalidate");

  std::vector<Level> cat_levels{
      {"none", 0.0}, {"light", 1.0}, {"moderate", 2.0}, {"heavy", 4.0}};
  int cat_waves = 3;
  int cat_width = 4;
  int cat_tasks = 6;
  if (smoke) {
    cat_levels = {{"none", 0.0}, {"moderate", 2.0}};
    cat_waves = 2;
    cat_width = 2;
    cat_tasks = 4;
  }

  const std::size_t cat_points = cat_levels.size() * 2;
  const std::vector<CatalogResult> cat_results = runner.run(
      cat_points, [&cat_levels, cat_waves, cat_width, cat_tasks](std::size_t i) {
        const bool resilient = (i % 2) == 1;
        return run_catalog_point(cat_levels[i / 2].intensity, resilient,
                                 cat_waves, cat_width, cat_tasks);
      });

  sf::metrics::Table cat_table(
      {"level", "resilience", "outages", "lookups", "cache_hits", "stale",
       "coalesced", "svc_calls", "retries", "breaker_opens", "errors",
       "makespan_s", "ok"},
      2);
  for (std::size_t i = 0; i < cat_points; ++i) {
    const CatalogResult& r = cat_results[i];
    cat_table.add_row({std::string(cat_levels[i / 2].label),
                       std::string((i % 2) == 1 ? "on" : "off"),
                       static_cast<std::int64_t>(r.outages),
                       static_cast<std::int64_t>(r.lookups),
                       static_cast<std::int64_t>(r.cache_hits),
                       static_cast<std::int64_t>(r.stale),
                       static_cast<std::int64_t>(r.coalesced),
                       static_cast<std::int64_t>(r.service_calls),
                       static_cast<std::int64_t>(r.retries),
                       static_cast<std::int64_t>(r.breaker_opens),
                       static_cast<std::int64_t>(r.errors), r.makespan_s,
                       std::string(r.ok ? "yes" : "NO")});
  }
  cat_table.print_text(std::cout);
  std::cout << "\nresilience-on answers repeat keys from the cache and "
               "degrades to stale reads once the breaker trips; the naive "
               "arm pays the full backoff ladder inside every outage\n";

  int stampede_clients = 32;
  if (smoke) stampede_clients = 16;

  const std::vector<StampedeResult> stampede_results =
      runner.run(2, [stampede_clients](std::size_t i) {
        return run_stampede_point(/*coalescing=*/i == 1, stampede_clients);
      });

  sf::metrics::Table stampede_table(
      {"coalescing", "clients", "lookups", "coalesced", "svc_calls",
       "drain_s", "ok"},
      2);
  for (std::size_t i = 0; i < 2; ++i) {
    const StampedeResult& r = stampede_results[i];
    stampede_table.add_row({std::string(i == 1 ? "on" : "off"),
                            static_cast<std::int64_t>(stampede_clients),
                            static_cast<std::int64_t>(r.lookups),
                            static_cast<std::int64_t>(r.coalesced),
                            static_cast<std::int64_t>(r.service_calls),
                            r.drain_s, std::string(r.ok ? "yes" : "NO")});
  }
  std::cout << "\ncold-start stampede: one hot key, all clients at once\n";
  stampede_table.print_text(std::cout);
  std::cout << "\nsingle-flight folds the stampede into one wire fetch "
               "whose reply fans out to every waiter\n";
  return 0;
}
