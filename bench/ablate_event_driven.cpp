// Ablation — event-driven ("dynamic") orchestration vs the WMS path.
//
// The same workflow executed two ways on the same testbed:
//  (a) through Pegasus + DAGMan + HTCondor with serverless tasks (the
//      paper's integration, Figure 6's green configuration), and
//  (b) fully event-driven: tasks chained via Knative Eventing, children
//      released by an orchestrator function the moment a `task.done`
//      CloudEvent lands — no log scans, no matchmaking.
//
// The gap is the WMS's control-plane latency (POST scripts, DAGMan scan,
// condor dispatch), which the serverless-native path replaces with one
// event round-trip per hop. This is the quantitative case for the
// "dynamic HPC workflows" vision in the paper's title. (Caveat: the
// event path passes data by value and skips WMS staging/retry features;
// see core/event_driven.hpp.)

#include <iostream>

#include "bench_util.hpp"
#include "core/event_driven.hpp"
#include "core/testbed.hpp"

namespace {

using namespace sf;
using namespace sf::core;

double wms_path(int n_tasks) {
  PaperTestbed tb(42);
  tb.register_matmul_function();
  auto wf = workload::make_matmul_chain("w", n_tasks,
                                        tb.calibration().matrix_bytes);
  std::map<std::string, pegasus::JobMode> modes;
  for (const auto& j : wf.jobs()) modes[j.id] = pegasus::JobMode::kServerless;
  const auto result = tb.run_workflows({wf}, modes);
  if (!result.all_succeeded) std::cerr << "wms run failed\n";
  return result.slowest;
}

double event_path(int n_tasks) {
  PaperTestbed tb(42);
  knative::Broker broker(tb.serving(), tb.cluster().node(0));
  EventDrivenRunner runner(tb.serving(), broker, tb.calibration());
  runner.setup(ProvisioningPolicy::prestaged(3));
  tb.sim().run_until(tb.sim().now() + 30.0);  // warm the functions

  auto wf = workload::make_matmul_chain("e", n_tasks,
                                        tb.calibration().matrix_bytes);
  double makespan = -1;
  bool finished = false;
  runner.run(wf, tb.transformations(), [&](bool ok, double m) {
    if (!ok) std::cerr << "event-driven run failed\n";
    makespan = m;
    finished = true;
  });
  while (!finished && tb.sim().has_pending_events()) tb.sim().step();
  return makespan;
}

}  // namespace

int main() {
  sf::bench::banner(
      "Ablation: event-driven orchestration vs Pegasus/DAGMan/HTCondor",
      "per-hop cost collapses from scan+negotiation+dispatch (~20 s) to "
      "one CloudEvent round-trip (~0.1 s)");

  sf::metrics::Table table({"chain_length", "wms_serverless_s",
                            "event_driven_s", "speedup"},
                           2);
  for (int n : {5, 10, 20}) {
    const double wms = wms_path(n);
    const double evt = event_path(n);
    table.add_row({static_cast<std::int64_t>(n), wms, evt, wms / evt});
  }
  table.print_text(std::cout);
  std::cout << "\nnote: the event path trades WMS staging/retry features "
               "for latency; see core/event_driven.hpp for scope\n";
  return 0;
}
