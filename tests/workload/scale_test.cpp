#include "workload/scale.hpp"

#include <gtest/gtest.h>

#include <any>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>

#include "container/image.hpp"
#include "container/registry.hpp"
#include "k8s/kube_cluster.hpp"
#include "knative/serving.hpp"
#include "sim/simulation.hpp"
#include "workload/open_loop.hpp"

namespace sf::workload {
namespace {

TEST(ScaledTopology, BuildsThousandNodeClusterWithRacks) {
  sim::Simulation sim;
  const auto topo = make_scaled_topology(sim, 1000, 32);
  EXPECT_EQ(topo.cluster->size(), 1000u);
  EXPECT_EQ(topo.workers.size(), 999u);
  EXPECT_EQ(topo.racks.node_count(), 1000u);
  EXPECT_EQ(topo.racks.rack_count(), 32u);
  EXPECT_EQ(topo.racks.rack_of(0), 0u);  // head node in rack 0
  // Workers are nodes 1..N-1 in order, sharing one flow network.
  EXPECT_EQ(topo.workers.front(), &topo.cluster->node(1));
  EXPECT_EQ(topo.workers.back(), &topo.cluster->node(999));
  // Every node landed in exactly one rack (dense block split).
  std::size_t members = 0;
  for (std::uint32_t r = 0; r < topo.racks.rack_count(); ++r) {
    members += topo.racks.nodes_in(r).size();
  }
  EXPECT_EQ(members, 1000u);
}

TEST(ScaledTopology, RejectsHeadlessCluster) {
  sim::Simulation sim;
  EXPECT_THROW(make_scaled_topology(sim, 1, 1), std::invalid_argument);
}

TEST(LayeredMatmuls, TenThousandTaskShape) {
  const auto wf = make_layered_matmuls("w", 100, 100, 490000);
  EXPECT_EQ(wf.jobs().size(), 10000u);
  // 2 fresh operands per layer-0 task.
  EXPECT_EQ(wf.initial_inputs().size(), 200u);
  // Final outputs: the last layer's products.
  EXPECT_EQ(wf.final_outputs().size(), 100u);
}

TEST(LayeredMatmuls, StencilDependenciesCrossChains) {
  const auto wf = make_layered_matmuls("w", 3, 4, 490000);
  // Layer 0 has no parents.
  EXPECT_TRUE(wf.parents_of("w.t0_0").empty());
  // Task (l, i) depends on (l-1, i) and (l-1, (i+1) % width).
  EXPECT_EQ(wf.parents_of("w.t1_1"),
            (std::vector<std::string>{"w.t0_1", "w.t0_2"}));
  // Wrap-around at the stencil edge.
  const auto edge = wf.parents_of("w.t2_3");
  ASSERT_EQ(edge.size(), 2u);
  EXPECT_TRUE((edge == std::vector<std::string>{"w.t1_3", "w.t1_0"}) ||
              (edge == std::vector<std::string>{"w.t1_0", "w.t1_3"}));
}

TEST(LayeredMatmuls, RejectsDegenerateShapes) {
  EXPECT_THROW(make_layered_matmuls("w", 0, 4, 1), std::invalid_argument);
  EXPECT_THROW(make_layered_matmuls("w", 4, 1, 1), std::invalid_argument);
}

/// Runs a small scaled serving scenario with the trace recorder on and
/// returns the full trace CSV plus the API server's watch counters.
std::tuple<std::string, std::uint64_t, std::uint64_t> traced_serving_run() {
  sim::Simulation sim;
  sim.trace().set_enabled(true);
  auto topo = make_scaled_topology(sim, 48, 4);
  cluster::Node& head = topo.cluster->node(0);
  container::Registry hub{head};
  const container::Image image = container::make_task_image("fn");
  hub.push(image);
  k8s::KubeCluster kube{*topo.cluster, hub, topo.workers};
  kube.seed_image_everywhere(image);
  knative::KnativeServing serving{kube, head};

  knative::KnServiceSpec spec;
  spec.name = "fn";
  spec.container.name = "fn";
  spec.container.image = "fn:latest";
  spec.container.memory_bytes = 512e6;
  spec.container.boot_s = 0.6;
  spec.container.cpu_limit = 1.0;
  spec.handler = [](const net::HttpRequest& req, knative::FunctionContext& ctx,
                    net::Responder respond) {
    const double work =
        req.body.has_value() ? std::any_cast<double>(req.body) : 0.01;
    ctx.exec(work, [respond = std::move(respond)](bool ok) mutable {
      net::HttpResponse resp;
      resp.status = ok ? 200 : 500;
      respond(std::move(resp));
    });
  };
  spec.annotations.min_scale = 2;
  spec.annotations.container_concurrency = 1;
  serving.create_service(std::move(spec));
  sim.run_until(30.0);

  OpenLoopConfig cfg;
  cfg.users = 8;
  cfg.rate_hz = 2.0;
  cfg.horizon_s = 30.0;
  cfg.max_requests = 200;
  cfg.services = {"fn"};
  cfg.work_s = 0.05;
  cfg.seed = 99;
  OpenLoopEngine engine(serving, head.net_id(), cfg);
  engine.start();
  while (!engine.quiesced() && sim.has_pending_events() && sim.now() < 600.0) {
    sim.step();
  }
  EXPECT_TRUE(engine.quiesced());

  std::ostringstream csv;
  sim.trace().write_csv(csv);
  return {csv.str(), kube.api().watch_batches_scheduled(),
          kube.api().watch_batches_delivered()};
}

// The observable event streams at scale — every trace record emitted by
// condor/k8s/knative/cluster plus the watch-batch counters — must be a
// pure function of the configuration. This is the tentpole refactors'
// conservation law: arena-pooled trace storage and node-sharded watch
// dispatch may change memory layout and lookup cost, never content.
TEST(ScaledStreams, TraceAndWatchStreamsReplayIdentically) {
  const auto [csv_a, sched_a, deliv_a] = traced_serving_run();
  const auto [csv_b, sched_b, deliv_b] = traced_serving_run();
  EXPECT_FALSE(csv_a.empty());
  // The hot request path deliberately records nothing; the trail is the
  // control plane standing up the service: binds, realizes, readiness.
  EXPECT_NE(csv_a.find("realize"), std::string::npos);
  EXPECT_NE(csv_a.find("bind"), std::string::npos);
  EXPECT_EQ(csv_a, csv_b);  // byte-identical trace records
  EXPECT_GT(sched_a, 0u);
  EXPECT_EQ(sched_a, sched_b);
  EXPECT_EQ(deliv_a, deliv_b);
  EXPECT_EQ(sched_a, deliv_a);  // every scheduled batch delivered
}

}  // namespace
}  // namespace sf::workload
