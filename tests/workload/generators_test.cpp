#include "workload/generators.hpp"

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "sim/simulation.hpp"

namespace sf::workload {
namespace {

TEST(Generators, ChainShapeMatchesFigure3) {
  const auto wf = make_matmul_chain("w", 10, 490000);
  EXPECT_EQ(wf.jobs().size(), 10u);
  // Sequential dependencies through the running product m_i.
  for (int i = 1; i < 10; ++i) {
    EXPECT_EQ(wf.parents_of("w.t" + std::to_string(i)),
              (std::vector<std::string>{"w.t" + std::to_string(i - 1)}));
  }
  // 1 seed matrix + 10 fresh inputs, one final product.
  EXPECT_EQ(wf.initial_inputs().size(), 11u);
  EXPECT_EQ(wf.final_outputs(), (std::vector<std::string>{"w.m10"}));
}

TEST(Generators, ParallelShapeMatchesFigure2) {
  const auto wf = make_parallel_matmuls("p", 8, 490000);
  EXPECT_EQ(wf.jobs().size(), 8u);
  for (const auto& job : wf.jobs()) {
    EXPECT_TRUE(wf.parents_of(job.id).empty());
  }
  EXPECT_EQ(wf.final_outputs().size(), 8u);
  EXPECT_EQ(wf.initial_inputs().size(), 16u);
}

TEST(Generators, DistinctNamesAvoidCollisions) {
  const auto a = make_matmul_chain("wf0", 3, 1);
  const auto b = make_matmul_chain("wf1", 3, 1);
  for (const auto& lfn : a.initial_inputs()) {
    EXPECT_FALSE(b.has_file(lfn));
  }
}

TEST(Generators, SeedInitialInputsPopulatesStagingAndCatalog) {
  sim::Simulation sim;
  auto cl = cluster::make_paper_testbed(sim);
  storage::Volume staging(cl->node(0), "staging");
  storage::ReplicaCatalog rc;
  const auto wf = make_matmul_chain("w", 4, 490000);
  seed_initial_inputs(wf, staging, rc);
  EXPECT_EQ(staging.file_count(), 5u);
  for (const auto& lfn : wf.initial_inputs()) {
    EXPECT_TRUE(rc.has(lfn));
    EXPECT_DOUBLE_EQ(staging.stat(lfn)->bytes, 490000);
  }
}

TEST(AssignModes, ExactCountsForPureMixes) {
  const auto wf = make_matmul_chain("w", 10, 1);
  sim::Rng rng(1);
  const auto modes = assign_modes({&wf}, {1, 0, 0}, rng);
  EXPECT_EQ(mode_histogram(modes)[pegasus::JobMode::kNative], 10);
  sim::Rng rng2(1);
  const auto serverless = assign_modes({&wf}, {0, 0, 1}, rng2);
  EXPECT_EQ(mode_histogram(serverless)[pegasus::JobMode::kServerless], 10);
}

TEST(AssignModes, HalfAndHalfSplitsEvenly) {
  const auto a = make_matmul_chain("a", 10, 1);
  const auto b = make_matmul_chain("b", 10, 1);
  sim::Rng rng(9);
  const auto modes = assign_modes({&a, &b}, {0.5, 0.0, 0.5}, rng);
  auto hist = mode_histogram(modes);
  EXPECT_EQ(hist[pegasus::JobMode::kNative], 10);
  EXPECT_EQ(hist[pegasus::JobMode::kServerless], 10);
  EXPECT_EQ(hist[pegasus::JobMode::kContainer], 0);
}

TEST(AssignModes, ThreeWayMixTotalsPreserved) {
  const auto wf = make_matmul_chain("w", 30, 1);
  sim::Rng rng(3);
  const auto modes =
      assign_modes({&wf}, {1.0 / 3, 1.0 / 3, 1.0 / 3}, rng);
  auto hist = mode_histogram(modes);
  EXPECT_EQ(hist[pegasus::JobMode::kNative] +
                hist[pegasus::JobMode::kContainer] +
                hist[pegasus::JobMode::kServerless],
            30);
  EXPECT_NEAR(hist[pegasus::JobMode::kNative], 10, 1);
  EXPECT_NEAR(hist[pegasus::JobMode::kContainer], 10, 1);
}

TEST(AssignModes, DeterministicUnderSeed) {
  const auto wf = make_matmul_chain("w", 20, 1);
  sim::Rng r1(7);
  sim::Rng r2(7);
  EXPECT_EQ(assign_modes({&wf}, {0.4, 0.3, 0.3}, r1),
            assign_modes({&wf}, {0.4, 0.3, 0.3}, r2));
}

TEST(AssignModes, DifferentSeedsDifferentPlacement) {
  const auto wf = make_matmul_chain("w", 20, 1);
  sim::Rng r1(7);
  sim::Rng r2(8);
  EXPECT_NE(assign_modes({&wf}, {0.5, 0.0, 0.5}, r1),
            assign_modes({&wf}, {0.5, 0.0, 0.5}, r2));
}

TEST(AssignModes, InvalidMixThrows) {
  const auto wf = make_matmul_chain("w", 5, 1);
  sim::Rng rng(1);
  EXPECT_THROW(assign_modes({&wf}, {0.9, 0.9, 0.9}, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace sf::workload
