#include <gtest/gtest.h>

#include "core/testbed.hpp"
#include "workload/generators.hpp"

namespace sf::workload {
namespace {

TEST(Montage, ShapeMatchesFiveLevels) {
  const auto wf = make_montage_like("m", 4, 490000);
  // 4 project + 3 diff + 1 fit + 4 background + 1 mosaic.
  EXPECT_EQ(wf.jobs().size(), 13u);
  EXPECT_EQ(wf.initial_inputs().size(), 4u);
  EXPECT_EQ(wf.final_outputs(), (std::vector<std::string>{"m.mosaic.out"}));
}

TEST(Montage, DependenciesFollowTheDag) {
  const auto wf = make_montage_like("m", 4, 490000);
  // diff_i depends on adjacent projections.
  EXPECT_EQ(wf.parents_of("m.mdiff0"),
            (std::vector<std::string>{"m.project0", "m.project1"}));
  // fit joins every diff.
  EXPECT_EQ(wf.parents_of("m.fit").size(), 3u);
  // background needs its projection plus the fit.
  const auto bg_parents = wf.parents_of("m.background2");
  EXPECT_EQ(bg_parents.size(), 2u);
  // mosaic joins every background tile.
  EXPECT_EQ(wf.parents_of("m.mosaic").size(), 4u);
}

TEST(Montage, RejectsDegenerateWidth) {
  EXPECT_THROW(make_montage_like("m", 1, 1), std::invalid_argument);
}

TEST(Montage, TransformationsDeriveFromBase) {
  pegasus::TransformationCatalog catalog;
  pegasus::Transformation base;
  base.name = "matmul";
  base.work_coreseconds = 1.0;
  add_montage_transformations(catalog, base);
  EXPECT_EQ(catalog.size(), 5u);
  EXPECT_DOUBLE_EQ(catalog.get("project").work_coreseconds, 1.0);
  EXPECT_DOUBLE_EQ(catalog.get("diff").work_coreseconds, 0.4);
  EXPECT_DOUBLE_EQ(catalog.get("mosaic").work_coreseconds, 1.5);
}

class MontageRunTest : public ::testing::Test {
 protected:
  core::PaperTestbed tb{42};

  void SetUp() override {
    add_montage_transformations(tb.transformations(),
                                tb.calibration().matmul_transformation());
  }
};

TEST_F(MontageRunTest, RunsNativeEndToEnd) {
  const auto wf = make_montage_like("m", 4,
                                    tb.calibration().matrix_bytes);
  const auto result = tb.run_workflows({wf}, {});
  EXPECT_TRUE(result.all_succeeded);
  EXPECT_TRUE(tb.condor().submit_staging().contains("m.mosaic.out"));
}

TEST_F(MontageRunTest, RunsFullyServerlessViaAutoRegistration) {
  const auto wf = make_montage_like("m", 4,
                                    tb.calibration().matrix_bytes);
  const auto modes = tb.integration().auto_register(
      wf, tb.transformations(), core::ProvisioningPolicy::prestaged(2));
  // Five distinct functions registered, one per transformation.
  for (const char* t : {"project", "diff", "fit", "background", "mosaic"}) {
    EXPECT_TRUE(tb.integration().is_registered(t));
  }
  const auto result = tb.run_workflows({wf}, modes);
  EXPECT_TRUE(result.all_succeeded);
  EXPECT_EQ(tb.integration().invocations(), 13u);
}

TEST_F(MontageRunTest, MixedModesAcrossLevels) {
  const auto wf = make_montage_like("m", 4,
                                    tb.calibration().matrix_bytes);
  tb.integration().auto_register(wf, tb.transformations(),
                                 core::ProvisioningPolicy::prestaged(2));
  // Wide levels serverless, joins native.
  std::map<std::string, pegasus::JobMode> modes;
  for (const auto& job : wf.jobs()) {
    const bool is_join = job.id == "m.fit" || job.id == "m.mosaic";
    modes[job.id] = is_join ? pegasus::JobMode::kNative
                            : pegasus::JobMode::kServerless;
  }
  const auto result = tb.run_workflows({wf}, modes);
  EXPECT_TRUE(result.all_succeeded);
  EXPECT_EQ(tb.integration().invocations(), 11u);
}

}  // namespace
}  // namespace sf::workload
