#include "workload/matrix.hpp"

#include <gtest/gtest.h>

namespace sf::workload {
namespace {

TEST(Matrix, IdentityMultiplication) {
  Matrix id(3, 3);
  for (std::size_t i = 0; i < 3; ++i) id.at(i, i) = 1;
  Matrix m(3, 3);
  int v = 1;
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) m.at(r, c) = v++;
  }
  EXPECT_EQ(id.multiply(m), m);
  EXPECT_EQ(m.multiply(id), m);
}

TEST(Matrix, KnownSmallProduct) {
  Matrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 3;
  a.at(1, 1) = 4;
  Matrix b(2, 2);
  b.at(0, 0) = 5;
  b.at(0, 1) = 6;
  b.at(1, 0) = 7;
  b.at(1, 1) = 8;
  const Matrix c = a.multiply(b);
  EXPECT_EQ(c.at(0, 0), 19);
  EXPECT_EQ(c.at(0, 1), 22);
  EXPECT_EQ(c.at(1, 0), 43);
  EXPECT_EQ(c.at(1, 1), 50);
}

TEST(Matrix, NonSquareShapes) {
  Matrix a(2, 3);
  Matrix b(3, 4);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 3; ++j) a.at(i, j) = 1;
  }
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 4; ++j) b.at(i, j) = 2;
  }
  const Matrix c = a.multiply(b);
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 4u);
  EXPECT_EQ(c.at(1, 3), 6);
}

TEST(Matrix, DimensionMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW(static_cast<void>(a.multiply(b)), std::invalid_argument);
}

TEST(Matrix, RandomEntriesInPaperRange) {
  sim::Rng rng(1);
  const Matrix m = Matrix::random(50, rng);
  for (std::size_t r = 0; r < 50; ++r) {
    for (std::size_t c = 0; c < 50; ++c) {
      EXPECT_GE(m.at(r, c), -100);
      EXPECT_LE(m.at(r, c), 100);
    }
  }
}

TEST(Matrix, PaperPayloadSize) {
  Matrix m(kPaperMatrixOrder, kPaperMatrixOrder);
  EXPECT_DOUBLE_EQ(m.bytes(), kPaperMatrixBytes);
  EXPECT_DOUBLE_EQ(kPaperMatrixBytes, 490000.0);
}

TEST(Matrix, BlockedMultiplyMatchesNaive) {
  sim::Rng rng(5);
  const Matrix a = Matrix::random(73, rng);  // deliberately non-block-size
  const Matrix b = Matrix::random(73, rng);
  const Matrix fast = a.multiply(b);
  // Naive reference.
  Matrix ref(73, 73);
  for (std::size_t i = 0; i < 73; ++i) {
    for (std::size_t j = 0; j < 73; ++j) {
      std::int64_t acc = 0;
      for (std::size_t k = 0; k < 73; ++k) {
        acc += static_cast<std::int64_t>(a.at(i, k)) * b.at(k, j);
      }
      ref.at(i, j) = static_cast<std::int32_t>(acc);
    }
  }
  EXPECT_EQ(fast, ref);
}

TEST(Matrix, MeasureMatmulRunsAndIsPositive) {
  sim::Rng rng(2);
  const double secs = measure_matmul_seconds(64, rng);
  EXPECT_GT(secs, 0.0);
  EXPECT_LT(secs, 5.0);
}

}  // namespace
}  // namespace sf::workload
