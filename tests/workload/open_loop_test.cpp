#include "workload/open_loop.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "container/image.hpp"
#include "sim/simulation.hpp"

namespace sf::workload {
namespace {

/// Minimal serving stack: 4-node cluster, node0 = gateway/registry, one
/// warm "fn" service whose handler burns the request body's core-seconds
/// and echoes the payload.
struct ServingHarness {
  sim::Simulation sim;
  std::unique_ptr<cluster::Cluster> cl = cluster::make_paper_testbed(sim);
  container::Registry hub{cl->node(0)};
  k8s::KubeCluster kube{*cl, hub, {&cl->node(1), &cl->node(2), &cl->node(3)}};
  knative::KnativeServing serving{kube, cl->node(0)};

  explicit ServingHarness(int warm_pods = 2, int concurrency = 0) {
    hub.push(container::make_task_image("fn"));
    knative::KnServiceSpec s;
    s.name = "fn";
    s.container.name = "fn";
    s.container.image = "fn:latest";
    s.container.memory_bytes = 512e6;
    s.container.boot_s = 0.6;
    s.container.cpu_limit = 1.0;
    s.handler = [](const net::HttpRequest& req, knative::FunctionContext& ctx,
                   net::Responder respond) {
      const double work =
          req.body.has_value() ? std::any_cast<double>(req.body) : 0.01;
      ctx.exec(work, [respond = std::move(respond),
                      bytes = req.body_bytes](bool ok) mutable {
        net::HttpResponse resp;
        resp.status = ok ? 200 : 500;
        resp.body_bytes = bytes;
        respond(std::move(resp));
      });
    };
    s.annotations.min_scale = warm_pods;
    s.annotations.container_concurrency = concurrency;
    serving.create_service(std::move(s));
    sim.run_until(30.0);  // warm pods ready, autoscaler settled
  }

  [[nodiscard]] net::NodeId client() { return cl->node(0).net_id(); }
};

OpenLoopConfig small_config(std::uint64_t seed = 7) {
  OpenLoopConfig cfg;
  cfg.users = 4;
  cfg.rate_hz = 2.0;
  cfg.horizon_s = 20.0;
  cfg.services = {"fn"};
  cfg.work_s = 0.01;
  cfg.payload_bytes = 1000;
  cfg.seed = seed;
  cfg.record_requests = true;
  return cfg;
}

TEST(OpenLoopEngine, PoissonArrivalsAreSeedDeterministic) {
  std::vector<double> times[2];
  std::uint64_t fp[2] = {0, 0};
  for (int run = 0; run < 2; ++run) {
    ServingHarness h;
    OpenLoopEngine engine(h.serving, h.client(), small_config());
    engine.start();
    h.sim.run_until(h.sim.now() + 120.0);
    ASSERT_TRUE(engine.quiesced());
    for (const auto& a : engine.issued_log()) times[run].push_back(a.time);
    fp[run] = engine.fingerprint();
  }
  ASSERT_FALSE(times[0].empty());
  EXPECT_EQ(times[0], times[1]);
  EXPECT_EQ(fp[0], fp[1]);
}

TEST(OpenLoopEngine, ArrivalsIndependentOfServiceTime) {
  // The open-loop property: making the service 50x slower must not move a
  // single arrival — users fire on their own clocks, not on completions.
  std::vector<double> times[2];
  const double work[2] = {0.01, 0.5};
  for (int run = 0; run < 2; ++run) {
    ServingHarness h;
    OpenLoopConfig cfg = small_config();
    cfg.work_s = work[run];
    OpenLoopEngine engine(h.serving, h.client(), cfg);
    engine.start();
    h.sim.run_until(h.sim.now() + 300.0);
    EXPECT_TRUE(engine.quiesced());
    for (const auto& a : engine.issued_log()) times[run].push_back(a.time);
  }
  ASSERT_FALSE(times[0].empty());
  EXPECT_EQ(times[0], times[1]);
}

TEST(OpenLoopEngine, AllRequestsCompleteAgainstWarmService) {
  ServingHarness h;
  OpenLoopEngine engine(h.serving, h.client(), small_config());
  engine.start();
  h.sim.run_until(h.sim.now() + 120.0);
  const auto& s = engine.stats();
  EXPECT_TRUE(engine.quiesced());
  EXPECT_GT(s.issued, 0u);
  EXPECT_EQ(s.completed, s.issued);
  EXPECT_EQ(s.ok, s.issued);
  EXPECT_EQ(s.errors, 0u);
  EXPECT_GT(s.latency_max_s, 0.0);
  EXPECT_GE(s.latency_sum_s, s.latency_max_s);
  const auto latencies = engine.sorted_latencies();
  EXPECT_EQ(latencies.size(), s.completed);
  EXPECT_TRUE(std::is_sorted(latencies.begin(), latencies.end()));
}

TEST(OpenLoopEngine, PoissonRateMatchesConfiguredMean) {
  ServingHarness h;
  OpenLoopConfig cfg = small_config(11);
  cfg.users = 8;
  cfg.rate_hz = 4.0;
  cfg.horizon_s = 50.0;
  OpenLoopEngine engine(h.serving, h.client(), cfg);
  engine.start();
  h.sim.run_until(h.sim.now() + 400.0);
  // Expected arrivals: users * rate * horizon = 1600; Poisson sd ~40.
  const double expected = cfg.users * cfg.rate_hz * cfg.horizon_s;
  EXPECT_NEAR(static_cast<double>(engine.stats().issued), expected,
              5 * std::sqrt(expected));
}

TEST(OpenLoopEngine, MaxRequestsCapsTotalLoad) {
  ServingHarness h;
  OpenLoopConfig cfg = small_config();
  cfg.max_requests = 5;
  OpenLoopEngine engine(h.serving, h.client(), cfg);
  engine.start();
  h.sim.run_until(h.sim.now() + 120.0);
  EXPECT_EQ(engine.stats().issued, 5u);
  EXPECT_EQ(engine.stats().completed, 5u);
}

TEST(OpenLoopEngine, TraceReplayFiresAtListedTimes) {
  ServingHarness h;
  OpenLoopConfig cfg;
  cfg.record_requests = true;
  cfg.trace = {{0.5, 0, "fn"}, {1.25, 1, "fn"}, {1.25, 0, "fn"},
               {3.0, 2, "fn"}};
  OpenLoopEngine engine(h.serving, h.client(), cfg);
  const double t0 = h.sim.now();
  engine.start();
  h.sim.run_until(t0 + 60.0);
  ASSERT_TRUE(engine.quiesced());
  const auto& log = engine.issued_log();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_DOUBLE_EQ(log[0].time, t0 + 0.5);
  EXPECT_DOUBLE_EQ(log[1].time, t0 + 1.25);
  EXPECT_DOUBLE_EQ(log[2].time, t0 + 1.25);
  EXPECT_DOUBLE_EQ(log[3].time, t0 + 3.0);
  EXPECT_EQ(log[1].user, 1);
  EXPECT_EQ(log[2].user, 0);
  EXPECT_EQ(log[3].service, "fn");
}

TEST(OpenLoopEngine, RejectsDegenerateConfigs) {
  ServingHarness h;
  OpenLoopConfig cfg;  // no services, no trace
  EXPECT_THROW(OpenLoopEngine(h.serving, h.client(), cfg),
               std::invalid_argument);
  cfg.services = {"fn"};
  cfg.rate_hz = 0;
  EXPECT_THROW(OpenLoopEngine(h.serving, h.client(), cfg),
               std::invalid_argument);
  cfg.rate_hz = 1.0;
  cfg.users = 0;
  EXPECT_THROW(OpenLoopEngine(h.serving, h.client(), cfg),
               std::invalid_argument);
}

TEST(OpenLoopTrace, ParsesWellFormedInput) {
  std::istringstream in(
      "# arrival trace\n"
      "\n"
      "0.0 0 fn\n"
      "0.5 1 fn\n"
      "  2.5 0 other\n");
  const auto trace = load_arrival_trace(in);
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_DOUBLE_EQ(trace[0].time, 0.0);
  EXPECT_EQ(trace[1].user, 1);
  EXPECT_EQ(trace[2].service, "other");
}

TEST(OpenLoopTrace, RejectsMalformedInput) {
  std::istringstream bad_fields("0.0 zero fn\n");
  EXPECT_THROW(load_arrival_trace(bad_fields), std::invalid_argument);
  std::istringstream negative("-1.0 0 fn\n");
  EXPECT_THROW(load_arrival_trace(negative), std::invalid_argument);
  std::istringstream unsorted("2.0 0 fn\n1.0 0 fn\n");
  EXPECT_THROW(load_arrival_trace(unsorted), std::invalid_argument);
}

}  // namespace
}  // namespace sf::workload
