// Failure-injection tests across the full stack: the paper's own failure
// anecdote (concurrent invocation without HTCondor queueing crashed the
// VM), pod loss mid-workflow, and service teardown under live traffic.

#include <gtest/gtest.h>

#include "core/testbed.hpp"

namespace sf::core {
namespace {

/// §III-C: "attempting to run concurrent Knative tasks without
/// HTCondor's queuing ability caused the virtual machine to crash."
/// Model: each in-flight wrapper buffers its payload in memory on the
/// submit node. Unthrottled, a burst overcommits the node (OOM events);
/// DAGMan's max-jobs throttle keeps the footprint bounded.
class ThrottleTest : public ::testing::Test {
 protected:
  static constexpr double kWrapperFootprint = 4.0 * (1ull << 30);  // 4 GB

  /// Runs `n_tasks` parallel "wrapper" jobs that hold memory on the
  /// submit node while a (simulated) invocation is in flight.
  std::uint64_t run_burst(int n_tasks, int max_jobs) {
    PaperTestbed tb(42);
    cluster::Node& submit = tb.cluster().node(0);
    condor::DagMan dag(tb.condor(),
                       condor::DagConfig{1.0, max_jobs, 0.0});
    for (int i = 0; i < n_tasks; ++i) {
      condor::DagNode node;
      node.name = "w" + std::to_string(i);
      node.job.submit_volume = &tb.condor().submit_staging();
      node.job.executable = [&submit](condor::ExecContext& ctx,
                                      std::function<void(bool)> done) {
        // The invocation script buffers the matrices on the submit node.
        const bool got = submit.allocate_memory(kWrapperFootprint);
        ctx.sim->call_in(6.0, [&submit, got,
                               done = std::move(done)]() mutable {
          if (got) submit.release_memory(kWrapperFootprint);
          done(true);  // the task finishes; the "crash" is the OOM event
        });
      };
      dag.add_node(std::move(node));
    }
    bool finished = false;
    dag.run([&](bool) { finished = true; });
    while (!finished && tb.sim().has_pending_events()) tb.sim().step();
    EXPECT_TRUE(finished);
    return tb.cluster().node(0).oom_events();
  }
};

TEST_F(ThrottleTest, UnthrottledBurstOvercommitsSubmitNode) {
  // ~18 × 4 GB in flight vs 32 GB of RAM → OOM, the paper's crash.
  EXPECT_GT(run_burst(24, /*max_jobs=*/0), 0u);
}

TEST_F(ThrottleTest, DagmanThrottlePreventsTheCrash) {
  EXPECT_EQ(run_burst(24, /*max_jobs=*/6), 0u);
}

TEST(FailureInjection, PodLossMidWorkflowRecovers) {
  PaperTestbed tb(42);
  tb.register_matmul_function();
  auto wf = workload::make_matmul_chain("w", 6,
                                        tb.calibration().matrix_bytes);
  std::map<std::string, pegasus::JobMode> modes;
  for (const auto& j : wf.jobs()) modes[j.id] = pegasus::JobMode::kServerless;

  // Kill one warm pod shortly after the workflow starts; min-scale brings
  // a replacement and the router retries around the gap.
  tb.sim().call_in(30.0, [&tb] {
    const auto pods = tb.kube().api().list_pods();
    ASSERT_FALSE(pods.empty());
    tb.kube().api().delete_pod(pods.front()->name);
  });
  const auto result = tb.run_workflows({wf}, modes);
  EXPECT_TRUE(result.all_succeeded);
  // The replacement pod restored the warm fleet.
  EXPECT_EQ(tb.serving().ready_replicas("fn-matmul"), 3);
}

TEST(FailureInjection, ServiceDeletedMidRunFailsGracefully) {
  PaperTestbed tb(42);
  tb.register_matmul_function();
  auto wf = workload::make_matmul_chain("w", 6,
                                        tb.calibration().matrix_bytes);
  std::map<std::string, pegasus::JobMode> modes;
  for (const auto& j : wf.jobs()) modes[j.id] = pegasus::JobMode::kServerless;
  tb.sim().call_in(60.0, [&tb] { tb.serving().delete_service("fn-matmul"); });
  const auto result = tb.run_workflows({wf}, modes);
  // The workflow fails (invocations 404) but nothing hangs or crashes.
  EXPECT_FALSE(result.all_succeeded);
  EXPECT_GT(tb.integration().failures(), 0u);
}

TEST(FailureInjection, MissingContainerImageFailsOnlyContainerTasks) {
  PaperTestbed tb(42);
  // Remove the task image from the registry after planning would need it.
  pegasus::Transformation broken = tb.calibration().matmul_transformation();
  broken.name = "matmul-broken";
  broken.container_image = "ghost:1";
  tb.transformations().add(broken);

  pegasus::AbstractWorkflow wf("w");
  wf.declare_file("w.in", 1000);
  wf.declare_file("w.out", 1000);
  pegasus::AbstractJob job;
  job.id = "w.t0";
  job.transformation = "matmul-broken";
  job.uses = {{"w.in", pegasus::LinkType::kInput},
              {"w.out", pegasus::LinkType::kOutput}};
  wf.add_job(std::move(job));
  workload::seed_initial_inputs(wf, tb.condor().submit_staging(),
                                tb.replicas());
  pegasus::PlannerOptions opts;
  opts.default_mode = pegasus::JobMode::kContainer;
  opts.registry = &tb.registry();
  opts.docker = &tb.docker();
  pegasus::Planner planner(wf, tb.transformations(), tb.replicas(),
                           tb.condor(), opts);
  EXPECT_THROW(planner.plan(), std::invalid_argument);
}

TEST(FailureInjection, WorkerSaturationDelaysButCompletes) {
  PaperTestbed tb(42);
  // Saturate every worker with background load; native workflow slows
  // down but still completes (processor sharing never starves it).
  for (std::size_t i = 1; i < tb.cluster().size(); ++i) {
    for (int h = 0; h < 32; ++h) {
      tb.cluster().node(i).run_process(500.0, [] {}, 1.0);
    }
  }
  auto wf = workload::make_matmul_chain("w", 3,
                                        tb.calibration().matrix_bytes);
  const auto loaded = tb.run_workflows({wf}, {});
  EXPECT_TRUE(loaded.all_succeeded);

  PaperTestbed idle_tb(42);
  auto wf2 = workload::make_matmul_chain("w", 3,
                                         idle_tb.calibration().matrix_bytes);
  const auto idle = idle_tb.run_workflows({wf2}, {});
  EXPECT_TRUE(idle.all_succeeded);
  EXPECT_GT(loaded.slowest, idle.slowest);
}

TEST(FailureInjection, ColdRegistryPullDelaysFirstServerlessTask) {
  TestbedOptions opts;
  opts.prestage_images = false;
  opts.provisioning = ProvisioningPolicy::deferred();
  PaperTestbed tb(42, opts);
  tb.register_matmul_function();
  auto wf = workload::make_matmul_chain("w", 1,
                                        tb.calibration().matrix_bytes);
  std::map<std::string, pegasus::JobMode> modes{
      {"w.t0", pegasus::JobMode::kServerless}};
  const auto result = tb.run_workflows({wf}, modes);
  EXPECT_TRUE(result.all_succeeded);
  EXPECT_EQ(tb.serving().cold_start_requests("fn-matmul"), 1u);
}

}  // namespace
}  // namespace sf::core
