// Full-stack integration tests: determinism, scale-out beyond the paper's
// testbed, and cross-subsystem accounting invariants.

#include <gtest/gtest.h>

#include "core/testbed.hpp"

namespace sf::core {
namespace {

struct RunSignature {
  double slowest;
  std::vector<double> makespans;
  std::uint64_t invocations;
  std::uint64_t condor_completed;
  double network_bytes;

  friend bool operator==(const RunSignature&, const RunSignature&) = default;
};

RunSignature run_mixed(std::uint64_t seed) {
  PaperTestbed tb(seed);
  tb.register_matmul_function();
  const auto result = tb.run_concurrent_mix(4, 6, {0.4, 0.2, 0.4});
  return RunSignature{result.slowest, result.makespans,
                      tb.integration().invocations(),
                      tb.condor().completed_jobs(),
                      tb.cluster().network().total_bytes_delivered()};
}

TEST(EndToEnd, BitIdenticalUnderSameSeed) {
  EXPECT_EQ(run_mixed(99), run_mixed(99));
}

TEST(EndToEnd, DifferentSeedsChangePlacementNotCorrectness) {
  const auto a = run_mixed(1);
  const auto b = run_mixed(2);
  // Same task counts either way.
  EXPECT_EQ(a.condor_completed, b.condor_completed);
  // Placement (and hence timing details) differ.
  EXPECT_NE(a.makespans, b.makespans);
}

TEST(EndToEnd, EveryTaskBecomesExactlyOneCondorJobPlusStaging) {
  PaperTestbed tb(42);
  tb.register_matmul_function();
  const auto result = tb.run_concurrent_mix(3, 5, {0.4, 0.2, 0.4});
  EXPECT_TRUE(result.all_succeeded);
  // Per workflow: 5 compute + stage-in + stage-out.
  EXPECT_EQ(tb.condor().completed_jobs(), 3u * (5 + 2));
  EXPECT_EQ(tb.condor().failed_jobs(), 0u);
}

TEST(EndToEnd, ServerlessInvocationCountMatchesTaskCount) {
  PaperTestbed tb(42);
  tb.register_matmul_function();
  const auto result = tb.run_concurrent_mix(4, 5, {0.5, 0.0, 0.5});
  EXPECT_TRUE(result.all_succeeded);
  EXPECT_EQ(tb.integration().invocations(), 10u);  // 20 tasks × 0.5
  EXPECT_EQ(tb.integration().failures(), 0u);
  EXPECT_EQ(tb.serving().requests_routed("fn-matmul"), 10u);
}

TEST(EndToEnd, LargerClusterShortensContainerWorkflows) {
  // Doubling the workers relieves the parallel-task bottleneck.
  TestbedOptions small_opts;
  small_opts.node_count = 4;
  PaperTestbed small(42, small_opts);
  auto wf = workload::make_parallel_matmuls(
      "p", 48, small.calibration().matrix_bytes);
  std::map<std::string, pegasus::JobMode> modes;
  for (const auto& j : wf.jobs()) modes[j.id] = pegasus::JobMode::kNative;
  const auto small_run = small.run_workflows({wf}, modes);

  TestbedOptions big_opts;
  big_opts.node_count = 8;
  PaperTestbed big(42, big_opts);
  auto wf2 = workload::make_parallel_matmuls(
      "p", 48, big.calibration().matrix_bytes);
  const auto big_run = big.run_workflows({wf2}, modes);
  EXPECT_TRUE(small_run.all_succeeded);
  EXPECT_TRUE(big_run.all_succeeded);
  EXPECT_LT(big_run.slowest, small_run.slowest);
}

TEST(EndToEnd, MemoryFullyReclaimedAfterMixedRun) {
  PaperTestbed tb(42);
  tb.register_matmul_function(ProvisioningPolicy::deferred());
  const auto result = tb.run_concurrent_mix(2, 4, {0.25, 0.25, 0.5});
  EXPECT_TRUE(result.all_succeeded);
  // Let knative scale back to zero and claims expire.
  tb.sim().run_until(tb.sim().now() + 700.0);
  for (std::size_t i = 1; i < tb.cluster().size(); ++i) {
    EXPECT_DOUBLE_EQ(tb.cluster().node(i).memory_used(), 0.0)
        << "leak on node " << i;
  }
}

TEST(EndToEnd, TraceCapturesWholePipeline) {
  PaperTestbed tb(42);
  tb.sim().trace().set_enabled(true);
  tb.register_matmul_function();
  const auto result = tb.run_concurrent_mix(2, 3, {0.5, 0.0, 0.5});
  EXPECT_TRUE(result.all_succeeded);
  const auto& trace = tb.sim().trace();
  EXPECT_GT(trace.count("condor", "submit"), 0u);
  EXPECT_GT(trace.count("condor", "job_complete"), 0u);
  EXPECT_GT(trace.count("k8s", "bind"), 0u);
  EXPECT_GT(trace.count("kubelet", "realize"), 0u);
}

}  // namespace
}  // namespace sf::core
