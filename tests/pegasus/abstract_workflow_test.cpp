#include "pegasus/abstract_workflow.hpp"

#include <gtest/gtest.h>

namespace sf::pegasus {
namespace {

/// Builds the paper's Figure 3 workflow: a chain of n matmul tasks where
/// task i consumes the previous result plus a fresh input matrix.
AbstractWorkflow chain_workflow(int n) {
  AbstractWorkflow wf("chain");
  wf.declare_file("m0.dat", 490000);
  for (int i = 0; i < n; ++i) {
    wf.declare_file("b" + std::to_string(i) + ".dat", 490000);
    wf.declare_file("m" + std::to_string(i + 1) + ".dat", 490000);
    AbstractJob job;
    job.id = "t" + std::to_string(i);
    job.transformation = "matmul";
    job.uses = {{"m" + std::to_string(i) + ".dat", LinkType::kInput},
                {"b" + std::to_string(i) + ".dat", LinkType::kInput},
                {"m" + std::to_string(i + 1) + ".dat", LinkType::kOutput}};
    wf.add_job(std::move(job));
  }
  return wf;
}

TEST(AbstractWorkflow, JobUsesSplitByDirection) {
  const auto wf = chain_workflow(2);
  const auto& j = wf.job("t0");
  EXPECT_EQ(j.inputs(), (std::vector<std::string>{"m0.dat", "b0.dat"}));
  EXPECT_EQ(j.outputs(), (std::vector<std::string>{"m1.dat"}));
}

TEST(AbstractWorkflow, ProducerTracking) {
  const auto wf = chain_workflow(2);
  EXPECT_EQ(wf.producer_of("m1.dat"), "t0");
  EXPECT_EQ(wf.producer_of("m0.dat"), "");
}

TEST(AbstractWorkflow, DependenciesInferredFromFiles) {
  const auto wf = chain_workflow(3);
  EXPECT_TRUE(wf.parents_of("t0").empty());
  EXPECT_EQ(wf.parents_of("t1"), (std::vector<std::string>{"t0"}));
  EXPECT_EQ(wf.parents_of("t2"), (std::vector<std::string>{"t1"}));
}

TEST(AbstractWorkflow, InitialInputsAndFinalOutputs) {
  const auto wf = chain_workflow(2);
  const auto initial = wf.initial_inputs();
  EXPECT_EQ(initial.size(), 3u);  // m0 + b0 + b1
  EXPECT_EQ(wf.final_outputs(), (std::vector<std::string>{"m2.dat"}));
}

TEST(AbstractWorkflow, FileSizesDeclared) {
  const auto wf = chain_workflow(1);
  EXPECT_DOUBLE_EQ(wf.file_bytes("m0.dat"), 490000);
  EXPECT_THROW(static_cast<void>(wf.file_bytes("nope")), std::out_of_range);
  EXPECT_TRUE(wf.has_file("m0.dat"));
  EXPECT_FALSE(wf.has_file("nope"));
}

TEST(AbstractWorkflow, DuplicateJobRejected) {
  auto wf = chain_workflow(1);
  AbstractJob dup;
  dup.id = "t0";
  dup.transformation = "matmul";
  EXPECT_THROW(wf.add_job(std::move(dup)), std::invalid_argument);
}

TEST(AbstractWorkflow, UndeclaredFileRejected) {
  AbstractWorkflow wf("w");
  AbstractJob j;
  j.id = "a";
  j.transformation = "matmul";
  j.uses = {{"ghost", LinkType::kInput}};
  EXPECT_THROW(wf.add_job(std::move(j)), std::invalid_argument);
}

TEST(AbstractWorkflow, DoubleProducerRejected) {
  AbstractWorkflow wf("w");
  wf.declare_file("x", 1);
  AbstractJob a;
  a.id = "a";
  a.transformation = "t";
  a.uses = {{"x", LinkType::kOutput}};
  wf.add_job(std::move(a));
  AbstractJob b;
  b.id = "b";
  b.transformation = "t";
  b.uses = {{"x", LinkType::kOutput}};
  EXPECT_THROW(wf.add_job(std::move(b)), std::invalid_argument);
}

TEST(AbstractWorkflow, UnknownJobLookupThrows) {
  const auto wf = chain_workflow(1);
  EXPECT_THROW(static_cast<void>(wf.job("ghost")), std::out_of_range);
}

TEST(AbstractWorkflow, FanoutParents) {
  AbstractWorkflow wf("fan");
  wf.declare_file("in", 1);
  wf.declare_file("a.out", 1);
  wf.declare_file("b.out", 1);
  wf.declare_file("joined", 1);
  for (const std::string id : {"a", "b"}) {
    AbstractJob j;
    j.id = id;
    j.transformation = "t";
    j.uses = {{"in", LinkType::kInput}, {id + ".out", LinkType::kOutput}};
    wf.add_job(std::move(j));
  }
  AbstractJob join;
  join.id = "join";
  join.transformation = "t";
  join.uses = {{"a.out", LinkType::kInput},
               {"b.out", LinkType::kInput},
               {"joined", LinkType::kOutput}};
  wf.add_job(std::move(join));
  EXPECT_EQ(wf.parents_of("join"), (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace sf::pegasus
