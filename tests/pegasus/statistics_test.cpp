#include "pegasus/statistics.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "pegasus/planner.hpp"
#include "sim/simulation.hpp"

namespace sf::pegasus {
namespace {

class StatisticsTest : public ::testing::Test {
 protected:
  sim::Simulation sim;
  std::unique_ptr<cluster::Cluster> cl = cluster::make_paper_testbed(sim);
  condor::CondorPool pool{*cl, cl->node(0),
                          {&cl->node(1), &cl->node(2), &cl->node(3)}};
  TransformationCatalog tc;
  storage::ReplicaCatalog rc;
  std::vector<std::string> names;

  void SetUp() override {
    Transformation matmul;
    matmul.name = "matmul";
    matmul.work_coreseconds = 0.4;
    tc.add(matmul);
  }

  condor::DagMan& run_chain(int n) {
    AbstractWorkflow wf("wf");
    wf.declare_file("wf.m0", 490000);
    pool.submit_staging().put_instant({"wf.m0", 490000});
    rc.register_replica("wf.m0", pool.submit_staging());
    for (int i = 0; i < n; ++i) {
      const std::string b = "wf.b" + std::to_string(i);
      const std::string out = "wf.m" + std::to_string(i + 1);
      wf.declare_file(b, 490000);
      wf.declare_file(out, 490000);
      pool.submit_staging().put_instant({b, 490000});
      rc.register_replica(b, pool.submit_staging());
      AbstractJob job;
      job.id = "wf.t" + std::to_string(i);
      job.transformation = "matmul";
      job.uses = {{"wf.m" + std::to_string(i), LinkType::kInput},
                  {b, LinkType::kInput},
                  {out, LinkType::kOutput}};
      wf.add_job(std::move(job));
    }
    Planner planner(wf, tc, rc, pool, PlannerOptions{});
    dag_ = std::make_unique<condor::DagMan>(pool);
    const Plan plan = planner.plan();
    for (const auto& node : plan.nodes) names.push_back(node.name);
    plan.load_into(*dag_);
    dag_->run([](bool ok) { EXPECT_TRUE(ok); });
    sim.run();
    return *dag_;
  }

  std::unique_ptr<condor::DagMan> dag_;
};

TEST_F(StatisticsTest, GanttRowsCoverEveryNode) {
  const auto& dag = run_chain(3);
  const auto rows = collect_gantt(dag, names);
  EXPECT_EQ(rows.size(), 5u);  // stage_in + 3 + stage_out
  for (const auto& row : rows) {
    EXPECT_GE(row.start, row.submit);
    EXPECT_GE(row.end, row.start);
    EXPECT_FALSE(row.worker.empty());
  }
}

TEST_F(StatisticsTest, ChainRowsAreTemporallyOrdered) {
  const auto& dag = run_chain(3);
  const auto rows = collect_gantt(dag, names);
  // Compute nodes appear in chain order and never overlap.
  for (std::size_t i = 2; i < rows.size() - 1; ++i) {
    EXPECT_GE(rows[i].start, rows[i - 1].end);
  }
}

TEST_F(StatisticsTest, CsvHasHeaderAndRows) {
  const auto& dag = run_chain(2);
  const auto rows = collect_gantt(dag, names);
  std::ostringstream os;
  write_gantt_csv(rows, os);
  const std::string text = os.str();
  EXPECT_NE(text.find("node,worker,submit,start,end,queue_wait,exec_time"),
            std::string::npos);
  EXPECT_NE(text.find("wf.t0"), std::string::npos);
  // header + 4 rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 5);
}

TEST_F(StatisticsTest, BusyFractionsBounded) {
  const auto& dag = run_chain(4);
  const auto rows = collect_gantt(dag, names);
  const auto fractions = worker_busy_fractions(rows, dag.makespan());
  EXPECT_FALSE(fractions.empty());
  double total = 0;
  for (const auto& [worker, fraction] : fractions) {
    EXPECT_GE(fraction, 0.0);
    EXPECT_LE(fraction, 1.0);
    total += fraction;
  }
  EXPECT_GT(total, 0.0);
}

TEST_F(StatisticsTest, QueueWaitAndExecDerivedCorrectly) {
  GanttRow row;
  row.submit = 10;
  row.start = 15;
  row.end = 18;
  EXPECT_DOUBLE_EQ(row.queue_wait(), 5.0);
  EXPECT_DOUBLE_EQ(row.exec_time(), 3.0);
  GanttRow never_ran;
  never_ran.submit = 1;
  EXPECT_DOUBLE_EQ(never_ran.queue_wait(), 0.0);
  EXPECT_DOUBLE_EQ(never_ran.exec_time(), 0.0);
}

}  // namespace
}  // namespace sf::pegasus
