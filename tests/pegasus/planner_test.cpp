#include "pegasus/planner.hpp"

#include <gtest/gtest.h>

#include "container/image.hpp"
#include "sim/simulation.hpp"

namespace sf::pegasus {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  sim::Simulation sim;
  std::unique_ptr<cluster::Cluster> cl = cluster::make_paper_testbed(sim);
  condor::CondorPool pool{*cl, cl->node(0),
                          {&cl->node(1), &cl->node(2), &cl->node(3)}};
  container::Registry hub{cl->node(0)};
  DockerEnv docker{*cl, pool};
  TransformationCatalog tc;
  storage::ReplicaCatalog rc;

  void SetUp() override {
    Transformation matmul;
    matmul.name = "matmul";
    matmul.work_coreseconds = 0.4;
    matmul.startup_s = 0.2;
    matmul.container_image = "matmul:latest";
    tc.add(matmul);
    hub.push(container::make_task_image("matmul"));
  }

  /// Chain of n matmul tasks (Figure 3), initial inputs on the submit node.
  AbstractWorkflow chain(int n, const std::string& name = "wf") {
    AbstractWorkflow wf(name);
    wf.declare_file(name + ".m0", 490000);
    rc.register_replica(name + ".m0", pool.submit_staging());
    pool.submit_staging().put_instant({name + ".m0", 490000});
    for (int i = 0; i < n; ++i) {
      const std::string b = name + ".b" + std::to_string(i);
      const std::string out = name + ".m" + std::to_string(i + 1);
      wf.declare_file(b, 490000);
      wf.declare_file(out, 490000);
      rc.register_replica(b, pool.submit_staging());
      pool.submit_staging().put_instant({b, 490000});
      AbstractJob job;
      job.id = name + ".t" + std::to_string(i);
      job.transformation = "matmul";
      job.uses = {{name + ".m" + std::to_string(i), LinkType::kInput},
                  {b, LinkType::kInput},
                  {out, LinkType::kOutput}};
      wf.add_job(std::move(job));
    }
    return wf;
  }

  bool run_plan(const Plan& plan, condor::DagMan& dag) {
    plan.load_into(dag);
    bool ok = false;
    bool finished = false;
    dag.run([&](bool success) {
      ok = success;
      finished = true;
    });
    sim.run();
    EXPECT_TRUE(finished);
    return ok;
  }
};

TEST_F(PlannerTest, NativePlanShape) {
  const auto wf = chain(3);
  Planner planner(wf, tc, rc, pool, PlannerOptions{});
  const Plan plan = planner.plan();
  EXPECT_EQ(plan.stage_in_jobs, 1u);
  EXPECT_EQ(plan.compute_jobs, 3u);
  EXPECT_EQ(plan.stage_out_jobs, 1u);
  EXPECT_EQ(plan.nodes.size(), 5u);
}

TEST_F(PlannerTest, NativePlanRunsToCompletion) {
  const auto wf = chain(3);
  Planner planner(wf, tc, rc, pool, PlannerOptions{});
  condor::DagMan dag(pool);
  EXPECT_TRUE(run_plan(planner.plan(), dag));
  // Final output registered back into the replica catalog.
  EXPECT_TRUE(rc.has("wf.m3"));
  EXPECT_TRUE(pool.submit_staging().contains("wf.m3"));
}

TEST_F(PlannerTest, ContainerModeRunsAndPaysImageTransfer) {
  const auto wf = chain(2);
  PlannerOptions native_opts;
  Planner native_planner(wf, tc, rc, pool, native_opts);
  condor::DagMan native_dag(pool);
  EXPECT_TRUE(run_plan(native_planner.plan(), native_dag));
  const double native_time = native_dag.makespan();

  // Fresh state for the containerized run.
  sim::Simulation sim2;
  auto cl2 = cluster::make_paper_testbed(sim2);
  condor::CondorPool pool2{*cl2, cl2->node(0),
                           {&cl2->node(1), &cl2->node(2), &cl2->node(3)}};
  container::Registry hub2{cl2->node(0)};
  hub2.push(container::make_task_image("matmul"));
  DockerEnv docker2{*cl2, pool2};
  storage::ReplicaCatalog rc2;

  AbstractWorkflow wf2("wf2");
  wf2.declare_file("wf2.m0", 490000);
  pool2.submit_staging().put_instant({"wf2.m0", 490000});
  rc2.register_replica("wf2.m0", pool2.submit_staging());
  for (int i = 0; i < 2; ++i) {
    const std::string b = "wf2.b" + std::to_string(i);
    const std::string out = "wf2.m" + std::to_string(i + 1);
    wf2.declare_file(b, 490000);
    wf2.declare_file(out, 490000);
    pool2.submit_staging().put_instant({b, 490000});
    rc2.register_replica(b, pool2.submit_staging());
    AbstractJob job;
    job.id = "wf2.t" + std::to_string(i);
    job.transformation = "matmul";
    job.uses = {{"wf2.m" + std::to_string(i), LinkType::kInput},
                {b, LinkType::kInput},
                {out, LinkType::kOutput}};
    wf2.add_job(std::move(job));
  }
  PlannerOptions copts;
  copts.default_mode = JobMode::kContainer;
  copts.registry = &hub2;
  copts.docker = &docker2;
  Planner cplanner(wf2, tc, rc2, pool2, copts);
  condor::DagMan cdag(pool2);
  const Plan cplan = cplanner.plan();
  cplan.load_into(cdag);
  bool ok = false;
  cdag.run([&](bool success) { ok = success; });
  sim2.run();
  EXPECT_TRUE(ok);
  // DAGMan's 5 s scan quantizes makespans, so compare per-task execution
  // time: the containerized task pays docker load + container lifecycle
  // on top of the same compute.
  EXPECT_LE(cdag.makespan(), native_time + 10.0);  // same order of magnitude
  const condor::JobRecord* native_rec = native_dag.node_record("wf.t0");
  const condor::JobRecord* container_rec = cdag.node_record("wf2.t0");
  ASSERT_NE(native_rec, nullptr);
  ASSERT_NE(container_rec, nullptr);
  const double native_exec = native_rec->end_time - native_rec->start_time;
  const double container_exec =
      container_rec->end_time - container_rec->start_time;
  // docker load (~0.48 s) + lifecycle (~0.31 s) over the same compute.
  EXPECT_GT(container_exec, native_exec + 0.7);
}

TEST_F(PlannerTest, ModeOverridesPerJob) {
  const auto wf = chain(2);
  PlannerOptions opts;
  opts.default_mode = JobMode::kNative;
  opts.mode_overrides["wf.t1"] = JobMode::kContainer;
  opts.registry = &hub;
  opts.docker = &docker;
  Planner planner(wf, tc, rc, pool, opts);
  condor::DagMan dag(pool);
  EXPECT_TRUE(run_plan(planner.plan(), dag));
}

TEST_F(PlannerTest, ContainerModeWithoutDockerThrows) {
  const auto wf = chain(1);
  PlannerOptions opts;
  opts.default_mode = JobMode::kContainer;
  Planner planner(wf, tc, rc, pool, opts);
  EXPECT_THROW(planner.plan(), std::invalid_argument);
}

TEST_F(PlannerTest, ServerlessModeWithoutFactoryThrows) {
  const auto wf = chain(1);
  PlannerOptions opts;
  opts.default_mode = JobMode::kServerless;
  Planner planner(wf, tc, rc, pool, opts);
  EXPECT_THROW(planner.plan(), std::invalid_argument);
}

TEST_F(PlannerTest, ServerlessFactoryIsInvokedPerTask) {
  const auto wf = chain(3);
  int factory_calls = 0;
  PlannerOptions opts;
  opts.default_mode = JobMode::kServerless;
  opts.serverless_factory =
      [&factory_calls](const AbstractJob&, const Transformation&,
                       std::vector<storage::FileRef> ins,
                       std::vector<storage::FileRef>) -> condor::JobExecutable {
    ++factory_calls;
    EXPECT_EQ(ins.size(), 2u);
    // Trivial stand-in: instantly succeed and write nothing — the DAG
    // fails at stage-out, which is fine for this shape test.
    return [](condor::ExecContext&, std::function<void(bool)> done) {
      done(true);
    };
  };
  Planner planner(wf, tc, rc, pool, opts);
  const Plan plan = planner.plan();
  EXPECT_EQ(factory_calls, 3);
  EXPECT_EQ(plan.compute_jobs, 3u);
}

TEST_F(PlannerTest, ClusteringMergesChains) {
  const auto wf = chain(6);
  PlannerOptions opts;
  opts.cluster_size = 3;
  Planner planner(wf, tc, rc, pool, opts);
  const Plan plan = planner.plan();
  // 6 chain tasks → 2 clustered jobs.
  EXPECT_EQ(plan.compute_jobs, 2u);
  EXPECT_EQ(plan.clustered_tasks, 6u);
  condor::DagMan dag(pool);
  EXPECT_TRUE(run_plan(plan, dag));
  EXPECT_TRUE(pool.submit_staging().contains("wf.m6"));
}

TEST_F(PlannerTest, ClusteringReducesMakespan) {
  // Same chain, clustered vs not: fewer condor jobs → fewer scheduling
  // round-trips → faster (the paper's §II-C claim about task clustering).
  const auto wf = chain(6, "plain");
  Planner p1(wf, tc, rc, pool, PlannerOptions{});
  condor::DagMan d1(pool);
  EXPECT_TRUE(run_plan(p1.plan(), d1));

  const auto wf2 = chain(6, "clustered");
  PlannerOptions opts;
  opts.cluster_size = 6;
  Planner p2(wf2, tc, rc, pool, opts);
  condor::DagMan d2(pool);
  EXPECT_TRUE(run_plan(p2.plan(), d2));
  // 6 scheduling hops collapse into one: 50 s → 25 s on the testbed.
  EXPECT_LE(d2.makespan(), d1.makespan() / 2);
}

TEST_F(PlannerTest, MissingReplicaFailsStageIn) {
  AbstractWorkflow wf("broken");
  wf.declare_file("nowhere.dat", 100);
  wf.declare_file("out.dat", 100);
  AbstractJob job;
  job.id = "t";
  job.transformation = "matmul";
  job.uses = {{"nowhere.dat", LinkType::kInput},
              {"out.dat", LinkType::kOutput}};
  wf.add_job(std::move(job));
  Planner planner(wf, tc, rc, pool, PlannerOptions{});
  condor::DagMan dag(pool);
  EXPECT_FALSE(run_plan(planner.plan(), dag));
}

TEST_F(PlannerTest, StageInFetchesFromRemoteReplica) {
  // The initial input lives on node2; stage-in must move it to staging.
  storage::Volume remote(cl->node(2), "archive");
  AbstractWorkflow wf("remote");
  wf.declare_file("remote.m0", 490000);
  wf.declare_file("remote.out", 490000);
  remote.put_instant({"remote.m0", 490000});
  rc.register_replica("remote.m0", remote);
  AbstractJob job;
  job.id = "remote.t0";
  job.transformation = "matmul";
  job.uses = {{"remote.m0", LinkType::kInput},
              {"remote.out", LinkType::kOutput}};
  wf.add_job(std::move(job));
  Planner planner(wf, tc, rc, pool, PlannerOptions{});
  condor::DagMan dag(pool);
  EXPECT_TRUE(run_plan(planner.plan(), dag));
  EXPECT_TRUE(pool.submit_staging().contains("remote.m0"));
}

TEST_F(PlannerTest, StatisticsSummarizeRecords) {
  const auto wf = chain(3);
  Planner planner(wf, tc, rc, pool, PlannerOptions{});
  const Plan plan = planner.plan();
  condor::DagMan dag(pool);
  EXPECT_TRUE(run_plan(plan, dag));
  std::vector<std::string> names;
  for (const auto& n : plan.nodes) names.push_back(n.name);
  const RunStatistics stats = collect_statistics(dag, names);
  EXPECT_EQ(stats.jobs, 5u);
  EXPECT_GT(stats.makespan, 0);
  EXPECT_GT(stats.mean_queue_wait, 0);
  EXPECT_GT(stats.mean_exec_time, 0);
}

TEST_F(PlannerTest, JobModeNames) {
  EXPECT_STREQ(to_string(JobMode::kNative), "native");
  EXPECT_STREQ(to_string(JobMode::kContainer), "container");
  EXPECT_STREQ(to_string(JobMode::kServerless), "serverless");
}

}  // namespace
}  // namespace sf::pegasus
