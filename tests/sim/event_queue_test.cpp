#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace sf::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.next_time(), kTimeInfinity);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NextTimeTracksEarliest) {
  EventQueue q;
  q.schedule(7.0, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 7.0);
  q.schedule(2.5, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 2.5);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelUnknownIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(12345));
}

TEST(EventQueue, CancelledEventSkippedAtTop) {
  EventQueue q;
  std::vector<int> order;
  const EventId early = q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  q.cancel(early);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
  auto fired = q.pop();
  EXPECT_DOUBLE_EQ(fired.time, 2.0);
  fired.fn();
  EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST(EventQueue, SizeExcludesCancelled) {
  EventQueue q;
  const EventId a = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, IdsAreUniqueAndIncreasing) {
  EventQueue q;
  const EventId a = q.schedule(1.0, [] {});
  const EventId b = q.schedule(1.0, [] {});
  EXPECT_LT(a, b);
  EXPECT_NE(a, kNoEvent);
}

TEST(EventQueue, ManyInterleavedSchedulesAndCancels) {
  EventQueue q;
  std::vector<EventId> ids;
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(q.schedule(static_cast<double>(i % 10), [&] { ++fired; }));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) q.cancel(ids[i]);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, 50);
}

TEST(EventQueue, TotalScheduledCountsEverySchedule) {
  EventQueue q;
  EXPECT_EQ(q.total_scheduled(), 0u);
  const EventId a = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_EQ(q.total_scheduled(), 2u);
  q.cancel(a);  // cancellation must not lower the lifetime count
  EXPECT_EQ(q.total_scheduled(), 2u);
  q.pop();
  EXPECT_EQ(q.total_scheduled(), 2u);
  q.schedule(3.0, [] {});  // slot reuse must still count up
  EXPECT_EQ(q.total_scheduled(), 3u);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancelHalfPreservesFiringOrderAndCounts) {
  // Schedule N events across a few clustered instants, cancel a
  // deterministic half, and verify the survivors fire in exact
  // (time, schedule-order) sequence while size()/empty() stay consistent.
  constexpr int kN = 400;
  EventQueue q;
  std::vector<EventId> ids;
  std::vector<int> expected;
  std::vector<int> fired;
  ids.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    const double t = static_cast<double>(i % 7);
    ids.push_back(q.schedule(t, [&fired, i] { fired.push_back(i); }));
  }
  EXPECT_EQ(q.size(), static_cast<std::size_t>(kN));
  int cancelled = 0;
  for (int i = 0; i < kN; i += 2) {
    EXPECT_TRUE(q.cancel(ids[static_cast<std::size_t>(i)]));
    ++cancelled;
  }
  EXPECT_EQ(q.size(), static_cast<std::size_t>(kN - cancelled));
  // Survivors ordered by (time, insertion order): odd i, keyed by i % 7
  // then i — the same FIFO-by-id rule schedule() promises.
  for (int t = 0; t < 7; ++t) {
    for (int i = 1; i < kN; i += 2) {
      if (i % 7 == t) expected.push_back(i);
    }
  }
  double last_time = -1.0;
  while (!q.empty()) {
    auto ev = q.pop();
    EXPECT_GE(ev.time, last_time);
    last_time = ev.time;
    ev.fn();
  }
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(q.total_scheduled(), static_cast<std::uint64_t>(kN));
}

TEST(EventQueue, CancelLastEventOfInstantThenReuseInstant) {
  // Cancelling the sole event of an instant retires its bucket; scheduling
  // the same time again must create a fresh FIFO, not resurrect the old.
  EventQueue q;
  int fired = 0;
  const EventId a = q.schedule(5.0, [&] { fired += 1; });
  EXPECT_TRUE(q.cancel(a));
  EXPECT_TRUE(q.empty());
  q.schedule(5.0, [&] { fired += 10; });
  q.schedule(5.0, [&] { fired += 100; });
  EXPECT_EQ(q.size(), 2u);
  EXPECT_DOUBLE_EQ(q.next_time(), 5.0);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, 110);
}

TEST(EventQueue, NegativeZeroAndPositiveZeroShareAnInstant) {
  // -0.0 == 0.0, so FIFO order must hold across the two spellings.
  EventQueue q;
  std::vector<int> order;
  q.schedule(0.0, [&] { order.push_back(1); });
  q.schedule(-0.0, [&] { order.push_back(2); });
  q.schedule(0.0, [&] { order.push_back(3); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, StressManyInstantsWithInterleavedCancellation) {
  // Enough churn to cross chunk boundaries and recycle slots repeatedly.
  EventQueue q;
  std::vector<EventId> pending;
  std::uint64_t scheduled = 0;
  int fired = 0;
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 300; ++i) {
      pending.push_back(q.schedule(static_cast<double>((round * 300 + i) % 13),
                                   [&] { ++fired; }));
      ++scheduled;
    }
    for (std::size_t i = round % 3; i < pending.size(); i += 3) {
      q.cancel(pending[i]);  // some ids are already fired/cancelled: fine
    }
    while (q.size() > 100) q.pop().fn();
    pending.erase(pending.begin(),
                  pending.begin() +
                      static_cast<std::ptrdiff_t>(pending.size() / 2));
  }
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(q.total_scheduled(), scheduled);
  EXPECT_GT(fired, 0);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

}  // namespace
}  // namespace sf::sim
