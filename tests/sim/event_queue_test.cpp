#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace sf::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.next_time(), kTimeInfinity);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NextTimeTracksEarliest) {
  EventQueue q;
  q.schedule(7.0, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 7.0);
  q.schedule(2.5, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 2.5);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelUnknownIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(12345));
}

TEST(EventQueue, CancelledEventSkippedAtTop) {
  EventQueue q;
  std::vector<int> order;
  const EventId early = q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  q.cancel(early);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
  auto fired = q.pop();
  EXPECT_DOUBLE_EQ(fired.time, 2.0);
  fired.fn();
  EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST(EventQueue, SizeExcludesCancelled) {
  EventQueue q;
  const EventId a = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, IdsAreUniqueAndIncreasing) {
  EventQueue q;
  const EventId a = q.schedule(1.0, [] {});
  const EventId b = q.schedule(1.0, [] {});
  EXPECT_LT(a, b);
  EXPECT_NE(a, kNoEvent);
}

TEST(EventQueue, ManyInterleavedSchedulesAndCancels) {
  EventQueue q;
  std::vector<EventId> ids;
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(q.schedule(static_cast<double>(i % 10), [&] { ++fired; }));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) q.cancel(ids[i]);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, 50);
}

}  // namespace
}  // namespace sf::sim
