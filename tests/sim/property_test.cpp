// Model-based and invariant ("property") tests for the simulation
// engine, run over seeded random scenarios.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/ps_resource.hpp"
#include "sim/simulation.hpp"

namespace sf::sim {
namespace {

// ---- EventQueue vs. a reference model -----------------------------------

class EventQueueModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueModelTest, MatchesMultimapReference) {
  Rng rng(GetParam());
  EventQueue queue;
  // Reference: (time, id) → alive, ordered exactly like the queue.
  std::multimap<std::pair<SimTime, EventId>, bool> model;
  std::vector<EventId> live_ids;

  std::vector<EventId> fired;
  std::vector<std::pair<SimTime, EventId>> expected;

  for (int op = 0; op < 2000; ++op) {
    const double p = rng.uniform(0, 1);
    if (p < 0.6 || live_ids.empty()) {
      const SimTime t = rng.uniform(0, 100);
      EventId captured = 0;
      const EventId id = queue.schedule(t, [] {});
      captured = id;
      model.emplace(std::make_pair(t, captured), true);
      live_ids.push_back(captured);
    } else if (p < 0.8) {
      // Cancel a random live event.
      const std::size_t pick = rng.index(live_ids.size());
      const EventId id = live_ids[pick];
      const bool was_live = queue.cancel(id);
      bool model_live = false;
      for (auto& [key, alive] : model) {
        if (key.second == id && alive) {
          alive = false;
          model_live = true;
          break;
        }
      }
      EXPECT_EQ(was_live, model_live);
      live_ids.erase(live_ids.begin() + pick);
    } else if (!queue.empty()) {
      const auto event = queue.pop();
      fired.push_back(event.id);
      // Reference pop: earliest alive entry.
      auto it = model.begin();
      while (it != model.end() && !it->second) ++it;
      ASSERT_NE(it, model.end());
      expected.push_back(it->first);
      EXPECT_EQ(event.time, it->first.first);
      EXPECT_EQ(event.id, it->first.second);
      model.erase(model.begin(), std::next(it));
      std::erase(live_ids, event.id);
    }
  }
  // Drain both; order must agree to the end.
  while (!queue.empty()) {
    const auto event = queue.pop();
    auto it = model.begin();
    while (it != model.end() && !it->second) ++it;
    ASSERT_NE(it, model.end());
    EXPECT_EQ(event.id, it->first.second);
    model.erase(model.begin(), std::next(it));
  }
  for (const auto& [key, alive] : model) EXPECT_FALSE(alive);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueModelTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

// ---- PsResource invariants under random load -----------------------------

class PsPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PsPropertyTest, AllJobsCompleteAndThroughputIsConserved) {
  Simulation sim(GetParam());
  const double capacity = sim.rng().uniform(1.0, 16.0);
  PsResource cpu(sim, capacity);

  constexpr int kJobs = 60;
  double total_work = 0;
  int completed = 0;
  double last_completion = 0;
  double first_arrival = 1e300;

  for (int i = 0; i < kJobs; ++i) {
    const double arrival = sim.rng().uniform(0.0, 20.0);
    const double work = sim.rng().uniform(0.01, 5.0);
    const double cap = sim.rng().chance(0.5)
                           ? sim.rng().uniform(0.2, 2.0)
                           : PsResource::kNoCap;
    const double weight = sim.rng().uniform(0.5, 4.0);
    total_work += work;
    first_arrival = std::min(first_arrival, arrival);
    sim.call_at(arrival, [&, work, cap, weight] {
      cpu.submit(work,
                 [&] {
                   ++completed;
                   last_completion = sim.now();
                 },
                 cap, weight);
    });
  }
  sim.run();
  EXPECT_EQ(completed, kJobs);
  EXPECT_EQ(cpu.active_jobs(), 0u);
  // Throughput bound: the resource can never deliver more than
  // capacity × elapsed, so the last completion obeys the work bound.
  EXPECT_GE(last_completion - first_arrival,
            total_work / capacity - 1e-6);
}

TEST_P(PsPropertyTest, UtilizationNeverExceedsCapacityOrCaps) {
  Simulation sim(GetParam());
  const double capacity = 8.0;
  PsResource cpu(sim, capacity);
  std::vector<PsResource::JobId> ids;
  for (int i = 0; i < 24; ++i) {
    const double cap = sim.rng().uniform(0.25, 1.5);
    ids.push_back(cpu.submit(sim.rng().uniform(1.0, 10.0), [] {}, cap));
  }
  for (double t = 0.1; t < 10.0; t += 0.7) {
    sim.run_until(t);
    EXPECT_LE(cpu.utilization(), capacity + 1e-9);
    for (const auto id : ids) {
      const double rate = cpu.current_rate(id);
      if (rate >= 0) {
        EXPECT_LE(rate, 1.5 + 1e-9);
      }
    }
  }
  sim.run();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PsPropertyTest,
                         ::testing::Values(7, 21, 99, 4242));

// ---- Equal jobs finish together (symmetry) --------------------------------

TEST(PsSymmetry, IdenticalJobsIdenticalFinish) {
  for (int n : {2, 5, 17}) {
    Simulation sim;
    PsResource cpu(sim, 3.0);
    std::vector<double> finishes;
    for (int i = 0; i < n; ++i) {
      cpu.submit(2.0, [&] { finishes.push_back(sim.now()); }, 1.0);
    }
    sim.run();
    ASSERT_EQ(finishes.size(), static_cast<std::size_t>(n));
    for (double f : finishes) EXPECT_DOUBLE_EQ(f, finishes.front());
  }
}

}  // namespace
}  // namespace sf::sim
