#include "sim/ps_resource.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/simulation.hpp"

namespace sf::sim {
namespace {

TEST(PsResource, SingleJobRunsAtCap) {
  Simulation sim;
  PsResource cpu(sim, 8.0);
  double done_at = -1;
  cpu.submit(2.0, [&] { done_at = sim.now(); }, /*rate_cap=*/1.0);
  sim.run();
  // 2 core-seconds at 1 core → 2 s even though 8 cores are free.
  EXPECT_NEAR(done_at, 2.0, 1e-9);
}

TEST(PsResource, UncappedJobUsesFullCapacity) {
  Simulation sim;
  PsResource cpu(sim, 4.0);
  double done_at = -1;
  cpu.submit(8.0, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_NEAR(done_at, 2.0, 1e-9);
}

TEST(PsResource, TwoJobsFairShare) {
  Simulation sim;
  PsResource nic(sim, 100.0);  // e.g. 100 B/s
  std::vector<double> done;
  nic.submit(100.0, [&] { done.push_back(sim.now()); });
  nic.submit(100.0, [&] { done.push_back(sim.now()); });
  sim.run();
  // Each gets 50 B/s → both complete at t=2.
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 2.0, 1e-9);
  EXPECT_NEAR(done[1], 2.0, 1e-9);
}

TEST(PsResource, ContentionSlowsCompletion) {
  // Two single-threaded tasks on one core: each takes twice as long.
  Simulation sim;
  PsResource cpu(sim, 1.0);
  std::vector<double> done;
  cpu.submit(1.0, [&] { done.push_back(sim.now()); }, 1.0);
  cpu.submit(1.0, [&] { done.push_back(sim.now()); }, 1.0);
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 2.0, 1e-9);
}

TEST(PsResource, NoContentionBelowCoreCount) {
  // Two single-threaded tasks on 8 cores: no slowdown.
  Simulation sim;
  PsResource cpu(sim, 8.0);
  std::vector<double> done;
  cpu.submit(3.0, [&] { done.push_back(sim.now()); }, 1.0);
  cpu.submit(3.0, [&] { done.push_back(sim.now()); }, 1.0);
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 3.0, 1e-9);
  EXPECT_NEAR(done[1], 3.0, 1e-9);
}

TEST(PsResource, WeightsSkewShares) {
  Simulation sim;
  PsResource cpu(sim, 3.0);
  std::vector<std::pair<int, double>> done;
  cpu.submit(2.0, [&] { done.emplace_back(1, sim.now()); },
             PsResource::kNoCap, /*weight=*/2.0);
  cpu.submit(1.0, [&] { done.emplace_back(2, sim.now()); },
             PsResource::kNoCap, /*weight=*/1.0);
  // Rates: 2 and 1 → both finish at t=1.
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0].second, 1.0, 1e-9);
  EXPECT_NEAR(done[1].second, 1.0, 1e-9);
}

TEST(PsResource, CapRedistributesToOthers) {
  Simulation sim;
  PsResource cpu(sim, 4.0);
  double slow_done = -1;
  double fast_done = -1;
  // Job A capped at 1 core; job B uncapped gets the remaining 3.
  cpu.submit(2.0, [&] { slow_done = sim.now(); }, 1.0);
  cpu.submit(6.0, [&] { fast_done = sim.now(); });
  sim.run();
  EXPECT_NEAR(slow_done, 2.0, 1e-9);
  EXPECT_NEAR(fast_done, 2.0, 1e-9);
}

TEST(PsResource, LateArrivalRebalances) {
  Simulation sim;
  PsResource cpu(sim, 1.0);
  std::vector<double> done;
  cpu.submit(1.0, [&] { done.push_back(sim.now()); }, 1.0);
  sim.call_at(0.5, [&] {
    cpu.submit(0.5, [&] { done.push_back(sim.now()); }, 1.0);
  });
  sim.run();
  // First job: 0.5 work done by t=0.5, then shares; finishes at 1.5.
  // Second: 0.5 work at 0.5 rate → also 1.5.
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 1.5, 1e-9);
  EXPECT_NEAR(done[1], 1.5, 1e-9);
}

TEST(PsResource, DepartureSpeedsUpRemaining) {
  Simulation sim;
  PsResource cpu(sim, 1.0);
  std::vector<double> done;
  cpu.submit(0.5, [&] { done.push_back(sim.now()); }, 1.0);
  cpu.submit(1.0, [&] { done.push_back(sim.now()); }, 1.0);
  sim.run();
  // Shared until t=1 (first finishes, 0.5 each done), then second runs
  // alone: 0.5 remaining at rate 1 → t=1.5.
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 1.0, 1e-9);
  EXPECT_NEAR(done[1], 1.5, 1e-9);
}

TEST(PsResource, CancelRemovesJob) {
  Simulation sim;
  PsResource cpu(sim, 1.0);
  bool cancelled_ran = false;
  double done_at = -1;
  const auto id = cpu.submit(10.0, [&] { cancelled_ran = true; }, 1.0);
  cpu.submit(1.0, [&] { done_at = sim.now(); }, 1.0);
  sim.call_at(0.5, [&] { EXPECT_TRUE(cpu.cancel(id)); });
  sim.run();
  EXPECT_FALSE(cancelled_ran);
  // Shared 0.5 s (0.25 done), then full rate: 0.75 more → t=1.25.
  EXPECT_NEAR(done_at, 1.25, 1e-9);
}

TEST(PsResource, CancelUnknownReturnsFalse) {
  Simulation sim;
  PsResource cpu(sim, 1.0);
  EXPECT_FALSE(cpu.cancel(999));
}

TEST(PsResource, SetRateCapMidFlight) {
  Simulation sim;
  PsResource cpu(sim, 4.0);
  double done_at = -1;
  const auto id = cpu.submit(4.0, [&] { done_at = sim.now(); }, 4.0);
  sim.call_at(0.5, [&] { EXPECT_TRUE(cpu.set_rate_cap(id, 1.0)); });
  sim.run();
  // 2 core-s done by 0.5, then 2 more at rate 1 → t=2.5.
  EXPECT_NEAR(done_at, 2.5, 1e-9);
}

TEST(PsResource, ZeroCapPausesJob) {
  Simulation sim;
  PsResource cpu(sim, 1.0);
  double done_at = -1;
  const auto id = cpu.submit(1.0, [&] { done_at = sim.now(); }, 0.0);
  sim.call_at(5.0, [&] { cpu.set_rate_cap(id, 1.0); });
  sim.run();
  EXPECT_NEAR(done_at, 6.0, 1e-9);
}

TEST(PsResource, ZeroWorkCompletesImmediately) {
  Simulation sim;
  PsResource cpu(sim, 1.0);
  double done_at = -1;
  cpu.submit(0.0, [&] { done_at = sim.now(); }, 1.0);
  sim.run();
  EXPECT_NEAR(done_at, 0.0, 1e-12);
}

TEST(PsResource, CompletionCallbackMaySubmit) {
  Simulation sim;
  PsResource cpu(sim, 1.0);
  std::vector<double> done;
  cpu.submit(1.0, [&] {
    done.push_back(sim.now());
    cpu.submit(1.0, [&] { done.push_back(sim.now()); }, 1.0);
  }, 1.0);
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 1.0, 1e-9);
  EXPECT_NEAR(done[1], 2.0, 1e-9);
}

TEST(PsResource, RemainingAndRateQueries) {
  Simulation sim;
  PsResource cpu(sim, 2.0);
  const auto id = cpu.submit(4.0, [] {}, 2.0);
  sim.run_until(1.0);
  EXPECT_NEAR(cpu.remaining(id), 2.0, 1e-9);
  EXPECT_NEAR(cpu.current_rate(id), 2.0, 1e-9);
  EXPECT_NEAR(cpu.utilization(), 2.0, 1e-9);
  EXPECT_EQ(cpu.active_jobs(), 1u);
}

TEST(PsResource, CapacityChangeMidFlight) {
  Simulation sim;
  PsResource cpu(sim, 2.0);
  double done_at = -1;
  cpu.submit(4.0, [&] { done_at = sim.now(); });
  sim.call_at(1.0, [&] { cpu.set_capacity(1.0); });
  sim.run();
  // 2 done in first second, 2 remaining at rate 1 → t=3.
  EXPECT_NEAR(done_at, 3.0, 1e-9);
}

TEST(PsResource, InvalidArgumentsThrow) {
  Simulation sim;
  EXPECT_THROW(PsResource(sim, -1.0), std::invalid_argument);
  PsResource cpu(sim, 1.0);
  EXPECT_THROW(cpu.submit(1.0, [] {}, -1.0), std::invalid_argument);
  EXPECT_THROW(cpu.submit(1.0, [] {}, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(cpu.set_capacity(-2.0), std::invalid_argument);
}

TEST(PsResource, InterleavedCancelRecapAndResizeAccounting) {
  // Walks one scenario through every mutation path — cancel, set_rate_cap,
  // set_capacity — checking remaining-work accounting after each step.
  Simulation sim;
  PsResource cpu(sim, 6.0);
  double a_done = -1;
  double b_done = -1;
  bool c_ran = false;
  const auto a = cpu.submit(12.0, [&] { a_done = sim.now(); });
  const auto b = cpu.submit(12.0, [&] { b_done = sim.now(); }, 1.0);
  const auto c = cpu.submit(12.0, [&] { c_ran = true; });
  // t in [0,1): B capped at 1, A and C split the remaining 5 → 2.5 each.
  sim.call_at(1.0, [&] {
    EXPECT_NEAR(cpu.remaining(a), 9.5, 1e-9);
    EXPECT_NEAR(cpu.remaining(b), 11.0, 1e-9);
    EXPECT_NEAR(cpu.remaining(c), 9.5, 1e-9);
    EXPECT_NEAR(cpu.utilization(), 6.0, 1e-9);
    EXPECT_TRUE(cpu.cancel(c));
    EXPECT_FALSE(cpu.cancel(c));
    EXPECT_EQ(cpu.active_jobs(), 2u);
  });
  // t in [1,2): A uncapped → 5, B → 1.
  sim.call_at(2.0, [&] {
    EXPECT_NEAR(cpu.remaining(a), 4.5, 1e-9);
    EXPECT_NEAR(cpu.remaining(b), 10.0, 1e-9);
    EXPECT_NEAR(cpu.current_rate(a), 5.0, 1e-9);
    EXPECT_TRUE(cpu.set_rate_cap(a, 2.0));
  });
  // t in [2,3): A capped at 2, B at 1.
  sim.call_at(3.0, [&] {
    EXPECT_NEAR(cpu.remaining(a), 2.5, 1e-9);
    EXPECT_NEAR(cpu.remaining(b), 9.0, 1e-9);
    EXPECT_NEAR(cpu.utilization(), 3.0, 1e-9);
    cpu.set_capacity(2.0);
  });
  // t >= 3: capacity 2 split evenly → A=1, B=1. A's 2.5 left → t=5.5;
  // B then runs alone but stays capped at 1: 6.5 left → t=12.
  sim.run();
  EXPECT_FALSE(c_ran);
  EXPECT_NEAR(a_done, 5.5, 1e-9);
  EXPECT_NEAR(b_done, 12.0, 1e-9);
  EXPECT_EQ(cpu.active_jobs(), 0u);
  EXPECT_NEAR(cpu.utilization(), 0.0, 1e-12);
  EXPECT_EQ(cpu.remaining(a), -1.0);
  EXPECT_EQ(cpu.remaining(c), -1.0);
}

TEST(PsResource, CancelAfterCompletionReturnsFalse) {
  Simulation sim;
  PsResource cpu(sim, 1.0);
  const auto id = cpu.submit(1.0, [] {}, 1.0);
  sim.run();
  EXPECT_FALSE(cpu.cancel(id));
  EXPECT_FALSE(cpu.set_rate_cap(id, 2.0));
}

// Property: with N identical capped jobs on C cores, makespan is
// work * ceil-free scaling max(1, N/C). Swept with TEST_P.
struct PsSweep {
  int jobs;
  double cores;
};

class PsFairnessSweep : public ::testing::TestWithParam<PsSweep> {};

TEST_P(PsFairnessSweep, MakespanMatchesTheory) {
  const auto [jobs, cores] = GetParam();
  Simulation sim;
  PsResource cpu(sim, cores);
  constexpr double kWork = 2.0;
  int finished = 0;
  double last = 0;
  for (int i = 0; i < jobs; ++i) {
    cpu.submit(kWork, [&] {
      ++finished;
      last = sim.now();
    }, 1.0);
  }
  sim.run();
  EXPECT_EQ(finished, jobs);
  const double expected =
      kWork * std::max(1.0, static_cast<double>(jobs) / cores);
  EXPECT_NEAR(last, expected, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PsFairnessSweep,
    ::testing::Values(PsSweep{1, 1}, PsSweep{2, 1}, PsSweep{5, 1},
                      PsSweep{8, 8}, PsSweep{16, 8}, PsSweep{32, 8},
                      PsSweep{3, 4}, PsSweep{100, 8}));

}  // namespace
}  // namespace sf::sim
