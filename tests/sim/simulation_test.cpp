#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace sf::sim {
namespace {

TEST(Simulation, ClockAdvancesToEventTime) {
  Simulation sim;
  double seen = -1;
  sim.call_at(4.5, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 4.5);
  EXPECT_DOUBLE_EQ(sim.now(), 4.5);
}

TEST(Simulation, CallInIsRelative) {
  Simulation sim;
  std::vector<double> times;
  sim.call_at(2.0, [&] {
    sim.call_in(3.0, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_DOUBLE_EQ(times[0], 5.0);
}

TEST(Simulation, PastSchedulingThrows) {
  Simulation sim;
  sim.call_at(10.0, [] {});
  sim.run();
  EXPECT_THROW(sim.call_at(5.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.call_in(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulation, RunReturnsEventCount) {
  Simulation sim;
  for (int i = 0; i < 7; ++i) sim.call_at(i, [] {});
  EXPECT_EQ(sim.run(), 7u);
  EXPECT_EQ(sim.events_processed(), 7u);
}

TEST(Simulation, RunUntilStopsAtBoundaryInclusive) {
  Simulation sim;
  int fired = 0;
  sim.call_at(1.0, [&] { ++fired; });
  sim.call_at(2.0, [&] { ++fired; });
  sim.call_at(3.0, [&] { ++fired; });
  sim.run_until(2.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulation, RunUntilAdvancesClockWhenIdle) {
  Simulation sim;
  sim.run_until(42.0);
  EXPECT_DOUBLE_EQ(sim.now(), 42.0);
}

TEST(Simulation, StopHaltsRun) {
  Simulation sim;
  int fired = 0;
  sim.call_at(1.0, [&] {
    ++fired;
    sim.stop();
  });
  sim.call_at(2.0, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  // A fresh run resumes the remaining events.
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, CancelledEventsDoNotRun) {
  Simulation sim;
  int fired = 0;
  const EventId id = sim.call_at(1.0, [&] { ++fired; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulation, EventsScheduledFromCallbacksRun) {
  Simulation sim;
  std::vector<int> order;
  sim.call_at(1.0, [&] {
    order.push_back(1);
    sim.call_in(0.0, [&] { order.push_back(2); });
    sim.call_at(sim.now(), [&] { order.push_back(3); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulation, DeterministicRngAcrossRuns) {
  Simulation a(123);
  Simulation b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.rng().uniform(0, 1), b.rng().uniform(0, 1));
  }
}

TEST(Simulation, TraceRecordsWhenEnabled) {
  Simulation sim;
  sim.trace().set_enabled(true);
  sim.call_at(1.5, [&] {
    sim.trace().record(sim.now(), "test", "tick", {{"k", "v"}});
  });
  sim.run();
  ASSERT_EQ(sim.trace().size(), 1u);
  EXPECT_DOUBLE_EQ(sim.trace().event(0).time(), 1.5);
  EXPECT_EQ(sim.trace().event(0).attr("k"), "v");
}

TEST(Simulation, TraceDisabledByDefault) {
  Simulation sim;
  sim.trace().record(0, "test", "tick");
  EXPECT_TRUE(sim.trace().empty());
}

}  // namespace
}  // namespace sf::sim
