// Direct TraceRecorder unit tests: enable/disable gating, record
// ordering, and flush formatting. (Filter/CSV-escaping/clear coverage
// lives in random_trace_test.cpp.)

#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace sf::sim {
namespace {

TEST(TraceGating, DisabledByDefault) {
  TraceRecorder tr;
  EXPECT_FALSE(tr.enabled());
  tr.record(1, "cat", "dropped");
  EXPECT_TRUE(tr.events().empty());
}

TEST(TraceGating, EnableStartsRecording) {
  TraceRecorder tr;
  tr.set_enabled(true);
  EXPECT_TRUE(tr.enabled());
  tr.record(1, "cat", "kept");
  ASSERT_EQ(tr.events().size(), 1u);
  EXPECT_EQ(tr.events()[0].name, "kept");
}

TEST(TraceGating, DisableStopsRecordingButKeepsHistory) {
  TraceRecorder tr;
  tr.set_enabled(true);
  tr.record(1, "cat", "before");
  tr.set_enabled(false);
  tr.record(2, "cat", "after");
  ASSERT_EQ(tr.events().size(), 1u);
  EXPECT_EQ(tr.events()[0].name, "before");
  // Re-enabling appends after the preserved history.
  tr.set_enabled(true);
  tr.record(3, "cat", "resumed");
  ASSERT_EQ(tr.events().size(), 2u);
  EXPECT_EQ(tr.events()[1].name, "resumed");
}

TEST(TraceOrdering, EventsKeepRecordOrder) {
  TraceRecorder tr;
  tr.set_enabled(true);
  tr.record(5, "a", "first");
  tr.record(2, "b", "second");  // earlier timestamp, later record
  tr.record(5, "a", "third");   // duplicate timestamp
  ASSERT_EQ(tr.events().size(), 3u);
  EXPECT_EQ(tr.events()[0].name, "first");
  EXPECT_EQ(tr.events()[1].name, "second");
  EXPECT_EQ(tr.events()[2].name, "third");
}

TEST(TraceOrdering, AttrsKeepInsertionOrder) {
  TraceRecorder tr;
  tr.set_enabled(true);
  tr.record(0, "c", "n", {{"z", "1"}, {"a", "2"}});
  const auto& attrs = tr.events()[0].attrs;
  ASSERT_EQ(attrs.size(), 2u);
  EXPECT_EQ(attrs[0].first, "z");
  EXPECT_EQ(attrs[1].first, "a");
}

TEST(TraceFlush, EmptyRecorderWritesHeaderOnly) {
  TraceRecorder tr;
  std::ostringstream os;
  tr.write_csv(os);
  EXPECT_EQ(os.str(), "time,category,name,attrs\n");
}

TEST(TraceFlush, RowsFlushInRecordOrder) {
  TraceRecorder tr;
  tr.set_enabled(true);
  tr.record(2, "b", "late", {{"k", "v"}});
  tr.record(1, "a", "early");  // no attrs: row ends after the comma
  std::ostringstream os;
  tr.write_csv(os);
  EXPECT_EQ(os.str(),
            "time,category,name,attrs\n"
            "2,b,late,k=v\n"
            "1,a,early,\n");
}

TEST(TraceFlush, FlushDoesNotConsumeEvents) {
  TraceRecorder tr;
  tr.set_enabled(true);
  tr.record(1, "c", "n");
  std::ostringstream once;
  std::ostringstream twice;
  tr.write_csv(once);
  tr.write_csv(twice);
  EXPECT_EQ(once.str(), twice.str());
  EXPECT_EQ(tr.events().size(), 1u);
}

}  // namespace
}  // namespace sf::sim
