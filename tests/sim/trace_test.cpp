// Direct TraceRecorder unit tests: enable/disable gating, record
// ordering, arena pooling, and flush formatting. (Filter/CSV-escaping/
// clear coverage lives in random_trace_test.cpp.)

#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace sf::sim {
namespace {

TEST(TraceGating, DisabledByDefault) {
  TraceRecorder tr;
  EXPECT_FALSE(tr.enabled());
  tr.record(1, "cat", "dropped");
  EXPECT_TRUE(tr.empty());
}

TEST(TraceGating, EnableStartsRecording) {
  TraceRecorder tr;
  tr.set_enabled(true);
  EXPECT_TRUE(tr.enabled());
  tr.record(1, "cat", "kept");
  ASSERT_EQ(tr.size(), 1u);
  EXPECT_EQ(tr.event(0).name(), "kept");
}

TEST(TraceGating, DisableStopsRecordingButKeepsHistory) {
  TraceRecorder tr;
  tr.set_enabled(true);
  tr.record(1, "cat", "before");
  tr.set_enabled(false);
  tr.record(2, "cat", "after");
  ASSERT_EQ(tr.size(), 1u);
  EXPECT_EQ(tr.event(0).name(), "before");
  // Re-enabling appends after the preserved history.
  tr.set_enabled(true);
  tr.record(3, "cat", "resumed");
  ASSERT_EQ(tr.size(), 2u);
  EXPECT_EQ(tr.event(1).name(), "resumed");
}

TEST(TraceOrdering, EventsKeepRecordOrder) {
  TraceRecorder tr;
  tr.set_enabled(true);
  tr.record(5, "a", "first");
  tr.record(2, "b", "second");  // earlier timestamp, later record
  tr.record(5, "a", "third");   // duplicate timestamp
  ASSERT_EQ(tr.size(), 3u);
  EXPECT_EQ(tr.event(0).name(), "first");
  EXPECT_EQ(tr.event(1).name(), "second");
  EXPECT_EQ(tr.event(2).name(), "third");
}

TEST(TraceOrdering, AttrsKeepInsertionOrder) {
  TraceRecorder tr;
  tr.set_enabled(true);
  tr.record(0, "c", "n", {{"z", "1"}, {"a", "2"}});
  const auto ev = tr.event(0);
  ASSERT_EQ(ev.attr_count(), 2u);
  EXPECT_EQ(ev.attr_at(0).first, "z");
  EXPECT_EQ(ev.attr_at(1).first, "a");
}

TEST(TraceFlush, EmptyRecorderWritesHeaderOnly) {
  TraceRecorder tr;
  std::ostringstream os;
  tr.write_csv(os);
  EXPECT_EQ(os.str(), "time,category,name,attrs\n");
}

TEST(TraceFlush, RowsFlushInRecordOrder) {
  TraceRecorder tr;
  tr.set_enabled(true);
  tr.record(2, "b", "late", {{"k", "v"}});
  tr.record(1, "a", "early");  // no attrs: row ends after the comma
  std::ostringstream os;
  tr.write_csv(os);
  EXPECT_EQ(os.str(),
            "time,category,name,attrs\n"
            "2,b,late,k=v\n"
            "1,a,early,\n");
}

TEST(TraceFlush, FlushDoesNotConsumeEvents) {
  TraceRecorder tr;
  tr.set_enabled(true);
  tr.record(1, "c", "n");
  std::ostringstream once;
  std::ostringstream twice;
  tr.write_csv(once);
  tr.write_csv(twice);
  EXPECT_EQ(once.str(), twice.str());
  EXPECT_EQ(tr.size(), 1u);
}

// Arena storage: views and the values behind them survive crossing chunk
// boundaries (4096 records, 64 KiB of value bytes) — nothing is ever
// reallocated out from under an EventView.
TEST(TraceArena, ViewsStableAcrossChunkBoundaries) {
  TraceRecorder tr;
  tr.set_enabled(true);
  const std::string big(1000, 'x');  // ~65 records per value chunk
  constexpr int kN = 10000;          // > 2 record chunks, > 100 value chunks
  for (int i = 0; i < kN; ++i) {
    tr.record(i, "arena", "fill", {{"i", std::to_string(i)}, {"pad", big}});
  }
  const auto first = tr.event(0);
  const auto last = tr.event(kN - 1);
  EXPECT_EQ(tr.size(), static_cast<std::size_t>(kN));
  EXPECT_EQ(first.attr("i"), "0");
  EXPECT_EQ(first.attr("pad"), big);
  EXPECT_EQ(last.attr("i"), std::to_string(kN - 1));
  EXPECT_EQ(last.attr("pad"), big);
}

// clear() pools the chunks: refilling after a clear reproduces identical
// output (the bench pattern — clear per iteration, zero steady-state
// allocation — depends on this being a pure reset).
TEST(TraceArena, ClearPoolsAndRefillsIdentically) {
  TraceRecorder tr;
  tr.set_enabled(true);
  const auto fill = [&tr] {
    for (int i = 0; i < 9000; ++i) {
      tr.record(i, "pool", "ev", {{"n", std::to_string(i)}});
    }
  };
  fill();
  std::ostringstream first;
  tr.write_csv(first);
  tr.clear();
  EXPECT_TRUE(tr.empty());
  fill();
  std::ostringstream second;
  tr.write_csv(second);
  EXPECT_EQ(first.str(), second.str());
}

// A value larger than a whole 64 KiB chunk takes the overflow path and
// still round-trips exactly.
TEST(TraceArena, OversizedValueRoundTrips) {
  TraceRecorder tr;
  tr.set_enabled(true);
  const std::string huge(200 * 1024, 'y');
  tr.record(0, "c", "n", {{"blob", huge}});
  EXPECT_EQ(tr.event(0).attr("blob"), huge);
}

}  // namespace
}  // namespace sf::sim
