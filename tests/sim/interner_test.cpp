#include "sim/interner.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/simulation.hpp"
#include "sim/sweep_runner.hpp"

namespace sf::sim {
namespace {

TEST(InternerTest, EmptyStringIsBuiltIn) {
  Interner in;
  EXPECT_EQ(in.size(), 1u);
  EXPECT_EQ(in.intern(""), kEmptyId);
  EXPECT_EQ(in.name(kEmptyId), "");
  EXPECT_EQ(in.size(), 1u);
}

TEST(InternerTest, RoundTripNameRecovery) {
  Interner in;
  const std::vector<std::string> names{
      "pod-fn-matmul-00001-0", "node-17", "knative", "fn-matmul",
      "a-rather-long-object-name-that-defeats-small-string-optimization"};
  std::vector<ObjectId> ids;
  ids.reserve(names.size());
  for (const auto& n : names) ids.push_back(in.intern(n));
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(in.name(ids[i]), names[i]);
  }
}

TEST(InternerTest, DenseIdsInFirstInternOrder) {
  Interner in;
  EXPECT_EQ(in.intern("a"), 1u);
  EXPECT_EQ(in.intern("b"), 2u);
  EXPECT_EQ(in.intern("c"), 3u);
  // Re-interning never mints a new id.
  EXPECT_EQ(in.intern("b"), 2u);
  EXPECT_EQ(in.intern("a"), 1u);
  EXPECT_EQ(in.size(), 4u);  // includes ""
}

TEST(InternerTest, LookupDoesNotInsert) {
  Interner in;
  EXPECT_FALSE(in.contains("ghost"));
  EXPECT_EQ(in.lookup("ghost"), kEmptyId);
  EXPECT_EQ(in.size(), 1u);
  const ObjectId id = in.intern("ghost");
  EXPECT_EQ(in.lookup("ghost"), id);
  EXPECT_TRUE(in.contains("ghost"));
}

// The same sequence of intern() calls yields the same ids forever — and
// interleaving OTHER names in between changes the ids but never the
// round-tripped spellings. Output only ever goes through name(), which is
// why id-assignment order cannot leak into any transcript.
TEST(InternerTest, IdStabilityUnderInterleavedInterningOrder) {
  Interner plain;
  Interner interleaved;
  const std::vector<std::string> mine{"pod-0", "pod-1", "pod-2"};
  std::vector<ObjectId> plain_ids;
  std::vector<ObjectId> mixed_ids;
  for (const auto& n : mine) plain_ids.push_back(plain.intern(n));
  for (std::size_t i = 0; i < mine.size(); ++i) {
    interleaved.intern("noise-" + std::to_string(i));
    mixed_ids.push_back(interleaved.intern(mine[i]));
  }
  // Different ids (the interleaved table saw noise first)...
  EXPECT_NE(plain_ids, mixed_ids);
  // ...same spellings, and re-interning reproduces the same ids exactly.
  for (std::size_t i = 0; i < mine.size(); ++i) {
    EXPECT_EQ(plain.name(plain_ids[i]), mine[i]);
    EXPECT_EQ(interleaved.name(mixed_ids[i]), mine[i]);
    EXPECT_EQ(plain.intern(mine[i]), plain_ids[i]);
    EXPECT_EQ(interleaved.intern(mine[i]), mixed_ids[i]);
  }
}

TEST(InternerTest, ViewsStayValidAcrossGrowth) {
  Interner in;
  const ObjectId early = in.intern("early-bird");
  const std::string_view view = in.name(early);
  for (int i = 0; i < 10000; ++i) in.intern("filler-" + std::to_string(i));
  EXPECT_EQ(view, "early-bird");          // deque storage never moved it
  EXPECT_EQ(in.name(early), "early-bird");
  EXPECT_EQ(in.intern("early-bird"), early);
}

TEST(InternerTest, SimulationOwnsAnInterner) {
  Simulation sim;
  const ObjectId a = sim.intern("svc-a");
  EXPECT_EQ(sim.ids().name(a), "svc-a");
  EXPECT_EQ(sim.intern("svc-a"), a);
}

// Purity across SweepRunner threads: every sweep point interns a
// deterministic per-point sequence into its own Simulation; the resulting
// (id, spelling) fingerprints must be identical no matter how many threads
// executed the sweep — the same contract every scale_sweep point relies on.
TEST(InternerTest, PurityAcrossSweepRunnerThreads) {
  constexpr std::size_t kPoints = 16;
  const auto point_fingerprint = [](std::size_t point) {
    Simulation sim;
    std::uint64_t h = 1469598103934665603ull;
    const auto fold = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    for (int i = 0; i < 200; ++i) {
      // Per-point object population with heavy cross-point overlap —
      // the realistic shape (same service names, different pods).
      const ObjectId id = sim.intern(
          "pod-" + std::to_string((point * 7 + i * 13) % 64));
      fold(id);
      for (const char c : sim.ids().name(id)) {
        fold(static_cast<std::uint64_t>(c));
      }
    }
    fold(sim.ids().size());
    return h;
  };
  SweepRunner serial(1);
  SweepRunner parallel(4);
  const auto a = serial.run(kPoints, point_fingerprint);
  const auto b = parallel.run(kPoints, point_fingerprint);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace sf::sim
