#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "sim/random.hpp"
#include "sim/trace.hpp"

namespace sf::sim {
namespace {

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(0, 4));
  EXPECT_EQ(seen, (std::set<std::int64_t>{0, 1, 2, 3, 4}));
}

TEST(Rng, SameSeedSameSequence) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000000), b.uniform_int(0, 1000000));
  }
}

TEST(Rng, ReseedRestartsSequence) {
  Rng rng(5);
  const auto first = rng.uniform_int(0, 1 << 30);
  rng.uniform_int(0, 1 << 30);
  rng.reseed(5);
  EXPECT_EQ(rng.uniform_int(0, 1 << 30), first);
}

TEST(Rng, ExponentialMeanRoughlyCorrect) {
  Rng rng(11);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / kN, 2.0, 0.1);
}

TEST(Rng, NormalNonnegClamps) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.normal_nonneg(0.01, 5.0), 0.0);
  }
}

TEST(Rng, PickReturnsMember) {
  Rng rng(1);
  const std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    const int x = rng.pick(v);
    EXPECT_TRUE(x == 10 || x == 20 || x == 30);
  }
}

TEST(Trace, FindFiltersByCategoryAndName) {
  TraceRecorder tr;
  tr.set_enabled(true);
  tr.record(1, "knative", "cold_start");
  tr.record(2, "knative", "scale_up");
  tr.record(3, "condor", "match");
  EXPECT_EQ(tr.find("knative").size(), 2u);
  EXPECT_EQ(tr.find("knative", "cold_start").size(), 1u);
  EXPECT_EQ(tr.count("condor"), 1u);
  EXPECT_EQ(tr.count("nope"), 0u);
}

TEST(Trace, CsvOutputWellFormed) {
  TraceRecorder tr;
  tr.set_enabled(true);
  tr.record(1.5, "cat", "name", {{"a", "1"}, {"b", "2"}});
  std::ostringstream os;
  tr.write_csv(os);
  EXPECT_EQ(os.str(), "time,category,name,attrs\n1.5,cat,name,a=1;b=2\n");
}

TEST(Trace, ClearEmpties) {
  TraceRecorder tr;
  tr.set_enabled(true);
  tr.record(0, "x", "y");
  tr.clear();
  EXPECT_TRUE(tr.empty());
}

TEST(Trace, MissingAttrIsEmpty) {
  TraceRecorder tr;
  tr.set_enabled(true);
  tr.record(0, "c", "n", {{"k", "v"}});
  const auto e = tr.event(0);
  EXPECT_EQ(e.attr("k"), "v");
  EXPECT_EQ(e.attr("missing"), "");
}

}  // namespace
}  // namespace sf::sim
