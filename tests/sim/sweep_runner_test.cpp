#include "sim/sweep_runner.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "sim/random.hpp"
#include "sim/simulation.hpp"

namespace sf::sim {
namespace {

// One sweep point: a self-contained simulation whose result depends on
// the point's own seeded RNG and event schedule — the shape SweepRunner
// is specified for.
double simulate_point(std::size_t index) {
  Simulation sim;
  Rng rng(static_cast<std::uint64_t>(index) + 1);
  double acc = 0;
  for (int k = 0; k < 50; ++k) {
    sim.call_in(rng.uniform(0.0, 10.0), [&acc, &sim] { acc += sim.now(); });
  }
  sim.run();
  return acc;
}

TEST(SweepRunnerTest, ParallelBitIdenticalToSequential) {
  const std::size_t n = 24;
  SweepRunner serial(1);
  SweepRunner threaded(4);
  const std::vector<double> a = serial.run(n, simulate_point);
  const std::vector<double> b = threaded.run(n, simulate_point);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    // Bit-identical, not approximately equal: points share nothing, so
    // the thread schedule must not influence any result.
    EXPECT_EQ(a[i], b[i]) << "point " << i;
  }
}

TEST(SweepRunnerTest, ResultsAreIndexOrdered) {
  SweepRunner runner(4);
  const auto r = runner.run(
      100, [](std::size_t i) { return static_cast<int>(i) * 3; });
  ASSERT_EQ(r.size(), 100u);
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_EQ(r[i], static_cast<int>(i) * 3);
  }
}

TEST(SweepRunnerTest, EmptySweepReturnsEmpty) {
  SweepRunner runner(4);
  const auto r = runner.run(0, [](std::size_t) { return 1; });
  EXPECT_TRUE(r.empty());
}

TEST(SweepRunnerTest, FirstExceptionPropagates) {
  SweepRunner runner(4);
  EXPECT_THROW(runner.run(16,
                          [](std::size_t i) -> int {
                            if (i == 5) {
                              throw std::runtime_error("boom");
                            }
                            return 0;
                          }),
               std::runtime_error);
}

TEST(SweepRunnerTest, ExplicitThreadCountWins) {
  ::setenv("SF_SWEEP_THREADS", "7", 1);
  EXPECT_EQ(SweepRunner(3).threads(), 3);
  ::unsetenv("SF_SWEEP_THREADS");
}

TEST(SweepRunnerTest, EnvOverrideAndFallback) {
  ::setenv("SF_SWEEP_THREADS", "7", 1);
  EXPECT_EQ(SweepRunner::resolve_threads(0), 7);
  ::setenv("SF_SWEEP_THREADS", "bogus", 1);
  EXPECT_GE(SweepRunner::resolve_threads(0), 1);  // falls back to hardware
  ::setenv("SF_SWEEP_THREADS", "0", 1);
  EXPECT_GE(SweepRunner::resolve_threads(0), 1);
  ::unsetenv("SF_SWEEP_THREADS");
  EXPECT_GE(SweepRunner::resolve_threads(0), 1);
}

}  // namespace
}  // namespace sf::sim
